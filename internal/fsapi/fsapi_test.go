package fsapi

import (
	"bytes"
	"errors"
	"testing"
)

func TestSplitPath(t *testing.T) {
	cases := map[string][]string{
		"/":        nil,
		"":         nil,
		"/a":       {"a"},
		"/a/b/c":   {"a", "b", "c"},
		"a/b":      {"a", "b"},
		"//a//b//": {"a", "b"},
		"/trail/":  {"trail"},
	}
	for in, want := range cases {
		got := SplitPath(in)
		if len(got) != len(want) {
			t.Fatalf("SplitPath(%q) = %v, want %v", in, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("SplitPath(%q) = %v, want %v", in, got, want)
			}
		}
	}
}

func TestMemFSRoundTrip(t *testing.T) {
	m := NewMemFS()
	f, err := m.Create("/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello memfs")
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if n, err := f.ReadAt(got, 0); err != nil || n != len(data) {
		t.Fatalf("read = %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch")
	}
	if f.Size() != int64(len(data)) {
		t.Fatalf("size = %d", f.Size())
	}
}

func TestMemFSNamespace(t *testing.T) {
	m := NewMemFS()
	if err := m.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := m.Mkdir("/d"); !errors.Is(err, ErrExist) {
		t.Fatalf("dup mkdir = %v", err)
	}
	if err := m.Mkdir("/missing/sub"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("orphan mkdir = %v", err)
	}
	if _, err := m.Create("/d/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("/d/f"); !errors.Is(err, ErrExist) {
		t.Fatalf("dup create = %v", err)
	}
	if _, err := m.Open("/d"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("open dir = %v", err)
	}
	if _, err := m.Open("/ghost"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("open missing = %v", err)
	}
	ents, err := m.ReadDir("/d")
	if err != nil || len(ents) != 1 || ents[0].Name != "f" {
		t.Fatalf("readdir = %+v, %v", ents, err)
	}
	if err := m.Remove("/d"); err == nil {
		t.Fatal("removed non-empty dir")
	}
	if err := m.Remove("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("/d"); err != nil {
		t.Fatal(err)
	}
	info, err := m.Stat("/")
	if err != nil || !info.Dir {
		t.Fatalf("root stat = %+v, %v", info, err)
	}
}

func TestMemFSSparse(t *testing.T) {
	m := NewMemFS()
	f, _ := m.Create("/sparse")
	f.WriteAt([]byte("x"), 1000)
	buf := make([]byte, 10)
	if n, err := f.ReadAt(buf, 0); err != nil || n != 10 {
		t.Fatalf("read = %d, %v", n, err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
	if n, _ := f.ReadAt(buf, 5000); n != 0 {
		t.Fatalf("past-EOF = %d", n)
	}
}

func TestMemFSAppend(t *testing.T) {
	m := NewMemFS()
	f, _ := m.Create("/log")
	if off, _ := f.Append([]byte("ab")); off != 0 {
		t.Fatalf("append off = %d", off)
	}
	if off, _ := f.Append([]byte("cd")); off != 2 {
		t.Fatalf("append off = %d", off)
	}
	got := make([]byte, 4)
	f.ReadAt(got, 0)
	if string(got) != "abcd" {
		t.Fatalf("content = %q", got)
	}
}

func TestMemFSClose(t *testing.T) {
	m := NewMemFS()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close = %v", err)
	}
	if _, err := m.Create("/x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after close = %v", err)
	}
}

func TestMemFSRename(t *testing.T) {
	m := NewMemFS()
	m.Mkdir("/a")
	m.Mkdir("/b")
	f, _ := m.Create("/a/f")
	f.WriteAt([]byte("data"), 0)
	if err := m.Rename("/a/f", "/b/g"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open("/a/f"); !errors.Is(err, ErrNotExist) {
		t.Fatal("old path visible")
	}
	g, err := m.Open("/b/g")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	g.ReadAt(buf, 0)
	if string(buf) != "data" {
		t.Fatalf("content = %q", buf)
	}
	// Subtree move.
	m.Mkdir("/a/sub")
	m.Create("/a/sub/x")
	if err := m.Rename("/a", "/c"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Stat("/c/sub/x"); err != nil {
		t.Fatalf("subtree lost: %v", err)
	}
	// Errors.
	if err := m.Rename("/ghost", "/z"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing src: %v", err)
	}
	if err := m.Rename("/c", "/b/g"); !errors.Is(err, ErrExist) {
		t.Fatalf("existing dst: %v", err)
	}
	if err := m.Rename("/c", "/c/sub/under"); err == nil {
		t.Fatal("moved dir into own subtree")
	}
	if err := m.Rename("/", "/x"); err == nil {
		t.Fatal("renamed root")
	}
}
