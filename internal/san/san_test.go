package san

import (
	"bytes"
	"net"
	"testing"

	"redbud/internal/blockdev"
	"redbud/internal/client"
	"redbud/internal/clock"
	"redbud/internal/netsim"
)

func newRemote(t *testing.T) (*RemoteDevice, *blockdev.Device) {
	t.Helper()
	clk := clock.Real(1)
	dev := blockdev.New(blockdev.Config{Size: 1 << 24, Model: blockdev.ZeroLatency(), Clock: clk})
	t.Cleanup(dev.Close)
	srv := NewServer(dev, clk, 4)
	t.Cleanup(srv.Close)
	n := netsim.NewNetwork(clk)
	n.AddHost("disk", netsim.Instant())
	n.AddHost("client", netsim.Instant())
	l, err := n.Listen("disk")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { l.Close() })
	conn, err := n.Dial("client", "disk")
	if err != nil {
		t.Fatal(err)
	}
	rd := NewRemoteDevice(conn, clk)
	t.Cleanup(func() { rd.Close() })
	return rd, dev
}

func TestRemoteRoundTrip(t *testing.T) {
	rd, dev := newRemote(t)
	data := bytes.Repeat([]byte{0x5a}, 9000)
	if err := rd.Write(4096, data); err != nil {
		t.Fatal(err)
	}
	got, err := rd.Read(4096, 9000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("remote read mismatch")
	}
	// Durability is visible on the underlying device.
	if !dev.IsDurable(4096, 9000) {
		t.Fatal("remote write not durable")
	}
}

func TestRemoteWriteAsyncCopiesBuffer(t *testing.T) {
	rd, _ := newRemote(t)
	buf := []byte("original")
	done := rd.WriteAsync(0, buf)
	copy(buf, "clobber!")
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	got, err := rd.Read(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("async write aliased caller buffer: %q", got)
	}
}

func TestRemoteOutOfRange(t *testing.T) {
	rd, _ := newRemote(t)
	if err := rd.Write(1<<24, []byte("x")); err == nil {
		t.Fatal("out-of-range remote write accepted")
	}
}

func TestRemoteImplementsBlockDevice(t *testing.T) {
	var _ client.BlockDevice = (*RemoteDevice)(nil)
}

// TestOverTCP runs the SAN protocol over a real TCP loopback socket — the
// path the multi-process deployment uses.
func TestOverTCP(t *testing.T) {
	clk := clock.Real(1)
	dev := blockdev.New(blockdev.Config{Size: 1 << 20, Model: blockdev.ZeroLatency(), Clock: clk})
	defer dev.Close()
	srv := NewServer(dev, clk, 4)
	defer srv.Close()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(netsim.FrameConn(c))
		}
	}()

	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	rd := NewRemoteDevice(netsim.FrameConn(nc), clk)
	defer rd.Close()
	payload := bytes.Repeat([]byte{7}, 4096)
	if err := rd.Write(0, payload); err != nil {
		t.Fatal(err)
	}
	got, err := rd.Read(0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("TCP SAN mismatch")
	}
}
