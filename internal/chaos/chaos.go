// Package chaos drives the whole simulated cluster — network, data device,
// journal, MDS, clients — through seeded fault plans while auditing the
// paper's ordered-write contract on every commit the MDS applies.
//
// A run is reproducible from its Config: one seed derives the network fault
// decisions, the disk fault rolls, each workload thread's op stream, and the
// clients' retry jitter. The harness checks three things:
//
//  1. Live invariant: CommitCheck rejects (and records) any commit whose
//     extents are not durable on the data device at the instant the MDS
//     applies it — the ordered-write rule, checked on every commit including
//     retransmissions.
//  2. End-of-run consistency: CheckConsistent finds no committed extent
//     whose data never became durable, and Fsck finds no space-accounting
//     or reachability problem in the live store.
//  3. Crash-at-end recovery: a fresh store recovered from the journal also
//     fscks clean, so the run's surviving history is replayable.
//
// Mid-run MDS restarts (Config.Restarts) exercise the full recovery path:
// the listener is replaced, in-flight calls die with ErrConnClosed, clients
// redial, learn the bumped incarnation from OpHello, and re-establish their
// sessions against the recovered store.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"redbud/internal/alloc"
	"redbud/internal/blockdev"
	"redbud/internal/client"
	"redbud/internal/clock"
	"redbud/internal/mds"
	"redbud/internal/meta"
	"redbud/internal/netsim"
	"redbud/internal/obs"
	"redbud/internal/obs/agg"
	"redbud/internal/rpc"
	"redbud/internal/workload"
)

const (
	dataSpace   = 1 << 30  // data device capacity
	metaSpace   = 64 << 20 // metadata device capacity
	journalSize = 32 << 20 // journal region at the front of the metadata device
	allocGroups = 4
)

// DiskFaults configures probabilistic write faults on the shared data
// device. The metadata device stays fault-free: torn-journal recovery has
// dedicated crash-point tests in internal/meta, and a probabilistic journal
// tear mid-run would halt the store rather than exercise anything this
// harness can keep checking.
type DiskFaults struct {
	// ErrProb is the probability a data write fails with an I/O error.
	ErrProb float64
	// TornProb is the probability a data write is torn partway through.
	TornProb float64
}

// Config describes one chaos run. The zero value of most fields picks a
// sensible default; a Seed alone is enough for a smoke run.
type Config struct {
	// Seed drives every random stream in the run.
	Seed int64

	// Shards runs the metadata service as this many independent MDS
	// shards (default 1), each with its own store, journal device, data
	// device, and listener host ("mds0".."mdsN-1"). Clients mount the
	// whole shard set and route per-inode; creates and removes whose
	// placement hash lands a child away from its parent's shard exercise
	// the two-phase cross-shard protocols under the fault plan. Restarts
	// crash a seed-chosen shard each time. Space delegation is
	// single-shard only and is forced off when Shards > 1.
	Shards int

	// Clients file-system clients (default 2), each running Threads
	// application threads (default 2) of Ops measured operations
	// (default 30) over Prefill pre-created files per thread.
	Clients int
	Threads int
	Ops     int
	Prefill int

	// FileSize is the created-file size (default 16 KiB).
	FileSize int64
	// Mix weights the op mix; nil picks a create/read/append/stat/delete
	// blend.
	Mix []workload.OpWeight
	// Mode selects the commit path (SyncCommit or DelayedCommit).
	Mode client.Mode
	// Fsync forces a commit barrier after every workload write.
	Fsync bool
	// Think is per-op application compute time; use it to stretch the
	// workload across scheduled restarts.
	Think time.Duration
	// Delegation is the space-delegation chunk (default 1 MiB, negative
	// disables delegation).
	Delegation int64

	// Retry is the clients' fault-tolerance policy. The zero value picks
	// MaxAttempts 6, 1ms..16ms backoff, and a 75ms call timeout. A plan
	// with DropProb > 0 needs CallTimeout > 0, or a dropped frame parks
	// its calling thread forever.
	Retry client.RetryPolicy

	// Net is the network fault plan; its Seed defaults to Config.Seed.
	Net netsim.FaultPlan
	// Disk injects data-device write faults.
	Disk DiskFaults

	// Restarts crash-restarts the MDS this many times, every RestartEvery
	// of virtual time (default 10ms): the listener is closed, the server
	// drained, and the store recovered from the journal under a bumped
	// incarnation.
	Restarts     int
	RestartEvery time.Duration

	// LeaseTimeout enables MDS lease expiry (0 disables).
	LeaseTimeout time.Duration

	// Autoscale runs the clients' commit pools under the obs-driven
	// control loop (autoscaler v2) instead of the static formula — the
	// knob the no-deadlock-across-restart test uses.
	Autoscale bool

	// Clock overrides the simulation clock (default clock.Real(1)).
	Clock clock.Clock

	// Tracer, when non-nil, records commit-lifecycle spans across every
	// layer of the run (devices, network, MDS — including restarted
	// incarnations — and clients). Export with obs.WriteChromeTrace to see
	// what a fault plan does to the commit path.
	Tracer *obs.Tracer

	// OnOp observes every measured workload operation in per-thread issue
	// order; the determinism test diffs two runs through this hook.
	OnOp func(clientID, tid int, kind workload.OpKind, path string, n int64)
}

// Report is what a run leaves behind for assertions.
type Report struct {
	// Results holds one workload result per client.
	Results []workload.Result
	// Violations lists every commit the MDS saw whose extents were not
	// durable — ordered-write contract breaches. Must stay empty.
	Violations []string
	// Inconsistent lists committed extents whose data was not durable at
	// the end of the run. Must stay empty.
	Inconsistent []meta.Extent
	// Fsck checks the live store at end of run; RecoveredFsck re-runs the
	// check on a store recovered from the journal afterwards (the
	// crash-at-end scenario). In a sharded run these are shard 0's
	// reports; ShardFscks/RecoveredShardFscks carry every shard's.
	Fsck          meta.FsckReport
	RecoveredFsck meta.FsckReport
	// ShardFscks and RecoveredShardFscks hold the per-shard fsck reports
	// (index = shard); ClusterIssues and RecoveredClusterIssues list
	// cross-shard referential problems found by FsckCluster after the
	// end-of-run intent resolution. All must stay clean.
	ShardFscks             []meta.FsckReport
	RecoveredShardFscks    []meta.FsckReport
	ClusterIssues          []string
	RecoveredClusterIssues []string
	// Recovery reports the final recovery's replay statistics (shard 0).
	Recovery meta.RecoveryStats
	// Restarts counts completed mid-run MDS restarts.
	Restarts int
	// RestartedShards records which shard each completed restart hit.
	RestartedShards []int
	// DedupHits counts commit retransmissions answered from the MDS dedup
	// table, summed across incarnations.
	DedupHits int64
	// Cluster is the final metrics collection round: every shard's (and the
	// clients') tagged snapshot plus the cluster-wide merge the SLO rules
	// were last evaluated against.
	Cluster agg.ClusterSnapshot
	// Alerts is the SLO engine's per-rule state after the final evaluation
	// and SLOEvents its full transition log. A fault-free run must end with
	// every alert inactive and the log empty.
	Alerts    []agg.Alert
	SLOEvents []agg.Event
	// Faults holds the network fault-injection counters.
	Faults netsim.FaultStats
	// DiskFaults counts injected data-device write faults.
	DiskFaults int64
	// OpErrors sums per-operation workload errors (expected under faults;
	// an op that fails cleanly is not an invariant breach).
	OpErrors int64
	// CloseErrs collects client-shutdown errors, which are tolerated: a
	// client can hold uncommittable state after a restart reclaimed its
	// delegations.
	CloseErrs []error
}

// defaultMix is the blend used when Config.Mix is nil.
func defaultMix() []workload.OpWeight {
	return []workload.OpWeight{
		{Kind: workload.OpCreateWrite, Weight: 4},
		{Kind: workload.OpRead, Weight: 3},
		{Kind: workload.OpAppend, Weight: 2},
		{Kind: workload.OpStat, Weight: 2},
		{Kind: workload.OpDelete, Weight: 1},
	}
}

// planActive reports whether plan would affect any frame at all.
func planActive(p netsim.FaultPlan) bool {
	return p.Script != nil || p.Default != (netsim.LinkFaults{}) ||
		len(p.Links) > 0 || len(p.Partitions) > 0
}

// Run executes one chaos run and returns its report. A non-nil error means
// the harness itself failed (recovery error, setup failure) — invariant
// breaches are reported through Report fields, not the error.
func Run(cfg Config) (*Report, error) {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real(1)
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 2
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 2
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 30
	}
	if cfg.FileSize <= 0 {
		cfg.FileSize = 16 << 10
	}
	if cfg.Mix == nil {
		cfg.Mix = defaultMix()
	}
	deleg := cfg.Delegation
	if deleg == 0 {
		deleg = 1 << 20
	} else if deleg < 0 {
		deleg = 0
	}
	if cfg.Retry == (client.RetryPolicy{}) {
		cfg.Retry = client.RetryPolicy{
			MaxAttempts: 6,
			BaseDelay:   time.Millisecond,
			MaxDelay:    16 * time.Millisecond,
			CallTimeout: 75 * time.Millisecond,
		}
	}
	if cfg.RestartEvery <= 0 {
		cfg.RestartEvery = 10 * time.Millisecond
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	if shards > 1 {
		deleg = 0 // space delegation is single-shard only
	}

	rep := &Report{}

	// One data device per shard (shard i allocates from device index i, so
	// the shards' data spaces are disjoint by construction), optionally
	// faulty; one fault-free metadata device per shard carrying its
	// journal.
	var faultFn blockdev.WriteFaultFunc
	if cfg.Disk.ErrProb > 0 || cfg.Disk.TornProb > 0 {
		faultFn = blockdev.ProbFaults(cfg.Seed^0x5eed, cfg.Disk.ErrProb, cfg.Disk.TornProb)
	}
	dataDevs := make([]*blockdev.Device, shards)
	metaDevs := make([]*blockdev.Device, shards)
	stores := make([]*meta.Store, shards)
	mkAGs := func(i int) *alloc.AGSet { return alloc.NewUniformAGSet(alloc.RoundRobin, i, dataSpace, allocGroups) }
	for i := 0; i < shards; i++ {
		dataDevs[i] = blockdev.New(blockdev.Config{ID: i, Size: dataSpace, Model: blockdev.ZeroLatency(), Clock: clk, WriteFault: faultFn, Tracer: cfg.Tracer})
		defer dataDevs[i].Close()
		metaDevs[i] = blockdev.New(blockdev.Config{Size: metaSpace, Model: blockdev.ZeroLatency(), Clock: clk})
		defer metaDevs[i].Close()
		stores[i] = meta.NewStore(meta.Config{
			AGs: mkAGs(i), Journal: meta.NewJournal(metaDevs[i], 0, journalSize), Clock: clk, Tracer: cfg.Tracer,
			Shard: i, ShardCount: shards,
		})
	}

	// The durability oracle: every commit any shard applies is audited
	// against what its data device has actually made durable, and an
	// undurable commit is both recorded and rejected.
	var vmu sync.Mutex
	check := func(exts []meta.Extent) error {
		for _, e := range exts {
			if int(e.Dev) >= shards || !dataDevs[e.Dev].IsDurable(e.VolOff, e.Len) {
				msg := fmt.Sprintf("commit references non-durable extent dev%d [%d,+%d)", e.Dev, e.VolOff, e.Len)
				vmu.Lock()
				rep.Violations = append(rep.Violations, msg)
				vmu.Unlock()
				return fmt.Errorf("chaos: %s", msg)
			}
		}
		return nil
	}

	// Host naming: the single-shard topology keeps the historical "mds"
	// host (fault plans and determinism fixtures address it by name);
	// sharded runs use "mds0".."mdsN-1".
	hostOf := func(i int) string {
		if shards == 1 {
			return "mds"
		}
		return fmt.Sprintf("mds%d", i)
	}

	net := netsim.NewNetwork(clk)
	net.SetTracer(cfg.Tracer)
	for i := 0; i < shards; i++ {
		net.AddHost(hostOf(i), netsim.Instant())
	}

	// The observability plane rides along on every run: each MDS incarnation
	// registers into a fresh per-shard registry (a registry rejects duplicate
	// names, so a restarted server cannot reuse its predecessor's), the
	// collector's sources always read whichever registry is live, and the
	// stock SLO rules are evaluated on the merged cluster view at every
	// checkpoint — after each completed restart and at end of run.
	shardRegs := make([]*obs.Registry, shards)

	incarnations := make([]uint64, shards)
	srvs := make([]*mds.Server, shards)
	liss := make([]*netsim.Listener, shards)
	startServer := func(i int) error {
		incarnations[i]++
		srv := mds.New(mds.Config{
			Store:        stores[i],
			Clock:        clk,
			Daemons:      4,
			CommitCheck:  check,
			LeaseTimeout: cfg.LeaseTimeout,
			Incarnation:  incarnations[i],
			ShardIndex:   uint32(i),
			ShardCount:   uint32(shards),
			Tracer:       cfg.Tracer,
		})
		lis, err := net.Listen(hostOf(i))
		if err != nil {
			return err
		}
		go srv.Serve(lis)
		reg := obs.NewRegistry()
		srv.RegisterMetrics(reg)
		shardRegs[i] = reg
		srvs[i], liss[i] = srv, lis
		return nil
	}
	for i := 0; i < shards; i++ {
		if err := startServer(i); err != nil {
			return rep, err
		}
	}

	plan := cfg.Net
	if plan.Seed == 0 {
		plan.Seed = cfg.Seed
	}
	if planActive(plan) {
		net.InstallFaults(plan)
	}
	defer net.ClearFaults()

	devices := make(map[uint32]client.BlockDevice, shards)
	for i := 0; i < shards; i++ {
		devices[uint32(i)] = dataDevs[i]
	}
	clients := make([]*client.Client, cfg.Clients)
	for i := range clients {
		host := fmt.Sprintf("c%d", i)
		net.AddHost(host, netsim.Instant())
		dialShard := func(s int) (*rpc.Client, error) {
			conn, err := net.Dial(host, hostOf(s))
			if err != nil {
				return nil, err
			}
			return rpc.NewClient(conn, clk), nil
		}
		pol := cfg.Retry
		if pol.Seed == 0 {
			pol.Seed = cfg.Seed + int64(i)*31 + 1
		}
		ccfg := client.Config{
			Name:            host,
			Retry:           pol,
			Devices:         devices,
			Clock:           clk,
			Mode:            cfg.Mode,
			DelegationChunk: deleg,
			PoolInterval:    time.Millisecond,
			Autoscale:       cfg.Autoscale,
			Tracer:          cfg.Tracer,
		}
		if shards == 1 {
			first, err := dialShard(0)
			if err != nil {
				return rep, err
			}
			ccfg.MDS = first
			ccfg.Redial = func() (*rpc.Client, error) { return dialShard(0) }
		} else {
			conns := make([]*rpc.Client, shards)
			for s := 0; s < shards; s++ {
				conn, err := dialShard(s)
				if err != nil {
					return rep, err
				}
				conns[s] = conn
			}
			ccfg.Shards = conns
			ccfg.RedialShard = dialShard
		}
		clients[i] = client.New(ccfg)
	}

	// Assemble the cluster metrics plane: one source per shard (reading the
	// live incarnation's registry through shardRegs) plus one for the
	// clients, and the stock SLO rule set over the merged view.
	clientsReg := obs.NewRegistry()
	for _, c := range clients {
		c.RegisterMetrics(clientsReg)
	}
	sources := make([]agg.Source, 0, shards+1)
	for i := 0; i < shards; i++ {
		sources = append(sources, agg.SourceFunc(hostOf(i), func() obs.Snapshot { return shardRegs[i].Snapshot() }))
	}
	sources = append(sources, agg.RegistrySource("clients", clientsReg))
	collector := agg.New(sources...)
	slo := agg.NewEngine(agg.DefaultRules())
	checkpoint := func() {
		rep.Cluster = collector.Collect()
		rep.Alerts = slo.Evaluate(clk.Now(), rep.Cluster.Merged)
		rep.SLOEvents = slo.Events()
	}

	// Fan the workloads out, one namespace subtree per client.
	rep.Results = make([]workload.Result, cfg.Clients)
	var wg sync.WaitGroup
	for i := range clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			spec := workload.Spec{
				Name:             fmt.Sprintf("w%d", i),
				Threads:          cfg.Threads,
				OpsPerThread:     cfg.Ops,
				PrefillPerThread: cfg.Prefill,
				FileSize:         workload.SizeDist{Mean: cfg.FileSize, Fixed: true},
				Mix:              cfg.Mix,
				FsyncWrites:      cfg.Fsync,
				Think:            cfg.Think,
				Seed:             cfg.Seed + int64(i+1)*7919,
			}
			if cfg.OnOp != nil {
				spec.OnOp = func(tid int, kind workload.OpKind, path string, n int64) {
					cfg.OnOp(i, tid, kind, path, n)
				}
			}
			res, err := workload.Run(clients[i], clk, spec)
			if err != nil {
				// Namespace setup died under faults; count it and move on —
				// a cleanly failed workload is not an invariant breach.
				res.Errors++
			}
			rep.Results[i] = res
		}()
	}

	// Scheduled crash-restarts while the workloads run, each hitting a
	// seed-chosen shard. Closing the server drains in-flight operations
	// (so the journal is quiescent), then the survivors' connections die
	// underneath them and the retry layer takes over: redial, OpHello,
	// incarnation bump, per-shard session re-establishment. A shard killed
	// mid-cross-shard-protocol leaves journaled intents the end-of-run
	// resolution settles.
	restartRng := rand.New(rand.NewSource(cfg.Seed ^ 0x7e57a7))
	var restartErr error
	for r := 0; r < cfg.Restarts; r++ {
		clk.Sleep(cfg.RestartEvery)
		i := restartRng.Intn(shards)
		liss[i].Close()
		srvs[i].Close()
		rep.DedupHits += srvs[i].DedupHits()
		rec, _, err := meta.Recover(meta.Config{
			AGs: mkAGs(i), Journal: meta.NewJournal(metaDevs[i], 0, journalSize), Clock: clk, Tracer: cfg.Tracer,
			Shard: i, ShardCount: shards,
		})
		if err != nil {
			restartErr = fmt.Errorf("chaos: recovery of shard %d at restart %d: %w", i, r+1, err)
			break
		}
		stores[i] = rec
		if err := startServer(i); err != nil {
			restartErr = err
			break
		}
		rep.Restarts++
		rep.RestartedShards = append(rep.RestartedShards, i)
		checkpoint()
	}

	wg.Wait()

	// The faulty phase is over: snapshot the counters, lift the faults,
	// and shut the clients down cleanly.
	rep.Faults = net.FaultStats()
	net.ClearFaults()
	for _, c := range clients {
		if err := c.Close(); err != nil {
			rep.CloseErrs = append(rep.CloseErrs, err)
		}
	}
	for i := range clients {
		for _, st := range stores {
			st.ClientGone(fmt.Sprintf("c%d", i))
		}
	}
	for _, res := range rep.Results {
		rep.OpErrors += res.Errors
	}
	// Final observability checkpoint: the workloads are done and the clients
	// closed, so the merged snapshot is the run's complete metric history and
	// the alert states are the run's verdict.
	checkpoint()
	if restartErr != nil {
		return rep, restartErr
	}

	// The cluster is quiesced (clients closed, leases reaped): drive every
	// cross-shard namespace intent a fault or crash stranded to its unique
	// outcome before auditing the namespace.
	if shards > 1 {
		if err := meta.ResolveNSIntents(stores); err != nil {
			return rep, fmt.Errorf("chaos: intent resolution: %w", err)
		}
	}

	durable := func(dev int, off, n int64) bool {
		return dev >= 0 && dev < shards && dataDevs[dev].IsDurable(off, n)
	}
	for i, st := range stores {
		rep.Inconsistent = append(rep.Inconsistent, st.CheckConsistent(durable)...)
		rep.ShardFscks = append(rep.ShardFscks, st.Fsck(dataSpace))
		rep.DiskFaults += dataDevs[i].InjectedFaults()
	}
	rep.Fsck = rep.ShardFscks[0]
	if shards > 1 {
		rep.ClusterIssues = meta.FsckCluster(stores)
	}

	// Crash-at-end: abandon every live store, recover each shard from its
	// journal, re-resolve stranded intents on the recovered cluster, and
	// fsck the recovered image — shard by shard and across shards.
	recovered := make([]*meta.Store, shards)
	for i := 0; i < shards; i++ {
		liss[i].Close()
		srvs[i].Close()
		rep.DedupHits += srvs[i].DedupHits()
		rec, rst, err := meta.Recover(meta.Config{
			AGs: mkAGs(i), Journal: meta.NewJournal(metaDevs[i], 0, journalSize), Clock: clk,
			Shard: i, ShardCount: shards,
		})
		if err != nil {
			return rep, fmt.Errorf("chaos: final recovery of shard %d: %w", i, err)
		}
		recovered[i] = rec
		if i == 0 {
			rep.Recovery = rst
		}
	}
	if shards > 1 {
		if err := meta.ResolveNSIntents(recovered); err != nil {
			return rep, fmt.Errorf("chaos: post-recovery intent resolution: %w", err)
		}
	}
	for _, rec := range recovered {
		rep.RecoveredShardFscks = append(rep.RecoveredShardFscks, rec.Fsck(dataSpace))
	}
	rep.RecoveredFsck = rep.RecoveredShardFscks[0]
	if shards > 1 {
		rep.RecoveredClusterIssues = meta.FsckCluster(recovered)
	}
	return rep, nil
}
