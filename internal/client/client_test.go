package client

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"redbud/internal/alloc"
	"redbud/internal/blockdev"
	"redbud/internal/clock"
	"redbud/internal/fsapi"
	"redbud/internal/mds"
	"redbud/internal/meta"
	"redbud/internal/netsim"
	"redbud/internal/proto"
	"redbud/internal/rpc"
)

// testCluster is an in-process Redbud deployment: devices, network, MDS, and
// a factory for clients.
type testCluster struct {
	t       *testing.T
	clk     clock.Clock
	devices map[uint32]*blockdev.Device
	net     *netsim.Network
	lis     *netsim.Listener
	mds     *mds.Server
	store   *meta.Store
	nextID  int
}

// newCluster builds a cluster with one data device. CommitCheck enforces the
// ordered-write invariant on EVERY commit the MDS processes: all referenced
// extents must already be durable on the array.
func newCluster(t *testing.T) *testCluster {
	t.Helper()
	clk := clock.Real(1)
	data := blockdev.New(blockdev.Config{ID: 0, Size: 1 << 30, Model: blockdev.ZeroLatency(), Clock: clk})
	t.Cleanup(data.Close)
	devices := map[uint32]*blockdev.Device{0: data}

	ags := alloc.NewUniformAGSet(alloc.RoundRobin, 0, 1<<30, 4)
	store := meta.NewStore(meta.Config{AGs: ags, Clock: clk})
	server := mds.New(mds.Config{
		Store:   store,
		Clock:   clk,
		Daemons: 4,
		CommitCheck: func(exts []meta.Extent) error {
			for _, e := range exts {
				d := devices[e.Dev]
				if d == nil {
					return fmt.Errorf("unknown device %d", e.Dev)
				}
				if !d.IsDurable(e.VolOff, e.Len) {
					return fmt.Errorf("extent dev%d[%d+%d) committed before durable", e.Dev, e.VolOff, e.Len)
				}
			}
			return nil
		},
	})
	t.Cleanup(server.Close)

	n := netsim.NewNetwork(clk)
	n.AddHost("mds", netsim.Instant())
	lis, err := n.Listen("mds")
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(lis)
	t.Cleanup(func() { lis.Close() })

	return &testCluster{t: t, clk: clk, devices: devices, net: n, lis: lis, mds: server, store: store}
}

// client mounts a new client with the given mode and delegation setting.
func (tc *testCluster) client(mode Mode, delegation int64) *Client {
	tc.t.Helper()
	return tc.clientEV(mode, delegation, false)
}

// clientEV is client with the early-visibility knob exposed.
func (tc *testCluster) clientEV(mode Mode, delegation int64, early bool) *Client {
	tc.t.Helper()
	tc.nextID++
	host := fmt.Sprintf("client-%d", tc.nextID)
	tc.net.AddHost(host, netsim.Instant())
	conn, err := tc.net.Dial(host, "mds")
	if err != nil {
		tc.t.Fatal(err)
	}
	devs := make(map[uint32]BlockDevice, len(tc.devices))
	for id, d := range tc.devices {
		devs[id] = d
	}
	return New(Config{
		Name:            host,
		MDS:             rpc.NewClient(conn, tc.clk),
		Devices:         devs,
		Clock:           tc.clk,
		Mode:            mode,
		DelegationChunk: delegation,
		PoolInterval:    time.Millisecond,
		EarlyVisibility: early,
	})
}

func writeFile(t *testing.T, c *Client, path string, data []byte) {
	t.Helper()
	f, err := c.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func readFile(t *testing.T, c *Client, path string) []byte {
	t.Helper()
	f, err := c.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, f.Size())
	n, err := f.ReadAt(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	return buf[:n]
}

func pattern(n int, seed byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i)*7 + seed
	}
	return p
}

func TestWriteReadRoundTripBothModes(t *testing.T) {
	for _, mode := range []Mode{SyncCommit, DelayedCommit} {
		t.Run(mode.String(), func(t *testing.T) {
			tc := newCluster(t)
			c := tc.client(mode, 0)
			data := pattern(10000, 3)
			writeFile(t, c, "/f.dat", data)
			got := readFile(t, c, "/f.dat")
			if !bytes.Equal(got, data) {
				t.Fatal("read-your-write mismatch")
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCrossClientVisibilityAfterDrain(t *testing.T) {
	tc := newCluster(t)
	w := tc.client(DelayedCommit, 0)
	data := pattern(8192, 9)
	writeFile(t, w, "/shared.dat", data)
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	r := tc.client(SyncCommit, 0)
	got := readFile(t, r, "/shared.dat")
	if !bytes.Equal(got, data) {
		t.Fatal("cross-client read mismatch after drain")
	}
	w.Close()
	r.Close()
}

func TestOrderedWriteInvariantUnderLoad(t *testing.T) {
	// The MDS CommitCheck oracle fails any commit whose data is not yet
	// durable. Hammer the delayed path; every commit must pass.
	tc := newCluster(t)
	c := tc.client(DelayedCommit, 16<<20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				path := fmt.Sprintf("/g%d-f%d", g, i)
				f, err := c.Create(path)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := f.WriteAt(pattern(4096, byte(i)), 0); err != nil {
					t.Error(err)
					return
				}
				f.Close()
			}
		}()
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatalf("close (drain) failed — an ordered-write violation surfaced: %v", err)
	}
	// Global invariant at the metadata level too.
	bad := tc.store.CheckConsistent(func(dev int, off, n int64) bool {
		return tc.devices[uint32(dev)].IsDurable(off, n)
	})
	if len(bad) != 0 {
		t.Fatalf("%d committed extents without durable data", len(bad))
	}
}

func TestCommitDedupReducesRPCs(t *testing.T) {
	tc := newCluster(t)
	c := tc.client(DelayedCommit, 0)
	f, err := c.Create("/hot.dat")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := f.WriteAt(pattern(512, byte(i)), int64(i)*512); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.QueueDedup == 0 {
		t.Fatalf("no dedup for 50 writes to one file: %+v", st)
	}
	if st.CommitsSent >= 50 {
		t.Fatalf("dedup ineffective: %d commits for 50 writes", st.CommitsSent)
	}
}

func TestDelegationAllocatesLocally(t *testing.T) {
	tc := newCluster(t)
	c := tc.client(DelayedCommit, 16<<20)
	var lastEnd int64 = -1
	contiguous := 0
	for i := 0; i < 20; i++ {
		f, err := c.Create(fmt.Sprintf("/small-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(pattern(4096, byte(i)), 0); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.LocalAllocs != 20 {
		t.Fatalf("local allocs = %d, want 20", st.LocalAllocs)
	}
	if st.Delegations < 1 {
		t.Fatal("no delegation chunk requested")
	}
	// The files' extents must be contiguous on disk (the point of
	// delegation). Verify through the committed metadata.
	for i := 0; i < 20; i++ {
		attr, err := tc.store.Lookup(meta.RootID, fmt.Sprintf("/small-%d", i)[1:])
		if err != nil {
			t.Fatal(err)
		}
		lay, err := tc.store.GetLayout(attr.ID, 0, 4096, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(lay.Extents) != 1 {
			t.Fatalf("file %d has %d extents", i, len(lay.Extents))
		}
		if lastEnd >= 0 && lay.Extents[0].VolOff == lastEnd {
			contiguous++
		}
		lastEnd = lay.Extents[0].VolOff + lay.Extents[0].Len
	}
	if contiguous < 15 {
		t.Fatalf("only %d of 19 successive files contiguous", contiguous)
	}
}

func TestLargeFileBypassesDelegation(t *testing.T) {
	tc := newCluster(t)
	c := tc.client(DelayedCommit, 1<<20) // 1 MiB chunks
	data := pattern(3<<20, 5)            // 3 MiB write > chunk
	writeFile(t, c, "/big.bin", data)
	got := readFile(t, c, "/big.bin")
	if !bytes.Equal(got, data) {
		t.Fatal("large file mismatch")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFsyncForcesDurability(t *testing.T) {
	tc := newCluster(t)
	c := tc.client(DelayedCommit, 0)
	f, err := c.Create("/mail/../mail.mbox") // also exercises odd paths
	if err != nil {
		// ".." is not supported; use a plain path.
		f, err = c.Create("/mail.mbox")
		if err != nil {
			t.Fatal(err)
		}
	}
	data := pattern(4096, 1)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// Committed immediately: a second client sees it without any drain.
	r := tc.client(SyncCommit, 0)
	got := readFile(t, r, "/mail.mbox")
	if !bytes.Equal(got, data) {
		t.Fatal("fsynced data not visible")
	}
	f.Close()
	c.Close()
	r.Close()
}

func TestAppend(t *testing.T) {
	tc := newCluster(t)
	c := tc.client(DelayedCommit, 16<<20)
	f, err := c.Create("/log")
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for i := 0; i < 10; i++ {
		chunk := pattern(1000, byte(i))
		off, err := f.Append(chunk)
		if err != nil {
			t.Fatal(err)
		}
		if off != int64(i)*1000 {
			t.Fatalf("append %d landed at %d", i, off)
		}
		want = append(want, chunk...)
	}
	got := make([]byte, len(want))
	n, err := f.ReadAt(got, 0)
	if err != nil || n != len(want) {
		t.Fatalf("read %d, %v", n, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("append content mismatch")
	}
	f.Close()
	c.Close()
}

func TestSparseHolesReadZero(t *testing.T) {
	tc := newCluster(t)
	c := tc.client(SyncCommit, 0)
	f, err := c.Create("/sparse")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("tail"), 100000); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 50)
	n, err := f.ReadAt(buf, 500)
	if err != nil || n != 50 {
		t.Fatalf("hole read = %d, %v", n, err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
	f.Close()
	c.Close()
}

func TestReadPastEOF(t *testing.T) {
	tc := newCluster(t)
	c := tc.client(SyncCommit, 0)
	f, _ := c.Create("/short")
	f.WriteAt([]byte("abc"), 0)
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if err != nil || n != 3 {
		t.Fatalf("short read = %d, %v", n, err)
	}
	if n, _ := f.ReadAt(buf, 100); n != 0 {
		t.Fatalf("read past EOF = %d", n)
	}
	f.Close()
	c.Close()
}

func TestPartialPageOverwritePreservesNeighbours(t *testing.T) {
	tc := newCluster(t)
	c := tc.client(SyncCommit, 0)
	f, _ := c.Create("/partial")
	base := pattern(2*PageSize, 1)
	if _, err := f.WriteAt(base, 0); err != nil {
		t.Fatal(err)
	}
	// Overwrite 100 bytes straddling the page boundary.
	patch := bytes.Repeat([]byte{0xEE}, 100)
	if _, err := f.WriteAt(patch, PageSize-50); err != nil {
		t.Fatal(err)
	}
	f.Close()
	c.Drain()
	// A fresh client (no cache) must see base with the patch applied.
	r := tc.client(SyncCommit, 0)
	got := readFile(t, r, "/partial")
	want := append([]byte(nil), base...)
	copy(want[PageSize-50:], patch)
	if !bytes.Equal(got, want) {
		t.Fatal("partial-page overwrite corrupted neighbours")
	}
	c.Close()
	r.Close()
}

func TestMkdirStatReadDirRemove(t *testing.T) {
	tc := newCluster(t)
	c := tc.client(DelayedCommit, 0)
	if err := c.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/a/b"); err != nil {
		t.Fatal(err)
	}
	writeFile(t, c, "/a/b/f.txt", pattern(100, 0))
	info, err := c.Stat("/a/b/f.txt")
	if err != nil || info.Size != 100 || info.Dir {
		t.Fatalf("stat = %+v, %v", info, err)
	}
	if info, err := c.Stat("/a"); err != nil || !info.Dir {
		t.Fatalf("dir stat = %+v, %v", info, err)
	}
	ents, err := c.ReadDir("/a/b")
	if err != nil || len(ents) != 1 || ents[0].Name != "f.txt" {
		t.Fatalf("readdir = %+v, %v", ents, err)
	}
	if err := c.Remove("/a/b/f.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/a/b/f.txt"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("stat removed err = %v", err)
	}
	if err := c.Remove("/a/b"); err != nil {
		t.Fatal(err)
	}
	c.Close()
}

func TestOpenErrors(t *testing.T) {
	tc := newCluster(t)
	c := tc.client(SyncCommit, 0)
	if _, err := c.Open("/nope"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("open missing err = %v", err)
	}
	c.Mkdir("/d")
	if _, err := c.Open("/d"); !errors.Is(err, fsapi.ErrIsDir) {
		t.Fatalf("open dir err = %v", err)
	}
	writeFile(t, c, "/f", []byte("x"))
	if _, err := c.Create("/f"); !errors.Is(err, fsapi.ErrExist) {
		t.Fatalf("create dup err = %v", err)
	}
	c.Close()
}

func TestDoubleCloseFileAndClient(t *testing.T) {
	tc := newCluster(t)
	c := tc.client(SyncCommit, 0)
	f, _ := c.Create("/f")
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); !errors.Is(err, fsapi.ErrClosed) {
		t.Fatalf("double close err = %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); !errors.Is(err, fsapi.ErrClosed) {
		t.Fatalf("double client close err = %v", err)
	}
}

func TestCrashOrphansAreGCd(t *testing.T) {
	tc := newCluster(t)
	free0 := tc.store.Delegations("client-1") // 0
	_ = free0
	c := tc.client(DelayedCommit, 1<<20)
	f, err := c.Create("/doomed")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(pattern(4096, 1), 0); err != nil {
		t.Fatal(err)
	}
	// Crash before the background commit can fire... or after; either
	// way the delegation chunk's unused space must come back.
	c.Crash()
	reclaimed := tc.store.ClientGone(c.cfg.Name)
	if reclaimed == 0 {
		t.Fatal("nothing reclaimed from crashed client")
	}
	// Invariant: whatever IS committed references durable data.
	bad := tc.store.CheckConsistent(func(dev int, off, n int64) bool {
		return tc.devices[uint32(dev)].IsDurable(off, n)
	})
	if len(bad) != 0 {
		t.Fatalf("%d inconsistent extents after crash GC", len(bad))
	}
}

func TestStatsSnapshot(t *testing.T) {
	tc := newCluster(t)
	c := tc.client(DelayedCommit, 16<<20)
	writeFile(t, c, "/s1", pattern(4096, 1))
	readFile(t, c, "/s1")
	c.Drain()
	st := c.Stats()
	if st.Creates != 1 || st.Writes != 1 || st.Reads == 0 || st.Closes != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesWritten != 4096 {
		t.Fatalf("bytes written = %d", st.BytesWritten)
	}
	if st.RPCs == 0 || st.CommitsSent == 0 {
		t.Fatalf("rpc stats = %+v", st)
	}
	c.Close()
}

func TestConcurrentFilesManyWriters(t *testing.T) {
	tc := newCluster(t)
	c := tc.client(DelayedCommit, 16<<20)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				path := fmt.Sprintf("/w%d-%d", g, i)
				data := pattern(2048, byte(g*31+i))
				writeFile(t, c, path, data)
				got := readFile(t, c, path)
				if !bytes.Equal(got, data) {
					t.Errorf("%s mismatch", path)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAtNegativeOffset(t *testing.T) {
	tc := newCluster(t)
	c := tc.client(SyncCommit, 0)
	f, _ := c.Create("/f")
	if _, err := f.WriteAt([]byte("x"), -1); err == nil {
		t.Fatal("negative write offset accepted")
	}
	if _, err := f.ReadAt(make([]byte, 1), -1); err == nil {
		t.Fatal("negative read offset accepted")
	}
	if n, err := f.WriteAt(nil, 0); n != 0 || err != nil {
		t.Fatalf("empty write = %d, %v", n, err)
	}
	f.Close()
	c.Close()
}

func TestFixedCommitThreadsPinned(t *testing.T) {
	tc := newCluster(t)
	tc.nextID++
	host := fmt.Sprintf("client-%d", tc.nextID)
	tc.net.AddHost(host, netsim.Instant())
	conn, err := tc.net.Dial(host, "mds")
	if err != nil {
		t.Fatal(err)
	}
	devs := map[uint32]BlockDevice{0: tc.devices[0]}
	// The client gets its own manual clock so the pool's resize ticks are
	// driven explicitly — no wall-clock polling. (Data-path waits go
	// through the devices, which run on the cluster clock.)
	mclk := clock.NewManual()
	c := New(Config{
		Name: host, MDS: rpc.NewClient(conn, tc.clk), Devices: devs, Clock: mclk,
		Mode: DelayedCommit, FixedCommitThreads: 4, PoolInterval: time.Millisecond,
	})
	defer c.Close()
	// A pinned pool is sized synchronously in New.
	if got := c.CommitThreads(); got != 4 {
		t.Fatalf("pinned pool size = %d, want 4", got)
	}
	// Drive several resize ticks; the pin must hold through each.
	for i := 0; i < 3; i++ {
		for mclk.Waiters() == 0 {
			// The resizer re-arms its timer between ticks; yield until
			// it is parked on the clock again.
			runtime.Gosched()
		}
		mclk.Advance(time.Millisecond)
		if got := c.CommitThreads(); got != 4 {
			t.Fatalf("tick %d: pinned pool size = %d, want 4", i+1, got)
		}
	}
	// Still functional.
	writeFile(t, c, "/pinned", pattern(4096, 1))
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestCommitEvenIfCleanSendsExtraRPCs(t *testing.T) {
	tc := newCluster(t)
	tc.nextID++
	host := fmt.Sprintf("client-%d", tc.nextID)
	tc.net.AddHost(host, netsim.Instant())
	conn, err := tc.net.Dial(host, "mds")
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{
		Name: host, MDS: rpc.NewClient(conn, tc.clk),
		Devices: map[uint32]BlockDevice{0: tc.devices[0]}, Clock: tc.clk,
		Mode: DelayedCommit, CommitEvenIfClean: true,
	})
	defer c.Close()
	writeFile(t, c, "/f", pattern(4096, 1))
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	before := c.Stats().CommitsSent
	// Fsync on an already-clean file still sends a commit in this mode.
	f, _ := c.Open("/f")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if got := c.Stats().CommitsSent; got <= before {
		t.Fatalf("clean commit not sent: %d -> %d", before, got)
	}
}

func TestStatReflectsLocalUncommittedSize(t *testing.T) {
	tc := newCluster(t)
	c := tc.client(DelayedCommit, 16<<20)
	defer c.Close()
	f, err := c.Create("/grow")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(pattern(10000, 1), 0); err != nil {
		t.Fatal(err)
	}
	// Before any commit lands, Stat must already report the local size.
	info, err := c.Stat("/grow")
	if err != nil || info.Size != 10000 {
		t.Fatalf("stat = %+v, %v", info, err)
	}
	f.Close()
}

// uncommittedWriter simulates a delayed-commit writer frozen in the window
// between data durability and metadata commit: it creates a file over raw
// RPC, allocates extents, and writes durable data into them — but never
// sends the commit. Returns the pattern written and the allocated extents.
func uncommittedWriter(t *testing.T, tc *testCluster, path string, n int) ([]byte, []meta.Extent) {
	t.Helper()
	tc.net.AddHost("rawwriter", netsim.Instant())
	conn, err := tc.net.Dial("rawwriter", "mds")
	if err != nil {
		t.Fatal(err)
	}
	w := rpc.NewClient(conn, tc.clk)
	t.Cleanup(func() { w.Close() })
	var attr proto.AttrResp
	if err := w.Call(proto.OpCreate, &proto.CreateReq{Parent: meta.RootID, Name: path, Type: meta.TypeFile}, &attr); err != nil {
		t.Fatal(err)
	}
	var lay proto.LayoutResp
	req := &proto.LayoutGetReq{Owner: "rawwriter", File: attr.ID, Off: 0, Len: int64(n), Flags: meta.LayoutWrite}
	if err := w.Call(proto.OpLayoutGet, req, &lay); err != nil {
		t.Fatal(err)
	}
	data := pattern(n, 21)
	for _, e := range lay.Extents {
		if err := <-tc.devices[e.Dev].WriteAsync(e.VolOff, data[e.FileOff:e.FileOff+e.Len]); err != nil {
			t.Fatal(err)
		}
	}
	return data, lay.Extents
}

// TestEarlyVisibilityConflictRead is the tentpole behavior: with the knob on,
// a reader observes a peer's durable-but-uncommitted bytes without waiting
// for the commit; with the knob off, the same read returns nothing.
func TestEarlyVisibilityConflictRead(t *testing.T) {
	tc := newCluster(t)
	data, _ := uncommittedWriter(t, tc, "conflict.dat", 8192)

	// Committed-only reader: the file exists but appears empty.
	plain := tc.client(SyncCommit, 0)
	defer plain.Close()
	pf, err := plain.Open("/conflict.dat")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8192)
	if n, err := pf.ReadAt(buf, 0); err != nil || n != 0 {
		t.Fatalf("committed-only read = %d, %v; want 0 bytes", n, err)
	}
	pf.Close()

	// Early-visibility reader: sees the uncommitted bytes immediately.
	ev := tc.clientEV(SyncCommit, 0, true)
	defer ev.Close()
	ef, err := ev.Open("/conflict.dat")
	if err != nil {
		t.Fatal(err)
	}
	n, err := ef.ReadAt(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8192 || !bytes.Equal(buf[:n], data) {
		t.Fatalf("early-visible read: n=%d, mismatch=%v", n, !bytes.Equal(buf[:n], data))
	}
	// The foreign uncommitted extents stayed transient: the reader's cached
	// layout holds no uncommitted entries it could ever sweep into a commit.
	fs := ef.(*File).fs
	fs.mu.Lock()
	for _, e := range fs.extents {
		if e.State == meta.StateUncommitted {
			fs.mu.Unlock()
			t.Fatalf("foreign uncommitted extent cached in fs.extents: %+v", e)
		}
	}
	fs.mu.Unlock()
	ef.Close()
	if err := ev.Drain(); err != nil {
		t.Fatal(err)
	}
	// The MDS still shows the file uncommitted: reading did not commit.
	id, err := tc.store.Lookup(meta.RootID, "conflict.dat")
	if err != nil {
		t.Fatal(err)
	}
	if id.Size != 0 {
		t.Fatalf("reader side-effect: committed size = %d", id.Size)
	}
	lay, err := tc.store.GetLayout(id.ID, 0, 8192, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(lay.Extents) != 0 {
		t.Fatalf("reader committed foreign extents: %+v", lay.Extents)
	}
}

// TestEarlyVisibilityDisabledWithoutV2 pins the downgrade path end to end: a
// client with the knob on but a v1 session (the MDS never negotiated v2)
// must behave exactly like a committed-only reader.
func TestEarlyVisibilityDisabledWithoutV2(t *testing.T) {
	tc := newCluster(t)
	uncommittedWriter(t, tc, "conflict.dat", 4096)
	ev := tc.clientEV(SyncCommit, 0, true)
	defer ev.Close()
	// Force the session back to v1, as if the handshake had been lost.
	ev.protoVersion.Store(proto.ProtoV1)
	f, err := ev.Open("/conflict.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4096)
	if n, err := f.ReadAt(buf, 0); err != nil || n != 0 {
		t.Fatalf("v1-session early-visibility read = %d, %v; want 0 bytes", n, err)
	}
}
