// Package sim exercises the simclock analyzer: simulated code must not read
// the wall clock or draw from the global math/rand source.
package sim

import (
	"math/rand"
	"time"
)

// badNow stamps with the wall clock.
func badNow() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

func badSleep() {
	time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock`
}

func badAfter() <-chan time.Time {
	return time.After(time.Second) // want `time.After reads the wall clock`
}

// badGlobalRand draws from the process-global source.
func badGlobalRand() int {
	return rand.Intn(10) // want `global math/rand source`
}

// goodInjected threads a seeded generator; method calls on *rand.Rand are
// deterministic under an injected seed.
func goodInjected(rng *rand.Rand) int {
	return rng.Intn(10)
}

// goodConstructor builds the injected generator; constructors do not touch
// the global source.
func goodConstructor() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

// goodAllowed is an annotated real-world bridge (the escape hatch cmd/
// binaries and internal/clock use).
func goodAllowed() time.Time {
	return time.Now() //lint:allow wallclock — fixture exercises the escape hatch
}
