// Command redbud-client mounts a Redbud file system over TCP against a
// running redbud-mds and one or more redbud-disk servers, then executes one
// operation:
//
//	redbud-client -mds :9000 -disk 0=:9001 put /hello.txt "hi there"
//	redbud-client -mds :9000 -disk 0=:9001 get /hello.txt
//	redbud-client -mds :9000 -disk 0=:9001 ls /
//	redbud-client -mds :9000 -disk 0=:9001 mkdir /docs
//	redbud-client -mds :9000 -disk 0=:9001 rm /hello.txt
//	redbud-client -mds :9000 -disk 0=:9001 mv /hello.txt /docs/hello.txt
//	redbud-client -mds :9000 -disk 0=:9001 stat /hello.txt
//	redbud-client -mds :9000 -disk 0=:9001 bench 200   # write+read 200 files
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"redbud/internal/client"
	"redbud/internal/clock"
	"redbud/internal/netsim"
	"redbud/internal/obs"
	"redbud/internal/obs/debughttp"
	"redbud/internal/rpc"
	"redbud/internal/san"
)

type diskFlags map[uint32]string

func (d diskFlags) String() string { return fmt.Sprint(map[uint32]string(d)) }

func (d diskFlags) Set(v string) error {
	id, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want ID=ADDR, got %q", v)
	}
	n, err := strconv.ParseUint(id, 10, 32)
	if err != nil {
		return err
	}
	d[uint32(n)] = addr
	return nil
}

func main() {
	disks := diskFlags{}
	var (
		mdsAddr = flag.String("mds", ":9000", "MDS address")
		name    = flag.String("name", "", "client name (default: host:pid)")
		sync    = flag.Bool("sync", false, "use synchronous commit instead of delayed")
		deleg   = flag.Int64("delegation", 16<<20, "space delegation chunk (0 disables)")
		debug   = flag.String("debug", "", "debug HTTP listen address (/metrics, /debug/trace, pprof; empty disables)")
	)
	flag.Var(disks, "disk", "data device as ID=ADDR (repeatable)")
	flag.Parse()
	if len(disks) == 0 {
		log.Fatal("need at least one -disk ID=ADDR")
	}
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("usage: redbud-client [flags] {put|get|ls|mkdir|rm|mv|stat|bench} ...")
	}

	clk := clock.Real(1)
	mconn, err := net.Dial("tcp", *mdsAddr)
	if err != nil {
		log.Fatalf("dial mds: %v", err)
	}
	devs := make(map[uint32]client.BlockDevice, len(disks))
	for id, addr := range disks {
		dc, err := net.Dial("tcp", addr)
		if err != nil {
			log.Fatalf("dial disk %d: %v", id, err)
		}
		devs[id] = san.NewRemoteDevice(netsim.FrameConn(dc), clk)
	}
	cname := *name
	if cname == "" {
		host, _ := os.Hostname()
		cname = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	mode := client.DelayedCommit
	if *sync {
		mode = client.SyncCommit
	}
	var tracer *obs.Tracer
	if *debug != "" {
		tracer = obs.NewTracer(0)
	}
	c := client.New(client.Config{
		Name:            cname,
		MDS:             rpc.NewClient(netsim.FrameConn(mconn), clk),
		Devices:         devs,
		Clock:           clk,
		Mode:            mode,
		DelegationChunk: *deleg,
		Tracer:          tracer,
	})
	defer c.Close()
	if *debug != "" {
		reg := obs.NewRegistry()
		c.RegisterMetrics(reg)
		dbg, err := debughttp.Start(debughttp.Config{Addr: *debug, Registry: reg, Tracer: tracer})
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		log.Printf("debug HTTP on http://%s/", dbg.Addr())
	}

	switch args[0] {
	case "put":
		need(args, 3, "put PATH DATA")
		f, err := c.Create(args[1])
		check(err)
		_, err = f.WriteAt([]byte(args[2]), 0)
		check(err)
		check(f.Close())
		fmt.Printf("wrote %d bytes to %s\n", len(args[2]), args[1])
	case "get":
		need(args, 2, "get PATH")
		f, err := c.Open(args[1])
		check(err)
		buf := make([]byte, f.Size())
		n, err := f.ReadAt(buf, 0)
		check(err)
		os.Stdout.Write(buf[:n])
		fmt.Println()
		check(f.Close())
	case "ls":
		need(args, 2, "ls PATH")
		ents, err := c.ReadDir(args[1])
		check(err)
		for _, e := range ents {
			kind := "f"
			if e.Dir {
				kind = "d"
			}
			fmt.Printf("%s %10d %s\n", kind, e.Size, e.Name)
		}
	case "mkdir":
		need(args, 2, "mkdir PATH")
		check(c.Mkdir(args[1]))
	case "rm":
		need(args, 2, "rm PATH")
		check(c.Remove(args[1]))
	case "mv":
		need(args, 3, "mv OLD NEW")
		check(c.Rename(args[1], args[2]))
	case "stat":
		need(args, 2, "stat PATH")
		info, err := c.Stat(args[1])
		check(err)
		fmt.Printf("%s: size=%d dir=%v mtime=%s\n", args[1], info.Size, info.Dir, info.MTime.Format(time.RFC3339))
	case "bench":
		need(args, 2, "bench NFILES")
		n, err := strconv.Atoi(args[1])
		check(err)
		payload := make([]byte, 32<<10)
		start := time.Now()
		for i := 0; i < n; i++ {
			f, err := c.Create(fmt.Sprintf("/bench-%s-%d", cname, i))
			check(err)
			_, err = f.WriteAt(payload, 0)
			check(err)
			check(f.Close())
		}
		check(c.Drain())
		el := time.Since(start)
		fmt.Printf("%d x 32KB files in %s (%.1f files/s, %.2f MB/s), %d RPCs\n",
			n, el.Round(time.Millisecond), float64(n)/el.Seconds(),
			float64(n*32<<10)/1e6/el.Seconds(), c.Stats().RPCs)
	default:
		log.Fatalf("unknown command %q", args[0])
	}
}

func need(args []string, n int, usage string) {
	if len(args) < n {
		log.Fatalf("usage: redbud-client %s", usage)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
