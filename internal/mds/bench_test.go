package mds

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"redbud/internal/alloc"
	"redbud/internal/blockdev"
	"redbud/internal/clock"
	"redbud/internal/meta"
	"redbud/internal/netsim"
	"redbud/internal/proto"
	"redbud/internal/rpc"
	"redbud/internal/wire"
)

// benchCommitters is the number of concurrent client goroutines (and files)
// hammering the MDS. It exceeds the widest daemon pool so the pool is always
// the constraint under test.
const benchCommitters = 16

// BenchmarkMDSParallelCommit measures end-to-end commit throughput through
// the full RPC + daemon-pool + store + journal stack while sweeping the
// daemon pool width — the axis Figure 7 sweeps. The journal device charges a
// fixed per-write overhead with elevator merging off, so added daemons only
// help if the metadata hot path really admits concurrency: striped inode
// locks let commits to distinct files proceed in parallel, and journal group
// commit folds their records into one device write. A store serialized
// behind one global mutex with one device write per record shows ~no scaling
// here.
func BenchmarkMDSParallelCommit(b *testing.B) {
	for _, daemons := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("daemons=%d", daemons), func(b *testing.B) {
			benchParallelCommit(b, daemons)
		})
	}
}

func benchParallelCommit(b *testing.B, daemons int) {
	clk := clock.Real(1)
	metaDev := blockdev.New(blockdev.Config{
		Size: 1 << 30,
		Model: blockdev.DiskModel{
			PerRequest:    30 * time.Microsecond,
			BandwidthMBps: 4000,
		},
		DisableMerge: true,
		Clock:        clk,
	})
	defer metaDev.Close()
	journal := meta.NewJournal(metaDev, 0, 1<<29)
	ags := alloc.NewUniformAGSet(alloc.RoundRobin, 0, 1<<30, 4)
	store := meta.NewStore(meta.Config{AGs: ags, Journal: journal, Clock: clk})

	srv := New(Config{Store: store, Clock: clk, Daemons: daemons})
	defer srv.Close()
	n := netsim.NewNetwork(clk)
	n.AddHost("c", netsim.Instant())
	n.AddHost("s", netsim.Instant())
	l, err := n.Listen("s")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)
	conn, err := n.Dial("c", "s")
	if err != nil {
		b.Fatal(err)
	}
	cli := rpc.NewClient(conn, clk)
	defer cli.Close()

	// One file per committer, with its extent pre-allocated; the measured
	// loop is pure commit traffic (journal append + inode update), the
	// metadata hot path of a delayed-commit burst.
	bodies := make([][]byte, benchCommitters)
	for i := range bodies {
		attr, err := store.Create(meta.RootID, fmt.Sprintf("f%d", i), meta.TypeFile)
		if err != nil {
			b.Fatal(err)
		}
		lay, err := store.AllocLayout("bench", attr.ID, 0, 4096)
		if err != nil {
			b.Fatal(err)
		}
		req := proto.CommitReq{
			Owner: "bench", File: attr.ID, Size: 4096,
			MTime: time.Unix(1, 0).UTC(), Extents: lay.Extents,
		}
		bodies[i] = wire.Encode(&req)
	}

	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < benchCommitters; w++ {
		iters := b.N / benchCommitters
		if w < b.N%benchCommitters {
			iters++
		}
		wg.Add(1)
		go func(w, iters int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := cli.CallRaw(proto.OpCommit, bodies[w]); err != nil {
					b.Error(err)
					return
				}
			}
		}(w, iters)
	}
	wg.Wait()
}
