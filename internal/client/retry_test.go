package client

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"redbud/internal/netsim"
	"redbud/internal/rpc"
)

// ---------------------------------------------------------------------------
// backoffDelay: cap, jitter envelope, and seed determinism.

func TestBackoffDelayTable(t *testing.T) {
	cases := []struct {
		name      string
		attempt   int
		base, max time.Duration
		lo, hi    time.Duration // jitter envelope [cap/2, cap]
	}{
		{"first attempt", 0, time.Millisecond, 200 * time.Millisecond, 500 * time.Microsecond, time.Millisecond},
		{"third attempt doubles twice", 2, time.Millisecond, 200 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond},
		{"deep attempt hits the cap", 20, time.Millisecond, 200 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond},
		{"cap clamps mid-doubling", 4, 10 * time.Millisecond, 40 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond},
		{"zero config uses defaults", 0, 0, 0, 500 * time.Microsecond, time.Millisecond},
	}
	rng := rand.New(rand.NewSource(1))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for i := 0; i < 200; i++ {
				d := backoffDelay(tc.attempt, tc.base, tc.max, rng)
				if d < tc.lo || d > tc.hi {
					t.Fatalf("delay %v outside [%v, %v]", d, tc.lo, tc.hi)
				}
			}
		})
	}
}

func TestBackoffJitterDeterministicUnderSeed(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		out := make([]time.Duration, 32)
		for i := range out {
			out[i] = backoffDelay(i%6, time.Millisecond, 100*time.Millisecond, rng)
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

// ---------------------------------------------------------------------------
// Retry behavior against a live cluster.

// retryClient mounts a client with an explicit retry policy and an optional
// redial function whose invocations are counted.
func (tc *testCluster) retryClient(mode Mode, delegation int64, pol RetryPolicy, redial bool) (*Client, *atomic.Int64) {
	tc.t.Helper()
	tc.nextID++
	host := fmt.Sprintf("rclient-%d", tc.nextID)
	tc.net.AddHost(host, netsim.Instant())
	dial := func() (*rpc.Client, error) {
		conn, err := tc.net.Dial(host, "mds")
		if err != nil {
			return nil, err
		}
		return rpc.NewClient(conn, tc.clk), nil
	}
	first, err := dial()
	if err != nil {
		tc.t.Fatal(err)
	}
	devs := make(map[uint32]BlockDevice, len(tc.devices))
	for id, d := range tc.devices {
		devs[id] = d
	}
	redials := new(atomic.Int64)
	cfg := Config{
		Name:            host,
		MDS:             first,
		Devices:         devs,
		Clock:           tc.clk,
		Mode:            mode,
		DelegationChunk: delegation,
		SpaceNoPrefetch: true, // no background refill RPCs racing the fault scripts
		PoolInterval:    time.Millisecond,
		Retry:           pol,
	}
	if redial {
		cfg.Redial = func() (*rpc.Client, error) {
			redials.Add(1)
			return dial()
		}
	}
	return New(cfg), redials
}

func TestIdempotentCallRetriesAcrossReconnect(t *testing.T) {
	tc := newCluster(t)
	c, redials := tc.retryClient(SyncCommit, 0, RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond,
	}, true)
	defer c.Close()
	writeFile(t, c, "/pre", pattern(4096, 1))
	// Kill the live connection out from under the client: the idempotent
	// GetAttr behind Stat must redial and succeed.
	mds, _ := c.links[0].conn()
	mds.Close()
	info, err := c.Stat("/pre")
	if err != nil {
		t.Fatalf("Stat after connection death = %v, want retried success", err)
	}
	if info.Size != 4096 {
		t.Fatalf("Stat size = %d, want 4096", info.Size)
	}
	if redials.Load() == 0 {
		t.Fatal("retry succeeded without a recorded redial")
	}
}

func TestNonIdempotentOpsAreNotRetried(t *testing.T) {
	tc := newCluster(t)
	c, redials := tc.retryClient(SyncCommit, 0, RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond,
	}, true)
	mds, _ := c.links[0].conn()
	mds.Close()
	if _, err := c.Create("/f"); err == nil {
		t.Fatal("Create on a dead connection succeeded; a duplicate create could have been sent")
	}
	if n := redials.Load(); n != 0 {
		t.Fatalf("non-idempotent Create triggered %d redials, want 0", n)
	}
}

// waitDelegationQuiet waits until the space pool's background refill has
// landed (first blocking refill plus the standby prefetch launched on
// promotion), so no stray Delegate reply races an armed fault script.
func waitDelegationQuiet(t *testing.T, c *Client) {
	t.Helper()
	pool := c.spacePool()
	if pool == nil {
		return
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, refills, _ := pool.Stats()
		if refills >= 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("delegation refill never settled")
		}
		time.Sleep(time.Millisecond)
	}
}

// armDropNextFromMDS installs a scripted fault that discards exactly the next
// frame the MDS sends to anyone — in these tests, a commit reply.
func armDropNextFromMDS(tc *testCluster) {
	var armed atomic.Bool
	armed.Store(true)
	tc.net.InstallFaults(netsim.FaultPlan{
		Script: func(from, to string, n int) *netsim.Decision {
			if from == "mds" && armed.CompareAndSwap(true, false) {
				return &netsim.Decision{Drop: true}
			}
			return nil
		},
	})
}

// TestDroppedCommitReplyFailsWithoutRetry is the pre-retry baseline: with the
// old single-attempt behavior (MaxAttempts 1), losing a commit reply turns
// into a hard error at the durability point.
func TestDroppedCommitReplyFailsWithoutRetry(t *testing.T) {
	tc := newCluster(t)
	c, _ := tc.retryClient(SyncCommit, 1<<20, RetryPolicy{
		MaxAttempts: 1, CallTimeout: 30 * time.Millisecond,
	}, false)
	defer c.Close()
	f, err := c.Create("/victim")
	if err != nil {
		t.Fatal(err)
	}
	// Warm write: delegation grant and first commit happen unfaulted.
	if _, err := f.WriteAt(pattern(4096, 1), 0); err != nil {
		t.Fatal(err)
	}
	waitDelegationQuiet(t, c)
	armDropNextFromMDS(tc)
	defer tc.net.ClearFaults()
	_, err = f.WriteAt(pattern(4096, 2), 4096)
	if err == nil {
		t.Fatal("write with dropped commit reply succeeded under the no-retry config")
	}
	if !errors.Is(err, rpc.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

// TestDroppedCommitReplyRecoveredByRetryDedup is the regression pair of the
// test above: the same fault with retry enabled succeeds, and the
// retransmission is answered from the MDS dedup table rather than re-applied.
func TestDroppedCommitReplyRecoveredByRetryDedup(t *testing.T) {
	tc := newCluster(t)
	c, _ := tc.retryClient(SyncCommit, 1<<20, RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond,
		CallTimeout: 30 * time.Millisecond,
	}, false)
	defer c.Close()
	f, err := c.Create("/victim")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(pattern(4096, 1), 0); err != nil {
		t.Fatal(err)
	}
	waitDelegationQuiet(t, c)
	armDropNextFromMDS(tc)
	defer tc.net.ClearFaults()
	if _, err := f.WriteAt(pattern(4096, 2), 4096); err != nil {
		t.Fatalf("retry+dedup failed to recover the dropped commit reply: %v", err)
	}
	if hits := tc.mds.DedupHits(); hits < 1 {
		t.Fatalf("DedupHits = %d, want >= 1: the retransmission was re-applied, not deduped", hits)
	}
	// The recovered commit left the store consistent and the data readable.
	bad := tc.store.CheckConsistent(func(dev int, off, n int64) bool {
		return tc.devices[uint32(dev)].IsDurable(off, n)
	})
	if len(bad) != 0 {
		t.Fatalf("inconsistent after recovered commit: %+v", bad)
	}
	got := readFile(t, c, "/victim")
	want := append(pattern(4096, 1), pattern(4096, 2)...)
	if len(got) != len(want) {
		t.Fatalf("read %d bytes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], want[i])
		}
	}
}
