// Quickstart: assemble a simulated Redbud cluster, write a file through the
// delayed-commit path, and read it back from another client node.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"redbud"
)

func main() {
	// Two client nodes, delayed commit with 16 MiB space delegation —
	// the full configuration the paper evaluates. FastDevices swaps the
	// 2012-era disk model for a light one so the demo runs instantly.
	cluster, err := redbud.New(redbud.Config{
		Clients:         2,
		Mode:            redbud.DelayedCommit,
		SpaceDelegation: 16 << 20,
		FastDevices:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fs := cluster.Mount(0)
	if err := fs.Mkdir("/docs"); err != nil {
		log.Fatal(err)
	}

	// The write returns as soon as the data is in the cache and the
	// commit task is queued; background commit daemons keep the write
	// order (data durable before the metadata commit reaches the MDS).
	f, err := fs.Create("/docs/hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	msg := []byte("hello from the delayed commit protocol")
	if _, err := f.WriteAt(msg, 0); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil { // returns immediately: no commit wait
		log.Fatal(err)
	}

	// Drain = wait until every queued commit has been applied at the MDS;
	// afterwards other clients see the file.
	cluster.Drain()

	g, err := cluster.Mount(1).Open("/docs/hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, g.Size())
	n, err := g.ReadAt(buf, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client 1 read: %q\n", buf[:n])

	st := cluster.Stats()
	fmt.Printf("cluster: %d disk writes dispatched (%d merged), %d metadata RPCs\n",
		st.DiskDispatched, st.DiskMerged, st.RPCs)
}
