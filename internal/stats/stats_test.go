package stats

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if got := c.Load(); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 16000 {
		t.Fatalf("counter = %d, want 16000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(5)
	if n := g.Add(-2); n != 3 {
		t.Fatalf("Add returned %d, want 3", n)
	}
	if g.Load() != 3 {
		t.Fatalf("gauge = %d, want 3", g.Load())
	}
}

func TestDurationSum(t *testing.T) {
	var d DurationSum
	if d.Mean() != 0 {
		t.Fatal("empty mean not zero")
	}
	d.Observe(2 * time.Millisecond)
	d.Observe(4 * time.Millisecond)
	if d.Count() != 2 {
		t.Fatalf("count = %d", d.Count())
	}
	if d.Total() != 6*time.Millisecond {
		t.Fatalf("total = %v", d.Total())
	}
	if d.Mean() != 3*time.Millisecond {
		t.Fatalf("mean = %v", d.Mean())
	}
}

func TestHistogramInvalidArgs(t *testing.T) {
	cases := []struct {
		lo, hi float64
		n      int
	}{
		{0, 1, 4}, {1, 1, 4}, {1, 10, 0}, {-1, 10, 4},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v,%v,%d) did not panic", c.lo, c.hi, c.n)
				}
			}()
			NewHistogram(c.lo, c.hi, c.n)
		}()
	}
}

func TestHistogramMoments(t *testing.T) {
	h := NewLatencyHistogram()
	for _, v := range []float64{0.001, 0.002, 0.003} {
		h.Observe(v)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); math.Abs(got-0.002) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	if h.Min() != 0.001 || h.Max() != 0.003 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile not zero")
	}
	for i := 0; i < 1000; i++ {
		h.Observe(0.001) // 1ms
	}
	for i := 0; i < 10; i++ {
		h.Observe(1.0) // rare 1s outliers
	}
	p50 := h.Quantile(0.5)
	p999 := h.Quantile(0.9999)
	if p50 > 0.01 {
		t.Fatalf("p50 = %v, want ~1ms", p50)
	}
	if p999 < 0.5 {
		t.Fatalf("p99.99 = %v, want ~1s", p999)
	}
	// Quantile clamps out-of-range q.
	if h.Quantile(-1) <= 0 || h.Quantile(2) <= 0 {
		t.Fatal("clamped quantiles invalid")
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewLatencyHistogram()
	f := func(vs []float64) bool {
		for _, v := range vs {
			h.Observe(math.Abs(v) + 1e-6)
		}
		last := 0.0
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
			cur := h.Quantile(q)
			if cur < last {
				return false
			}
			last = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewLatencyHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.ObserveDuration(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d, want 4000", h.Count())
	}
}

func TestHistogramString(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(0.5)
	if s := h.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("queue")
	if s.Name() != "queue" {
		t.Fatalf("name = %q", s.Name())
	}
	base := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		s.Record(base.Add(time.Duration(i)*time.Second), float64(i))
	}
	if s.Len() != 10 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Max() != 9 {
		t.Fatalf("max = %v", s.Max())
	}
	if s.Mean() != 4.5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	got := s.Samples()
	if len(got) != 10 || got[3].V != 3 {
		t.Fatalf("samples = %v", got)
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries("x")
	if s.Max() != 0 || s.Mean() != 0 || s.Len() != 0 {
		t.Fatal("empty series stats nonzero")
	}
	if ds := s.Downsample(5); len(ds) != 0 {
		t.Fatalf("downsample of empty = %v", ds)
	}
}

func TestSeriesDownsample(t *testing.T) {
	s := NewSeries("x")
	base := time.Unix(0, 0)
	for i := 0; i < 100; i++ {
		s.Record(base.Add(time.Duration(i)*time.Second), float64(i))
	}
	ds := s.Downsample(11)
	if len(ds) != 11 {
		t.Fatalf("downsample len = %d, want 11", len(ds))
	}
	if ds[0].V != 0 || ds[10].V != 99 {
		t.Fatalf("endpoints = %v, %v; want 0, 99", ds[0].V, ds[10].V)
	}
	// Shorter-than-n series returned as-is.
	if got := s.Downsample(1000); len(got) != 100 {
		t.Fatalf("oversized downsample len = %d", len(got))
	}
}

func TestSeriesSamplesIsCopy(t *testing.T) {
	s := NewSeries("x")
	s.Record(time.Unix(0, 0), 1)
	got := s.Samples()
	got[0].V = 42
	if s.Samples()[0].V != 1 {
		t.Fatal("Samples returned a view, not a copy")
	}
}
