package meta

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"redbud/internal/blockdev"
	"redbud/internal/clock"
	"redbud/internal/wire"
)

// RecType enumerates journal record types.
type RecType uint8

// Journal record types.
const (
	RecCreate RecType = iota + 1
	RecRemove
	RecAlloc       // space allocated at layout-get (uncommitted)
	RecCommit      // extents committed; carries final size and mtime
	RecDelegate    // chunk delegated to a client
	RecDelegReturn // delegation returned; unused space freed
	RecClientGone  // client lease revoked; its orphan space freed
	RecRename      // directory entry moved
	// Cross-shard namespace protocol (see shard.go). RecNSIntent publishes a
	// namespace intent (and, for NSCreate, materializes the detached inode);
	// RecNSCommit / RecNSAbort resolve it. RecLinkRemote / RecUnlinkRemote
	// move a directory entry for an inode homed on another shard.
	RecNSIntent
	RecNSCommit
	RecNSAbort
	RecLinkRemote
	RecUnlinkRemote
)

// Record is one journal entry. A single struct covers all record types; the
// Type field says which fields are meaningful.
type Record struct {
	Type    RecType
	File    FileID
	Parent  FileID
	Name    string
	FType   FileType
	Owner   string
	Size    int64
	MTime   time.Time
	Extents []Extent
	// Span fields (delegation records).
	SpanDev uint32
	SpanOff int64
	SpanLen int64
	// Rename destination (RecRename), also the destination entry of an
	// NSRenameDst intent.
	DstParent FileID
	DstName   string
	// NSKind is the namespace-intent kind (RecNSIntent/RecNSCommit/
	// RecNSAbort records).
	NSKind NSIntentKind
}

// MarshalWire encodes the record payload.
func (rec *Record) MarshalWire(b *wire.Buffer) {
	b.PutU8(uint8(rec.Type))
	b.PutU64(uint64(rec.File))
	b.PutU64(uint64(rec.Parent))
	b.PutString(rec.Name)
	b.PutU8(uint8(rec.FType))
	b.PutString(rec.Owner)
	b.PutI64(rec.Size)
	b.PutTime(rec.MTime)
	PutExtents(b, rec.Extents)
	b.PutU32(rec.SpanDev)
	b.PutI64(rec.SpanOff)
	b.PutI64(rec.SpanLen)
	b.PutU64(uint64(rec.DstParent))
	b.PutString(rec.DstName)
	// NSKind is a trailing optional (see the PR 8 wire-evolution rules):
	// only the cross-shard NS record types carry it, so records written by a
	// pre-sharding build — which lack the byte entirely — decode unchanged,
	// and an upgraded MDS replays its old journal instead of treating every
	// record as a torn tail.
	if rec.NSKind != 0 {
		b.PutU8(uint8(rec.NSKind))
	}
}

// UnmarshalWire decodes the record payload.
func (rec *Record) UnmarshalWire(r *wire.Reader) error {
	rec.Type = RecType(r.U8())
	rec.File = FileID(r.U64())
	rec.Parent = FileID(r.U64())
	rec.Name = r.String()
	rec.FType = FileType(r.U8())
	rec.Owner = r.String()
	rec.Size = r.I64()
	rec.MTime = r.Time()
	rec.Extents = GetExtents(r)
	rec.SpanDev = r.U32()
	rec.SpanOff = r.I64()
	rec.SpanLen = r.I64()
	rec.DstParent = FileID(r.U64())
	rec.DstName = r.String()
	if r.Err() == nil && r.Remaining() > 0 {
		rec.NSKind = NSIntentKind(r.U8())
	}
	return r.Err()
}

// Journal errors.
var (
	ErrJournalFull    = errors.New("meta: journal full")
	ErrJournalCorrupt = errors.New("meta: journal corrupt")
)

const (
	journalMagic  = 0x52425201 // "RBR\x01"
	recHeaderSize = 16         // magic u32 + gen u32 + len u32 + crc u32
)

// BatchPolicy tunes group-commit v2: size+deadline batching with an adaptive
// flush deadline. The zero value selects v1 behavior (the leader flushes as
// soon as it runs; batches form only from records that arrive while a device
// write is in flight).
//
// Under v2 the leader holds a batch open for the current deadline before
// writing, so concurrent appenders pile into one device write even when no
// write is in flight. The deadline hill-climbs on batch fill: a batch of
// GrowAt or more records with the deadline at zero probes a small delay
// (MaxDelay/16), and each further doubling of the observed fill doubles the
// delay (toward MaxDelay — bursts are throughput-bound, bigger batches
// amortize the per-request device cost). Growth demands a doubled fill, not
// just a bigger one, so steady-state fill noise (8, 9, 8, ...) cannot ratchet
// the delay up when holding the batch longer is no longer buying records. A
// batch of one halves the delay (toward MinDelay — light load is
// latency-bound, waiting buys nothing), and a batch that reaches MaxBytes is
// written immediately.
//
// The write-ahead contract is untouched: the deadline only delays when a
// batch is written, never what it contains or the order records were framed;
// every waiter is still signalled only after its batch is durable.
type BatchPolicy struct {
	// MaxBytes flushes a batch immediately once this many bytes are
	// pending (default 128 KiB).
	MaxBytes int
	// MinDelay and MaxDelay bound the adaptive deadline. MaxDelay > 0
	// enables v2 (default when enabling via SetBatchPolicy: 200µs);
	// MinDelay defaults to 0 so an idle journal degrades to v1 latency.
	MinDelay, MaxDelay time.Duration
	// GrowAt is the minimum records-per-batch fill that counts as a burst
	// and can grow the deadline (default 2: any coalescing at all is worth
	// probing).
	GrowAt int
	// Clock paces the deadline wait (default clock.Real(1)).
	Clock clock.Clock
}

// Journal is a write-ahead log stored in a region of the metadata device,
// with group commit: concurrent Append calls coalesce into a single device
// write. The first appender to find no flush in progress becomes the batch
// leader and drains the accumulation buffer to the device; records appended
// while a flush is in flight pile into the next batch and ride the next
// write. Batches are flushed strictly in log order by a single flusher at a
// time, and every waiter is signalled only after its batch is durable, so the
// write-ahead rule is untouched — the log can never contain an acknowledged
// record with a hole before it.
type Journal struct {
	dev   *blockdev.Device
	start int64
	size  int64
	// gen is the log epoch: every record is stamped with it, and replay
	// stops at the first record of a different epoch. Checkpointing (see
	// logset.go) bumps the generation when it switches regions, so stale
	// records left in a reused region can never be replayed.
	gen uint32

	mu       sync.Mutex
	tail     int64          // relative offset of the next record
	flushOff int64          // relative offset of the first unflushed byte
	pending  []byte         // framed records awaiting the next device write
	waiters  []chan<- error // one per pending record, in log order
	flushing bool           // a leader is draining batches
	spare    []byte         // recycled accumulation buffer

	appends int64 // records appended (stats)
	batches int64 // device writes issued (stats)

	// Group-commit v2 state (see BatchPolicy), guarded by mu. delay is the
	// current adaptive deadline; growFill is the batch fill observed at the
	// last deadline change — growth requires the fill to have doubled
	// since, which damps steady-state fill noise.
	policy   BatchPolicy
	delay    time.Duration
	growFill int
}

// NewJournal manages [start, start+size) of dev as a generation-0 journal.
// The region is assumed zeroed (a fresh device reads zeros, which terminates
// replay).
func NewJournal(dev *blockdev.Device, start, size int64) *Journal {
	return NewJournalGen(dev, start, size, 0)
}

// NewJournalGen is NewJournal with an explicit log epoch (used by LogSet).
func NewJournalGen(dev *blockdev.Device, start, size int64, gen uint32) *Journal {
	return &Journal{dev: dev, start: start, size: size, gen: gen}
}

// Generation returns the journal's log epoch.
func (j *Journal) Generation() uint32 { return j.gen }

// SetBatchPolicy enables group-commit v2 with p (normalizing unset fields),
// or restores v1 with a zero policy. Safe to call on a live journal; the
// next batch observes it.
func (j *Journal) SetBatchPolicy(p BatchPolicy) {
	if p.MaxDelay > 0 {
		if p.MaxBytes <= 0 {
			p.MaxBytes = 128 << 10
		}
		if p.GrowAt <= 0 {
			p.GrowAt = 2
		}
		if p.Clock == nil {
			p.Clock = clock.Real(1)
		}
		if p.MinDelay < 0 {
			p.MinDelay = 0
		}
	}
	j.mu.Lock()
	j.policy = p
	j.delay = p.MinDelay
	j.growFill = 0
	j.mu.Unlock()
}

// BatchPolicy returns the active group-commit policy (zero when v1).
func (j *Journal) BatchPolicy() BatchPolicy {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.policy
}

// BatchDeadline returns the current adaptive flush deadline (0 under v1 or
// when the journal has adapted fully toward latency).
func (j *Journal) BatchDeadline() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.delay
}

// Tail returns the relative offset one past the last appended record.
func (j *Journal) Tail() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tail
}

// Append encodes rec, reserves journal space, and schedules the record for
// the next group-commit batch. The returned channel yields once the record is
// durable. Callers must wait on it before acknowledging the operation to a
// client (write-ahead rule). The journal-slot reservation order (the order
// concurrent Appends pass through the internal lock) is the replay order;
// store methods reserve their slot while holding the lock that ordered the
// mutation, so replay order equals apply order.
//
//redbud:hotpath
func (j *Journal) Append(rec *Record) <-chan error {
	ch := make(chan error, 1)
	pb := wire.GetBuffer()
	rec.MarshalWire(pb)
	payload := pb.Bytes()
	crc := crc32.ChecksumIEEE(payload)
	need := int64(recHeaderSize + len(payload))

	j.mu.Lock()
	if j.tail+need > j.size {
		used := j.tail
		j.mu.Unlock()
		wire.PutBuffer(pb)
		//lint:allow hotpath — journal-full error path, never taken at steady state
		ch <- fmt.Errorf("%w: %d of %d bytes used", ErrJournalFull, used, j.size)
		return ch
	}
	if j.pending == nil && j.spare != nil {
		j.pending, j.spare = j.spare[:0], nil
	}
	j.pending = binary.LittleEndian.AppendUint32(j.pending, journalMagic)
	j.pending = binary.LittleEndian.AppendUint32(j.pending, j.gen)
	j.pending = binary.LittleEndian.AppendUint32(j.pending, uint32(len(payload)))
	j.pending = binary.LittleEndian.AppendUint32(j.pending, crc)
	j.pending = append(j.pending, payload...)
	j.waiters = append(j.waiters, ch)
	j.tail += need
	j.appends++
	lead := !j.flushing
	if lead {
		j.flushing = true
	}
	j.mu.Unlock()
	wire.PutBuffer(pb)

	if lead {
		go j.flushBatches()
	}
	return ch
}

// flushBatches is the group-commit leader loop: it repeatedly swaps out the
// accumulation buffer, issues one device write for the whole batch, and
// signals the batch's waiters once it is durable. Records appended while a
// write is in flight accumulate into the next batch, so under concurrency the
// per-request device overhead is paid once per batch, not once per record.
//
//redbud:hotpath
func (j *Journal) flushBatches() {
	for {
		j.mu.Lock()
		if len(j.pending) == 0 {
			j.flushing = false
			j.mu.Unlock()
			return
		}
		// Group-commit v2: hold the batch open for the adaptive deadline
		// so concurrent appenders ride this write — unless it is already
		// full. Appends during the wait find flushing=true and pile in.
		if delay := j.delay; delay > 0 && len(j.pending) < j.policy.MaxBytes {
			clk := j.policy.Clock
			j.mu.Unlock()
			clk.Sleep(delay)
			j.mu.Lock()
		}
		buf := j.pending
		waiters := j.waiters
		off := j.flushOff
		j.pending = nil
		j.waiters = nil
		j.flushOff = off + int64(len(buf))
		j.batches++
		if j.policy.MaxDelay > 0 {
			// Hill-climb the deadline on this batch's fill: probe when a
			// burst first coalesces, keep doubling only while doubling the
			// delay keeps doubling the fill, halve on singletons.
			switch fill := len(waiters); {
			case fill <= 1:
				next := j.delay / 2
				if next < j.policy.MinDelay {
					next = j.policy.MinDelay
				}
				j.delay = next
				j.growFill = fill
			case fill >= j.policy.GrowAt && (j.delay == 0 || fill >= 2*j.growFill):
				next := j.delay * 2
				if next == 0 {
					next = j.policy.MaxDelay / 16
					if next == 0 {
						next = j.policy.MaxDelay
					}
				}
				if next > j.policy.MaxDelay {
					next = j.policy.MaxDelay
				}
				j.delay = next
				j.growFill = fill
			}
		}
		j.mu.Unlock()

		// WriteAsync copies buf before returning its channel, so the
		// buffer can be recycled as soon as the write is submitted.
		done := j.dev.WriteAsync(j.start+off, buf)
		j.mu.Lock()
		if j.pending == nil && j.spare == nil {
			j.spare = buf[:0]
		}
		j.mu.Unlock()

		err := <-done
		for _, ch := range waiters {
			ch <- err
		}
	}
}

// GroupCommitStats returns the number of records appended and the number of
// device writes issued for them; appends/batches is the amortization factor.
func (j *Journal) GroupCommitStats() (appends, batches int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appends, j.batches
}

// Replay reads the journal from the device, invoking fn for every valid
// record in order. Replay stops cleanly at the first invalid header or
// record — an unwritten (zero) header, a foreign magic, an overrunning
// length, a checksum mismatch, or an undecodable payload. That is the
// standard write-ahead-log torn-tail rule: a crash can leave at most one
// partially written record, and it must terminate the log rather than fail
// recovery (the record's operation was never acknowledged, because Append's
// caller waits for durability before replying). Torn reports whether replay
// ended at such a damaged record rather than a clean end-of-log.
//
// On return the journal's tail is positioned after the last valid record, so
// subsequent appends overwrite the torn one and continue the log.
func (j *Journal) Replay(fn func(*Record) error) (torn bool, err error) {
	off := int64(0)
	defer func() {
		if err == nil {
			j.mu.Lock()
			j.tail = off
			j.flushOff = off
			j.mu.Unlock()
		}
	}()
	for {
		if off+recHeaderSize > j.size {
			return false, nil
		}
		hdr, err := j.dev.Read(j.start+off, recHeaderSize)
		if err != nil {
			return false, err
		}
		r := wire.NewReader(hdr)
		magic, gen, plen, crc := r.U32(), r.U32(), r.U32(), r.U32()
		if magic == 0 {
			return false, nil // clean end of log
		}
		if magic != journalMagic {
			return true, nil
		}
		if gen != j.gen {
			// A record from an older epoch: this region was reused by
			// a checkpoint and the current log ends here.
			return false, nil
		}
		if int64(plen) > j.size-off-recHeaderSize {
			return true, nil
		}
		payload, err := j.dev.Read(j.start+off+recHeaderSize, int64(plen))
		if err != nil {
			return false, err
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return true, nil
		}
		var rec Record
		if err := wire.Decode(payload, &rec); err != nil {
			return true, nil
		}
		if err := fn(&rec); err != nil {
			return false, err
		}
		off += recHeaderSize + int64(plen)
	}
}
