package meta

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"redbud/internal/blockdev"
	"redbud/internal/wire"
)

// This file implements journal checkpointing — the log-compaction machinery
// a production MDS needs so the write-ahead journal of store.go does not
// grow without bound. The metadata device is laid out as a superblock plus
// two journal regions used alternately:
//
//	[superblock 4K][ region 0 ][ region 1 ]
//
// A checkpoint serializes the entire store state (Store.Snapshot) into the
// inactive region under a new log generation, then atomically flips the
// superblock to point at it. Stale records left in a reused region can never
// replay: every record is stamped with its generation (journal.go), and
// replay stops at the first foreign-generation record. A crash at any point
// is safe — until the superblock write is durable, recovery still uses the
// old region, which remains intact.

const (
	sbMagic = 0x52425342 // "RBSB"
	// SuperblockSize reserves the head of the metadata device.
	SuperblockSize = 4096
)

// ErrBadSuperblock is returned when the superblock fails validation; callers
// usually treat this as "format a fresh log set".
var ErrBadSuperblock = errors.New("meta: invalid superblock")

// LogSet manages the superblock and two alternating journal regions.
type LogSet struct {
	dev        *blockdev.Device
	regionSize int64

	mu     sync.Mutex
	gen    uint32
	active int
}

// regionOff returns the byte offset of region i.
func (ls *LogSet) regionOff(i int) int64 {
	return SuperblockSize + int64(i)*ls.regionSize
}

// OpenLogSet reads (or initializes) the superblock on dev and returns the
// log set plus the active journal, ready for replay and appends. Each of
// the two regions is regionSize bytes.
func OpenLogSet(dev *blockdev.Device, regionSize int64) (*LogSet, *Journal, error) {
	if regionSize <= 0 || SuperblockSize+2*regionSize > dev.Size() {
		return nil, nil, fmt.Errorf("%w: 2 x %d + %d exceeds %d",
			ErrLogTooLarge, regionSize, SuperblockSize, dev.Size())
	}
	ls := &LogSet{dev: dev, regionSize: regionSize}
	gen, active, err := ls.readSuperblock()
	if err != nil {
		if !errors.Is(err, ErrBadSuperblock) {
			return nil, nil, err
		}
		// Fresh device (or damaged superblock): format generation 1,
		// region 0. Region contents are ignored under the new gen.
		gen, active = 1, 0
		ls.gen, ls.active = gen, active
		if err := ls.writeSuperblock(); err != nil {
			return nil, nil, err
		}
	}
	ls.gen, ls.active = gen, active
	return ls, NewJournalGen(dev, ls.regionOff(active), regionSize, gen), nil
}

// Generation returns the current log generation.
func (ls *LogSet) Generation() uint32 {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.gen
}

// ActiveRegion returns the index of the active region.
func (ls *LogSet) ActiveRegion() int {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.active
}

// readSuperblock validates and decodes the superblock.
func (ls *LogSet) readSuperblock() (gen uint32, active int, err error) {
	raw, err := ls.dev.Read(0, 16)
	if err != nil {
		return 0, 0, err
	}
	r := wire.NewReader(raw)
	magic, g, act, sum := r.U32(), r.U32(), r.U32(), r.U32()
	if magic != sbMagic || act > 1 {
		return 0, 0, ErrBadSuperblock
	}
	if crc32.ChecksumIEEE(raw[:12]) != sum {
		return 0, 0, fmt.Errorf("%w: checksum mismatch", ErrBadSuperblock)
	}
	if g == 0 {
		return 0, 0, ErrBadSuperblock
	}
	return g, int(act), nil
}

// writeSuperblock persists the current (gen, active) pair. The 16-byte write
// is atomic at the device level, which is what makes checkpoint flips safe.
// Caller holds ls.mu or has exclusive access.
func (ls *LogSet) writeSuperblock() error {
	var b wire.Buffer
	b.PutU32(sbMagic)
	b.PutU32(ls.gen)
	b.PutU32(uint32(ls.active))
	b.PutU32(crc32.ChecksumIEEE(b.Bytes()))
	return ls.dev.Write(0, b.Bytes())
}

// Checkpoint writes the snapshot records into the inactive region under a
// new generation, flips the superblock, and returns the new active journal.
// On any error the old journal remains the active one and is untouched.
func (ls *LogSet) Checkpoint(snapshot []*Record) (*Journal, error) {
	ls.mu.Lock()
	newGen := ls.gen + 1
	target := 1 - ls.active
	ls.mu.Unlock()

	j := NewJournalGen(ls.dev, ls.regionOff(target), ls.regionSize, newGen)
	waits := make([]<-chan error, 0, len(snapshot))
	for _, rec := range snapshot {
		waits = append(waits, j.Append(rec))
	}
	for _, ch := range waits {
		if err := <-ch; err != nil {
			return nil, fmt.Errorf("meta: checkpoint write failed: %w", err)
		}
	}

	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.gen = newGen
	ls.active = target
	if err := ls.writeSuperblock(); err != nil {
		// Roll back in-memory state; the durable superblock still
		// points at the old region.
		ls.gen = newGen - 1
		ls.active = 1 - target
		return nil, err
	}
	return j, nil
}
