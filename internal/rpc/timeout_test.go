package rpc

import (
	"errors"
	"testing"
	"time"
)

func TestInFlightCallFailsWithErrConnClosed(t *testing.T) {
	cli, _ := newPair(t, ServerConfig{Daemons: 1})
	done := make(chan error, 1)
	go func() {
		_, err := cli.CallRaw(opSlow, nil)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cli.Close()
	err := <-done
	if !errors.Is(err, ErrConnClosed) {
		t.Fatalf("in-flight call err = %v, want ErrConnClosed", err)
	}
	if errors.Is(err, ErrBadFrame) {
		t.Fatalf("conn death must be distinguishable from frame corruption, got %v", err)
	}
	// New calls after the death report both the closed client and the cause.
	_, err = cli.CallRaw(opEcho, nil)
	if !errors.Is(err, ErrClientClosed) || !errors.Is(err, ErrConnClosed) {
		t.Fatalf("post-death call err = %v, want ErrClientClosed wrapping ErrConnClosed", err)
	}
}

func TestCallTimeout(t *testing.T) {
	cli, _ := newPair(t, ServerConfig{Daemons: 1})
	cli.SetCallTimeout(5 * time.Millisecond)
	_, err := cli.CallRaw(opSlow, nil) // opSlow sleeps 20ms
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// The late response for the timed-out call must be dropped, not
	// delivered to a later call: issue fresh calls and check their replies.
	cli.SetCallTimeout(0)
	for i := 0; i < 4; i++ {
		got, err := cli.CallRaw(opEcho, []byte{byte(i)})
		if err != nil {
			t.Fatalf("call %d after timeout: %v", i, err)
		}
		if len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("call %d got %v, want [%d]: late response leaked", i, got, i)
		}
	}
}

func TestCallTimeoutZeroWaitsForever(t *testing.T) {
	cli, _ := newPair(t, ServerConfig{Daemons: 1})
	cli.SetCallTimeout(0)
	start := time.Now()
	if _, err := cli.CallRaw(opSlow, nil); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("slow call returned early")
	}
}
