package agg

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"redbud/internal/obs"
	"redbud/internal/stats"
)

// twoShardRegistries builds two registries carrying the same metric names —
// the homogeneous-deployment shape every merge rule is defined over.
func twoShardRegistries() (*obs.Registry, *obs.Registry) {
	r0 := obs.NewRegistry()
	r0.NewCounter("redbud_ops_total", "ops", nil).Add(3)
	r0.NewGauge("redbud_queue_len", "queue", obs.Labels{"kind": "commit"}).Set(5)
	h0 := r0.NewHistogram("redbud_lat_seconds", "latency", nil)
	h0.Observe(0.001)
	h0.Observe(0.002)

	r1 := obs.NewRegistry()
	r1.NewCounter("redbud_ops_total", "ops", nil).Add(4)
	r1.NewGauge("redbud_queue_len", "queue", obs.Labels{"kind": "commit"}).Set(7)
	h1 := r1.NewHistogram("redbud_lat_seconds", "latency", nil)
	h1.Observe(0.004)
	return r0, r1
}

func TestCollectTagsAndMerges(t *testing.T) {
	r0, r1 := twoShardRegistries()
	c := New(RegistrySource("mds0", r0), RegistrySource("mds1", r1))
	if got := c.Names(); len(got) != 2 || got[0] != "mds0" || got[1] != "mds1" {
		t.Fatalf("Names = %v", got)
	}
	cs := c.Collect()
	if len(cs.Shards) != 2 {
		t.Fatalf("collected %d shards, want 2", len(cs.Shards))
	}
	if cs.Dropped != 0 {
		t.Fatalf("homogeneous merge dropped %d series", cs.Dropped)
	}
	// Every tagged series carries its shard label, with pre-existing labels
	// preserved in canonical sorted order.
	for _, sh := range cs.Shards {
		if sh.Err != "" {
			t.Fatalf("shard %s: unexpected error %q", sh.Shard, sh.Err)
		}
		for _, m := range sh.Metrics.Metrics {
			if !strings.Contains(m.Labels, fmt.Sprintf("shard=%q", sh.Shard)) {
				t.Errorf("shard %s: series %s{%s} missing its shard tag", sh.Shard, m.Name, m.Labels)
			}
			if m.Name == "redbud_queue_len" && m.Labels != fmt.Sprintf(`kind="commit",shard=%q`, sh.Shard) {
				t.Errorf("gauge labels not canonically sorted after tagging: %q", m.Labels)
			}
		}
	}
	// Merged: counters and gauges sum, histograms fold bucket-by-bucket, and
	// the merged series keep their untagged labels.
	want := map[string]int64{"redbud_ops_total": 7, "redbud_queue_len": 12}
	for _, m := range cs.Merged.Metrics {
		switch m.Name {
		case "redbud_ops_total", "redbud_queue_len":
			if m.Value != want[m.Name] {
				t.Errorf("merged %s = %d, want %d", m.Name, m.Value, want[m.Name])
			}
			if strings.Contains(m.Labels, "shard=") {
				t.Errorf("merged series %s carries a shard tag: %q", m.Name, m.Labels)
			}
		case "redbud_lat_seconds":
			if m.Hist == nil || m.Hist.Count != 3 {
				t.Fatalf("merged histogram = %+v, want 3 observations", m.Hist)
			}
			if m.Hist.Sum < 0.0069 || m.Hist.Sum > 0.0071 {
				t.Errorf("merged histogram sum = %g, want ~0.007", m.Hist.Sum)
			}
			if m.Hist.Max < 0.004 {
				t.Errorf("merged histogram max = %g, want >= 0.004", m.Hist.Max)
			}
		}
	}
	if len(cs.Merged.Metrics) != 3 {
		t.Fatalf("merged %d series, want 3: %+v", len(cs.Merged.Metrics), cs.Merged.Metrics)
	}
}

func TestCollectSourceFailureDegrades(t *testing.T) {
	r0, _ := twoShardRegistries()
	dead := Source{Name: "mds1", Fetch: func() (obs.Snapshot, error) {
		return obs.Snapshot{}, errors.New("connection refused")
	}}
	cs := New(RegistrySource("mds0", r0), dead).Collect()
	if cs.Shards[1].Err == "" || len(cs.Shards[1].Metrics.Metrics) != 0 {
		t.Fatalf("dead shard not reported: %+v", cs.Shards[1])
	}
	// The healthy shard still merges: one dead scrape degrades the cluster
	// view instead of killing it.
	for _, m := range cs.Merged.Metrics {
		if m.Name == "redbud_ops_total" && m.Value != 3 {
			t.Fatalf("merged counter = %d, want the healthy shard's 3", m.Value)
		}
	}
	if len(cs.Merged.Metrics) == 0 {
		t.Fatal("merge is empty despite a healthy source")
	}
}

func TestSourceFuncReadsLiveRegistry(t *testing.T) {
	// The chaos harness swaps registries across MDS incarnations; the source
	// closure must follow the live one.
	live := obs.NewRegistry()
	live.NewCounter("redbud_ops_total", "ops", nil).Add(1)
	src := SourceFunc("mds0", func() obs.Snapshot { return live.Snapshot() })
	c := New(src)
	if cs := c.Collect(); cs.Merged.Metrics[0].Value != 1 {
		t.Fatalf("first incarnation: %+v", cs.Merged.Metrics)
	}
	live = obs.NewRegistry() // restart: fresh registry, fresh counters
	live.NewCounter("redbud_ops_total", "ops", nil).Add(9)
	if cs := c.Collect(); cs.Merged.Metrics[0].Value != 9 {
		t.Fatalf("second incarnation not followed: %+v", cs.Merged.Metrics)
	}
}

func TestMergeLayoutMismatchDropped(t *testing.T) {
	mk := func(nbuckets int) obs.Snapshot {
		h := stats.NewHistogram(1e-6, 100, nbuckets)
		h.Observe(0.5)
		return obs.Snapshot{Metrics: []obs.MetricValue{{
			Name: "redbud_lat_seconds", Kind: obs.KindHistogram, Hist: valueFromHist(h),
		}}}
	}
	merged, dropped := mergeSnapshots([]obs.Snapshot{mk(64), mk(32)})
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (layout mismatch)", dropped)
	}
	if len(merged.Metrics) != 1 || merged.Metrics[0].Hist.Count != 1 {
		t.Fatalf("first layout did not survive the merge: %+v", merged.Metrics)
	}
}

func TestHistValueRoundTrip(t *testing.T) {
	h := stats.NewHistogram(1e-6, 100, 64)
	for _, v := range []float64{0.001, 0.002, 0.004, 0.1, 250} { // 250 lands in overflow
		h.Observe(v)
	}
	back := histFromValue(valueFromHist(h))
	if back == nil {
		t.Fatal("round trip rejected a healthy histogram")
	}
	if back.Count() != h.Count() || back.Sum() != h.Sum() || back.Min() != h.Min() || back.Max() != h.Max() {
		t.Fatalf("round trip changed the summary: got n=%d sum=%g min=%g max=%g", back.Count(), back.Sum(), back.Min(), back.Max())
	}
	ab, ac := h.Buckets()
	bb, bc := back.Buckets()
	if len(ab) != len(bb) {
		t.Fatalf("bucket layout changed: %d vs %d", len(ab), len(bb))
	}
	for i := range ab {
		if ab[i] != bb[i] || ac[i] != bc[i] {
			t.Fatalf("bucket %d changed: (%g, %d) vs (%g, %d)", i, ab[i], ac[i], bb[i], bc[i])
		}
	}
}

func TestHistFromValueRejectsMalformed(t *testing.T) {
	cases := map[string]*obs.HistValue{
		"nil":           nil,
		"empty":         {},
		"unsortedLE":    {Count: 2, Buckets: []obs.BucketValue{{LE: 2, Count: 1}, {LE: 1, Count: 2}}},
		"negativeCount": {Count: 2, Buckets: []obs.BucketValue{{LE: 1, Count: 2}, {LE: 2, Count: 1}}},
		"overflowLies":  {Count: 1, Buckets: []obs.BucketValue{{LE: 1, Count: 2}}},
	}
	for name, hv := range cases {
		if h := histFromValue(hv); h != nil {
			t.Errorf("%s: histFromValue accepted %+v", name, hv)
		}
	}
}

func TestInjectLabel(t *testing.T) {
	cases := []struct{ in, key, val, want string }{
		{"", "shard", "mds0", `shard="mds0"`},
		{`client="c0"`, "shard", "m", `client="c0",shard="m"`},
		{`zone="z"`, "shard", "m", `shard="m",zone="z"`},
		{`shard="old",zone="z"`, "shard", "new", `shard="new",zone="z"`},
		{`a="x,y"`, "shard", "m", `a="x,y",shard="m"`},
		{`a="x\",z",b="y"`, "shard", "m", `a="x\",z",b="y",shard="m"`},
	}
	for _, c := range cases {
		if got := injectLabel(c.in, c.key, c.val); got != c.want {
			t.Errorf("injectLabel(%q, %q, %q) = %q, want %q", c.in, c.key, c.val, got, c.want)
		}
	}
}

func TestFlatInterleavesMergedAndTagged(t *testing.T) {
	r0, r1 := twoShardRegistries()
	cs := New(RegistrySource("mds0", r0), RegistrySource("mds1", r1)).Collect()
	flat := cs.Flat()
	if want := len(cs.Merged.Metrics) * 3; len(flat.Metrics) != want {
		t.Fatalf("flat has %d series, want %d (merged + 2 tagged)", len(flat.Metrics), want)
	}
	for i := 1; i < len(flat.Metrics); i++ {
		a, b := flat.Metrics[i-1], flat.Metrics[i]
		if a.Name > b.Name || (a.Name == b.Name && a.Labels > b.Labels) {
			t.Fatalf("flat not sorted at %d: %s{%s} then %s{%s}", i, a.Name, a.Labels, b.Name, b.Labels)
		}
	}
	// The untagged aggregate sorts before its shard-tagged breakdown.
	var names []string
	for _, m := range flat.Metrics {
		if m.Name == "redbud_ops_total" {
			names = append(names, m.Labels)
		}
	}
	if len(names) != 3 || names[0] != "" {
		t.Fatalf("redbud_ops_total variants = %q, want the aggregate first", names)
	}
}

func TestHTTPSource(t *testing.T) {
	reg := obs.NewRegistry()
	reg.NewCounter("redbud_ops_total", "ops", nil).Add(42)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		reg.WriteJSON(w) //nolint:errcheck
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	s, err := HTTPSource("mds0", ts.URL).Fetch()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Metrics) != 1 || s.Metrics[0].Value != 42 {
		t.Fatalf("scraped snapshot: %+v", s)
	}

	// Bare host:port gets the scheme prepended.
	s, err = HTTPSource("mds0", strings.TrimPrefix(ts.URL, "http://")).Fetch()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Metrics) != 1 {
		t.Fatalf("bare-address scrape: %+v", s)
	}

	// A non-200 answer is an error, not an empty snapshot mistaken for health.
	if _, err := HTTPSource("mds0", ts.URL+"/nope").Fetch(); err == nil {
		t.Fatal("scrape of a 404 endpoint succeeded")
	}
}
