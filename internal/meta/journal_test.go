package meta

import (
	"errors"
	"hash/crc32"
	"runtime"
	"sync"
	"testing"
	"time"

	"redbud/internal/blockdev"
	"redbud/internal/clock"
	"redbud/internal/wire"
)

func newMetaDev(t *testing.T) *blockdev.Device {
	t.Helper()
	d := blockdev.New(blockdev.Config{Size: 64 << 20, Model: blockdev.ZeroLatency(), Clock: clock.Real(1)})
	t.Cleanup(d.Close)
	return d
}

func TestRecordRoundTrip(t *testing.T) {
	in := &Record{
		Type: RecCommit, File: 42, Parent: 1, Name: "f.dat", FType: TypeFile,
		Owner: "client-3", Size: 12345, MTime: time.Unix(100, 200).UTC(),
		Extents: []Extent{
			{FileOff: 0, Len: 4096, Dev: 2, VolOff: 1 << 20, State: StateCommitted},
			{FileOff: 4096, Len: 100, Dev: 2, VolOff: 9 << 20, State: StateUncommitted},
		},
		SpanDev: 7, SpanOff: 555, SpanLen: 666,
	}
	var out Record
	if err := wire.Decode(wire.Encode(in), &out); err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.File != in.File || out.Name != in.Name ||
		out.Owner != in.Owner || out.Size != in.Size || !out.MTime.Equal(in.MTime) ||
		len(out.Extents) != 2 || out.Extents[1].VolOff != 9<<20 ||
		out.SpanDev != 7 || out.SpanOff != 555 || out.SpanLen != 666 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestExtentListRoundTrip(t *testing.T) {
	var b wire.Buffer
	PutExtents(&b, nil)
	r := wire.NewReader(b.Bytes())
	if got := GetExtents(r); len(got) != 0 || r.Err() != nil {
		t.Fatalf("empty list: %v %v", got, r.Err())
	}
}

func TestJournalAppendReplay(t *testing.T) {
	dev := newMetaDev(t)
	j := NewJournal(dev, 0, 32<<20)
	recs := []*Record{
		{Type: RecCreate, File: 2, Parent: 1, Name: "a", FType: TypeFile},
		{Type: RecAlloc, File: 2, Owner: "c1", Extents: []Extent{{Len: 4096, VolOff: 0}}},
		{Type: RecCommit, File: 2, Owner: "c1", Size: 4096},
	}
	for _, rec := range recs {
		if err := <-j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j2 := NewJournal(dev, 0, 32<<20)
	var got []*Record
	if torn, err := j2.Replay(func(r *Record) error {
		cp := *r
		got = append(got, &cp)
		return nil
	}); err != nil || torn {
		t.Fatal(torn, err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d records", len(got))
	}
	for i := range recs {
		if got[i].Type != recs[i].Type || got[i].File != recs[i].File {
			t.Fatalf("record %d mismatch: %+v", i, got[i])
		}
	}
	if j2.Tail() != j.Tail() {
		t.Fatalf("tail after replay %d != %d", j2.Tail(), j.Tail())
	}
	// Appends continue the log.
	if err := <-j2.Append(&Record{Type: RecRemove, File: 2, Parent: 1, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	count := 0
	j3 := NewJournal(dev, 0, 32<<20)
	if torn, err := j3.Replay(func(r *Record) error { count++; return nil }); err != nil || torn {
		t.Fatal(torn, err)
	}
	if count != 4 {
		t.Fatalf("after continuation, %d records", count)
	}
}

// waitClockWaiters spins until exactly n goroutines are parked on the manual
// clock — the deterministic handoff point between test and journal/device
// goroutines.
func waitClockWaiters(t *testing.T, clk *clock.Manual, n int) {
	t.Helper()
	for i := 0; i < 1e8; i++ {
		if clk.Waiters() == n {
			return
		}
		runtime.Gosched()
	}
	t.Fatalf("never reached %d clock waiters (have %d)", n, clk.Waiters())
}

// TestJournalBatchPolicyAdaptiveDeadline drives group-commit v2 through one
// burst and one singleton on a manual clock and checks the deadline adapts
// exactly as specified: growth to MaxDelay/16 after a full batch, halving
// after a batch of one.
func TestJournalBatchPolicyAdaptiveDeadline(t *testing.T) {
	mclk := clock.NewManual()
	dev := blockdev.New(blockdev.Config{
		Size:         64 << 20,
		Model:        blockdev.DiskModel{PerRequest: time.Millisecond},
		DisableMerge: true,
		Clock:        mclk,
	})
	t.Cleanup(dev.Close)
	j := NewJournal(dev, 0, 32<<20)
	j.SetBatchPolicy(BatchPolicy{MaxDelay: 800 * time.Microsecond, GrowAt: 4, Clock: mclk})
	if d := j.BatchDeadline(); d != 0 {
		t.Fatalf("initial deadline = %v, want 0 (MinDelay)", d)
	}

	rec := &Record{Type: RecCommit, File: 1, Size: 1}
	// The first append leads with a zero deadline: it writes immediately
	// and the device parks on its 1ms service time.
	ch0 := j.Append(rec)
	waitClockWaiters(t, mclk, 1)
	// Four more appends pile into the next batch while the write is in
	// flight.
	var chans []<-chan error
	for i := 0; i < 4; i++ {
		chans = append(chans, j.Append(rec))
	}
	mclk.Advance(time.Millisecond)
	if err := <-ch0; err != nil {
		t.Fatal(err)
	}
	// The leader swaps the 4-record batch (fill ≥ GrowAt): the deadline
	// grows from 0 to MaxDelay/16, and the batch write parks the device.
	waitClockWaiters(t, mclk, 1)
	mclk.Advance(time.Millisecond)
	for _, ch := range chans {
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
	}
	if a, bt := j.GroupCommitStats(); a != 5 || bt != 2 {
		t.Fatalf("stats = %d appends / %d batches, want 5/2", a, bt)
	}
	want := 800 * time.Microsecond / 16
	if d := j.BatchDeadline(); d != want {
		t.Fatalf("deadline after burst = %v, want %v", d, want)
	}

	// A singleton append now waits out the deadline before writing, and
	// its fill of 1 halves the deadline.
	ch5 := j.Append(rec)
	waitClockWaiters(t, mclk, 1) // leader parked on the deadline
	mclk.Advance(want)
	waitClockWaiters(t, mclk, 1) // device parked on the write
	mclk.Advance(time.Millisecond)
	if err := <-ch5; err != nil {
		t.Fatal(err)
	}
	if d := j.BatchDeadline(); d != want/2 {
		t.Fatalf("deadline after singleton = %v, want %v", d, want/2)
	}
}

// TestJournalBatchPolicyReplayOrdered runs concurrent appenders under v2 and
// checks the log is complete, amortized, and replayable — the write-ahead
// guarantees must not change with the policy.
func TestJournalBatchPolicyReplayOrdered(t *testing.T) {
	dev := blockdev.New(blockdev.Config{
		Size:         64 << 20,
		Model:        blockdev.DiskModel{PerRequest: 30 * time.Microsecond, BandwidthMBps: 4000},
		DisableMerge: true,
		Clock:        clock.Real(1),
	})
	t.Cleanup(dev.Close)
	j := NewJournal(dev, 0, 32<<20)
	j.SetBatchPolicy(BatchPolicy{MaxDelay: 200 * time.Microsecond})

	const writers, per = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers*per)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				errs <- <-j.Append(&Record{Type: RecCommit, File: FileID(w*per + i), Size: int64(i)})
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	appends, batches := j.GroupCommitStats()
	if appends != writers*per {
		t.Fatalf("appends = %d, want %d", appends, writers*per)
	}
	if batches >= appends {
		t.Fatalf("no amortization: %d batches for %d appends", batches, appends)
	}
	seen := map[FileID]bool{}
	torn, err := NewJournal(dev, 0, 32<<20).Replay(func(r *Record) error {
		seen[r.File] = true
		return nil
	})
	if err != nil || torn {
		t.Fatalf("replay: torn=%v err=%v", torn, err)
	}
	if len(seen) != writers*per {
		t.Fatalf("replayed %d distinct records, want %d", len(seen), writers*per)
	}
	t.Logf("appends=%d batches=%d (%.1fx amortization), final deadline=%v",
		appends, batches, float64(appends)/float64(batches), j.BatchDeadline())
}

func TestJournalFull(t *testing.T) {
	dev := newMetaDev(t)
	j := NewJournal(dev, 0, 100) // tiny journal
	if err := <-j.Append(&Record{Type: RecCreate, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	err := <-j.Append(&Record{Type: RecCreate, Name: "b"})
	if !errors.Is(err, ErrJournalFull) {
		t.Fatalf("err = %v", err)
	}
}

func TestJournalCorruptIsTornTail(t *testing.T) {
	dev := newMetaDev(t)
	j := NewJournal(dev, 0, 1<<20)
	if err := <-j.Append(&Record{Type: RecCreate, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	// Corrupt a payload byte.
	buf, _ := dev.Read(recHeaderSize, 1)
	if err := dev.Write(recHeaderSize, []byte{buf[0] ^ 0xff}); err != nil {
		t.Fatal(err)
	}
	torn, err := NewJournal(dev, 0, 1<<20).Replay(func(*Record) error { return nil })
	if err != nil || !torn {
		t.Fatalf("corrupt journal: torn=%v err=%v, want torn tail", torn, err)
	}
}

func TestJournalBadMagic(t *testing.T) {
	dev := newMetaDev(t)
	if err := dev.Write(0, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}); err != nil {
		t.Fatal(err)
	}
	torn, err := NewJournal(dev, 0, 1<<20).Replay(func(*Record) error { return nil })
	if err != nil || !torn {
		t.Fatalf("bad magic: torn=%v err=%v, want torn tail", torn, err)
	}
}

func TestJournalOverrunLength(t *testing.T) {
	dev := newMetaDev(t)
	var b wire.Buffer
	b.PutU32(journalMagic)
	b.PutU32(0)       // generation
	b.PutU32(1 << 30) // absurd length
	b.PutU32(0)       // crc
	if err := dev.Write(0, b.Bytes()); err != nil {
		t.Fatal(err)
	}
	torn, err := NewJournal(dev, 0, 1<<20).Replay(func(*Record) error { return nil })
	if err != nil || !torn {
		t.Fatalf("overrun length: torn=%v err=%v, want torn tail", torn, err)
	}
}

func TestJournalEmptyReplay(t *testing.T) {
	dev := newMetaDev(t)
	j := NewJournal(dev, 0, 1<<20)
	if torn, err := j.Replay(func(*Record) error { t.Fatal("callback on empty journal"); return nil }); err != nil || torn {
		t.Fatal(torn, err)
	}
	if j.Tail() != 0 {
		t.Fatalf("tail = %d", j.Tail())
	}
}

func TestJournalReplayCallbackError(t *testing.T) {
	dev := newMetaDev(t)
	j := NewJournal(dev, 0, 1<<20)
	<-j.Append(&Record{Type: RecCreate, Name: "a"})
	sentinel := errors.New("stop")
	if _, err := NewJournal(dev, 0, 1<<20).Replay(func(*Record) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestJournalGroupCommitBatches(t *testing.T) {
	// Appends issued while a flush is in flight must coalesce into one
	// device write — even with the elevator's merging disabled, so the
	// amortization is the journal's own, not the device's.
	d := blockdev.New(blockdev.Config{
		Size:         64 << 20,
		Model:        blockdev.DiskModel{SeekBase: 20 * time.Millisecond, BandwidthMBps: 200},
		DisableMerge: true,
		Clock:        clock.Real(0.05),
	})
	defer d.Close()
	// Blocker keeps the head busy while appends accumulate.
	blocker := d.WriteAsync(32<<20, make([]byte, 64))
	j := NewJournal(d, 0, 16<<20)
	var chans []<-chan error
	for i := 0; i < 16; i++ {
		chans = append(chans, j.Append(&Record{Type: RecCommit, File: FileID(i)}))
	}
	<-blocker
	for _, ch := range chans {
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
	}
	appends, batches := j.GroupCommitStats()
	if appends != 16 {
		t.Fatalf("appends = %d, want 16", appends)
	}
	if batches >= appends {
		t.Fatalf("no group commit: %d batches for %d appends", batches, appends)
	}
	// The batched log must replay exactly like a record-at-a-time one.
	count := 0
	if torn, err := NewJournal(d, 0, 16<<20).Replay(func(*Record) error { count++; return nil }); err != nil || torn {
		t.Fatal(torn, err)
	}
	if count != 16 {
		t.Fatalf("replayed %d records, want 16", count)
	}
}

// oldFormatPayload hand-encodes a record the way the pre-sharding build did:
// every field up to DstName, with no NSKind byte. A journal written by that
// build must replay record-for-record on the current one.
func oldFormatPayload(rec *Record) []byte {
	b := wire.NewBuffer(128)
	b.PutU8(uint8(rec.Type))
	b.PutU64(uint64(rec.File))
	b.PutU64(uint64(rec.Parent))
	b.PutString(rec.Name)
	b.PutU8(uint8(rec.FType))
	b.PutString(rec.Owner)
	b.PutI64(rec.Size)
	b.PutTime(rec.MTime)
	PutExtents(b, rec.Extents)
	b.PutU32(rec.SpanDev)
	b.PutI64(rec.SpanOff)
	b.PutI64(rec.SpanLen)
	b.PutU64(uint64(rec.DstParent))
	b.PutString(rec.DstName)
	return b.Bytes()
}

// TestJournalReplaysPreShardingRecords pins the upgrade path: the NSKind
// field is a trailing optional, so records framed without it — the exact
// bytes a pre-sharding MDS wrote — decode cleanly instead of erroring, which
// Replay would misread as a torn tail and silently drop the log from there.
func TestJournalReplaysPreShardingRecords(t *testing.T) {
	dev := newMetaDev(t)
	old := []*Record{
		{Type: RecCreate, File: 2, Parent: RootID, Name: "f", FType: TypeFile, MTime: time.Unix(5, 0).UTC()},
		{Type: RecCommit, File: 2, Owner: "c1", Size: 4096, MTime: time.Unix(6, 0).UTC(),
			Extents: []Extent{{FileOff: 0, Len: 4096, Dev: 1, VolOff: 1 << 20, State: StateCommitted}}},
		{Type: RecDelegate, Owner: "c1", SpanDev: 1, SpanOff: 4096, SpanLen: 1 << 20},
	}
	off := int64(0)
	for _, rec := range old {
		payload := oldFormatPayload(rec)
		hdr := wire.NewBuffer(recHeaderSize)
		hdr.PutU32(journalMagic)
		hdr.PutU32(0) // generation
		hdr.PutU32(uint32(len(payload)))
		hdr.PutU32(crc32.ChecksumIEEE(payload))
		if err := dev.Write(off, hdr.Bytes()); err != nil {
			t.Fatal(err)
		}
		if err := dev.Write(off+recHeaderSize, payload); err != nil {
			t.Fatal(err)
		}
		off += recHeaderSize + int64(len(payload))
	}

	j := NewJournal(dev, 0, 32<<20)
	var got []*Record
	torn, err := j.Replay(func(r *Record) error {
		cp := *r
		got = append(got, &cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Fatal("old-format log read as torn")
	}
	if len(got) != len(old) {
		t.Fatalf("replayed %d of %d records", len(got), len(old))
	}
	for i, rec := range got {
		if rec.Type != old[i].Type || rec.File != old[i].File || rec.NSKind != 0 {
			t.Fatalf("record %d mismatch: %+v", i, rec)
		}
	}

	// The upgraded MDS appends to the same log; NS records (which do carry
	// the byte) and old records must coexist on a subsequent replay.
	if err := <-j.Append(&Record{Type: RecNSIntent, NSKind: NSRemove, File: 2, FType: TypeFile, Parent: RootID, Name: "f"}); err != nil {
		t.Fatal(err)
	}
	got = got[:0]
	torn, err = NewJournal(dev, 0, 32<<20).Replay(func(r *Record) error {
		cp := *r
		got = append(got, &cp)
		return nil
	})
	if err != nil || torn {
		t.Fatalf("mixed-format replay: torn=%v err=%v", torn, err)
	}
	if len(got) != len(old)+1 {
		t.Fatalf("replayed %d of %d records", len(got), len(old)+1)
	}
	last := got[len(got)-1]
	if last.Type != RecNSIntent || last.NSKind != NSRemove {
		t.Fatalf("appended NS record mismatch: %+v", last)
	}

	// And a record written today with NSKind 0 is byte-identical to the old
	// format — the evolution is symmetric, not just tolerant.
	if enc := wire.Encode(old[0]); string(enc) != string(oldFormatPayload(old[0])) {
		t.Fatal("NSKind-less record encoding diverged from the pre-sharding layout")
	}
}
