// CDN edge-server scenario — the paper's headline workload (xcdn, §V-C):
// many small objects ingested across a wide namespace. The example runs the
// same ingest twice, once on original Redbud (synchronous ordered writes)
// and once with delayed commit + space delegation, and reports the speedup
// and the block-level effects (I/O merges, RPC counts) that produce it.
//
//	go run ./examples/cdn
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"redbud"
)

const (
	objects    = 60 // per worker
	workers    = 4
	objectSize = 32 << 10
)

func main() {
	fmt.Println("ingesting", workers*objects, "x 32KB objects per configuration...")
	syncDur, syncStats := run(redbud.SyncCommit, 0)
	dcDur, dcStats := run(redbud.DelayedCommit, 16<<20)

	fmt.Printf("\n%-28s %14s %14s\n", "", "sync commit", "delayed+deleg")
	fmt.Printf("%-28s %14s %14s\n", "ingest wall time", syncDur.Round(time.Millisecond), dcDur.Round(time.Millisecond))
	fmt.Printf("%-28s %14d %14d\n", "disk requests dispatched", syncStats.DiskDispatched, dcStats.DiskDispatched)
	fmt.Printf("%-28s %14d %14d\n", "disk requests merged", syncStats.DiskMerged, dcStats.DiskMerged)
	fmt.Printf("%-28s %14d %14d\n", "disk seeks", syncStats.DiskSeeks, dcStats.DiskSeeks)
	fmt.Printf("%-28s %14d %14d\n", "metadata RPC frames", syncStats.RPCs, dcStats.RPCs)
	if dcDur > 0 {
		fmt.Printf("\nspeedup: %.2fx\n", float64(syncDur)/float64(dcDur))
		fmt.Println("(the paper reports 2.6x on its 32KB xcdn run; this demo is pure I/O with no")
		fmt.Println(" application compute between writes, so the async win is larger — the full")
		fmt.Println(" harness, `go run ./cmd/redbud-bench -fig 3`, models the compute and lands close)")
	}
}

// run ingests the object set on a fresh cluster and returns the wall time of
// the ingest (including the commit drain) plus cluster stats.
func run(mode redbud.Mode, delegation int64) (time.Duration, redbud.Stats) {
	cluster, err := redbud.New(redbud.Config{
		Clients:         2,
		Mode:            mode,
		SpaceDelegation: delegation,
		TimeScale:       0.05, // run the simulated hardware 20x faster
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fs := cluster.Mount(0)
	for d := 0; d < 8; d++ {
		if err := fs.Mkdir(fmt.Sprintf("/edge%d", d)); err != nil {
			log.Fatal(err)
		}
	}

	payload := make([]byte, objectSize)
	for i := range payload {
		payload[i] = byte(i * 31)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < objects; i++ {
				// Objects scatter over the namespace, exactly the
				// access pattern that defeats server-side locality.
				path := fmt.Sprintf("/edge%d/w%d-obj%d.bin", (w*7+i*13)%8, w, i)
				f, err := fs.Create(path)
				if err != nil {
					log.Fatal(err)
				}
				if _, err := f.WriteAt(payload, 0); err != nil {
					log.Fatal(err)
				}
				if err := f.Close(); err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	wg.Wait()
	cluster.Drain() // charge the deferred commits to the measured window
	return time.Since(start), cluster.Stats()
}
