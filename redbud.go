// Package redbud is the public face of the Redbud delayed-commit
// reproduction: a block-based parallel file system (clients obtain extent
// layouts from a metadata server and write file data directly on a shared
// disk array) implementing the Delayed Commit Protocol of Lu et al.,
// "Accelerating Distributed Updates with Asynchronous Ordered Writes in a
// Parallel File System" (IEEE CLUSTER 2012).
//
// The package assembles an in-process simulated cluster — MDS, disk array,
// metadata Ethernet — and hands out mounted client file systems:
//
//	cluster, err := redbud.New(redbud.Config{Clients: 2, Mode: redbud.DelayedCommit})
//	defer cluster.Close()
//	fs := cluster.Mount(0)
//	f, _ := fs.Create("/hello.txt")
//	f.WriteAt([]byte("hi"), 0)
//	f.Close() // returns immediately; commit daemons keep the write order
//
// For the paper's experiments (Figures 3-7) see cmd/redbud-bench and the
// benchmarks in bench_test.go; for a real multi-process deployment over TCP
// see cmd/redbud-mds, cmd/redbud-disk and cmd/redbud-client.
package redbud

import (
	"fmt"
	"time"

	"redbud/internal/bench"
	"redbud/internal/blockdev"
	"redbud/internal/client"
	"redbud/internal/fsapi"
)

// Re-exported file-system types: the API every mount speaks.
type (
	// FileSystem is a mounted client view (Create/Open/Mkdir/...).
	FileSystem = fsapi.FileSystem
	// File is an open file handle (WriteAt/ReadAt/Append/Sync/Close).
	File = fsapi.File
	// Info describes a file or directory.
	Info = fsapi.Info
)

// Errors re-exported from the file-system API.
var (
	ErrNotExist = fsapi.ErrNotExist
	ErrExist    = fsapi.ErrExist
	ErrIsDir    = fsapi.ErrIsDir
	ErrClosed   = fsapi.ErrClosed
)

// Mode selects the update protocol.
type Mode = client.Mode

// Update modes: the original synchronous ordered writes, or the paper's
// delayed commit.
const (
	SyncCommit    = client.SyncCommit
	DelayedCommit = client.DelayedCommit
)

// Config describes the simulated cluster.
type Config struct {
	// Clients is the number of mounted clients (default 1; the paper's
	// testbed uses 7).
	Clients int
	// Mode selects synchronous or delayed commit (default DelayedCommit).
	Mode Mode
	// SpaceDelegation enables the per-client double-space-pool with the
	// given chunk size; 0 disables delegation. The paper uses 16 MiB.
	SpaceDelegation int64
	// TimeScale compresses simulated time: 0.02 runs the cluster's virtual
	// clocks 50x faster than wall time. Default 1 (real time) — all
	// simulated latencies are then real waits.
	TimeScale float64
	// DataDevices is the number of disks in the shared array (default 4).
	DataDevices int
	// MDSDaemons is the metadata server's worker pool size (default 8).
	MDSDaemons int
	// CompoundDegree pins the commit compound degree; 0 = adaptive.
	CompoundDegree int
	// FastDevices swaps the realistic 2012-era HDD model for a light one,
	// for functional use where latency realism is not wanted.
	FastDevices bool
}

// Cluster is a running simulated deployment.
type Cluster struct {
	inner *bench.Cluster
}

// New assembles and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	opt := bench.DefaultOptions()
	if cfg.Clients > 0 {
		opt.Clients = cfg.Clients
	} else {
		opt.Clients = 1
	}
	if cfg.TimeScale > 0 {
		if cfg.TimeScale > 1 {
			return nil, fmt.Errorf("redbud: TimeScale %v out of (0, 1]", cfg.TimeScale)
		}
		opt.Scale = cfg.TimeScale
	} else {
		opt.Scale = 1
	}
	if cfg.DataDevices > 0 {
		opt.DataDevices = cfg.DataDevices
	}
	if cfg.MDSDaemons > 0 {
		opt.MDSDaemons = cfg.MDSDaemons
	}
	opt.CompoundDegree = cfg.CompoundDegree
	opt.DelegationChunk = cfg.SpaceDelegation
	if cfg.FastDevices {
		opt.Disk = blockdev.FastHDD()
		opt.MDSOpCost = 0
	}

	sys := bench.SysRedbudDC
	if cfg.Mode == SyncCommit {
		sys = bench.SysRedbud
	} else if cfg.SpaceDelegation > 0 {
		sys = bench.SysRedbudDCSD
	}
	return &Cluster{inner: bench.Build(sys, opt)}, nil
}

// Mount returns client i's file system.
func (c *Cluster) Mount(i int) FileSystem { return c.inner.Mounts[i] }

// Mounts returns every client file system.
func (c *Cluster) Mounts() []FileSystem { return c.inner.Mounts }

// Client returns the underlying Redbud client i, exposing its statistics
// (commit queue length, RPC counts, delegation usage).
func (c *Cluster) Client(i int) *client.Client { return c.inner.Redbud[i] }

// Drain blocks until every pending delayed commit has been applied.
func (c *Cluster) Drain() { c.inner.Drain() }

// Stats summarizes cluster-wide activity.
type Stats struct {
	// Disk array counters.
	DiskSubmitted, DiskDispatched, DiskMerged int64
	DiskSeeks                                 int64
	BytesRead, BytesWritten                   int64
	DiskBusy                                  time.Duration
	// Total metadata RPC frames sent by clients.
	RPCs int64
}

// Stats snapshots the cluster counters.
func (c *Cluster) Stats() Stats {
	d := c.inner.DeviceStats()
	return Stats{
		DiskSubmitted:  d.Submitted,
		DiskDispatched: d.Dispatched,
		DiskMerged:     d.Merged,
		DiskSeeks:      d.Seeks,
		BytesRead:      d.BytesRead,
		BytesWritten:   d.BytesWrite,
		DiskBusy:       d.BusyTime,
		RPCs:           c.inner.RPCs(),
	}
}

// Close unmounts every client and tears the cluster down. Pending delayed
// commits are flushed first (unmount semantics).
func (c *Cluster) Close() { c.inner.Close() }
