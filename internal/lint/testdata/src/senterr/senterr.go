// Package meta exercises the senterr analyzer's sentinel-wrapping rule.
package meta

import (
	"errors"
	"fmt"
)

// ErrNotFound is the sanctioned pattern: a package-level sentinel.
var ErrNotFound = errors.New("meta: not found")

// goodWrap wraps the sentinel so callers can branch with errors.Is.
func goodWrap(name string) error {
	return fmt.Errorf("lookup %q: %w", name, ErrNotFound)
}

// badBare is a bare string error nobody can match.
func badBare(name string) error {
	return fmt.Errorf("lookup %q failed", name) // want `without %w is not errors.Is-able`
}

// badLeaf mints an anonymous leaf error inside a function body.
func badLeaf() error {
	return errors.New("meta: transient") // want `unmatchable leaf error`
}
