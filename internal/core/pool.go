package core

import (
	"sync"
	"sync/atomic"
	"time"

	"redbud/internal/clock"
)

// AutoscaleConfig selects the obs-driven control loop ("autoscaler v2") in
// place of the paper's static proportional formula ρ = Max/QueueLenMax. The
// v1 formula reacts only to instantaneous queue length; v2 folds in how long
// commits actually wait in the queue and how saturated the RPC path is, with
// hysteresis so the pool does not flap around a noisy signal.
//
// Control law, evaluated once per Interval tick:
//
//	scale UP   (by StepUp, clamped to Max) when queue/threads > HighWater
//	           OR the smoothed queue wait exceeds TargetLatency — unless the
//	           RPC path is already saturated (Inflight ≥ threads ×
//	           MaxInflightPerThread), where more senders only add contention;
//	scale DOWN (by 1, min 1) only after HoldTicks consecutive cold ticks
//	           (queue/threads < LowWater AND queue wait < TargetLatency/2);
//	otherwise HOLD. Any non-cold tick resets the scale-down countdown.
type AutoscaleConfig struct {
	// QueueLatency samples the smoothed time a commit spends queued before
	// a daemon picks it up. Optional; zero/nil disables the latency term.
	QueueLatency func() time.Duration
	// Inflight samples the number of RPCs outstanding on the commit path.
	// Optional; nil disables the saturation guard.
	Inflight func() int
	// TargetLatency is the queue wait the controller steers toward
	// (default 4× the pool Interval).
	TargetLatency time.Duration
	// HighWater is the queued-commits-per-thread ratio above which the
	// pool grows (default 4).
	HighWater float64
	// LowWater is the ratio below which a tick counts as cold (default 1).
	LowWater float64
	// StepUp is the per-tick growth step (default 2). Scale-down is always
	// one thread per decision: growing fast bounds latency under a burst,
	// shrinking slowly avoids refilling a queue the pool just drained.
	StepUp int
	// HoldTicks is how many consecutive cold ticks must pass before one
	// thread is retired (default 3) — the scale-down hysteresis.
	HoldTicks int
	// MaxInflightPerThread is the RPC saturation guard (default 8).
	MaxInflightPerThread int
}

// AutoscaleStats counts the control loop's decisions.
type AutoscaleStats struct {
	Ups, Downs, Holds int64
}

// PoolConfig configures the adaptive commit-thread pool.
type PoolConfig struct {
	// Max is ThreadNumsMax; the paper's experiments use 9.
	Max int
	// QueueLenMax is the queue length at which the pool reaches Max
	// threads: ρ = Max / QueueLenMax.
	QueueLenMax int
	// QueueLen samples the commit queue length.
	QueueLen func() int
	// Worker is the commit-daemon body. It must return promptly once stop
	// is closed. One invocation per live thread.
	Worker func(stop <-chan struct{})
	// Interval is the resize period.
	Interval time.Duration
	// OnResize observes (threads, queueLen) after each adjustment — the
	// hook the Figure 6 tracer uses.
	OnResize func(threads, queueLen int)
	// Fixed pins the pool at exactly this many threads (ablation:
	// adaptive pool vs fixed); 0 selects the adaptive formula. Fixed wins
	// over Autoscale.
	Fixed int
	// Autoscale, when non-nil, replaces the proportional v1 formula with
	// the obs-driven control loop.
	Autoscale *AutoscaleConfig
	Clock     clock.Clock
}

// Pool maintains between 1 and Max worker goroutines, sized proportionally
// to the commit queue length: more commit requests spawn more commit
// threads, which compete for schedule time and drain the queue (§IV-B).
type Pool struct {
	cfg PoolConfig
	clk clock.Clock

	mu      sync.Mutex
	stops   []chan struct{}
	stopped bool

	done chan struct{}
	wg   sync.WaitGroup // resizer
	wwg  sync.WaitGroup // workers

	// Autoscaler v2 state. coldTicks is touched only by the resizer
	// goroutine; the counters are read concurrently by metrics.
	coldTicks        int
	ups, downs, hold atomic.Int64
}

// NewPool validates cfg and returns a stopped pool.
func NewPool(cfg PoolConfig) *Pool {
	if cfg.Max < 1 {
		cfg.Max = 1
	}
	if cfg.QueueLenMax < 1 {
		cfg.QueueLenMax = 1
	}
	if cfg.Worker == nil {
		panic("core: pool needs a worker")
	}
	if cfg.QueueLen == nil {
		panic("core: pool needs a queue length source")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real(1)
	}
	if as := cfg.Autoscale; as != nil {
		if as.TargetLatency <= 0 {
			as.TargetLatency = 4 * cfg.Interval
		}
		if as.HighWater <= 0 {
			as.HighWater = 4
		}
		if as.LowWater <= 0 {
			as.LowWater = 1
		}
		if as.StepUp <= 0 {
			as.StepUp = 2
		}
		if as.HoldTicks <= 0 {
			as.HoldTicks = 3
		}
		if as.MaxInflightPerThread <= 0 {
			as.MaxInflightPerThread = 8
		}
	}
	return &Pool{cfg: cfg, clk: cfg.Clock, done: make(chan struct{})}
}

// Target returns the thread count the paper's formula prescribes for a
// queue length: clamp(ρ·QueueLen, 1, Max), or the pinned size when Fixed.
func (p *Pool) Target(queueLen int) int {
	if p.cfg.Fixed > 0 {
		return p.cfg.Fixed
	}
	t := queueLen * p.cfg.Max / p.cfg.QueueLenMax
	if t < 1 {
		t = 1
	}
	if t > p.cfg.Max {
		t = p.cfg.Max
	}
	return t
}

// Start launches the initial workers and the resize loop.
func (p *Pool) Start() {
	p.resizeTo(p.Target(0), 0)
	p.wg.Add(1)
	go p.resizer()
}

// Size returns the current number of worker threads.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.stops)
}

// resizer periodically applies the sizing formula (v1) or the autoscale
// control loop (v2).
func (p *Pool) resizer() {
	defer p.wg.Done()
	for {
		select {
		case <-p.done:
			return
		case <-p.clk.After(p.cfg.Interval):
		}
		qlen := p.cfg.QueueLen()
		if p.cfg.Autoscale != nil && p.cfg.Fixed == 0 {
			p.resizeTo(p.decide(qlen), qlen)
		} else {
			p.resizeTo(p.Target(qlen), qlen)
		}
	}
}

// decide evaluates the autoscale control law for one tick and returns the
// next pool size. Only the resizer goroutine calls it.
func (p *Pool) decide(qlen int) int {
	as := p.cfg.Autoscale
	size := p.Size()
	if size < 1 {
		size = 1
	}
	var wait time.Duration
	if as.QueueLatency != nil {
		wait = as.QueueLatency()
	}
	perThread := float64(qlen) / float64(size)
	hot := perThread > as.HighWater || (wait > as.TargetLatency)
	cold := perThread < as.LowWater && wait < as.TargetLatency/2
	saturated := false
	if as.Inflight != nil {
		saturated = as.Inflight() >= size*as.MaxInflightPerThread
	}
	switch {
	case hot && !saturated && size < p.cfg.Max:
		p.coldTicks = 0
		p.ups.Add(1)
		n := size + as.StepUp
		if n > p.cfg.Max {
			n = p.cfg.Max
		}
		return n
	case cold && size > 1:
		p.coldTicks++
		if p.coldTicks >= as.HoldTicks {
			p.coldTicks = 0
			p.downs.Add(1)
			return size - 1
		}
		p.hold.Add(1)
		return size
	default:
		// Hot-but-saturated, hot-at-max, and in-band ticks all hold; any
		// of them also restarts the scale-down countdown.
		p.coldTicks = 0
		p.hold.Add(1)
		return size
	}
}

// AutoscaleStats snapshots the control loop's decision counters. All zeros
// when the pool runs the v1 formula.
func (p *Pool) AutoscaleStats() AutoscaleStats {
	return AutoscaleStats{Ups: p.ups.Load(), Downs: p.downs.Load(), Holds: p.hold.Load()}
}

// resizeTo spawns or retires workers to reach n threads.
func (p *Pool) resizeTo(n, qlen int) {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	for len(p.stops) < n {
		stop := make(chan struct{})
		p.stops = append(p.stops, stop)
		p.wwg.Add(1)
		go func() {
			defer p.wwg.Done()
			p.cfg.Worker(stop)
		}()
	}
	for len(p.stops) > n {
		last := len(p.stops) - 1
		close(p.stops[last])
		p.stops = p.stops[:last]
	}
	size := len(p.stops)
	p.mu.Unlock()
	if p.cfg.OnResize != nil {
		p.cfg.OnResize(size, qlen)
	}
}

// Stop retires all workers and halts the resizer. It blocks until every
// worker has returned.
func (p *Pool) Stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	for _, s := range p.stops {
		close(s)
	}
	p.stops = nil
	p.mu.Unlock()
	close(p.done)
	p.wg.Wait()
	p.wwg.Wait()
}
