package blockdev

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"redbud/internal/clock"
	"redbud/internal/obs"
	"redbud/internal/stats"
)

// Op is the direction of an I/O request.
type Op uint8

// Request directions.
const (
	OpRead Op = iota
	OpWrite
)

func (o Op) String() string {
	if o == OpRead {
		return "R"
	}
	return "W"
}

// Errors returned by device operations.
var (
	ErrClosed     = errors.New("blockdev: device closed")
	ErrCrashed    = errors.New("blockdev: device crashed")
	ErrOutOfRange = errors.New("blockdev: request outside device")
)

// Event is one dispatched (post-merge) I/O, the simulator's equivalent of a
// blktrace completion record.
type Event struct {
	T       time.Time // dispatch completion time (virtual)
	Dev     int       // device ID
	Op      Op
	Offset  int64 // bytes
	Length  int64 // bytes
	SeekLen int64 // absolute head movement to reach Offset; 0 = sequential
	Merged  int   // number of original requests absorbed into this dispatch
}

// TraceFunc receives every dispatched I/O. It is called from the device
// scheduler goroutine and must not block.
type TraceFunc func(Event)

// Config describes one simulated device.
type Config struct {
	ID    int
	Size  int64 // capacity in bytes
	Model DiskModel
	Clock clock.Clock
	// MaxMergedBytes caps the size of a merged dispatch; 0 means the
	// default of 1 MiB (the Linux elevator's default cap of the era).
	MaxMergedBytes int64
	// DisableMerge turns the elevator's request merging off (used by the
	// original-Redbud configuration ablation).
	DisableMerge bool
	// Trace, if non-nil, observes every dispatch.
	Trace TraceFunc
	// Tracer, if non-nil, records dev.queue / dev.seek / dev.xfer spans for
	// every dispatch on track "dev<ID>".
	Tracer *obs.Tracer
	// WriteFault, if non-nil, decides the fate of every write at completion
	// time (see faults.go). Also settable later via SetWriteFault.
	WriteFault WriteFaultFunc
}

// Stats aggregates device-level counters.
type Stats struct {
	Submitted   int64
	Dispatched  int64
	Merged      int64 // requests absorbed into another dispatch
	Seeks       int64 // dispatches requiring head movement
	SeekBytes   int64 // total absolute head movement
	BytesRead   int64
	BytesWrite  int64
	BusyTime    time.Duration
	QueueLen    int64 // instantaneous
	MeanLatency time.Duration
}

// MergeRatio returns merged/submitted — the fraction of submitted requests
// absorbed into another dispatch (Figure 4's metric).
func (s Stats) MergeRatio() float64 {
	if s.Submitted == 0 {
		return 0
	}
	return float64(s.Merged) / float64(s.Submitted)
}

// request is one caller-visible I/O.
type request struct {
	op   Op
	off  int64
	n    int64
	data []byte // write payload (owned copy)
	buf  []byte // read destination, len n, filled at completion
	done chan error
	enq  time.Time
}

// ior is an elevator queue entry: one future dispatch, possibly covering
// several merged requests whose ranges are physically contiguous.
type ior struct {
	op   Op
	off  int64
	n    int64
	reqs []*request
}

// Device is a simulated block device with a single head and an elevator
// scheduler. All methods are safe for concurrent use.
type Device struct {
	cfg   Config
	clk   clock.Clock
	store *pageStore

	mu         sync.Mutex
	cond       *sync.Cond
	queue      []*ior
	head       int64
	closed     bool
	crashed    bool
	writeFault WriteFaultFunc

	durable intervalSet

	nFaults stats.Counter

	nSubmitted stats.Counter
	nDispatch  stats.Counter
	nMerged    stats.Counter
	nSeeks     stats.Counter
	seekBytes  stats.Counter
	bytesRead  stats.Counter
	bytesWrite stats.Counter
	busy       stats.DurationSum
	latency    stats.DurationSum
	queueLen   stats.Gauge

	baseMu sync.Mutex
	base   Stats // snapshot subtracted by Stats(); set by ResetStats

	track string // precomputed span track name, "dev<ID>"

	wg sync.WaitGroup
}

// New creates a device and starts its scheduler.
func New(cfg Config) *Device {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real(1)
	}
	if cfg.Size <= 0 {
		cfg.Size = 1 << 40 // 1 TiB default
	}
	if cfg.MaxMergedBytes <= 0 {
		cfg.MaxMergedBytes = 1 << 20
	}
	d := &Device{cfg: cfg, clk: cfg.Clock, store: newPageStore(), writeFault: cfg.WriteFault,
		track: fmt.Sprintf("dev%d", cfg.ID)}
	d.cond = sync.NewCond(&d.mu)
	d.wg.Add(1)
	go d.scheduler()
	return d
}

// ID returns the device identifier.
func (d *Device) ID() int { return d.cfg.ID }

// Size returns the device capacity in bytes.
func (d *Device) Size() int64 { return d.cfg.Size }

// WriteAsync submits a write of p at off and returns a channel that receives
// the result once the write is durable. The payload is copied.
func (d *Device) WriteAsync(off int64, p []byte) <-chan error {
	done := make(chan error, 1)
	if len(p) == 0 {
		done <- nil
		return done
	}
	if off < 0 || off+int64(len(p)) > d.cfg.Size {
		done <- fmt.Errorf("%w: write [%d,%d) size %d", ErrOutOfRange, off, off+int64(len(p)), d.cfg.Size)
		return done
	}
	data := make([]byte, len(p))
	copy(data, p)
	d.submit(&request{op: OpWrite, off: off, n: int64(len(p)), data: data, done: done, enq: d.clk.Now()})
	return done
}

// Write submits a write and blocks until it is durable.
func (d *Device) Write(off int64, p []byte) error { return <-d.WriteAsync(off, p) }

// ReadAsync submits a read of n bytes at off.
func (d *Device) ReadAsync(off, n int64) (<-chan error, []byte) {
	done := make(chan error, 1)
	buf := make([]byte, n)
	if n == 0 {
		done <- nil
		return done, buf
	}
	if off < 0 || n < 0 || off+n > d.cfg.Size {
		done <- fmt.Errorf("%w: read [%d,%d) size %d", ErrOutOfRange, off, off+n, d.cfg.Size)
		return done, buf
	}
	d.submit(&request{op: OpRead, off: off, n: n, buf: buf, done: done, enq: d.clk.Now()})
	return done, buf
}

// Read blocks until n bytes at off have been read.
func (d *Device) Read(off, n int64) ([]byte, error) {
	done, buf := d.ReadAsync(off, n)
	err := <-done
	return buf, err
}

// IsDurable reports whether every byte of [off, off+n) has been written by a
// completed write since the last crash. This is the hook the ordered-write
// invariant checks use.
func (d *Device) IsDurable(off, n int64) bool { return d.durable.contains(off, off+n) }

// submit enqueues a request, attempting an elevator merge against the queue.
func (d *Device) submit(r *request) {
	d.mu.Lock()
	if d.closed || d.crashed {
		err := ErrClosed
		if d.crashed {
			err = ErrCrashed
		}
		d.mu.Unlock()
		r.done <- err
		return
	}
	d.nSubmitted.Inc()
	if !d.cfg.DisableMerge && d.tryMerge(r) {
		d.nMerged.Inc()
		d.mu.Unlock()
		return
	}
	d.queue = append(d.queue, &ior{op: r.op, off: r.off, n: r.n, reqs: []*request{r}})
	d.queueLen.Set(int64(len(d.queue)))
	d.cond.Signal()
	d.mu.Unlock()
}

// tryMerge attempts a back- or front-merge of r into an existing queue entry.
// Caller holds d.mu.
func (d *Device) tryMerge(r *request) bool {
	for _, q := range d.queue {
		if q.op != r.op || q.n+r.n > d.cfg.MaxMergedBytes {
			continue
		}
		if r.off == q.off+q.n { // back merge
			q.n += r.n
			q.reqs = append(q.reqs, r)
			return true
		}
		if r.off+r.n == q.off { // front merge
			q.off = r.off
			q.n += r.n
			q.reqs = append(q.reqs, r)
			return true
		}
	}
	return false
}

// pickNext removes and returns the next queue entry: reads are served before
// writes (deadline-scheduler style — a synchronous reader must not starve
// behind a flood of asynchronous write-back), and within the chosen class
// C-LOOK picks the lowest offset at or beyond the head, wrapping to the
// lowest offset overall. Caller holds d.mu; queue must be non-empty.
func (d *Device) pickNext() *ior {
	class := OpWrite
	for _, q := range d.queue {
		if q.op == OpRead {
			class = OpRead
			break
		}
	}
	best, bestAny := -1, -1
	for i, q := range d.queue {
		if q.op != class {
			continue
		}
		if q.off >= d.head && (best == -1 || q.off < d.queue[best].off) {
			best = i
		}
		if bestAny == -1 || q.off < d.queue[bestAny].off {
			bestAny = i
		}
	}
	if best == -1 {
		best = bestAny
	}
	q := d.queue[best]
	d.queue = append(d.queue[:best], d.queue[best+1:]...)
	d.queueLen.Set(int64(len(d.queue)))
	return q
}

// scheduler is the device's single service loop.
func (d *Device) scheduler() {
	defer d.wg.Done()
	for {
		d.mu.Lock()
		for len(d.queue) == 0 && !d.closed {
			d.cond.Wait()
		}
		if len(d.queue) == 0 && d.closed {
			d.mu.Unlock()
			return
		}
		q := d.pickNext()
		head := d.head
		d.head = q.off + q.n
		d.mu.Unlock()

		st := d.cfg.Model.ServiceTime(head, q.off, q.n)
		d.clk.Sleep(st)
		d.complete(q, head, st)
	}
}

// complete applies a dispatched entry to the store and finishes its requests.
// Requests merged into one dispatch can fail individually under an injected
// write fault, so completion errors are per-request.
func (d *Device) complete(q *ior, head int64, st time.Duration) {
	d.mu.Lock()
	crashed := d.crashed
	fault := d.writeFault
	d.mu.Unlock()

	errs := make([]error, len(q.reqs))
	if crashed {
		for i := range errs {
			errs[i] = ErrCrashed
		}
	} else {
		for i, r := range q.reqs {
			if r.op != OpWrite {
				d.store.readAt(r.buf, r.off)
				d.bytesRead.Add(r.n)
				continue
			}
			if fault != nil {
				f, keep := fault(r.off, r.n)
				if f == WriteError || f == WriteTorn {
					d.nFaults.Inc()
					if f == WriteError {
						errs[i] = fmt.Errorf("%w: write [%d,%d)", ErrInjected, r.off, r.off+r.n)
						continue
					}
					// Torn: persist a strict prefix and record only it as
					// durable; the request's full range stays non-durable.
					if keep < 0 {
						keep = 0
					}
					if keep >= r.n {
						keep = r.n - 1
					}
					if keep > 0 {
						d.store.writeAt(r.data[:keep], r.off)
						d.durable.add(r.off, r.off+keep)
						d.bytesWrite.Add(keep)
					}
					errs[i] = fmt.Errorf("%w: torn write [%d,%d) kept %d bytes", ErrInjected, r.off, r.off+r.n, keep)
					continue
				}
			}
			d.store.writeAt(r.data, r.off)
			d.durable.add(r.off, r.off+r.n)
			d.bytesWrite.Add(r.n)
		}
	}

	d.nDispatch.Inc()
	d.busy.Observe(st)
	seek := q.off - head
	if seek < 0 {
		seek = -seek
	}
	if seek != 0 {
		d.nSeeks.Inc()
		d.seekBytes.Add(seek)
	}
	now := d.clk.Now()
	for i, r := range q.reqs {
		d.latency.Observe(now.Sub(r.enq))
		r.done <- errs[i]
	}
	if d.cfg.Trace != nil && !crashed {
		d.cfg.Trace(Event{T: now, Dev: d.cfg.ID, Op: q.op, Offset: q.off, Length: q.n, SeekLen: seek, Merged: len(q.reqs) - 1})
	}
	if d.cfg.Tracer.Enabled() && !crashed {
		// Reconstruct the dispatch timeline from the service-time model:
		// [dispatch, dispatch+seek) positions the head, the remainder is
		// controller overhead + media transfer.
		dispatch := now.Add(-st)
		seekT := d.cfg.Model.SeekTime(head, q.off)
		minEnq := q.reqs[0].enq
		for _, r := range q.reqs[1:] {
			if r.enq.Before(minEnq) {
				minEnq = r.enq
			}
		}
		d.cfg.Tracer.Record(d.track, obs.SpanDevQueue, 0, minEnq, dispatch)
		if seekT > 0 {
			d.cfg.Tracer.Record(d.track, obs.SpanDevSeek, 0, dispatch, dispatch.Add(seekT))
		}
		d.cfg.Tracer.Record(d.track, obs.SpanDevTransfer, 0, dispatch.Add(seekT), now)
	}
}

// Crash simulates a power failure: queued and future requests fail, and the
// durability record of in-flight writes is preserved only for completed ones.
// Data already durable survives (the store is "on disk").
func (d *Device) Crash() {
	d.mu.Lock()
	d.crashed = true
	q := d.queue
	d.queue = nil
	d.queueLen.Set(0)
	d.mu.Unlock()
	for _, e := range q {
		for _, r := range e.reqs {
			r.done <- ErrCrashed
		}
	}
}

// Recover clears the crashed state, making the device usable again. Durable
// data persists across Crash/Recover, as on a real disk.
func (d *Device) Recover() {
	d.mu.Lock()
	d.crashed = false
	d.mu.Unlock()
}

// Close shuts the device down after draining the queue.
func (d *Device) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
	d.wg.Wait()
}

// rawStats reads the monotonic counters.
func (d *Device) rawStats() Stats {
	return Stats{
		Submitted:   d.nSubmitted.Load(),
		Dispatched:  d.nDispatch.Load(),
		Merged:      d.nMerged.Load(),
		Seeks:       d.nSeeks.Load(),
		SeekBytes:   d.seekBytes.Load(),
		BytesRead:   d.bytesRead.Load(),
		BytesWrite:  d.bytesWrite.Load(),
		BusyTime:    d.busy.Total(),
		QueueLen:    d.queueLen.Load(),
		MeanLatency: d.latency.Mean(),
	}
}

// Stats returns a snapshot of the device counters since the last ResetStats.
func (d *Device) Stats() Stats {
	s := d.rawStats()
	d.baseMu.Lock()
	b := d.base
	d.baseMu.Unlock()
	s.Submitted -= b.Submitted
	s.Dispatched -= b.Dispatched
	s.Merged -= b.Merged
	s.Seeks -= b.Seeks
	s.SeekBytes -= b.SeekBytes
	s.BytesRead -= b.BytesRead
	s.BytesWrite -= b.BytesWrite
	s.BusyTime -= b.BusyTime
	return s
}

// ResetStats zeroes the counters as seen through Stats. The experiment
// harness calls this between warm-up and the measured phase.
func (d *Device) ResetStats() {
	s := d.rawStats()
	d.baseMu.Lock()
	d.base = s
	d.baseMu.Unlock()
}

// RegisterMetrics exposes the device counters in a metrics registry, labeled
// by device ID. Raw monotonic values are exported (ResetStats does not
// affect them); rate consumers diff snapshots instead.
func (d *Device) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	l := obs.Labels{"dev": fmt.Sprintf("%d", d.cfg.ID)}
	r.CounterFunc("redbud_dev_submitted_total", "I/O requests submitted", l, d.nSubmitted.Load)
	r.CounterFunc("redbud_dev_dispatched_total", "elevator dispatches issued", l, d.nDispatch.Load)
	r.CounterFunc("redbud_dev_merged_total", "requests absorbed by elevator merging", l, d.nMerged.Load)
	r.CounterFunc("redbud_dev_seeks_total", "dispatches requiring head movement", l, d.nSeeks.Load)
	r.CounterFunc("redbud_dev_seek_bytes_total", "total absolute head movement in bytes", l, d.seekBytes.Load)
	r.CounterFunc("redbud_dev_read_bytes_total", "bytes read from media", l, d.bytesRead.Load)
	r.CounterFunc("redbud_dev_written_bytes_total", "bytes written to media", l, d.bytesWrite.Load)
	r.CounterFunc("redbud_dev_injected_faults_total", "injected write faults fired", l, d.nFaults.Load)
	r.CounterFunc("redbud_dev_busy_ns_total", "cumulative head busy time in nanoseconds", l,
		func() int64 { return int64(d.busy.Total()) })
	r.GaugeFunc("redbud_dev_queue_len", "instantaneous elevator queue length", l, d.queueLen.Load)
}
