// Package agg aggregates per-shard metrics into one cluster view. Each MDS
// shard (and each client) owns its own obs.Registry; a Collector pulls every
// shard's Snapshot — in-process for bench and chaos harnesses, over HTTP for
// -debug daemons — tags the per-shard series with a shard label, and merges
// them into a single cluster-wide snapshot: counters and gauges sum,
// histograms merge bucket-by-bucket. The merged snapshot is what the SLO
// engine evaluates and what debughttp serves at /cluster/metrics.
package agg

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"

	"redbud/internal/obs"
	"redbud/internal/stats"
)

// Source is one scrape target: a named shard (or client) whose metrics
// snapshot Fetch returns.
type Source struct {
	Name  string
	Fetch func() (obs.Snapshot, error)
}

// RegistrySource wraps an in-process registry (bench and chaos harnesses).
func RegistrySource(name string, r *obs.Registry) Source {
	return Source{Name: name, Fetch: func() (obs.Snapshot, error) { return r.Snapshot(), nil }}
}

// SourceFunc wraps a snapshot function — for sources whose registry is
// replaced over time (a chaos harness restarting an MDS builds a fresh
// registry per incarnation; the closure always reads the live one).
func SourceFunc(name string, fn func() obs.Snapshot) Source {
	return Source{Name: name, Fetch: func() (obs.Snapshot, error) { return fn(), nil }}
}

// HTTPSource scrapes a debughttp daemon's /metrics.json. base is the
// daemon's debug address ("host:port" or a full http:// URL).
func HTTPSource(name, base string) Source {
	url := base
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + "/metrics.json"
	return Source{Name: name, Fetch: func() (obs.Snapshot, error) {
		resp, err := http.Get(url)
		if err != nil {
			return obs.Snapshot{}, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return obs.Snapshot{}, fmt.Errorf("agg: scrape %s: %s", url, resp.Status)
		}
		var s obs.Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
			return obs.Snapshot{}, fmt.Errorf("agg: scrape %s: %w", url, err)
		}
		return s, nil
	}}
}

// Collector pulls a fixed set of sources into cluster snapshots. Safe for
// concurrent Collect calls; the source list is immutable after New.
type Collector struct {
	sources []Source
}

// New builds a collector over the given sources.
func New(sources ...Source) *Collector {
	return &Collector{sources: append([]Source(nil), sources...)}
}

// Names lists the source names in collection order.
func (c *Collector) Names() []string {
	out := make([]string, len(c.sources))
	for i, s := range c.sources {
		out[i] = s.Name
	}
	return out
}

// ShardSnapshot is one source's reading, its series tagged shard="<name>".
type ShardSnapshot struct {
	Shard   string       `json:"shard"`
	Err     string       `json:"err,omitempty"` // scrape failure; Metrics empty
	Metrics obs.Snapshot `json:"metrics"`
}

// ClusterSnapshot is one collection round: every shard's tagged snapshot plus
// the cluster-wide merge.
type ClusterSnapshot struct {
	Shards []ShardSnapshot `json:"shards"`
	Merged obs.Snapshot    `json:"merged"`
	// Dropped counts per-shard series the merge had to skip — histograms
	// whose bucket layouts disagree across shards (a version skew, never the
	// homogeneous deployments the harnesses build).
	Dropped int `json:"dropped,omitempty"`
}

// Collect scrapes every source and merges. A failing source contributes an
// empty tagged snapshot with its error recorded; the merge covers whatever
// answered, so one dead shard degrades the cluster view instead of killing
// it.
func (c *Collector) Collect() ClusterSnapshot {
	out := ClusterSnapshot{Shards: make([]ShardSnapshot, 0, len(c.sources))}
	var raw []obs.Snapshot
	for _, src := range c.sources {
		s, err := src.Fetch()
		sh := ShardSnapshot{Shard: src.Name}
		if err != nil {
			sh.Err = err.Error()
			s = obs.Snapshot{}
		}
		sh.Metrics = tagSnapshot(s, src.Name)
		out.Shards = append(out.Shards, sh)
		raw = append(raw, s)
	}
	out.Merged, out.Dropped = mergeSnapshots(raw)
	return out
}

// Flat combines the merged series and every shard-tagged series into one
// snapshot sorted by (name, labels) — the /cluster/metrics rendering, where
// the unlabeled aggregate and its per-shard breakdown sit side by side.
func (cs ClusterSnapshot) Flat() obs.Snapshot {
	var all []obs.MetricValue
	all = append(all, cs.Merged.Metrics...)
	for _, sh := range cs.Shards {
		all = append(all, sh.Metrics.Metrics...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Name != all[j].Name {
			return all[i].Name < all[j].Name
		}
		return all[i].Labels < all[j].Labels
	})
	return obs.Snapshot{Metrics: all}
}

// tagSnapshot returns a copy of s with shard="<name>" injected into every
// series' label set, preserving the canonical sorted rendering.
func tagSnapshot(s obs.Snapshot, shard string) obs.Snapshot {
	out := obs.Snapshot{Metrics: make([]obs.MetricValue, len(s.Metrics))}
	for i, m := range s.Metrics {
		m.Labels = injectLabel(m.Labels, "shard", shard)
		out.Metrics[i] = m
	}
	return out
}

// injectLabel inserts key=%q(value) into a canonically rendered label string
// (`k1="v1",k2="v2"`, keys sorted), keeping the sort; an existing key is
// replaced.
func injectLabel(labels, key, value string) string {
	pair := fmt.Sprintf("%s=%q", key, value)
	if labels == "" {
		return pair
	}
	parts := splitLabels(labels)
	out := make([]string, 0, len(parts)+1)
	inserted := false
	for _, p := range parts {
		k := p
		if i := strings.IndexByte(p, '='); i >= 0 {
			k = p[:i]
		}
		if !inserted && key <= k {
			out = append(out, pair)
			inserted = true
			if key == k {
				continue // replace the existing pair
			}
		}
		out = append(out, p)
	}
	if !inserted {
		out = append(out, pair)
	}
	return strings.Join(out, ",")
}

// splitLabels splits a rendered label string on top-level commas — commas
// inside %q-quoted values (which also escapes embedded quotes) don't split.
func splitLabels(labels string) []string {
	var parts []string
	start, inQuote, escaped := 0, false, false
	for i := 0; i < len(labels); i++ {
		ch := labels[i]
		switch {
		case escaped:
			escaped = false
		case ch == '\\' && inQuote:
			escaped = true
		case ch == '"':
			inQuote = !inQuote
		case ch == ',' && !inQuote:
			parts = append(parts, labels[start:i])
			start = i + 1
		}
	}
	return append(parts, labels[start:])
}

// mergeKey groups series for the merge: same name and same (untagged) labels
// fold together across shards.
type mergeKey struct{ name, labels string }

// mergedSeries accumulates one cluster-wide series.
type mergedSeries struct {
	mv   obs.MetricValue
	hist *stats.Histogram
}

// mergeSnapshots folds per-shard snapshots into the cluster aggregate:
// counters and gauges sum (a summed gauge is the cluster total — queue
// depths, intent backlogs); histograms merge bucket-by-bucket via
// stats.Histogram.Merge. Series whose bucket layouts disagree are dropped
// from the merge and counted.
func mergeSnapshots(snaps []obs.Snapshot) (obs.Snapshot, int) {
	acc := make(map[mergeKey]*mergedSeries)
	var order []mergeKey
	dropped := 0
	for _, s := range snaps {
		for _, m := range s.Metrics {
			key := mergeKey{m.Name, m.Labels}
			ms := acc[key]
			if ms == nil {
				ms = &mergedSeries{mv: obs.MetricValue{Name: m.Name, Labels: m.Labels, Help: m.Help, Kind: m.Kind}}
				acc[key] = ms
				order = append(order, key)
			}
			switch m.Kind {
			case obs.KindHistogram:
				h := histFromValue(m.Hist)
				if h == nil {
					continue // empty or malformed reading: nothing to fold
				}
				if ms.hist == nil {
					ms.hist = h
					continue
				}
				if !sameLayout(ms.hist, h) {
					dropped++
					continue
				}
				ms.hist.Merge(h)
			default:
				ms.mv.Value += m.Value
			}
		}
	}
	out := obs.Snapshot{Metrics: make([]obs.MetricValue, 0, len(order))}
	for _, key := range order {
		ms := acc[key]
		if ms.mv.Kind == obs.KindHistogram {
			ms.mv.Hist = valueFromHist(ms.hist)
		}
		out.Metrics = append(out.Metrics, ms.mv)
	}
	sort.Slice(out.Metrics, func(i, j int) bool {
		a, b := out.Metrics[i], out.Metrics[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Labels < b.Labels
	})
	return out, dropped
}

// sameLayout reports whether two histograms share bucket bounds (Merge
// panics otherwise).
func sameLayout(a, b *stats.Histogram) bool {
	ab, _ := a.Buckets()
	bb, _ := b.Buckets()
	if len(ab) != len(bb) {
		return false
	}
	for i := range ab {
		if ab[i] != bb[i] {
			return false
		}
	}
	return true
}

// histFromValue reconstructs a histogram from an exported reading — the
// cumulative buckets turn back into per-bucket counts, with the overflow
// recovered from the total. Returns nil for empty or malformed readings
// (non-increasing bounds, negative counts) rather than panicking: HTTP
// sources hand us bytes from another process.
func histFromValue(hv *obs.HistValue) *stats.Histogram {
	if hv == nil || len(hv.Buckets) == 0 {
		return nil
	}
	bounds := make([]float64, len(hv.Buckets))
	counts := make([]int64, len(hv.Buckets)+1)
	var prev int64
	for i, b := range hv.Buckets {
		if i > 0 && b.LE <= bounds[i-1] {
			return nil
		}
		bounds[i] = b.LE
		counts[i] = b.Count - prev
		if counts[i] < 0 {
			return nil
		}
		prev = b.Count
	}
	overflow := hv.Count - prev
	if overflow < 0 {
		return nil
	}
	counts[len(bounds)] = overflow
	return stats.HistogramFromBuckets(bounds, counts, hv.Sum, hv.Min, hv.Max, hv.Count)
}

// valueFromHist renders a histogram the same way a registry snapshot does
// (cumulative buckets, overflow excluded). Nil histograms render as an empty
// reading so merged snapshots keep the series present.
func valueFromHist(h *stats.Histogram) *obs.HistValue {
	if h == nil {
		return &obs.HistValue{}
	}
	bounds, counts := h.Buckets()
	hv := &obs.HistValue{
		Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(), Mean: h.Mean(),
		P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
	}
	var cum int64
	hv.Buckets = make([]obs.BucketValue, 0, len(bounds))
	for i, b := range bounds {
		cum += counts[i]
		hv.Buckets = append(hv.Buckets, obs.BucketValue{LE: b, Count: cum})
	}
	return hv
}
