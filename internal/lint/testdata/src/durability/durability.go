// Package client mirrors redbud's internal/client commit paths for the
// durability analyzer: every commit RPC must be dominated by a durability
// wait.
package client

import (
	"sync"

	"proto"
	"rpc"
)

type fileState struct {
	mu            sync.Mutex
	cond          *sync.Cond
	pendingWrites int
}

type Client struct {
	mds *rpc.Client
}

// waitDurable is a base durability wait: it loops on the condition variable
// until every covered write has been acknowledged durable.
func (c *Client) waitDurable(fs *fileState) {
	fs.mu.Lock()
	for fs.pendingWrites > 0 {
		fs.cond.Wait()
	}
	fs.mu.Unlock()
}

// buildCommit embeds the wait; callers inherit it transitively.
func (c *Client) buildCommit(fs *fileState) []byte {
	c.waitDurable(fs)
	return nil
}

// goodDirect waits, then commits.
func (c *Client) goodDirect(fs *fileState) error {
	c.waitDurable(fs)
	return c.mds.Call(proto.OpCommit, nil, nil)
}

// goodTransitive commits after buildCommit, which contains the wait.
func (c *Client) goodTransitive(fs *fileState) error {
	req := c.buildCommit(fs)
	return c.mds.Call(proto.OpCommit, req, nil)
}

// goodOtherOp: non-commit RPCs need no durability wait.
func (c *Client) goodOtherOp() error {
	return c.mds.Call(proto.OpWrite, nil, nil)
}

// badNoWait fires the commit with covered writes possibly still in flight —
// exactly the reordering the paper's ordered-write rule forbids.
func (c *Client) badNoWait() error {
	return c.mds.Call(proto.OpCommit, nil, nil) // want `without a dominating durability wait`
}

// badSubOp builds a compound commit sub-op without waiting.
func (c *Client) badSubOp() error {
	subs := []rpc.SubOp{{Op: proto.OpCommit}} // want `compound commit sub-op`
	return c.mds.Compound(subs)
}
