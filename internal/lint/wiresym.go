package lint

// wiresym: every wire message's encoder and decoder must agree on the frame
// layout — same field sequence, same widths, same loop/optional nesting.
//
// A MarshalWire/UnmarshalWire pair (or a PutX/GetX helper pair) is two
// hand-written views of one schema; nothing in the type system ties them
// together, so a swapped pair of fields or a PutU32 read back with U64
// compiles fine and corrupts every frame. wiresym extracts both sides with
// the wire-schema interpreter and diffs them structurally, reporting the
// first divergence at the decoder site.

import (
	"fmt"
	"go/token"
)

// WireSym checks Marshal/Unmarshal symmetry.
var WireSym = &Analyzer{
	Name: "wiresym",
	Doc:  "encoder and decoder of a wire message must produce identical field sequences",
	Run:  runWireSym,
}

func runWireSym(pass *Pass) error {
	for _, s := range ExtractPassSchemas(pass) {
		reportUnsupportedOps(pass, s, s.Enc)
		reportUnsupportedOps(pass, s, s.Dec)
		switch {
		case s.HasEnc && !s.HasDec:
			pass.Reportf(s.EncPos, "%s has an encoder but no matching decoder (%s)",
				s.DisplayName(), counterpartName(s, true))
		case s.HasDec && !s.HasEnc:
			pass.Reportf(s.DecPos, "%s has a decoder but no matching encoder (%s)",
				s.DisplayName(), counterpartName(s, false))
		default:
			if msg, pos, ok := wireSeqDiff(s.Enc, s.Dec); !ok {
				if !pos.IsValid() {
					pos = s.DecPos
				}
				pass.Reportf(pos, "wire symmetry broken for %s: %s", s.DisplayName(), msg)
			}
		}
	}
	return nil
}

func counterpartName(s *MessageSchema, haveEnc bool) string {
	if s.Helper {
		if haveEnc {
			return "missing Get" + s.Name
		}
		return "missing Put" + s.Name
	}
	if haveEnc {
		return "missing UnmarshalWire"
	}
	return "missing MarshalWire"
}

// reportUnsupportedOps surfaces extraction failures: control flow the schema
// interpreter cannot model means the symmetry check is blind there.
func reportUnsupportedOps(pass *Pass, s *MessageSchema, ops []WireOp) {
	for _, op := range ops {
		if op.Kind == "unsupported" {
			pass.Reportf(op.Pos, "%s uses an encoding construct the wire-schema extractor cannot model; restructure into straight-line puts/gets, a single loop, or one optional branch", s.DisplayName())
			continue
		}
		reportUnsupportedOps(pass, s, op.Body)
	}
}

// wireSeqDiff structurally compares an encoder and decoder sequence. On
// mismatch it returns a description and the decoder-side position to report
// at (invalid Pos means "use the decoder declaration").
func wireSeqDiff(enc, dec []WireOp) (msg string, pos token.Pos, ok bool) {
	n := len(enc)
	if len(dec) < n {
		n = len(dec)
	}
	for i := 0; i < n; i++ {
		e, d := enc[i], dec[i]
		if e.Kind != d.Kind {
			return kindMismatch(i, e, d), d.Pos, false
		}
		if e.Kind == "loop" || e.Kind == "opt" {
			if m, p, ok := wireSeqDiff(e.Body, d.Body); !ok {
				if !p.IsValid() {
					p = d.Pos
				}
				return fmt.Sprintf("inside %s group at field %d: %s", groupNoun(e.Kind), i, m), p, false
			}
		}
	}
	if len(enc) != len(dec) {
		var p token.Pos
		if len(dec) > len(enc) {
			p = dec[len(enc)].Pos
		}
		return fmt.Sprintf("encoder writes %d fields, decoder reads %d", len(enc), len(dec)), p, false
	}
	return "", token.NoPos, true
}

func groupNoun(kind string) string {
	if kind == "loop" {
		return "repeated"
	}
	return "optional"
}

func kindMismatch(i int, e, d WireOp) string {
	ew, dw := wireOpWidth(e.Kind), wireOpWidth(d.Kind)
	if ew > 0 && dw > 0 && ew != dw {
		return fmt.Sprintf("field %d: width mismatch: encoder writes %s (%d bytes), decoder reads %s (%d bytes)",
			i, e.Kind, ew, d.Kind, dw)
	}
	return fmt.Sprintf("field %d: encoder writes %s, decoder reads %s", i, e, d)
}
