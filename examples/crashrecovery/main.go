// Crash recovery: the consistency story behind ordered writes (§I, §III-A).
// A client writes files through the delayed path and crashes mid-stream; the
// MDS then "reboots" — its metadata store is rebuilt purely from the
// journal on the metadata disk — and garbage-collects the orphan space
// (allocations and delegations whose commits never arrived). The example
// verifies the paper's invariant afterwards: every committed extent
// references data that is durable on the array, and no orphan space leaks.
//
//	go run ./examples/crashrecovery
package main

import (
	"fmt"
	"log"

	"redbud/internal/alloc"
	"redbud/internal/blockdev"
	"redbud/internal/client"
	"redbud/internal/clock"
	"redbud/internal/mds"
	"redbud/internal/meta"
	"redbud/internal/netsim"
	"redbud/internal/rpc"
)

func main() {
	clk := clock.Real(1)

	// The shared array and the metadata disk survive crashes (they are
	// "the disks"); everything in DRAM is lost.
	data := blockdev.New(blockdev.Config{ID: 0, Size: 1 << 30, Model: blockdev.FastHDD(), Clock: clk})
	defer data.Close()
	metaDisk := blockdev.New(blockdev.Config{ID: 1000, Size: 256 << 20, Model: blockdev.FastHDD(), Clock: clk})
	defer metaDisk.Close()

	mkAGs := func() *alloc.AGSet { return alloc.NewUniformAGSet(alloc.RoundRobin, 0, 1<<30, 4) }
	journal := meta.NewJournal(metaDisk, 0, 128<<20)
	store := meta.NewStore(meta.Config{AGs: mkAGs(), Journal: journal, Clock: clk})
	server := mds.New(mds.Config{Store: store, Clock: clk, Daemons: 4})

	net := netsim.NewNetwork(clk)
	net.AddHost("mds", netsim.Instant())
	net.AddHost("c1", netsim.Instant())
	lis, err := net.Listen("mds")
	if err != nil {
		log.Fatal(err)
	}
	go server.Serve(lis)

	conn, err := net.Dial("c1", "mds")
	if err != nil {
		log.Fatal(err)
	}
	cl := client.New(client.Config{
		Name:            "c1",
		MDS:             rpc.NewClient(conn, clk),
		Devices:         map[uint32]client.BlockDevice{0: data},
		Clock:           clk,
		Mode:            client.DelayedCommit,
		DelegationChunk: 1 << 20,
	})

	// Write ten files; fsync the first five ("the user saved them"),
	// leave the rest in flight, then pull the plug on the client.
	payload := make([]byte, 8192)
	for i := 0; i < 10; i++ {
		f, err := cl.Create(fmt.Sprintf("/file-%d", i))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := f.WriteAt(payload, 0); err != nil {
			log.Fatal(err)
		}
		if i < 5 {
			if err := f.Sync(); err != nil {
				log.Fatal(err)
			}
		}
		f.Close()
	}
	cl.Crash() // no drain, no delegation return
	fmt.Println("client crashed with 5 fsynced files and 5 files in flight")

	// MDS "reboot": throw the in-memory store away and recover from the
	// journal alone, against a fresh (fully free) AG set.
	server.Close()
	lis.Close()
	recovered, stats, err := meta.Recover(meta.Config{
		AGs:     mkAGs(),
		Journal: meta.NewJournal(metaDisk, 0, 128<<20),
		Clock:   clk,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery replayed %d journal records, reclaimed %d orphan bytes, revoked %d delegations\n",
		stats.Records, stats.OrphanBytes, stats.Delegations)

	// The ordered-write invariant: every committed extent must reference
	// durable data on the array.
	violations := recovered.CheckConsistent(func(dev int, off, n int64) bool {
		return data.IsDurable(off, n)
	})
	fmt.Printf("consistency check: %d violations\n", len(violations))

	// What survived? The fsynced files with their full size; the in-flight
	// files exist (creates are synchronous metadata ops) but any
	// uncommitted data is unreachable orphan space that was recycled.
	survivors := 0
	for i := 0; i < 10; i++ {
		attr, err := recovered.Lookup(meta.RootID, fmt.Sprintf("file-%d", i))
		if err != nil {
			continue
		}
		lay, _ := recovered.GetLayout(attr.ID, 0, 8192, 0)
		if attr.Size == 8192 && len(lay.Extents) > 0 {
			survivors++
		}
	}
	fmt.Printf("%d of 10 files fully durable (>=5 expected: the fsynced ones, plus any whose background commit won the race)\n", survivors)
	if len(violations) != 0 {
		log.Fatal("ordered-write invariant violated")
	}
	fmt.Println("file system consistent after crash + recovery ✓")
}
