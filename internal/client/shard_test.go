package client

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"redbud/internal/alloc"
	"redbud/internal/blockdev"
	"redbud/internal/clock"
	"redbud/internal/fsapi"
	"redbud/internal/mds"
	"redbud/internal/meta"
	"redbud/internal/netsim"
	"redbud/internal/rpc"
)

// shardedCluster is an in-process multi-MDS deployment for exercising the
// client's cross-shard orchestration and shard-map checks.
type shardedCluster struct {
	t      *testing.T
	clk    clock.Clock
	net    *netsim.Network
	stores []*meta.Store
	data   map[uint32]*blockdev.Device
	nextID int
}

func newShardedCluster(t *testing.T, n int) *shardedCluster {
	t.Helper()
	clk := clock.Real(1)
	net := netsim.NewNetwork(clk)
	sc := &shardedCluster{t: t, clk: clk, net: net, data: map[uint32]*blockdev.Device{}}
	for i := 0; i < n; i++ {
		d := blockdev.New(blockdev.Config{ID: i, Size: 1 << 30, Model: blockdev.ZeroLatency(), Clock: clk})
		t.Cleanup(d.Close)
		sc.data[uint32(i)] = d
		store := meta.NewStore(meta.Config{
			AGs: alloc.NewUniformAGSet(alloc.RoundRobin, i, 1<<30, 4), Clock: clk,
			Shard: i, ShardCount: n,
		})
		sc.stores = append(sc.stores, store)
		srv := mds.New(mds.Config{Store: store, Clock: clk, Daemons: 2, ShardIndex: uint32(i), ShardCount: uint32(n)})
		t.Cleanup(srv.Close)
		host := fmt.Sprintf("mds%d", i)
		net.AddHost(host, netsim.Instant())
		lis, err := net.Listen(host)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { lis.Close() })
		go srv.Serve(lis)
	}
	return sc
}

// dial opens one connection per shard from a fresh client host, in shard
// order.
func (sc *shardedCluster) dial() (string, []*rpc.Client) {
	sc.t.Helper()
	sc.nextID++
	host := fmt.Sprintf("client-%d", sc.nextID)
	sc.net.AddHost(host, netsim.Instant())
	conns := make([]*rpc.Client, len(sc.stores))
	for i := range conns {
		conn, err := sc.net.Dial(host, fmt.Sprintf("mds%d", i))
		if err != nil {
			sc.t.Fatal(err)
		}
		conns[i] = rpc.NewClient(conn, sc.clk)
	}
	return host, conns
}

// mount builds a client over the given connection slice.
func (sc *shardedCluster) mount(host string, conns []*rpc.Client) *Client {
	sc.t.Helper()
	devs := make(map[uint32]BlockDevice, len(sc.data))
	for id, d := range sc.data {
		devs[id] = d
	}
	return New(Config{Name: host, Shards: conns, Devices: devs, Clock: sc.clk, Mode: SyncCommit})
}

// crossShardFile plants a fully committed file whose dirent lives under root
// but whose inode is homed on a foreign shard, returning its id. Built at
// the store layer so placement is deterministic.
func (sc *shardedCluster) crossShardFile(name string) meta.FileID {
	sc.t.Helper()
	n := len(sc.stores)
	pi := meta.ShardOf(meta.RootID, n)
	ps, ts := sc.stores[pi], sc.stores[(pi+1)%n]
	f, err := ts.CreateDetached(meta.RootID, name, meta.TypeFile)
	if err != nil {
		sc.t.Fatal(err)
	}
	if err := ps.LinkRemote(meta.RootID, name, f.ID, meta.TypeFile); err != nil {
		sc.t.Fatal(err)
	}
	if err := ts.NSCommit(f.ID, meta.NSCreate); err != nil {
		sc.t.Fatal(err)
	}
	return f.ID
}

func (sc *shardedCluster) fsckAll(when string) {
	sc.t.Helper()
	if probs := meta.FsckCluster(sc.stores); len(probs) != 0 {
		sc.t.Fatalf("fsck %s: %v", when, probs)
	}
}

// TestShardMapMismatchMarksLinkDead wires connection i to server (i+1)%n —
// the misconfiguration the hello shard map exists to catch. The mount must
// survive (a misconfigured server reply must never crash the client), and
// every operation routed through the miswired links must fail with the
// mismatch error instead of scattering the namespace across wrong shards.
func TestShardMapMismatchMarksLinkDead(t *testing.T) {
	sc := newShardedCluster(t, 2)
	host, conns := sc.dial()
	conns[0], conns[1] = conns[1], conns[0]
	cl := sc.mount(host, conns)
	defer cl.Close()

	_, err := cl.Stat("/")
	if err == nil {
		t.Fatal("Stat through a miswired link succeeded")
	}
	if !strings.Contains(err.Error(), "shard map mismatch") {
		t.Fatalf("Stat error = %v, want shard map mismatch", err)
	}
	if err := cl.Mkdir("/d"); err == nil {
		t.Fatal("Mkdir through a miswired link succeeded")
	}
	// Nothing leaked onto either store.
	sc.fsckAll("after miswired mount")
	for i, s := range sc.stores {
		if ents, err := s.ReadDir(meta.RootID); err == nil && len(ents) != 0 {
			t.Fatalf("shard %d namespace polluted: %v", i, ents)
		}
	}
}

// TestCrossShardRemoveAbortsOnlyOnDefinitiveFailure pins the abort rule: a
// RemoteError from the commit point proves the unlink did not execute, so
// the saga rolls its intent back; a transport failure proves nothing, so the
// intent must stay live for quiesced resolution instead of being aborted
// against a possibly-committed unlink.
func TestCrossShardRemoveAbortsOnlyOnDefinitiveFailure(t *testing.T) {
	t.Run("definitive", func(t *testing.T) {
		sc := newShardedCluster(t, 2)
		id := sc.crossShardFile("f")
		home := sc.stores[meta.ShardOf(id, 2)]
		ps := sc.stores[meta.ShardOf(meta.RootID, 2)]
		host, conns := sc.dial()
		cl := sc.mount(host, conns)
		defer cl.Close()

		// A rename slips in before the remove's commit point.
		if err := ps.Rename(meta.RootID, "f", meta.RootID, "g"); err != nil {
			t.Fatal(err)
		}
		// The commit point definitively refuses (entry moved), which the
		// saga maps to a not-exist error after rolling its intent back.
		err := cl.removeCrossShard(meta.RootID, "f", id)
		if !errors.Is(err, fsapi.ErrNotExist) {
			t.Fatalf("remove of a moved entry: %v, want ErrNotExist", err)
		}
		// The abort ran; the file survives under the new name.
		if ins := home.NSIntents(); len(ins) != 0 {
			t.Fatalf("intent not rolled back after definitive refusal: %+v", ins)
		}
		if got, err := ps.Lookup(meta.RootID, "g"); err != nil || got.ID != id {
			t.Fatalf("renamed entry lost: %+v, %v", got, err)
		}
		sc.fsckAll("after definitive refusal")
	})

	t.Run("ambiguous", func(t *testing.T) {
		sc := newShardedCluster(t, 2)
		id := sc.crossShardFile("f")
		home := sc.stores[meta.ShardOf(id, 2)]
		pi := meta.ShardOf(meta.RootID, 2)
		host, conns := sc.dial()
		cl := sc.mount(host, conns)
		defer cl.Close()

		// Kill the parent-shard connection: the commit-point RPC now fails
		// with a transport error that proves nothing about the server.
		m, _ := cl.links[pi].conn()
		m.Close()
		err := cl.removeCrossShard(meta.RootID, "f", id)
		if err == nil {
			t.Fatal("remove over a dead parent link succeeded")
		}
		if definitiveFailure(err) {
			t.Fatalf("transport failure classified definitive: %v", err)
		}
		// No abort was sent: the NSRemove intent is still live on the home
		// shard, waiting for resolution.
		ins := home.NSIntents()
		if len(ins) != 1 || ins[0].Kind != meta.NSRemove || ins[0].File != id {
			t.Fatalf("intent dropped after ambiguous failure: %+v", ins)
		}
		// Quiesced resolution probes the dirent — still present, commit
		// point never reached — and rolls the remove back.
		if err := meta.ResolveNSIntents(sc.stores); err != nil {
			t.Fatal(err)
		}
		if ins := home.NSIntents(); len(ins) != 0 {
			t.Fatalf("resolution left intents: %+v", ins)
		}
		if got, err := sc.stores[pi].Lookup(meta.RootID, "f"); err != nil || got.ID != id {
			t.Fatalf("file lost to a rolled-back remove: %+v, %v", got, err)
		}
		sc.fsckAll("after resolution")
	})
}

// TestDefinitiveFailureClassification pins the boundary the sagas key off.
func TestDefinitiveFailureClassification(t *testing.T) {
	re := &rpc.RemoteError{Op: 7, Message: "no"}
	cases := []struct {
		err  error
		want bool
	}{
		{re, true},
		{fmt.Errorf("remove: %w", re), true},
		{rpc.ErrTimeout, false},
		{rpc.ErrConnClosed, false},
		{rpc.ErrClientClosed, false},
		{fmt.Errorf("call: %w", rpc.ErrTimeout), false},
		{errors.New("opaque"), false},
		{nil, false},
	}
	for _, c := range cases {
		if got := definitiveFailure(c.err); got != c.want {
			t.Errorf("definitiveFailure(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestUpdateProtoVersionSkipsPendingLinks pins the session-version rule:
// links whose handshake has not completed (version 0) are skipped rather
// than read as v1, so one pending link cannot downgrade the whole session;
// with no handshake done at all the session stays at 0 (v1 behaviour).
func TestUpdateProtoVersionSkipsPendingLinks(t *testing.T) {
	set := func(vs ...uint32) *Client {
		c := &Client{}
		for i, v := range vs {
			l := &mdsLink{shard: i}
			l.version.Store(v)
			c.links = append(c.links, l)
		}
		c.updateProtoVersion()
		return c
	}
	if got := set(3, 0, 2).protoVersion.Load(); got != 2 {
		t.Fatalf("pending link counted: session v%d, want v2", got)
	}
	if got := set(0, 0).protoVersion.Load(); got != 0 {
		t.Fatalf("all-pending session v%d, want v0", got)
	}
	if got := set(3, 3).protoVersion.Load(); got != 3 {
		t.Fatalf("uniform session v%d, want v3", got)
	}
}
