package rpc

import (
	"testing"

	"redbud/internal/clock"
	"redbud/internal/netsim"
	"redbud/internal/wire"
)

func benchPair(b *testing.B, daemons int) *Client {
	return benchPairHandler(b, daemons, testHandler)
}

func benchPairHandler(b *testing.B, daemons int, h Handler) *Client {
	b.Helper()
	n := netsim.NewNetwork(clock.Real(1))
	n.AddHost("c", netsim.Instant())
	n.AddHost("s", netsim.Instant())
	l, err := n.Listen("s")
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(ServerConfig{Handler: h, Daemons: daemons})
	go srv.Serve(l)
	conn, err := n.Dial("c", "s")
	if err != nil {
		b.Fatal(err)
	}
	cli := NewClient(conn, clock.Real(1))
	b.Cleanup(func() {
		cli.Close()
		srv.Close()
		l.Close()
	})
	return cli
}

func BenchmarkCallEcho(b *testing.B) {
	cli := benchPair(b, 4)
	payload := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.CallRaw(opEcho, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCallParallel(b *testing.B) {
	cli := benchPair(b, 8)
	payload := make([]byte, 128)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := cli.CallRaw(opEcho, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRPCAlloc tracks allocations per call on the framing hot path:
// request encode, server decode + response encode, client response dispatch.
func BenchmarkRPCAlloc(b *testing.B) {
	cli := benchPair(b, 4)
	payload := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.CallRaw(opEcho, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// rawEcho returns the request body without copying; process() documents that
// the payload may alias the request frame, so this is the leanest legal
// handler and isolates the framing layer's own allocation behavior.
func rawEcho(_ uint16, body []byte) ([]byte, error) { return body, nil }

// BenchmarkWireRoundTrip measures the steady-state frame send/recv cycle —
// pooled header encode, gather-write, transport copy into a pooled frame,
// server decode/dispatch, gather-written response, client dispatch, frame
// recycle. CI gates this benchmark at 0 allocs/op.
func BenchmarkWireRoundTrip(b *testing.B) {
	cli := benchPairHandler(b, 4, rawEcho)
	payload := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, frame, err := cli.call(opEcho, payload)
		if err != nil {
			b.Fatal(err)
		}
		if len(p) != len(payload) {
			b.Fatalf("echo returned %d bytes", len(p))
		}
		wire.PutFrame(frame)
	}
}

// TestWireRoundTripZeroAlloc asserts the same property as the benchmark
// without needing -bench: after warmup, a call round trip performs no heap
// allocation in the whole process (client framing, transport, and server
// framing included). A small epsilon absorbs one-off runtime allocations
// (sync.Pool victim-cache refills after a GC).
func TestWireRoundTripZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	n := netsim.NewNetwork(clock.Real(1))
	n.AddHost("c", netsim.Instant())
	n.AddHost("s", netsim.Instant())
	l, err := n.Listen("s")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServerConfig{Handler: rawEcho, Daemons: 2})
	go srv.Serve(l)
	conn, err := n.Dial("c", "s")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn, clock.Real(1))
	defer func() {
		cli.Close()
		srv.Close()
		l.Close()
	}()

	payload := make([]byte, 128)
	roundTrip := func() {
		p, frame, err := cli.call(opEcho, payload)
		if err != nil {
			t.Fatal(err)
		}
		if len(p) != len(payload) {
			t.Fatalf("echo returned %d bytes", len(p))
		}
		wire.PutFrame(frame)
	}
	for i := 0; i < 200; i++ {
		roundTrip() // warm the frame, buffer, and call pools
	}
	if avg := testing.AllocsPerRun(500, roundTrip); avg > 0.05 {
		t.Fatalf("steady-state round trip allocates %.3f objects/op, want 0", avg)
	}
}

func BenchmarkCompoundDegree6(b *testing.B) {
	cli := benchPair(b, 4)
	ops := make([]SubOp, 6)
	for i := range ops {
		ops[i] = SubOp{Op: opEcho, Body: make([]byte, 64)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Compound(ops); err != nil {
			b.Fatal(err)
		}
	}
}
