// Command redbud-top is a live cluster monitor: it polls the /metrics.json
// endpoint of one or more debug HTTP servers (started with `redbud-mds
// -debug` / `redbud-client -debug`) and renders a refreshing terminal view —
// commit-queue depth, commit threads, compound degree, commit-latency
// p50/p99, and per-second rates computed from counter deltas between polls.
//
//	redbud-mds  -listen :9000 -debug :9100 &
//	redbud-client -mds :9000 -disk 0=:9001 -debug :9101 bench 5000 &
//	redbud-top :9100 :9101
//
// Flags:
//
//	-interval 1s   poll period
//	-n 0           number of refreshes (0 = until interrupted)
//	-plain         no ANSI clear between refreshes (log-friendly)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"redbud/internal/obs"
)

// target is one polled debug endpoint.
type target struct {
	addr string
	prev obs.Snapshot
	ok   bool
}

func main() {
	var (
		interval = flag.Duration("interval", time.Second, "poll period")
		count    = flag.Int("n", 0, "refreshes before exiting (0 = forever)")
		plain    = flag.Bool("plain", false, "do not clear the screen between refreshes")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: redbud-top [flags] ADDR [ADDR...]  (debug HTTP addresses, e.g. :9100)")
		os.Exit(2)
	}

	targets := make([]*target, 0, flag.NArg())
	for _, a := range flag.Args() {
		targets = append(targets, &target{addr: a})
	}
	httpc := &http.Client{Timeout: 2 * time.Second}

	for i := 0; *count == 0 || i < *count; i++ {
		var b strings.Builder
		fmt.Fprintf(&b, "redbud-top  %s  (%s refresh)\n\n", time.Now().Format("15:04:05"), *interval)
		for _, t := range targets {
			render(&b, httpc, t, *interval)
		}
		if !*plain {
			fmt.Print("\x1b[H\x1b[2J") // home + clear
		}
		os.Stdout.WriteString(b.String())
		if *count == 0 || i < *count-1 {
			time.Sleep(*interval)
		}
	}
}

// render polls one target and appends its panel.
func render(b *strings.Builder, httpc *http.Client, t *target, interval time.Duration) {
	fmt.Fprintf(b, "── %s ", t.addr)
	fmt.Fprintln(b, strings.Repeat("─", max(0, 60-len(t.addr))))
	snap, err := poll(httpc, t.addr)
	if err != nil {
		fmt.Fprintf(b, "  unreachable: %v\n\n", err)
		t.ok = false
		return
	}
	d := obs.Diff(t.prev, snap)
	first := !t.ok
	t.prev, t.ok = snap, true

	// Gauges: instantaneous state worth watching.
	for _, name := range []string{
		"redbud_client_commit_queue_len", "redbud_client_commit_threads",
		"redbud_client_compound_degree", "redbud_rpc_queue_len",
		"redbud_rpc_inflight", "redbud_meta_files",
	} {
		for _, m := range d.Metrics {
			if m.Name == name && m.Kind == obs.KindGauge {
				fmt.Fprintf(b, "  %-36s %12d  %s\n", name, m.Value, m.Labels)
			}
		}
	}
	// Histograms: commit latency quantiles over the last interval.
	for _, m := range d.Metrics {
		if m.Kind == obs.KindHistogram && m.Hist != nil && m.Hist.Count > 0 {
			fmt.Fprintf(b, "  %-36s p50 %8s  p99 %8s  n=%d  %s\n",
				m.Name, fmtSec(m.Hist.P50), fmtSec(m.Hist.P99), m.Hist.Count, m.Labels)
		}
	}
	// Counters: per-second rates from the interval delta (skip the first
	// poll, where the delta spans process lifetime).
	if !first {
		type rate struct {
			name, labels string
			persec       float64
		}
		var rates []rate
		for _, m := range d.Metrics {
			if m.Kind == obs.KindCounter && m.Value != 0 {
				rates = append(rates, rate{m.Name, m.Labels, float64(m.Value) / interval.Seconds()})
			}
		}
		sort.Slice(rates, func(i, j int) bool { return rates[i].persec > rates[j].persec })
		if len(rates) > 12 {
			rates = rates[:12]
		}
		for _, r := range rates {
			fmt.Fprintf(b, "  %-36s %12.1f/s  %s\n", r.name, r.persec, r.labels)
		}
	}
	b.WriteByte('\n')
}

// poll fetches and decodes one /metrics.json snapshot. Bare ":9100" means
// localhost; "host:port" and full URLs work too.
func poll(httpc *http.Client, addr string) (obs.Snapshot, error) {
	url := addr
	switch {
	case strings.Contains(url, "://"):
		// full URL
	case strings.HasPrefix(url, ":"):
		url = "http://127.0.0.1" + url
	default:
		url = "http://" + url
	}
	resp, err := httpc.Get(url + "/metrics.json")
	if err != nil {
		return obs.Snapshot{}, err
	}
	defer resp.Body.Close()
	var s obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return obs.Snapshot{}, err
	}
	return s, nil
}

// fmtSec renders a duration in seconds with a sensible unit.
func fmtSec(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
