package lint

// Wire-schema extraction: a small abstract interpreter over the bodies of
// MarshalWire/UnmarshalWire methods (and package-level PutX/GetX helper
// pairs) that recovers the linear put/get sequence each one performs on a
// wire.Buffer / wire.Reader — including loops over repeated elements, nested
// message encodes, and `r.Remaining()`-guarded trailing optionals — as a
// canonical per-message schema.
//
// The extracted schemas feed three analyzers (wiresym, wireevolve, wirealias)
// and the `redbud-lint -wireschema` golden-lockfile gate. The interpreter is
// deliberately syntactic: it models exactly the shapes the codebase's
// hand-written codecs use (straight-line puts/gets, one optional branch per
// if, for/range loops, codec calls inside conditions and return expressions)
// and emits an explicit "unsupported" op for anything else, so novel control
// flow fails loudly in wiresym instead of silently extracting wrong.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// WireOp is one step of a message's canonical wire schema.
type WireOp struct {
	// Kind is a primitive ("u8", "bool", "u16", "u32", "u64", "i64", "f64",
	// "dur", "time", "bytes", "str", "raw"), a nested message encode
	// ("msg:<pkg>.<Type>"), a helper-pair call ("fn:<pkg>.<Suffix>"), a
	// composite ("loop", "opt" — sequence in Body), or "unsupported" for
	// control flow the extractor cannot model.
	Kind string
	// Body holds the nested sequence for "loop" and "opt" ops.
	Body []WireOp
	// Guarded marks an "opt" whose condition checks r.Remaining() — the
	// trailing-optional evolution idiom. Decoder-side only; encoders gate on
	// the version field instead.
	Guarded bool
	// Ref marks a "bytes" op decoded with BytesRef (aliases the pooled
	// frame) rather than Bytes (copies).
	Ref bool
	// Pos anchors diagnostics to the call or statement that produced the op.
	Pos token.Pos
}

// String renders the op in canonical lockfile form.
func (op WireOp) String() string {
	switch op.Kind {
	case "loop", "opt":
		return op.Kind + "[" + renderWireOps(op.Body) + "]"
	}
	return op.Kind
}

// renderWireOps renders a sequence space-separated.
func renderWireOps(ops []WireOp) string {
	parts := make([]string, len(ops))
	for i, op := range ops {
		parts[i] = op.String()
	}
	return strings.Join(parts, " ")
}

// wireOpWidth returns the encoded size in bytes of a primitive op, or -1 for
// variable-length and composite kinds. Used for width-mismatch diagnostics.
func wireOpWidth(kind string) int {
	switch kind {
	case "u8", "bool":
		return 1
	case "u16":
		return 2
	case "u32":
		return 4
	case "u64", "i64", "f64", "dur", "time":
		return 8
	}
	return -1
}

// MessageSchema is the extracted encoder/decoder pair for one wire message
// type (MarshalWire/UnmarshalWire methods) or one helper pair (package-level
// PutX/GetX functions).
type MessageSchema struct {
	PkgName string // package name ("proto") — analyzers match on this
	PkgPath string // import path — the lockfile renders this
	Name    string // type name, or helper suffix ("Extents" for Put/GetExtents)
	Helper  bool   // true for a PutX/GetX pair rather than methods

	HasEnc, HasDec bool
	Enc, Dec       []WireOp
	EncPos, DecPos token.Pos
}

// DisplayName names the schema in diagnostics and the lockfile.
func (s *MessageSchema) DisplayName() string {
	if s.Helper {
		return s.Name + "()"
	}
	return s.Name
}

// ExtractWireSchemas walks the non-test files of a type-checked package and
// extracts the wire schema of every message codec it declares, sorted by
// name. One-sided pairs are kept (HasEnc/HasDec tell) except helpers with no
// codec ops at all, which are unrelated functions that merely share the
// Put/Get naming convention (e.g. wire.PutBuffer pool helpers).
func ExtractWireSchemas(fset *token.FileSet, files []*ast.File, info *types.Info, pkg *types.Package) []*MessageSchema {
	byName := make(map[string]*MessageSchema)
	get := func(name string, helper bool) *MessageSchema {
		s := byName[name]
		if s == nil {
			s = &MessageSchema{PkgName: pkg.Name(), PkgPath: pkg.Path(), Name: name, Helper: helper}
			byName[name] = s
		}
		return s
	}

	for _, f := range files {
		if strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name, mode, helper, ok := classifyCodecDecl(info, fd)
			if !ok {
				continue
			}
			x := &wireExtractor{info: info, mode: mode}
			ops := x.stmts(fd.Body.List)
			s := get(name, helper)
			if mode == wireEncode {
				s.HasEnc, s.Enc, s.EncPos = true, ops, fd.Pos()
			} else {
				s.HasDec, s.Dec, s.DecPos = true, ops, fd.Pos()
			}
		}
	}

	out := make([]*MessageSchema, 0, len(byName))
	for _, s := range byName {
		if s.Helper && len(s.Enc) == 0 && len(s.Dec) == 0 {
			continue
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ExtractPassSchemas is ExtractWireSchemas over an analyzer pass.
func ExtractPassSchemas(pass *Pass) []*MessageSchema {
	return ExtractWireSchemas(pass.Fset, pass.Files, pass.Info, pass.Pkg)
}

const (
	wireEncode = iota
	wireDecode
)

// classifyCodecDecl recognises the four codec declaration shapes:
// MarshalWire/UnmarshalWire methods (schema keyed by receiver type name) and
// package-level PutX/GetX functions taking a *wire.Buffer / *wire.Reader
// (schema keyed by the X suffix, Helper=true).
func classifyCodecDecl(info *types.Info, fd *ast.FuncDecl) (name string, mode int, helper, ok bool) {
	fn, _ := info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return "", 0, false, false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return "", 0, false, false
	}
	if recv := sig.Recv(); recv != nil {
		n := namedOrigin(recv.Type())
		if n == nil || n.Obj() == nil {
			return "", 0, false, false
		}
		switch fd.Name.Name {
		case "MarshalWire":
			if sigHasParam(sig, "wire", "Buffer") {
				return n.Obj().Name(), wireEncode, false, true
			}
		case "UnmarshalWire":
			if sigHasParam(sig, "wire", "Reader") {
				return n.Obj().Name(), wireDecode, false, true
			}
		}
		return "", 0, false, false
	}
	if suffix, found := strings.CutPrefix(fd.Name.Name, "Put"); found && suffix != "" &&
		sigHasParam(sig, "wire", "Buffer") {
		return suffix, wireEncode, true, true
	}
	if suffix, found := strings.CutPrefix(fd.Name.Name, "Get"); found && suffix != "" &&
		sigHasParam(sig, "wire", "Reader") {
		return suffix, wireDecode, true, true
	}
	return "", 0, false, false
}

// sigHasParam reports whether any parameter of sig derefs to the named type.
func sigHasParam(sig *types.Signature, pkgName, typeName string) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isNamedType(sig.Params().At(i).Type(), pkgName, typeName) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// The statement walker.

var wirePutKinds = map[string]string{
	"PutU8": "u8", "PutBool": "bool", "PutU16": "u16", "PutU32": "u32",
	"PutU64": "u64", "PutI64": "i64", "PutF64": "f64",
	"PutDuration": "dur", "PutTime": "time",
	"PutBytes": "bytes", "PutString": "str", "PutRaw": "raw",
}

var wireGetKinds = map[string]string{
	"U8": "u8", "Bool": "bool", "U16": "u16", "U32": "u32",
	"U64": "u64", "I64": "i64", "F64": "f64",
	"Duration": "dur", "Time": "time",
	"Bytes": "bytes", "BytesRef": "bytes", "String": "str",
}

type wireExtractor struct {
	info *types.Info
	mode int
}

func (x *wireExtractor) stmts(list []ast.Stmt) []WireOp {
	var out []WireOp
	for _, st := range list {
		out = append(out, x.stmt(st)...)
	}
	return out
}

func (x *wireExtractor) stmt(st ast.Stmt) []WireOp {
	switch st := st.(type) {
	case *ast.BlockStmt:
		return x.stmts(st.List)

	case *ast.RangeStmt:
		// `for _, e := range m.Slice { ... }` — one loop op per repeated
		// element sequence. Key/value exprs carry no codec calls.
		body := x.stmts(st.Body.List)
		if len(body) == 0 {
			return nil
		}
		return []WireOp{{Kind: "loop", Body: body, Pos: st.Pos()}}

	case *ast.ForStmt:
		var out []WireOp
		if st.Init != nil {
			out = append(out, x.stmt(st.Init)...)
		}
		// Conditions like `i < n && r.Err() == nil` carry no codec ops, but
		// a condition that did read the stream would repeat per iteration in
		// a way the linear schema cannot express — surface it.
		if cond := x.exprOps(st.Cond); len(cond) > 0 {
			out = append(out, WireOp{Kind: "unsupported", Pos: st.Cond.Pos()})
		}
		if body := x.stmts(st.Body.List); len(body) > 0 {
			out = append(out, WireOp{Kind: "loop", Body: body, Pos: st.Pos()})
		}
		return out

	case *ast.IfStmt:
		var out []WireOp
		if st.Init != nil {
			out = append(out, x.stmt(st.Init)...)
		}
		// Codec calls in the condition itself run unconditionally — the
		// `if e.UnmarshalWire(r) != nil { return }` idiom.
		out = append(out, x.exprOps(st.Cond)...)
		thenOps := x.stmts(st.Body.List)
		var elseOps []WireOp
		if st.Else != nil {
			elseOps = x.stmt(st.Else)
		}
		switch {
		case len(thenOps) == 0 && len(elseOps) == 0:
			// Pure error/limit check (`if r.Err() != nil { return ... }`).
		case len(elseOps) == 0:
			out = append(out, WireOp{Kind: "opt", Body: thenOps,
				Guarded: condChecksRemaining(x.info, st.Cond), Pos: st.Pos()})
		case len(thenOps) == 0:
			out = append(out, WireOp{Kind: "opt", Body: elseOps,
				Guarded: condChecksRemaining(x.info, st.Cond), Pos: st.Pos()})
		default:
			// Both branches touch the stream: a data-dependent layout the
			// linear schema cannot express.
			out = append(out, WireOp{Kind: "unsupported", Pos: st.Pos()})
		}
		return out

	case *ast.ReturnStmt:
		var out []WireOp
		for _, e := range st.Results {
			out = append(out, x.exprOps(e)...)
		}
		return out

	case *ast.LabeledStmt:
		return x.stmt(st.Stmt)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.GoStmt, *ast.DeferStmt:
		if ops := x.inspectOps(st); len(ops) > 0 {
			return []WireOp{{Kind: "unsupported", Pos: st.Pos()}}
		}
		return nil

	default:
		// Assignments, expression statements, declarations, inc/dec:
		// pre-order traversal matches evaluation order for the straight-line
		// call shapes codecs use.
		return x.inspectOps(st)
	}
}

// exprOps collects codec ops from a single expression (nil-safe).
func (x *wireExtractor) exprOps(e ast.Expr) []WireOp {
	if e == nil {
		return nil
	}
	return x.inspectOps(e)
}

// inspectOps collects codec calls under n in source order, without
// descending into matched calls or function literals. A function literal
// that itself performs codec calls is flagged unsupported: its execution
// order is not the statement order.
func (x *wireExtractor) inspectOps(n ast.Node) []WireOp {
	var out []WireOp
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if x.containsCodecCall(n.Body) {
				out = append(out, WireOp{Kind: "unsupported", Pos: n.Pos()})
			}
			return false
		case *ast.CallExpr:
			if op, ok := x.callOp(n); ok {
				out = append(out, op)
				return false
			}
		}
		return true
	})
	return out
}

// containsCodecCall reports whether any codec call appears under n.
func (x *wireExtractor) containsCodecCall(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := x.callOp(call); ok {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// callOp classifies one call expression as a codec op, if it is one.
func (x *wireExtractor) callOp(call *ast.CallExpr) (WireOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if ok {
		name := sel.Sel.Name
		if x.mode == wireEncode {
			if kind, ok := wirePutKinds[name]; ok && isNamedType(recvTypeOf(x.info, call), "wire", "Buffer") {
				return WireOp{Kind: kind, Pos: call.Pos()}, true
			}
			if name == "MarshalWire" {
				if msg, ok := nestedMsgKind(x.info, call, "wire", "Buffer"); ok {
					return WireOp{Kind: msg, Pos: call.Pos()}, true
				}
			}
		} else {
			if kind, ok := wireGetKinds[name]; ok && isNamedType(recvTypeOf(x.info, call), "wire", "Reader") {
				return WireOp{Kind: kind, Ref: name == "BytesRef", Pos: call.Pos()}, true
			}
			if name == "UnmarshalWire" {
				if msg, ok := nestedMsgKind(x.info, call, "wire", "Reader"); ok {
					return WireOp{Kind: msg, Pos: call.Pos()}, true
				}
			}
		}
	}
	// Package-level helper-pair calls: meta.PutExtents(b, ...) / GetExtents(r).
	if pkgPath, fnName, ok := pkgFuncCall(x.info, call); ok && pkgPath != "" {
		prefix := "Put"
		if x.mode == wireDecode {
			prefix = "Get"
		}
		if suffix, found := strings.CutPrefix(fnName, prefix); found && suffix != "" {
			if obj := calleeOf(x.info, call); obj != nil {
				if fn, ok := obj.(*types.Func); ok {
					sig, _ := fn.Type().(*types.Signature)
					want := "Buffer"
					if x.mode == wireDecode {
						want = "Reader"
					}
					if sig != nil && sigHasParam(sig, "wire", want) && fn.Pkg() != nil {
						return WireOp{Kind: "fn:" + fn.Pkg().Name() + "." + suffix, Pos: call.Pos()}, true
					}
				}
			}
		}
	}
	return WireOp{}, false
}

// nestedMsgKind classifies m.Sub.MarshalWire(b) / m.Sub.UnmarshalWire(r) as a
// nested message op, verifying the method really takes the codec type.
func nestedMsgKind(info *types.Info, call *ast.CallExpr, wirePkg, wireType string) (string, bool) {
	obj := calleeOf(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil || !sigHasParam(sig, wirePkg, wireType) {
		return "", false
	}
	n := namedOrigin(sig.Recv().Type())
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return "", false
	}
	return "msg:" + n.Obj().Pkg().Name() + "." + n.Obj().Name(), true
}

// condChecksRemaining reports whether cond contains an r.Remaining() call on
// a wire.Reader — the guard that makes a trailing optional evolvable.
func condChecksRemaining(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
			sel.Sel.Name == "Remaining" && isNamedType(recvTypeOf(info, call), "wire", "Reader") {
			found = true
			return false
		}
		return true
	})
	return found
}

// ---------------------------------------------------------------------------
// Lockfile rendering.

// RenderWireSchemas serializes schemas (from any number of packages) into the
// deterministic lockfile text `-wireschema` diffs against. Lines are sorted
// by qualified name; each renders the encoder sequence (decoder for
// one-sided decode pairs — wiresym separately enforces the two agree).
func RenderWireSchemas(schemas []*MessageSchema, protoVersion string) string {
	var b strings.Builder
	b.WriteString("# Wire-schema lockfile. Regenerate with `redbud-lint -wireschema -update`.\n")
	b.WriteString("# A diff here means the frame layout changed: if the change is visible on\n")
	b.WriteString("# the wire, bump proto.ProtoVersion (and gate the new fields) before\n")
	b.WriteString("# regenerating. Do not edit by hand.\n")
	fmt.Fprintf(&b, "protocol-version = %s\n\n", protoVersion)

	lines := make([]string, 0, len(schemas))
	for _, s := range schemas {
		ops := s.Enc
		if !s.HasEnc {
			ops = s.Dec
		}
		rendered := renderWireOps(ops)
		if rendered == "" {
			// Keep empty sequences visible and the line free of trailing
			// whitespace an editor might strip.
			rendered = "(empty)"
		}
		lines = append(lines, fmt.Sprintf("%s.%s = %s", s.PkgPath, s.DisplayName(), rendered))
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteString("\n")
	}
	return b.String()
}
