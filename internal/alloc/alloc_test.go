package alloc

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func TestGroupAllocBasic(t *testing.T) {
	g := NewGroup(0, 0, 1<<20)
	sp, err := g.Alloc(4096, -1)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Dev != 0 || sp.Off != 0 || sp.Len != 4096 {
		t.Fatalf("span = %v", sp)
	}
	if g.FreeBytes() != 1<<20-4096 {
		t.Fatalf("free = %d", g.FreeBytes())
	}
	// Next-fit rotor: successive allocations are contiguous.
	sp2, err := g.Alloc(4096, -1)
	if err != nil {
		t.Fatal(err)
	}
	if sp2.Off != 4096 {
		t.Fatalf("rotor allocation at %d, want 4096", sp2.Off)
	}
}

func TestGroupAllocAtHint(t *testing.T) {
	g := NewGroup(2, 0, 1<<20)
	sp, err := g.Alloc(100, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Off != 5000 {
		t.Fatalf("hint ignored: off = %d", sp.Off)
	}
	if sp.Dev != 2 {
		t.Fatalf("dev = %d", sp.Dev)
	}
	// Free space before the hint is preserved.
	sp2, err := g.Alloc(5000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sp2.Off != 0 {
		t.Fatalf("pre-hint space lost: off = %d", sp2.Off)
	}
}

func TestGroupAllocWraps(t *testing.T) {
	g := NewGroup(0, 0, 10000)
	if _, err := g.Alloc(4000, 8000); err != nil {
		t.Fatalf("wrap allocation failed: %v", err)
	}
}

func TestGroupAllocErrors(t *testing.T) {
	g := NewGroup(0, 0, 1000)
	if _, err := g.Alloc(0, -1); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("zero size err = %v", err)
	}
	if _, err := g.Alloc(2000, -1); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("oversize err = %v", err)
	}
	// Fragment the space, then ask for more than any extent holds.
	a, _ := g.Alloc(400, 0)
	b, _ := g.Alloc(400, -1)
	if err := g.FreeSpan(a.Off, a.Len); err != nil {
		t.Fatal(err)
	}
	_ = b
	if _, err := g.Alloc(500, -1); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("fragmented alloc err = %v", err)
	}
}

func TestGroupFreeCoalesce(t *testing.T) {
	g := NewGroup(0, 0, 1<<20)
	spans := make([]Span, 4)
	for i := range spans {
		sp, err := g.Alloc(1000, -1)
		if err != nil {
			t.Fatal(err)
		}
		spans[i] = sp
	}
	// Free middle two in non-adjacent order; they must coalesce.
	if err := g.FreeSpan(spans[1].Off, spans[1].Len); err != nil {
		t.Fatal(err)
	}
	if err := g.FreeSpan(spans[2].Off, spans[2].Len); err != nil {
		t.Fatal(err)
	}
	// One free extent for [1000,3000) plus the tail extent.
	if n := g.FreeExtents(); n != 2 {
		t.Fatalf("free extents = %d, want 2", n)
	}
	// The coalesced hole can hold a 2000-byte allocation.
	sp, err := g.Alloc(2000, 1000)
	if err != nil || sp.Off != 1000 {
		t.Fatalf("coalesced alloc = %v, %v", sp, err)
	}
}

func TestGroupDoubleFree(t *testing.T) {
	g := NewGroup(0, 0, 1<<20)
	sp, _ := g.Alloc(1000, -1)
	if err := g.FreeSpan(sp.Off, sp.Len); err != nil {
		t.Fatal(err)
	}
	if err := g.FreeSpan(sp.Off, sp.Len); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double free err = %v", err)
	}
	if err := g.FreeSpan(sp.Off+100, 50); !errors.Is(err, ErrBadFree) {
		t.Fatalf("partial overlap free err = %v", err)
	}
	if err := g.FreeSpan(-5, 10); !errors.Is(err, ErrBadFree) {
		t.Fatalf("out-of-group free err = %v", err)
	}
}

func TestGroupFullCycle(t *testing.T) {
	g := NewGroup(0, 0, 100000)
	rng := rand.New(rand.NewSource(99))
	live := map[int64]Span{}
	for i := 0; i < 5000; i++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			sp, err := g.Alloc(int64(rng.Intn(200)+1), -1)
			if errors.Is(err, ErrNoSpace) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			// No overlap with any live span.
			for _, o := range live {
				if sp.Off < o.End() && o.Off < sp.End() {
					t.Fatalf("overlap: %v and %v", sp, o)
				}
			}
			live[sp.Off] = sp
		} else {
			for k, sp := range live {
				if err := g.FreeSpan(sp.Off, sp.Len); err != nil {
					t.Fatal(err)
				}
				delete(live, k)
				break
			}
		}
	}
	// Free everything; the group must return to a single extent.
	for _, sp := range live {
		if err := g.FreeSpan(sp.Off, sp.Len); err != nil {
			t.Fatal(err)
		}
	}
	if g.FreeBytes() != 100000 {
		t.Fatalf("leaked space: free = %d", g.FreeBytes())
	}
	if g.FreeExtents() != 1 {
		t.Fatalf("space not coalesced: %d extents", g.FreeExtents())
	}
}

func TestGroupConcurrent(t *testing.T) {
	g := NewGroup(0, 0, 10<<20)
	var mu sync.Mutex
	seen := map[int64]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp, err := g.Alloc(4096, -1)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if seen[sp.Off] {
					t.Errorf("duplicate allocation at %d", sp.Off)
				}
				seen[sp.Off] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if g.FreeBytes() != 10<<20-800*4096 {
		t.Fatalf("free = %d", g.FreeBytes())
	}
}

func TestUniformAGSet(t *testing.T) {
	s := NewUniformAGSet(RoundRobin, 0, 1000, 4)
	if len(s.Groups()) != 4 {
		t.Fatalf("groups = %d", len(s.Groups()))
	}
	start, end := s.Groups()[3].Bounds()
	if start != 750 || end != 1000 {
		t.Fatalf("last group = [%d,%d)", start, end)
	}
	if s.FreeBytes() != 1000 {
		t.Fatalf("free = %d", s.FreeBytes())
	}
}

func TestAGSetRoundRobinInterleaves(t *testing.T) {
	s := NewUniformAGSet(RoundRobin, 0, 1<<20, 4)
	devs := map[int64]bool{}
	for i := 0; i < 4; i++ {
		sp, err := s.Alloc("client", 100)
		if err != nil {
			t.Fatal(err)
		}
		devs[sp.Off/(1<<18)] = true // which quarter
	}
	if len(devs) != 4 {
		t.Fatalf("round robin used %d groups, want 4", len(devs))
	}
}

func TestAGSetOwnerAffinity(t *testing.T) {
	s := NewUniformAGSet(OwnerAffinity, 0, 1<<20, 4)
	var offs []int64
	for i := 0; i < 8; i++ {
		sp, err := s.Alloc("client-a", 100)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, sp.Off)
	}
	group0 := offs[0] / (1 << 18)
	for _, o := range offs {
		if o/(1<<18) != group0 {
			t.Fatalf("affinity allocations crossed groups: %v", offs)
		}
	}
}

func TestAGSetFallbackWhenGroupFull(t *testing.T) {
	s := NewUniformAGSet(OwnerAffinity, 0, 4000, 2)
	// Exhaust the owner's home group.
	if _, err := s.Alloc("bob", 2000); err != nil {
		t.Fatal(err)
	}
	// Next allocation must fall back to the other group.
	if _, err := s.Alloc("bob", 1500); err != nil {
		t.Fatalf("no fallback: %v", err)
	}
	if _, err := s.Alloc("bob", 1500); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("exhausted set err = %v", err)
	}
}

func TestAllocExtentsSplitsAcrossGroups(t *testing.T) {
	s := NewUniformAGSet(RoundRobin, 0, 8<<20, 4) // 2 MiB per group
	spans, err := s.AllocExtents("c", 5<<20, 0)   // bigger than any group
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, sp := range spans {
		total += sp.Len
	}
	if total != 5<<20 {
		t.Fatalf("allocated %d, want %d", total, 5<<20)
	}
	if len(spans) < 3 {
		t.Fatalf("expected multi-span allocation, got %d spans", len(spans))
	}
	for _, sp := range spans {
		if err := s.FreeSpan(sp); err != nil {
			t.Fatal(err)
		}
	}
	if s.FreeBytes() != 8<<20 {
		t.Fatalf("leak after free-all: %d", s.FreeBytes())
	}
}

func TestAllocExtentsMaxSpan(t *testing.T) {
	s := NewUniformAGSet(RoundRobin, 0, 8<<20, 1)
	spans, err := s.AllocExtents("c", 1<<20, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(spans))
	}
	for _, sp := range spans {
		if sp.Len > 256<<10 {
			t.Fatalf("span exceeds max: %v", sp)
		}
	}
}

func TestAllocExtentsRollbackOnFailure(t *testing.T) {
	s := NewUniformAGSet(RoundRobin, 0, 1<<20, 1)
	before := s.FreeBytes()
	if _, err := s.AllocExtents("c", 2<<20, 0); err == nil {
		t.Fatal("oversized AllocExtents succeeded")
	}
	if s.FreeBytes() != before {
		t.Fatalf("partial allocation leaked: %d != %d", s.FreeBytes(), before)
	}
	if _, err := s.AllocExtents("c", 0, 0); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("zero size err = %v", err)
	}
}

func TestFreeSpanUnknown(t *testing.T) {
	s := NewUniformAGSet(RoundRobin, 0, 1000, 1)
	if err := s.FreeSpan(Span{Dev: 9, Off: 0, Len: 10}); !errors.Is(err, ErrBadFree) {
		t.Fatalf("unknown span free err = %v", err)
	}
}

func TestSpanHelpers(t *testing.T) {
	sp := Span{Dev: 1, Off: 100, Len: 50}
	if sp.End() != 150 {
		t.Fatalf("end = %d", sp.End())
	}
	if sp.String() == "" {
		t.Fatal("empty String")
	}
}

func TestEmptyConstructorsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"NewGroup":        func() { NewGroup(0, 10, 10) },
		"NewAGSet":        func() { NewAGSet(RoundRobin) },
		"NewUniformAGSet": func() { NewUniformAGSet(RoundRobin, 0, 100, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
