// Command redbud-mds runs the Redbud metadata server over real TCP — the
// multi-process deployment. It manages the disk array's allocation groups,
// journals metadata on a simulated metadata disk (with checkpoint-based log
// compaction), recovers from the journal at startup, and garbage-collects
// orphan space from expired client leases. Clients reach file data through
// redbud-disk servers.
//
//	redbud-disk -listen :9001 -dev 0 &
//	redbud-mds  -listen :9000 -devices 1 &
//	redbud-client -mds :9000 -disk 0=:9001 put /hello.txt "hi there"
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"redbud/internal/alloc"
	"redbud/internal/blockdev"
	"redbud/internal/clock"
	"redbud/internal/mds"
	"redbud/internal/meta"
	"redbud/internal/netsim"
	"redbud/internal/obs"
	"redbud/internal/obs/agg"
	"redbud/internal/obs/debughttp"
)

func main() {
	var (
		listen     = flag.String("listen", ":9000", "TCP listen address")
		devices    = flag.Int("devices", 1, "number of data devices in the array")
		devSize    = flag.Int64("dev-size", 16<<30, "capacity of each data device (bytes)")
		agsPer     = flag.Int("ags", 2, "allocation groups per device")
		daemons    = flag.Int("daemons", 8, "server daemon threads")
		lease      = flag.Duration("lease", time.Minute, "client lease timeout (0 disables)")
		checkpoint = flag.Duration("checkpoint", 5*time.Minute, "journal checkpoint period (0 disables)")
		debugAddr  = flag.String("debug", "", "debug HTTP listen address (/metrics, /debug/trace, pprof; empty disables)")
		traceCap   = flag.Int("trace-cap", 0, "commit-span ring capacity with -debug (0 = default)")
		shard      = flag.String("shard", "", "shard coordinates i/N of a sharded namespace (e.g. 0/4; empty runs the single MDS)")
		peers      = flag.String("peers", "", "comma-separated debug addresses of every shard (own included, shard order); this daemon then aggregates the cluster view at /cluster/metrics and evaluates the SLO rules")
	)
	flag.Parse()

	shardIdx, shardCount := 0, 1
	if *shard != "" {
		if _, err := fmt.Sscanf(*shard, "%d/%d", &shardIdx, &shardCount); err != nil ||
			shardCount < 1 || shardIdx < 0 || shardIdx >= shardCount {
			log.Fatalf("-shard %q: want i/N with 0 <= i < N", *shard)
		}
	}

	clk := clock.Real(1)
	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	if *debugAddr != "" {
		tracer = obs.NewTracer(*traceCap)
	}
	// With -shard i/N each shard owns a disjoint slice of every data
	// device: shards are independent metadata authorities over one shared
	// array, and their allocators must never hand out overlapping extents.
	mkAGs := func() *alloc.AGSet {
		var groups []*alloc.Group
		for d := 0; d < *devices; d++ {
			lo, hi := int64(0), *devSize
			if shardCount > 1 {
				per := *devSize / int64(shardCount)
				lo = int64(shardIdx) * per
				hi = lo + per
				if shardIdx == shardCount-1 {
					hi = *devSize
				}
			}
			per := (hi - lo) / int64(*agsPer)
			for a := 0; a < *agsPer; a++ {
				end := lo + int64(a+1)*per
				if a == *agsPer-1 {
					end = hi
				}
				groups = append(groups, alloc.NewGroup(d, lo+int64(a)*per, end))
			}
		}
		return alloc.NewAGSet(alloc.RoundRobin, groups...)
	}

	// The metadata disk lives inside the MDS process: superblock plus two
	// alternating journal regions, recovered at startup.
	metaDev := blockdev.New(blockdev.Config{ID: 1000, Size: 4 << 30, Model: blockdev.DefaultHDD(), Clock: clk, Tracer: tracer})
	logset, journal, err := meta.OpenLogSet(metaDev, 1<<30)
	if err != nil {
		log.Fatal(err)
	}
	store, rstats, err := meta.Recover(meta.Config{
		AGs: mkAGs(), Journal: journal, Clock: clk, Tracer: tracer,
		Shard: shardIdx, ShardCount: shardCount,
	})
	if err != nil {
		log.Fatal(err)
	}
	if rstats.Records > 0 {
		log.Printf("recovered %d journal records (%d files, %d orphan bytes reclaimed, torn=%v)",
			rstats.Records, rstats.Files, rstats.OrphanBytes, rstats.Torn)
	}

	srv := mds.New(mds.Config{
		Store: store, Clock: clk, Daemons: *daemons, LeaseTimeout: *lease, Tracer: tracer,
		ShardIndex: uint32(shardIdx), ShardCount: uint32(shardCount),
	})
	defer srv.Close()
	srv.RegisterMetrics(reg)
	metaDev.RegisterMetrics(reg)

	if *debugAddr != "" {
		dcfg := debughttp.Config{Addr: *debugAddr, Registry: reg, Tracer: tracer}
		// With -peers this daemon carries the cluster aggregation plane: it
		// scrapes every listed shard's /metrics.json (its own included — HTTP
		// keeps one code path), merges, and evaluates the SLO rules on each
		// /cluster/metrics request. The alert states register into the local
		// registry so plain /metrics shows them too.
		if *peers != "" {
			var sources []agg.Source
			for i, addr := range strings.Split(*peers, ",") {
				sources = append(sources, agg.HTTPSource(fmt.Sprintf("mds%d", i), strings.TrimSpace(addr)))
			}
			slo := agg.NewEngine(agg.DefaultRules())
			slo.RegisterMetrics(reg)
			dcfg.Collector = agg.New(sources...)
			dcfg.SLO = slo
		}
		dbg, err := debughttp.Start(dcfg)
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		log.Printf("debug HTTP on http://%s/ (curl /metrics for Prometheus text)", dbg.Addr())
	}

	if *lease > 0 {
		go func() {
			for {
				clk.Sleep(*lease / 2)
				if reclaimed := srv.ExpireLeases(); reclaimed > 0 {
					log.Printf("lease GC reclaimed %d orphan bytes", reclaimed)
				}
			}
		}()
	}
	if *checkpoint > 0 {
		go func() {
			for {
				clk.Sleep(*checkpoint)
				if err := store.CheckpointTo(logset); err != nil {
					log.Printf("checkpoint failed: %v", err)
				} else {
					log.Printf("checkpointed journal (generation %d)", logset.Generation())
				}
			}
		}()
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("redbud-mds listening on %s (%d devices, %d daemons, shard %d/%d, gen %d)\n",
		l.Addr(), *devices, *daemons, shardIdx, shardCount, logset.Generation())
	for {
		conn, err := l.Accept()
		if err != nil {
			log.Fatal(err)
		}
		go srv.ServeConn(netsim.FrameConn(conn))
	}
}
