package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events plus "M" thread_name metadata), which Perfetto and chrome://tracing
// both load. Timestamps are microseconds relative to the earliest span.
type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat,omitempty"`
	Ph   string      `json:"ph"`
	TS   float64     `json:"ts"`
	Dur  float64     `json:"dur"`
	PID  int         `json:"pid"`
	TID  int         `json:"tid"`
	ID   uint64      `json:"id,omitempty"` // flow-event binding id
	BP   string      `json:"bp,omitempty"` // flow binding point ("e" on "f" events)
	Args *chromeArgs `json:"args,omitempty"`
}

type chromeArgs struct {
	Commit uint64 `json:"commit,omitempty"`
	Trace  uint64 `json:"trace,omitempty"`
	Span   uint64 `json:"span,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name,omitempty"` // thread_name / process_name payload
}

type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace exports spans as Chrome trace-event JSON: one trace
// "thread" per span track (client commit daemon, device head, MDS worker,
// …), spans as complete events carrying their CommitID.
//
// Output is deterministic for a deterministic span multiset: spans are
// sorted by (Start, End, Track, Name, CommitID) before track IDs are
// assigned, so the racy interleaving of concurrent recorders cannot leak
// into the bytes.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool { return spanLess(sorted[i], sorted[j]) })

	var base time.Time
	if len(sorted) > 0 {
		base = sorted[0].Start
	}
	tids := make(map[string]int)
	var tracks []string
	for _, s := range sorted {
		if _, ok := tids[s.Track]; !ok {
			tids[s.Track] = len(tids) + 1
			tracks = append(tracks, s.Track)
		}
	}

	events := make([]chromeEvent, 0, len(sorted)+len(tracks))
	for _, tr := range tracks {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tids[tr],
			Args: &chromeArgs{Name: tr},
		})
	}
	for _, s := range sorted {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  spanCategory(s.Name),
			Ph:   "X",
			TS:   float64(s.Start.Sub(base)) / float64(time.Microsecond),
			Dur:  float64(s.End.Sub(s.Start)) / float64(time.Microsecond),
			PID:  1,
			TID:  tids[s.Track],
		}
		if s.CommitID != 0 || s.TraceID != 0 {
			ev.Args = &chromeArgs{Commit: s.CommitID, Trace: s.TraceID, Span: s.SpanID, Parent: s.Parent}
		}
		events = append(events, ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{DisplayTimeUnit: "ms", TraceEvents: events})
}

// spanLess is the canonical export ordering: (Start, End, Track, Name,
// CommitID, SpanID). Sorting before any id assignment keeps the output a
// pure function of the span multiset, independent of recording interleave.
func spanLess(a, b Span) bool {
	if !a.Start.Equal(b.Start) {
		return a.Start.Before(b.Start)
	}
	if !a.End.Equal(b.End) {
		return a.End.Before(b.End)
	}
	if a.Track != b.Track {
		return a.Track < b.Track
	}
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	if a.CommitID != b.CommitID {
		return a.CommitID < b.CommitID
	}
	return a.SpanID < b.SpanID
}

// ProcessSpans is one process's span stream for the stitched multi-process
// export: Process names the trace process row (a client, one MDS shard).
type ProcessSpans struct {
	Process string
	Spans   []Span
}

// SplitProcesses partitions one shared span stream into per-process streams
// by the track prefix before the first '/' ("mds1/store" → process "mds1",
// "c0/commit" → "c0"); a track with no '/' is its own process. Processes are
// returned sorted by name, so the result is deterministic for a
// deterministic span multiset.
func SplitProcesses(spans []Span) []ProcessSpans {
	byProc := make(map[string][]Span)
	for _, s := range spans {
		proc := s.Track
		if i := strings.IndexByte(proc, '/'); i > 0 {
			proc = proc[:i]
		}
		byProc[proc] = append(byProc[proc], s)
	}
	names := make([]string, 0, len(byProc))
	for n := range byProc {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]ProcessSpans, 0, len(names))
	for _, n := range names {
		out = append(out, ProcessSpans{Process: n, Spans: byProc[n]})
	}
	return out
}

// WriteChromeTraceMulti merges per-process span streams into one stitched
// Chrome trace: each ProcessSpans becomes a trace process (stable pid from
// the sorted process order), tracks become its threads, and spans whose
// Parent resolves to a span in any process get flow arrows ("s"/"f" events
// bound by the child SpanID) — a cross-shard saga renders as one tree
// spanning client and shards. Byte-deterministic for deterministic inputs.
func WriteChromeTraceMulti(w io.Writer, procs []ProcessSpans) error {
	sorted := make([]ProcessSpans, len(procs))
	copy(sorted, procs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Process < sorted[j].Process })

	type loc struct {
		pid, tid int
		ts       float64
		set      bool
	}
	// Globally sorted spans drive the base timestamp, the per-process thread
	// id assignment, and the event emission order.
	type procSpan struct {
		Span
		pid int
	}
	var all []procSpan
	for i, p := range sorted {
		for _, s := range p.Spans {
			all = append(all, procSpan{Span: s, pid: i + 1})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if !spanLess(all[i].Span, all[j].Span) && !spanLess(all[j].Span, all[i].Span) {
			return all[i].pid < all[j].pid
		}
		return spanLess(all[i].Span, all[j].Span)
	})

	var base time.Time
	if len(all) > 0 {
		base = all[0].Start
	}
	us := func(t time.Time) float64 { return float64(t.Sub(base)) / float64(time.Microsecond) }

	// Thread ids: first-seen order of (pid, track) over the sorted stream.
	type thread struct{ pid, tid int }
	tids := make(map[string]thread)
	type threadMeta struct {
		pid, tid int
		track    string
	}
	var threads []threadMeta
	perProcNext := make(map[int]int)
	for _, s := range all {
		key := s.Track
		if _, ok := tids[key]; !ok {
			perProcNext[s.pid]++
			tids[key] = thread{pid: s.pid, tid: perProcNext[s.pid]}
			threads = append(threads, threadMeta{pid: s.pid, tid: perProcNext[s.pid], track: s.Track})
		}
	}

	// Parent resolution: the first-seen location of every SpanID.
	locs := make(map[uint64]loc)
	for _, s := range all {
		if s.SpanID == 0 {
			continue
		}
		if _, ok := locs[s.SpanID]; !ok {
			th := tids[s.Track]
			locs[s.SpanID] = loc{pid: th.pid, tid: th.tid, ts: us(s.Start), set: true}
		}
	}

	events := make([]chromeEvent, 0, len(all)+2*len(sorted)+len(threads))
	for i, p := range sorted {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", PID: i + 1,
			Args: &chromeArgs{Name: p.Process},
		})
	}
	for _, th := range threads {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: th.pid, TID: th.tid,
			Args: &chromeArgs{Name: th.track},
		})
	}
	for _, s := range all {
		th := tids[s.Track]
		ev := chromeEvent{
			Name: s.Name,
			Cat:  spanCategory(s.Name),
			Ph:   "X",
			TS:   us(s.Start),
			Dur:  float64(s.End.Sub(s.Start)) / float64(time.Microsecond),
			PID:  th.pid,
			TID:  th.tid,
		}
		if s.CommitID != 0 || s.TraceID != 0 {
			ev.Args = &chromeArgs{Commit: s.CommitID, Trace: s.TraceID, Span: s.SpanID, Parent: s.Parent}
		}
		events = append(events, ev)
		if s.Parent != 0 && s.SpanID != 0 {
			if pl, ok := locs[s.Parent]; ok && pl.set {
				events = append(events,
					chromeEvent{Name: spanCategory(s.Name), Cat: "flow", Ph: "s", TS: pl.ts,
						PID: pl.pid, TID: pl.tid, ID: s.SpanID},
					chromeEvent{Name: spanCategory(s.Name), Cat: "flow", Ph: "f", BP: "e", TS: ev.TS,
						PID: th.pid, TID: th.tid, ID: s.SpanID},
				)
			}
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{DisplayTimeUnit: "ms", TraceEvents: events})
}

// spanCategory derives the event category from the span name prefix
// ("dev.seek" → "dev"), giving Perfetto one color per subsystem.
func spanCategory(name string) string {
	if i := strings.IndexByte(name, '.'); i > 0 {
		return name[:i]
	}
	return name
}
