package meta

import (
	"testing"
	"time"

	"redbud/internal/alloc"
	"redbud/internal/blockdev"
	"redbud/internal/clock"
)

// TestRecoveryFromEveryCrashPoint exercises the write-ahead contract
// exhaustively: after any crash that truncates the journal at an arbitrary
// byte boundary, recovery must succeed (stopping cleanly at the torn
// record), reproduce a prefix of the operation history, and leave the
// allocator exactly consistent with the recovered metadata.
func TestRecoveryFromEveryCrashPoint(t *testing.T) {
	clk := clock.Real(1)
	dev := blockdev.New(blockdev.Config{Size: 64 << 20, Model: blockdev.ZeroLatency(), Clock: clk})
	defer dev.Close()
	mkAGs := func() *alloc.AGSet { return alloc.NewUniformAGSet(alloc.RoundRobin, 0, 64<<20, 4) }

	// Build a history touching every record type.
	j := NewJournal(dev, 0, 32<<20)
	s := NewStore(Config{AGs: mkAGs(), Journal: j, Clock: clk})
	a, err := s.Create(RootID, "a", TypeFile)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := s.AllocLayout("c1", a.ID, 0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit("c1", a.ID, lay.Extents, 8192, time.Unix(7, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	sp, err := s.Delegate("c2", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Create(RootID, "b", TypeFile)
	if err != nil {
		t.Fatal(err)
	}
	ext := Extent{FileOff: 0, Len: 4096, Dev: uint32(sp.Dev), VolOff: sp.Off}
	if err := s.Commit("c2", b.ID, []Extent{ext}, 4096, time.Unix(8, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	if err := s.ReturnDelegation("c2", sp); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(RootID, "tmp", TypeFile); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(RootID, "tmp"); err != nil {
		t.Fatal(err)
	}
	s.ClientGone("c1")
	tail := j.Tail()
	journalBytes, err := dev.Read(0, tail)
	if err != nil {
		t.Fatal(err)
	}

	// Sweep crash points: every 7 bytes plus both ends.
	for cut := int64(0); cut <= tail; cut += 7 {
		// Fresh device holding the truncated journal.
		d2 := blockdev.New(blockdev.Config{Size: 64 << 20, Model: blockdev.ZeroLatency(), Clock: clk})
		if err := d2.Write(0, journalBytes[:cut]); err != nil {
			t.Fatal(err)
		}
		ags := mkAGs()
		rec, st, err := Recover(Config{AGs: ags, Journal: NewJournal(d2, 0, 32<<20), Clock: clk})
		if err != nil {
			d2.Close()
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		// Invariant 1: committed extents occupy allocated (non-free)
		// space — reserve of any committed extent must now fail.
		for _, name := range []string{"a", "b"} {
			attr, err := rec.Lookup(RootID, name)
			if err != nil {
				continue // not yet created at this crash point
			}
			lay, err := rec.GetLayout(attr.ID, 0, 1<<30, 0)
			if err != nil {
				t.Fatalf("cut %d: layout: %v", cut, err)
			}
			for _, e := range lay.Extents {
				if err := ags.ReserveSpan(alloc.Span{Dev: int(e.Dev), Off: e.VolOff, Len: e.Len}); err == nil {
					t.Fatalf("cut %d: committed extent %v not accounted as allocated", cut, e)
				}
			}
		}
		// Invariant 2: accounting identity — free + accounted-live =
		// total. Everything not referenced by a live committed extent
		// must have been GC'd back.
		var live int64
		for _, name := range []string{"a", "b"} {
			attr, err := rec.Lookup(RootID, name)
			if err != nil {
				continue
			}
			lay, _ := rec.GetLayout(attr.ID, 0, 1<<30, 0)
			for _, e := range lay.Extents {
				live += e.Len
			}
		}
		if got := ags.FreeBytes() + live; got != 64<<20 {
			t.Fatalf("cut %d: space leak: free %d + live %d != %d (stats %+v)",
				cut, ags.FreeBytes(), live, 64<<20, st)
		}
		d2.Close()
	}
}

// TestTornJournalGroupCommitWrite tears the physical journal write mid-record
// via the blockdev fault hook — the crash-consistency case the byte-sweep
// above cannot produce, because a torn device write leaves a durable strict
// prefix rather than a clean truncation. The operation whose record was torn
// must fail (write-ahead rule: it is never acknowledged), replay must stop at
// the torn record with every earlier record intact, and recovery must fsck
// clean.
func TestTornJournalGroupCommitWrite(t *testing.T) {
	// Run the scenario under both group-commit generations: v2's deadline
	// batching must not weaken the torn-tail guarantees. MinDelay > 0
	// forces the batch carrying the torn record through the deadline path.
	t.Run("v1", func(t *testing.T) { tornJournalGroupCommitWrite(t, BatchPolicy{}) })
	t.Run("v2", func(t *testing.T) {
		tornJournalGroupCommitWrite(t, BatchPolicy{MinDelay: 50 * time.Microsecond, MaxDelay: 200 * time.Microsecond})
	})
}

func tornJournalGroupCommitWrite(t *testing.T, pol BatchPolicy) {
	clk := clock.Real(1)
	dev := newMetaDev(t)
	mkAGs := func() *alloc.AGSet { return alloc.NewUniformAGSet(alloc.RoundRobin, 0, 64<<20, 4) }
	j := NewJournal(dev, 0, 32<<20)
	j.SetBatchPolicy(pol)
	s := NewStore(Config{AGs: mkAGs(), Journal: j, Clock: clk})

	// Clean prefix: create and commit a file.
	a, err := s.Create(RootID, "a", TypeFile)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := s.AllocLayout("c1", a.ID, 0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit("c1", a.ID, lay.Extents, 8192, time.Unix(7, 0).UTC()); err != nil {
		t.Fatal(err)
	}

	// Tear the next journal batch write mid-record.
	var fired bool
	dev.SetWriteFault(func(off, n int64) (blockdev.WriteFault, int64) {
		if fired {
			return blockdev.WriteOK, 0
		}
		fired = true
		return blockdev.WriteTorn, n / 2
	})
	if _, err := s.Create(RootID, "b", TypeFile); err == nil {
		t.Fatal("create with torn journal write was acknowledged")
	}
	dev.SetWriteFault(nil)
	if !fired {
		t.Fatal("torn-write hook never fired")
	}

	// Replay stops at the torn record; the records before it all decode.
	var replayed int
	torn, err := NewJournal(dev, 0, 32<<20).Replay(func(*Record) error {
		replayed++
		return nil
	})
	if err != nil {
		t.Fatalf("replay over torn journal errored: %v", err)
	}
	if !torn {
		t.Fatal("replay did not flag the torn tail")
	}
	if replayed < 3 { // create a, alloc, commit
		t.Fatalf("replay saw %d records before the tear, want >= 3", replayed)
	}

	// Full recovery over the torn journal: the acknowledged history
	// survives, the torn create never happened, and fsck is clean.
	rec, _, err := Recover(Config{AGs: mkAGs(), Journal: NewJournal(dev, 0, 32<<20), Clock: clk})
	if err != nil {
		t.Fatalf("recovery over torn journal failed: %v", err)
	}
	attr, err := rec.Lookup(RootID, "a")
	if err != nil || attr.Size != 8192 {
		t.Fatalf("acknowledged file lost after torn-journal recovery: %+v, %v", attr, err)
	}
	if _, err := rec.Lookup(RootID, "b"); err == nil {
		t.Fatal("unacknowledged (torn) create resurfaced after recovery")
	}
	if rep := rec.Fsck(64 << 20); !rep.OK() {
		t.Fatalf("fsck after torn-journal recovery: %s", rep)
	}
}

// TestRecoveryIdempotent runs recovery twice from the same journal; the
// second run (after the first appended its GC records) must see identical
// namespace state and a fully consistent allocator.
func TestRecoveryIdempotent(t *testing.T) {
	clk := clock.Real(1)
	dev := newMetaDev(t)
	mkAGs := func() *alloc.AGSet { return alloc.NewUniformAGSet(alloc.RoundRobin, 0, 64<<20, 4) }
	j := NewJournal(dev, 0, 32<<20)
	s := NewStore(Config{AGs: mkAGs(), Journal: j, Clock: clk})
	a, _ := s.Create(RootID, "f", TypeFile)
	lay, _ := s.AllocLayout("c1", a.ID, 0, 4096)
	if err := s.Commit("c1", a.ID, lay.Extents, 4096, time.Now().UTC()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delegate("c1", 1<<20); err != nil {
		t.Fatal(err)
	}

	r1, st1, err := Recover(Config{AGs: mkAGs(), Journal: NewJournal(dev, 0, 32<<20), Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	r2, st2, err := Recover(Config{AGs: mkAGs(), Journal: NewJournal(dev, 0, 32<<20), Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Records <= st1.Records {
		t.Fatalf("second recovery replayed %d records, first %d (GC records missing)", st2.Records, st1.Records)
	}
	for _, rec := range []*Store{r1, r2} {
		attr, err := rec.Lookup(RootID, "f")
		if err != nil || attr.Size != 4096 {
			t.Fatalf("recovered state wrong: %+v, %v", attr, err)
		}
	}
	// Second recovery must not double-free the delegation GC'd by the
	// first: both end with identical free space.
	if f1, f2 := r1.cfg.AGs.FreeBytes(), r2.cfg.AGs.FreeBytes(); f1 != f2 {
		t.Fatalf("free bytes diverge across recoveries: %d vs %d", f1, f2)
	}
}
