package meta

import (
	"errors"
	"testing"
	"time"
)

// TestIntentPublishConflict pins the table's corruption guard: republishing
// a live extent under a different owner is rejected with a wrapped
// ErrIntentConflict and leaves the table untouched, while the same owner
// republishing (an idempotent replay shape) and disjoint extents both pass.
func TestIntentPublishConflict(t *testing.T) {
	tab := newIntentTable()
	e := Extent{FileOff: 0, Len: 4096, Dev: 1, VolOff: 8192, State: StateUncommitted}
	if err := tab.publish(7, "alice", []Extent{e}); err != nil {
		t.Fatalf("first publish: %v", err)
	}
	if err := tab.publish(7, "alice", []Extent{e}); err != nil {
		t.Fatalf("same-owner republish: %v", err)
	}
	err := tab.publish(7, "bob", []Extent{e})
	if !errors.Is(err, ErrIntentConflict) {
		t.Fatalf("cross-owner republish error = %v, want ErrIntentConflict", err)
	}
	if owner, ok := tab.ownerOf(7, e); !ok || owner != "alice" {
		t.Fatalf("after rejected publish, ownerOf = %q, %v; want alice", owner, ok)
	}
	if _, ok := tab.byOwner["bob"]; ok {
		t.Fatal("rejected publish left bob in the owner index")
	}
	other := Extent{FileOff: 4096, Len: 4096, Dev: 1, VolOff: 16384, State: StateUncommitted}
	if err := tab.publish(7, "bob", []Extent{other}); err != nil {
		t.Fatalf("disjoint publish: %v", err)
	}
}

// TestIntentLifecycleThroughStore drives the intent table through its three
// exits — graduation on commit, rollback on client death, drop on file
// removal — via the public Store API.
func TestIntentLifecycleThroughStore(t *testing.T) {
	s := newStore(t)
	a := mustCreate(t, s, RootID, "f", TypeFile)

	lay, err := s.AllocLayout("w", a.ID, 0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	// Published intents are visible to WantUncommitted lookups, hidden from
	// committed-only ones, and extend the visible size.
	vis, err := s.GetLayout(a.ID, 0, 8192, LayoutWantUncommitted)
	if err != nil {
		t.Fatal(err)
	}
	if len(vis.Extents) != len(lay.Extents) {
		t.Fatalf("visible extents = %d, want %d", len(vis.Extents), len(lay.Extents))
	}
	if vis.VisibleEnd != 8192 {
		t.Fatalf("visible end = %d, want 8192", vis.VisibleEnd)
	}
	plain, err := s.GetLayout(a.ID, 0, 8192, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Extents) != 0 || plain.VisibleEnd != 0 {
		t.Fatalf("committed-only layout leaked intents: %+v", plain)
	}
	if owner, ok := s.intents.ownerOf(a.ID, lay.Extents[0]); !ok || owner != "w" {
		t.Fatalf("ownerOf = %q, %v", owner, ok)
	}

	// Commit graduates the intents: they leave the table but the extents stay.
	if err := s.Commit("w", a.ID, lay.Extents, 8192, time.Unix(1, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.intents.ownerOf(a.ID, lay.Extents[0]); ok {
		t.Fatal("committed extent still tracked as an intent")
	}
	if got := s.intents.visibleEnd(a.ID); got != 0 {
		t.Fatalf("visible end after graduation = %d", got)
	}
	after, err := s.GetLayout(a.ID, 0, 8192, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Extents) == 0 {
		t.Fatal("committed extents vanished")
	}
}

func TestIntentRollbackOnClientGone(t *testing.T) {
	s := newStore(t)
	a := mustCreate(t, s, RootID, "f", TypeFile)
	b := mustCreate(t, s, RootID, "g", TypeFile)
	if _, err := s.AllocLayout("dead", a.ID, 0, 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AllocLayout("dead", b.ID, 0, 4096); err != nil {
		t.Fatal(err)
	}
	live, err := s.AllocLayout("live", a.ID, 4096, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ClientGone("dead"); got != 8192 {
		t.Fatalf("ClientGone reclaimed %d, want 8192", got)
	}
	for _, id := range []FileID{a.ID, b.ID} {
		lay, err := s.GetLayout(id, 0, 8192, LayoutWantUncommitted)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range lay.Extents {
			if owner, _ := s.intents.ownerOf(id, e); owner == "dead" {
				t.Fatalf("file %d still has dead client's intent %+v", id, e)
			}
		}
	}
	// The surviving client's intents are untouched and still committable.
	if owner, ok := s.intents.ownerOf(a.ID, live.Extents[0]); !ok || owner != "live" {
		t.Fatalf("live intent lost: %q, %v", owner, ok)
	}
	if err := s.Commit("live", a.ID, live.Extents, 8192, time.Unix(1, 0).UTC()); err != nil {
		t.Fatalf("surviving client's commit failed: %v", err)
	}
}

func TestIntentDropOnRemove(t *testing.T) {
	s := newStore(t)
	a := mustCreate(t, s, RootID, "f", TypeFile)
	if _, err := s.AllocLayout("w", a.ID, 0, 4096); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(RootID, "f"); err != nil {
		t.Fatal(err)
	}
	if got := s.intents.visibleEnd(a.ID); got != 0 {
		t.Fatalf("removed file still has intents (visible end %d)", got)
	}
	if owners := s.intents.owners(); len(owners) != 0 {
		t.Fatalf("owner index not cleaned: %v", owners)
	}
}
