package blockdev

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"redbud/internal/clock"
)

func newTestDev(t *testing.T, cfg Config) *Device {
	t.Helper()
	if cfg.Clock == nil {
		cfg.Clock = clock.Real(1)
	}
	if cfg.Model == (DiskModel{}) {
		cfg.Model = ZeroLatency()
	}
	d := New(cfg)
	t.Cleanup(d.Close)
	return d
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := newTestDev(t, Config{Size: 1 << 20})
	data := bytes.Repeat([]byte{0xab}, 1000)
	if err := d.Write(5000, data); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(5000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read mismatch")
	}
}

func TestWriteAsyncDurability(t *testing.T) {
	d := newTestDev(t, Config{Size: 1 << 20})
	done := d.WriteAsync(0, []byte("x"))
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !d.IsDurable(0, 1) {
		t.Fatal("completed write not durable")
	}
	if d.IsDurable(0, 2) {
		t.Fatal("unwritten byte reported durable")
	}
}

func TestOutOfRange(t *testing.T) {
	d := newTestDev(t, Config{Size: 100})
	if err := d.Write(90, make([]byte, 20)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("write OOR err = %v", err)
	}
	if _, err := d.Read(-1, 10); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read OOR err = %v", err)
	}
}

func TestZeroLengthOps(t *testing.T) {
	d := newTestDev(t, Config{Size: 100})
	if err := d.Write(0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(0, 0); err != nil {
		t.Fatal(err)
	}
	if s := d.Stats(); s.Submitted != 0 {
		t.Fatalf("zero-length ops were submitted: %+v", s)
	}
}

func TestClosedDeviceRejects(t *testing.T) {
	d := New(Config{Size: 100, Model: ZeroLatency(), Clock: clock.Real(1)})
	d.Close()
	if err := d.Write(0, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close err = %v", err)
	}
	d.Close() // idempotent
}

func TestSequentialWritesMerge(t *testing.T) {
	// Slow device so requests pile up in the queue and merge.
	model := DiskModel{SeekBase: 50 * time.Millisecond, RotLatency: time.Millisecond, BandwidthMBps: 100, PerRequest: 100 * time.Microsecond}
	d := newTestDev(t, Config{Size: 1 << 26, Model: model, Clock: clock.Real(0.05)})
	const n = 32
	chunk := make([]byte, 4096)
	// A blocker at a far offset seeks for ~51 ms virtual (~2.5 ms wall);
	// the contiguous stream arrives while it is in service and back-merges.
	blocker := d.WriteAsync(1<<25, chunk)
	var dones []<-chan error
	for i := 0; i < n; i++ {
		dones = append(dones, d.WriteAsync(int64(i)*4096, chunk))
	}
	<-blocker
	for _, ch := range dones {
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if s.Submitted != n+1 {
		t.Fatalf("submitted = %d, want %d", s.Submitted, n+1)
	}
	if s.Merged == 0 {
		t.Fatalf("no merges for contiguous stream: %+v", s)
	}
	if s.Dispatched+s.Merged != s.Submitted {
		t.Fatalf("dispatched(%d)+merged(%d) != submitted(%d)", s.Dispatched, s.Merged, s.Submitted)
	}
	if !d.IsDurable(0, n*4096) {
		t.Fatal("merged writes not durable")
	}
}

func TestMergedWritesApplyAllPayloads(t *testing.T) {
	model := DiskModel{SeekBase: 50 * time.Millisecond, BandwidthMBps: 100}
	d := newTestDev(t, Config{Size: 1 << 26, Model: model, Clock: clock.Real(0.05)})
	blocker := d.WriteAsync(1<<25, make([]byte, 64))
	var dones []<-chan error
	for i := 0; i < 8; i++ {
		payload := bytes.Repeat([]byte{byte(i + 1)}, 4096)
		dones = append(dones, d.WriteAsync(int64(i)*4096, payload))
	}
	<-blocker
	for _, ch := range dones {
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		got, err := d.Read(int64(i)*4096, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i+1) || got[4095] != byte(i+1) {
			t.Fatalf("merged write %d payload corrupted: %v %v", i, got[0], got[4095])
		}
	}
}

func TestDisableMerge(t *testing.T) {
	model := DiskModel{SeekBase: 2 * time.Millisecond, BandwidthMBps: 100}
	d := newTestDev(t, Config{Size: 1 << 24, Model: model, Clock: clock.Real(0.05), DisableMerge: true})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		off := int64(i) * 4096
		go func() {
			defer wg.Done()
			d.Write(off, make([]byte, 4096))
		}()
	}
	wg.Wait()
	if s := d.Stats(); s.Merged != 0 || s.Dispatched != 16 {
		t.Fatalf("DisableMerge: %+v", s)
	}
}

func TestMergeCap(t *testing.T) {
	model := DiskModel{SeekBase: 50 * time.Millisecond, BandwidthMBps: 1000}
	d := newTestDev(t, Config{Size: 1 << 26, Model: model, Clock: clock.Real(0.05), MaxMergedBytes: 8192})
	blocker := d.WriteAsync(1<<25, make([]byte, 64))
	var dones []<-chan error
	for i := 0; i < 8; i++ {
		dones = append(dones, d.WriteAsync(int64(i)*4096, make([]byte, 4096)))
	}
	<-blocker
	for _, ch := range dones {
		<-ch
	}
	// With an 8 KiB cap, each dispatch absorbs at most one extra request.
	if s := d.Stats(); s.Dispatched < 4 {
		t.Fatalf("cap ignored: %+v", s)
	}
}

func TestReadsDontMergeWithWrites(t *testing.T) {
	model := DiskModel{SeekBase: 50 * time.Millisecond, BandwidthMBps: 1000}
	d := newTestDev(t, Config{Size: 1 << 26, Model: model, Clock: clock.Real(0.05)})
	blocker := d.WriteAsync(1<<25, make([]byte, 64)) // keeps head busy
	w := d.WriteAsync(0, make([]byte, 4096))
	r, _ := d.ReadAsync(4096, 4096)
	<-blocker
	<-w
	<-r
	// The read at 4096 is contiguous with the write at 0 but must not merge.
	if s := d.Stats(); s.Merged > 0 {
		t.Fatalf("read merged with write: %+v", s)
	}
}

func TestSeekAccounting(t *testing.T) {
	mc := clock.NewManual()
	model := DiskModel{SeekBase: time.Millisecond, RotLatency: time.Millisecond, BandwidthMBps: 1000, PerRequest: 0}
	d := New(Config{Size: 1 << 24, Model: model, Clock: mc})
	defer d.Close()
	defer mc.Advance(time.Hour) // release any stragglers

	done := d.WriteAsync(1<<20, make([]byte, 4096))
	for mc.Waiters() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	mc.Advance(time.Hour)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Seeks != 1 || s.SeekBytes != 1<<20 {
		t.Fatalf("seek accounting: %+v", s)
	}
}

func TestSequentialNoSeek(t *testing.T) {
	d := newTestDev(t, Config{Size: 1 << 20, Model: ZeroLatency()})
	d.Write(0, make([]byte, 4096))
	d.Write(4096, make([]byte, 4096)) // head is at 4096: sequential
	s := d.Stats()
	if s.Seeks != 0 {
		t.Fatalf("sequential writes counted %d seeks", s.Seeks)
	}
}

func TestTraceEvents(t *testing.T) {
	var mu sync.Mutex
	var evs []Event
	d := newTestDev(t, Config{Size: 1 << 20, Model: ZeroLatency(), Trace: func(e Event) {
		mu.Lock()
		evs = append(evs, e)
		mu.Unlock()
	}})
	d.Write(8192, make([]byte, 100))
	d.Read(8192, 100)
	mu.Lock()
	defer mu.Unlock()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Op != OpWrite || evs[0].Offset != 8192 || evs[0].Length != 100 {
		t.Fatalf("write event = %+v", evs[0])
	}
	if evs[0].SeekLen != 8192 {
		t.Fatalf("write event seek = %d, want 8192", evs[0].SeekLen)
	}
	if evs[1].Op != OpRead {
		t.Fatalf("read event = %+v", evs[1])
	}
}

func TestCrashDropsQueueAndPreservesDurable(t *testing.T) {
	model := DiskModel{SeekBase: 10 * time.Millisecond, BandwidthMBps: 100}
	d := newTestDev(t, Config{Size: 1 << 24, Model: model, Clock: clock.Real(0.02)})
	if err := d.Write(0, []byte("survivor")); err != nil {
		t.Fatal(err)
	}
	// Queue several writes, then crash before they can finish.
	var errs []<-chan error
	for i := 1; i <= 5; i++ {
		errs = append(errs, d.WriteAsync(int64(i)<<20, make([]byte, 4096)))
	}
	d.Crash()
	crashed := 0
	for _, ch := range errs {
		if err := <-ch; errors.Is(err, ErrCrashed) {
			crashed++
		}
	}
	if crashed == 0 {
		t.Fatal("no queued write failed with ErrCrashed")
	}
	if err := d.Write(0, []byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write on crashed device err = %v", err)
	}
	d.Recover()
	got, err := d.Read(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "survivor" {
		t.Fatalf("durable data lost: %q", got)
	}
	if !d.IsDurable(0, 8) {
		t.Fatal("durable range lost after recover")
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	d := newTestDev(t, Config{Size: 1 << 24, Model: FastHDD(), Clock: clock.Real(1)})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		base := int64(g) << 20
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				off := base + int64(i)*4096
				payload := bytes.Repeat([]byte{byte(i)}, 512)
				if err := d.Write(off, payload); err != nil {
					t.Error(err)
					return
				}
				got, err := d.Read(off, 512)
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got, payload) {
					t.Errorf("readback mismatch at %d", off)
					return
				}
			}
		}()
	}
	wg.Wait()
	s := d.Stats()
	if s.Dispatched+s.Merged != s.Submitted {
		t.Fatalf("conservation violated: %+v", s)
	}
}

func TestMergeRatioStat(t *testing.T) {
	s := Stats{Submitted: 100, Merged: 40}
	if got := s.MergeRatio(); got != 0.4 {
		t.Fatalf("merge ratio = %v", got)
	}
	if (Stats{}).MergeRatio() != 0 {
		t.Fatal("empty merge ratio not zero")
	}
}

func TestResetStats(t *testing.T) {
	d := newTestDev(t, Config{Size: 1 << 20})
	d.Write(0, make([]byte, 100))
	d.ResetStats()
	if s := d.Stats(); s.Submitted != 0 || s.BytesWrite != 0 {
		t.Fatalf("after reset: %+v", s)
	}
	d.Write(4096, make([]byte, 100))
	if s := d.Stats(); s.Submitted != 1 {
		t.Fatalf("post-reset accounting: %+v", s)
	}
}

func TestModelServiceTimes(t *testing.T) {
	m := DefaultHDD()
	if m.SeekTime(0, 0) != 0 {
		t.Fatal("zero-distance seek not free")
	}
	near := m.SeekTime(0, 1<<20)
	far := m.SeekTime(0, 100<<30)
	if near >= far {
		t.Fatalf("seek time not increasing: near=%v far=%v", near, far)
	}
	if far > m.SeekMax+m.RotLatency {
		t.Fatalf("seek beyond cap: %v", far)
	}
	if m.TransferTime(0) != 0 || m.TransferTime(-5) != 0 {
		t.Fatal("degenerate transfer not free")
	}
	t1 := m.TransferTime(1 << 20)
	t2 := m.TransferTime(2 << 20)
	if t2 <= t1 {
		t.Fatal("transfer time not increasing")
	}
	st := m.ServiceTime(0, 1<<30, 4096)
	if st < m.PerRequest {
		t.Fatalf("service time %v below per-request floor", st)
	}
}

func TestZeroLatencyModelIsFree(t *testing.T) {
	m := ZeroLatency()
	if m.ServiceTime(0, 1<<40, 1<<20) != 0 {
		t.Fatal("zero-latency model charged time")
	}
}

func TestReadsPrioritizedOverWriteFlood(t *testing.T) {
	// Deadline-style scheduling: a synchronous read must jump ahead of a
	// backlog of asynchronous writes.
	model := DiskModel{SeekBase: 20 * time.Millisecond, BandwidthMBps: 200}
	d := newTestDev(t, Config{Size: 1 << 26, Model: model, Clock: clock.Real(0.05)})
	if err := d.Write(0, make([]byte, 64)); err != nil { // data to read later
		t.Fatal(err)
	}
	// Flood: one in-flight write plus a deep queue of scattered writes.
	var floods []<-chan error
	for i := 0; i < 20; i++ {
		floods = append(floods, d.WriteAsync(int64(i+1)<<20, make([]byte, 4096)))
	}
	start := time.Now()
	if _, err := d.Read(0, 64); err != nil {
		t.Fatal(err)
	}
	readWall := time.Since(start)
	for _, ch := range floods {
		<-ch
	}
	// Without priority the read waits ~20 x 21ms x 0.05 = 21ms wall; with
	// priority it waits for at most the in-flight dispatch plus its own.
	if readWall > 10*time.Millisecond {
		t.Fatalf("read waited %v behind the write flood", readWall)
	}
}
