package meta

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"redbud/internal/blockdev"
	"redbud/internal/clock"
)

// benchJournalDev models a metadata device with a fixed per-request overhead
// and no elevator merging — the regime where explicit group commit pays: a
// batch of appends coalesced into one device write costs one PerRequest
// instead of one per record. Merging is disabled so the measurement shows the
// journal's own batching rather than the device rescuing it.
func benchJournalDev(b *testing.B) *blockdev.Device {
	b.Helper()
	d := blockdev.New(blockdev.Config{
		Size: 1 << 30,
		Model: blockdev.DiskModel{
			PerRequest:    30 * time.Microsecond,
			BandwidthMBps: 4000,
		},
		DisableMerge: true,
		Clock:        clock.Real(1),
	})
	b.Cleanup(d.Close)
	return d
}

// BenchmarkJournalGroupCommit measures journal append throughput with
// concurrent writers. With per-record device writes, throughput is pinned at
// one PerRequest per record no matter how many writers wait; with group
// commit, concurrent appends share one device write and ops/sec scales.
// BenchmarkJournalAppendSteady is the CI-gated steady-state append benchmark:
// concurrent writers against the PerRequest-dominated device, with the v2
// adaptive deadline enabled. Beyond the latency numbers it asserts the
// batching actually amortized — at least writers/4 appends per device batch
// on average — so a regression that silently degrades group commit to
// record-at-a-time writes fails the benchmark rather than just slowing it.
// The writers=4 case is where the deadline earns its keep: the batch the
// leader would fire with one or two records is held open just long enough to
// collect the rest of the burst.
func BenchmarkJournalAppendSteady(b *testing.B) {
	for _, writers := range []int{4, 16} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			benchJournalAppendSteady(b, writers)
		})
	}
}

func benchJournalAppendSteady(b *testing.B, writers int) {
	dev := benchJournalDev(b)
	j := NewJournal(dev, 0, 1<<29)
	j.SetBatchPolicy(BatchPolicy{MaxDelay: 200 * time.Microsecond})
	rec := &Record{
		Type: RecCommit, File: 7, Owner: "bench", Size: 4096,
		Extents: []Extent{{FileOff: 0, Len: 4096, Dev: 1, VolOff: 0, State: StateCommitted}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		n := b.N / writers
		if w < b.N%writers {
			n++
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := <-j.Append(rec); err != nil {
					b.Error(err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	b.StopTimer()
	appends, batches := j.GroupCommitStats()
	if b.N >= writers*8 && batches*int64(writers) > appends*4 {
		b.Fatalf("group commit degraded: %d batches for %d appends (want >= %d appends/batch)",
			batches, appends, writers/4)
	}
	b.ReportMetric(float64(appends)/float64(batches), "appends/batch")
}

func BenchmarkJournalGroupCommit(b *testing.B) {
	for _, writers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			dev := benchJournalDev(b)
			j := NewJournal(dev, 0, 1<<29)
			rec := &Record{
				Type: RecCommit, File: 7, Owner: "bench", Size: 4096,
				Extents: []Extent{{FileOff: 0, Len: 4096, Dev: 1, VolOff: 0, State: StateCommitted}},
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				n := b.N / writers
				if w < b.N%writers {
					n++
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						if err := <-j.Append(rec); err != nil {
							b.Error(err)
							return
						}
					}
				}(n)
			}
			wg.Wait()
		})
	}
}
