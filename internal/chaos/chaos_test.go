package chaos

import (
	"flag"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"redbud/internal/alloc"
	"redbud/internal/blockdev"
	"redbud/internal/client"
	"redbud/internal/clock"
	"redbud/internal/mds"
	"redbud/internal/meta"
	"redbud/internal/netsim"
	"redbud/internal/rpc"
	"redbud/internal/workload"
)

// seeds widens the invariant sweep; CI runs `-seeds=100` nightly.
var seeds = flag.Int("seeds", 5, "number of fault-plan seeds the invariant sweep runs")

// invariantConfig is the full fault menu: drops, duplicates, delays,
// reorders, a timed partition, and probabilistic data-device faults.
func invariantConfig(seed int64) Config {
	return Config{
		Seed:    seed,
		Clients: 3,
		Threads: 2,
		Ops:     25,
		Prefill: 2,
		Mode:    client.DelayedCommit,
		Fsync:   true,
		Retry: client.RetryPolicy{
			MaxAttempts: 8,
			BaseDelay:   time.Millisecond,
			MaxDelay:    8 * time.Millisecond,
			CallTimeout: 50 * time.Millisecond,
		},
		Net: netsim.FaultPlan{
			Default: netsim.LinkFaults{
				DropProb:    0.02,
				DupProb:     0.02,
				DelayProb:   0.10,
				DelaySpike:  2 * time.Millisecond,
				ReorderProb: 0.05,
			},
			Partitions: []netsim.Partition{
				{From: "*", To: "mds", Start: 20 * time.Millisecond, End: 35 * time.Millisecond},
			},
		},
		Disk: DiskFaults{ErrProb: 0.02, TornProb: 0.02},
	}
}

// assertClean checks the two paper invariants and both fsck passes.
func assertClean(t *testing.T, rep *Report) {
	t.Helper()
	if len(rep.Violations) != 0 {
		t.Errorf("ordered-write violations:\n  %s", strings.Join(rep.Violations, "\n  "))
	}
	if len(rep.Inconsistent) != 0 {
		t.Errorf("committed-but-not-durable extents at end of run: %+v", rep.Inconsistent)
	}
	if !rep.Fsck.OK() {
		t.Errorf("live fsck: %s", rep.Fsck)
	}
	if !rep.RecoveredFsck.OK() {
		t.Errorf("post-recovery fsck: %s", rep.RecoveredFsck)
	}
}

// TestChaosInvariants sweeps seeded fault plans and asserts that no plan can
// produce an MDS-visible commit of non-durable data, an inconsistent store,
// or an unrecoverable journal. Individual operations may fail — that is the
// fault plan working — but the metadata must never lie.
func TestChaosInvariants(t *testing.T) {
	for s := 0; s < *seeds; s++ {
		seed := int64(s)*7919 + 1
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rep, err := Run(invariantConfig(seed))
			if err != nil {
				t.Fatal(err)
			}
			assertClean(t, rep)
			var ops int64
			for _, r := range rep.Results {
				ops += r.Ops
			}
			if ops > 0 && rep.OpErrors >= ops {
				t.Errorf("every one of %d ops failed; the fault plan starved the workload", ops)
			}
			t.Logf("ops=%d opErrors=%d netFaults=%+v diskFaults=%d dedupHits=%d",
				ops, rep.OpErrors, rep.Faults, rep.DiskFaults, rep.DedupHits)
		})
	}
}

// TestChaosMDSRestart crash-restarts the MDS twice mid-workload with no
// other faults: clients must redial, observe the incarnation bump, rebuild
// their sessions, and keep making progress; the recovered store must fsck
// clean both times and at the end.
func TestChaosMDSRestart(t *testing.T) {
	cfg := invariantConfig(4242)
	cfg.Net = netsim.FaultPlan{}
	cfg.Disk = DiskFaults{}
	cfg.Ops = 40
	cfg.Think = time.Millisecond // stretch the workload across the restarts
	cfg.Restarts = 2
	cfg.RestartEvery = 15 * time.Millisecond
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restarts != 2 {
		t.Fatalf("completed %d restarts, want 2", rep.Restarts)
	}
	assertClean(t, rep)
	var ops int64
	for _, r := range rep.Results {
		ops += r.Ops
	}
	if want := int64(cfg.Clients * cfg.Threads * cfg.Ops); ops != want {
		t.Fatalf("measured %d ops, want %d: a thread died instead of retrying", ops, want)
	}
	if rep.OpErrors >= ops {
		t.Fatalf("all %d ops failed across the restarts; sessions never re-established", ops)
	}
	t.Logf("ops=%d opErrors=%d dedupHits=%d recovery=%+v", ops, rep.OpErrors, rep.DedupHits, rep.Recovery)
}

// TestChaosAutoscaleMDSRestart is the MDS-restart scenario with the commit
// autoscaler v2 engaged: the control loop samples queue wait and RPC
// in-flight while connections die and sessions rebuild, and must never
// deadlock the commit path — every thread finishes its ops and the store
// fscks clean, exactly as under the static formula.
func TestChaosAutoscaleMDSRestart(t *testing.T) {
	cfg := invariantConfig(31415)
	cfg.Net = netsim.FaultPlan{}
	cfg.Disk = DiskFaults{}
	cfg.Ops = 40
	cfg.Think = time.Millisecond // stretch the workload across the restarts
	cfg.Restarts = 2
	cfg.RestartEvery = 15 * time.Millisecond
	cfg.Autoscale = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restarts != 2 {
		t.Fatalf("completed %d restarts, want 2", rep.Restarts)
	}
	assertClean(t, rep)
	var ops int64
	for _, r := range rep.Results {
		ops += r.Ops
	}
	if want := int64(cfg.Clients * cfg.Threads * cfg.Ops); ops != want {
		t.Fatalf("measured %d ops, want %d: a commit thread deadlocked instead of retrying", ops, want)
	}
	t.Logf("ops=%d opErrors=%d recovery=%+v", ops, rep.OpErrors, rep.Recovery)
}

// TestChaosDeterminism runs the same seed and fault plan twice and requires
// byte-identical per-thread event logs. The plan is delay-only and retries
// are disabled: delays never change an operation's outcome, so the op
// streams — which do depend on outcomes — must replay exactly.
func TestChaosDeterminism(t *testing.T) {
	eventLog := func() (string, int64) {
		var mu sync.Mutex
		logs := map[int][]string{}
		cfg := Config{
			Seed:    99,
			Clients: 2,
			Threads: 2,
			Ops:     20,
			Prefill: 2,
			Mode:    client.DelayedCommit,
			Fsync:   true,
			// One attempt, no call timeout: nothing scheduler-dependent
			// can change an op's outcome.
			Retry: client.RetryPolicy{MaxAttempts: 1},
			Net: netsim.FaultPlan{
				Default: netsim.LinkFaults{DelayProb: 0.3, DelaySpike: 300 * time.Microsecond},
			},
			OnOp: func(clientID, tid int, kind workload.OpKind, path string, n int64) {
				key := clientID*1000 + tid
				mu.Lock()
				logs[key] = append(logs[key], fmt.Sprintf("%d %s %s %d", key, kind, path, n))
				mu.Unlock()
			},
		}
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]int, 0, len(logs))
		for k := range logs {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		var sb strings.Builder
		for _, k := range keys {
			for _, line := range logs[k] {
				sb.WriteString(line)
				sb.WriteByte('\n')
			}
		}
		return sb.String(), rep.OpErrors
	}
	logA, errsA := eventLog()
	logB, errsB := eventLog()
	if errsA != 0 || errsB != 0 {
		t.Fatalf("delay-only runs had op errors (%d, %d): an outcome-affecting fault leaked into the determinism fixture", errsA, errsB)
	}
	if logA == "" {
		t.Fatal("event log is empty; OnOp never fired")
	}
	if logA != logB {
		t.Fatalf("same seed and plan produced different event logs:\nrun A:\n%srun B:\n%s", logA, logB)
	}
}

// writerCrashRun is one seed of the early-visibility writer-crash scenario:
// a delayed-commit writer streams chunks into a file and crashes at a
// seed-chosen point — after publishing allocation intents, before committing
// some of them — while an early-visibility reader polls the same file the
// whole time. Two oracles run on every reader observation:
//
//  1. Content: every observed byte is either zero (never written) or the
//     writer's pattern byte — never garbage, never a torn mix.
//  2. Durability: any observed non-zero byte that an intent maps to the data
//     device must be durable there at (or before) observation time; device
//     durability grows monotonically, so checking after the read is sound.
//
// After the crash the MDS lease expiry reaps the writer: its intents roll
// back, and a fresh early-visibility reader may see only the committed
// prefix — which must match the pattern exactly. The store must fsck clean.
func writerCrashRun(t *testing.T, seed int64) {
	const (
		fileSize  = 64 << 10
		chunk     = 4 << 10
		chunks    = fileSize / chunk
		leaseTime = 2 * time.Millisecond
	)
	clk := clock.Real(1)
	data := blockdev.New(blockdev.Config{Size: dataSpace, Model: blockdev.FastHDD(), Clock: clk})
	defer data.Close()
	metaDev := blockdev.New(blockdev.Config{Size: metaSpace, Model: blockdev.ZeroLatency(), Clock: clk})
	defer metaDev.Close()
	store := meta.NewStore(meta.Config{
		AGs:     alloc.NewUniformAGSet(alloc.RoundRobin, 0, dataSpace, allocGroups),
		Journal: meta.NewJournal(metaDev, 0, journalSize),
		Clock:   clk,
	})
	var vmu sync.Mutex
	var violations []string
	srv := mds.New(mds.Config{
		Store:        store,
		Clock:        clk,
		Daemons:      4,
		LeaseTimeout: leaseTime,
		CommitCheck: func(exts []meta.Extent) error {
			for _, e := range exts {
				if e.Dev != 0 || !data.IsDurable(e.VolOff, e.Len) {
					msg := fmt.Sprintf("commit references non-durable extent dev%d [%d,+%d)", e.Dev, e.VolOff, e.Len)
					vmu.Lock()
					violations = append(violations, msg)
					vmu.Unlock()
					return fmt.Errorf("chaos: %s", msg)
				}
			}
			return nil
		},
	})
	defer srv.Close()
	net := netsim.NewNetwork(clk)
	net.AddHost("mds", netsim.Instant())
	lis, err := net.Listen("mds")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	defer lis.Close()

	mount := func(name string, early bool, mode client.Mode) *client.Client {
		net.AddHost(name, netsim.Instant())
		conn, err := net.Dial(name, "mds")
		if err != nil {
			t.Fatal(err)
		}
		return client.New(client.Config{
			Name:            name,
			MDS:             rpc.NewClient(conn, clk),
			Devices:         map[uint32]client.BlockDevice{0: data},
			Clock:           clk,
			Mode:            mode,
			PoolInterval:    time.Millisecond,
			EarlyVisibility: early,
		})
	}
	writer := mount("wc-writer", false, client.DelayedCommit)
	reader := mount("wc-reader", true, client.SyncCommit)
	defer reader.Close()

	pat := make([]byte, fileSize)
	for i := range pat {
		pat[i] = byte(i)*7 + byte(seed) + 1
	}
	wf, err := writer.Create("/wc.dat")
	if err != nil {
		t.Fatal(err)
	}
	attr, err := store.Lookup(meta.RootID, "wc.dat")
	if err != nil {
		t.Fatal(err)
	}

	// The reader polls until told to stop, running both oracles per poll.
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(1)
	observations := 0
	go func() {
		defer rwg.Done()
		rf, err := reader.Open("/wc.dat")
		if err != nil {
			t.Error(err)
			return
		}
		defer rf.Close()
		buf := make([]byte, fileSize)
		for {
			select {
			case <-stop:
				return
			default:
			}
			n, err := rf.ReadAt(buf, 0)
			if err != nil {
				continue
			}
			for j := 0; j < n; j++ {
				if buf[j] != 0 && buf[j] != pat[j] {
					t.Errorf("seed %d: reader observed garbage byte %#x at %d (want 0 or %#x)", seed, buf[j], j, pat[j])
					return
				}
			}
			if n > 0 {
				observations++
			}
			// Durability oracle: map observed non-zero bytes back to the
			// device through the live intent/extent view. Extents rolled
			// back between the read and this lookup simply drop out — the
			// bytes they carried were durable when the device served them.
			lay, lerr := store.GetLayout(attr.ID, 0, fileSize, meta.LayoutWantUncommitted)
			if lerr != nil {
				continue
			}
			for _, e := range lay.Extents {
				hi := e.FileOff + e.Len
				if hi > int64(n) {
					hi = int64(n)
				}
				for j := e.FileOff; j < hi; j++ {
					if buf[j] != 0 && !data.IsDurable(e.VolOff+(j-e.FileOff), 1) {
						t.Errorf("seed %d: observed non-durable byte at file offset %d (dev off %d)", seed, j, e.VolOff+(j-e.FileOff))
						return
					}
				}
			}
			clk.Sleep(100 * time.Microsecond)
		}
	}()

	// The writer streams chunks and crashes at a seed-derived cut point:
	// everything before the cut was handed to the commit pool, but the crash
	// races the pool, so a seed-dependent suffix dies as published intents.
	cut := 1 + int(uint64(seed)*2654435761%uint64(chunks-1))
	for i := 0; i < cut; i++ {
		if _, err := wf.WriteAt(pat[i*chunk:(i+1)*chunk], int64(i*chunk)); err != nil {
			t.Fatalf("seed %d: write %d: %v", seed, i, err)
		}
		clk.Sleep(50 * time.Microsecond)
	}
	writer.Crash()

	// Lease expiry reaps the dead writer: rollback of every intent it had
	// published but not committed. The reader keeps polling throughout.
	clk.Sleep(4 * leaseTime)
	srv.ExpireLeases()
	clk.Sleep(time.Millisecond)
	close(stop)
	rwg.Wait()

	// Post-rollback: a fresh early-visibility mount sees only the committed
	// prefix, and it matches the pattern byte for byte.
	fresh := mount("wc-fresh", true, client.SyncCommit)
	defer fresh.Close()
	ff, err := fresh.Open("/wc.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer ff.Close()
	buf := make([]byte, fileSize)
	n, err := ff.ReadAt(buf, 0)
	if err != nil {
		t.Fatalf("seed %d: post-crash read: %v", seed, err)
	}
	for j := 0; j < n; j++ {
		if buf[j] != 0 && buf[j] != pat[j] {
			t.Fatalf("seed %d: post-rollback byte %d = %#x, want 0 or %#x", seed, j, buf[j], pat[j])
		}
	}
	if len(violations) != 0 {
		t.Fatalf("seed %d: ordered-write violations: %s", seed, strings.Join(violations, "; "))
	}
	if bad := store.CheckConsistent(func(dev int, off, n int64) bool {
		return dev == 0 && data.IsDurable(off, n)
	}); len(bad) != 0 {
		t.Fatalf("seed %d: %d committed extents without durable data", seed, len(bad))
	}
	if fsck := store.Fsck(dataSpace); !fsck.OK() {
		t.Fatalf("seed %d: post-rollback fsck: %s", seed, fsck)
	}
	t.Logf("seed %d: cut=%d/%d chunks, reader observations=%d", seed, cut, chunks, observations)
}

// TestChaosWriterCrashEarlyVisibility sweeps the writer-crash scenario over
// the seed range; the nightly job widens it to 100 seeds with -race.
func TestChaosWriterCrashEarlyVisibility(t *testing.T) {
	for s := 0; s < *seeds; s++ {
		seed := int64(s)*104729 + 3
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			writerCrashRun(t, seed)
		})
	}
}
