package meta

import (
	"fmt"
	"sort"

	"redbud/internal/alloc"
)

// FsckReport is the result of a full metadata/allocator cross-check.
type FsckReport struct {
	Files      int
	Extents    int
	LiveBytes  int64 // bytes referenced by file extents
	DelegBytes int64 // bytes inside live delegations not covered by extents
	FreeBytes  int64 // allocator free space
	Problems   []string
}

// OK reports whether the check found no inconsistencies.
func (r FsckReport) OK() bool { return len(r.Problems) == 0 }

func (r FsckReport) String() string {
	status := "clean"
	if !r.OK() {
		status = fmt.Sprintf("%d problems", len(r.Problems))
	}
	return fmt.Sprintf("fsck: %s (%d files, %d extents, live=%d deleg=%d free=%d)",
		status, r.Files, r.Extents, r.LiveBytes, r.DelegBytes, r.FreeBytes)
}

// Fsck cross-checks the namespace, the extent maps, the delegations and the
// allocator:
//
//  1. every directory entry points at a live inode, and every inode except
//     the root is reachable from exactly one entry;
//  2. no two extents overlap physically (across all files);
//  3. extents within one file do not overlap logically;
//  4. accounting identity: free + live + unused-delegation = total space;
//  5. delegation `used` bookkeeping only covers committed extents.
//
// totalSpace is the capacity the AG set was built over.
func (s *Store) Fsck(totalSpace int64) FsckReport {
	s.ns.Lock()
	defer s.ns.Unlock()
	var r FsckReport

	// 1. Namespace reachability.
	reach := map[FileID]int{}
	for dirID, ents := range s.dirents {
		if _, ok := s.inodes[dirID]; !ok {
			r.Problems = append(r.Problems, fmt.Sprintf("dirent table for missing inode %d", dirID))
			continue
		}
		for name, cid := range ents {
			if _, ok := s.inodes[cid]; !ok {
				r.Problems = append(r.Problems, fmt.Sprintf("entry %q points at missing inode %d", name, cid))
				continue
			}
			reach[cid]++
		}
	}
	for id, ino := range s.inodes {
		if id == RootID {
			continue
		}
		if n := reach[id]; n != ino.nlink {
			r.Problems = append(r.Problems, fmt.Sprintf("inode %d has %d entries but nlink %d", id, n, ino.nlink))
		}
		if reach[id] == 0 {
			r.Problems = append(r.Problems, fmt.Sprintf("inode %d unreachable", id))
		}
	}
	r.Files = len(s.inodes) - 1

	// 2 + 3. Extent overlap checks; collect physical spans.
	type pspan struct {
		dev      uint32
		off, end int64
		file     FileID
	}
	var phys []pspan
	for id, ino := range s.inodes {
		sorted := append([]Extent(nil), ino.extents...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].FileOff < sorted[j].FileOff })
		for i, e := range sorted {
			r.Extents++
			r.LiveBytes += e.Len
			phys = append(phys, pspan{dev: e.Dev, off: e.VolOff, end: e.VolOff + e.Len, file: id})
			if i > 0 && sorted[i-1].End() > e.FileOff {
				r.Problems = append(r.Problems, fmt.Sprintf("file %d: logical overlap at %d", id, e.FileOff))
			}
		}
	}
	sort.Slice(phys, func(i, j int) bool {
		if phys[i].dev != phys[j].dev {
			return phys[i].dev < phys[j].dev
		}
		return phys[i].off < phys[j].off
	})
	for i := 1; i < len(phys); i++ {
		a, b := phys[i-1], phys[i]
		if a.dev == b.dev && a.end > b.off {
			r.Problems = append(r.Problems, fmt.Sprintf("physical overlap dev%d [%d) files %d/%d", a.dev, b.off, a.file, b.file))
		}
	}

	// 4 + 5. Delegation bookkeeping and the accounting identity. Extents
	// inside a delegation are double-counted in LiveBytes and the chunk,
	// so subtract the covered portion from the delegation contribution.
	for owner, ds := range s.delegations {
		for _, d := range ds {
			var used int64
			for _, u := range d.used {
				used += u.end - u.off
				if u.off < d.span.Off || u.end > d.span.End() {
					r.Problems = append(r.Problems, fmt.Sprintf("delegation %s/%v used range outside span", owner, d.span))
				}
			}
			r.DelegBytes += d.span.Len - used
		}
	}
	r.FreeBytes = s.cfg.AGs.FreeBytes()
	if got := r.FreeBytes + r.LiveBytes + r.DelegBytes; got != totalSpace {
		r.Problems = append(r.Problems, fmt.Sprintf(
			"accounting: free %d + live %d + deleg %d = %d, want %d",
			r.FreeBytes, r.LiveBytes, r.DelegBytes, got, totalSpace))
	}
	return r
}

// TotalSpace sums the capacity of an AG set's groups — the totalSpace
// argument Fsck expects when the set covers whole devices.
func TotalSpace(ags *alloc.AGSet) int64 {
	var total int64
	for _, g := range ags.Groups() {
		start, end := g.Bounds()
		total += end - start
	}
	return total
}
