// Package meta mirrors the layout-flag surface of redbud's internal/meta
// for the wireevolve version-clamp fixtures. Only the names matter.
package meta

// LayoutFlags selects the behaviour of a layout lookup.
type LayoutFlags uint8

const (
	// LayoutWrite declares write intent.
	LayoutWrite LayoutFlags = 1 << 0
	// LayoutWantUncommitted is the v2-gated early-visibility capability.
	LayoutWantUncommitted LayoutFlags = 1 << 1
)

// Has reports whether every bit in bits is set.
func (f LayoutFlags) Has(bits LayoutFlags) bool { return f&bits == bits }
