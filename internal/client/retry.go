package client

import (
	"errors"
	"hash/fnv"
	"math/rand"
	"time"

	"redbud/internal/core"
	"redbud/internal/meta"
	"redbud/internal/proto"
	"redbud/internal/rpc"
	"redbud/internal/wire"
)

// RetryPolicy configures how the client survives transport faults: lost or
// delayed RPC frames, a dying connection, and an MDS restart.
//
// Only idempotent operations are ever retried: commits (made idempotent by
// the CommitID the MDS dedupes), lookups, attribute and directory reads, and
// layout fetches (re-allocating a layout returns the extents the first
// attempt created). Namespace mutations — create, remove, rename — and
// delegation requests are never retried, because a duplicate would create,
// unlink, or leak state the first execution already handled.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per retriable RPC. Zero
	// defaults to 8 when Redial or CallTimeout enables the retry path, and
	// to 1 (no retry, the pre-fault-tolerance behavior) otherwise.
	MaxAttempts int
	// BaseDelay is the first backoff step (default 1ms of virtual time).
	BaseDelay time.Duration
	// MaxDelay caps the exponential schedule (default 200ms).
	MaxDelay time.Duration
	// CallTimeout bounds each RPC's wait for a response; 0 waits forever.
	// A timeout is what turns a silently dropped frame into a retriable
	// error.
	CallTimeout time.Duration
	// Seed drives the jitter stream; 0 derives one from the client name.
	Seed int64
}

// maxAttempts resolves the effective attempt budget.
func (c *Client) maxAttempts() int {
	if n := c.cfg.Retry.MaxAttempts; n > 0 {
		return n
	}
	if c.cfg.Redial != nil || c.cfg.Retry.CallTimeout > 0 {
		return 8
	}
	return 1
}

// retriable reports whether err indicates a transport fault the retry layer
// may act on. RemoteError (the server executed and said no) and ErrBadFrame
// (protocol corruption) are deliberately excluded.
func retriable(err error) bool {
	return errors.Is(err, rpc.ErrConnClosed) ||
		errors.Is(err, rpc.ErrClientClosed) ||
		errors.Is(err, rpc.ErrTimeout)
}

// backoffDelay returns the sleep before retry attempt (0-based): an
// exponential schedule base<<attempt capped at max, with jitter drawn from
// rng uniformly in [d/2, d) so synchronized clients desynchronize.
func backoffDelay(attempt int, base, max time.Duration, rng *rand.Rand) time.Duration {
	if base <= 0 {
		base = time.Millisecond
	}
	if max <= 0 {
		max = 200 * time.Millisecond
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// retrySeed derives the default jitter seed from the client name.
func retrySeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64())
}

// commitIDBase namespaces commit IDs per client: the name hash occupies the
// high 32 bits, leaving 2^32 sequence numbers per client. The MDS dedup
// table is keyed (owner, id) and does not depend on this; the namespace only
// keeps commits from different clients distinct when their spans land in one
// shared tracer.
func commitIDBase(name string) uint64 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return uint64(h.Sum32()) << 32
}

// sleepBackoff sleeps the backoff delay for one retry attempt.
func (c *Client) sleepBackoff(attempt int) {
	c.rngMu.Lock()
	d := backoffDelay(attempt, c.cfg.Retry.BaseDelay, c.cfg.Retry.MaxDelay, c.rng)
	c.rngMu.Unlock()
	c.clk.Sleep(d)
}

// serverLoad reads the load byte piggybacked on the shard-0 connection (the
// compound controller tracks one representative server).
func (c *Client) serverLoad() uint8 {
	m, _ := c.links[0].conn()
	return m.ServerLoad()
}

// recoverConn reacts to a retriable failure of a call issued on link l's
// connection with generation gen. It returns nil when the caller may retry,
// or an error when the fault cannot be recovered (no redial configured and
// the connection is dead).
func (c *Client) recoverConn(l *mdsLink, old *rpc.Client, gen uint64, cause error) error {
	if f := l.dead(); f != nil {
		return f // shard-map mismatch: redialling cannot fix the wiring
	}
	redial := c.redialFor(l.shard)
	if redial == nil {
		if errors.Is(cause, rpc.ErrTimeout) {
			return nil // connection still usable; retry in place
		}
		return cause
	}
	l.mu.Lock()
	if l.gen != gen {
		// Another goroutine already replaced the connection.
		l.mu.Unlock()
		return nil
	}
	nc, err := redial()
	if err != nil {
		l.mu.Unlock()
		return err
	}
	if d := c.cfg.Retry.CallTimeout; d > 0 {
		nc.SetCallTimeout(d)
	}
	l.totalCalls += old.Calls()
	old.Close()
	l.mds = nc
	l.gen++
	l.mu.Unlock()
	c.hello(l, nc)
	return nil
}

// hello (re)introduces the client to one MDS shard, learns its incarnation,
// and negotiates the protocol version (the client offers ProtoLatest; the
// MDS answers with the version the session will speak). A changed
// incarnation means that shard restarted and recovered: every delegation and
// uncommitted allocation this client homed there was reclaimed, so the local
// session state for that shard must be re-established.
func (c *Client) hello(l *mdsLink, mds *rpc.Client) {
	var h proto.HelloResp
	if err := mds.Call(proto.OpHello, &proto.HelloReq{Owner: c.cfg.Name, ProtoVersion: proto.ProtoLatest}, &h); err != nil {
		return // next failure will retry the handshake
	}
	if err := c.checkShardMap(l, &h); err != nil {
		// The connection reaches the wrong shard: kill the link rather than
		// route through it. Every subsequent call fails with the mismatch
		// error instead of scattering the namespace.
		l.mu.Lock()
		l.fatal = err
		l.mu.Unlock()
		mds.Close()
		return
	}
	l.version.Store(h.ProtoVersion)
	c.updateProtoVersion()
	l.mu.Lock()
	restarted := l.sawIncarnation && h.Incarnation != l.incarnation
	l.incarnation = h.Incarnation
	l.sawIncarnation = true
	l.mu.Unlock()
	if restarted {
		c.reestablish(l.shard)
	}
}

// earlyVisible reports whether conflict reads may ask for uncommitted
// extents: the knob is on and the MDS negotiated protocol v2.
func (c *Client) earlyVisible() bool {
	return c.cfg.EarlyVisibility && c.protoVersion.Load() >= proto.ProtoV2
}

// reestablish rolls the client session back to what one recovered MDS shard
// still knows. meta.Recover reclaimed this client's delegations and freed
// its uncommitted allocations there, so: the space pool is discarded and
// rebuilt (delegation exists only in the single-shard topology, where every
// restart is shard 0's), and every file homed on that shard drops its
// uncommitted extents, cached pages, and local size growth. Files homed on
// other shards are untouched — their state is still live. Delayed-commit
// data that was never fsynced is lost — exactly the window the paper's
// §III-A contract concedes.
func (c *Client) reestablish(shard int) {
	if old := c.space.Load(); old != nil {
		old.Close() // the recovered MDS no longer tracks these spans
		c.space.Store(c.newSpacePool())
	}
	c.mu.Lock()
	files := make([]*fileState, 0, len(c.files))
	for _, fs := range c.files {
		if c.shardOf(fs.id) == shard {
			files = append(files, fs)
		}
	}
	c.mu.Unlock()
	for _, fs := range files {
		fs.mu.Lock()
		fs.waitWritesLocked() // let in-flight device writes land first
		kept := fs.extents[:0]
		for _, e := range fs.extents {
			if e.State == meta.StateCommitted {
				kept = append(kept, e)
			}
		}
		fs.extents = kept
		fs.size = fs.committedSize
		fs.dirtyMeta = false
		fs.pages = make(map[int64][]byte)
		fs.cond.Broadcast()
		fs.mu.Unlock()
	}
}

// callIdem issues an idempotent RPC on one shard's link with timeout/backoff
// retry across reconnects. Must not be used for ops whose re-execution has
// side effects.
func (c *Client) callIdem(l *mdsLink, op uint16, req wire.Marshaler, resp wire.Unmarshaler) error {
	if f := l.dead(); f != nil {
		return f
	}
	attempts := c.maxAttempts()
	for attempt := 0; ; attempt++ {
		mds, gen := l.conn()
		err := mds.Call(op, req, resp)
		if err == nil || !retriable(err) || attempt >= attempts-1 {
			return err
		}
		if rerr := c.recoverConn(l, mds, gen, err); rerr != nil {
			return err
		}
		c.st.retries.Inc()
		c.sleepBackoff(attempt)
	}
}

// sendCommit ships one commit request, retrying over timeouts and
// reconnects. The request carries a CommitID the MDS dedupes, so a
// retransmission after a lost reply cannot apply twice. The ordered-write
// barrier is re-asserted immediately before the send: the data the extents
// name must be durable before the MDS can learn about it, on the first
// transmission and on every retry alike.
func (c *Client) sendCommit(fs *fileState, req *proto.CommitReq, resp *proto.CommitResp) error {
	fs.mu.Lock()
	for fs.pendingWrites > 0 {
		fs.cond.Wait()
	}
	fs.mu.Unlock()
	l := c.shardFor(fs.id)
	if f := l.dead(); f != nil {
		return f
	}
	attempts := c.maxAttempts()
	for attempt := 0; ; attempt++ {
		mds, gen := l.conn()
		err := mds.Call(proto.OpCommit, req, resp)
		if err == nil || !retriable(err) || attempt >= attempts-1 {
			return err
		}
		if rerr := c.recoverConn(l, mds, gen, err); rerr != nil {
			return err
		}
		c.st.retries.Inc()
		c.sleepBackoff(attempt)
	}
}

// sendCompound ships a compound frame of commit sub-operations — all homed
// on one shard — with the same retry rules as sendCommit; every
// sub-operation carries its own CommitID, so replaying the whole frame is
// safe.
func (c *Client) sendCompound(states []*fileState, ops []rpc.SubOp) ([]rpc.SubResult, error) {
	for _, fs := range states {
		fs.mu.Lock()
		for fs.pendingWrites > 0 {
			fs.cond.Wait()
		}
		fs.mu.Unlock()
	}
	l := c.shardFor(states[0].id)
	if f := l.dead(); f != nil {
		return nil, f
	}
	attempts := c.maxAttempts()
	for attempt := 0; ; attempt++ {
		mds, gen := l.conn()
		results, err := mds.Compound(ops)
		if err == nil || !retriable(err) || attempt >= attempts-1 {
			return results, err
		}
		if rerr := c.recoverConn(l, mds, gen, err); rerr != nil {
			return results, err
		}
		c.st.retries.Inc()
		c.sleepBackoff(attempt)
	}
}

// newSpacePool builds the delegation space pool from the client config.
func (c *Client) newSpacePool() *core.SpacePool {
	return core.NewSpacePool(core.SpacePoolConfig{
		ChunkSize:  c.cfg.DelegationChunk,
		Delegate:   c.delegate,
		NoPrefetch: c.cfg.SpaceNoPrefetch,
	})
}

// spacePool returns the live delegation pool, or nil when disabled.
func (c *Client) spacePool() *core.SpacePool {
	if c.cfg.DelegationChunk <= 0 {
		return nil
	}
	return c.space.Load()
}
