package client

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"redbud/internal/meta"
	"redbud/internal/proto"
	"redbud/internal/rpc"
)

// mdsLink is the client's connection to one MDS shard, with the reconnect
// bookkeeping that used to live on the Client when there was only one. Each
// shard fails, redials, and restarts independently: the incarnation is
// tracked per link, so one shard's recovery only invalidates the session
// state homed there.
type mdsLink struct {
	shard int

	// mu guards the connection, which redial may replace, plus the
	// reconnect bookkeeping. gen counts replacements so concurrent failures
	// reconnect once, not once per caller.
	mu             sync.Mutex
	mds            *rpc.Client
	gen            uint64
	totalCalls     int64 // RPCs issued on connections already closed
	incarnation    uint64
	sawIncarnation bool

	// version is the protocol version negotiated by this shard's last
	// OpHello (0 until the first handshake succeeds, which reads as v1).
	version atomic.Uint32

	// fatal, once set, marks the link permanently unusable — the hello
	// reply proved the connection reaches the wrong shard, so routing
	// through it would scatter the namespace. Guarded by mu.
	fatal error
}

// dead returns the link's fatal error, if any.
func (l *mdsLink) dead() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fatal
}

// conn returns the link's current connection and its generation; the
// generation lets a failed caller detect that another goroutine already
// replaced the connection.
func (l *mdsLink) conn() (*rpc.Client, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mds, l.gen
}

// calls totals RPCs across the link's live connection and any it replaced.
func (l *mdsLink) calls() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totalCalls + l.mds.Calls()
}

// shardOf routes an inode to its home shard.
func (c *Client) shardOf(id meta.FileID) int { return meta.ShardOf(id, len(c.links)) }

// shardFor returns the link to an inode's home shard.
func (c *Client) shardFor(id meta.FileID) *mdsLink { return c.links[c.shardOf(id)] }

// redialFor resolves the redial function for one shard, or nil when the
// client cannot replace that connection.
func (c *Client) redialFor(shard int) func() (*rpc.Client, error) {
	if c.cfg.RedialShard != nil {
		return func() (*rpc.Client, error) { return c.cfg.RedialShard(shard) }
	}
	if shard == 0 && len(c.links) == 1 {
		return c.cfg.Redial
	}
	return nil
}

// updateProtoVersion recomputes the session-wide protocol version: the
// minimum every shard negotiated. Feature gates (early visibility) key off
// the whole session, so one laggard shard downgrades all of them. Links at
// version 0 have no negotiated version yet (their handshake failed or is
// pending) and are skipped — they re-handshake on reconnect before serving
// traffic, and the recomputation then picks their answer up; counting them
// would pin the whole session at v1 behaviour for the duration.
func (c *Client) updateProtoVersion() {
	min := uint32(0)
	for _, l := range c.links {
		v := l.version.Load()
		if v == 0 {
			continue
		}
		if min == 0 || v < min {
			min = v
		}
	}
	c.protoVersion.Store(min)
}

// checkShardMap validates the hello-advertised shard coordinates against the
// topology the client was mounted with. A mismatch means the caller wired
// connection i to a server running with a different -shard flag — routing
// through it would silently scatter the namespace, so the link is marked
// dead (a server reply, however misconfigured or byzantine, must never crash
// the client process).
func (c *Client) checkShardMap(l *mdsLink, h *proto.HelloResp) error {
	if h.ProtoVersion < proto.ProtoV3 {
		if len(c.links) > 1 {
			return fmt.Errorf("client: shard %d: server speaks v%d and carries no shard map, unusable in a %d-shard mount",
				l.shard, h.ProtoVersion, len(c.links))
		}
		return nil // pre-sharding server: valid as the single shard
	}
	if int(h.ShardCount) != len(c.links) || int(h.ShardIndex) != l.shard {
		return fmt.Errorf("client: shard map mismatch: connection %d of %d reached server %d of %d",
			l.shard, len(c.links), h.ShardIndex, h.ShardCount)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Cross-shard namespace orchestration
//
// The client drives the two-phase protocols; every step below the first is
// idempotent on the server, so each may be retried across timeouts and
// reconnects. A crash (of client or server) between steps leaves an intent
// that ResolveNSIntents rolls forward or back depending on whether the
// commit point — the dirent mutation on the parent's shard — was reached.

// definitiveFailure reports whether err proves the server rejected the
// operation without executing it — an application-level error carried in a
// reply frame. A transport failure (timeout, dead connection, retries
// exhausted) proves nothing: the operation may have committed durably with
// only the reply lost, so a rollback decided on it could contradict a commit
// point that was in fact reached. Cross-shard orchestration aborts its
// intents only on definitive failures; after an ambiguous one the intents
// stay live and quiesced resolution decides by probing the dirents.
func definitiveFailure(err error) bool {
	var re *rpc.RemoteError
	return errors.As(err, &re)
}

// createCrossShard creates leaf under dir when the placement hash homes the
// new inode on a different shard than the parent's dirent table:
//
//  1. mint a detached inode (+ NSCreate intent) on the target shard;
//  2. insert the dirent on the parent's shard — the commit point;
//  3. graduate the intent on the target shard.
func (c *Client) createCrossShard(dir meta.FileID, leaf string, typ meta.FileType, target int) (proto.AttrResp, error) {
	tl, pl := c.links[target], c.shardFor(dir)
	var attr proto.AttrResp
	// Minting is the one non-idempotent step (a retry would mint a second
	// inode), so like OpCreate it is not retried; a lost reply leaks an
	// intent that resolution aborts.
	mds, _ := tl.conn()
	if err := mds.Call(proto.OpCreateDetached, &proto.CreateDetachedReq{Parent: dir, Name: leaf, Type: typ}, &attr); err != nil {
		return attr, mapRemote(err)
	}
	if err := c.callIdem(pl, proto.OpLinkRemote, &proto.LinkRemoteReq{Parent: dir, Name: leaf, Child: attr.ID, Type: typ}, nil); err != nil {
		// Roll the mint back only when the parent shard provably refused the
		// insert (best effort — an unreachable target shard resolves the
		// intent later). After an ambiguous transport failure the link may
		// have committed with the reply lost; aborting would free the inode
		// under a durable dirent, so leave the intent for resolution.
		if definitiveFailure(err) {
			_ = c.callIdem(tl, proto.OpNSAbort, &proto.NSAbortReq{File: attr.ID, Kind: meta.NSCreate}, nil)
		}
		return attr, mapRemote(err)
	}
	// Past the commit point: the create happened. Graduation is best effort;
	// a leaked NSCreate intent with a live dirent always resolves to commit.
	_ = c.callIdem(tl, proto.OpNSCommit, &proto.NSCommitReq{File: attr.ID, Kind: meta.NSCreate}, nil)
	return attr, nil
}

// removeCrossShard removes leaf (inode id, homed on another shard than the
// parent's dirent):
//
//  1. publish an NSRemove intent on the home shard (validates emptiness
//     for directories and blocks new entries from appearing under them);
//  2. delete the dirent on the parent's shard — the commit point;
//  3. commit on the home shard, freeing the inode and its space.
func (c *Client) removeCrossShard(dir meta.FileID, leaf string, id meta.FileID) error {
	hl, pl := c.shardFor(id), c.shardFor(dir)
	var attr proto.AttrResp
	if err := c.callIdem(hl, proto.OpGetAttr, &proto.GetAttrReq{ID: id}, &attr); err != nil {
		return mapRemote(err)
	}
	if err := c.callIdem(hl, proto.OpNSPrepare, &proto.NSPrepareReq{
		File: id, Kind: meta.NSRemove, Type: attr.Type, Parent: dir, Name: leaf,
	}, nil); err != nil {
		return mapRemote(err)
	}
	if err := c.callIdem(pl, proto.OpUnlinkRemote, &proto.UnlinkRemoteReq{Parent: dir, Name: leaf, Child: id}, nil); err != nil {
		// Definitive refusal (entry moved by a rename, intent conflict):
		// the remove never reached its commit point, so roll it back. An
		// ambiguous failure may hide a committed unlink — aborting then
		// would leave the inode alive with no dirent anywhere — so the
		// intent stays live for resolution to probe.
		if definitiveFailure(err) {
			_ = c.callIdem(hl, proto.OpNSAbort, &proto.NSAbortReq{File: id, Kind: meta.NSRemove}, nil)
		}
		return mapRemote(err)
	}
	_ = c.callIdem(hl, proto.OpNSCommit, &proto.NSCommitReq{File: id, Kind: meta.NSRemove}, nil)
	return nil
}

// renameCrossShard moves a dirent between directories whose tables live on
// different shards. Only files move this way: a directory's subtree hangs
// off its own home shard, where neither parent shard could run a loop check.
//
//  1. publish NSRenameSrc on the source parent's shard (validates the
//     entry and freezes the inode's namespace state);
//  2. publish NSRenameDst on the destination parent's shard (reserves the
//     destination name);
//  3. commit the source intent — deleting the source dirent is the commit
//     point (resolution probes it: present → roll back, gone → forward);
//  4. commit the destination intent, inserting the new dirent.
func (c *Client) renameCrossShard(srcDir meta.FileID, srcLeaf string, dstDir meta.FileID, dstLeaf string) error {
	sl, dl := c.shardFor(srcDir), c.shardFor(dstDir)
	var ent proto.AttrResp
	if err := c.callIdem(sl, proto.OpLookup, &proto.LookupReq{Parent: srcDir, Name: srcLeaf}, &ent); err != nil {
		return mapRemote(err)
	}
	if ent.Type == meta.TypeDir {
		return fmt.Errorf("client: cross-shard directory rename not supported: %q", srcLeaf)
	}
	if err := c.callIdem(sl, proto.OpNSPrepare, &proto.NSPrepareReq{
		File: ent.ID, Kind: meta.NSRenameSrc, Type: ent.Type, Parent: srcDir, Name: srcLeaf,
	}, nil); err != nil {
		return mapRemote(err)
	}
	if err := c.callIdem(dl, proto.OpNSPrepare, &proto.NSPrepareReq{
		File: ent.ID, Kind: meta.NSRenameDst, Type: ent.Type, Parent: srcDir, Name: srcLeaf,
		DstParent: dstDir, DstName: dstLeaf,
	}, nil); err != nil {
		// Same rule as the other sagas: only a definitive refusal of the dst
		// reservation may unfreeze the source. If the dst intent might have
		// been published durably, dropping the src intent early would let
		// another operation move the source entry, after which resolution
		// would misread the dst probe and roll the insert forward.
		if definitiveFailure(err) {
			_ = c.callIdem(sl, proto.OpNSAbort, &proto.NSAbortReq{File: ent.ID, Kind: meta.NSRenameSrc}, nil)
		}
		return mapRemote(err)
	}
	if err := c.callIdem(sl, proto.OpNSCommit, &proto.NSCommitReq{File: ent.ID, Kind: meta.NSRenameSrc}, nil); err != nil {
		// The commit point was not provably reached; both intents stand and
		// resolution decides by probing the source dirent.
		return mapRemote(err)
	}
	_ = c.callIdem(dl, proto.OpNSCommit, &proto.NSCommitReq{File: ent.ID, Kind: meta.NSRenameDst}, nil)
	return nil
}
