package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// SentErr requires the error-producing packages of the storage stack — meta,
// rpc, blockdev — to return errors that wrap package sentinels, so callers
// can branch with errors.Is instead of string matching. Inside function
// bodies of those packages it flags:
//
//   - fmt.Errorf with a constant format string that contains no %w verb
//     (an un-Is-able leaf error), and
//   - errors.New (leaf errors belong at package scope as sentinels, where
//     the var declaration names them; in a function body they are anonymous
//     and unmatchable).
//
// Package-level `var ErrX = errors.New(...)` declarations — the sentinels
// themselves — are the sanctioned pattern and are not flagged.
var SentErr = &Analyzer{
	Name: "senterr",
	Doc:  "errors from meta/rpc/blockdev must wrap package sentinels (%w), not be bare strings",
	Run:  runSentErr,
}

func runSentErr(pass *Pass) error {
	switch pass.Pkg.Name() {
	case "meta", "rpc", "blockdev":
	default:
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkgPath, name, ok := pkgFuncCall(pass.Info, call)
				if !ok {
					return true
				}
				switch {
				case pkgPath == "errors" && name == "New":
					pass.Reportf(call.Pos(),
						"errors.New in a function body creates an unmatchable leaf error: declare a package sentinel (var ErrX = errors.New) and wrap it with fmt.Errorf(\"...: %%w\", ErrX)")
				case pkgPath == "fmt" && name == "Errorf" && len(call.Args) > 0:
					if format, ok := constFormat(call.Args[0]); ok && !strings.Contains(format, "%w") {
						pass.Reportf(call.Pos(),
							"fmt.Errorf without %%w is not errors.Is-able: wrap a package sentinel")
					}
				}
				return true
			})
		}
	}
	return nil
}

// constFormat extracts a string literal format argument, if it is one.
func constFormat(expr ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(expr).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	// Trim the quote characters; escapes inside do not matter for a %w scan.
	s := lit.Value
	if len(s) >= 2 {
		s = s[1 : len(s)-1]
	}
	return s, true
}
