package client

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"redbud/internal/meta"
	"redbud/internal/obs"
	"redbud/internal/proto"
	"redbud/internal/rpc"
)

// mdsLink is the client's connection to one MDS shard, with the reconnect
// bookkeeping that used to live on the Client when there was only one. Each
// shard fails, redials, and restarts independently: the incarnation is
// tracked per link, so one shard's recovery only invalidates the session
// state homed there.
type mdsLink struct {
	shard int

	// mu guards the connection, which redial may replace, plus the
	// reconnect bookkeeping. gen counts replacements so concurrent failures
	// reconnect once, not once per caller.
	mu             sync.Mutex
	mds            *rpc.Client
	gen            uint64
	totalCalls     int64 // RPCs issued on connections already closed
	incarnation    uint64
	sawIncarnation bool

	// version is the protocol version negotiated by this shard's last
	// OpHello (0 until the first handshake succeeds, which reads as v1).
	version atomic.Uint32

	// fatal, once set, marks the link permanently unusable — the hello
	// reply proved the connection reaches the wrong shard, so routing
	// through it would scatter the namespace. Guarded by mu.
	fatal error
}

// dead returns the link's fatal error, if any.
func (l *mdsLink) dead() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fatal
}

// conn returns the link's current connection and its generation; the
// generation lets a failed caller detect that another goroutine already
// replaced the connection.
func (l *mdsLink) conn() (*rpc.Client, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mds, l.gen
}

// calls totals RPCs across the link's live connection and any it replaced.
func (l *mdsLink) calls() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totalCalls + l.mds.Calls()
}

// shardOf routes an inode to its home shard.
func (c *Client) shardOf(id meta.FileID) int { return meta.ShardOf(id, len(c.links)) }

// shardFor returns the link to an inode's home shard.
func (c *Client) shardFor(id meta.FileID) *mdsLink { return c.links[c.shardOf(id)] }

// redialFor resolves the redial function for one shard, or nil when the
// client cannot replace that connection.
func (c *Client) redialFor(shard int) func() (*rpc.Client, error) {
	if c.cfg.RedialShard != nil {
		return func() (*rpc.Client, error) { return c.cfg.RedialShard(shard) }
	}
	if shard == 0 && len(c.links) == 1 {
		return c.cfg.Redial
	}
	return nil
}

// updateProtoVersion recomputes the session-wide protocol version: the
// minimum every shard negotiated. Feature gates (early visibility) key off
// the whole session, so one laggard shard downgrades all of them. Links at
// version 0 have no negotiated version yet (their handshake failed or is
// pending) and are skipped — they re-handshake on reconnect before serving
// traffic, and the recomputation then picks their answer up; counting them
// would pin the whole session at v1 behaviour for the duration.
func (c *Client) updateProtoVersion() {
	min := uint32(0)
	for _, l := range c.links {
		v := l.version.Load()
		if v == 0 {
			continue
		}
		if min == 0 || v < min {
			min = v
		}
	}
	c.protoVersion.Store(min)
}

// checkShardMap validates the hello-advertised shard coordinates against the
// topology the client was mounted with. A mismatch means the caller wired
// connection i to a server running with a different -shard flag — routing
// through it would silently scatter the namespace, so the link is marked
// dead (a server reply, however misconfigured or byzantine, must never crash
// the client process).
func (c *Client) checkShardMap(l *mdsLink, h *proto.HelloResp) error {
	if h.ProtoVersion < proto.ProtoV3 {
		if len(c.links) > 1 {
			return fmt.Errorf("client: shard %d: server speaks v%d and carries no shard map, unusable in a %d-shard mount",
				l.shard, h.ProtoVersion, len(c.links))
		}
		return nil // pre-sharding server: valid as the single shard
	}
	if int(h.ShardCount) != len(c.links) || int(h.ShardIndex) != l.shard {
		return fmt.Errorf("client: shard map mismatch: connection %d of %d reached server %d of %d",
			l.shard, len(c.links), h.ShardIndex, h.ShardCount)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Cross-shard namespace orchestration
//
// The client drives the two-phase protocols; every step below the first is
// idempotent on the server, so each may be retried across timeouts and
// reconnects. A crash (of client or server) between steps leaves an intent
// that ResolveNSIntents rolls forward or back depending on whether the
// commit point — the dirent mutation on the parent's shard — was reached.

// definitiveFailure reports whether err proves the server rejected the
// operation without executing it — an application-level error carried in a
// reply frame. A transport failure (timeout, dead connection, retries
// exhausted) proves nothing: the operation may have committed durably with
// only the reply lost, so a rollback decided on it could contradict a commit
// point that was in fact reached. Cross-shard orchestration aborts its
// intents only on definitive failures; after an ambiguous one the intents
// stay live and quiesced resolution decides by probing the dirents.
func definitiveFailure(err error) bool {
	var re *rpc.RemoteError
	return errors.As(err, &re)
}

// beginSaga mints the trace identity for one cross-shard namespace saga: a
// fresh TraceID drawn from the commit-ID sequence (globally unique — the
// client-name hash occupies the high bits), with the root span's ID equal to
// the TraceID. Returns a zero context when tracing is off; every helper below
// then no-ops and no trace bytes go on the wire.
func (c *Client) beginSaga() (obs.SpanContext, time.Time) {
	if !c.tracer.Enabled() {
		return obs.SpanContext{}, time.Time{}
	}
	id := c.commitSeq.Add(1)
	return obs.SpanContext{TraceID: id, SpanID: id}, c.clk.Now()
}

// endSaga records the saga root span (ns.create / ns.remove / ns.rename) on
// the client's "<Name>/ns" track, spanning the whole orchestration.
func (c *Client) endSaga(name string, tc obs.SpanContext, start time.Time) {
	if tc.TraceID == 0 {
		return
	}
	c.tracer.RecordSpan(obs.Span{
		Track: c.trackNS, Name: name,
		TraceID: tc.TraceID, SpanID: tc.SpanID,
		Start: start, End: c.clk.Now(),
	})
}

// nsPhase tracks one in-flight saga leg's span identity.
type nsPhase struct {
	tc    obs.SpanContext // saga identity; zero when untraced
	name  string
	sid   uint64
	start time.Time
}

// beginPhase derives the span identity for one saga leg and, when the session
// negotiated protocol v4, the wire trace context to attach to the leg's
// request so the server's handler span links under it. Older sessions get a
// zero wire context — a pre-v4 server would reject the trailing bytes — and
// keep client-side phase spans only.
func (c *Client) beginPhase(tc obs.SpanContext, name string) (nsPhase, proto.TraceCtx) {
	if tc.TraceID == 0 {
		return nsPhase{}, proto.TraceCtx{}
	}
	sid := obs.NewSpanID(tc.SpanID, name)
	var w proto.TraceCtx
	if c.protoVersion.Load() >= proto.ProtoV4 {
		w = proto.TraceCtx{TraceID: tc.TraceID, SpanID: sid}
	}
	return nsPhase{tc: tc, name: name, sid: sid, start: c.clk.Now()}, w
}

// endPhase records the leg's span, on success and failure alike — an aborted
// saga leg is exactly the kind of latency a stitched trace should show.
func (c *Client) endPhase(ph nsPhase) {
	if ph.tc.TraceID == 0 {
		return
	}
	c.tracer.RecordSpan(obs.Span{
		Track: c.trackNS, Name: ph.name,
		TraceID: ph.tc.TraceID, SpanID: ph.sid, Parent: ph.tc.SpanID,
		Start: ph.start, End: c.clk.Now(),
	})
}

// createCrossShard creates leaf under dir when the placement hash homes the
// new inode on a different shard than the parent's dirent table:
//
//  1. mint a detached inode (+ NSCreate intent) on the target shard;
//  2. insert the dirent on the parent's shard — the commit point;
//  3. graduate the intent on the target shard.
func (c *Client) createCrossShard(dir meta.FileID, leaf string, typ meta.FileType, target int) (proto.AttrResp, error) {
	tl, pl := c.links[target], c.shardFor(dir)
	saga, sagaStart := c.beginSaga()
	defer c.endSaga(obs.SpanNSCreate, saga, sagaStart)
	var attr proto.AttrResp
	// Minting is the one non-idempotent step (a retry would mint a second
	// inode), so like OpCreate it is not retried; a lost reply leaks an
	// intent that resolution aborts.
	ph, tc := c.beginPhase(saga, obs.SpanNSMint)
	mds, _ := tl.conn()
	err := mds.Call(proto.OpCreateDetached, &proto.CreateDetachedReq{Parent: dir, Name: leaf, Type: typ, Trace: tc}, &attr)
	c.endPhase(ph)
	if err != nil {
		return attr, mapRemote(err)
	}
	ph, tc = c.beginPhase(saga, obs.SpanNSLink)
	err = c.callIdem(pl, proto.OpLinkRemote, &proto.LinkRemoteReq{Parent: dir, Name: leaf, Child: attr.ID, Type: typ, Trace: tc}, nil)
	c.endPhase(ph)
	if err != nil {
		// Roll the mint back only when the parent shard provably refused the
		// insert (best effort — an unreachable target shard resolves the
		// intent later). After an ambiguous transport failure the link may
		// have committed with the reply lost; aborting would free the inode
		// under a durable dirent, so leave the intent for resolution.
		if definitiveFailure(err) {
			ph, tc = c.beginPhase(saga, obs.SpanNSAbort)
			_ = c.callIdem(tl, proto.OpNSAbort, &proto.NSAbortReq{File: attr.ID, Kind: meta.NSCreate, Trace: tc}, nil)
			c.endPhase(ph)
		}
		return attr, mapRemote(err)
	}
	// Past the commit point: the create happened. Graduation is best effort;
	// a leaked NSCreate intent with a live dirent always resolves to commit.
	ph, tc = c.beginPhase(saga, obs.SpanNSGraduate)
	_ = c.callIdem(tl, proto.OpNSCommit, &proto.NSCommitReq{File: attr.ID, Kind: meta.NSCreate, Trace: tc}, nil)
	c.endPhase(ph)
	return attr, nil
}

// removeCrossShard removes leaf (inode id, homed on another shard than the
// parent's dirent):
//
//  1. publish an NSRemove intent on the home shard (validates emptiness
//     for directories and blocks new entries from appearing under them);
//  2. delete the dirent on the parent's shard — the commit point;
//  3. commit on the home shard, freeing the inode and its space.
func (c *Client) removeCrossShard(dir meta.FileID, leaf string, id meta.FileID) error {
	hl, pl := c.shardFor(id), c.shardFor(dir)
	saga, sagaStart := c.beginSaga()
	defer c.endSaga(obs.SpanNSRemove, saga, sagaStart)
	var attr proto.AttrResp
	// The stat leg carries no wire context (GetAttr is a plain read shared
	// with every other caller); its client-side phase span still shows the
	// leg in the stitched tree.
	ph, _ := c.beginPhase(saga, obs.SpanNSStat)
	err := c.callIdem(hl, proto.OpGetAttr, &proto.GetAttrReq{ID: id}, &attr)
	c.endPhase(ph)
	if err != nil {
		return mapRemote(err)
	}
	ph, tc := c.beginPhase(saga, obs.SpanNSPrepare)
	err = c.callIdem(hl, proto.OpNSPrepare, &proto.NSPrepareReq{
		File: id, Kind: meta.NSRemove, Type: attr.Type, Parent: dir, Name: leaf, Trace: tc,
	}, nil)
	c.endPhase(ph)
	if err != nil {
		return mapRemote(err)
	}
	ph, tc = c.beginPhase(saga, obs.SpanNSUnlink)
	err = c.callIdem(pl, proto.OpUnlinkRemote, &proto.UnlinkRemoteReq{Parent: dir, Name: leaf, Child: id, Trace: tc}, nil)
	c.endPhase(ph)
	if err != nil {
		// Definitive refusal (entry moved by a rename, intent conflict):
		// the remove never reached its commit point, so roll it back. An
		// ambiguous failure may hide a committed unlink — aborting then
		// would leave the inode alive with no dirent anywhere — so the
		// intent stays live for resolution to probe.
		if definitiveFailure(err) {
			ph, tc = c.beginPhase(saga, obs.SpanNSAbort)
			_ = c.callIdem(hl, proto.OpNSAbort, &proto.NSAbortReq{File: id, Kind: meta.NSRemove, Trace: tc}, nil)
			c.endPhase(ph)
		}
		return mapRemote(err)
	}
	ph, tc = c.beginPhase(saga, obs.SpanNSGraduate)
	_ = c.callIdem(hl, proto.OpNSCommit, &proto.NSCommitReq{File: id, Kind: meta.NSRemove, Trace: tc}, nil)
	c.endPhase(ph)
	return nil
}

// renameCrossShard moves a dirent between directories whose tables live on
// different shards. Only files move this way: a directory's subtree hangs
// off its own home shard, where neither parent shard could run a loop check.
//
//  1. publish NSRenameSrc on the source parent's shard (validates the
//     entry and freezes the inode's namespace state);
//  2. publish NSRenameDst on the destination parent's shard (reserves the
//     destination name);
//  3. commit the source intent — deleting the source dirent is the commit
//     point (resolution probes it: present → roll back, gone → forward);
//  4. commit the destination intent, inserting the new dirent.
func (c *Client) renameCrossShard(srcDir meta.FileID, srcLeaf string, dstDir meta.FileID, dstLeaf string) error {
	sl, dl := c.shardFor(srcDir), c.shardFor(dstDir)
	saga, sagaStart := c.beginSaga()
	defer c.endSaga(obs.SpanNSRename, saga, sagaStart)
	var ent proto.AttrResp
	// The lookup leg carries no wire context (a plain read shared with every
	// other caller); its client-side phase span still shows in the tree.
	ph, _ := c.beginPhase(saga, obs.SpanNSLookup)
	err := c.callIdem(sl, proto.OpLookup, &proto.LookupReq{Parent: srcDir, Name: srcLeaf}, &ent)
	c.endPhase(ph)
	if err != nil {
		return mapRemote(err)
	}
	if ent.Type == meta.TypeDir {
		return fmt.Errorf("client: cross-shard directory rename not supported: %q", srcLeaf)
	}
	ph, tc := c.beginPhase(saga, obs.SpanNSPrepareSrc)
	err = c.callIdem(sl, proto.OpNSPrepare, &proto.NSPrepareReq{
		File: ent.ID, Kind: meta.NSRenameSrc, Type: ent.Type, Parent: srcDir, Name: srcLeaf, Trace: tc,
	}, nil)
	c.endPhase(ph)
	if err != nil {
		return mapRemote(err)
	}
	ph, tc = c.beginPhase(saga, obs.SpanNSPrepareDst)
	err = c.callIdem(dl, proto.OpNSPrepare, &proto.NSPrepareReq{
		File: ent.ID, Kind: meta.NSRenameDst, Type: ent.Type, Parent: srcDir, Name: srcLeaf,
		DstParent: dstDir, DstName: dstLeaf, Trace: tc,
	}, nil)
	c.endPhase(ph)
	if err != nil {
		// Same rule as the other sagas: only a definitive refusal of the dst
		// reservation may unfreeze the source. If the dst intent might have
		// been published durably, dropping the src intent early would let
		// another operation move the source entry, after which resolution
		// would misread the dst probe and roll the insert forward.
		if definitiveFailure(err) {
			ph, tc = c.beginPhase(saga, obs.SpanNSAbort)
			_ = c.callIdem(sl, proto.OpNSAbort, &proto.NSAbortReq{File: ent.ID, Kind: meta.NSRenameSrc, Trace: tc}, nil)
			c.endPhase(ph)
		}
		return mapRemote(err)
	}
	ph, tc = c.beginPhase(saga, obs.SpanNSCommitSrc)
	err = c.callIdem(sl, proto.OpNSCommit, &proto.NSCommitReq{File: ent.ID, Kind: meta.NSRenameSrc, Trace: tc}, nil)
	c.endPhase(ph)
	if err != nil {
		// The commit point was not provably reached; both intents stand and
		// resolution decides by probing the source dirent.
		return mapRemote(err)
	}
	ph, tc = c.beginPhase(saga, obs.SpanNSCommitDst)
	_ = c.callIdem(dl, proto.OpNSCommit, &proto.NSCommitReq{File: ent.ID, Kind: meta.NSRenameDst, Trace: tc}, nil)
	c.endPhase(ph)
	return nil
}
