package obs_test

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"redbud/internal/alloc"
	"redbud/internal/blockdev"
	"redbud/internal/client"
	"redbud/internal/clock"
	"redbud/internal/mds"
	"redbud/internal/meta"
	"redbud/internal/netsim"
	"redbud/internal/obs"
	"redbud/internal/rpc"
)

// tracedRun assembles a minimal single-client Redbud cluster on a manual
// clock — zero-latency devices, instant links, one MDS daemon with a fixed
// per-op cost, synchronous commit — runs a fixed write workload, and returns
// the Chrome-trace export bytes. The shape is chosen so at most one
// goroutine sleeps on the clock at a time (every other actor is blocked on a
// channel handoff), which makes the span timeline, not just the span
// multiset, reproducible.
func tracedRun(t *testing.T) []byte {
	t.Helper()
	clk := clock.NewManual()

	// Clock driver: advance to the next deadline whenever anything sleeps.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if !clk.AdvanceToNext() {
				runtime.Gosched()
			}
		}
	}()

	tracer := obs.NewTracer(0)
	data := blockdev.New(blockdev.Config{Size: 1 << 30, Model: blockdev.ZeroLatency(), Clock: clk, Tracer: tracer})
	metaDev := blockdev.New(blockdev.Config{ID: 1000, Size: 64 << 20, Model: blockdev.ZeroLatency(), Clock: clk})
	store := meta.NewStore(meta.Config{
		AGs:     alloc.NewUniformAGSet(alloc.RoundRobin, 0, 1<<30, 4),
		Journal: meta.NewJournal(metaDev, 0, 32<<20),
		Clock:   clk,
		Tracer:  tracer,
	})
	srv := mds.New(mds.Config{Store: store, Clock: clk, Daemons: 1, OpCost: 40 * time.Microsecond, Tracer: tracer})

	net := netsim.NewNetwork(clk)
	net.SetTracer(tracer)
	net.AddHost("mds", netsim.Instant())
	lis, err := net.Listen("mds")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)

	net.AddHost("c0", netsim.Instant())
	conn, err := net.Dial("c0", "mds")
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(client.Config{
		Name:    "c0",
		MDS:     rpc.NewClient(conn, clk),
		Devices: map[uint32]client.BlockDevice{0: data},
		Clock:   clk,
		Mode:    client.SyncCommit,
		Tracer:  tracer,
	})

	payload := make([]byte, 4<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < 8; i++ {
		f, err := cl.Create(fmt.Sprintf("/f%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(payload, 0); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	lis.Close()
	srv.Close()
	data.Close()
	metaDev.Close()
	close(stop)
	wg.Wait()

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, tracer.Spans()); err != nil {
		t.Fatal(err)
	}
	if tracer.Dropped() != 0 {
		t.Fatalf("ring overflowed (%d dropped): grow the cap so runs compare fully", tracer.Dropped())
	}
	return buf.Bytes()
}

// TestTraceRunTwiceByteIdentical is the determinism acceptance test: two
// runs of the same seeded cluster export byte-identical trace JSON.
func TestTraceRunTwiceByteIdentical(t *testing.T) {
	a := tracedRun(t)
	b := tracedRun(t)
	if len(a) == 0 || !bytes.Contains(a, []byte(obs.SpanCommitRPC)) {
		t.Fatalf("trace missing commit spans:\n%.400s", a)
	}
	if !bytes.Equal(a, b) {
		la, lb := bytes.Split(a, []byte(",")), bytes.Split(b, []byte(","))
		n := min(len(la), len(lb))
		for i := 0; i < n; i++ {
			if !bytes.Equal(la[i], lb[i]) {
				t.Fatalf("trace exports differ (first divergence at field %d):\n  run1: %s\n  run2: %s", i, la[i], lb[i])
			}
		}
		t.Fatalf("trace exports differ in length: %d vs %d fields", len(la), len(lb))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
