package core

import (
	"sync/atomic"
	"time"
)

// CompoundConfig configures the adaptive compound-degree controller.
type CompoundConfig struct {
	// Fixed pins the degree (Figure 7 sweeps 1, 3, 6); 0 means adaptive.
	Fixed int
	// Max bounds the adaptive degree. The paper finds degrees beyond
	// three add little for I/O-bound workloads; 6 is a safe ceiling.
	Max int
	// Min is the adaptive floor (default 1).
	Min int
	// NetCongestion samples the smoothed queueing delay on the path to
	// the MDS (netsim.Network.CongestionWait).
	NetCongestion func() time.Duration
	// ServerLoad samples the MDS load byte piggybacked on RPC replies.
	ServerLoad func() uint8
	// CongestionThreshold is the queueing delay regarded as "congested".
	CongestionThreshold time.Duration
	// LoadThreshold is the server load regarded as "busy" (0-255).
	LoadThreshold uint8
}

// Compound adjusts the number of commit requests packed into one RPC
// according to the statuses of the network and the metadata server: degree
// rises while either is overloaded to cut per-message overheads, and decays
// otherwise to keep commit latency low (§IV-B).
type Compound struct {
	cfg    CompoundConfig
	degree atomic.Int32
}

// NewCompound returns a controller starting at the minimum degree.
func NewCompound(cfg CompoundConfig) *Compound {
	if cfg.Max < 1 {
		cfg.Max = 6
	}
	if cfg.Min < 1 {
		cfg.Min = 1
	}
	if cfg.Min > cfg.Max {
		cfg.Min = cfg.Max
	}
	if cfg.CongestionThreshold <= 0 {
		cfg.CongestionThreshold = 200 * time.Microsecond
	}
	if cfg.LoadThreshold == 0 {
		cfg.LoadThreshold = 128
	}
	c := &Compound{cfg: cfg}
	if cfg.Fixed > 0 {
		c.degree.Store(int32(cfg.Fixed))
	} else {
		c.degree.Store(int32(cfg.Min))
	}
	return c
}

// Degree returns the current compound degree.
func (c *Compound) Degree() int { return int(c.degree.Load()) }

// Tick re-evaluates the degree. Call it periodically (the commit daemons do,
// before each batch).
func (c *Compound) Tick() {
	if c.cfg.Fixed > 0 {
		return
	}
	congested := false
	if c.cfg.NetCongestion != nil && c.cfg.NetCongestion() > c.cfg.CongestionThreshold {
		congested = true
	}
	if c.cfg.ServerLoad != nil && c.cfg.ServerLoad() > c.cfg.LoadThreshold {
		congested = true
	}
	d := int(c.degree.Load())
	if congested {
		if d < c.cfg.Max {
			c.degree.Store(int32(d + 1))
		}
	} else if d > c.cfg.Min {
		c.degree.Store(int32(d - 1))
	}
}
