package proto

import (
	"testing"

	"redbud/internal/meta"
	"redbud/internal/wire"
)

// FuzzShardMap fuzzes the shard partition and its wire transport together:
// every inode resolves to exactly one in-range shard, resolution and
// placement are pure functions of their inputs (so a re-handshake can never
// move an inode), and the shard map a v3 hello reply carries survives the
// codec — including the trailing-optional truncations a version-skewed peer
// would produce.
func FuzzShardMap(f *testing.F) {
	f.Add(uint64(1), uint32(1), uint64(1), "f")
	f.Add(uint64(64), uint32(2), uint64(7), "dir")
	f.Add(uint64(1<<40), uint32(8), uint64(0), "")
	f.Add(uint64(12345), uint32(5), uint64(99), "a/b")

	f.Fuzz(func(t *testing.T, id uint64, shardsRaw uint32, inc uint64, name string) {
		n := int(shardsRaw%8) + 1
		file := meta.FileID(id)

		s := meta.ShardOf(file, n)
		if s < 0 || s >= n {
			t.Fatalf("ShardOf(%d, %d) = %d out of range", id, n, s)
		}
		if again := meta.ShardOf(file, n); again != s {
			t.Fatalf("ShardOf(%d, %d) unstable across re-resolution: %d then %d", id, n, s, again)
		}
		p := meta.PlaceShard(file, name, n)
		if p < 0 || p >= n {
			t.Fatalf("PlaceShard(%d, %q, %d) = %d out of range", id, name, n, p)
		}
		if again := meta.PlaceShard(file, name, n); again != p {
			t.Fatalf("PlaceShard(%d, %q, %d) unstable: %d then %d", id, name, n, again, p)
		}

		// The v3 handshake round-trips the shard coordinates exactly, and a
		// second decode of the same frame (a client re-handshaking after a
		// reconnect) reproduces the same map.
		in := &HelloResp{Incarnation: inc, ProtoVersion: ProtoV3, ShardIndex: uint32(s), ShardCount: uint32(n)}
		frame := wire.Encode(in)
		var out HelloResp
		if err := wire.Decode(frame, &out); err != nil {
			t.Fatalf("decode v3 hello: %v", err)
		}
		if out != *in {
			t.Fatalf("shard map mutated in transit: sent %+v, got %+v", *in, out)
		}
		var out2 HelloResp
		if err := wire.Decode(frame, &out2); err != nil {
			t.Fatalf("re-decode v3 hello: %v", err)
		}
		if out2 != out {
			t.Fatalf("re-handshake decoded a different map: %+v then %+v", out, out2)
		}

		// Truncating the frame at the optional shard-field boundary must
		// decode as a v2 reply with the single-shard default, and truncating
		// at the version boundary as a v1 reply — never as an error.
		r := wire.NewReader(frame)
		r.U64()
		verEnd := len(frame) - r.Remaining() + 4 // after Incarnation + ProtoVersion
		var v2 HelloResp
		if err := wire.Decode(frame[:verEnd], &v2); err != nil {
			t.Fatalf("decode at optional boundary: %v", err)
		}
		if v2.Incarnation != inc || v2.ShardIndex != 0 || v2.ShardCount != 1 {
			t.Fatalf("truncated-at-shard-fields reply decoded as %+v, want single-shard default", v2)
		}
		var v1 HelloResp
		if err := wire.Decode(frame[:verEnd-4], &v1); err != nil {
			t.Fatalf("decode v1 truncation: %v", err)
		}
		if v1.ProtoVersion != ProtoV1 || v1.ShardCount != 1 {
			t.Fatalf("version-less reply decoded as %+v, want v1 single-shard default", v1)
		}
	})
}
