// Package meta mirrors the locking structure of redbud's internal/meta so
// the lockorder analyzer can be exercised against both correct and inverted
// acquisition orders.
package meta

import (
	"sync"

	"rpc"
)

type delegation struct {
	mu sync.Mutex
}

// intentTable mirrors meta.intentTable: the early-visibility intent lock
// sits between the stripe and delegation levels.
type intentTable struct {
	mu sync.Mutex
}

// nsIntentTable mirrors meta.nsIntentTable: the cross-shard namespace
// intent lock ranks between the write-intent table and delegation.
type nsIntentTable struct {
	mu sync.Mutex
}

// Journal mirrors meta.Journal; Append is the instantaneous slot
// reservation at the bottom of the hierarchy.
type Journal struct{}

func (j *Journal) Append(rec []byte) func() error { return nil }

type Store struct {
	ns        sync.RWMutex
	stripes   [4]sync.RWMutex
	intents   *intentTable
	nsIntents *nsIntentTable
	deleg     delegation
	journal   *Journal
}

func (s *Store) stripe(id uint64) *sync.RWMutex {
	return &s.stripes[id%4]
}

// goodOrder follows the documented hierarchy: namespace, then stripe, then
// delegation, then the journal reservation; the durability wait runs only
// after every lock is released.
func goodOrder(s *Store, id uint64) error {
	s.ns.Lock()
	st := s.stripe(id)
	st.Lock()
	s.deleg.mu.Lock()
	wait := s.journal.Append(nil)
	s.deleg.mu.Unlock()
	st.Unlock()
	s.ns.Unlock()
	return wait()
}

// goodEarlyExit releases on the failure path before taking the stripe lock;
// the analyzer must not carry the terminated branch's state forward.
func goodEarlyExit(s *Store, id uint64, ok bool) {
	s.ns.RLock()
	if !ok {
		s.ns.RUnlock()
		return
	}
	st := s.stripe(id)
	st.Lock()
	st.Unlock()
	s.ns.RUnlock()
}

// goodIndexed locks a stripe by direct index after the namespace lock.
func goodIndexed(s *Store, i int) {
	s.ns.RLock()
	s.stripes[i].Lock()
	s.stripes[i].Unlock()
	s.ns.RUnlock()
}

// goodIntentUnderStripe publishes intents under a stripe lock and takes the
// delegation lock only after the intent lock is released — the documented
// order for the early-visibility path.
func goodIntentUnderStripe(s *Store, id uint64) {
	st := s.stripe(id)
	st.Lock()
	s.intents.mu.Lock()
	s.intents.mu.Unlock()
	s.deleg.mu.Lock()
	s.deleg.mu.Unlock()
	st.Unlock()
}

// goodNSIntentOrder runs the cross-shard publish path in the documented
// order: namespace, then the ns-intent table, then the journal reservation.
func goodNSIntentOrder(s *Store) error {
	s.ns.Lock()
	s.nsIntents.mu.Lock()
	s.nsIntents.mu.Unlock()
	wait := s.journal.Append(nil)
	s.ns.Unlock()
	return wait()
}

// goodIntentThenNSIntent releases the write-intent lock before taking the
// ns-intent lock; the ranks are adjacent but never nested in practice.
func goodIntentThenNSIntent(s *Store) {
	s.intents.mu.Lock()
	s.intents.mu.Unlock()
	s.nsIntents.mu.Lock()
	s.nsIntents.mu.Unlock()
}

// badIntentUnderNSIntent acquires the write-intent lock under the ns-intent
// lock — the write-intent table ranks above it.
func badIntentUnderNSIntent(s *Store) {
	s.nsIntents.mu.Lock()
	s.intents.mu.Lock() // want `inverts the lock hierarchy`
	s.intents.mu.Unlock()
	s.nsIntents.mu.Unlock()
}

// badNSIntentUnderDeleg acquires the ns-intent lock under delegation.
func badNSIntentUnderDeleg(s *Store) {
	s.deleg.mu.Lock()
	s.nsIntents.mu.Lock() // want `inverts the lock hierarchy`
	s.nsIntents.mu.Unlock()
	s.deleg.mu.Unlock()
}

// badRPCUnderNSIntent holds the ns-intent lock across an RPC round trip —
// the cross-shard protocol must publish intents before calling the peer
// shard, never while holding the table lock.
func badRPCUnderNSIntent(s *Store, c *rpc.Client) {
	s.nsIntents.mu.Lock()
	c.Call(1, nil, nil) // want `RPC Call while holding`
	s.nsIntents.mu.Unlock()
}

// badStripeUnderIntent acquires a stripe while holding the intent lock.
func badStripeUnderIntent(s *Store, id uint64) {
	s.intents.mu.Lock()
	s.stripe(id).Lock() // want `inverts the lock hierarchy`
	s.stripe(id).Unlock()
	s.intents.mu.Unlock()
}

// badIntentUnderDeleg acquires the intent lock under the delegation lock.
func badIntentUnderDeleg(s *Store) {
	s.deleg.mu.Lock()
	s.intents.mu.Lock() // want `inverts the lock hierarchy`
	s.intents.mu.Unlock()
	s.deleg.mu.Unlock()
}

// badRPCUnderIntent holds the intent lock across an RPC round trip.
func badRPCUnderIntent(s *Store, c *rpc.Client) {
	s.intents.mu.Lock()
	c.Call(1, nil, nil) // want `RPC Call while holding`
	s.intents.mu.Unlock()
}

// badInversion takes the namespace lock while holding a stripe.
func badInversion(s *Store, id uint64) {
	st := s.stripe(id)
	st.Lock()
	s.ns.Lock() // want `inverts the lock hierarchy`
	s.ns.Unlock()
	st.Unlock()
}

// badDelegThenStripe acquires a stripe under the delegation lock.
func badDelegThenStripe(s *Store, id uint64) {
	s.deleg.mu.Lock()
	s.stripe(id).Lock() // want `inverts the lock hierarchy`
	s.stripe(id).Unlock()
	s.deleg.mu.Unlock()
}

// badRPCUnderStripe holds a stripe lock across an RPC round trip.
func badRPCUnderStripe(s *Store, id uint64, c *rpc.Client) {
	st := s.stripe(id)
	st.Lock()
	c.Call(1, nil, nil) // want `RPC Call while holding`
	st.Unlock()
}

// badChannelUnderNS blocks on a channel receive under the namespace lock.
func badChannelUnderNS(s *Store, ch chan int) {
	s.ns.Lock()
	<-ch // want `channel receive while holding`
	s.ns.Unlock()
}

// goodWaitAfterUnlock receives from the durability channel only after all
// locks are released (the journalAppend closure pattern).
func goodWaitAfterUnlock(s *Store, id uint64, ch chan error) error {
	s.ns.Lock()
	st := s.stripe(id)
	st.Lock()
	st.Unlock()
	s.ns.Unlock()
	return <-ch
}

// goodGoroutine: a spawned goroutine starts with no locks held, so its
// channel receive is fine even though the spawner holds the namespace lock.
func goodGoroutine(s *Store, ch chan int) {
	s.ns.Lock()
	go func() {
		<-ch
	}()
	s.ns.Unlock()
}
