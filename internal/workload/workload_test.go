package workload

import (
	"math/rand"
	"testing"
	"time"

	"redbud/internal/clock"
	"redbud/internal/fsapi"
)

func TestSizeDistFixed(t *testing.T) {
	d := SizeDist{Mean: 32 << 10, Fixed: true}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		if got := d.sample(rng); got != 32<<10 {
			t.Fatalf("fixed sample = %d", got)
		}
	}
}

func TestSizeDistVariableBounds(t *testing.T) {
	d := SizeDist{Mean: 64 << 10}
	rng := rand.New(rand.NewSource(2))
	var sum int64
	const n = 2000
	for i := 0; i < n; i++ {
		v := d.sample(rng)
		if v < 4096 || v > 4*d.Mean {
			t.Fatalf("sample %d out of bounds", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < d.Mean/3 || mean > 2*d.Mean {
		t.Fatalf("sample mean %d far from %d", mean, d.Mean)
	}
}

func TestRunAgainstMemFS(t *testing.T) {
	spec := Fileserver(42)
	spec.Threads = 4
	spec.OpsPerThread = 50
	spec.Think = 0
	res, err := Run(fsapi.NewMemFS(), clock.Real(1), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 200 {
		t.Fatalf("ops = %d", res.Ops)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.BytesWritten == 0 || res.BytesRead == 0 {
		t.Fatalf("bytes = %d/%d", res.BytesWritten, res.BytesRead)
	}
	if res.Duration <= 0 || res.Throughput() <= 0 {
		t.Fatalf("duration=%v tput=%v", res.Duration, res.Throughput())
	}
}

func TestRunDeterministicOpsCount(t *testing.T) {
	for _, mk := range []func(int64) Spec{Varmail, Webproxy} {
		spec := mk(7)
		spec.Threads = 2
		spec.OpsPerThread = 30
		spec.Think = 0
		res, err := Run(fsapi.NewMemFS(), clock.Real(1), spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ops != 60 || res.Errors != 0 {
			t.Fatalf("%s: ops=%d errors=%d", spec.Name, res.Ops, res.Errors)
		}
		// All op kinds in the mix were exercised.
		for _, w := range spec.Mix {
			if w.Weight > 10 && res.Latency[w.Kind].Count == 0 {
				t.Fatalf("%s: op %v never ran", spec.Name, w.Kind)
			}
		}
	}
}

func TestXcdnSpecShape(t *testing.T) {
	s32 := Xcdn(32<<10, 1)
	if !s32.FileSize.Fixed || s32.FileSize.Mean != 32<<10 {
		t.Fatalf("spec = %+v", s32.FileSize)
	}
	if s32.Name != "xcdn-32K" {
		t.Fatalf("name = %s", s32.Name)
	}
	s1m := Xcdn(1<<20, 1)
	if s1m.Name != "xcdn-1M" {
		t.Fatalf("name = %s", s1m.Name)
	}
	if s1m.OpsPerThread >= s32.OpsPerThread {
		t.Fatal("1M spec should do fewer ops")
	}
	res, err := Run(fsapi.NewMemFS(), clock.Real(1), s32.Scale(0.05))
	if err != nil || res.Errors != 0 {
		t.Fatalf("xcdn run: %+v, %v", res, err)
	}
}

func TestScale(t *testing.T) {
	s := Fileserver(1)
	scaled := s.Scale(0.1)
	if scaled.OpsPerThread != s.OpsPerThread/10 {
		t.Fatalf("scaled ops = %d", scaled.OpsPerThread)
	}
	if same := s.Scale(0); same.OpsPerThread != s.OpsPerThread {
		t.Fatal("invalid factor changed spec")
	}
	tiny := Spec{OpsPerThread: 2, PrefillPerThread: 1}
	if got := tiny.Scale(0.01); got.OpsPerThread != 1 || got.PrefillPerThread != 1 {
		t.Fatalf("floor failed: %+v", got)
	}
}

func TestEmptyMixRejected(t *testing.T) {
	if _, err := Run(fsapi.NewMemFS(), clock.Real(1), Spec{Name: "empty"}); err == nil {
		t.Fatal("empty mix accepted")
	}
}

func TestRunBTVerifies(t *testing.T) {
	spec := BTSpec{Ranks: 3, Steps: 5, BlockSize: 8 << 10, Seed: 9}
	res, err := RunBT([]fsapi.FileSystem{fsapi.NewMemFS()}, clock.Real(1), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 15 {
		t.Fatalf("ops = %d", res.Ops)
	}
	if res.BytesWritten != spec.FileSize() || res.BytesRead != spec.FileSize() {
		t.Fatalf("bytes = %d/%d, want %d", res.BytesWritten, res.BytesRead, spec.FileSize())
	}
}

func TestRunBTBadSpec(t *testing.T) {
	if _, err := RunBT([]fsapi.FileSystem{fsapi.NewMemFS()}, clock.Real(1), BTSpec{}); err == nil {
		t.Fatal("bad spec accepted")
	}
	if _, err := RunBT(nil, clock.Real(1), BTSpec{Ranks: 1, Steps: 1, BlockSize: 1}); err == nil {
		t.Fatal("bad spec accepted")
	}
}

// collectiveFile wraps a MemFS file so it advertises WriteCollective; RunBT
// must take the collective path and count one op per step.
type collectiveFile struct {
	fsapi.File
	calls *int
}

func (f collectiveFile) WriteCollective(blocks []fsapi.CollectiveBlock) error {
	*f.calls++
	for _, b := range blocks {
		if _, err := f.WriteAt(b.Data, b.Off); err != nil {
			return err
		}
	}
	return nil
}

func TestRunBTUsesCollectivePath(t *testing.T) {
	calls := 0
	cfs := &collectiveFSWrap{MemFS: fsapi.NewMemFS(), calls: &calls}
	spec := BTSpec{Ranks: 4, Steps: 6, BlockSize: 4 << 10, Seed: 3}
	res, err := RunBT([]fsapi.FileSystem{cfs}, clock.Real(1), spec)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 6 {
		t.Fatalf("collective calls = %d, want 6", calls)
	}
	if res.Ops != 6 {
		t.Fatalf("ops = %d, want 6 (one per step)", res.Ops)
	}
}

type collectiveFSWrap struct {
	*fsapi.MemFS
	calls *int
}

func (c *collectiveFSWrap) Create(path string) (fsapi.File, error) {
	f, err := c.MemFS.Create(path)
	if err != nil {
		return nil, err
	}
	return collectiveFile{File: f, calls: c.calls}, nil
}

func TestResultHelpers(t *testing.T) {
	r := Result{Duration: 2 * time.Second, Ops: 100, BytesWritten: 1e6, BytesRead: 1e6}
	if got := r.Throughput(); got != 50 {
		t.Fatalf("throughput = %v", got)
	}
	if got := r.MBps(); got != 1 {
		t.Fatalf("MBps = %v", got)
	}
	if (Result{}).Throughput() != 0 || (Result{}).MBps() != 0 {
		t.Fatal("zero-duration helpers nonzero")
	}
	r.Latency[OpRead].Count = 4
	r.Latency[OpRead].Total = 4 * time.Millisecond
	if r.MeanLatency(OpRead) != time.Millisecond {
		t.Fatalf("mean = %v", r.MeanLatency(OpRead))
	}
	if r.MeanLatency(OpDelete) != 0 {
		t.Fatal("empty mean nonzero")
	}
}

func TestOpKindStrings(t *testing.T) {
	for k := OpKind(0); k < nOpKinds; k++ {
		if k.String() == "?" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
}
