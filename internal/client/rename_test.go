package client

import (
	"bytes"
	"errors"
	"testing"

	"redbud/internal/fsapi"
)

func TestRenameFile(t *testing.T) {
	tc := newCluster(t)
	c := tc.client(DelayedCommit, 16<<20)
	defer c.Close()
	data := pattern(8192, 4)
	writeFile(t, c, "/old.bin", data)
	if err := c.Rename("/old.bin", "/new.bin"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/old.bin"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("old path still visible: %v", err)
	}
	got := readFile(t, c, "/new.bin")
	if !bytes.Equal(got, data) {
		t.Fatal("content changed across rename")
	}
}

func TestRenameAcrossDirectories(t *testing.T) {
	tc := newCluster(t)
	c := tc.client(DelayedCommit, 0)
	defer c.Close()
	c.Mkdir("/a")
	c.Mkdir("/b")
	writeFile(t, c, "/a/f", pattern(100, 1))
	if err := c.Rename("/a/f", "/b/g"); err != nil {
		t.Fatal(err)
	}
	ents, _ := c.ReadDir("/b")
	if len(ents) != 1 || ents[0].Name != "g" {
		t.Fatalf("entries = %+v", ents)
	}
	if ents, _ := c.ReadDir("/a"); len(ents) != 0 {
		t.Fatalf("source dir not empty: %+v", ents)
	}
}

func TestRenameDirectorySubtree(t *testing.T) {
	tc := newCluster(t)
	c := tc.client(SyncCommit, 0)
	defer c.Close()
	c.Mkdir("/proj")
	c.Mkdir("/proj/src")
	writeFile(t, c, "/proj/src/main.go", pattern(50, 2))
	if err := c.Rename("/proj", "/project"); err != nil {
		t.Fatal(err)
	}
	got := readFile(t, c, "/project/src/main.go")
	if len(got) != 50 {
		t.Fatalf("subtree content lost: %d bytes", len(got))
	}
	// Moving a directory into its own subtree is rejected.
	if err := c.Rename("/project", "/project/src/inner"); err == nil {
		t.Fatal("directory moved into own subtree")
	}
}

func TestRenameErrors(t *testing.T) {
	tc := newCluster(t)
	c := tc.client(SyncCommit, 0)
	defer c.Close()
	writeFile(t, c, "/x", pattern(10, 1))
	writeFile(t, c, "/y", pattern(10, 2))
	if err := c.Rename("/ghost", "/z"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("missing src err = %v", err)
	}
	if err := c.Rename("/x", "/y"); !errors.Is(err, fsapi.ErrExist) {
		t.Fatalf("existing dst err = %v", err)
	}
	if err := c.Rename("/x", "/nodir/z"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("missing dst parent err = %v", err)
	}
}

func TestRenameWithPendingCommit(t *testing.T) {
	// A file whose delayed commit is still queued can be renamed: commits
	// address inodes, and the drain afterwards must land on the new name.
	tc := newCluster(t)
	c := tc.client(DelayedCommit, 16<<20)
	defer c.Close()
	f, err := c.Create("/pending")
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(4096, 9)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := c.Rename("/pending", "/landed"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	r := tc.client(SyncCommit, 0)
	defer r.Close()
	got := readFile(t, r, "/landed")
	if !bytes.Equal(got, data) {
		t.Fatal("pending data lost across rename")
	}
}
