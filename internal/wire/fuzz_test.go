package wire

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzFrameDecode fuzzes the RPC response-frame decode sequence (message ID,
// kind, status, load, length-prefixed payload) against two properties: a
// failed decode reports a wrapped ErrTruncated/ErrTooLong sentinel, and a
// successful decode round-trips — re-encoding the decoded fields reproduces
// the consumed bytes exactly.
func FuzzFrameDecode(f *testing.F) {
	// Seeds: the two malformed response frames from the rpc ErrBadFrame
	// tests (truncated after the message ID; payload length overrunning the
	// frame), plus a well-formed frame.
	var short Buffer
	short.PutU64(7)
	f.Add(short.Bytes())

	var overrun Buffer
	overrun.PutU64(7)
	overrun.PutU8(1)
	overrun.PutU16(0)
	overrun.PutU8(0)
	overrun.PutU32(1 << 20) // payload length with no payload bytes
	f.Add(overrun.Bytes())

	var good Buffer
	good.PutU64(42)
	good.PutU8(1)
	good.PutU16(3)
	good.PutU8(200)
	good.PutBytes([]byte("payload"))
	f.Add(good.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		id := r.U64()
		kind := r.U8()
		status := r.U16()
		load := r.U8()
		payload := r.BytesRef()
		if err := r.Err(); err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrTooLong) {
				t.Fatalf("decode error is not ErrTruncated/ErrTooLong: %v", err)
			}
			return
		}
		var b Buffer
		b.PutU64(id)
		b.PutU8(kind)
		b.PutU16(status)
		b.PutU8(load)
		b.PutBytes(payload)
		consumed := len(data) - r.Remaining()
		if !bytes.Equal(b.Bytes(), data[:consumed]) {
			t.Fatalf("round-trip mismatch:\n consumed: %x\n re-encoded: %x", data[:consumed], b.Bytes())
		}
	})
}
