package nfs3

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"redbud/internal/blockdev"
	"redbud/internal/clock"
	"redbud/internal/fsapi"
	"redbud/internal/netsim"
)

// newMount builds a server plus one mounted client over an instant network.
func newMount(t *testing.T) (*Client, *Server, *blockdev.Device) {
	t.Helper()
	clk := clock.Real(1)
	disk := blockdev.New(blockdev.Config{Size: 1 << 30, Model: blockdev.ZeroLatency(), Clock: clk})
	t.Cleanup(disk.Close)
	srv := NewServer(ServerConfig{Disk: disk, Clock: clk})
	t.Cleanup(srv.Close)
	n := netsim.NewNetwork(clk)
	n.AddHost("nfs", netsim.Instant())
	n.AddHost("c", netsim.Instant())
	l, err := n.Listen("nfs")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { l.Close() })
	conn, err := n.Dial("c", "nfs")
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn, clk)
	t.Cleanup(func() { c.Close() })
	return c, srv, disk
}

func TestWriteReadRoundTrip(t *testing.T) {
	c, _, _ := newMount(t)
	f, err := c.Create("/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("nfs!"), 3000)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	n, err := f.ReadAt(got, 0)
	if err != nil || n != len(data) {
		t.Fatalf("read = %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseCommitsToDisk(t *testing.T) {
	c, _, disk := newMount(t)
	f, _ := c.Create("/durable")
	f.WriteAt(bytes.Repeat([]byte{7}, 8192), 0)
	before := disk.Stats().BytesWrite
	if before != 0 {
		t.Fatalf("unstable write hit the disk early: %d", before)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := disk.Stats().BytesWrite; got < 8192 {
		t.Fatalf("commit flushed only %d bytes", got)
	}
}

func TestNamespaceOps(t *testing.T) {
	c, _, _ := newMount(t)
	if err := c.Mkdir("/dir"); err != nil {
		t.Fatal(err)
	}
	f, err := c.Create("/dir/file")
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("xyz"), 0)
	f.Close()
	info, err := c.Stat("/dir/file")
	if err != nil || info.Size != 3 || info.Dir {
		t.Fatalf("stat = %+v, %v", info, err)
	}
	ents, err := c.ReadDir("/dir")
	if err != nil || len(ents) != 1 || ents[0].Name != "file" {
		t.Fatalf("readdir = %+v, %v", ents, err)
	}
	if err := c.Remove("/dir/file"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/dir/file"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("stat removed = %v", err)
	}
	if err := c.Remove("/dir"); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	c, _, _ := newMount(t)
	if _, err := c.Open("/ghost"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("open missing = %v", err)
	}
	c.Create("/dup")
	if _, err := c.Create("/dup"); !errors.Is(err, fsapi.ErrExist) {
		t.Fatalf("dup create = %v", err)
	}
	c.Mkdir("/d")
	if _, err := c.Open("/d"); !errors.Is(err, fsapi.ErrIsDir) {
		t.Fatalf("open dir = %v", err)
	}
	c.Create("/d/inner")
	if err := c.Remove("/d"); err == nil {
		t.Fatal("removed non-empty dir")
	}
}

func TestAppendAndSize(t *testing.T) {
	c, _, _ := newMount(t)
	f, _ := c.Create("/log")
	for i := 0; i < 5; i++ {
		off, err := f.Append([]byte("0123456789"))
		if err != nil || off != int64(i*10) {
			t.Fatalf("append %d: off=%d err=%v", i, off, err)
		}
	}
	if f.Size() != 50 {
		t.Fatalf("size = %d", f.Size())
	}
}

func TestAllDataFlowsThroughServer(t *testing.T) {
	// The architectural property that bottlenecks NFS3: a second client
	// reads what the first wrote, all via server memory.
	clk := clock.Real(1)
	disk := blockdev.New(blockdev.Config{Size: 1 << 30, Model: blockdev.ZeroLatency(), Clock: clk})
	defer disk.Close()
	srv := NewServer(ServerConfig{Disk: disk, Clock: clk})
	defer srv.Close()
	n := netsim.NewNetwork(clk)
	n.AddHost("nfs", netsim.Instant())
	l, _ := n.Listen("nfs")
	defer l.Close()
	go srv.Serve(l)

	mount := func(host string) *Client {
		n.AddHost(host, netsim.Instant())
		conn, err := n.Dial(host, "nfs")
		if err != nil {
			t.Fatal(err)
		}
		return NewClient(conn, clk)
	}
	w, r := mount("w"), mount("r")
	defer w.Close()
	defer r.Close()
	f, _ := w.Create("/shared")
	data := bytes.Repeat([]byte{9}, 5000)
	f.WriteAt(data, 0)
	// Visible to the other client immediately (single server, no
	// distributed update).
	g, err := r.Open("/shared")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5000)
	if n, err := g.ReadAt(got, 0); err != nil || n != 5000 {
		t.Fatalf("read = %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-client mismatch")
	}
}

func TestConcurrentClients(t *testing.T) {
	c, _, _ := newMount(t)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				path := fmt.Sprintf("/f-%d-%d", g, i)
				f, err := c.Create(path)
				if err != nil {
					t.Error(err)
					return
				}
				payload := bytes.Repeat([]byte{byte(g)}, 1000)
				f.WriteAt(payload, 0)
				got := make([]byte, 1000)
				f.ReadAt(got, 0)
				if !bytes.Equal(got, payload) {
					t.Errorf("%s mismatch", path)
				}
				f.Close()
			}
		}()
	}
	wg.Wait()
	if c.RPCs() == 0 {
		t.Fatal("no RPCs counted")
	}
}

func TestRemoveFreesDiskSpace(t *testing.T) {
	c, srv, _ := newMount(t)
	f, _ := c.Create("/bulky")
	f.WriteAt(bytes.Repeat([]byte{1}, 64<<10), 0)
	f.Close() // flush
	free1 := srv.ag.FreeBytes()
	if err := c.Remove("/bulky"); err != nil {
		t.Fatal(err)
	}
	if free2 := srv.ag.FreeBytes(); free2 <= free1 {
		t.Fatalf("remove did not free space: %d -> %d", free1, free2)
	}
}

func TestSparseReadZeros(t *testing.T) {
	c, _, _ := newMount(t)
	f, _ := c.Create("/sparse")
	f.WriteAt([]byte("end"), 10000)
	got := make([]byte, 100)
	n, err := f.ReadAt(got, 0)
	if err != nil || n != 100 {
		t.Fatalf("read = %d, %v", n, err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
	// Read past EOF.
	if n, _ := f.ReadAt(got, 20000); n != 0 {
		t.Fatalf("past-EOF read = %d", n)
	}
}

func TestDoubleClientClose(t *testing.T) {
	c, _, _ := newMount(t)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); !errors.Is(err, fsapi.ErrClosed) {
		t.Fatalf("double close = %v", err)
	}
}

func TestRename(t *testing.T) {
	c, _, _ := newMount(t)
	c.Mkdir("/a")
	f, _ := c.Create("/a/old")
	f.WriteAt([]byte("xyz"), 0)
	f.Close()
	if err := c.Rename("/a/old", "/new"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/a/old"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatal("old path visible")
	}
	info, err := c.Stat("/new")
	if err != nil || info.Size != 3 {
		t.Fatalf("stat = %+v, %v", info, err)
	}
	if err := c.Rename("/ghost", "/x"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("missing src: %v", err)
	}
	c.Create("/taken")
	if err := c.Rename("/new", "/taken"); !errors.Is(err, fsapi.ErrExist) {
		t.Fatalf("existing dst: %v", err)
	}
}
