package rpc

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"redbud/internal/clock"
	"redbud/internal/netsim"
	"redbud/internal/wire"
)

const (
	opEcho uint16 = iota + 1
	opAdd
	opFail
	opSlow
)

// testHandler: opEcho echoes, opAdd sums two u32s, opFail errors, opSlow
// sleeps (for queue-pressure tests; uses the real clock, short).
func testHandler(op uint16, body []byte) ([]byte, error) {
	switch op {
	case opEcho:
		out := make([]byte, len(body))
		copy(out, body)
		return out, nil
	case opAdd:
		r := wire.NewReader(body)
		a, b := r.U32(), r.U32()
		if err := r.Err(); err != nil {
			return nil, err
		}
		var out wire.Buffer
		out.PutU32(a + b)
		return out.Bytes(), nil
	case opFail:
		return nil, errors.New("deliberate failure")
	case opSlow:
		time.Sleep(20 * time.Millisecond)
		return nil, nil
	}
	return nil, fmt.Errorf("unknown op %d", op)
}

// newPair builds a connected client/server over an instant simulated net.
func newPair(t *testing.T, cfg ServerConfig) (*Client, *Server) {
	t.Helper()
	if cfg.Handler == nil {
		cfg.Handler = testHandler
	}
	n := netsim.NewNetwork(clock.Real(1))
	n.AddHost("client", netsim.Instant())
	n.AddHost("mds", netsim.Instant())
	l, err := n.Listen("mds")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(cfg)
	go srv.Serve(l)
	conn, err := n.Dial("client", "mds")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn, clock.Real(1))
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
		l.Close()
	})
	return cli, srv
}

func TestCallRawEcho(t *testing.T) {
	cli, _ := newPair(t, ServerConfig{})
	got, err := cli.CallRaw(opEcho, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	if cli.Calls() != 1 {
		t.Fatalf("calls = %d", cli.Calls())
	}
}

type addReq struct{ A, B uint32 }

func (m *addReq) MarshalWire(b *wire.Buffer) { b.PutU32(m.A); b.PutU32(m.B) }

type addResp struct{ Sum uint32 }

func (m *addResp) UnmarshalWire(r *wire.Reader) error { m.Sum = r.U32(); return nil }

func TestTypedCall(t *testing.T) {
	cli, _ := newPair(t, ServerConfig{})
	var resp addResp
	if err := cli.Call(opAdd, &addReq{A: 2, B: 40}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Sum != 42 {
		t.Fatalf("sum = %d", resp.Sum)
	}
}

func TestCallNilBodies(t *testing.T) {
	cli, _ := newPair(t, ServerConfig{})
	if err := cli.Call(opEcho, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteError(t *testing.T) {
	cli, _ := newPair(t, ServerConfig{})
	_, err := cli.CallRaw(opFail, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if re.Message != "deliberate failure" {
		t.Fatalf("message = %q", re.Message)
	}
	// The connection survives a remote error.
	if _, err := cli.CallRaw(opEcho, []byte("still alive")); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	cli, _ := newPair(t, ServerConfig{Daemons: 8})
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp addResp
			a, b := uint32(i), uint32(i*3)
			if err := cli.Call(opAdd, &addReq{A: a, B: b}, &resp); err != nil {
				t.Error(err)
				return
			}
			if resp.Sum != a+b {
				t.Errorf("sum(%d,%d) = %d", a, b, resp.Sum)
			}
		}()
	}
	wg.Wait()
}

func TestCompound(t *testing.T) {
	cli, srv := newPair(t, ServerConfig{})
	enc := func(a, b uint32) []byte { return wire.Encode(&addReq{A: a, B: b}) }
	results, err := cli.Compound([]SubOp{
		{Op: opAdd, Body: enc(1, 2)},
		{Op: opFail},
		{Op: opAdd, Body: enc(10, 20)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	var r0 addResp
	if err := wire.Decode(results[0].Body, &r0); err != nil || r0.Sum != 3 {
		t.Fatalf("sub0: %v sum=%d", err, r0.Sum)
	}
	var re *RemoteError
	if !errors.As(results[1].Err, &re) || re.Op != opFail {
		t.Fatalf("sub1 err = %v", results[1].Err)
	}
	var r2 addResp
	if err := wire.Decode(results[2].Body, &r2); err != nil || r2.Sum != 30 {
		t.Fatalf("sub2: %v sum=%d", err, r2.Sum)
	}
	// One RPC processed, three sub-ops executed.
	if srv.Processed() != 1 || srv.SubOps() != 3 {
		t.Fatalf("processed=%d subops=%d", srv.Processed(), srv.SubOps())
	}
}

func TestCompoundEmpty(t *testing.T) {
	cli, _ := newPair(t, ServerConfig{})
	res, err := cli.Compound(nil)
	if err != nil || res != nil {
		t.Fatalf("empty compound: %v %v", res, err)
	}
}

func TestCompoundRoundTripEncoding(t *testing.T) {
	ops := []SubOp{{Op: 7, Body: []byte("abc")}, {Op: 9, Body: nil}}
	dec, err := decodeCompound(encodeCompound(ops))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 2 || dec[0].Op != 7 || string(dec[0].Body) != "abc" || dec[1].Op != 9 {
		t.Fatalf("decoded %+v", dec)
	}
	if _, err := decodeCompound([]byte{9}); err == nil {
		t.Fatal("truncated compound accepted")
	}
	// Reply with mismatched count must be rejected.
	rep := encodeCompoundReply([]SubResult{{Body: []byte("x")}})
	if _, err := decodeCompoundReply(rep, ops); err == nil {
		t.Fatal("mismatched compound reply accepted")
	}
}

func TestServerLoadPiggyback(t *testing.T) {
	cli, _ := newPair(t, ServerConfig{Daemons: 1})
	if _, err := cli.CallRaw(opEcho, nil); err != nil {
		t.Fatal(err)
	}
	// After a single sequential call the server is idle.
	if load := cli.ServerLoad(); load > 64 {
		t.Fatalf("idle server load = %d", load)
	}
	if cli.MeanRTT() <= 0 {
		t.Fatal("RTT not observed")
	}
}

func TestServerLoadUnderPressure(t *testing.T) {
	srv := NewServer(ServerConfig{Handler: testHandler, Daemons: 1, QueueCap: 256})
	defer srv.Close()
	// Saturate the single daemon directly through the queue bookkeeping:
	// load reflects inflight + queued work.
	if srv.Load() != 0 {
		t.Fatalf("idle load = %d", srv.Load())
	}
	cliSide, srvSide := localPair(t)
	go srv.ServeConn(srvSide)
	cli := NewClient(cliSide, clock.Real(1))
	defer cli.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli.CallRaw(opSlow, nil)
		}()
	}
	// Wait until at least some calls are queued, then check the load.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Load() > 100 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if srv.Load() <= 100 {
		t.Fatalf("saturated server load = %d", srv.Load())
	}
	wg.Wait()
}

// localPair returns two connected Conn halves over an instant network.
func localPair(t *testing.T) (netsim.Conn, netsim.Conn) {
	t.Helper()
	n := netsim.NewNetwork(clock.Real(1))
	n.AddHost("a", netsim.Instant())
	n.AddHost("b", netsim.Instant())
	l, err := n.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		c   netsim.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	a, err := n.Dial("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	return a, r.c
}

func TestClientCloseFailsPending(t *testing.T) {
	cli, _ := newPair(t, ServerConfig{Daemons: 1})
	done := make(chan error, 1)
	go func() {
		_, err := cli.CallRaw(opSlow, nil)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cli.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("pending call survived close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call not failed on close")
	}
	if _, err := cli.CallRaw(opEcho, nil); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("call after close err = %v", err)
	}
}

func TestOpCostChargesTime(t *testing.T) {
	mc := clock.NewManual()
	srv := NewServer(ServerConfig{Handler: testHandler, Daemons: 1, OpCost: 10 * time.Millisecond, Clock: mc})
	defer srv.Close()
	defer mc.Advance(time.Hour)
	cliSide, srvSide := localPair(t)
	go srv.ServeConn(srvSide)
	cli := NewClient(cliSide, clock.Real(1))
	defer cli.Close()

	done := make(chan error, 1)
	go func() {
		_, err := cli.CallRaw(opEcho, nil)
		done <- err
	}()
	// The daemon must be sleeping on the manual clock.
	for mc.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("call completed before op cost elapsed")
	case <-time.After(10 * time.Millisecond):
	}
	mc.Advance(10 * time.Millisecond)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestContentionInflatesOpCost(t *testing.T) {
	base := ServerConfig{Handler: testHandler, OpCost: time.Millisecond, ContentionPerDaemon: 0.1}
	s1 := NewServer(withDaemons(base, 1))
	s16 := NewServer(withDaemons(base, 16))
	defer s1.Close()
	defer s16.Close()
	if c1, c16 := s1.opCost(), s16.opCost(); c16 <= c1 {
		t.Fatalf("contention not applied: 1 daemon %v, 16 daemons %v", c1, c16)
	}
}

func withDaemons(c ServerConfig, n int) ServerConfig { c.Daemons = n; return c }

func TestNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewServer with nil handler did not panic")
		}
	}()
	NewServer(ServerConfig{})
}

func TestUnknownOpReturnsError(t *testing.T) {
	cli, _ := newPair(t, ServerConfig{})
	if _, err := cli.CallRaw(999, nil); err == nil {
		t.Fatal("unknown op succeeded")
	}
}

// TestClientMalformedResponseFailsCall exercises the readLoop's handling of
// damaged response frames. The seed silently dropped them, leaving the
// matching caller hung until the connection died; now the call fails with
// ErrBadFrame and the frame is counted.
func TestClientMalformedResponseFailsCall(t *testing.T) {
	cliConn, srvConn := localPair(t)
	cli := NewClient(cliConn, clock.Real(1))
	defer cli.Close()

	// Fake server: read the request, echo back a frame truncated after the
	// message ID — too short for a response header.
	go func() {
		frame, err := srvConn.Recv()
		if err != nil {
			return
		}
		var short wire.Buffer
		short.PutU64(wire.NewReader(frame).U64()) // msgID only, no kind/status
		_ = srvConn.Send(short.Bytes())
	}()

	if _, err := cli.CallRaw(opEcho, []byte("x")); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("call on truncated response: err = %v, want ErrBadFrame", err)
	}
	if n := cli.BadFrames(); n != 1 {
		t.Fatalf("BadFrames = %d, want 1", n)
	}
}

// TestClientTruncatedPayloadFailsCall covers a frame whose header parses but
// whose length-prefixed payload overruns the frame.
func TestClientTruncatedPayloadFailsCall(t *testing.T) {
	cliConn, srvConn := localPair(t)
	cli := NewClient(cliConn, clock.Real(1))
	defer cli.Close()

	go func() {
		frame, err := srvConn.Recv()
		if err != nil {
			return
		}
		var b wire.Buffer
		b.PutU64(wire.NewReader(frame).U64())
		b.PutU8(kindResponse)
		b.PutU16(0)       // status OK
		b.PutU8(0)        // load
		b.PutU32(1 << 20) // payload length with no payload bytes
		_ = srvConn.Send(b.Bytes())
	}()

	if _, err := cli.CallRaw(opEcho, nil); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("call on truncated payload: err = %v, want ErrBadFrame", err)
	}
	if n := cli.BadFrames(); n != 1 {
		t.Fatalf("BadFrames = %d, want 1", n)
	}
}
