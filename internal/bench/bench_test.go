package bench

import (
	"bytes"
	"fmt"
	"testing"

	"redbud/internal/workload"
)

// smokeOptions is small enough for CI but large enough that the shapes of
// the paper's figures emerge.
func smokeOptions() Options {
	o := DefaultOptions()
	o.Clients = 3
	o.Scale = 0.005
	o.SizeFactor = 0.15
	return o
}

func TestBuildAndCloseAllSystems(t *testing.T) {
	opt := TestOptions()
	for _, sys := range []System{SysPVFS2, SysNFS3, SysRedbud, SysRedbudDC, SysRedbudDCSD} {
		c := Build(sys, opt)
		if len(c.Mounts) != opt.Clients {
			t.Fatalf("%s: %d mounts", sys, len(c.Mounts))
		}
		c.Close()
	}
}

func TestRunDistributedAggregates(t *testing.T) {
	opt := TestOptions()
	c := Build(SysRedbudDCSD, opt)
	defer c.Close()
	spec := workload.Xcdn(32<<10, 1)
	spec.Threads = 2
	spec.OpsPerThread = 10
	spec.PrefillPerThread = 2
	res, err := RunDistributed(c, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	wantOps := int64(opt.Clients * 2 * 10)
	if res.Ops != wantOps {
		t.Fatalf("ops = %d, want %d", res.Ops, wantOps)
	}
	if res.Duration <= 0 || res.Throughput() <= 0 {
		t.Fatalf("duration %v", res.Duration)
	}
}

func TestSystemStrings(t *testing.T) {
	for _, sys := range []System{SysPVFS2, SysNFS3, SysRedbud, SysRedbudDC, SysRedbudDCSD} {
		if sys.String() == "?" {
			t.Fatalf("system %d unnamed", sys)
		}
	}
	if System(99).String() != "?" {
		t.Fatal("unknown system named")
	}
}

// TestFig4Shape checks the headline mechanism: delayed commit introduces
// I/O merges, and space delegation multiplies them.
func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	rows, err := Fig4(smokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintFig4(&buf, rows)
	t.Log("\n" + buf.String())
	for _, r := range rows {
		orig, dc, sd := r.Ratio[SysRedbud], r.Ratio[SysRedbudDC], r.Ratio[SysRedbudDCSD]
		// Original Redbud: application threads serialize their own
		// ordered writes, so merges are rare accidents of inter-thread
		// adjacency (the paper reports ~none).
		if orig > 0.2 {
			t.Errorf("size %d: original Redbud merge ratio %.3f too high", r.FileSize, orig)
		}
		if dc <= orig {
			t.Errorf("size %d: delayed commit (%.3f) does not add merges over original (%.3f)", r.FileSize, dc, orig)
		}
		// The paper: space delegation improves the merge ratio 2.8-5.9x
		// over delayed commit alone. Require at least 2x.
		if sd < 2*dc {
			t.Errorf("size %d: space delegation (%.3f) < 2x delayed commit (%.3f)", r.FileSize, sd, dc)
		}
	}
}

// TestFig7Shape checks that compounding pays most with few server daemons.
func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	opt := smokeOptions()
	opt.SizeFactor = 0.1
	cells, err := Fig7(opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintFig7(&buf, cells)
	t.Log("\n" + buf.String())
	get := func(d, k int) float64 {
		for _, c := range cells {
			if c.Daemons == d && c.Degree == k {
				return c.PerClient
			}
		}
		t.Fatalf("missing cell %d/%d", d, k)
		return 0
	}
	// At smoke scale the MDS is not loaded enough for the compounding win
	// (or the daemon sweep) to separate from scheduler noise — the
	// full-scale run recorded in EXPERIMENTS.md is the evidence for the
	// shape. Here: every cell of the sweep must have been measured.
	for _, d := range []int{1, 8, 16} {
		for _, k := range []int{1, 3, 6} {
			if get(d, k) <= 0 {
				t.Errorf("cell daemons=%d degree=%d empty", d, k)
			}
		}
	}
}

func TestFig6Traces(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	opt := smokeOptions()
	opt.SizeFactor = 0.2
	traces, err := Fig6(opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintFig6(&buf, traces)
	t.Log("\n" + buf.String())
	if len(traces) != 4 {
		t.Fatalf("traces = %d", len(traces))
	}
	for _, tr := range traces {
		if tr.Threads.Len() == 0 || tr.QueueLen.Len() == 0 {
			t.Errorf("%s: empty series", tr.Workload)
		}
		if tr.MaxThr < 1 {
			t.Errorf("%s: no threads observed", tr.Workload)
		}
	}
}

func TestFig5Panels(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	opt := smokeOptions()
	opt.SizeFactor = 0.1
	panels, err := Fig5(opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintFig5(&buf, panels)
	t.Log("\n" + buf.String())
	if len(panels) != 6 {
		t.Fatalf("panels = %d", len(panels))
	}
	// Space delegation must cut seek distance per dispatch vs original
	// at 32 KiB (the paper's "few seek operations" panel c).
	seekRate := func(sys System) float64 {
		for _, p := range panels {
			if p.System == sys && p.FileSize == 32<<10 {
				if p.Summary.Dispatches == 0 {
					return 0
				}
				return float64(p.Summary.SeekBytes) / float64(p.Summary.Dispatches)
			}
		}
		t.Fatalf("panel for %v missing", sys)
		return 0
	}
	if sd, orig := seekRate(SysRedbudDCSD), seekRate(SysRedbud); sd >= orig {
		t.Errorf("delegation seek bytes/dispatch %.0f not below original %.0f", sd, orig)
	}
	for _, p := range panels {
		if len(p.Series) == 0 {
			t.Errorf("%v/%s: empty seek series", p.System, sizeLabel(p.FileSize))
		}
	}
}

func ExamplePrintFig7() {
	PrintFig7(new(bytes.Buffer), nil)
	fmt.Println("ok")
	// Output: ok
}

// TestBTConflictReadsAcrossSystems runs the NPB BT-IO benchmark — with its
// built-in byte-exact verification of the interleaved multi-rank writes —
// on every system. This is the paper's "conflict operations" correctness
// claim: delayed commit must not corrupt reads of freshly written data.
func TestBTConflictReadsAcrossSystems(t *testing.T) {
	opt := TestOptions()
	spec := workload.BTSpec{Ranks: 4, Steps: 6, BlockSize: 32 << 10, Seed: 3}
	for _, sys := range []System{SysPVFS2, SysNFS3, SysRedbud, SysRedbudDC, SysRedbudDCSD} {
		c := Build(sys, opt)
		res, err := RunBTDistributed(c, spec)
		c.Close()
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if res.BytesRead != spec.FileSize() {
			t.Fatalf("%s: verified %d of %d bytes", sys, res.BytesRead, spec.FileSize())
		}
	}
}

// TestFigVisibilityShape runs the visibility figure at smoke scale. Unlike
// most smoke assertions, the headline property is checked here too: the
// conflict-read gap between committed-only and early visibility is the
// commit pipeline's latency, orders of magnitude above scheduler noise even
// at this scale.
func TestFigVisibilityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	opt := smokeOptions()
	opt.SizeFactor = 0.1
	rows, err := FigVisibility(opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintFigVisibility(&buf, rows)
	t.Log("\n" + buf.String())
	if len(rows) != 2 || rows[0].Visibility || !rows[1].Visibility {
		t.Fatalf("rows = %+v, want off then on", rows)
	}
	for _, r := range rows {
		if r.Blocks <= 0 || r.ConflictMeanUS <= 0 || r.VarmailOpsPerSec <= 0 {
			t.Errorf("empty measurement: %+v", r)
		}
	}
	if rows[1].ConflictMeanUS >= rows[0].ConflictMeanUS {
		t.Errorf("early visibility did not lower conflict-read latency: on %.1fus vs off %.1fus",
			rows[1].ConflictMeanUS, rows[0].ConflictMeanUS)
	}
}

// TestFigShardsShape runs the namespace-sharding figure at smoke scale. The
// headline property is checked here too: four shards — four journals, four
// daemon pools, no shared lock — must at least double single-shard commit
// throughput. The acceptance floor is 2x; the observed scaling is well
// above it, so the assertion survives scheduler noise at this scale.
func TestFigShardsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	opt := smokeOptions()
	opt.SizeFactor = 0.1
	rows, err := FigShards(opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintFigShards(&buf, rows)
	t.Log("\n" + buf.String())
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (shards 1, 2, 4, 8)", len(rows))
	}
	for i, want := range []int{1, 2, 4, 8} {
		r := rows[i]
		if r.Shards != want {
			t.Fatalf("row %d is shards=%d, want %d", i, r.Shards, want)
		}
		if r.Commits <= 0 || r.CommitsPerSec <= 0 || r.MeanUS <= 0 {
			t.Errorf("empty measurement: %+v", r)
		}
	}
	if speedup := rows[2].CommitsPerSec / rows[0].CommitsPerSec; speedup < 2 {
		t.Errorf("4-shard commit throughput only %.2fx of 1 shard, want >= 2x (%.0f/s vs %.0f/s)",
			speedup, rows[2].CommitsPerSec, rows[0].CommitsPerSec)
	}
}
