package client

import (
	"redbud/internal/stats"
)

// Read-ahead: when a handle reads sequentially, a background prefetch pulls
// the next window of the file into the page cache, so the next ReadAt is a
// memory hit instead of a disk round trip. This is the "active file system"
// capability §II of the paper uses to motivate daemon-driven designs.
//
// Correctness: the prefetcher snapshots the file's write generation before
// touching the device and never installs pages that appeared (or could have
// been superseded) in the meantime — a concurrent write always wins.

type raStats struct {
	triggered stats.Counter
	pages     stats.Counter
}

// maybeReadAhead is called at the end of a successful ReadAt covering
// [off, off+n). Caller must NOT hold fs.mu.
func (c *Client) maybeReadAhead(fs *fileState, off, n int64) {
	window := c.cfg.ReadAhead
	if window <= 0 {
		return
	}
	fs.mu.Lock()
	sequential := off == fs.raNext && off != 0 || (off == 0 && n > 0)
	fs.raNext = off + n
	start := fs.raNext
	if !sequential || fs.raInflight || start >= fs.size {
		fs.mu.Unlock()
		return
	}
	end := min64(start+window, fs.size)
	// Snapshot the extent mapping and the write generation.
	type fetch struct {
		dev     uint32
		volOff  int64
		fileOff int64
		ln      int64
	}
	var fetches []fetch
	cur := start
	for _, e := range fs.extents {
		if e.End() <= cur || e.FileOff >= end {
			continue
		}
		s, t := max64(e.FileOff, cur), min64(e.End(), end)
		fetches = append(fetches, fetch{dev: e.Dev, volOff: e.VolOff + (s - e.FileOff), fileOff: s, ln: t - s})
	}
	if len(fetches) == 0 {
		fs.mu.Unlock()
		return
	}
	gen := fs.writeGen
	fs.raInflight = true
	fs.mu.Unlock()

	c.ra.triggered.Inc()
	go func() {
		defer func() {
			fs.mu.Lock()
			fs.raInflight = false
			fs.mu.Unlock()
		}()
		for _, ft := range fetches {
			dev, err := c.dev(ft.dev)
			if err != nil {
				return
			}
			data, err := dev.Read(ft.volOff, ft.ln)
			if err != nil {
				return
			}
			fs.mu.Lock()
			if fs.writeGen != gen {
				// A write raced the prefetch; discard everything —
				// the cache may only ever serve data at least as new
				// as what the writer produced.
				fs.mu.Unlock()
				return
			}
			// Install only full, absent pages.
			for pg := (ft.fileOff + PageSize - 1) / PageSize; (pg+1)*PageSize <= ft.fileOff+ft.ln; pg++ {
				if fs.pages[pg] != nil {
					continue
				}
				page := make([]byte, PageSize)
				copy(page, data[pg*PageSize-ft.fileOff:])
				fs.pages[pg] = page
				c.ra.pages.Inc()
			}
			fs.mu.Unlock()
		}
	}()
}

// ReadAheadStats returns (prefetches triggered, pages installed).
func (c *Client) ReadAheadStats() (int64, int64) {
	return c.ra.triggered.Load(), c.ra.pages.Load()
}
