package blockdev

import (
	"testing"

	"redbud/internal/clock"
)

func BenchmarkSequentialWrite4K(b *testing.B) {
	d := New(Config{Size: 1 << 34, Model: ZeroLatency(), Clock: clock.Real(1)})
	defer d.Close()
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Write(int64(i%(1<<20))*4096, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomRead4K(b *testing.B) {
	d := New(Config{Size: 1 << 30, Model: ZeroLatency(), Clock: clock.Real(1)})
	defer d.Close()
	if err := d.Write(0, make([]byte, 1<<20)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Read(int64(i*2654435761%(1<<20-4096)), 4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntervalSetAdd(b *testing.B) {
	var s intervalSet
	for i := 0; i < b.N; i++ {
		off := int64(i*2654435761) % (1 << 30)
		s.add(off, off+4096)
	}
}

func BenchmarkServiceTimeModel(b *testing.B) {
	m := DefaultHDD()
	for i := 0; i < b.N; i++ {
		_ = m.ServiceTime(int64(i)*4096, int64(i*7)*4096, 4096)
	}
}
