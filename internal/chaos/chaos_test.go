package chaos

import (
	"flag"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"redbud/internal/client"
	"redbud/internal/netsim"
	"redbud/internal/workload"
)

// seeds widens the invariant sweep; CI runs `-seeds=100` nightly.
var seeds = flag.Int("seeds", 5, "number of fault-plan seeds the invariant sweep runs")

// invariantConfig is the full fault menu: drops, duplicates, delays,
// reorders, a timed partition, and probabilistic data-device faults.
func invariantConfig(seed int64) Config {
	return Config{
		Seed:    seed,
		Clients: 3,
		Threads: 2,
		Ops:     25,
		Prefill: 2,
		Mode:    client.DelayedCommit,
		Fsync:   true,
		Retry: client.RetryPolicy{
			MaxAttempts: 8,
			BaseDelay:   time.Millisecond,
			MaxDelay:    8 * time.Millisecond,
			CallTimeout: 50 * time.Millisecond,
		},
		Net: netsim.FaultPlan{
			Default: netsim.LinkFaults{
				DropProb:    0.02,
				DupProb:     0.02,
				DelayProb:   0.10,
				DelaySpike:  2 * time.Millisecond,
				ReorderProb: 0.05,
			},
			Partitions: []netsim.Partition{
				{From: "*", To: "mds", Start: 20 * time.Millisecond, End: 35 * time.Millisecond},
			},
		},
		Disk: DiskFaults{ErrProb: 0.02, TornProb: 0.02},
	}
}

// assertClean checks the two paper invariants and both fsck passes.
func assertClean(t *testing.T, rep *Report) {
	t.Helper()
	if len(rep.Violations) != 0 {
		t.Errorf("ordered-write violations:\n  %s", strings.Join(rep.Violations, "\n  "))
	}
	if len(rep.Inconsistent) != 0 {
		t.Errorf("committed-but-not-durable extents at end of run: %+v", rep.Inconsistent)
	}
	if !rep.Fsck.OK() {
		t.Errorf("live fsck: %s", rep.Fsck)
	}
	if !rep.RecoveredFsck.OK() {
		t.Errorf("post-recovery fsck: %s", rep.RecoveredFsck)
	}
}

// TestChaosInvariants sweeps seeded fault plans and asserts that no plan can
// produce an MDS-visible commit of non-durable data, an inconsistent store,
// or an unrecoverable journal. Individual operations may fail — that is the
// fault plan working — but the metadata must never lie.
func TestChaosInvariants(t *testing.T) {
	for s := 0; s < *seeds; s++ {
		seed := int64(s)*7919 + 1
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rep, err := Run(invariantConfig(seed))
			if err != nil {
				t.Fatal(err)
			}
			assertClean(t, rep)
			var ops int64
			for _, r := range rep.Results {
				ops += r.Ops
			}
			if ops > 0 && rep.OpErrors >= ops {
				t.Errorf("every one of %d ops failed; the fault plan starved the workload", ops)
			}
			t.Logf("ops=%d opErrors=%d netFaults=%+v diskFaults=%d dedupHits=%d",
				ops, rep.OpErrors, rep.Faults, rep.DiskFaults, rep.DedupHits)
		})
	}
}

// TestChaosMDSRestart crash-restarts the MDS twice mid-workload with no
// other faults: clients must redial, observe the incarnation bump, rebuild
// their sessions, and keep making progress; the recovered store must fsck
// clean both times and at the end.
func TestChaosMDSRestart(t *testing.T) {
	cfg := invariantConfig(4242)
	cfg.Net = netsim.FaultPlan{}
	cfg.Disk = DiskFaults{}
	cfg.Ops = 40
	cfg.Think = time.Millisecond // stretch the workload across the restarts
	cfg.Restarts = 2
	cfg.RestartEvery = 15 * time.Millisecond
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restarts != 2 {
		t.Fatalf("completed %d restarts, want 2", rep.Restarts)
	}
	assertClean(t, rep)
	var ops int64
	for _, r := range rep.Results {
		ops += r.Ops
	}
	if want := int64(cfg.Clients * cfg.Threads * cfg.Ops); ops != want {
		t.Fatalf("measured %d ops, want %d: a thread died instead of retrying", ops, want)
	}
	if rep.OpErrors >= ops {
		t.Fatalf("all %d ops failed across the restarts; sessions never re-established", ops)
	}
	t.Logf("ops=%d opErrors=%d dedupHits=%d recovery=%+v", ops, rep.OpErrors, rep.DedupHits, rep.Recovery)
}

// TestChaosAutoscaleMDSRestart is the MDS-restart scenario with the commit
// autoscaler v2 engaged: the control loop samples queue wait and RPC
// in-flight while connections die and sessions rebuild, and must never
// deadlock the commit path — every thread finishes its ops and the store
// fscks clean, exactly as under the static formula.
func TestChaosAutoscaleMDSRestart(t *testing.T) {
	cfg := invariantConfig(31415)
	cfg.Net = netsim.FaultPlan{}
	cfg.Disk = DiskFaults{}
	cfg.Ops = 40
	cfg.Think = time.Millisecond // stretch the workload across the restarts
	cfg.Restarts = 2
	cfg.RestartEvery = 15 * time.Millisecond
	cfg.Autoscale = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restarts != 2 {
		t.Fatalf("completed %d restarts, want 2", rep.Restarts)
	}
	assertClean(t, rep)
	var ops int64
	for _, r := range rep.Results {
		ops += r.Ops
	}
	if want := int64(cfg.Clients * cfg.Threads * cfg.Ops); ops != want {
		t.Fatalf("measured %d ops, want %d: a commit thread deadlocked instead of retrying", ops, want)
	}
	t.Logf("ops=%d opErrors=%d recovery=%+v", ops, rep.OpErrors, rep.Recovery)
}

// TestChaosDeterminism runs the same seed and fault plan twice and requires
// byte-identical per-thread event logs. The plan is delay-only and retries
// are disabled: delays never change an operation's outcome, so the op
// streams — which do depend on outcomes — must replay exactly.
func TestChaosDeterminism(t *testing.T) {
	eventLog := func() (string, int64) {
		var mu sync.Mutex
		logs := map[int][]string{}
		cfg := Config{
			Seed:    99,
			Clients: 2,
			Threads: 2,
			Ops:     20,
			Prefill: 2,
			Mode:    client.DelayedCommit,
			Fsync:   true,
			// One attempt, no call timeout: nothing scheduler-dependent
			// can change an op's outcome.
			Retry: client.RetryPolicy{MaxAttempts: 1},
			Net: netsim.FaultPlan{
				Default: netsim.LinkFaults{DelayProb: 0.3, DelaySpike: 300 * time.Microsecond},
			},
			OnOp: func(clientID, tid int, kind workload.OpKind, path string, n int64) {
				key := clientID*1000 + tid
				mu.Lock()
				logs[key] = append(logs[key], fmt.Sprintf("%d %s %s %d", key, kind, path, n))
				mu.Unlock()
			},
		}
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]int, 0, len(logs))
		for k := range logs {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		var sb strings.Builder
		for _, k := range keys {
			for _, line := range logs[k] {
				sb.WriteString(line)
				sb.WriteByte('\n')
			}
		}
		return sb.String(), rep.OpErrors
	}
	logA, errsA := eventLog()
	logB, errsB := eventLog()
	if errsA != 0 || errsB != 0 {
		t.Fatalf("delay-only runs had op errors (%d, %d): an outcome-affecting fault leaked into the determinism fixture", errsA, errsB)
	}
	if logA == "" {
		t.Fatal("event log is empty; OnOp never fired")
	}
	if logA != logB {
		t.Fatalf("same seed and plan produced different event logs:\nrun A:\n%srun B:\n%s", logA, logB)
	}
}
