package bptree

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatal("new tree not empty")
	}
	if _, ok := tr.Get(5); ok {
		t.Fatal("Get on empty tree found a key")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree")
	}
	if _, _, ok := tr.Ceil(0); ok {
		t.Fatal("Ceil on empty tree")
	}
	if _, _, ok := tr.Floor(100); ok {
		t.Fatal("Floor on empty tree")
	}
	if tr.Delete(1) {
		t.Fatal("Delete on empty tree reported success")
	}
	tr.check()
}

func TestPutGetReplace(t *testing.T) {
	tr := New()
	tr.Put(10, 100)
	tr.Put(5, 50)
	tr.Put(10, 111) // replace
	if tr.Len() != 2 {
		t.Fatalf("len = %d", tr.Len())
	}
	if v, ok := tr.Get(10); !ok || v != 111 {
		t.Fatalf("Get(10) = %d,%v", v, ok)
	}
	if v, ok := tr.Get(5); !ok || v != 50 {
		t.Fatalf("Get(5) = %d,%v", v, ok)
	}
	tr.check()
}

func TestLargeSequentialInsert(t *testing.T) {
	tr := New()
	const n = 10000
	for i := int64(0); i < n; i++ {
		tr.Put(i, i*2)
	}
	if tr.Len() != n {
		t.Fatalf("len = %d", tr.Len())
	}
	depth := tr.check()
	if depth < 2 {
		t.Fatalf("tree depth %d suspiciously small for %d keys", depth, n)
	}
	for i := int64(0); i < n; i += 97 {
		if v, ok := tr.Get(i); !ok || v != i*2 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestReverseInsert(t *testing.T) {
	tr := New()
	for i := int64(5000); i > 0; i-- {
		tr.Put(i, i)
	}
	tr.check()
	k, _, ok := tr.Min()
	if !ok || k != 1 {
		t.Fatalf("min = %d,%v", k, ok)
	}
}

func TestDeleteAll(t *testing.T) {
	tr := New()
	const n = 3000
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, i := range perm {
		tr.Put(int64(i), int64(i))
	}
	tr.check()
	for _, i := range rand.New(rand.NewSource(8)).Perm(n) {
		if !tr.Delete(int64(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
		if tr.Delete(int64(i)) {
			t.Fatalf("double Delete(%d) succeeded", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("len after delete-all = %d", tr.Len())
	}
	tr.check()
}

func TestCeilFloor(t *testing.T) {
	tr := New()
	for _, k := range []int64{10, 20, 30, 40} {
		tr.Put(k, k*10)
	}
	cases := []struct {
		q       int64
		ceilK   int64
		ceilOK  bool
		floorK  int64
		floorOK bool
	}{
		{5, 10, true, 0, false},
		{10, 10, true, 10, true},
		{15, 20, true, 10, true},
		{40, 40, true, 40, true},
		{45, 0, false, 40, true},
	}
	for _, c := range cases {
		k, v, ok := tr.Ceil(c.q)
		if ok != c.ceilOK || (ok && k != c.ceilK) {
			t.Fatalf("Ceil(%d) = %d,%v; want %d,%v", c.q, k, ok, c.ceilK, c.ceilOK)
		}
		if ok && v != k*10 {
			t.Fatalf("Ceil(%d) value = %d", c.q, v)
		}
		k, v, ok = tr.Floor(c.q)
		if ok != c.floorOK || (ok && k != c.floorK) {
			t.Fatalf("Floor(%d) = %d,%v; want %d,%v", c.q, k, ok, c.floorK, c.floorOK)
		}
		if ok && v != k*10 {
			t.Fatalf("Floor(%d) value = %d", c.q, v)
		}
	}
}

func TestCeilFloorDeep(t *testing.T) {
	tr := New()
	// Sparse keys across a deep tree.
	for i := int64(0); i < 5000; i++ {
		tr.Put(i*10, i)
	}
	for i := int64(0); i < 5000; i += 13 {
		if k, _, ok := tr.Ceil(i*10 + 1); i < 4999 && (!ok || k != (i+1)*10) {
			t.Fatalf("Ceil(%d) = %d,%v", i*10+1, k, ok)
		}
		if k, _, ok := tr.Floor(i*10 + 9); !ok || k != i*10 {
			t.Fatalf("Floor(%d) = %d,%v", i*10+9, k, ok)
		}
	}
}

func TestAscend(t *testing.T) {
	tr := New()
	keys := []int64{5, 1, 9, 3, 7}
	for _, k := range keys {
		tr.Put(k, k)
	}
	var got []int64
	tr.Ascend(func(k, v int64) bool {
		got = append(got, k)
		return true
	})
	want := append([]int64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("ascend visited %d keys", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ascend order %v, want %v", got, want)
		}
	}
}

func TestAscendFromAndEarlyStop(t *testing.T) {
	tr := New()
	for i := int64(0); i < 100; i++ {
		tr.Put(i, i)
	}
	var got []int64
	tr.AscendFrom(90, func(k, v int64) bool {
		got = append(got, k)
		return len(got) < 5
	})
	if len(got) != 5 || got[0] != 90 || got[4] != 94 {
		t.Fatalf("AscendFrom = %v", got)
	}
	count := 0
	tr.Ascend(func(k, v int64) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("Ascend early stop visited %d", count)
	}
}

func TestAscendFromPastEnd(t *testing.T) {
	tr := New()
	tr.Put(1, 1)
	called := false
	tr.AscendFrom(100, func(k, v int64) bool {
		called = true
		return true
	})
	if called {
		t.Fatal("AscendFrom past end visited keys")
	}
}

// TestRandomOpsVsReference drives the tree with random operations and
// compares every answer against a map + sorted-slice reference model,
// validating structural invariants as it goes.
func TestRandomOpsVsReference(t *testing.T) {
	tr := New()
	ref := map[int64]int64{}
	rng := rand.New(rand.NewSource(123))
	const keyspace = 2000

	refSorted := func() []int64 {
		ks := make([]int64, 0, len(ref))
		for k := range ref {
			ks = append(ks, k)
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
		return ks
	}

	for step := 0; step < 20000; step++ {
		k := int64(rng.Intn(keyspace))
		switch rng.Intn(4) {
		case 0, 1: // put
			v := int64(rng.Intn(1 << 20))
			tr.Put(k, v)
			ref[k] = v
		case 2: // delete
			_, want := ref[k]
			if got := tr.Delete(k); got != want {
				t.Fatalf("step %d: Delete(%d) = %v, want %v", step, k, got, want)
			}
			delete(ref, k)
		case 3: // queries
			v, ok := tr.Get(k)
			rv, rok := ref[k]
			if ok != rok || (ok && v != rv) {
				t.Fatalf("step %d: Get(%d) = %d,%v want %d,%v", step, k, v, ok, rv, rok)
			}
			ks := refSorted()
			// Ceil
			ck, _, cok := tr.Ceil(k)
			i := sort.Search(len(ks), func(i int) bool { return ks[i] >= k })
			if (i < len(ks)) != cok || (cok && ck != ks[i]) {
				t.Fatalf("step %d: Ceil(%d) = %d,%v; ref %v", step, k, ck, cok, ks)
			}
			// Floor
			fk, _, fok := tr.Floor(k)
			j := sort.Search(len(ks), func(i int) bool { return ks[i] > k }) - 1
			if (j >= 0) != fok || (fok && fk != ks[j]) {
				t.Fatalf("step %d: Floor(%d) = %d,%v", step, k, fk, fok)
			}
		}
		if step%500 == 0 {
			tr.check()
			if tr.Len() != len(ref) {
				t.Fatalf("step %d: len %d != ref %d", step, tr.Len(), len(ref))
			}
		}
	}
	tr.check()
	// Final full-order comparison.
	ks := refSorted()
	var got []int64
	tr.Ascend(func(k, v int64) bool {
		got = append(got, k)
		if ref[k] != v {
			t.Fatalf("Ascend value mismatch at %d", k)
		}
		return true
	})
	if len(got) != len(ks) {
		t.Fatalf("final len %d != %d", len(got), len(ks))
	}
	for i := range ks {
		if got[i] != ks[i] {
			t.Fatalf("final order mismatch at %d", i)
		}
	}
}

func BenchmarkPut(b *testing.B) {
	tr := New()
	for i := 0; i < b.N; i++ {
		tr.Put(int64(i*2654435761%(1<<30)), int64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	for i := int64(0); i < 100000; i++ {
		tr.Put(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(int64(i % 100000))
	}
}
