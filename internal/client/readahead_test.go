package client

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"redbud/internal/netsim"
	"redbud/internal/rpc"
)

// raClient mounts a client with read-ahead enabled on the test cluster.
func raClient(tc *testCluster, window int64) *Client {
	tc.nextID++
	host := fmt.Sprintf("ra-client-%d", tc.nextID)
	tc.net.AddHost(host, netsim.Instant())
	conn, err := tc.net.Dial(host, "mds")
	if err != nil {
		tc.t.Fatal(err)
	}
	devs := make(map[uint32]BlockDevice, len(tc.devices))
	for id, d := range tc.devices {
		devs[id] = d
	}
	return New(Config{
		Name:      host,
		MDS:       rpc.NewClient(conn, tc.clk),
		Devices:   devs,
		Clock:     tc.clk,
		Mode:      DelayedCommit,
		ReadAhead: window,
	})
}

func waitRA(t *testing.T, c *Client, wantPages int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, pages := c.ReadAheadStats(); pages >= wantPages {
			return
		}
		time.Sleep(time.Millisecond)
	}
	trig, pages := c.ReadAheadStats()
	t.Fatalf("read-ahead did not install %d pages (triggered=%d installed=%d)", wantPages, trig, pages)
}

func TestReadAheadPrefetchesSequential(t *testing.T) {
	tc := newCluster(t)
	w := tc.client(SyncCommit, 0)
	data := pattern(256<<10, 7)
	writeFile(t, w, "/stream.bin", data)
	w.Close()

	r := raClient(tc, 128<<10)
	defer r.Close()
	f, err := r.Open("/stream.bin")
	if err != nil {
		t.Fatal(err)
	}
	// Sequential reads: the first triggers a prefetch of the next window.
	buf := make([]byte, 32<<10)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	waitRA(t, r, 1)
	if _, err := f.ReadAt(buf, 32<<10); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[32<<10:64<<10]) {
		t.Fatal("prefetched window corrupted")
	}
	trig, pages := r.ReadAheadStats()
	if trig == 0 || pages == 0 {
		t.Fatalf("no prefetch: triggered=%d pages=%d", trig, pages)
	}
}

func TestReadAheadIgnoresRandomReads(t *testing.T) {
	tc := newCluster(t)
	w := tc.client(SyncCommit, 0)
	writeFile(t, w, "/rand.bin", pattern(256<<10, 3))
	w.Close()

	r := raClient(tc, 128<<10)
	defer r.Close()
	f, err := r.Open("/rand.bin")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	// Jumping around (never continuing a run) must not trigger prefetch
	// beyond the off==0 bootstrap.
	for _, off := range []int64{100 << 10, 10 << 10, 200 << 10, 50 << 10} {
		if _, err := f.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
	}
	if trig, _ := r.ReadAheadStats(); trig != 0 {
		t.Fatalf("random reads triggered %d prefetches", trig)
	}
}

func TestReadAheadNeverServesStaleData(t *testing.T) {
	// A write racing the prefetch: afterwards every read must see the
	// write, prefetch or not.
	tc := newCluster(t)
	c := raClient(tc, 256<<10)
	defer c.Close()
	base := pattern(512<<10, 1)
	f, err := c.Create("/hot.bin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(base, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64<<10)
	for round := 0; round < 10; round++ {
		// Sequential read to arm the prefetcher...
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		// ...while a write lands inside the window it will fetch.
		patch := bytes.Repeat([]byte{byte(0xA0 + round)}, 8192)
		off := int64(128<<10) + int64(round)*8192
		if _, err := f.ReadAt(buf, 64<<10); err != nil { // trigger
			t.Fatal(err)
		}
		if _, err := f.WriteAt(patch, off); err != nil {
			t.Fatal(err)
		}
		// Give any in-flight prefetch time to finish (and be discarded).
		time.Sleep(2 * time.Millisecond)
		got := make([]byte, len(patch))
		if _, err := f.ReadAt(got, off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, patch) {
			t.Fatalf("round %d: stale data after prefetch/write race", round)
		}
	}
}

func TestReadAheadDisabledByDefault(t *testing.T) {
	tc := newCluster(t)
	c := tc.client(DelayedCommit, 0)
	defer c.Close()
	writeFile(t, c, "/f", pattern(128<<10, 2))
	f, _ := c.Open("/f")
	buf := make([]byte, 32<<10)
	f.ReadAt(buf, 0)
	f.ReadAt(buf, 32<<10)
	if trig, _ := c.ReadAheadStats(); trig != 0 {
		t.Fatalf("read-ahead fired while disabled: %d", trig)
	}
}
