package lint

// wirealias: a slice obtained from wire.Reader.BytesRef() aliases a pooled
// receive frame (wire.GetFrame). The frame is recycled when the handler
// returns (server) or immediately after decode (client), so a BytesRef slice
// may only be consumed before that point. Retaining it — storing it through
// a receiver/parameter/global or sending it on a channel — races with frame
// reuse and corrupts unrelated traffic.
//
// The check is an intraprocedural taint walk: BytesRef results (and locals,
// slices-of, and composites built from them) are tainted; a store that lets
// a tainted value escape the function is reported. Returning a tainted value
// is allowed — it is an explicit ownership handoff the caller must audit.
// Deliberate zero-copy handoffs are annotated `//lint:allow wirealias`, and
// that annotation certifies the message's consumers were audited too: taint
// does not flow across function boundaries.

import (
	"go/ast"
	"go/types"
)

// WireAlias checks that frame-aliasing BytesRef slices do not outlive the
// decode.
var WireAlias = &Analyzer{
	Name: "wirealias",
	Doc:  "r.BytesRef() slices alias a pooled frame and must not be retained past handler return",
	Run:  runWireAlias,
}

func runWireAlias(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkAliasEscapes(pass, fd.Body)
		}
	}
	return nil
}

type aliasWalker struct {
	pass    *Pass
	body    *ast.BlockStmt
	tainted map[types.Object]bool
}

// checkAliasEscapes walks one function body in source order (which matches
// statement order for the shapes decoders and handlers use) propagating
// taint and reporting escapes.
func checkAliasEscapes(pass *Pass, body *ast.BlockStmt) {
	w := &aliasWalker{pass: pass, body: body, tainted: make(map[types.Object]bool)}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal gets its own scope and its own walk; locals of the
			// enclosing function captured by it stay visible via w.tainted
			// of the outer walker being separate — conservative but the
			// codecs never close over frame slices.
			checkAliasEscapes(w.pass, n.Body)
			return false
		case *ast.AssignStmt:
			w.assign(n)
		case *ast.SendStmt:
			if w.exprTainted(n.Value) {
				w.pass.Reportf(n.Pos(), "sends a frame-aliasing BytesRef slice on a channel: the receiver outlives the pooled frame; copy with r.Bytes() or annotate //lint:allow wirealias after auditing the receiver")
			}
		}
		return true
	})
}

func (w *aliasWalker) assign(n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		// Multi-value form (`a, b := f()`): BytesRef is single-valued, and
		// no codec-adjacent multi-value call returns frame aliases.
		return
	}
	for i, lhs := range n.Lhs {
		if !w.exprTainted(n.Rhs[i]) {
			continue
		}
		switch target := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj := w.pass.Info.Defs[target]
			if obj == nil {
				obj = w.pass.Info.Uses[target]
			}
			if obj == nil {
				continue
			}
			if w.isLocal(obj) {
				w.tainted[obj] = true
			} else {
				w.pass.Reportf(n.Pos(), "stores a frame-aliasing BytesRef slice in package-level %s: it outlives the pooled frame; copy with r.Bytes() or annotate //lint:allow wirealias", target.Name)
			}
		case *ast.SelectorExpr, *ast.IndexExpr:
			root := rootIdent(target)
			if root == nil {
				continue
			}
			obj := w.pass.Info.Uses[root]
			if obj != nil && w.isLocal(obj) {
				// Field/element store into a purely local value: the
				// container is now tainted (it may later escape whole).
				w.tainted[obj] = true
				continue
			}
			w.pass.Reportf(n.Pos(), "stores a frame-aliasing BytesRef slice through non-local %s, which outlives the call: the pooled frame is recycled at handler return; copy with r.Bytes() or annotate //lint:allow wirealias after auditing every consumer", root.Name)
		}
	}
}

// isLocal reports whether obj is declared inside the walked body — i.e. not
// a receiver, parameter, or package-level variable, all of which outlive the
// call.
func (w *aliasWalker) isLocal(obj types.Object) bool {
	return obj.Pos() >= w.body.Pos() && obj.Pos() < w.body.End()
}

// rootIdent returns the base identifier of a selector/index chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// exprTainted reports whether e evaluates to a frame-aliasing value.
func (w *aliasWalker) exprTainted(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := w.pass.Info.Uses[e]
		return obj != nil && w.tainted[obj]
	case *ast.SelectorExpr:
		// Reading a field of a tainted container yields (possibly) the
		// alias back.
		if root := rootIdent(e); root != nil {
			obj := w.pass.Info.Uses[root]
			return obj != nil && w.tainted[obj]
		}
	case *ast.SliceExpr:
		return w.exprTainted(e.X)
	case *ast.IndexExpr:
		return w.exprTainted(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if w.exprTainted(el) {
				return true
			}
		}
	case *ast.UnaryExpr:
		return w.exprTainted(e.X)
	case *ast.CallExpr:
		if isBytesRefCall(w.pass.Info, e) {
			return true
		}
		// append(dst, ...) keeps dst's backing array: tainted iff the
		// destination is. append([]byte(nil), ref...) is the sanctioned
		// copy and comes out clean, as do string(ref) and copy().
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" &&
			w.pass.Info.Uses[id] != nil && w.pass.Info.Uses[id].Pkg() == nil && len(e.Args) > 0 {
			return w.exprTainted(e.Args[0])
		}
	}
	return false
}

// isBytesRefCall matches r.BytesRef() on a wire.Reader.
func isBytesRefCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "BytesRef" {
		return false
	}
	return isNamedType(recvTypeOf(info, call), "wire", "Reader")
}
