package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleSpans() []Span {
	return []Span{
		{Track: "client-0/commit", Name: SpanCommitRPC, CommitID: 1, Start: at(100), End: at(300)},
		{Track: "mds", Name: SpanMDSCommit, CommitID: 1, Start: at(150), End: at(250)},
		{Track: "dev0", Name: SpanDevTransfer, Start: at(20), End: at(90)},
		{Track: "client-0/commit", Name: SpanCommitQueue, CommitID: 1, Start: at(0), End: at(100)},
	}
}

func TestChromeTraceStructure(t *testing.T) {
	var b strings.Builder
	if err := WriteChromeTrace(&b, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
			Args *struct {
				Commit uint64 `json:"commit"`
				Name   string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &tr); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var meta, complete int
	threads := map[string]bool{}
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			threads[ev.Args.Name] = true
		case "X":
			complete++
			if ev.TS < 0 || ev.Dur < 0 {
				t.Errorf("negative ts/dur on %s: %v/%v", ev.Name, ev.TS, ev.Dur)
			}
			if ev.Name == SpanCommitRPC {
				if ev.Args == nil || ev.Args.Commit != 1 {
					t.Errorf("commit.rpc missing commit arg: %+v", ev.Args)
				}
				if ev.Cat != "commit" {
					t.Errorf("commit.rpc category = %q", ev.Cat)
				}
				// Earliest span starts at 0µs; this one at 100µs for 200µs.
				if ev.TS != 100 || ev.Dur != 200 {
					t.Errorf("commit.rpc ts/dur = %v/%v, want 100/200", ev.TS, ev.Dur)
				}
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if complete != 4 {
		t.Fatalf("complete events = %d, want 4", complete)
	}
	if meta != 3 || !threads["client-0/commit"] || !threads["mds"] || !threads["dev0"] {
		t.Fatalf("thread metadata = %v", threads)
	}
}

// TestChromeTraceOrderIndependent pins the determinism contract: the export
// bytes depend only on the span multiset, not on recording order.
func TestChromeTraceOrderIndependent(t *testing.T) {
	spans := sampleSpans()
	render := func(s []Span) string {
		var b strings.Builder
		if err := WriteChromeTrace(&b, s); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	want := render(spans)
	perm := []Span{spans[2], spans[0], spans[3], spans[1]}
	if got := render(perm); got != want {
		t.Fatalf("permuted spans change the export:\n%s\nvs\n%s", got, want)
	}
	if render(nil) == "" {
		t.Fatal("empty trace should still emit a JSON document")
	}
}
