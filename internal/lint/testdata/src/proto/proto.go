// Package proto mirrors the opcode surface of redbud's internal/proto for
// analyzer fixtures. Only the names the analyzers key on matter.
package proto

// Op identifies an RPC operation.
type Op uint8

const (
	OpWrite  Op = 1
	OpCommit Op = 2
)

// Protocol versions, mirrored for the wireevolve clamp fixtures.
const (
	ProtoV1 uint32 = 1
	ProtoV2 uint32 = 2
)
