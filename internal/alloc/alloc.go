// Package alloc implements the MDS's physical space management: the storage
// pool is divided into allocation groups (AGs), each with its own B+ tree of
// free extents (§V-A of the paper). The AG set applies a round-robin
// strategy across groups, which is precisely why concurrent clients get
// interleaved physical addresses without space delegation — the scatter that
// Figure 4/5 show and that delegation (contiguous per-client chunks) fixes.
package alloc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"redbud/internal/bptree"
)

// Errors returned by allocators.
var (
	ErrNoSpace    = errors.New("alloc: no space")
	ErrBadFree    = errors.New("alloc: freeing unallocated or overlapping range")
	ErrBadRequest = errors.New("alloc: invalid request")
)

// Span is a contiguous physical range on one device.
type Span struct {
	Dev int
	Off int64
	Len int64
}

// End returns the first byte past the span.
func (s Span) End() int64 { return s.Off + s.Len }

func (s Span) String() string { return fmt.Sprintf("dev%d[%d+%d]", s.Dev, s.Off, s.Len) }

// Group is one allocation group: a contiguous device region with a B+ tree
// of free extents keyed by start offset.
type Group struct {
	dev        int
	start, end int64

	mu        sync.Mutex
	free      *bptree.Tree // start -> length
	freeBytes int64
	rotor     int64 // next-fit hint: end of the last allocation
}

// NewGroup returns a group covering [start, end) of device dev, fully free.
func NewGroup(dev int, start, end int64) *Group {
	if end <= start {
		panic("alloc: empty group")
	}
	g := &Group{dev: dev, start: start, end: end, free: bptree.New(), rotor: start}
	g.free.Put(start, end-start)
	g.freeBytes = end - start
	return g
}

// Dev returns the device this group manages.
func (g *Group) Dev() int { return g.dev }

// Bounds returns the [start, end) range of the group.
func (g *Group) Bounds() (int64, int64) { return g.start, g.end }

// FreeBytes returns the total free space.
func (g *Group) FreeBytes() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.freeBytes
}

// FreeExtents returns the number of disjoint free extents (a fragmentation
// measure).
func (g *Group) FreeExtents() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.free.Len()
}

// Alloc carves size bytes out of the group, preferring space at or after
// hint (pass a negative hint to use the group's next-fit rotor). Allocation
// is first-fit from the hint with wrap-around.
func (g *Group) Alloc(size, hint int64) (Span, error) {
	if size <= 0 {
		return Span{}, fmt.Errorf("%w: size %d", ErrBadRequest, size)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if size > g.freeBytes {
		return Span{}, fmt.Errorf("%w: want %d, free %d", ErrNoSpace, size, g.freeBytes)
	}
	if hint < 0 {
		hint = g.rotor
	}

	// If the hint falls inside a free extent with enough room after it,
	// allocate exactly at the hint for physical continuity.
	if fs, fl, ok := g.free.Floor(hint); ok && fs+fl > hint && fs+fl-hint >= size {
		g.take(fs, fl, hint, size)
		g.rotor = hint + size
		return Span{Dev: g.dev, Off: hint, Len: size}, nil
	}

	// First fit scanning up from the hint.
	if sp, ok := g.scan(hint, size); ok {
		return sp, nil
	}
	// Wrap around.
	if sp, ok := g.scan(g.start, size); ok {
		return sp, nil
	}
	return Span{}, fmt.Errorf("%w: want %d contiguous, free %d fragmented over %d extents",
		ErrNoSpace, size, g.freeBytes, g.free.Len())
}

// scan finds the first free extent at or after from with room for size.
// Caller holds g.mu.
func (g *Group) scan(from, size int64) (Span, bool) {
	var found bool
	var fs, fl int64
	g.free.AscendFrom(from, func(k, v int64) bool {
		if v >= size {
			fs, fl, found = k, v, true
			return false
		}
		return true
	})
	if !found {
		return Span{}, false
	}
	g.take(fs, fl, fs, size)
	g.rotor = fs + size
	return Span{Dev: g.dev, Off: fs, Len: size}, true
}

// take removes [at, at+size) from the free extent [fs, fs+fl). Caller holds
// g.mu and guarantees containment.
func (g *Group) take(fs, fl, at, size int64) {
	g.free.Delete(fs)
	if at > fs {
		g.free.Put(fs, at-fs)
	}
	if rem := fs + fl - (at + size); rem > 0 {
		g.free.Put(at+size, rem)
	}
	g.freeBytes -= size
}

// Reserve claims exactly [off, off+n), failing if any part is already
// allocated. Journal replay uses this to rebuild occupancy.
func (g *Group) Reserve(off, n int64) error {
	if n <= 0 || off < g.start || off+n > g.end {
		return fmt.Errorf("%w: reserve [%d+%d) outside group [%d,%d)", ErrBadRequest, off, n, g.start, g.end)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	fs, fl, ok := g.free.Floor(off)
	if !ok || fs+fl < off+n {
		return fmt.Errorf("%w: [%d+%d) not free", ErrNoSpace, off, n)
	}
	g.take(fs, fl, off, n)
	return nil
}

// FreeSpan returns [off, off+n) to the pool, coalescing with neighbours.
// Freeing a range that overlaps free space is an error (double free).
func (g *Group) FreeSpan(off, n int64) error {
	if n <= 0 || off < g.start || off+n > g.end {
		return fmt.Errorf("%w: [%d+%d) outside group [%d,%d)", ErrBadFree, off, n, g.start, g.end)
	}
	g.mu.Lock()
	defer g.mu.Unlock()

	if ps, pl, ok := g.free.Floor(off); ok && ps+pl > off {
		return fmt.Errorf("%w: [%d+%d) overlaps free [%d+%d)", ErrBadFree, off, n, ps, pl)
	}
	if ns, _, ok := g.free.Ceil(off); ok && ns < off+n {
		return fmt.Errorf("%w: [%d+%d) overlaps free at %d", ErrBadFree, off, n, ns)
	}

	start, end := off, off+n
	if ps, pl, ok := g.free.Floor(off); ok && ps+pl == off {
		start = ps
		g.free.Delete(ps)
	}
	if ns, nl, ok := g.free.Ceil(end); ok && ns == end {
		end += nl
		g.free.Delete(ns)
	}
	g.free.Put(start, end-start)
	g.freeBytes += n
	return nil
}

// contains reports whether the span belongs to this group.
func (g *Group) contains(sp Span) bool {
	return sp.Dev == g.dev && sp.Off >= g.start && sp.End() <= g.end
}

// ---------------------------------------------------------------------------

// Strategy selects the allocation group for a request.
type Strategy int

// AG selection strategies.
const (
	// RoundRobin rotates across groups per request — the paper's default.
	// Under concurrent clients this interleaves their space.
	RoundRobin Strategy = iota
	// OwnerAffinity hashes the owner to a home group, falling back to
	// round-robin when the home group is full.
	OwnerAffinity
)

// AGSet is the MDS-side collection of allocation groups.
type AGSet struct {
	groups   []*Group
	strategy Strategy
	rotor    atomic.Uint64
}

// NewAGSet builds a set over the given groups.
func NewAGSet(strategy Strategy, groups ...*Group) *AGSet {
	if len(groups) == 0 {
		panic("alloc: empty AG set")
	}
	return &AGSet{groups: groups, strategy: strategy}
}

// NewUniformAGSet carves device dev's [0, size) into n equal groups.
func NewUniformAGSet(strategy Strategy, dev int, size int64, n int) *AGSet {
	if n <= 0 {
		panic("alloc: need at least one AG")
	}
	per := size / int64(n)
	groups := make([]*Group, 0, n)
	for i := 0; i < n; i++ {
		end := int64(i+1) * per
		if i == n-1 {
			end = size
		}
		groups = append(groups, NewGroup(dev, int64(i)*per, end))
	}
	return NewAGSet(strategy, groups...)
}

// Groups returns the member groups.
func (s *AGSet) Groups() []*Group { return s.groups }

// FreeBytes returns the total free space across all groups.
func (s *AGSet) FreeBytes() int64 {
	var total int64
	for _, g := range s.groups {
		total += g.FreeBytes()
	}
	return total
}

// order returns group indices in preference order for one request.
func (s *AGSet) order(owner string) []int {
	n := len(s.groups)
	first := 0
	switch s.strategy {
	case OwnerAffinity:
		first = int(fnv32(owner)) % n
	default:
		first = int(s.rotor.Add(1)-1) % n
	}
	idx := make([]int, 0, n)
	for i := 0; i < n; i++ {
		idx = append(idx, (first+i)%n)
	}
	return idx
}

// Alloc allocates one contiguous span of size bytes for owner.
func (s *AGSet) Alloc(owner string, size int64) (Span, error) {
	var lastErr error = ErrNoSpace
	for _, i := range s.order(owner) {
		sp, err := s.groups[i].Alloc(size, -1)
		if err == nil {
			return sp, nil
		}
		lastErr = err
	}
	return Span{}, lastErr
}

// AllocExtents allocates size bytes as one or more spans, each at most
// maxSpan long (0 means unbounded). Used for large-file layouts that no
// single free extent can satisfy.
func (s *AGSet) AllocExtents(owner string, size, maxSpan int64) ([]Span, error) {
	if size <= 0 {
		return nil, fmt.Errorf("%w: size %d", ErrBadRequest, size)
	}
	var out []Span
	remaining := size
	for remaining > 0 {
		chunk := remaining
		if maxSpan > 0 && chunk > maxSpan {
			chunk = maxSpan
		}
		sp, err := s.Alloc(owner, chunk)
		if err != nil {
			// Retry with half the chunk to work around fragmentation.
			if chunk > 1<<20 {
				maxSpan = chunk / 2
				continue
			}
			// Roll back partial allocations.
			for _, done := range out {
				_ = s.FreeSpan(done)
			}
			return nil, err
		}
		out = append(out, sp)
		remaining -= sp.Len
	}
	return out, nil
}

// FreeSpan returns a span to its owning group.
func (s *AGSet) FreeSpan(sp Span) error {
	for _, g := range s.groups {
		if g.contains(sp) {
			return g.FreeSpan(sp.Off, sp.Len)
		}
	}
	return fmt.Errorf("%w: %v not in any group", ErrBadFree, sp)
}

// ReserveSpan claims an exact span in its owning group (journal replay).
func (s *AGSet) ReserveSpan(sp Span) error {
	for _, g := range s.groups {
		if g.contains(sp) {
			return g.Reserve(sp.Off, sp.Len)
		}
	}
	return fmt.Errorf("%w: %v not in any group", ErrBadRequest, sp)
}

// fnv32 is a tiny string hash for owner affinity.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
