// Benchmarks regenerating every figure of the paper's evaluation (§V), plus
// ablations of the design choices DESIGN.md calls out. Each BenchmarkFigN
// runs the corresponding experiment at reduced op counts and reports the
// figure's headline metrics via b.ReportMetric; `go run ./cmd/redbud-bench`
// runs the full-scale versions and prints the complete tables.
package redbud

import (
	"testing"

	"redbud/internal/bench"
	"redbud/internal/workload"
)

// benchOptions shrinks the cluster so a single figure fits in seconds.
func benchOptions() bench.Options {
	o := bench.DefaultOptions()
	o.Clients = 3
	o.Scale = 0.005
	o.SizeFactor = 0.1
	return o
}

// BenchmarkFig3_PerformanceComparison regenerates Figure 3: throughput of
// PVFS2 / NFS3 / Redbud / Redbud+DC on the five workloads, normalized to
// original Redbud. The headline metric is the xcdn-32K speedup (paper: 2.6x).
func BenchmarkFig3_PerformanceComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig3(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Workload == "xcdn-32K" {
				b.ReportMetric(r.Norm[bench.SysRedbudDCSD], "xcdn32K-speedup")
				b.ReportMetric(r.Norm[bench.SysNFS3], "xcdn32K-nfs3-norm")
			}
			if r.Workload == "varmail" {
				b.ReportMetric(r.Norm[bench.SysRedbudDCSD], "varmail-speedup")
			}
		}
	}
}

// BenchmarkFig4_MergeRatio regenerates Figure 4: I/O merge ratio of the
// three Redbud configurations at 32K/64K/1M (paper: delegation improves the
// ratio 2.8-5.9x over delayed commit alone).
func BenchmarkFig4_MergeRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig4(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.FileSize == 32<<10 {
				b.ReportMetric(r.Ratio[bench.SysRedbudDC], "dc-merge-ratio-32K")
				b.ReportMetric(r.Ratio[bench.SysRedbudDCSD], "sd-merge-ratio-32K")
				if dc := r.Ratio[bench.SysRedbudDC]; dc > 0 {
					b.ReportMetric(r.Ratio[bench.SysRedbudDCSD]/dc, "sd-over-dc-32K")
				}
			}
		}
	}
}

// BenchmarkFig5_SeekTraces regenerates Figure 5: blktrace-style disk-seek
// panels under the three configurations x {32K, 1M}. Reported metric: seek
// bytes per dispatch for original vs delegation at 32K (panel a vs c).
func BenchmarkFig5_SeekTraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		panels, err := bench.Fig5(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range panels {
			if p.FileSize != 32<<10 || p.Summary.Dispatches == 0 {
				continue
			}
			perDisp := float64(p.Summary.SeekBytes) / float64(p.Summary.Dispatches) / 1e6
			switch p.System {
			case bench.SysRedbud:
				b.ReportMetric(perDisp, "orig-seekMB-per-disp")
			case bench.SysRedbudDCSD:
				b.ReportMetric(perDisp, "sd-seekMB-per-disp")
			}
		}
	}
}

// BenchmarkFig6_AdaptiveThreads regenerates Figure 6: the commit-thread
// count tracking the commit-queue length across the four workloads.
func BenchmarkFig6_AdaptiveThreads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		traces, err := bench.Fig6(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, tr := range traces {
			switch tr.Workload {
			case "varmail":
				b.ReportMetric(tr.MeanThr, "varmail-mean-threads")
			case "xcdn-32K":
				b.ReportMetric(tr.MaxThr, "xcdn-max-threads")
			}
		}
	}
}

// BenchmarkFig7_CompoundDegree regenerates Figure 7: per-client throughput
// for MDS daemons {1,8,16} x compound degree {1,3,6}. Reported metric: the
// gain of degree 3 over degree 1 on the one-daemon server.
func BenchmarkFig7_CompoundDegree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := bench.Fig7(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		var d1k1, d1k3 float64
		for _, c := range cells {
			if c.Daemons == 1 && c.Degree == 1 {
				d1k1 = c.PerClient
			}
			if c.Daemons == 1 && c.Degree == 3 {
				d1k3 = c.PerClient
			}
		}
		if d1k1 > 0 {
			b.ReportMetric(d1k3/d1k1, "compound3-gain-1daemon")
		}
	}
}

// runXcdn32 runs the small-file CDN workload on one configuration and
// returns ops/s — the ablations' common probe.
func runXcdn32(b *testing.B, sys bench.System, opt bench.Options) float64 {
	b.Helper()
	c := bench.Build(sys, opt)
	defer c.Close()
	res, err := bench.RunDistributed(c, workload.Xcdn(32<<10, opt.Seed).Scale(opt.SizeFactor))
	if err != nil {
		b.Fatal(err)
	}
	return res.Throughput()
}

// BenchmarkAblation_CommitDedup compares the per-file commit-queue dedup
// against committing on every dequeue.
func BenchmarkAblation_CommitDedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := benchOptions()
		with := runXcdn32(b, bench.SysRedbudDCSD, opt)
		opt.CommitEvenIfClean = true
		without := runXcdn32(b, bench.SysRedbudDCSD, opt)
		if without > 0 {
			b.ReportMetric(with/without, "dedup-gain")
		}
	}
}

// BenchmarkAblation_SinglePool compares the double-space-pool (background
// standby refill) against a single pool with blocking refills.
func BenchmarkAblation_SinglePool(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := benchOptions()
		double := runXcdn32(b, bench.SysRedbudDCSD, opt)
		opt.SpaceNoPrefetch = true
		single := runXcdn32(b, bench.SysRedbudDCSD, opt)
		if single > 0 {
			b.ReportMetric(double/single, "double-pool-gain")
		}
	}
}

// BenchmarkAblation_FixedThreads compares the adaptive commit-thread pool
// against pools pinned at 1 and at the maximum.
func BenchmarkAblation_FixedThreads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := benchOptions()
		adaptive := runXcdn32(b, bench.SysRedbudDCSD, opt)
		opt.FixedCommitThreads = 1
		one := runXcdn32(b, bench.SysRedbudDCSD, opt)
		if one > 0 {
			b.ReportMetric(adaptive/one, "adaptive-over-1thread")
		}
		opt.FixedCommitThreads = 9
		nine := runXcdn32(b, bench.SysRedbudDCSD, opt)
		if nine > 0 {
			b.ReportMetric(adaptive/nine, "adaptive-over-9threads")
		}
	}
}

// BenchmarkAblation_NoMerge disables the device elevator's request merging,
// isolating how much of delayed commit's win is the merges themselves.
func BenchmarkAblation_NoMerge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := benchOptions()
		with := runXcdn32(b, bench.SysRedbudDCSD, opt)
		opt.DisableMerge = true
		without := runXcdn32(b, bench.SysRedbudDCSD, opt)
		if without > 0 {
			b.ReportMetric(with/without, "merge-gain")
		}
	}
}

// BenchmarkAblation_DelegationOff isolates space delegation: delayed commit
// with and without the double-space-pool.
func BenchmarkAblation_DelegationOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := benchOptions()
		sd := runXcdn32(b, bench.SysRedbudDCSD, opt)
		dc := runXcdn32(b, bench.SysRedbudDC, opt)
		if dc > 0 {
			b.ReportMetric(sd/dc, "delegation-gain")
		}
	}
}

// BenchmarkAblation_ReadAhead measures the sequential-prefetch extension on
// the read-heavy webproxy personality.
func BenchmarkAblation_ReadAhead(b *testing.B) {
	run := func(opt bench.Options) float64 {
		c := bench.Build(bench.SysRedbudDCSD, opt)
		defer c.Close()
		res, err := bench.RunDistributed(c, workload.Webproxy(opt.Seed).Scale(opt.SizeFactor))
		if err != nil {
			b.Fatal(err)
		}
		return res.Throughput()
	}
	for i := 0; i < b.N; i++ {
		opt := benchOptions()
		without := run(opt)
		opt.ReadAhead = 256 << 10
		with := run(opt)
		if without > 0 {
			b.ReportMetric(with/without, "readahead-gain")
		}
	}
}
