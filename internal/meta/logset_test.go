package meta

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"redbud/internal/alloc"
	"redbud/internal/blockdev"
	"redbud/internal/clock"
)

func newLogSetDev(t *testing.T) *blockdev.Device {
	t.Helper()
	d := blockdev.New(blockdev.Config{Size: 128 << 20, Model: blockdev.ZeroLatency(), Clock: clock.Real(1)})
	t.Cleanup(d.Close)
	return d
}

func TestOpenLogSetFreshDevice(t *testing.T) {
	dev := newLogSetDev(t)
	ls, j, err := OpenLogSet(dev, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Generation() != 1 || ls.ActiveRegion() != 0 {
		t.Fatalf("fresh log set gen=%d region=%d", ls.Generation(), ls.ActiveRegion())
	}
	if j.Generation() != 1 {
		t.Fatalf("journal gen = %d", j.Generation())
	}
	// Reopen: same state (superblock persisted).
	ls2, j2, err := OpenLogSet(dev, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	if ls2.Generation() != 1 || j2.Generation() != 1 {
		t.Fatal("superblock not persisted")
	}
}

func TestOpenLogSetTooLarge(t *testing.T) {
	dev := newLogSetDev(t)
	if _, _, err := OpenLogSet(dev, 1<<30); err == nil {
		t.Fatal("oversized log set accepted")
	}
}

func TestOpenLogSetDamagedSuperblockReformats(t *testing.T) {
	dev := newLogSetDev(t)
	if _, _, err := OpenLogSet(dev, 16<<20); err != nil {
		t.Fatal(err)
	}
	// Flip a superblock byte.
	raw, _ := dev.Read(0, 1)
	dev.Write(0, []byte{raw[0] ^ 0xff})
	ls, _, err := OpenLogSet(dev, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Generation() != 1 {
		t.Fatalf("reformatted gen = %d", ls.Generation())
	}
}

// checkpointWorld builds a store with rich state over a log set.
func checkpointWorld(t *testing.T) (*blockdev.Device, *LogSet, *Store, func() *alloc.AGSet) {
	t.Helper()
	dev := newLogSetDev(t)
	mkAGs := func() *alloc.AGSet { return alloc.NewUniformAGSet(alloc.RoundRobin, 0, 64<<20, 4) }
	ls, j, err := OpenLogSet(dev, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(Config{AGs: mkAGs(), Journal: j, Clock: clock.Real(1)})

	dir, err := s.Create(RootID, "data", TypeDir)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.Create(dir.ID, "committed.bin", TypeFile)
	lay, err := s.AllocLayout("c1", a.ID, 0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit("c1", a.ID, lay.Extents, 8192, time.Unix(42, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	b, _ := s.Create(dir.ID, "pending.bin", TypeFile)
	if _, err := s.AllocLayout("c2", b.ID, 0, 4096); err != nil {
		t.Fatal(err)
	}
	sp, err := s.Delegate("c3", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	cfile, _ := s.Create(RootID, "deleg.bin", TypeFile)
	ext := Extent{FileOff: 0, Len: 4096, Dev: uint32(sp.Dev), VolOff: sp.Off + 8192}
	if err := s.Commit("c3", cfile.ID, []Extent{ext}, 4096, time.Unix(43, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	return dev, ls, s, mkAGs
}

// verifyWorld checks the recovered state matches checkpointWorld (before any
// GC considerations: pass expectPending=false after a recovery that GC'd
// orphans).
func verifyWorld(t *testing.T, s *Store, expectPending bool) {
	t.Helper()
	dir, err := s.Lookup(RootID, "data")
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Lookup(dir.ID, "committed.bin")
	if err != nil || a.Size != 8192 {
		t.Fatalf("committed.bin: %+v, %v", a, err)
	}
	lay, err := s.GetLayout(a.ID, 0, 8192, 0)
	if err != nil || len(lay.Extents) == 0 {
		t.Fatalf("committed.bin layout: %+v, %v", lay, err)
	}
	c, err := s.Lookup(RootID, "deleg.bin")
	if err != nil || c.Size != 4096 {
		t.Fatalf("deleg.bin: %+v, %v", c, err)
	}
	b, err := s.Lookup(dir.ID, "pending.bin")
	if err != nil {
		t.Fatal(err)
	}
	blay, _ := s.GetLayout(b.ID, 0, 4096, LayoutWantUncommitted)
	if expectPending && len(blay.Extents) != 1 {
		t.Fatalf("pending extent lost: %+v", blay.Extents)
	}
	if !expectPending && len(blay.Extents) != 0 {
		t.Fatalf("orphan extent survived GC: %+v", blay.Extents)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dev, ls, s, mkAGs := checkpointWorld(t)

	j2, err := ls.Checkpoint(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if ls.Generation() != 2 || ls.ActiveRegion() != 1 {
		t.Fatalf("after checkpoint: gen=%d region=%d", ls.Generation(), ls.ActiveRegion())
	}
	s.SetJournal(j2)
	// Post-checkpoint mutation lands in the new log.
	if _, err := s.Create(RootID, "after.txt", TypeFile); err != nil {
		t.Fatal(err)
	}

	// Reopen from disk: replay must see snapshot + tail mutation.
	ls2, j3, err := OpenLogSet(dev, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	if ls2.Generation() != 2 || ls2.ActiveRegion() != 1 {
		t.Fatalf("reopened: gen=%d region=%d", ls2.Generation(), ls2.ActiveRegion())
	}
	rec, st, err := Recover(Config{AGs: mkAGs(), Journal: j3, Clock: clock.Real(1)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Torn {
		t.Fatal("checkpointed log reported torn")
	}
	verifyWorld(t, rec, false) // recovery GC'd the pending orphan
	if _, err := rec.Lookup(RootID, "after.txt"); err != nil {
		t.Fatalf("post-checkpoint record lost: %v", err)
	}
}

func TestCheckpointCompactsLog(t *testing.T) {
	dev, ls, s, _ := checkpointWorld(t)
	// Blow the log up with create/remove churn.
	for i := 0; i < 200; i++ {
		if _, err := s.Create(RootID, "churn", TypeFile); err != nil {
			t.Fatal(err)
		}
		if err := s.Remove(RootID, "churn"); err != nil {
			t.Fatal(err)
		}
	}
	_, j0, err := OpenLogSet(dev, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j0.Replay(func(*Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	before := j0.Tail()

	j2, err := ls.Checkpoint(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if j2.Tail() >= before/4 {
		t.Fatalf("checkpoint did not compact: %d -> %d bytes", before, j2.Tail())
	}
}

func TestCheckpointTwiceReusesFirstRegion(t *testing.T) {
	dev, ls, s, mkAGs := checkpointWorld(t)
	j2, err := ls.Checkpoint(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	s.SetJournal(j2)
	if _, err := s.Create(RootID, "between.txt", TypeFile); err != nil {
		t.Fatal(err)
	}
	j3, err := ls.Checkpoint(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	s.SetJournal(j3)
	if ls.Generation() != 3 || ls.ActiveRegion() != 0 {
		t.Fatalf("gen=%d region=%d", ls.Generation(), ls.ActiveRegion())
	}
	// Region 0 was reused: its old generation-1 records must not replay.
	_, j4, err := OpenLogSet(dev, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := Recover(Config{AGs: mkAGs(), Journal: j4, Clock: clock.Real(1)})
	if err != nil {
		t.Fatal(err)
	}
	verifyWorld(t, rec, false)
	if _, err := rec.Lookup(RootID, "between.txt"); err != nil {
		t.Fatalf("between.txt lost across double checkpoint: %v", err)
	}
}

// TestCrashBeforeSuperblockFlipKeepsOldLog simulates a crash after the
// snapshot is written but before the superblock flip: recovery must still
// use the old region.
func TestCrashBeforeSuperblockFlipKeepsOldLog(t *testing.T) {
	dev, ls, s, mkAGs := checkpointWorld(t)
	// Write the snapshot into the inactive region WITHOUT flipping, by
	// hand (simulating the crash window inside Checkpoint).
	snapshot := s.Snapshot()
	j := NewJournalGen(dev, ls.regionOff(1), 16<<20, ls.Generation()+1)
	for _, rec := range snapshot {
		if err := <-j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// "Crash": reopen. Superblock still points at region 0, gen 1.
	ls2, j2, err := OpenLogSet(dev, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	if ls2.Generation() != 1 || ls2.ActiveRegion() != 0 {
		t.Fatalf("gen=%d region=%d, want old log", ls2.Generation(), ls2.ActiveRegion())
	}
	rec, _, err := Recover(Config{AGs: mkAGs(), Journal: j2, Clock: clock.Real(1)})
	if err != nil {
		t.Fatal(err)
	}
	verifyWorld(t, rec, false)
}

// TestSnapshotOfSnapshotIsStable: snapshotting a store recovered from a
// snapshot yields an equivalent record stream (fixed point).
func TestSnapshotOfSnapshotIsStable(t *testing.T) {
	_, ls, s, mkAGs := checkpointWorld(t)
	snap1 := s.Snapshot()
	j2, err := ls.Checkpoint(snap1)
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := Recover(Config{AGs: mkAGs(), Journal: j2, Clock: clock.Real(1)})
	if err != nil {
		t.Fatal(err)
	}
	snap2 := rec.Snapshot()
	// Recovery GC'd the orphans, so snap2 is smaller; but re-recovering
	// from snap2 must reproduce identical state (compare snapshots).
	ls2Dev := newLogSetDev(t)
	ls2, j3, err := OpenLogSet(ls2Dev, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	j4, err := ls2.Checkpoint(snap2)
	if err != nil {
		t.Fatal(err)
	}
	_ = j3
	rec2, _, err := Recover(Config{AGs: mkAGs(), Journal: j4, Clock: clock.Real(1)})
	if err != nil {
		t.Fatal(err)
	}
	snap3 := rec2.Snapshot()
	if len(snap2) != len(snap3) {
		t.Fatalf("snapshot not a fixed point: %d vs %d records", len(snap2), len(snap3))
	}
	for i := range snap2 {
		a, b := snap2[i], snap3[i]
		if a.Type != b.Type || a.File != b.File || a.Name != b.Name || a.Owner != b.Owner ||
			a.Size != b.Size || len(a.Extents) != len(b.Extents) {
			t.Fatalf("record %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestBadSuperblockErrors(t *testing.T) {
	if !errors.Is(ErrBadSuperblock, ErrBadSuperblock) {
		t.Fatal("sentinel sanity")
	}
}

// TestCheckpointToAtomicUnderConcurrency hammers the store with mutations
// while checkpoints fire; no acknowledged mutation may be lost.
func TestCheckpointToAtomicUnderConcurrency(t *testing.T) {
	dev := newLogSetDev(t)
	mkAGs := func() *alloc.AGSet { return alloc.NewUniformAGSet(alloc.RoundRobin, 0, 64<<20, 4) }
	ls, j, err := OpenLogSet(dev, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(Config{AGs: mkAGs(), Journal: j, Clock: clock.Real(1)})

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			name := fmt.Sprintf("f-%d", i)
			if _, err := s.Create(RootID, name, TypeFile); err != nil {
				t.Errorf("create %s: %v", name, err)
				return
			}
		}
	}()
	for i := 0; i < 10; i++ {
		if err := s.CheckpointTo(ls); err != nil {
			t.Fatal(err)
		}
	}
	<-done

	// Every acknowledged create must survive recovery.
	_, jr, err := OpenLogSet(dev, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := Recover(Config{AGs: mkAGs(), Journal: jr, Clock: clock.Real(1)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := rec.Lookup(RootID, fmt.Sprintf("f-%d", i)); err != nil {
			t.Fatalf("f-%d lost across concurrent checkpoints: %v", i, err)
		}
	}
}
