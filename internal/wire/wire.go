// Package wire is the hand-rolled binary codec used by the RPC layer and the
// MDS journal. It favours predictable, allocation-light encoding over
// generality: fixed-width little-endian integers, length-prefixed byte
// strings, and sticky-error readers so call sites can decode a whole message
// and check the error once.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// ErrTruncated is reported when a reader runs past the end of its buffer.
var ErrTruncated = errors.New("wire: truncated message")

// ErrTooLong is reported when a length prefix exceeds the sanity cap.
var ErrTooLong = errors.New("wire: length prefix too large")

// maxLen caps byte-string lengths to defend against corrupt frames.
const maxLen = 64 << 20

// Marshaler is implemented by every wire message.
type Marshaler interface{ MarshalWire(*Buffer) }

// Unmarshaler is implemented by every wire message.
type Unmarshaler interface{ UnmarshalWire(*Reader) error }

// Buffer is an append-only encoder.
type Buffer struct{ b []byte }

// NewBuffer returns a buffer with the given capacity hint.
func NewBuffer(capacity int) *Buffer { return &Buffer{b: make([]byte, 0, capacity)} }

// Bytes returns the encoded bytes. The slice aliases the buffer.
func (w *Buffer) Bytes() []byte { return w.b }

// Len returns the number of encoded bytes.
func (w *Buffer) Len() int { return len(w.b) }

// Reset truncates the buffer for reuse.
func (w *Buffer) Reset() { w.b = w.b[:0] }

// PutU8 appends one byte.
func (w *Buffer) PutU8(v uint8) { w.b = append(w.b, v) }

// PutBool appends a boolean as one byte.
func (w *Buffer) PutBool(v bool) {
	if v {
		w.PutU8(1)
	} else {
		w.PutU8(0)
	}
}

// PutU16 appends a little-endian uint16.
func (w *Buffer) PutU16(v uint16) { w.b = binary.LittleEndian.AppendUint16(w.b, v) }

// PutU32 appends a little-endian uint32.
func (w *Buffer) PutU32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }

// PutU64 appends a little-endian uint64.
func (w *Buffer) PutU64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }

// PutI64 appends a little-endian int64.
func (w *Buffer) PutI64(v int64) { w.PutU64(uint64(v)) }

// PutF64 appends an IEEE-754 float64.
func (w *Buffer) PutF64(v float64) { w.PutU64(math.Float64bits(v)) }

// PutDuration appends a duration as nanoseconds.
func (w *Buffer) PutDuration(d time.Duration) { w.PutI64(int64(d)) }

// PutTime appends a time as Unix nanoseconds.
func (w *Buffer) PutTime(t time.Time) { w.PutI64(t.UnixNano()) }

// PutRaw appends p verbatim, with no length prefix. Used for frame payloads
// whose length is delimited by the frame itself.
func (w *Buffer) PutRaw(p []byte) { w.b = append(w.b, p...) }

// PutBytes appends a u32 length prefix followed by the bytes.
func (w *Buffer) PutBytes(p []byte) {
	w.PutU32(uint32(len(p)))
	w.b = append(w.b, p...)
}

// PutString appends a length-prefixed string.
func (w *Buffer) PutString(s string) {
	w.PutU32(uint32(len(s)))
	w.b = append(w.b, s...)
}

// Reader is a sticky-error decoder over a byte slice.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps p for decoding. The reader does not copy p.
func NewReader(p []byte) *Reader { return &Reader{b: p} }

// Reset rewinds the reader onto p, clearing any sticky error. It lets hot
// paths keep a stack-allocated Reader instead of calling NewReader per frame.
func (r *Reader) Reset(p []byte) { *r = Reader{b: p} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// fail records the first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.Remaining() < n {
		r.fail(fmt.Errorf("%w: need %d bytes, have %d", ErrTruncated, n, r.Remaining()))
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

// U8 decodes one byte.
func (r *Reader) U8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// Bool decodes a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U16 decodes a little-endian uint16.
func (r *Reader) U16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

// U32 decodes a little-endian uint32.
func (r *Reader) U32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// U64 decodes a little-endian uint64.
func (r *Reader) U64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// I64 decodes a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 decodes an IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Duration decodes a nanosecond duration.
func (r *Reader) Duration() time.Duration { return time.Duration(r.I64()) }

// Time decodes a Unix-nanosecond time in UTC.
func (r *Reader) Time() time.Time { return time.Unix(0, r.I64()).UTC() }

// Bytes decodes a length-prefixed byte string. The result is a copy.
func (r *Reader) Bytes() []byte {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	if n > maxLen {
		r.fail(fmt.Errorf("%w: %d", ErrTooLong, n))
		return nil
	}
	p := r.take(int(n))
	if p == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, p)
	return out
}

// BytesRef decodes a length-prefixed byte string without copying: the result
// aliases the reader's underlying buffer. Use only when the buffer outlives
// the decoded value and has a single consumer (e.g. RPC frames handed to
// exactly one waiter).
func (r *Reader) BytesRef() []byte {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	if n > maxLen {
		r.fail(fmt.Errorf("%w: %d", ErrTooLong, n))
		return nil
	}
	return r.take(int(n))
}

// String decodes a length-prefixed string.
func (r *Reader) String() string {
	n := r.U32()
	if r.err != nil {
		return ""
	}
	if n > maxLen {
		r.fail(fmt.Errorf("%w: %d", ErrTooLong, n))
		return ""
	}
	p := r.take(int(n))
	return string(p)
}

// bufPool recycles encode buffers across the RPC framing and journal append
// hot paths. Oversized buffers are dropped on Put so one huge message cannot
// pin its allocation forever.
var bufPool = sync.Pool{New: func() any { return new(Buffer) }}

// maxPooledBuf is the largest buffer capacity returned to the pool.
const maxPooledBuf = 64 << 10

// GetBuffer returns an empty encode buffer from the pool. Release it with
// PutBuffer once the encoded bytes have been copied out (device and network
// Send paths copy before returning).
func GetBuffer() *Buffer {
	b := bufPool.Get().(*Buffer)
	b.Reset()
	return b
}

// PutBuffer recycles a buffer obtained from GetBuffer. The caller must not
// touch the buffer (or slices aliasing it) afterwards.
func PutBuffer(b *Buffer) {
	if cap(b.b) > maxPooledBuf {
		return
	}
	bufPool.Put(b)
}

// Encode marshals m into a fresh byte slice.
func Encode(m Marshaler) []byte {
	var b Buffer
	m.MarshalWire(&b)
	return b.Bytes()
}

// Decode unmarshals p into m, requiring the whole buffer to be consumed.
func Decode(p []byte, m Unmarshaler) error {
	r := NewReader(p)
	if err := m.UnmarshalWire(r); err != nil {
		return err
	}
	if err := r.Err(); err != nil {
		return err
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("wire: %d trailing bytes after decode", r.Remaining())
	}
	return nil
}
