package meta

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"redbud/internal/alloc"
)

// This file implements the multi-shard side of the metadata store: the
// inode-to-shard partition, the cross-shard namespace intent table, and the
// two-phase create/remove/rename protocol that keeps a namespace spread over
// N independent stores recoverable after a crash of any of them.
//
// Partition model. Every inode — file or directory — is homed on exactly one
// shard, ShardOf(id). The home shard holds the inode (attributes, extents,
// space) and, for a directory, its dirent map; a child's dirent therefore
// lives on its *parent's* home shard. A shard records the two kinds of
// cross-shard edges it participates in:
//
//   - remote:       children listed in a local dirent map whose inode is
//     homed elsewhere (the dirent side of the edge);
//   - linkedRemote: local inodes whose single dirent lives elsewhere (the
//     inode side of the edge).
//
// Cross-shard mutations are client-orchestrated two-phase protocols. Phase
// one publishes a namespace intent (journaled, one live intent per inode per
// shard — publication conflicts serialize concurrent cross-shard operations
// on the same inode); the commit point is a single dirent mutation on one
// shard; remaining steps are idempotent and individually retryable. The
// create/remove commit points (LinkRemote/UnlinkRemote) are exactly-once,
// not merely idempotent: the executing shard durably marks the child in
// linkDone/unlinkDone, because the intent lives on a *different* shard than
// the dirent, so a rename on the dirent's shard can move the entry between
// phases — a retry that merely probed the entry would then re-insert a
// second reference, or claim an unlink it never performed and let the home
// shard free a still-referenced inode. A client crash at any point leaves
// live intents that ResolveNSIntents — run on a quiesced cluster — drives to
// the unique consistent outcome by probing which side of the commit point
// the surviving dirents are on.
//
//	create  f under d (t = ShardOf(f) ≠ p = ShardOf(d)):
//	  1. CreateDetached on t   — mint inode + nsCreate intent
//	  2. LinkRemote on p       — insert dirent          (COMMIT POINT)
//	  3. NSCommit(create) on t — graduate to linkedRemote
//	remove  f from d (h = ShardOf(f) ≠ p):
//	  1. NSPrepare(remove) on h — validate (dir emptiness), publish intent
//	  2. UnlinkRemote on p      — delete dirent          (COMMIT POINT)
//	  3. NSCommit(remove) on h  — delete inode, free space
//	rename  f: (sp, srcName) → (dp, dstName), sp ≠ dp, files only:
//	  1. NSPrepare(renameSrc) on sp — validate src dirent, publish intent
//	  2. NSPrepare(renameDst) on dp — reserve dst name, publish intent
//	  3. NSCommit(renameSrc) on sp  — delete src dirent  (COMMIT POINT)
//	  4. NSCommit(renameDst) on dp  — insert dst dirent
//
// The rename commit order is deliberate: the src dirent is deleted first, so
// a crash between 3 and 4 leaves the dst intent (journaled in step 2) to
// roll the insert forward — the file converges to exactly one of the two
// names, never both and never neither. A live intent on an inode blocks
// every other namespace operation on it (and an NSRemove intent on a
// directory blocks inserts into it), so the probes stay unambiguous.

// ShardOf maps an inode to its home shard. The partition reuses the
// per-inode stripe split: the id's stripe class (id mod inodeStripes) is
// folded over the shard count, so shard counts dividing inodeStripes give
// every shard an equal, disjoint set of stripe classes, and resolution
// depends only on the id — stable across re-handshakes and restarts.
func ShardOf(id FileID, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int((uint64(id) % inodeStripes) % uint64(shards))
}

// PlaceShard picks the home shard for a new child of parent named name: an
// FNV-1a hash of (parent, name) folded over the shard count. The same
// (parent, name) always lands on the same shard, which keeps sharded runs
// replayable from their seed.
func PlaceShard(parent FileID, name string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	var pb [8]byte
	binary.LittleEndian.PutUint64(pb[:], uint64(parent))
	h.Write(pb[:])
	h.Write([]byte(name))
	return int(h.Sum64() % uint64(shards))
}

// NSIntentKind enumerates the cross-shard namespace intent kinds.
type NSIntentKind uint8

// Namespace intent kinds.
const (
	NSCreate NSIntentKind = iota + 1
	NSRemove
	NSRenameSrc
	NSRenameDst
)

func (k NSIntentKind) String() string {
	switch k {
	case NSCreate:
		return "create"
	case NSRemove:
		return "remove"
	case NSRenameSrc:
		return "rename-src"
	case NSRenameDst:
		return "rename-dst"
	}
	return fmt.Sprintf("ns-kind-%d", uint8(k))
}

// NSIntent is one live cross-shard namespace intent (introspection view).
// Parent/Name locate the inode's dirent on its parent's shard (for NSCreate
// the entry about to be inserted, for NSRemove/NSRenameSrc the existing one,
// for NSRenameDst the *source* entry the probe checks); DstParent/DstName is
// the reserved destination of an NSRenameDst.
type NSIntent struct {
	File      FileID
	Kind      NSIntentKind
	Type      FileType
	Parent    FileID
	Name      string
	DstParent FileID
	DstName   string
}

// nameKey identifies one directory entry.
type nameKey struct {
	parent FileID
	name   string
}

// nsIntentTable holds a shard's live namespace intents, keyed by inode — at
// most one live intent per inode per shard, so conflicting cross-shard
// operations on the same inode serialize at publish time. NSRenameDst
// intents additionally reserve their destination name, which every dirent
// insert checks.
//
// Lock hierarchy: mu ranks between the write-intent table and delegation
// (namespace → stripe → intent table → ns-intent table → delegation →
// journal reservation). Every mutation happens under the exclusive
// namespace lock; mu exists so read-side guards could move under the shared
// lock later without re-ranking, and is never held across a blocking
// operation.
type nsIntentTable struct {
	mu       sync.Mutex
	byFile   map[FileID]NSIntent
	reserved map[nameKey]FileID
}

func newNSIntentTable() *nsIntentTable {
	return &nsIntentTable{
		byFile:   make(map[FileID]NSIntent),
		reserved: make(map[nameKey]FileID),
	}
}

// publish records in, rejecting a conflicting live intent on the same inode
// or destination name. Republishing a byte-identical intent is an idempotent
// success (published=false): a client retrying a lost NSPrepare reply must
// not conflict with itself.
func (t *nsIntentTable) publish(in NSIntent) (published bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if have, ok := t.byFile[in.File]; ok {
		if have == in {
			return false, nil
		}
		return false, fmt.Errorf("%w: inode %d already under a %s intent", ErrNSConflict, in.File, have.Kind)
	}
	if in.Kind == NSRenameDst {
		key := nameKey{in.DstParent, in.DstName}
		if _, dup := t.reserved[key]; dup {
			return false, fmt.Errorf("%w: %q already reserved by a pending rename", ErrNSConflict, in.DstName)
		}
		t.reserved[key] = in.File
	}
	t.byFile[in.File] = in
	return true, nil
}

// drop removes the inode's live intent (and its name reservation).
func (t *nsIntentTable) drop(file FileID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if in, ok := t.byFile[file]; ok {
		if in.Kind == NSRenameDst {
			delete(t.reserved, nameKey{in.DstParent, in.DstName})
		}
		delete(t.byFile, file)
	}
}

// get returns the live intent on file, if any.
func (t *nsIntentTable) get(file FileID) (NSIntent, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	in, ok := t.byFile[file]
	return in, ok
}

// has reports a live intent on file.
func (t *nsIntentTable) has(file FileID) bool {
	_, ok := t.get(file)
	return ok
}

// reservedName reports whether (parent, name) is reserved by a pending
// rename destination.
func (t *nsIntentTable) reservedName(parent FileID, name string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.reserved[nameKey{parent, name}]
	return ok
}

// removePending reports a live NSRemove intent on dir — a directory about to
// be deleted, into which no entry may be inserted.
func (t *nsIntentTable) removePending(dir FileID) bool {
	in, ok := t.get(dir)
	return ok && in.Kind == NSRemove
}

// count returns the number of live intents.
func (t *nsIntentTable) count() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return int64(len(t.byFile))
}

// snapshot returns every live intent, sorted by inode for determinism.
func (t *nsIntentTable) snapshot() []NSIntent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]NSIntent, 0, len(t.byFile))
	for _, in := range t.byFile {
		out = append(out, in)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].File < out[j].File })
	return out
}

// ---------------------------------------------------------------------------
// Store: shard identity and id minting

// Shard returns the store's (shard index, shard count); (0, 1) when
// unsharded.
func (s *Store) Shard() (int, int) {
	if s.cfg.ShardCount <= 1 {
		return 0, 1
	}
	return s.cfg.Shard, s.cfg.ShardCount
}

// ownsID reports whether this store is inode id's home shard.
func (s *Store) ownsID(id FileID) bool {
	return s.cfg.ShardCount <= 1 || ShardOf(id, s.cfg.ShardCount) == s.cfg.Shard
}

// mintID returns the next locally-owned inode number. Each shard only ever
// mints ids it owns, so ids are unique across the cluster without
// coordination. Caller holds ns exclusively.
func (s *Store) mintID() FileID {
	for !s.ownsID(s.nextID) {
		s.nextID++
	}
	id := s.nextID
	s.nextID++
	return id
}

// NSIntents returns the shard's live namespace intents (tests, fsck).
func (s *Store) NSIntents() []NSIntent {
	return s.nsIntents.snapshot()
}

// ---------------------------------------------------------------------------
// Dirent-edge primitives

// applyLink inserts the dirent (parent, name) → child and maintains the
// cross-shard edge maps. Caller holds ns exclusively.
func (s *Store) applyLink(parent FileID, name string, child FileID, typ FileType) {
	s.dirents[parent][name] = child
	if _, local := s.inodes[child]; local {
		delete(s.linkedRemote, child)
	} else {
		s.remote[child] = typ
	}
}

// applyUnlink deletes the dirent (parent, name) and maintains the
// cross-shard edge maps: a local inode losing its local dirent becomes
// linkedRemote (its entry is moving to another shard); a remote child's edge
// record is dropped. Caller holds ns exclusively.
func (s *Store) applyUnlink(parent FileID, name string) {
	child, ok := s.dirents[parent][name]
	if !ok {
		return
	}
	delete(s.dirents[parent], name)
	if _, local := s.inodes[child]; local {
		s.linkedRemote[child] = struct{}{}
	} else {
		delete(s.remote, child)
	}
}

// freeInode deletes inode id and returns the spans to free (extents inside
// delegations are handed back to the chunk's bookkeeping instead). Caller
// holds ns exclusively and frees the spans after dropping it.
func (s *Store) freeInode(id FileID) []alloc.Span {
	ino, ok := s.inodes[id]
	if !ok {
		return nil
	}
	s.intents.dropFile(id)
	var freed []alloc.Span
	for _, e := range ino.extents {
		if d := s.findDelegationAny(e); d != nil {
			// See applyRemove: the chunk stays reserved, but the range
			// leaves `used` so delegation return or lease GC reclaims it.
			d.used = removeIval(d.used, e.VolOff, e.VolOff+e.Len)
			continue
		}
		freed = append(freed, alloc.Span{Dev: int(e.Dev), Off: e.VolOff, Len: e.Len})
	}
	delete(s.inodes, id)
	delete(s.dirents, id)
	delete(s.linkedRemote, id)
	return freed
}

// ---------------------------------------------------------------------------
// Cross-shard protocol operations (client-facing, journaled, idempotent)

// CreateDetached mints a locally-owned inode for a child whose dirent will
// live on another shard — phase one of the cross-shard create. No dirent
// references the inode yet; the nsCreate intent records the remote (parent,
// name) the client is about to link it under. The client follows with
// LinkRemote on the parent's shard (the commit point) and NSCommit here; on
// a definitive link failure it rolls back with NSAbort, and a crash leaves
// the intent for ResolveNSIntents.
func (s *Store) CreateDetached(parent FileID, name string, typ FileType) (Attr, error) {
	if name == "" || name == "." || name == ".." {
		return Attr{}, fmt.Errorf("%w: %q", ErrInvalidName, name)
	}
	s.ns.Lock()
	id := s.mintID()
	now := s.clk.Now()
	if _, err := s.nsIntents.publish(NSIntent{File: id, Kind: NSCreate, Type: typ, Parent: parent, Name: name}); err != nil {
		s.ns.Unlock()
		return Attr{}, err
	}
	s.nsPrepares.Inc()
	s.applyCreateDetached(id, typ, now)
	attr := s.inodes[id].attr()
	wait := s.journalAppend(&Record{Type: RecNSIntent, NSKind: NSCreate, File: id, Parent: parent, Name: name, FType: typ, MTime: now})
	s.ns.Unlock()
	if err := wait(); err != nil {
		return Attr{}, err
	}
	return attr, nil
}

// applyCreateDetached materializes a detached inode. Caller holds ns
// exclusively.
func (s *Store) applyCreateDetached(id FileID, typ FileType, mtime time.Time) {
	s.inodes[id] = &inode{id: id, typ: typ, mtime: mtime, nlink: 1}
	if typ == TypeDir {
		s.dirents[id] = make(map[string]FileID)
	}
	if id >= s.nextID {
		s.nextID = id + 1
	}
}

// LinkRemote inserts the dirent (parent, name) → child for an inode homed on
// another shard — the commit point of the cross-shard create. Exactly-once: a
// retry whose insert already committed succeeds without touching the
// namespace, even if a concurrent rename has since moved the entry —
// re-inserting would fork a second reference to the inode. An entry held by
// a different inode fails with ErrExists; a pending removal of parent or a
// rename reservation on the name fails with ErrNSConflict.
func (s *Store) LinkRemote(parent FileID, name string, child FileID, typ FileType) error {
	if name == "" || name == "." || name == ".." {
		return fmt.Errorf("%w: %q", ErrInvalidName, name)
	}
	s.ns.Lock()
	if _, done := s.linkDone[child]; done {
		s.ns.Unlock()
		return nil // retry of a commit point that already executed
	}
	dir, ok := s.dirents[parent]
	if !ok {
		s.ns.Unlock()
		return fmt.Errorf("%w: parent %d", ErrNotFound, parent)
	}
	if have, dup := dir[name]; dup {
		s.ns.Unlock()
		if have == child {
			return nil // retry of our own insert
		}
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	if s.nsIntents.removePending(parent) {
		s.ns.Unlock()
		return fmt.Errorf("%w: directory %d has a pending remove", ErrNSConflict, parent)
	}
	if s.nsIntents.reservedName(parent, name) {
		s.ns.Unlock()
		return fmt.Errorf("%w: %q reserved by a pending rename", ErrNSConflict, name)
	}
	s.applyLink(parent, name, child, typ)
	s.linkDone[child] = struct{}{}
	wait := s.journalAppend(&Record{Type: RecLinkRemote, File: child, Parent: parent, Name: name, FType: typ})
	s.ns.Unlock()
	return wait()
}

// UnlinkRemote deletes the dirent (parent, name) → child — the commit point
// of the cross-shard remove. Exactly-once: a retry whose delete already
// committed succeeds, but an entry this shard never unlinked — never
// inserted, or moved away by a concurrent rename (the remove intent lives on
// the child's home shard, which renames on this shard cannot see) — fails
// with ErrNotFound so the client aborts the remove instead of freeing an
// inode that still has a live dirent elsewhere. A live intent on the child (a
// concurrent cross-shard rename routed through this shard) fails with
// ErrNSConflict, keeping the remove probe unambiguous.
func (s *Store) UnlinkRemote(parent FileID, name string, child FileID) error {
	s.ns.Lock()
	if _, done := s.unlinkDone[child]; done {
		s.ns.Unlock()
		return nil // retry of a commit point that already executed
	}
	dir, ok := s.dirents[parent]
	if !ok {
		s.ns.Unlock()
		return fmt.Errorf("%w: parent %d", ErrNotFound, parent)
	}
	if have, ok := dir[name]; !ok || have != child {
		s.ns.Unlock()
		return fmt.Errorf("%w: entry %q → %d", ErrNotFound, name, child)
	}
	if s.nsIntents.has(child) {
		s.ns.Unlock()
		return fmt.Errorf("%w: inode %d is under a namespace intent", ErrNSConflict, child)
	}
	s.applyUnlink(parent, name)
	s.unlinkDone[child] = struct{}{}
	wait := s.journalAppend(&Record{Type: RecUnlinkRemote, File: child, Parent: parent, Name: name})
	s.ns.Unlock()
	return wait()
}

// NSPrepare publishes a namespace intent for a cross-shard remove or rename
// — phase one on the shard the kind addresses (NSRemove: the inode's home;
// NSRenameSrc: the source parent's shard; NSRenameDst: the destination
// parent's shard, reserving the destination name). parent/name locate the
// inode's current dirent; dstParent/dstName the rename destination; typ the
// inode's type (NSRenameDst, for the edge maps at roll-forward). Idempotent
// for a byte-identical retry.
func (s *Store) NSPrepare(file FileID, kind NSIntentKind, typ FileType, parent FileID, name string, dstParent FileID, dstName string) error {
	in := NSIntent{File: file, Kind: kind, Type: typ, Parent: parent, Name: name, DstParent: dstParent, DstName: dstName}
	s.ns.Lock()
	switch kind {
	case NSRemove:
		ino, ok := s.inodes[file]
		if !ok {
			s.ns.Unlock()
			return fmt.Errorf("%w: inode %d not homed here", ErrWrongShard, file)
		}
		if ino.typ == TypeDir && len(s.dirents[file]) > 0 {
			s.ns.Unlock()
			return fmt.Errorf("%w: inode %d", ErrNotEmpty, file)
		}
	case NSRenameSrc:
		if id, ok := s.dirents[parent][name]; !ok || id != file {
			s.ns.Unlock()
			return fmt.Errorf("%w: %q", ErrNotFound, name)
		}
	case NSRenameDst:
		if dstName == "" || dstName == "." || dstName == ".." {
			s.ns.Unlock()
			return fmt.Errorf("%w: %q", ErrInvalidName, dstName)
		}
		dir, ok := s.dirents[dstParent]
		if !ok {
			s.ns.Unlock()
			return fmt.Errorf("%w: parent %d", ErrNotFound, dstParent)
		}
		if _, dup := dir[dstName]; dup {
			s.ns.Unlock()
			return fmt.Errorf("%w: %q", ErrExists, dstName)
		}
		if s.nsIntents.removePending(dstParent) {
			s.ns.Unlock()
			return fmt.Errorf("%w: directory %d has a pending remove", ErrNSConflict, dstParent)
		}
	default:
		s.ns.Unlock()
		return fmt.Errorf("%w: NSPrepare kind %s", ErrNSConflict, kind)
	}
	published, err := s.nsIntents.publish(in)
	if err != nil || !published {
		s.ns.Unlock()
		return err
	}
	s.nsPrepares.Inc()
	wait := s.journalAppend(&Record{
		Type: RecNSIntent, NSKind: kind, File: file, FType: typ,
		Parent: parent, Name: name, DstParent: dstParent, DstName: dstName,
	})
	s.ns.Unlock()
	return wait()
}

// NSCommit resolves the live intent on file forward: create graduates the
// detached inode to linkedRemote; remove deletes the inode and frees its
// space; renameSrc deletes the source dirent (the rename's commit point);
// renameDst inserts the destination dirent and releases the reservation.
// Idempotent: no live intent of the given kind means a previous attempt (or
// resolution) already ran, and succeeds without journaling.
func (s *Store) NSCommit(file FileID, kind NSIntentKind) error {
	s.ns.Lock()
	in, ok := s.nsIntents.get(file)
	if !ok || in.Kind != kind {
		s.ns.Unlock()
		return nil
	}
	freed := s.applyNSCommit(in)
	s.nsCommits.Inc()
	wait := s.journalAppend(&Record{Type: RecNSCommit, NSKind: kind, File: file})
	s.ns.Unlock()
	for _, sp := range freed {
		_ = s.cfg.AGs.FreeSpan(sp)
	}
	return wait()
}

// applyNSCommit mutates state for a committed intent. Caller holds ns
// exclusively and frees the returned spans after dropping it.
func (s *Store) applyNSCommit(in NSIntent) []alloc.Span {
	s.nsIntents.drop(in.File)
	switch in.Kind {
	case NSCreate:
		if _, ok := s.inodes[in.File]; ok {
			s.linkedRemote[in.File] = struct{}{}
		}
	case NSRemove:
		return s.freeInode(in.File)
	case NSRenameSrc:
		if id, ok := s.dirents[in.Parent][in.Name]; ok && id == in.File {
			s.applyUnlink(in.Parent, in.Name)
		}
	case NSRenameDst:
		if _, ok := s.dirents[in.DstParent]; ok {
			s.applyLink(in.DstParent, in.DstName, in.File, in.Type)
		}
	}
	return nil
}

// NSAbort resolves the live intent on file backward: create deletes the
// detached inode and frees its space; the other kinds just drop the intent
// (and any name reservation), leaving the namespace untouched. Idempotent.
func (s *Store) NSAbort(file FileID, kind NSIntentKind) error {
	s.ns.Lock()
	in, ok := s.nsIntents.get(file)
	if !ok || in.Kind != kind {
		s.ns.Unlock()
		return nil
	}
	freed := s.applyNSAbort(in)
	s.nsAborts.Inc()
	wait := s.journalAppend(&Record{Type: RecNSAbort, NSKind: kind, File: file})
	s.ns.Unlock()
	for _, sp := range freed {
		_ = s.cfg.AGs.FreeSpan(sp)
	}
	return wait()
}

// applyNSAbort mutates state for an aborted intent. Caller holds ns
// exclusively and frees the returned spans after dropping it.
func (s *Store) applyNSAbort(in NSIntent) []alloc.Span {
	s.nsIntents.drop(in.File)
	if in.Kind == NSCreate {
		return s.freeInode(in.File)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Quiesced resolution

// ResolveNSIntents drives every live cross-shard namespace intent on a
// QUIESCED cluster (no in-flight clients — end of a chaos run, or recovery
// of all shards) to its unique consistent outcome. stores must be indexed by
// shard. Renames resolve first: a live renameSrc intent means the commit
// point (source-dirent delete) never happened, so the rename aborts; a live
// renameDst intent probes the source dirent — still present means abort,
// gone means the commit point passed and the destination insert rolls
// forward. Creates and removes then probe globally for any dirent
// referencing the inode (a concurrent rename may have moved it): a create
// with a surviving dirent graduates, without one it aborts; a remove is the
// mirror image. Every resolution step goes through the journaled idempotent
// NSCommit/NSAbort path, so a crash during resolution is itself recoverable.
func ResolveNSIntents(stores []*Store) error {
	n := len(stores)
	probe := func(parent FileID, name string, file FileID) bool {
		ps := stores[ShardOf(parent, n)]
		ps.ns.RLock()
		id, ok := ps.dirents[parent][name]
		ps.ns.RUnlock()
		return ok && id == file
	}
	anyDirent := func(file FileID) bool {
		for _, ps := range stores {
			ps.ns.RLock()
			for _, ents := range ps.dirents {
				for _, cid := range ents {
					if cid == file {
						ps.ns.RUnlock()
						return true
					}
				}
			}
			ps.ns.RUnlock()
		}
		return false
	}
	resolve := func(pass func(in NSIntent) (commit, skip bool)) error {
		for _, s := range stores {
			for _, in := range s.nsIntents.snapshot() {
				commit, skip := pass(in)
				if skip {
					continue
				}
				var err error
				if commit {
					err = s.NSCommit(in.File, in.Kind)
				} else {
					err = s.NSAbort(in.File, in.Kind)
				}
				if err != nil {
					return err
				}
			}
		}
		return nil
	}
	// Pass 1: renames (settles where every moved dirent ends up).
	if err := resolve(func(in NSIntent) (bool, bool) {
		switch in.Kind {
		case NSRenameSrc:
			return false, false
		case NSRenameDst:
			return !probe(in.Parent, in.Name, in.File), false
		}
		return false, true
	}); err != nil {
		return err
	}
	// Pass 2: creates. Pass 3: removes (after creates, so a rolled-back
	// create's dirent cannot keep an unrelated remove alive — ids are unique,
	// so the passes are in fact independent; the order just keeps the scan
	// deterministic).
	if err := resolve(func(in NSIntent) (bool, bool) {
		return anyDirent(in.File), in.Kind != NSCreate
	}); err != nil {
		return err
	}
	return resolve(func(in NSIntent) (bool, bool) {
		return !anyDirent(in.File), in.Kind != NSRemove
	})
}
