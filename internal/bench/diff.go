package bench

import (
	"encoding/json"
	"fmt"
)

// diff.go compares a freshly generated benchmark report against the baseline
// committed under bench/baselines/, so a commit that slows the commit path
// fails CI instead of silently resetting the bar. Reports are matched by
// their "figure" field; all numbers are virtual-time, so runs are comparable
// across machines as long as the run parameters (clients, scale, size) agree.

// CompareReports diffs current against baseline with a relative tolerance
// band tol (0.10 = a metric may be up to 10% worse than the baseline before
// it counts). It returns one human-readable line per regression; an empty
// slice means the run is at least as good as the baseline everywhere, within
// tolerance. Comparing reports of different kinds or run parameters is an
// error, not a regression — the numbers would be meaningless.
func CompareReports(baseline, current []byte, tol float64) ([]string, error) {
	kindOf := func(data []byte, label string) (string, error) {
		var probe struct {
			Figure string `json:"figure"`
		}
		if err := json.Unmarshal(data, &probe); err != nil {
			return "", fmt.Errorf("%s: %w", label, err)
		}
		if probe.Figure == "" {
			return "", fmt.Errorf("%s: no \"figure\" field", label)
		}
		return probe.Figure, nil
	}
	bk, err := kindOf(baseline, "baseline")
	if err != nil {
		return nil, err
	}
	ck, err := kindOf(current, "current")
	if err != nil {
		return nil, err
	}
	if bk != ck {
		return nil, fmt.Errorf("kind mismatch: baseline is figure %q, current is figure %q", bk, ck)
	}
	switch bk {
	case "7":
		return compareMDS(baseline, current, tol)
	case "obs":
		return compareObs(baseline, current, tol)
	case "visibility":
		return compareVisibility(baseline, current, tol)
	case "shards":
		return compareShards(baseline, current, tol)
	default:
		return nil, fmt.Errorf("no comparator for figure %q", bk)
	}
}

// checkParams rejects comparisons across different run shapes.
func checkParams(what string, base, cur float64) error {
	if base != cur {
		return fmt.Errorf("run parameter mismatch: %s is %g in baseline, %g in current", what, base, cur)
	}
	return nil
}

// compareMDS checks every Figure 7 cell: ops/sec and per-client MB/s are
// higher-is-better and must stay within tol of the baseline.
func compareMDS(baseline, current []byte, tol float64) ([]string, error) {
	var base, cur MDSReport
	if err := json.Unmarshal(baseline, &base); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(current, &cur); err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	if err := checkParams("clients", float64(base.Clients), float64(cur.Clients)); err != nil {
		return nil, err
	}
	if err := checkParams("size_factor", base.Size, cur.Size); err != nil {
		return nil, err
	}
	type key struct{ daemons, degree int }
	cells := map[key]Fig7Cell{}
	for _, c := range cur.Cells {
		cells[key{c.Daemons, c.Degree}] = c
	}
	var regs []string
	for _, b := range base.Cells {
		c, ok := cells[key{b.Daemons, b.Degree}]
		if !ok {
			regs = append(regs, fmt.Sprintf("cell daemons=%d degree=%d: missing from current report", b.Daemons, b.Degree))
			continue
		}
		if floor := b.OpsPerSec * (1 - tol); c.OpsPerSec < floor {
			regs = append(regs, fmt.Sprintf("cell daemons=%d degree=%d: ops/sec %.1f < %.1f (baseline %.1f - %.0f%%)",
				b.Daemons, b.Degree, c.OpsPerSec, floor, b.OpsPerSec, tol*100))
		}
		if floor := b.PerClient * (1 - tol); c.PerClient < floor {
			regs = append(regs, fmt.Sprintf("cell daemons=%d degree=%d: per-client MB/s %.2f < %.2f (baseline %.2f - %.0f%%)",
				b.Daemons, b.Degree, c.PerClient, floor, b.PerClient, tol*100))
		}
	}
	return regs, nil
}

// minConflictSpeedup is the floor on off/on conflict-read mean latency the
// visibility gate enforces. The observed separation is well over an order of
// magnitude; the floor is set far below it so only a broken early-visibility
// path (which collapses the ratio to ~1) trips the gate, not run-to-run
// queue-depth noise.
const minConflictSpeedup = 4.0

// compareVisibility checks the early-visibility report. Varmail throughput
// is higher-is-better and banded against the baseline per knob setting. The
// conflict-read columns are deliberately NOT banded against the baseline:
// both rows measure a commit-queue stall whose depth swings with scheduler
// noise well beyond any useful tolerance. What is stable — and what the
// feature promises — is the separation between the rows, so the gate is the
// speedup itself: with visibility on, conflict reads must stay at least
// minConflictSpeedup times faster than committed-only.
func compareVisibility(baseline, current []byte, tol float64) ([]string, error) {
	var base, cur VisibilityReport
	if err := json.Unmarshal(baseline, &base); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(current, &cur); err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	if err := checkParams("clients", float64(base.Clients), float64(cur.Clients)); err != nil {
		return nil, err
	}
	if err := checkParams("size_factor", base.Size, cur.Size); err != nil {
		return nil, err
	}
	rows := map[bool]VisibilityRow{}
	for _, r := range cur.Rows {
		rows[r.Visibility] = r
	}
	name := func(vis bool) string {
		if vis {
			return "on"
		}
		return "off"
	}
	var regs []string
	for _, b := range base.Rows {
		c, ok := rows[b.Visibility]
		if !ok {
			regs = append(regs, fmt.Sprintf("visibility=%s: missing from current report", name(b.Visibility)))
			continue
		}
		if floor := b.VarmailOpsPerSec * (1 - tol); c.VarmailOpsPerSec < floor {
			regs = append(regs, fmt.Sprintf("visibility=%s: varmail ops/sec %.1f < %.1f (baseline %.1f - %.0f%%)",
				name(b.Visibility), c.VarmailOpsPerSec, floor, b.VarmailOpsPerSec, tol*100))
		}
	}
	on, okOn := rows[true]
	off, okOff := rows[false]
	if okOn && okOff && on.ConflictMeanUS > 0 {
		if speedup := off.ConflictMeanUS / on.ConflictMeanUS; speedup < minConflictSpeedup {
			regs = append(regs, fmt.Sprintf("early visibility conflict-read speedup %.1fx < required %.0fx (on %.1fus vs off %.1fus)",
				speedup, minConflictSpeedup, on.ConflictMeanUS, off.ConflictMeanUS))
		}
	}
	return regs, nil
}

// minShardSpeedup is the floor on the 4-shard/1-shard commit-throughput
// ratio the sharding gate enforces. A working multi-MDS partition scales
// near-linearly up to four shards at this committer population (observed
// well above 3x); the floor is set at the acceptance bar so only a sharding
// path that has collapsed back to a shared bottleneck — one journal, one
// daemon pool, a global lock — trips the gate, not scheduler noise.
const minShardSpeedup = 2.0

// compareShards checks the namespace-sharding report. Per-shard-count
// commit throughput is higher-is-better and banded against the baseline.
// On top of the relative bands, the scaling floor itself is asserted on the
// current report: four shards must deliver at least minShardSpeedup times
// the single-shard throughput, whatever the baseline says — a baseline
// captured on a slow runner must not launder away the figure's one claim.
func compareShards(baseline, current []byte, tol float64) ([]string, error) {
	var base, cur ShardsReport
	if err := json.Unmarshal(baseline, &base); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(current, &cur); err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	if err := checkParams("clients", float64(base.Clients), float64(cur.Clients)); err != nil {
		return nil, err
	}
	if err := checkParams("size_factor", base.Size, cur.Size); err != nil {
		return nil, err
	}
	rows := map[int]ShardsRow{}
	for _, r := range cur.Rows {
		rows[r.Shards] = r
	}
	var regs []string
	for _, b := range base.Rows {
		c, ok := rows[b.Shards]
		if !ok {
			regs = append(regs, fmt.Sprintf("shards=%d: missing from current report", b.Shards))
			continue
		}
		if floor := b.CommitsPerSec * (1 - tol); c.CommitsPerSec < floor {
			regs = append(regs, fmt.Sprintf("shards=%d: commits/sec %.1f < %.1f (baseline %.1f - %.0f%%)",
				b.Shards, c.CommitsPerSec, floor, b.CommitsPerSec, tol*100))
		}
	}
	one, okOne := rows[1]
	four, okFour := rows[4]
	if okOne && okFour && one.CommitsPerSec > 0 {
		if speedup := four.CommitsPerSec / one.CommitsPerSec; speedup < minShardSpeedup {
			regs = append(regs, fmt.Sprintf("sharding speedup %.2fx at 4 shards < required %.1fx (1 shard %.0f/s vs 4 shards %.0f/s)",
				speedup, minShardSpeedup, one.CommitsPerSec, four.CommitsPerSec))
		}
	}
	return regs, nil
}

// compareObs checks the observability report: mean end-to-end commit latency
// and tracing overhead are lower-is-better. The overhead comparison carries a
// five-percentage-point absolute floor on top of the relative band: the
// overhead measurement is a wall-clock difference between two runs and
// jitters by a few points at CI scale, and the gate is there to catch
// order-of-magnitude tracing regressions (an always-on allocation in the
// span path), not scheduler noise.
func compareObs(baseline, current []byte, tol float64) ([]string, error) {
	var base, cur ObsJSONReport
	if err := json.Unmarshal(baseline, &base); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(current, &cur); err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	if err := checkParams("clients", float64(base.Clients), float64(cur.Clients)); err != nil {
		return nil, err
	}
	if err := checkParams("size_factor", base.Size, cur.Size); err != nil {
		return nil, err
	}
	var regs []string
	if ceil := base.MeanE2EUS * (1 + tol); cur.MeanE2EUS > ceil {
		regs = append(regs, fmt.Sprintf("mean e2e commit latency %.1fus > %.1fus (baseline %.1fus + %.0f%%)",
			cur.MeanE2EUS, ceil, base.MeanE2EUS, tol*100))
	}
	if ceil := base.OverheadPct*(1+tol) + 5.0; cur.OverheadPct > ceil {
		regs = append(regs, fmt.Sprintf("trace overhead %.2f%% > %.2f%% (baseline %.2f%% + %.0f%% + 5pp)",
			cur.OverheadPct, ceil, base.OverheadPct, tol*100))
	}
	return regs, nil
}
