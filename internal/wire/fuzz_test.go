package wire

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzFrameDecode fuzzes the RPC response-frame decode sequence (message ID,
// kind, status, load, length-prefixed payload) against two properties: a
// failed decode reports a wrapped ErrTruncated/ErrTooLong sentinel, and a
// successful decode round-trips — re-encoding the decoded fields reproduces
// the consumed bytes exactly.
func FuzzFrameDecode(f *testing.F) {
	// Seeds: the two malformed response frames from the rpc ErrBadFrame
	// tests (truncated after the message ID; payload length overrunning the
	// frame), plus a well-formed frame.
	var short Buffer
	short.PutU64(7)
	f.Add(short.Bytes())

	var overrun Buffer
	overrun.PutU64(7)
	overrun.PutU8(1)
	overrun.PutU16(0)
	overrun.PutU8(0)
	overrun.PutU32(1 << 20) // payload length with no payload bytes
	f.Add(overrun.Bytes())

	var good Buffer
	good.PutU64(42)
	good.PutU8(1)
	good.PutU16(3)
	good.PutU8(200)
	good.PutBytes([]byte("payload"))
	f.Add(good.Bytes())

	// A v2 Hello frame: the payload is proto.HelloReq's v2 encoding —
	// owner string plus the trailing-optional ProtoVersion field (built by
	// hand; proto imports wire, so wire's tests cannot import proto).
	var helloBody Buffer
	helloBody.PutString("owner-1")
	helloBody.PutU32(2) // ProtoV2
	var hello Buffer
	hello.PutU64(43)
	hello.PutU8(1)
	hello.PutU16(0)
	hello.PutU8(0)
	hello.PutBytes(helloBody.Bytes())
	f.Add(hello.Bytes())

	// The same Hello truncated exactly at the optional boundary: the
	// payload stops where ProtoVersion would begin — the v1 frame shape a
	// v2 decoder must read as "field absent", not as an error.
	var helloV1Body Buffer
	helloV1Body.PutString("owner-1")
	var helloV1 Buffer
	helloV1.PutU64(44)
	helloV1.PutU8(1)
	helloV1.PutU16(0)
	helloV1.PutU8(0)
	helloV1.PutBytes(helloV1Body.Bytes())
	f.Add(helloV1.Bytes())

	// A v3 Hello reply frame: the payload carries the shard map —
	// incarnation, protocol version, then the nested-optional ShardIndex
	// and ShardCount a sharded MDS advertises.
	var shardBody Buffer
	shardBody.PutU64(9) // incarnation
	shardBody.PutU32(3) // ProtoV3
	shardBody.PutU32(2) // ShardIndex
	shardBody.PutU32(4) // ShardCount
	var shardMap Buffer
	shardMap.PutU64(45)
	shardMap.PutU8(1)
	shardMap.PutU16(0)
	shardMap.PutU8(0)
	shardMap.PutBytes(shardBody.Bytes())
	f.Add(shardMap.Bytes())

	// The same reply truncated exactly at the nested optional boundary:
	// the payload stops where ShardIndex would begin — the v2 frame shape
	// a v3 decoder must read as "single shard", not as an error.
	var shardV2Body Buffer
	shardV2Body.PutU64(9)
	shardV2Body.PutU32(2) // ProtoV2, no shard fields
	var shardV2 Buffer
	shardV2.PutU64(46)
	shardV2.PutU8(1)
	shardV2.PutU16(0)
	shardV2.PutU8(0)
	shardV2.PutBytes(shardV2Body.Bytes())
	f.Add(shardV2.Bytes())

	// A v4 traced commit frame: the payload is proto.CommitReq's v4 encoding
	// — owner, file, size, mtime, commit ID, one extent, then the
	// trailing-optional TraceCtx pair (trace ID, parent span ID).
	commitBody := func(traced bool) []byte {
		var b Buffer
		b.PutString("owner-1") // owner
		b.PutU64(7)            // file ID
		b.PutI64(4096)         // size
		b.PutI64(1_000_000)    // mtime (unix nanos)
		b.PutU64(99)           // commit ID
		b.PutU32(1)            // one extent
		b.PutI64(0)            // extent: file offset
		b.PutI64(4096)         // extent: length
		b.PutU32(0)            // extent: device
		b.PutI64(8192)         // extent: volume offset
		b.PutU8(0)             // extent: state
		if traced {
			b.PutU64(0xdeadbeef) // TraceCtx.TraceID
			b.PutU64(0xcafe)     // TraceCtx.SpanID
		}
		return b.Bytes()
	}
	var traced Buffer
	traced.PutU64(47)
	traced.PutU8(1)
	traced.PutU16(0)
	traced.PutU8(0)
	traced.PutBytes(commitBody(true))
	f.Add(traced.Bytes())

	// The same commit truncated exactly at the trace boundary: the payload
	// stops where TraceCtx would begin — the pre-v4 frame shape a v4 decoder
	// must read as "untraced", not as an error.
	var untraced Buffer
	untraced.PutU64(48)
	untraced.PutU8(1)
	untraced.PutU16(0)
	untraced.PutU8(0)
	untraced.PutBytes(commitBody(false))
	f.Add(untraced.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		id := r.U64()
		kind := r.U8()
		status := r.U16()
		load := r.U8()
		payload := r.BytesRef()
		if err := r.Err(); err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrTooLong) {
				t.Fatalf("decode error is not ErrTruncated/ErrTooLong: %v", err)
			}
			return
		}
		var b Buffer
		b.PutU64(id)
		b.PutU8(kind)
		b.PutU16(status)
		b.PutU8(load)
		b.PutBytes(payload)
		consumed := len(data) - r.Remaining()
		if !bytes.Equal(b.Bytes(), data[:consumed]) {
			t.Fatalf("round-trip mismatch:\n consumed: %x\n re-encoded: %x", data[:consumed], b.Bytes())
		}
	})
}
