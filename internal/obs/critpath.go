package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Canonical span names recorded by the instrumented layers. The critical-path
// analyzer keys on them, so instrumentation and analysis agree by construction.
const (
	// Client commit lifecycle (CommitID-correlated).
	SpanCommitQueue    = "commit.queue"    // enqueue → commit daemon dequeues the file
	SpanCommitDataWait = "commit.datawait" // ordered-write wait for outstanding device writes
	SpanCommitRPC      = "commit.rpc"      // commit RPC send → reply (client-observed)
	// MDS commit handling (CommitID-correlated).
	SpanMDSCommit   = "mds.commit"   // dispatch → response encoded
	SpanMDSLockWait = "mds.lockwait" // namespace + stripe lock wait
	SpanMDSApply    = "mds.apply"    // extent/attr application under the stripe lock
	SpanMDSJournal  = "mds.journal"  // journal group-commit durability wait
	// Shared-array device lifecycle (pre-commit data path, CommitID 0).
	SpanDevQueue    = "dev.queue" // submit → elevator dispatch
	SpanDevSeek     = "dev.seek"  // head movement + rotation
	SpanDevTransfer = "dev.xfer"  // media transfer
	// Metadata network and RPC server (CommitID 0).
	SpanNetWait    = "net.wait"    // ingress-link queueing
	SpanNetXmit    = "net.xmit"    // serialization + propagation
	SpanRPCQueue   = "rpc.queue"   // request queue wait at the server
	SpanRPCProcess = "rpc.process" // daemon-thread occupancy per frame
	// Application thread (CommitID 0).
	SpanAppWrite = "write.app" // WriteAt entry → return
)

// CommitPath is the reconstructed lifecycle of one commit. The four
// top-level stages are disjoint and contiguous, so
// Queue + DataWait + Batch + RPC == E2E exactly: Batch is defined as the
// residual between the data-wait end and the RPC send (compound assembly,
// daemon scheduling), absorbing any rounding.
type CommitPath struct {
	ID    uint64
	Start time.Time
	E2E   time.Duration

	Queue    time.Duration // commit-queue wait (0 in sync mode)
	DataWait time.Duration // ordered-write wait for data durability
	Batch    time.Duration // residual: batching/assembly between build and send
	RPC      time.Duration // commit RPC round trip

	// Informational decomposition of RPC (server-side, matched by CommitID).
	Server   time.Duration // MDS handler occupancy (mds.commit)
	Wire     time.Duration // RPC - Server: network + server queueing
	LockWait time.Duration // stripe/namespace lock wait inside the store
	Apply    time.Duration // metadata application
	Journal  time.Duration // journal group-commit wait
}

// Stage is one aggregated bucket of the breakdown table.
type Stage struct {
	Name  string
	Total time.Duration
	Count int64 // commits contributing a nonzero value
}

// Breakdown aggregates per-commit critical paths.
type Breakdown struct {
	Commits   int
	E2E       time.Duration // summed end-to-end latency
	Stages    []Stage       // top level; totals sum to E2E exactly
	Sub       []Stage       // nested decomposition of the rpc stage
	PerCommit []CommitPath  // sorted by CommitID
}

// Analyze reconstructs per-commit critical paths from a span stream.
// Commits without a commit.rpc span (still in flight when the trace was
// taken) are skipped.
func Analyze(spans []Span) *Breakdown {
	type acc struct {
		queue, datawait, rpc        *Span
		server, lock, apply, journl time.Duration
	}
	commits := make(map[uint64]*acc)
	get := func(id uint64) *acc {
		a := commits[id]
		if a == nil {
			a = &acc{}
			commits[id] = a
		}
		return a
	}
	for i := range spans {
		s := spans[i]
		if s.CommitID == 0 {
			continue
		}
		a := get(s.CommitID)
		switch s.Name {
		case SpanCommitQueue:
			a.queue = widen(a.queue, s)
		case SpanCommitDataWait:
			a.datawait = widen(a.datawait, s)
		case SpanCommitRPC:
			a.rpc = widen(a.rpc, s) // retries widen to first send → last reply
		case SpanMDSCommit:
			a.server += s.Duration()
		case SpanMDSLockWait:
			a.lock += s.Duration()
		case SpanMDSApply:
			a.apply += s.Duration()
		case SpanMDSJournal:
			a.journl += s.Duration()
		}
	}

	b := &Breakdown{}
	for id, a := range commits {
		if a.rpc == nil {
			continue
		}
		p := CommitPath{ID: id}
		start := a.rpc.Start
		if a.datawait != nil {
			start = a.datawait.Start
			p.DataWait = a.datawait.Duration()
		}
		if a.queue != nil {
			start = a.queue.Start
			p.Queue = a.queue.Duration()
		}
		p.Start = start
		p.E2E = a.rpc.End.Sub(start)
		p.RPC = a.rpc.Duration()
		// Residual: everything between the end of the data wait and the RPC
		// send — compound assembly and daemon scheduling. Defined as the
		// remainder so the top-level stages sum to E2E exactly.
		p.Batch = p.E2E - p.Queue - p.DataWait - p.RPC
		p.Server = a.server
		if p.Server > p.RPC {
			p.Server = p.RPC // dedup replays can over-count; clamp
		}
		p.Wire = p.RPC - p.Server
		p.LockWait, p.Apply, p.Journal = a.lock, a.apply, a.journl
		b.PerCommit = append(b.PerCommit, p)
	}
	sort.Slice(b.PerCommit, func(i, j int) bool { return b.PerCommit[i].ID < b.PerCommit[j].ID })

	b.Commits = len(b.PerCommit)
	stages := make([]Stage, 4)
	stages[0].Name, stages[1].Name, stages[2].Name, stages[3].Name = "queue", "datawait", "batch", "rpc"
	sub := make([]Stage, 5)
	sub[0].Name, sub[1].Name, sub[2].Name, sub[3].Name, sub[4].Name =
		"rpc.wire", "rpc.server", "server.lockwait", "server.apply", "server.journal"
	for _, p := range b.PerCommit {
		b.E2E += p.E2E
		addStage(&stages[0], p.Queue)
		addStage(&stages[1], p.DataWait)
		addStage(&stages[2], p.Batch)
		addStage(&stages[3], p.RPC)
		addStage(&sub[0], p.Wire)
		addStage(&sub[1], p.Server)
		addStage(&sub[2], p.LockWait)
		addStage(&sub[3], p.Apply)
		addStage(&sub[4], p.Journal)
	}
	b.Stages = stages
	b.Sub = sub
	return b
}

func addStage(s *Stage, d time.Duration) {
	s.Total += d
	if d != 0 {
		s.Count++
	}
}

// widen keeps the envelope [min start, max end] across repeated spans of the
// same kind (RPC retries, re-enqueues).
func widen(have *Span, s Span) *Span {
	if have == nil {
		c := s
		return &c
	}
	if s.Start.Before(have.Start) {
		have.Start = s.Start
	}
	if s.End.After(have.End) {
		have.End = s.End
	}
	return have
}

// Table renders the Figure-6-style per-stage breakdown. The top-level stage
// totals sum to the end-to-end total exactly; the indented rows decompose
// the rpc stage and do not add to the sum.
func (b *Breakdown) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "commit critical path: %d commits, total e2e %v", b.Commits, b.E2E)
	if b.Commits > 0 {
		fmt.Fprintf(&sb, ", mean %v", (b.E2E / time.Duration(b.Commits)).Round(time.Nanosecond))
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "  %-16s %14s %14s %8s\n", "stage", "total", "mean", "% e2e")
	writeRow := func(indent, name string, s Stage) {
		var m time.Duration
		if b.Commits > 0 {
			m = s.Total / time.Duration(b.Commits)
		}
		pct := 0.0
		if b.E2E > 0 {
			pct = 100 * float64(s.Total) / float64(b.E2E)
		}
		fmt.Fprintf(&sb, "  %-16s %14v %14v %7.1f%%\n", indent+name, s.Total, m, pct)
	}
	for _, s := range b.Stages {
		writeRow("", s.Name, s)
	}
	writeRow("", "e2e", Stage{Name: "e2e", Total: b.E2E})
	for _, s := range b.Sub {
		writeRow("  ", s.Name, s)
	}
	return sb.String()
}
