package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events plus "M" thread_name metadata), which Perfetto and chrome://tracing
// both load. Timestamps are microseconds relative to the earliest span.
type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat,omitempty"`
	Ph   string      `json:"ph"`
	TS   float64     `json:"ts"`
	Dur  float64     `json:"dur"`
	PID  int         `json:"pid"`
	TID  int         `json:"tid"`
	Args *chromeArgs `json:"args,omitempty"`
}

type chromeArgs struct {
	Commit uint64 `json:"commit,omitempty"`
	Name   string `json:"name,omitempty"` // thread_name payload
}

type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace exports spans as Chrome trace-event JSON: one trace
// "thread" per span track (client commit daemon, device head, MDS worker,
// …), spans as complete events carrying their CommitID.
//
// Output is deterministic for a deterministic span multiset: spans are
// sorted by (Start, End, Track, Name, CommitID) before track IDs are
// assigned, so the racy interleaving of concurrent recorders cannot leak
// into the bytes.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if !a.Start.Equal(b.Start) {
			return a.Start.Before(b.Start)
		}
		if !a.End.Equal(b.End) {
			return a.End.Before(b.End)
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.CommitID < b.CommitID
	})

	var base time.Time
	if len(sorted) > 0 {
		base = sorted[0].Start
	}
	tids := make(map[string]int)
	var tracks []string
	for _, s := range sorted {
		if _, ok := tids[s.Track]; !ok {
			tids[s.Track] = len(tids) + 1
			tracks = append(tracks, s.Track)
		}
	}

	events := make([]chromeEvent, 0, len(sorted)+len(tracks))
	for _, tr := range tracks {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tids[tr],
			Args: &chromeArgs{Name: tr},
		})
	}
	for _, s := range sorted {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  spanCategory(s.Name),
			Ph:   "X",
			TS:   float64(s.Start.Sub(base)) / float64(time.Microsecond),
			Dur:  float64(s.End.Sub(s.Start)) / float64(time.Microsecond),
			PID:  1,
			TID:  tids[s.Track],
		}
		if s.CommitID != 0 {
			ev.Args = &chromeArgs{Commit: s.CommitID}
		}
		events = append(events, ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{DisplayTimeUnit: "ms", TraceEvents: events})
}

// spanCategory derives the event category from the span name prefix
// ("dev.seek" → "dev"), giving Perfetto one color per subsystem.
func spanCategory(name string) string {
	if i := strings.IndexByte(name, '.'); i > 0 {
		return name[:i]
	}
	return name
}
