// Package pvfs2 is the PVFS2/OrangeFS-like comparator of Figure 3: a
// user-level parallel file system with one metadata server and several data
// servers. Clients keep no cache; every operation is synchronous; file data
// travels over the Ethernet to the data servers (no direct-attached FC path,
// unlike Redbud), striped round-robin in 64 KiB units.
//
// Its redeeming strength — the one the paper measures on NPB BT-IO — is
// MPI-IO-style collective I/O: WriteCollective aggregates many small
// interleaved rank blocks into large stripe-aligned transfers issued to all
// data servers in parallel (two-phase I/O).
package pvfs2

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"redbud/internal/alloc"
	"redbud/internal/blockdev"
	"redbud/internal/clock"
	"redbud/internal/fsapi"
	"redbud/internal/netsim"
	"redbud/internal/rpc"
	"redbud/internal/wire"
)

// StripeUnit is the striping granularity.
const StripeUnit = 64 << 10

// Metadata server ops.
const (
	opLookup uint16 = iota + 1
	opCreate
	opMkdir
	opRemove
	opGetAttr
	opReadDir
	opSetSize
	opRename
)

// Data server ops.
const (
	opDataWrite uint16 = iota + 101
	opDataRead
	opDataRemove
)

// ---------------------------------------------------------------------------
// Wire messages (shared shapes with nfs3 kept local: the protocols differ).

type nameReq struct {
	Parent uint64
	Name   string
}

func (m *nameReq) MarshalWire(b *wire.Buffer) { b.PutU64(m.Parent); b.PutString(m.Name) }
func (m *nameReq) UnmarshalWire(r *wire.Reader) error {
	m.Parent = r.U64()
	m.Name = r.String()
	return r.Err()
}

type attrResp struct {
	ID   uint64
	Dir  bool
	Size int64
	MT   time.Time
}

func (m *attrResp) MarshalWire(b *wire.Buffer) {
	b.PutU64(m.ID)
	b.PutBool(m.Dir)
	b.PutI64(m.Size)
	b.PutTime(m.MT)
}

func (m *attrResp) UnmarshalWire(r *wire.Reader) error {
	m.ID = r.U64()
	m.Dir = r.Bool()
	m.Size = r.I64()
	m.MT = r.Time()
	return r.Err()
}

type renameReq struct {
	SrcParent uint64
	SrcName   string
	DstParent uint64
	DstName   string
}

func (m *renameReq) MarshalWire(b *wire.Buffer) {
	b.PutU64(m.SrcParent)
	b.PutString(m.SrcName)
	b.PutU64(m.DstParent)
	b.PutString(m.DstName)
}

func (m *renameReq) UnmarshalWire(r *wire.Reader) error {
	m.SrcParent = r.U64()
	m.SrcName = r.String()
	m.DstParent = r.U64()
	m.DstName = r.String()
	return r.Err()
}

type handleReq struct{ ID uint64 }

func (m *handleReq) MarshalWire(b *wire.Buffer)         { b.PutU64(m.ID) }
func (m *handleReq) UnmarshalWire(r *wire.Reader) error { m.ID = r.U64(); return r.Err() }

type setSizeReq struct {
	ID   uint64
	Size int64
}

func (m *setSizeReq) MarshalWire(b *wire.Buffer) { b.PutU64(m.ID); b.PutI64(m.Size) }
func (m *setSizeReq) UnmarshalWire(r *wire.Reader) error {
	m.ID = r.U64()
	m.Size = r.I64()
	return r.Err()
}

type readDirResp struct {
	Names []string
	Dirs  []bool
}

func (m *readDirResp) MarshalWire(b *wire.Buffer) {
	b.PutU32(uint32(len(m.Names)))
	for i := range m.Names {
		b.PutString(m.Names[i])
		b.PutBool(m.Dirs[i])
	}
}

func (m *readDirResp) UnmarshalWire(r *wire.Reader) error {
	n := int(r.U32())
	for i := 0; i < n && r.Err() == nil; i++ {
		m.Names = append(m.Names, r.String())
		m.Dirs = append(m.Dirs, r.Bool())
	}
	return r.Err()
}

type dataWriteReq struct {
	File uint64
	Off  int64 // file-global offset
	Data []byte
}

func (m *dataWriteReq) MarshalWire(b *wire.Buffer) {
	b.PutU64(m.File)
	b.PutI64(m.Off)
	b.PutBytes(m.Data)
}

func (m *dataWriteReq) UnmarshalWire(r *wire.Reader) error {
	m.File = r.U64()
	m.Off = r.I64()
	// Zero-copy: decoded server-side only; the data-server handler writes
	// Data through blockdev.Device.Write (which copies into the device
	// queue) before returning the pooled frame.
	m.Data = r.BytesRef() //lint:allow wirealias — disk.Write copies before the handler returns
	return r.Err()
}

type dataReadReq struct {
	File uint64
	Off  int64
	N    int64
}

func (m *dataReadReq) MarshalWire(b *wire.Buffer) {
	b.PutU64(m.File)
	b.PutI64(m.Off)
	b.PutI64(m.N)
}

func (m *dataReadReq) UnmarshalWire(r *wire.Reader) error {
	m.File = r.U64()
	m.Off = r.I64()
	m.N = r.I64()
	return r.Err()
}

type dataResp struct{ Data []byte }

func (m *dataResp) MarshalWire(b *wire.Buffer) { b.PutBytes(m.Data) }

// UnmarshalWire must copy: decoded client-side, Data escapes to the reader
// while rpc.Client recycles the response frame right after wire.Decode.
func (m *dataResp) UnmarshalWire(r *wire.Reader) error { m.Data = r.Bytes(); return r.Err() }

// ---------------------------------------------------------------------------
// Metadata server

type mfile struct {
	id    uint64
	dir   bool
	size  int64
	mtime time.Time
}

// MetaServer is the PVFS2 metadata server.
type MetaServer struct {
	clk clock.Clock
	rpc *rpc.Server

	mu      sync.Mutex
	files   map[uint64]*mfile
	dirents map[uint64]map[string]uint64
	nextID  uint64
}

// NewMetaServer builds the metadata server.
func NewMetaServer(clk clock.Clock, daemons int, opCost time.Duration) *MetaServer {
	if clk == nil {
		clk = clock.Real(1)
	}
	if daemons <= 0 {
		daemons = 8
	}
	s := &MetaServer{
		clk:     clk,
		files:   map[uint64]*mfile{1: {id: 1, dir: true, mtime: clk.Now()}},
		dirents: map[uint64]map[string]uint64{1: {}},
		nextID:  2,
	}
	s.rpc = rpc.NewServer(rpc.ServerConfig{Handler: s.handle, Daemons: daemons, OpCost: opCost, Clock: clk})
	return s
}

// Serve accepts connections until the listener closes.
func (s *MetaServer) Serve(l *netsim.Listener) { s.rpc.Serve(l) }

// Close stops the server.
func (s *MetaServer) Close() { s.rpc.Close() }

func (s *MetaServer) handle(op uint16, body []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch op {
	case opLookup:
		var req nameReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		id, ok := s.dirents[req.Parent][req.Name]
		if !ok {
			return nil, fmt.Errorf("pvfs2: %q not found", req.Name)
		}
		f := s.files[id]
		return wire.Encode(&attrResp{ID: id, Dir: f.dir, Size: f.size, MT: f.mtime}), nil
	case opCreate, opMkdir:
		var req nameReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		dir, ok := s.dirents[req.Parent]
		if !ok {
			return nil, errors.New("pvfs2: stale parent")
		}
		if _, dup := dir[req.Name]; dup {
			return nil, fmt.Errorf("pvfs2: %q already exists", req.Name)
		}
		id := s.nextID
		s.nextID++
		f := &mfile{id: id, dir: op == opMkdir, mtime: s.clk.Now()}
		s.files[id] = f
		dir[req.Name] = id
		if f.dir {
			s.dirents[id] = map[string]uint64{}
		}
		return wire.Encode(&attrResp{ID: id, Dir: f.dir, MT: f.mtime}), nil
	case opRemove:
		var req nameReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		dir, ok := s.dirents[req.Parent]
		if !ok {
			return nil, errors.New("pvfs2: stale parent")
		}
		id, ok := dir[req.Name]
		if !ok {
			return nil, fmt.Errorf("pvfs2: %q not found", req.Name)
		}
		if s.files[id].dir && len(s.dirents[id]) > 0 {
			return nil, fmt.Errorf("pvfs2: %q not empty", req.Name)
		}
		delete(dir, req.Name)
		delete(s.files, id)
		delete(s.dirents, id)
		return nil, nil
	case opGetAttr:
		var req handleReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		f, ok := s.files[req.ID]
		if !ok {
			return nil, errors.New("pvfs2: stale handle")
		}
		return wire.Encode(&attrResp{ID: f.id, Dir: f.dir, Size: f.size, MT: f.mtime}), nil
	case opReadDir:
		var req handleReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		dir, ok := s.dirents[req.ID]
		if !ok {
			return nil, errors.New("pvfs2: stale handle")
		}
		var resp readDirResp
		for name, id := range dir {
			resp.Names = append(resp.Names, name)
			resp.Dirs = append(resp.Dirs, s.files[id].dir)
		}
		return wire.Encode(&resp), nil
	case opSetSize:
		var req setSizeReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		f, ok := s.files[req.ID]
		if !ok {
			return nil, errors.New("pvfs2: stale handle")
		}
		if req.Size > f.size {
			f.size = req.Size
		}
		f.mtime = s.clk.Now()
		return nil, nil
	case opRename:
		var req renameReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		src, ok := s.dirents[req.SrcParent]
		if !ok {
			return nil, errors.New("pvfs2: stale parent")
		}
		id, ok := src[req.SrcName]
		if !ok {
			return nil, fmt.Errorf("pvfs2: %q not found", req.SrcName)
		}
		dst, ok := s.dirents[req.DstParent]
		if !ok {
			return nil, errors.New("pvfs2: stale parent")
		}
		if _, dup := dst[req.DstName]; dup {
			return nil, fmt.Errorf("pvfs2: %q already exists", req.DstName)
		}
		delete(src, req.SrcName)
		dst[req.DstName] = id
		return nil, nil
	}
	return nil, fmt.Errorf("pvfs2: unknown meta op %d", op)
}

// ---------------------------------------------------------------------------
// Data server

// DataServer is one PVFS2 I/O daemon with a local disk. It stores stripe
// chunks of files, allocating physical space per chunk on first write
// (writes go through to disk — PVFS2 has no server write-back for data).
type DataServer struct {
	disk *blockdev.Device
	ag   *alloc.Group
	rpc  *rpc.Server

	mu     sync.Mutex
	chunks map[uint64]map[int64]alloc.Span // file -> chunk index -> physical
}

// NewDataServer builds a data server over its local disk.
func NewDataServer(disk *blockdev.Device, clk clock.Clock, daemons int) *DataServer {
	if disk == nil {
		panic("pvfs2: nil disk")
	}
	if daemons <= 0 {
		daemons = 8
	}
	s := &DataServer{
		disk:   disk,
		ag:     alloc.NewGroup(disk.ID(), 0, disk.Size()),
		chunks: make(map[uint64]map[int64]alloc.Span),
	}
	s.rpc = rpc.NewServer(rpc.ServerConfig{Handler: s.handle, Daemons: daemons, Clock: clk})
	return s
}

// Serve accepts connections until the listener closes.
func (s *DataServer) Serve(l *netsim.Listener) { s.rpc.Serve(l) }

// Close stops the server.
func (s *DataServer) Close() { s.rpc.Close() }

// place returns (allocating if needed) the physical span of a file chunk.
func (s *DataServer) place(file uint64, chunk int64) (alloc.Span, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.chunks[file]
	if m == nil {
		m = make(map[int64]alloc.Span)
		s.chunks[file] = m
	}
	if sp, ok := m[chunk]; ok {
		return sp, nil
	}
	g, err := s.ag.Alloc(StripeUnit, -1)
	if err != nil {
		return alloc.Span{}, err
	}
	sp := alloc.Span{Dev: s.disk.ID(), Off: g.Off, Len: g.Len}
	m[chunk] = sp
	return sp, nil
}

func (s *DataServer) handle(op uint16, body []byte) ([]byte, error) {
	switch op {
	case opDataWrite:
		var req dataWriteReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		// The request may span several chunks; write each part through
		// to disk synchronously.
		data, off := req.Data, req.Off
		for len(data) > 0 {
			chunk := off / StripeUnit
			in := off - chunk*StripeUnit
			n := StripeUnit - in
			if int64(len(data)) < n {
				n = int64(len(data))
			}
			sp, err := s.place(req.File, chunk)
			if err != nil {
				return nil, err
			}
			if err := s.disk.Write(sp.Off+in, data[:n]); err != nil {
				return nil, err
			}
			data = data[n:]
			off += n
		}
		return nil, nil
	case opDataRead:
		var req dataReadReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		out := make([]byte, req.N)
		got, off := out, req.Off
		for len(got) > 0 {
			chunk := off / StripeUnit
			in := off - chunk*StripeUnit
			n := StripeUnit - in
			if int64(len(got)) < n {
				n = int64(len(got))
			}
			s.mu.Lock()
			sp, ok := s.chunks[req.File][chunk]
			s.mu.Unlock()
			if ok {
				part, err := s.disk.Read(sp.Off+in, n)
				if err != nil {
					return nil, err
				}
				copy(got[:n], part)
			}
			got = got[n:]
			off += n
		}
		return wire.Encode(&dataResp{Data: out}), nil
	case opDataRemove:
		var req handleReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		s.mu.Lock()
		for _, sp := range s.chunks[req.ID] {
			_ = s.ag.FreeSpan(sp.Off, sp.Len)
		}
		delete(s.chunks, req.ID)
		s.mu.Unlock()
		return nil, nil
	}
	return nil, fmt.Errorf("pvfs2: unknown data op %d", op)
}

// ---------------------------------------------------------------------------
// Client

// Client is a PVFS2 mount: one connection to the metadata server and one to
// each data server. It implements fsapi.FileSystem.
type Client struct {
	meta *rpc.Client
	data []*rpc.Client

	mu     sync.Mutex
	closed bool
}

var _ fsapi.FileSystem = (*Client)(nil)

// NewClient assembles a mount from established connections. The client owns
// them all.
func NewClient(metaConn netsim.Conn, dataConns []netsim.Conn, clk clock.Clock) *Client {
	if clk == nil {
		clk = clock.Real(1)
	}
	c := &Client{meta: rpc.NewClient(metaConn, clk)}
	for _, conn := range dataConns {
		c.data = append(c.data, rpc.NewClient(conn, clk))
	}
	if len(c.data) == 0 {
		panic("pvfs2: need at least one data server")
	}
	return c
}

// serverFor maps a file offset to its data server.
func (c *Client) serverFor(off int64) *rpc.Client {
	return c.data[(off/StripeUnit)%int64(len(c.data))]
}

func (c *Client) resolve(path string) (attrResp, error) {
	cur := attrResp{ID: 1, Dir: true}
	for _, name := range fsapi.SplitPath(path) {
		var next attrResp
		if err := c.meta.Call(opLookup, &nameReq{Parent: cur.ID, Name: name}, &next); err != nil {
			return attrResp{}, mapErr(err)
		}
		cur = next
	}
	return cur, nil
}

func (c *Client) resolveParent(path string) (uint64, string, error) {
	parts := fsapi.SplitPath(path)
	if len(parts) == 0 {
		return 0, "", fmt.Errorf("pvfs2: invalid path %q", path)
	}
	parent := uint64(1)
	if len(parts) > 1 {
		dirPath := ""
		for _, p := range parts[:len(parts)-1] {
			dirPath += "/" + p
		}
		a, err := c.resolve(dirPath)
		if err != nil {
			return 0, "", err
		}
		parent = a.ID
	}
	return parent, parts[len(parts)-1], nil
}

func mapErr(err error) error {
	var re *rpc.RemoteError
	if errors.As(err, &re) {
		switch {
		case contains(re.Message, "not found"):
			return fmt.Errorf("%w: %s", fsapi.ErrNotExist, re.Message)
		case contains(re.Message, "already exists"):
			return fmt.Errorf("%w: %s", fsapi.ErrExist, re.Message)
		}
	}
	return err
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Create makes and opens a file.
func (c *Client) Create(path string) (fsapi.File, error) {
	parent, leaf, err := c.resolveParent(path)
	if err != nil {
		return nil, err
	}
	var a attrResp
	if err := c.meta.Call(opCreate, &nameReq{Parent: parent, Name: leaf}, &a); err != nil {
		return nil, mapErr(err)
	}
	return &file{c: c, id: a.ID}, nil
}

// Open opens an existing file.
func (c *Client) Open(path string) (fsapi.File, error) {
	a, err := c.resolve(path)
	if err != nil {
		return nil, err
	}
	if a.Dir {
		return nil, fmt.Errorf("%w: %s", fsapi.ErrIsDir, path)
	}
	return &file{c: c, id: a.ID, size: a.Size}, nil
}

// Mkdir creates a directory.
func (c *Client) Mkdir(path string) error {
	parent, leaf, err := c.resolveParent(path)
	if err != nil {
		return err
	}
	var a attrResp
	return mapErr(c.meta.Call(opMkdir, &nameReq{Parent: parent, Name: leaf}, &a))
}

// Remove unlinks a path on the metadata server and frees its stripes.
func (c *Client) Remove(path string) error {
	a, err := c.resolve(path)
	if err != nil {
		return err
	}
	parent, leaf, err := c.resolveParent(path)
	if err != nil {
		return err
	}
	if err := c.meta.Call(opRemove, &nameReq{Parent: parent, Name: leaf}, nil); err != nil {
		return mapErr(err)
	}
	if !a.Dir {
		for _, ds := range c.data {
			_ = ds.Call(opDataRemove, &handleReq{ID: a.ID}, nil)
		}
	}
	return nil
}

// Rename moves a directory entry on the metadata server.
func (c *Client) Rename(oldPath, newPath string) error {
	srcParent, srcLeaf, err := c.resolveParent(oldPath)
	if err != nil {
		return err
	}
	dstParent, dstLeaf, err := c.resolveParent(newPath)
	if err != nil {
		return err
	}
	return mapErr(c.meta.Call(opRename, &renameReq{
		SrcParent: srcParent, SrcName: srcLeaf,
		DstParent: dstParent, DstName: dstLeaf,
	}, nil))
}

// Stat describes a path.
func (c *Client) Stat(path string) (fsapi.Info, error) {
	a, err := c.resolve(path)
	if err != nil {
		return fsapi.Info{}, err
	}
	parts := fsapi.SplitPath(path)
	name := "/"
	if len(parts) > 0 {
		name = parts[len(parts)-1]
	}
	return fsapi.Info{Name: name, Size: a.Size, Dir: a.Dir, MTime: a.MT}, nil
}

// ReadDir lists a directory.
func (c *Client) ReadDir(path string) ([]fsapi.Info, error) {
	a, err := c.resolve(path)
	if err != nil {
		return nil, err
	}
	var resp readDirResp
	if err := c.meta.Call(opReadDir, &handleReq{ID: a.ID}, &resp); err != nil {
		return nil, mapErr(err)
	}
	out := make([]fsapi.Info, 0, len(resp.Names))
	for i := range resp.Names {
		out = append(out, fsapi.Info{Name: resp.Names[i], Dir: resp.Dirs[i]})
	}
	return out, nil
}

// Close unmounts.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fsapi.ErrClosed
	}
	c.closed = true
	c.meta.Close()
	for _, d := range c.data {
		d.Close()
	}
	return nil
}

// RPCs returns the total RPCs issued across all connections.
func (c *Client) RPCs() int64 {
	total := c.meta.Calls()
	for _, d := range c.data {
		total += d.Calls()
	}
	return total
}

// file is an open PVFS2 file.
type file struct {
	c    *Client
	id   uint64
	mu   sync.Mutex
	size int64
}

// stripeSegments splits [off, off+len(p)) at stripe-unit boundaries.
type segment struct {
	off  int64
	data []byte
}

func splitStripes(p []byte, off int64) []segment {
	var out []segment
	for len(p) > 0 {
		chunkEnd := (off/StripeUnit + 1) * StripeUnit
		n := chunkEnd - off
		if int64(len(p)) < n {
			n = int64(len(p))
		}
		out = append(out, segment{off: off, data: p[:n]})
		p = p[n:]
		off += n
	}
	return out
}

// WriteAt stripes the range across the data servers, issuing the segments in
// parallel, then synchronously updates the file size at the MDS. No client
// cache: the call returns only when every server acknowledged.
func (f *file) WriteAt(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	segs := splitStripes(p, off)
	errs := make(chan error, len(segs))
	for _, sg := range segs {
		go func() {
			errs <- f.c.serverFor(sg.off).Call(opDataWrite, &dataWriteReq{File: f.id, Off: sg.off, Data: sg.data}, nil)
		}()
	}
	for range segs {
		if err := <-errs; err != nil {
			return 0, mapErr(err)
		}
	}
	end := off + int64(len(p))
	if err := f.c.meta.Call(opSetSize, &setSizeReq{ID: f.id, Size: end}, nil); err != nil {
		return 0, mapErr(err)
	}
	f.mu.Lock()
	if end > f.size {
		f.size = end
	}
	f.mu.Unlock()
	return len(p), nil
}

// WriteCollective is the MPI-IO two-phase path: the blocks are sorted and
// coalesced into large contiguous segments before striping, so interleaved
// small rank blocks become few big parallel transfers.
func (f *file) WriteCollective(blocks []fsapi.CollectiveBlock) error {
	if len(blocks) == 0 {
		return nil
	}
	sorted := make([]fsapi.CollectiveBlock, len(blocks))
	copy(sorted, blocks)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Off < sorted[j].Off })
	// Coalesce contiguous runs.
	var runs []fsapi.CollectiveBlock
	cur := fsapi.CollectiveBlock{Off: sorted[0].Off, Data: append([]byte(nil), sorted[0].Data...)}
	for _, b := range sorted[1:] {
		if b.Off == cur.Off+int64(len(cur.Data)) {
			cur.Data = append(cur.Data, b.Data...)
		} else {
			runs = append(runs, cur)
			cur = fsapi.CollectiveBlock{Off: b.Off, Data: append([]byte(nil), b.Data...)}
		}
	}
	runs = append(runs, cur)
	for _, run := range runs {
		if _, err := f.WriteAt(run.Data, run.Off); err != nil {
			return err
		}
	}
	return nil
}

// ReadAt reads stripes in parallel.
func (f *file) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	size := f.size
	f.mu.Unlock()
	if off >= size {
		return 0, nil
	}
	n := int64(len(p))
	if off+n > size {
		n = size - off
	}
	segs := splitStripes(p[:n], off)
	errs := make(chan error, len(segs))
	for _, sg := range segs {
		go func() {
			var resp dataResp
			err := f.c.serverFor(sg.off).Call(opDataRead, &dataReadReq{File: f.id, Off: sg.off, N: int64(len(sg.data))}, &resp)
			if err == nil {
				copy(sg.data, resp.Data)
			}
			errs <- err
		}()
	}
	for range segs {
		if err := <-errs; err != nil {
			return 0, mapErr(err)
		}
	}
	return int(n), nil
}

func (f *file) Append(p []byte) (int64, error) {
	f.mu.Lock()
	off := f.size
	f.size = off + int64(len(p))
	f.mu.Unlock()
	if _, err := f.WriteAt(p, off); err != nil {
		return 0, err
	}
	return off, nil
}

func (f *file) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// Sync is a no-op: PVFS2 writes are already through to the data servers'
// disks when WriteAt returns.
func (f *file) Sync() error { return nil }

// Close releases the handle (nothing buffered client-side).
func (f *file) Close() error { return nil }
