package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotpath enforces the zero-allocation discipline of functions annotated
// `//redbud:hotpath` (the steady-state frame send/recv and journal append
// paths, which CI gates at 0 allocs/op via benchmem). Inside an annotated
// function it flags the heap-allocating constructs that have historically
// crept into these paths:
//
//   - fmt formatting (Sprintf and friends): every argument is boxed into an
//     interface and the result string is heap-allocated. Hot paths return
//     wrapped sentinel errors built off the hot path instead.
//   - append growth on a slice the function declared without capacity: the
//     runtime reallocates as it grows. Hot paths take buffers from the wire
//     frame pool or pre-size with a 3-argument make.
//   - closures capturing local variables: the captured variables (and
//     usually the closure itself) escape to the heap. Hot paths pass state
//     explicitly.
//
// Deliberate exceptions carry `//lint:allow hotpath` with a justification.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "ban heap-allocating constructs in //redbud:hotpath functions",
	Run:  runHotpath,
}

// hotpathMark is the annotation that opts a function into the check.
const hotpathMark = "//redbud:hotpath"

// fmtAllocFuncs are fmt functions whose call sites always allocate (interface
// boxing of the arguments, plus the formatted result).
var fmtAllocFuncs = map[string]bool{
	"Sprintf":  true,
	"Sprint":   true,
	"Sprintln": true,
	"Errorf":   true,
	"Appendf":  true,
	"Fprintf":  true,
	"Fprint":   true,
	"Fprintln": true,
	"Printf":   true,
	"Print":    true,
	"Println":  true,
}

func runHotpath(pass *Pass) error {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpathFunc(fd) {
				continue
			}
			checkHotpathBody(pass, fd)
		}
	}
	return nil
}

// isHotpathFunc reports whether fd's doc comment carries the hotpath mark.
func isHotpathFunc(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotpathMark {
			return true
		}
	}
	return false
}

func checkHotpathBody(pass *Pass, fd *ast.FuncDecl) {
	unsized := collectUnsizedSlices(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if pkgPath, name, ok := pkgFuncCall(pass.Info, n); ok && isFmtPkg(pkgPath) && fmtAllocFuncs[name] {
				pass.Reportf(n.Pos(),
					"%s.%s allocates (boxes arguments, builds a string) in a //redbud:hotpath function", pkgPath, name)
				return true
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && isBuiltin(pass.Info, id) {
				if base, ok := n.Args[0].(*ast.Ident); ok {
					if v, ok := pass.Info.Uses[base].(*types.Var); ok && unsized[v] {
						pass.Reportf(n.Pos(),
							"append grows %s, declared without capacity, in a //redbud:hotpath function: pre-size with make(..., 0, cap) or use a pooled frame", base.Name)
					}
				}
			}
		case *ast.FuncLit:
			if name, pos, ok := capturedVar(pass, fd, n); ok {
				pass.Reportf(n.Pos(),
					"closure captures %s (declared at %s) and escapes to the heap in a //redbud:hotpath function: pass state explicitly", name, pos)
			}
			return false // captures inside nested literals are charged to the outer one
		}
		return true
	})
}

// collectUnsizedSlices finds local slice variables fd declares with no
// capacity — `var s []T`, `s := []T{}`, or a 2-argument make — whose growth
// via append reallocates.
func collectUnsizedSlices(pass *Pass, fd *ast.FuncDecl) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	mark := func(id *ast.Ident, rhs ast.Expr) {
		v, ok := pass.Info.Defs[id].(*types.Var)
		if !ok {
			return
		}
		if _, isSlice := v.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		switch rhs := rhs.(type) {
		case nil: // var s []T
			out[v] = true
		case *ast.CompositeLit:
			out[v] = true
		case *ast.CallExpr:
			if id, ok := rhs.Fun.(*ast.Ident); ok && id.Name == "make" && isBuiltin(pass.Info, id) && len(rhs.Args) < 3 {
				out[v] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && i < len(n.Rhs) {
					mark(id, n.Rhs[i])
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					mark(id, rhs)
				}
			}
		}
		return true
	})
	return out
}

// capturedVar reports the first variable lit captures from the enclosing
// function fd — a variable used inside lit but declared in fd outside it.
func capturedVar(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) (name string, declaredAt string, ok bool) {
	var found *ast.Ident
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, isIdent := n.(*ast.Ident)
		if !isIdent {
			return true
		}
		v, isVar := pass.Info.Uses[id].(*types.Var)
		if !isVar || v.IsField() {
			return true
		}
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() && (v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			found = id
		}
		return true
	})
	if found == nil {
		return "", "", false
	}
	v := pass.Info.Uses[found].(*types.Var)
	return found.Name, pass.Fset.Position(v.Pos()).String(), true
}

// isFmtPkg matches the real fmt package and fixture mirrors of it.
func isFmtPkg(path string) bool {
	return path == "fmt" || strings.HasSuffix(path, "/fmt")
}

// isBuiltin reports whether id resolves to a universe-scope builtin (append,
// make) rather than a shadowing local.
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}
