package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestModuleTreeClean runs the full analyzer suite over every package of the
// enclosing module and requires zero findings — the same gate CI applies via
// `go vet -vettool=redbud-lint ./...`. A finding here means either new code
// broke an enforced invariant or an analyzer regressed into a false
// positive; both should be caught at `go test` time.
func TestModuleTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no packages found in module")
	}
	var findings []string
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags, err := Run(pkg, Analyzers())
		if err != nil {
			t.Fatalf("analyzing %s: %v", path, err)
		}
		for _, d := range diags {
			findings = append(findings, d.String())
		}
	}
	if len(findings) > 0 {
		t.Errorf("module tree has %d lint findings:\n%s",
			len(findings), strings.Join(findings, "\n"))
	}
}
