package bench

import (
	"encoding/json"
	"os"
	"time"

	"redbud/internal/obs"
)

// MDSReport is the machine-readable form of the Figure 7 sweep, written by
// cmd/redbud-bench for CI and regression tracking.
type MDSReport struct {
	Figure  string     `json:"figure"`
	Clients int        `json:"clients"`
	Scale   float64    `json:"scale"`
	Size    float64    `json:"size_factor"`
	Cells   []Fig7Cell `json:"cells"`
}

// WriteMDSJSON serializes the Figure 7 cells (ops/sec and per-client MB/s per
// daemon-count/compound-degree pair) to path as indented JSON.
func WriteMDSJSON(path string, opt Options, cells []Fig7Cell) error {
	rep := MDSReport{
		Figure:  "7",
		Clients: opt.Clients,
		Scale:   opt.Scale,
		Size:    opt.SizeFactor,
		Cells:   cells,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// VisibilityReport is the machine-readable form of the visibility figure,
// written by cmd/redbud-bench for CI and regression tracking.
type VisibilityReport struct {
	Figure  string          `json:"figure"`
	Clients int             `json:"clients"`
	Scale   float64         `json:"scale"`
	Size    float64         `json:"size_factor"`
	Rows    []VisibilityRow `json:"rows"`
}

// WriteVisibilityJSON serializes the visibility rows (conflict-read latency
// and varmail throughput, knob off/on) to path as indented JSON.
func WriteVisibilityJSON(path string, opt Options, rows []VisibilityRow) error {
	rep := VisibilityReport{
		Figure:  "visibility",
		Clients: opt.Clients,
		Scale:   opt.Scale,
		Size:    opt.SizeFactor,
		Rows:    rows,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ShardsReport is the machine-readable form of the namespace-sharding
// figure, written by cmd/redbud-bench for CI and regression tracking.
type ShardsReport struct {
	Figure  string      `json:"figure"`
	Clients int         `json:"clients"`
	Scale   float64     `json:"scale"`
	Size    float64     `json:"size_factor"`
	Rows    []ShardsRow `json:"rows"`
}

// WriteShardsJSON serializes the sharding rows (commit throughput per shard
// count) to path as indented JSON.
func WriteShardsJSON(path string, opt Options, rows []ShardsRow) error {
	rep := ShardsReport{
		Figure:  "shards",
		Clients: opt.Clients,
		Scale:   opt.Scale,
		Size:    opt.SizeFactor,
		Rows:    rows,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ObsStageJSON is one row of the critical-path table in the obs report.
type ObsStageJSON struct {
	Name    string  `json:"name"`
	TotalUS float64 `json:"total_us"`
	MeanUS  float64 `json:"mean_us"`
	PctE2E  float64 `json:"pct_e2e"`
}

// ObsJSONReport is the machine-readable form of the observability benchmark,
// written by cmd/redbud-bench -fig obs for CI regression tracking.
type ObsJSONReport struct {
	Figure       string         `json:"figure"`
	Clients      int            `json:"clients"`
	Scale        float64        `json:"scale"`
	Size         float64        `json:"size_factor"`
	System       string         `json:"system"`
	Workload     string         `json:"workload"`
	Commits      int            `json:"commits"`
	SpansKept    int            `json:"spans_kept"`
	SpansTotal   int64          `json:"spans_total"`
	SpansDropped int64          `json:"spans_dropped"`
	MeanE2EUS    float64        `json:"mean_e2e_us"`
	P50US        float64        `json:"p50_e2e_us"`
	P99US        float64        `json:"p99_e2e_us"`
	OverheadPct  float64        `json:"trace_overhead_pct"`
	Stages       []ObsStageJSON `json:"stages"`
	Sub          []ObsStageJSON `json:"rpc_decomposition"`
}

// WriteObsJSON serializes the observability report to path as indented JSON.
func WriteObsJSON(path string, opt Options, rep *ObsReport) error {
	b := rep.Breakdown
	us := func(d time.Duration) float64 { return float64(d) / 1e3 }
	stageJSON := func(stages []obs.Stage) []ObsStageJSON {
		out := make([]ObsStageJSON, 0, len(stages))
		for _, s := range stages {
			row := ObsStageJSON{Name: s.Name, TotalUS: us(s.Total)}
			if b.Commits > 0 {
				row.MeanUS = us(s.Total) / float64(b.Commits)
			}
			if b.E2E > 0 {
				row.PctE2E = 100 * float64(s.Total) / float64(b.E2E)
			}
			out = append(out, row)
		}
		return out
	}
	j := ObsJSONReport{
		Figure:       "obs",
		Clients:      opt.Clients,
		Scale:        opt.Scale,
		Size:         opt.SizeFactor,
		System:       rep.System,
		Workload:     rep.Workload,
		Commits:      b.Commits,
		SpansKept:    rep.SpansKept,
		SpansTotal:   rep.SpansTotal,
		SpansDropped: rep.SpansDropped,
		P50US:        us(rep.P50),
		P99US:        us(rep.P99),
		OverheadPct:  rep.OverheadPct,
		Stages:       stageJSON(b.Stages),
		Sub:          stageJSON(b.Sub),
	}
	if b.Commits > 0 {
		j.MeanE2EUS = us(b.E2E) / float64(b.Commits)
	}
	data, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
