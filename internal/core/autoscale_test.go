package core

import (
	"sync/atomic"
	"testing"
	"time"

	"redbud/internal/clock"
)

// autoscalePool builds a pool on a manual clock with explicit control-law
// constants so the tests document exactly what they exercise.
func autoscalePool(t *testing.T, clk *clock.Manual, as *AutoscaleConfig, qlen *atomic.Int64, fixed int) *Pool {
	t.Helper()
	p := NewPool(PoolConfig{
		Max: 9, QueueLenMax: 45,
		QueueLen:  func() int { return int(qlen.Load()) },
		Worker:    func(stop <-chan struct{}) { <-stop },
		Interval:  time.Millisecond,
		Fixed:     fixed,
		Autoscale: as,
		Clock:     clk,
	})
	p.Start()
	t.Cleanup(p.Stop)
	return p
}

// tick advances the manual clock by one pool interval and returns once the
// resizer has applied its decision (signalled by it re-arming its timer).
// Everything observable is driven by the simulated clock; the wall-clock
// spin only waits for goroutine handoff.
func tick(t *testing.T, clk *clock.Manual) {
	t.Helper()
	waitFor(t, func() bool { return clk.Waiters() > 0 })
	clk.Advance(time.Millisecond)
	waitFor(t, func() bool { return clk.Waiters() > 0 })
}

func TestAutoscaleScaleUpUnderQueueGrowth(t *testing.T) {
	clk := clock.NewManual()
	var qlen atomic.Int64
	qlen.Store(50) // far above HighWater × size
	as := &AutoscaleConfig{HighWater: 4, LowWater: 1, StepUp: 2, HoldTicks: 3, TargetLatency: 10 * time.Millisecond}
	p := autoscalePool(t, clk, as, &qlen, 0)

	if p.Size() != 1 {
		t.Fatalf("initial size = %d, want 1", p.Size())
	}
	// StepUp 2 per hot tick: 1 → 3 → 5 → 7 → 9, then clamps at Max.
	for i, want := range []int{3, 5, 7, 9, 9} {
		tick(t, clk)
		if got := p.Size(); got != want {
			t.Fatalf("after tick %d: size = %d, want %d", i+1, got, want)
		}
	}
	st := p.AutoscaleStats()
	if st.Ups != 4 {
		t.Errorf("ups = %d, want 4", st.Ups)
	}
	if st.Downs != 0 {
		t.Errorf("downs = %d, want 0", st.Downs)
	}
}

func TestAutoscaleScaleDownHysteresis(t *testing.T) {
	clk := clock.NewManual()
	var qlen atomic.Int64
	qlen.Store(50)
	as := &AutoscaleConfig{HighWater: 4, LowWater: 1, StepUp: 2, HoldTicks: 3, TargetLatency: 10 * time.Millisecond}
	p := autoscalePool(t, clk, as, &qlen, 0)

	tick(t, clk) // 1 → 3
	if p.Size() != 3 {
		t.Fatalf("warmup size = %d, want 3", p.Size())
	}

	// Queue drains: the pool must hold HoldTicks-1 cold ticks before
	// retiring one thread, and only one thread per cycle — no flapping.
	qlen.Store(0)
	for i, want := range []int{3, 3, 2, 2, 2, 1, 1, 1, 1} {
		tick(t, clk)
		if got := p.Size(); got != want {
			t.Fatalf("cold tick %d: size = %d, want %d", i+1, got, want)
		}
	}
	st := p.AutoscaleStats()
	if st.Downs != 2 {
		t.Errorf("downs = %d, want 2", st.Downs)
	}

	// A hot tick mid-countdown resets the hysteresis window.
	qlen.Store(50)
	tick(t, clk) // 1 → 3
	qlen.Store(0)
	tick(t, clk) // cold 1
	tick(t, clk) // cold 2
	qlen.Store(50)
	tick(t, clk) // hot: resets countdown, scales 3 → 5
	qlen.Store(0)
	tick(t, clk) // cold 1 again
	tick(t, clk) // cold 2 again
	if p.Size() != 5 {
		t.Fatalf("size = %d, want 5 (countdown must restart after a hot tick)", p.Size())
	}
	tick(t, clk) // cold 3: now retire one
	if p.Size() != 4 {
		t.Fatalf("size = %d, want 4", p.Size())
	}
}

func TestAutoscaleLatencySignal(t *testing.T) {
	clk := clock.NewManual()
	var qlen atomic.Int64 // stays 0: only the latency term can trigger
	var waitNs atomic.Int64
	waitNs.Store(int64(50 * time.Millisecond))
	as := &AutoscaleConfig{
		HighWater: 4, LowWater: 1, StepUp: 1, HoldTicks: 3,
		TargetLatency: 10 * time.Millisecond,
		QueueLatency:  func() time.Duration { return time.Duration(waitNs.Load()) },
	}
	p := autoscalePool(t, clk, as, &qlen, 0)

	tick(t, clk)
	if p.Size() != 2 {
		t.Fatalf("size = %d, want 2 (queue wait above target must scale up)", p.Size())
	}
	// Wait back under target/2 with an empty queue: cold path engages.
	waitNs.Store(int64(time.Millisecond))
	tick(t, clk)
	tick(t, clk)
	tick(t, clk)
	if p.Size() != 1 {
		t.Fatalf("size = %d, want 1 after hysteresis window", p.Size())
	}
}

func TestAutoscaleSaturationGuard(t *testing.T) {
	clk := clock.NewManual()
	var qlen atomic.Int64
	qlen.Store(50)
	as := &AutoscaleConfig{
		HighWater: 4, LowWater: 1, StepUp: 2, HoldTicks: 3,
		TargetLatency:        10 * time.Millisecond,
		MaxInflightPerThread: 4,
		Inflight:             func() int { return 1000 }, // RPC path saturated
	}
	p := autoscalePool(t, clk, as, &qlen, 0)

	tick(t, clk)
	tick(t, clk)
	if p.Size() != 1 {
		t.Fatalf("size = %d, want 1 (saturated RPC path must suppress scale-up)", p.Size())
	}
	st := p.AutoscaleStats()
	if st.Ups != 0 || st.Holds != 2 {
		t.Errorf("stats = %+v, want 0 ups and 2 holds", st)
	}
}

func TestAutoscaleFixedStillPins(t *testing.T) {
	clk := clock.NewManual()
	var qlen atomic.Int64
	qlen.Store(50)
	as := &AutoscaleConfig{HighWater: 4, LowWater: 1, StepUp: 2, HoldTicks: 3, TargetLatency: 10 * time.Millisecond}
	p := autoscalePool(t, clk, as, &qlen, 4)

	if p.Size() != 4 {
		t.Fatalf("initial size = %d, want pinned 4", p.Size())
	}
	for i := 0; i < 5; i++ {
		tick(t, clk)
		if p.Size() != 4 {
			t.Fatalf("tick %d: size = %d, want pinned 4", i+1, p.Size())
		}
	}
	if st := p.AutoscaleStats(); st.Ups != 0 || st.Downs != 0 {
		t.Errorf("pinned pool recorded decisions: %+v", st)
	}
}
