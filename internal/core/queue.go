// Package core implements the Delayed Commit Protocol machinery — the
// paper's primary contribution (§III, §IV):
//
//   - Queue: the commit queue. Update operations enqueue a commit task and
//     return immediately; one entry per file suffices because commit
//     requests of the same file share the in-memory metadata (§III-A).
//   - Pool: the adaptive commit-thread pool, sized by
//     ThreadNums = ρ·QueueLen with ρ = ThreadNumsMax/QueueLenMax (§IV-B).
//   - Compound: the adaptive compound-degree controller, raising the number
//     of commits packed per RPC when the network is congested or the MDS is
//     busy (§IV-B).
//   - SpacePool: the client-side double-space-pool of space delegation, one
//     pool active and one standby, swapped on exhaustion (§IV-A).
//
// The package is transport- and filesystem-agnostic; internal/client wires
// it to the RPC layer and the page cache.
package core

import (
	"sync"

	"redbud/internal/stats"
)

// Queue is the commit queue: FIFO of keys with per-key deduplication. A key
// (file) already queued is not enqueued again — its pending metadata rides
// along when the earlier entry is processed.
type Queue[K comparable] struct {
	mu     sync.Mutex
	items  []K
	queued map[K]bool
	closed bool
	notify chan struct{}

	enqueued stats.Counter
	deduped  stats.Counter
}

// NewQueue returns an empty queue.
func NewQueue[K comparable]() *Queue[K] {
	return &Queue[K]{queued: make(map[K]bool), notify: make(chan struct{}, 1)}
}

// Enqueue adds k unless it is already queued. It reports whether a new entry
// was added.
func (q *Queue[K]) Enqueue(k K) bool {
	q.mu.Lock()
	if q.closed || q.queued[k] {
		dup := q.queued[k]
		q.mu.Unlock()
		if dup {
			q.deduped.Inc()
		}
		return false
	}
	q.queued[k] = true
	q.items = append(q.items, k)
	q.enqueued.Inc()
	// Signal while holding the lock: Close also runs under it, so the
	// channel cannot be closed mid-send.
	select {
	case q.notify <- struct{}{}:
	default:
	}
	q.mu.Unlock()
	return true
}

// Dequeue removes and returns up to max keys, blocking until at least one is
// available, stop is closed, or the queue is closed (nil return for both).
func (q *Queue[K]) Dequeue(max int, stop <-chan struct{}) []K {
	if max < 1 {
		max = 1
	}
	for {
		q.mu.Lock()
		if len(q.items) > 0 {
			n := max
			if n > len(q.items) {
				n = len(q.items)
			}
			batch := make([]K, n)
			copy(batch, q.items[:n])
			q.items = q.items[n:]
			for _, k := range batch {
				delete(q.queued, k)
			}
			if len(q.items) > 0 && !q.closed {
				// Re-arm the notifier for other workers.
				select {
				case q.notify <- struct{}{}:
				default:
				}
			}
			q.mu.Unlock()
			return batch
		}
		closed := q.closed
		q.mu.Unlock()
		if closed {
			return nil
		}
		select {
		case <-q.notify:
		case <-stop:
			return nil
		}
	}
}

// Len returns the queue length — the signal driving the adaptive pool and
// the Figure 6 traces.
func (q *Queue[K]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Stats returns (enqueued, deduplicated) counts. The dedup count is the
// saving from sharing one commit per file.
func (q *Queue[K]) Stats() (enqueued, deduped int64) {
	return q.enqueued.Load(), q.deduped.Load()
}

// Close wakes all blocked Dequeues; subsequent Enqueues are dropped.
// Entries still queued remain dequeueable until drained.
func (q *Queue[K]) Close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.notify)
	}
	q.mu.Unlock()
}
