// Package iotrace is the simulator's blktrace: it records every dispatched
// I/O of a simulated device and derives the block-level characteristics the
// paper analyses — the disk-seek scatter plots of Figure 5 and the I/O merge
// accounting behind Figure 4.
package iotrace

import (
	"fmt"
	"io"
	"sync"
	"time"

	"redbud/internal/blockdev"
)

// Recorder accumulates dispatch events. Attach its Record method as a
// device's Trace hook. An uncapped Recorder grows without bound — fine for
// a measured experiment window, wrong for a long-lived process; use
// NewRecorderCap there.
type Recorder struct {
	mu      sync.Mutex
	evs     []blockdev.Event
	cap     int   // 0 = unbounded
	start   int   // ring read cursor (capped, after wrap)
	dropped int64 // events evicted by the ring
}

// NewRecorder returns an empty unbounded recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// NewRecorderCap returns a recorder retaining at most n events; once full,
// each new event evicts the oldest and increments the dropped counter. n <= 0
// means unbounded.
func NewRecorderCap(n int) *Recorder {
	if n <= 0 {
		return &Recorder{}
	}
	return &Recorder{cap: n, evs: make([]blockdev.Event, 0, n)}
}

// Record appends one event; safe for concurrent use.
func (r *Recorder) Record(e blockdev.Event) {
	r.mu.Lock()
	if r.cap > 0 && len(r.evs) == r.cap {
		r.evs[r.start] = e
		r.start++
		if r.start == r.cap {
			r.start = 0
		}
		r.dropped++
	} else {
		r.evs = append(r.evs, e)
	}
	r.mu.Unlock()
}

// Events returns a copy of the retained events in dispatch order (oldest
// first).
func (r *Recorder) Events() []blockdev.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]blockdev.Event, 0, len(r.evs))
	out = append(out, r.evs[r.start:]...)
	out = append(out, r.evs[:r.start]...)
	return out
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.evs)
}

// Dropped returns how many events the ring has evicted (always 0 for an
// unbounded recorder).
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Reset discards all recorded events and zeroes the dropped counter.
func (r *Recorder) Reset() {
	r.mu.Lock()
	if r.cap > 0 {
		r.evs = r.evs[:0]
	} else {
		r.evs = nil
	}
	r.start = 0
	r.dropped = 0
	r.mu.Unlock()
}

// SeekPoint is one point of a Figure 5 panel: the head position over time,
// with the seek distance needed to reach it.
type SeekPoint struct {
	T      time.Duration // since the first event
	Offset int64         // dispatched LBA in bytes
	Seek   int64         // absolute head movement; 0 for sequential
}

// SeekSeries converts recorded write dispatches into the Figure 5 series.
func (r *Recorder) SeekSeries() []SeekPoint {
	evs := r.Events()
	if len(evs) == 0 {
		return nil
	}
	t0 := evs[0].T
	out := make([]SeekPoint, 0, len(evs))
	for _, e := range evs {
		if e.Op != blockdev.OpWrite {
			continue
		}
		out = append(out, SeekPoint{T: e.T.Sub(t0), Offset: e.Offset, Seek: e.SeekLen})
	}
	return out
}

// Summary aggregates block-level characteristics of a trace.
type Summary struct {
	Dispatches  int
	Merged      int   // original requests absorbed by merging
	Seeks       int   // dispatches that moved the head
	SeekBytes   int64 // total absolute head movement
	Bytes       int64
	LongSeeks   int // seeks over 64 MiB ("spikes" in Figure 5c)
	MeanSeekLen float64
}

// Summarize computes the trace summary.
func (r *Recorder) Summarize() Summary {
	var s Summary
	for _, e := range r.Events() {
		s.Dispatches++
		s.Merged += e.Merged
		s.Bytes += e.Length
		if e.SeekLen != 0 {
			s.Seeks++
			s.SeekBytes += e.SeekLen
			if e.SeekLen > 64<<20 {
				s.LongSeeks++
			}
		}
	}
	if s.Seeks > 0 {
		s.MeanSeekLen = float64(s.SeekBytes) / float64(s.Seeks)
	}
	return s
}

// WriteCSV emits the seek series as "t_us,offset,seek" rows, the format the
// plotting notebook (and cmd/redbud-trace) consumes.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "t_us,offset,seek"); err != nil {
		return err
	}
	for _, p := range r.SeekSeries() {
		if _, err := fmt.Fprintf(w, "%d,%d,%d\n", p.T.Microseconds(), p.Offset, p.Seek); err != nil {
			return err
		}
	}
	return nil
}

// Multi fans one trace hook out to several recorders (e.g. a global recorder
// plus a per-experiment one).
func Multi(fns ...blockdev.TraceFunc) blockdev.TraceFunc {
	return func(e blockdev.Event) {
		for _, fn := range fns {
			fn(e)
		}
	}
}
