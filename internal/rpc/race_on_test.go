//go:build race

package rpc

// raceEnabled reports whether the race detector is active; its shadow-memory
// bookkeeping allocates, so zero-alloc assertions are skipped under -race.
const raceEnabled = true
