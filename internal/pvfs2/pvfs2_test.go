package pvfs2

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"redbud/internal/blockdev"
	"redbud/internal/clock"
	"redbud/internal/fsapi"
	"redbud/internal/netsim"
)

// cluster is a meta server + K data servers + a client factory.
type cluster struct {
	t     *testing.T
	clk   clock.Clock
	net   *netsim.Network
	disks []*blockdev.Device
	nhost int
}

func newCluster(t *testing.T, k int) *cluster {
	t.Helper()
	clk := clock.Real(1)
	n := netsim.NewNetwork(clk)
	c := &cluster{t: t, clk: clk, net: n}

	n.AddHost("meta", netsim.Instant())
	ml, err := n.Listen("meta")
	if err != nil {
		t.Fatal(err)
	}
	ms := NewMetaServer(clk, 8, 0)
	t.Cleanup(ms.Close)
	go ms.Serve(ml)
	t.Cleanup(func() { ml.Close() })

	for i := 0; i < k; i++ {
		host := fmt.Sprintf("data%d", i)
		n.AddHost(host, netsim.Instant())
		disk := blockdev.New(blockdev.Config{ID: i, Size: 1 << 30, Model: blockdev.ZeroLatency(), Clock: clk})
		t.Cleanup(disk.Close)
		c.disks = append(c.disks, disk)
		ds := NewDataServer(disk, clk, 8)
		t.Cleanup(ds.Close)
		dl, err := n.Listen(host)
		if err != nil {
			t.Fatal(err)
		}
		go ds.Serve(dl)
		t.Cleanup(func() { dl.Close() })
	}
	return c
}

func (c *cluster) mount() *Client {
	c.t.Helper()
	c.nhost++
	host := fmt.Sprintf("client%d", c.nhost)
	c.net.AddHost(host, netsim.Instant())
	mconn, err := c.net.Dial(host, "meta")
	if err != nil {
		c.t.Fatal(err)
	}
	var dconns []netsim.Conn
	for i := range c.disks {
		dc, err := c.net.Dial(host, fmt.Sprintf("data%d", i))
		if err != nil {
			c.t.Fatal(err)
		}
		dconns = append(dconns, dc)
	}
	cl := NewClient(mconn, dconns, c.clk)
	c.t.Cleanup(func() { cl.Close() })
	return cl
}

func TestRoundTripSmall(t *testing.T) {
	c := newCluster(t, 4).mount()
	f, err := c.Create("/s")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("tiny write")
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if n, err := f.ReadAt(got, 0); err != nil || n != len(data) {
		t.Fatalf("read = %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch")
	}
}

func TestLargeWriteStripesAcrossServers(t *testing.T) {
	cl := newCluster(t, 4)
	c := cl.mount()
	f, _ := c.Create("/big")
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	// Every data server received some stripes.
	for i, d := range cl.disks {
		if d.Stats().BytesWrite == 0 {
			t.Fatalf("data server %d received nothing", i)
		}
	}
	got := make([]byte, len(data))
	if n, err := f.ReadAt(got, 0); err != nil || n != len(data) {
		t.Fatalf("read = %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("striped content mismatch")
	}
}

func TestUnalignedOffsets(t *testing.T) {
	c := newCluster(t, 3).mount()
	f, _ := c.Create("/odd")
	data := bytes.Repeat([]byte{0xAB}, 200000) // spans several stripes
	off := int64(StripeUnit - 1234)            // straddles a boundary
	if _, err := f.WriteAt(data, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if n, err := f.ReadAt(got, off); err != nil || n != len(data) {
		t.Fatalf("read = %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("unaligned mismatch")
	}
}

func TestCrossClientVisibility(t *testing.T) {
	cl := newCluster(t, 2)
	w, r := cl.mount(), cl.mount()
	f, _ := w.Create("/shared")
	data := bytes.Repeat([]byte{5}, 100000)
	f.WriteAt(data, 0)
	// Synchronous system: immediately visible.
	g, err := r.Open("/shared")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if n, err := g.ReadAt(got, 0); err != nil || n != len(data) {
		t.Fatalf("read = %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch")
	}
}

func TestWriteCollectiveCoalesces(t *testing.T) {
	cl := newCluster(t, 4)
	c := cl.mount()
	fh, _ := c.Create("/bt")
	f := fh.(*file)
	// 64 interleaved 4 KiB blocks, shuffled: collective I/O coalesces
	// them into one contiguous run.
	var blocks []fsapi.CollectiveBlock
	for i := 63; i >= 0; i-- {
		blocks = append(blocks, fsapi.CollectiveBlock{Off: int64(i) * 4096, Data: bytes.Repeat([]byte{byte(i)}, 4096)})
	}
	rpcsBefore := c.RPCs()
	if err := f.WriteCollective(blocks); err != nil {
		t.Fatal(err)
	}
	rpcs := c.RPCs() - rpcsBefore
	// 256 KiB contiguous = 4 stripes + 1 setsize; far fewer than 64
	// individual writes (64 data + 64 setsize).
	if rpcs > 10 {
		t.Fatalf("collective write used %d RPCs", rpcs)
	}
	got := make([]byte, 64*4096)
	if n, err := f.ReadAt(got, 0); err != nil || n != len(got) {
		t.Fatalf("read = %d, %v", n, err)
	}
	for i := 0; i < 64; i++ {
		if got[i*4096] != byte(i) {
			t.Fatalf("block %d corrupted", i)
		}
	}
}

func TestWriteCollectiveNonContiguous(t *testing.T) {
	c := newCluster(t, 2).mount()
	fh, _ := c.Create("/gaps")
	f := fh.(*file)
	blocks := []fsapi.CollectiveBlock{
		{Off: 0, Data: []byte("aaa")},
		{Off: 100, Data: []byte("bbb")},
	}
	if err := f.WriteCollective(blocks); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 103)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got[:3]) != "aaa" || string(got[100:]) != "bbb" {
		t.Fatalf("content = %q", got)
	}
	if err := f.WriteCollective(nil); err != nil {
		t.Fatal(err)
	}
}

func TestNamespaceAndErrors(t *testing.T) {
	c := newCluster(t, 2).mount()
	if err := c.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("/d/f"); err != nil {
		t.Fatal(err)
	}
	info, err := c.Stat("/d/f")
	if err != nil || info.Dir {
		t.Fatalf("stat = %+v, %v", info, err)
	}
	ents, err := c.ReadDir("/d")
	if err != nil || len(ents) != 1 {
		t.Fatalf("readdir = %+v, %v", ents, err)
	}
	if _, err := c.Open("/ghost"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("open missing = %v", err)
	}
	if _, err := c.Create("/d/f"); !errors.Is(err, fsapi.ErrExist) {
		t.Fatalf("dup = %v", err)
	}
	if _, err := c.Open("/d"); !errors.Is(err, fsapi.ErrIsDir) {
		t.Fatalf("open dir = %v", err)
	}
}

func TestRemoveFreesStripes(t *testing.T) {
	cl := newCluster(t, 2)
	c := cl.mount()
	f, _ := c.Create("/bulky")
	f.WriteAt(make([]byte, 512<<10), 0)
	if err := c.Remove("/bulky"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/bulky"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatal("file still visible")
	}
	// A new file can reuse the space without overlap errors.
	g, _ := c.Create("/reuse")
	if _, err := g.WriteAt(make([]byte, 512<<10), 0); err != nil {
		t.Fatal(err)
	}
}

func TestAppendSparseEOF(t *testing.T) {
	c := newCluster(t, 2).mount()
	f, _ := c.Create("/log")
	if off, err := f.Append([]byte("one")); err != nil || off != 0 {
		t.Fatalf("append = %d, %v", off, err)
	}
	if off, err := f.Append([]byte("two")); err != nil || off != 3 {
		t.Fatalf("append = %d, %v", off, err)
	}
	if f.Size() != 6 {
		t.Fatalf("size = %d", f.Size())
	}
	buf := make([]byte, 10)
	if n, _ := f.ReadAt(buf, 100); n != 0 {
		t.Fatalf("past-EOF read = %d", n)
	}
	if f.Sync() != nil || f.Close() != nil {
		t.Fatal("sync/close errored")
	}
}

func TestRename(t *testing.T) {
	c := newCluster(t, 2).mount()
	c.Mkdir("/d")
	f, _ := c.Create("/d/old")
	f.WriteAt(bytes.Repeat([]byte{3}, 1000), 0)
	if err := c.Rename("/d/old", "/new"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/d/old"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatal("old path visible")
	}
	g, err := c.Open("/new")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1000)
	if n, err := g.ReadAt(buf, 0); err != nil || n != 1000 {
		t.Fatalf("read = %d, %v", n, err)
	}
	if buf[0] != 3 {
		t.Fatal("content lost")
	}
	if err := c.Rename("/ghost", "/x"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("missing src: %v", err)
	}
}
