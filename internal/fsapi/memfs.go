package fsapi

import (
	"fmt"
	"sync"
	"time"

	"redbud/internal/clock"
)

// MemFS is an in-memory reference implementation of FileSystem. It exists
// for two jobs: driving the workload engine in unit tests, and serving as
// the oracle in differential tests (run the same operation stream against
// Redbud and MemFS, compare every byte).
type MemFS struct {
	clk    clock.Clock
	mu     sync.Mutex
	nodes  map[string]*memNode // path -> node; "" is the root dir
	closed bool
}

type memNode struct {
	dir   bool
	data  []byte
	size  int64
	mtime time.Time
}

// NewMemFS returns an empty file system stamping mtimes from the wall clock.
func NewMemFS() *MemFS {
	return NewMemFSWithClock(clock.Real(1))
}

// NewMemFSWithClock returns an empty file system stamping mtimes from clk.
// Differential tests must inject the simulation clock here: otherwise memfs
// mtimes read the wall clock and two runs of the same op stream diverge.
func NewMemFSWithClock(clk clock.Clock) *MemFS {
	return &MemFS{clk: clk, nodes: map[string]*memNode{"": {dir: true}}}
}

// norm canonicalizes a path to its joined components.
func norm(path string) string {
	parts := SplitPath(path)
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "/"
		}
		out += p
	}
	return out
}

// parent returns the parent path of a normalized path.
func parent(np string) string {
	for i := len(np) - 1; i >= 0; i-- {
		if np[i] == '/' {
			return np[:i]
		}
	}
	return ""
}

// Create makes a new regular file.
func (m *MemFS) Create(path string) (File, error) {
	np := norm(path)
	if np == "" {
		return nil, fmt.Errorf("%w: %q", ErrIsDir, path)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if p := m.nodes[parent(np)]; p == nil || !p.dir {
		return nil, fmt.Errorf("%w: parent of %q", ErrNotExist, path)
	}
	if m.nodes[np] != nil {
		return nil, fmt.Errorf("%w: %q", ErrExist, path)
	}
	n := &memNode{mtime: m.clk.Now()}
	m.nodes[np] = n
	return &memFile{fs: m, node: n}, nil
}

// Open opens an existing file.
func (m *MemFS) Open(path string) (File, error) {
	np := norm(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.nodes[np]
	if n == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, path)
	}
	if n.dir {
		return nil, fmt.Errorf("%w: %q", ErrIsDir, path)
	}
	return &memFile{fs: m, node: n}, nil
}

// Mkdir creates a directory.
func (m *MemFS) Mkdir(path string) error {
	np := norm(path)
	if np == "" {
		return fmt.Errorf("%w: /", ErrExist)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if p := m.nodes[parent(np)]; p == nil || !p.dir {
		return fmt.Errorf("%w: parent of %q", ErrNotExist, path)
	}
	if m.nodes[np] != nil {
		return fmt.Errorf("%w: %q", ErrExist, path)
	}
	m.nodes[np] = &memNode{dir: true, mtime: m.clk.Now()}
	return nil
}

// Remove unlinks a file or empty directory.
func (m *MemFS) Remove(path string) error {
	np := norm(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.nodes[np]
	if n == nil {
		return fmt.Errorf("%w: %q", ErrNotExist, path)
	}
	if n.dir {
		for other := range m.nodes {
			if other != np && len(other) > len(np) && other[:len(np)] == np && other[len(np)] == '/' {
				return fmt.Errorf("memfs: %q not empty", path)
			}
		}
	}
	delete(m.nodes, np)
	return nil
}

// Rename moves a node (and, for directories, its whole subtree).
func (m *MemFS) Rename(oldPath, newPath string) error {
	op, np := norm(oldPath), norm(newPath)
	if op == "" || np == "" {
		return fmt.Errorf("memfs: cannot rename root")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.nodes[op]
	if n == nil {
		return fmt.Errorf("%w: %q", ErrNotExist, oldPath)
	}
	if p := m.nodes[parent(np)]; p == nil || !p.dir {
		return fmt.Errorf("%w: parent of %q", ErrNotExist, newPath)
	}
	if m.nodes[np] != nil {
		return fmt.Errorf("%w: %q", ErrExist, newPath)
	}
	if n.dir && len(np) > len(op) && np[:len(op)] == op && np[len(op)] == '/' {
		return fmt.Errorf("memfs: cannot move %q into its own subtree", oldPath)
	}
	// Move the node and every descendant key.
	moves := map[string]string{op: np}
	prefix := op + "/"
	for other := range m.nodes {
		if len(other) > len(prefix) && other[:len(prefix)] == prefix {
			moves[other] = np + other[len(op):]
		}
	}
	for from, to := range moves {
		m.nodes[to] = m.nodes[from]
		delete(m.nodes, from)
	}
	return nil
}

// Stat describes a path.
func (m *MemFS) Stat(path string) (Info, error) {
	np := norm(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.nodes[np]
	if n == nil {
		return Info{}, fmt.Errorf("%w: %q", ErrNotExist, path)
	}
	name := np
	for i := len(np) - 1; i >= 0; i-- {
		if np[i] == '/' {
			name = np[i+1:]
			break
		}
	}
	if np == "" {
		name = "/"
	}
	return Info{Name: name, Size: n.size, Dir: n.dir, MTime: n.mtime}, nil
}

// ReadDir lists a directory.
func (m *MemFS) ReadDir(path string) ([]Info, error) {
	np := norm(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.nodes[np]
	if n == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, path)
	}
	if !n.dir {
		return nil, fmt.Errorf("memfs: %q not a directory", path)
	}
	var out []Info
	prefix := np
	if prefix != "" {
		prefix += "/"
	}
	for other, node := range m.nodes {
		if other == np || len(other) <= len(prefix) || other[:len(prefix)] != prefix {
			continue
		}
		rest := other[len(prefix):]
		direct := true
		for i := 0; i < len(rest); i++ {
			if rest[i] == '/' {
				direct = false
				break
			}
		}
		if direct {
			out = append(out, Info{Name: rest, Size: node.size, Dir: node.dir, MTime: node.mtime})
		}
	}
	return out, nil
}

// Close marks the file system closed.
func (m *MemFS) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.closed = true
	return nil
}

var _ FileSystem = (*MemFS)(nil)

// memFile is an open MemFS file.
type memFile struct {
	fs   *MemFS
	node *memNode
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("memfs: negative offset")
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(f.node.data)) {
		grown := make([]byte, end)
		copy(grown, f.node.data)
		f.node.data = grown
	}
	copy(f.node.data[off:end], p)
	if end > f.node.size {
		f.node.size = end
	}
	f.node.mtime = f.fs.clk.Now()
	return len(p), nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("memfs: negative offset")
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if off >= f.node.size {
		return 0, nil
	}
	n := int64(len(p))
	if off+n > f.node.size {
		n = f.node.size - off
	}
	copy(p[:n], f.node.data[off:off+n])
	return int(n), nil
}

func (f *memFile) Append(p []byte) (int64, error) {
	f.fs.mu.Lock()
	off := f.node.size
	f.fs.mu.Unlock()
	if _, err := f.WriteAt(p, off); err != nil {
		return 0, err
	}
	return off, nil
}

func (f *memFile) Size() int64 {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return f.node.size
}

func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }
