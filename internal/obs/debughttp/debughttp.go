// Package debughttp serves live introspection over HTTP for the real-TCP
// deployment (cmd/redbud-mds, cmd/redbud-client): /metrics in Prometheus
// text format, /metrics.json for cmd/redbud-top, /debug/trace for the span
// ring, /debug/trace/perfetto for a Chrome-trace export, and the standard
// net/http/pprof handlers. When a cluster collector is configured it also
// serves /cluster/metrics[.json]: every shard scraped, tagged, and merged,
// with SLO alert states evaluated on the fresh aggregate.
//
// This package is the one sanctioned wall-clock user under internal/: it
// exists only in real deployments, never inside a simulated run, so the
// simclock analyzer allow-lists it by package path.
package debughttp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"redbud/internal/obs"
	"redbud/internal/obs/agg"
)

// Config assembles a debug server.
type Config struct {
	// Addr is the listen address, e.g. "127.0.0.1:9100". An ":0" port picks
	// a free one; the chosen address is returned by Start.
	Addr string
	// Registry backs /metrics and /metrics.json (may be nil: empty output).
	Registry *obs.Registry
	// Tracer backs /debug/trace and /debug/trace/perfetto (may be nil).
	Tracer *obs.Tracer
	// Collector backs /cluster/metrics and /cluster/metrics.json (may be
	// nil: 404). Usually one daemon of the cluster carries the collector,
	// scraping every shard's /metrics.json — its own included.
	Collector *agg.Collector
	// SLO, if non-nil alongside Collector, is evaluated against each
	// collection's merged snapshot; /cluster/metrics.json carries the alert
	// states and transition log.
	SLO *agg.Engine
}

// Server is a running debug listener.
type Server struct {
	cfg     Config
	lis     net.Listener
	srv     *http.Server
	started time.Time
}

// Start opens the listener and begins serving in a background goroutine.
// It returns the bound address (useful with ":0").
func Start(cfg Config) (*Server, error) {
	lis, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("debughttp: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{cfg: cfg, lis: lis, started: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/cluster/metrics", s.handleCluster)
	mux.HandleFunc("/cluster/metrics.json", s.handleClusterJSON)
	mux.HandleFunc("/debug/trace", s.handleTrace)
	mux.HandleFunc("/debug/trace/perfetto", s.handlePerfetto)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", s.handleHealthz)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(lis) //nolint:errcheck // Serve returns on Close
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops the listener and all open connections.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<html><body><h1>redbud debug</h1><ul>
<li><a href="/metrics">/metrics</a> (Prometheus text)</li>
<li><a href="/metrics.json">/metrics.json</a></li>
<li><a href="/cluster/metrics">/cluster/metrics</a> (all shards, tagged + merged)</li>
<li><a href="/cluster/metrics.json">/cluster/metrics.json</a> (with SLO alerts)</li>
<li><a href="/debug/trace">/debug/trace</a> (span ring, ?n= to limit)</li>
<li><a href="/debug/trace/perfetto">/debug/trace/perfetto</a> (load in ui.perfetto.dev)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a></li>
<li><a href="/healthz">/healthz</a></li>
</ul></body></html>`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cfg.Registry.WritePrometheus(w) //nolint:errcheck // client disconnect
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.cfg.Registry.WriteJSON(w) //nolint:errcheck // client disconnect
}

// clusterDump is the /cluster/metrics.json payload: the collection round
// plus the SLO engine's view of it.
type clusterDump struct {
	agg.ClusterSnapshot
	Alerts []agg.Alert `json:"alerts,omitempty"`
	Events []agg.Event `json:"events,omitempty"`
}

func (s *Server) collect() (clusterDump, bool) {
	if s.cfg.Collector == nil {
		return clusterDump{}, false
	}
	d := clusterDump{ClusterSnapshot: s.cfg.Collector.Collect()}
	if s.cfg.SLO != nil {
		d.Alerts = s.cfg.SLO.Evaluate(time.Now(), d.Merged)
		d.Events = s.cfg.SLO.Events()
	}
	return d, true
}

func (s *Server) handleCluster(w http.ResponseWriter, _ *http.Request) {
	d, ok := s.collect()
	if !ok {
		http.Error(w, "no cluster collector configured", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteSnapshotPrometheus(w, d.Flat()) //nolint:errcheck // client disconnect
}

func (s *Server) handleClusterJSON(w http.ResponseWriter, _ *http.Request) {
	d, ok := s.collect()
	if !ok {
		http.Error(w, "no cluster collector configured", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(d) //nolint:errcheck // client disconnect
}

// traceDump is the /debug/trace payload.
type traceDump struct {
	Total   int64      `json:"total"`
	Dropped int64      `json:"dropped"`
	Spans   []obs.Span `json:"spans"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	spans := s.cfg.Tracer.Spans()
	if v := r.URL.Query().Get("n"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 && n < len(spans) {
			spans = spans[len(spans)-n:] // newest n
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(traceDump{ //nolint:errcheck // client disconnect
		Total:   s.cfg.Tracer.Total(),
		Dropped: s.cfg.Tracer.Dropped(),
		Spans:   spans,
	})
}

func (s *Server) handlePerfetto(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="redbud-trace.json"`)
	obs.WriteChromeTrace(w, s.cfg.Tracer.Spans()) //nolint:errcheck // client disconnect
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	fmt.Fprintf(w, "ok uptime=%s\n", time.Since(s.started).Round(time.Second))
}
