package client

import (
	"fmt"
	"testing"
	"time"

	"redbud/internal/fsapi"
)

// TestDeviceCrashSurfacesOnSync injects a disk-array failure under a delayed
// write: the error must surface on the next durability point (Sync), not be
// swallowed by the background daemons.
func TestDeviceCrashSurfacesOnSync(t *testing.T) {
	tc := newCluster(t)
	c := tc.client(DelayedCommit, 0)
	f, err := c.Create("/victim")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(pattern(4096, 1), 0); err != nil {
		t.Fatal(err)
	}
	// Wait for the in-flight write to land, then crash the device and
	// write again: the new writepage must fail.
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	tc.devices[0].Crash()
	if _, err := f.WriteAt(pattern(4096, 2), 8192); err == nil {
		// The write itself may succeed (async submit); the error must
		// then surface on Sync.
		if err := f.Sync(); err == nil {
			t.Fatal("device crash swallowed by delayed path")
		}
	}
	tc.devices[0].Recover()
}

// TestDeviceCrashFailsCommitCleanly checks that a crash between writepage
// and commit never commits: the MDS state stays consistent.
func TestDeviceCrashFailsCommitCleanly(t *testing.T) {
	tc := newCluster(t)
	c := tc.client(SyncCommit, 0)
	f, err := c.Create("/v2")
	if err != nil {
		t.Fatal(err)
	}
	tc.devices[0].Crash()
	if _, err := f.WriteAt(pattern(4096, 3), 0); err == nil {
		t.Fatal("sync write succeeded on crashed device")
	}
	tc.devices[0].Recover()
	// Nothing was committed: the file reads back empty via the MDS.
	lay, err := tc.store.GetLayout(2, 0, 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(lay.Extents) != 0 {
		t.Fatalf("crashed write left committed extents: %+v", lay.Extents)
	}
	bad := tc.store.CheckConsistent(func(dev int, off, n int64) bool {
		return tc.devices[uint32(dev)].IsDurable(off, n)
	})
	if len(bad) != 0 {
		t.Fatalf("inconsistency after device crash: %+v", bad)
	}
}

// TestMDSConnectionLossFailsOps kills the MDS connection mid-run: namespace
// operations must fail promptly, not hang.
func TestMDSConnectionLossFailsOps(t *testing.T) {
	tc := newCluster(t)
	c := tc.client(DelayedCommit, 0)
	if _, err := c.Create("/pre"); err != nil {
		t.Fatal(err)
	}
	func() { mds, _ := c.links[0].conn(); mds.Close() }()
	done := make(chan error, 1)
	go func() {
		_, err := c.Create("/post")
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("create succeeded after MDS connection loss")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("create hung after MDS connection loss")
	}
}

// TestLeaseGCAfterClientCrashKeepsOthersWorking injects a client crash and
// verifies surviving clients are unaffected while the orphans are recycled.
func TestLeaseGCAfterClientCrashKeepsOthersWorking(t *testing.T) {
	tc := newCluster(t)
	victim := tc.client(DelayedCommit, 1<<20)
	survivor := tc.client(DelayedCommit, 1<<20)
	defer survivor.Close()

	for i := 0; i < 5; i++ {
		f, err := victim.Create(fmt.Sprintf("/v-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		f.WriteAt(pattern(4096, byte(i)), 0)
		f.Close()
	}
	victim.Crash()
	reclaimed := tc.store.ClientGone(victim.cfg.Name)
	if reclaimed <= 0 {
		t.Fatal("nothing reclaimed from crashed client")
	}
	// The survivor keeps working, including allocating fresh space that
	// may reuse the reclaimed range.
	for i := 0; i < 10; i++ {
		path := fmt.Sprintf("/s-%d", i)
		writeFile(t, survivor, path, pattern(8192, byte(i)))
	}
	if err := survivor.Drain(); err != nil {
		t.Fatal(err)
	}
	bad := tc.store.CheckConsistent(func(dev int, off, n int64) bool {
		return tc.devices[uint32(dev)].IsDurable(off, n)
	})
	if len(bad) != 0 {
		t.Fatalf("%d inconsistent extents after GC + reuse", len(bad))
	}
}

// TestReadAfterWriterCrashSeesCommittedPrefixOnly: a reader must never see
// data the crashed writer did not commit (no metadata = no access, the
// ordered-write guarantee).
func TestReadAfterWriterCrashSeesCommittedPrefixOnly(t *testing.T) {
	tc := newCluster(t)
	w := tc.client(DelayedCommit, 0)
	f, err := w.Create("/partial")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(pattern(4096, 1), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // first page committed
		t.Fatal(err)
	}
	// Second page written but the commit may be pending when we crash.
	if _, err := f.WriteAt(pattern(4096, 2), 4096); err != nil {
		t.Fatal(err)
	}
	w.Crash()
	tc.store.ClientGone(w.cfg.Name)

	r := tc.client(SyncCommit, 0)
	defer r.Close()
	info, err := r.Stat("/partial")
	if err != nil {
		t.Fatal(err)
	}
	// Size is either 4096 (commit lost) or 8192 (background commit won);
	// in both cases every byte the reader can reach must be valid.
	if info.Size != 4096 && info.Size != 8192 {
		t.Fatalf("size = %d", info.Size)
	}
	g, err := r.Open("/partial")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, info.Size)
	n, err := g.ReadAt(buf, 0)
	if err != nil || int64(n) != info.Size {
		t.Fatalf("read = %d, %v", n, err)
	}
	want := pattern(4096, 1)
	for i := 0; i < 4096; i++ {
		if buf[i] != want[i] {
			t.Fatalf("committed prefix corrupted at %d", i)
		}
	}
	if _, ok := interface{}(fsapi.FileSystem(r)).(fsapi.FileSystem); !ok {
		t.Fatal("unreachable")
	}
}
