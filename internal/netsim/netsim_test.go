package netsim

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"redbud/internal/clock"
)

func newFabric(t *testing.T, lc LinkConfig, hosts ...string) *Network {
	t.Helper()
	n := NewNetwork(clock.Real(1))
	for _, h := range hosts {
		n.AddHost(h, lc)
	}
	return n
}

func dialPair(t *testing.T, n *Network, from, to string) (Conn, Conn) {
	t.Helper()
	l, err := n.Listen(to)
	if err != nil {
		t.Fatal(err)
	}
	var server Conn
	var serr error
	done := make(chan struct{})
	go func() {
		server, serr = l.Accept()
		close(done)
	}()
	client, err := n.Dial(from, to)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if serr != nil {
		t.Fatal(serr)
	}
	return client, server
}

func TestSendRecvRoundTrip(t *testing.T) {
	n := newFabric(t, Instant(), "a", "b")
	c, s := dialPair(t, n, "a", "b")
	defer c.Close()
	go func() {
		f, err := s.Recv()
		if err != nil {
			t.Error(err)
			return
		}
		s.Send(append([]byte("echo:"), f...))
	}()
	if err := c.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "echo:ping" {
		t.Fatalf("got %q", got)
	}
}

func TestSendCopiesFrame(t *testing.T) {
	n := newFabric(t, Instant(), "a", "b")
	c, s := dialPair(t, n, "a", "b")
	defer c.Close()
	buf := []byte("original")
	if err := c.Send(buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "mutated!")
	got, err := s.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("frame aliased sender buffer: %q", got)
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	n := newFabric(t, Instant(), "a", "b")
	c, s := dialPair(t, n, "a", "b")
	errc := make(chan error, 1)
	go func() {
		_, err := s.Recv()
		errc <- err
	}()
	c.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, io.EOF) {
			t.Fatalf("err = %v, want EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
	if err := c.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close err = %v", err)
	}
}

func TestRecvDrainsAfterClose(t *testing.T) {
	n := newFabric(t, Instant(), "a", "b")
	c, s := dialPair(t, n, "a", "b")
	if err := c.Send([]byte("pending")); err != nil {
		t.Fatal(err)
	}
	c.Close()
	got, err := s.Recv()
	if err != nil {
		t.Fatalf("delivered frame lost on close: %v", err)
	}
	if string(got) != "pending" {
		t.Fatalf("got %q", got)
	}
}

func TestDialErrors(t *testing.T) {
	n := newFabric(t, Instant(), "a", "b")
	if _, err := n.Dial("ghost", "b"); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("unknown from err = %v", err)
	}
	if _, err := n.Dial("a", "ghost"); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("unknown to err = %v", err)
	}
	if _, err := n.Dial("a", "b"); err == nil {
		t.Fatal("dial to non-listening host succeeded")
	}
	if _, err := n.Listen("ghost"); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("listen unknown err = %v", err)
	}
}

func TestListenerClose(t *testing.T) {
	n := newFabric(t, Instant(), "a", "b")
	l, _ := n.Listen("b")
	l.Close()
	l.Close() // idempotent
	if _, err := l.Accept(); !errors.Is(err, io.EOF) {
		t.Fatalf("accept after close err = %v", err)
	}
	if _, err := n.Dial("a", "b"); !errors.Is(err, io.EOF) {
		t.Fatalf("dial to closed listener err = %v", err)
	}
}

func TestTransmitTimeScalesWithSize(t *testing.T) {
	lc := LinkConfig{BandwidthMbps: 8} // 1 byte/us
	if got := lc.transmitTime(1000); got != time.Millisecond {
		t.Fatalf("transmit(1000) = %v, want 1ms", got)
	}
	if lc.transmitTime(0) != 0 {
		t.Fatal("empty frame not free")
	}
	if Instant().transmitTime(1<<20) != 0 {
		t.Fatal("instant link charged time")
	}
}

func TestLinkCongestionSignal(t *testing.T) {
	// Slow link: 10ms per message. Concurrent senders queue, so the
	// congestion EWMA must rise.
	lc := LinkConfig{BandwidthMbps: 1000, PerMessage: 10 * time.Millisecond}
	n := NewNetwork(clock.Real(0.01)) // 100x compression
	n.AddHost("client", lc)
	n.AddHost("mds", lc)
	c, s := dialPair(t, n, "client", "mds")
	defer c.Close()
	go func() {
		for {
			if _, err := s.Recv(); err != nil {
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				c.Send([]byte("x"))
			}
		}()
	}
	wg.Wait()
	if w := n.CongestionWait("mds"); w == 0 {
		t.Fatal("no queueing delay observed under flood")
	}
	st, err := n.HostStats("mds")
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages != 64 || st.Bytes != 64 {
		t.Fatalf("stats = %+v", st)
	}
	if _, err := n.HostStats("ghost"); err == nil {
		t.Fatal("stats for unknown host succeeded")
	}
	if n.CongestionWait("ghost") != 0 {
		t.Fatal("congestion for unknown host nonzero")
	}
}

func TestPerMessageOverheadDominatesSmallFrames(t *testing.T) {
	// Sending k small frames costs ~k*PerMessage; one frame of the same
	// total bytes costs ~1*PerMessage — the compound-RPC economics.
	lc := LinkConfig{BandwidthMbps: 1e9, PerMessage: 5 * time.Millisecond, Latency: 0}
	n := NewNetwork(clock.Real(0.01))
	n.AddHost("a", lc)
	n.AddHost("b", lc)
	c, s := dialPair(t, n, "a", "b")
	defer c.Close()
	go func() {
		for {
			if _, err := s.Recv(); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	for i := 0; i < 10; i++ {
		c.Send(make([]byte, 100))
	}
	many := time.Since(start)
	start = time.Now()
	c.Send(make([]byte, 1000))
	one := time.Since(start)
	if many < 5*one {
		t.Fatalf("10 small frames (%v) not ≫ 1 large frame (%v)", many, one)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	n := newFabric(t, Instant(), "a", "b")
	c, _ := dialPair(t, n, "a", "b")
	defer c.Close()
	if err := c.Send(make([]byte, maxFrame+1)); !errors.Is(err, ErrFrameSize) {
		t.Fatalf("oversized frame err = %v", err)
	}
}

func TestFrameConnOverPipe(t *testing.T) {
	p1, p2 := net.Pipe()
	a, b := FrameConn(p1), FrameConn(p2)
	defer a.Close()
	defer b.Close()
	go func() {
		f, err := b.Recv()
		if err != nil {
			t.Error(err)
			return
		}
		b.Send(f)
	}()
	msg := bytes.Repeat([]byte{7}, 10000)
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := a.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("tcp frame round-trip mismatch")
	}
}

func TestFrameConnConcurrentSenders(t *testing.T) {
	p1, p2 := net.Pipe()
	a, b := FrameConn(p1), FrameConn(p2)
	defer a.Close()
	defer b.Close()
	const n = 50
	go func() {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				a.Send(bytes.Repeat([]byte{1}, 100))
			}()
		}
		wg.Wait()
	}()
	for i := 0; i < n; i++ {
		f, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if len(f) != 100 {
			t.Fatalf("frame %d torn: len %d", i, len(f))
		}
	}
}

func TestMultipleConnections(t *testing.T) {
	n := newFabric(t, Instant(), "mds", "c1", "c2", "c3")
	l, err := n.Listen("mds")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				for {
					f, err := conn.Recv()
					if err != nil {
						return
					}
					conn.Send(f)
				}
			}()
		}
	}()
	var wg sync.WaitGroup
	for _, host := range []string{"c1", "c2", "c3"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := n.Dial(host, "mds")
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			msg := []byte(host)
			c.Send(msg)
			got, err := c.Recv()
			if err != nil || !bytes.Equal(got, msg) {
				t.Errorf("%s: got %q err %v", host, got, err)
			}
		}()
	}
	wg.Wait()
}
