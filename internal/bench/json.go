package bench

import (
	"encoding/json"
	"os"
)

// MDSReport is the machine-readable form of the Figure 7 sweep, written by
// cmd/redbud-bench for CI and regression tracking.
type MDSReport struct {
	Figure  string     `json:"figure"`
	Clients int        `json:"clients"`
	Scale   float64    `json:"scale"`
	Size    float64    `json:"size_factor"`
	Cells   []Fig7Cell `json:"cells"`
}

// WriteMDSJSON serializes the Figure 7 cells (ops/sec and per-client MB/s per
// daemon-count/compound-degree pair) to path as indented JSON.
func WriteMDSJSON(path string, opt Options, cells []Fig7Cell) error {
	rep := MDSReport{
		Figure:  "7",
		Clients: opt.Clients,
		Scale:   opt.Scale,
		Size:    opt.SizeFactor,
		Cells:   cells,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
