package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("redbud_ops_total", "operations", Labels{"client": "c0"}).Add(12)
	r.NewGauge("redbud_depth", "", nil).Set(-3)
	h := r.NewHistogram("redbud_lat_seconds", "latency", nil)
	h.Observe(0.001)
	h.Observe(0.001)
	h.Observe(200) // overflow: above the 100s histogram range

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP redbud_ops_total operations",
		"# TYPE redbud_ops_total counter",
		`redbud_ops_total{client="c0"} 12`,
		"# TYPE redbud_depth gauge",
		"redbud_depth -3",
		"# TYPE redbud_lat_seconds histogram",
		`redbud_lat_seconds_bucket{le="+Inf"} 3`,
		"redbud_lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// Buckets must be cumulative and non-decreasing.
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "redbud_lat_seconds_bucket") {
			continue
		}
		var n int64
		if _, err := fmtSscan(line, &n); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		prev = n
	}
}

// fmtSscan pulls the trailing integer off a Prometheus sample line.
func fmtSscan(line string, n *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	v, err := json.Number(line[i+1:]).Int64()
	*n = v
	return 1, err
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("a_total", "help text", Labels{"k": "v"}).Add(5)
	r.NewHistogram("h_seconds", "", nil).Observe(0.01)

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(b.String()), &s); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	if len(s.Metrics) != 2 {
		t.Fatalf("round-trip metrics = %d, want 2", len(s.Metrics))
	}
	if m, _ := s.Get("a_total"); m.Value != 5 || m.Labels != `k="v"` || m.Help != "help text" {
		t.Fatalf("round-trip counter = %+v", m)
	}
	if m, _ := s.Get("h_seconds"); m.Hist == nil || m.Hist.Count != 1 {
		t.Fatalf("round-trip histogram = %+v", m)
	}
}

func TestPrometheusDeterministic(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.NewCounter("b_total", "", Labels{"x": "2"}).Add(1)
		r.NewCounter("a_total", "", nil).Add(2)
		r.NewCounter("b_total", "", Labels{"x": "1"}).Add(3)
		var b strings.Builder
		r.WritePrometheus(&b)
		return b.String()
	}
	if build() != build() {
		t.Fatal("identical registries export different bytes")
	}
}
