package core

import (
	"sync"
	"time"

	"redbud/internal/clock"
)

// PoolConfig configures the adaptive commit-thread pool.
type PoolConfig struct {
	// Max is ThreadNumsMax; the paper's experiments use 9.
	Max int
	// QueueLenMax is the queue length at which the pool reaches Max
	// threads: ρ = Max / QueueLenMax.
	QueueLenMax int
	// QueueLen samples the commit queue length.
	QueueLen func() int
	// Worker is the commit-daemon body. It must return promptly once stop
	// is closed. One invocation per live thread.
	Worker func(stop <-chan struct{})
	// Interval is the resize period.
	Interval time.Duration
	// OnResize observes (threads, queueLen) after each adjustment — the
	// hook the Figure 6 tracer uses.
	OnResize func(threads, queueLen int)
	// Fixed pins the pool at exactly this many threads (ablation:
	// adaptive pool vs fixed); 0 selects the adaptive formula.
	Fixed int
	Clock clock.Clock
}

// Pool maintains between 1 and Max worker goroutines, sized proportionally
// to the commit queue length: more commit requests spawn more commit
// threads, which compete for schedule time and drain the queue (§IV-B).
type Pool struct {
	cfg PoolConfig
	clk clock.Clock

	mu      sync.Mutex
	stops   []chan struct{}
	stopped bool

	done chan struct{}
	wg   sync.WaitGroup // resizer
	wwg  sync.WaitGroup // workers
}

// NewPool validates cfg and returns a stopped pool.
func NewPool(cfg PoolConfig) *Pool {
	if cfg.Max < 1 {
		cfg.Max = 1
	}
	if cfg.QueueLenMax < 1 {
		cfg.QueueLenMax = 1
	}
	if cfg.Worker == nil {
		panic("core: pool needs a worker")
	}
	if cfg.QueueLen == nil {
		panic("core: pool needs a queue length source")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real(1)
	}
	return &Pool{cfg: cfg, clk: cfg.Clock, done: make(chan struct{})}
}

// Target returns the thread count the paper's formula prescribes for a
// queue length: clamp(ρ·QueueLen, 1, Max), or the pinned size when Fixed.
func (p *Pool) Target(queueLen int) int {
	if p.cfg.Fixed > 0 {
		return p.cfg.Fixed
	}
	t := queueLen * p.cfg.Max / p.cfg.QueueLenMax
	if t < 1 {
		t = 1
	}
	if t > p.cfg.Max {
		t = p.cfg.Max
	}
	return t
}

// Start launches the initial workers and the resize loop.
func (p *Pool) Start() {
	p.resizeTo(p.Target(0), 0)
	p.wg.Add(1)
	go p.resizer()
}

// Size returns the current number of worker threads.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.stops)
}

// resizer periodically applies the sizing formula.
func (p *Pool) resizer() {
	defer p.wg.Done()
	for {
		select {
		case <-p.done:
			return
		case <-p.clk.After(p.cfg.Interval):
		}
		qlen := p.cfg.QueueLen()
		p.resizeTo(p.Target(qlen), qlen)
	}
}

// resizeTo spawns or retires workers to reach n threads.
func (p *Pool) resizeTo(n, qlen int) {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	for len(p.stops) < n {
		stop := make(chan struct{})
		p.stops = append(p.stops, stop)
		p.wwg.Add(1)
		go func() {
			defer p.wwg.Done()
			p.cfg.Worker(stop)
		}()
	}
	for len(p.stops) > n {
		last := len(p.stops) - 1
		close(p.stops[last])
		p.stops = p.stops[:last]
	}
	size := len(p.stops)
	p.mu.Unlock()
	if p.cfg.OnResize != nil {
		p.cfg.OnResize(size, qlen)
	}
}

// Stop retires all workers and halts the resizer. It blocks until every
// worker has returned.
func (p *Pool) Stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	for _, s := range p.stops {
		close(s)
	}
	p.stops = nil
	p.mu.Unlock()
	close(p.done)
	p.wg.Wait()
	p.wwg.Wait()
}
