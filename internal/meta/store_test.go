package meta

import (
	"errors"
	"testing"
	"time"

	"redbud/internal/alloc"
	"redbud/internal/blockdev"
	"redbud/internal/clock"
)

// newStore returns a volatile store over a 64 MiB pool with 4 AGs.
func newStore(t *testing.T) *Store {
	t.Helper()
	ags := alloc.NewUniformAGSet(alloc.RoundRobin, 0, 64<<20, 4)
	return NewStore(Config{AGs: ags, Clock: clock.Real(1)})
}

func mustCreate(t *testing.T, s *Store, parent FileID, name string, typ FileType) Attr {
	t.Helper()
	a, err := s.Create(parent, name, typ)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestCreateLookup(t *testing.T) {
	s := newStore(t)
	a := mustCreate(t, s, RootID, "hello.txt", TypeFile)
	if a.ID == RootID || a.Type != TypeFile || a.Size != 0 {
		t.Fatalf("attr = %+v", a)
	}
	got, err := s.Lookup(RootID, "hello.txt")
	if err != nil || got.ID != a.ID {
		t.Fatalf("lookup = %+v, %v", got, err)
	}
	if _, err := s.Lookup(RootID, "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing lookup err = %v", err)
	}
	if _, err := s.Create(RootID, "hello.txt", TypeFile); !errors.Is(err, ErrExists) {
		t.Fatalf("dup create err = %v", err)
	}
	if _, err := s.Create(999, "x", TypeFile); !errors.Is(err, ErrNotFound) {
		t.Fatalf("create under missing parent err = %v", err)
	}
	for _, bad := range []string{"", ".", ".."} {
		if _, err := s.Create(RootID, bad, TypeFile); err == nil {
			t.Fatalf("create %q succeeded", bad)
		}
	}
}

func TestMkdirAndReadDir(t *testing.T) {
	s := newStore(t)
	dir := mustCreate(t, s, RootID, "sub", TypeDir)
	mustCreate(t, s, dir.ID, "a", TypeFile)
	mustCreate(t, s, dir.ID, "b", TypeFile)
	ents, err := s.ReadDir(dir.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 || ents[0].Name != "a" || ents[1].Name != "b" {
		t.Fatalf("readdir = %+v", ents)
	}
	if _, err := s.ReadDir(ents[0].ID); !errors.Is(err, ErrNotDir) {
		t.Fatalf("readdir on file err = %v", err)
	}
	if _, err := s.ReadDir(12345); !errors.Is(err, ErrNotFound) {
		t.Fatalf("readdir missing err = %v", err)
	}
}

func TestRemove(t *testing.T) {
	s := newStore(t)
	free0 := s.cfg.AGs.FreeBytes()
	a := mustCreate(t, s, RootID, "f", TypeFile)
	lay, err := s.AllocLayout("c1", a.ID, 0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit("c1", a.ID, lay.Extents, 8192, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(RootID, "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Lookup(RootID, "f"); !errors.Is(err, ErrNotFound) {
		t.Fatal("file still visible after remove")
	}
	if got := s.cfg.AGs.FreeBytes(); got != free0 {
		t.Fatalf("space leaked after remove: %d != %d", got, free0)
	}
	if err := s.Remove(RootID, "f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove err = %v", err)
	}
}

func TestRemoveNonEmptyDir(t *testing.T) {
	s := newStore(t)
	dir := mustCreate(t, s, RootID, "d", TypeDir)
	mustCreate(t, s, dir.ID, "child", TypeFile)
	if err := s.Remove(RootID, "d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Remove(dir.ID, "child"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(RootID, "d"); err != nil {
		t.Fatal(err)
	}
}

func TestAllocLayoutAndCommit(t *testing.T) {
	s := newStore(t)
	a := mustCreate(t, s, RootID, "f", TypeFile)
	lay, err := s.AllocLayout("c1", a.ID, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(lay.Extents) == 0 {
		t.Fatal("no extents allocated")
	}
	if lay.Extents[0].State != StateUncommitted {
		t.Fatal("fresh extent not uncommitted")
	}
	// Reads from other clients see nothing yet.
	ro, err := s.GetLayout(a.ID, 0, 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ro.Extents) != 0 {
		t.Fatalf("uncommitted extent visible to readers: %+v", ro.Extents)
	}
	// Commit, then it becomes visible.
	mt := time.Now().UTC()
	if err := s.Commit("c1", a.ID, lay.Extents, 4096, mt); err != nil {
		t.Fatal(err)
	}
	ro, _ = s.GetLayout(a.ID, 0, 4096, 0)
	if len(ro.Extents) != len(lay.Extents) || ro.Extents[0].State != StateCommitted {
		t.Fatalf("committed layout = %+v", ro.Extents)
	}
	attr, _ := s.GetAttr(a.ID)
	if attr.Size != 4096 || !attr.MTime.Equal(mt) {
		t.Fatalf("attr after commit = %+v", attr)
	}
}

func TestAllocLayoutReusesExistingExtents(t *testing.T) {
	s := newStore(t)
	a := mustCreate(t, s, RootID, "f", TypeFile)
	lay1, err := s.AllocLayout("c1", a.ID, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	lay2, err := s.AllocLayout("c1", a.ID, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(lay1.Extents) != len(lay2.Extents) || lay1.Extents[0].VolOff != lay2.Extents[0].VolOff {
		t.Fatalf("overwrite did not reuse extents: %+v vs %+v", lay1.Extents, lay2.Extents)
	}
}

func TestAllocLayoutFillsGapOnly(t *testing.T) {
	s := newStore(t)
	a := mustCreate(t, s, RootID, "f", TypeFile)
	if _, err := s.AllocLayout("c1", a.ID, 0, 4096); err != nil {
		t.Fatal(err)
	}
	free1 := s.cfg.AGs.FreeBytes()
	// Extend: [0,8192) needs only 4096 more bytes.
	lay, err := s.AllocLayout("c1", a.ID, 0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if got := free1 - s.cfg.AGs.FreeBytes(); got != 4096 {
		t.Fatalf("gap fill allocated %d bytes, want 4096", got)
	}
	var covered int64
	for _, e := range lay.Extents {
		covered += e.Len
	}
	if covered != 8192 {
		t.Fatalf("layout covers %d bytes", covered)
	}
}

func TestCommitUnallocatedRejected(t *testing.T) {
	s := newStore(t)
	a := mustCreate(t, s, RootID, "f", TypeFile)
	bogus := []Extent{{FileOff: 0, Len: 4096, Dev: 0, VolOff: 12345}}
	if err := s.Commit("c1", a.ID, bogus, 4096, time.Now()); !errors.Is(err, ErrBadCommit) {
		t.Fatalf("bogus commit err = %v", err)
	}
}

func TestCommitErrors(t *testing.T) {
	s := newStore(t)
	if err := s.Commit("c1", 999, nil, 0, time.Now()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing file commit err = %v", err)
	}
	if err := s.Commit("c1", RootID, nil, 0, time.Now()); !errors.Is(err, ErrIsDir) {
		t.Fatalf("dir commit err = %v", err)
	}
	if _, err := s.AllocLayout("c1", RootID, 0, 10); !errors.Is(err, ErrIsDir) {
		t.Fatalf("dir alloc err = %v", err)
	}
	if _, err := s.GetLayout(999, 0, 10, LayoutWantUncommitted); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing getlayout err = %v", err)
	}
}

func TestDelegationCommit(t *testing.T) {
	s := newStore(t)
	a := mustCreate(t, s, RootID, "f", TypeFile)
	sp, err := s.Delegate("c1", 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Len != 16<<20 {
		t.Fatalf("chunk = %v", sp)
	}
	if s.Delegations("c1") != 1 {
		t.Fatal("delegation not recorded")
	}
	// Client carves an extent from the chunk and commits it.
	ext := Extent{FileOff: 0, Len: 4096, Dev: uint32(sp.Dev), VolOff: sp.Off + 8192}
	if err := s.Commit("c1", a.ID, []Extent{ext}, 4096, time.Now()); err != nil {
		t.Fatal(err)
	}
	// Another client cannot commit from c1's delegation.
	b := mustCreate(t, s, RootID, "g", TypeFile)
	ext2 := Extent{FileOff: 0, Len: 4096, Dev: uint32(sp.Dev), VolOff: sp.Off + 65536}
	if err := s.Commit("c2", b.ID, []Extent{ext2}, 4096, time.Now()); !errors.Is(err, ErrBadCommit) {
		t.Fatalf("cross-client delegation commit err = %v", err)
	}
}

func TestReturnDelegationFreesGaps(t *testing.T) {
	s := newStore(t)
	a := mustCreate(t, s, RootID, "f", TypeFile)
	free0 := s.cfg.AGs.FreeBytes()
	sp, err := s.Delegate("c1", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ext := Extent{FileOff: 0, Len: 4096, Dev: uint32(sp.Dev), VolOff: sp.Off}
	if err := s.Commit("c1", a.ID, []Extent{ext}, 4096, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := s.ReturnDelegation("c1", sp); err != nil {
		t.Fatal(err)
	}
	// All but the committed 4096 bytes must be free again.
	if got := s.cfg.AGs.FreeBytes(); got != free0-4096 {
		t.Fatalf("free = %d, want %d", got, free0-4096)
	}
	if err := s.ReturnDelegation("c1", sp); !errors.Is(err, ErrNoDelegation) {
		t.Fatalf("double return err = %v", err)
	}
}

func TestClientGoneReclaimsOrphans(t *testing.T) {
	s := newStore(t)
	a := mustCreate(t, s, RootID, "f", TypeFile)
	free0 := s.cfg.AGs.FreeBytes()
	// Uncommitted layout-get allocation.
	if _, err := s.AllocLayout("c1", a.ID, 0, 8192); err != nil {
		t.Fatal(err)
	}
	// Delegation with one committed extent.
	sp, err := s.Delegate("c1", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ext := Extent{FileOff: 8192, Len: 4096, Dev: uint32(sp.Dev), VolOff: sp.Off}
	if err := s.Commit("c1", a.ID, []Extent{ext}, 12288, time.Now()); err != nil {
		t.Fatal(err)
	}
	orphaned := s.ClientGone("c1")
	if orphaned != 8192+(1<<20)-4096 {
		t.Fatalf("orphan bytes = %d", orphaned)
	}
	if got := s.cfg.AGs.FreeBytes(); got != free0-4096 {
		t.Fatalf("free = %d, want %d", got, free0-4096)
	}
	// The committed extent survives; the uncommitted one is gone.
	lay, _ := s.GetLayout(a.ID, 0, 1<<20, LayoutWantUncommitted)
	if len(lay.Extents) != 1 || lay.Extents[0].State != StateCommitted {
		t.Fatalf("extents after GC = %+v", lay.Extents)
	}
	if s.Delegations("c1") != 0 {
		t.Fatal("delegation survived ClientGone")
	}
}

func TestIvalHelpers(t *testing.T) {
	var l []ival
	l = addIval(l, 10, 20)
	l = addIval(l, 30, 40)
	l = addIval(l, 20, 30) // bridges
	if len(l) != 1 || l[0] != (ival{10, 40}) {
		t.Fatalf("addIval = %+v", l)
	}
	g := gaps(0, 50, l)
	if len(g) != 2 || g[0] != (ival{0, 10}) || g[1] != (ival{40, 50}) {
		t.Fatalf("gaps = %+v", g)
	}
	if g := gaps(10, 40, l); len(g) != 0 {
		t.Fatalf("full coverage gaps = %+v", g)
	}
	if g := gaps(0, 5, nil); len(g) != 1 || g[0] != (ival{0, 5}) {
		t.Fatalf("empty-used gaps = %+v", g)
	}
}

// ---------------------------------------------------------------------------
// Recovery

// journaledStore builds a store backed by a journal on a real (zero-latency)
// metadata device, plus the pieces needed to recover it later.
func journaledStore(t *testing.T) (*Store, *blockdev.Device, func() *alloc.AGSet) {
	t.Helper()
	dev := newMetaDev(t)
	mkAGs := func() *alloc.AGSet { return alloc.NewUniformAGSet(alloc.RoundRobin, 0, 64<<20, 4) }
	j := NewJournal(dev, 0, 32<<20)
	s := NewStore(Config{AGs: mkAGs(), Journal: j, Clock: clock.Real(1)})
	return s, dev, mkAGs
}

func recoverStore(t *testing.T, dev *blockdev.Device, mkAGs func() *alloc.AGSet) (*Store, RecoveryStats) {
	t.Helper()
	j := NewJournal(dev, 0, 32<<20)
	s, st, err := Recover(Config{AGs: mkAGs(), Journal: j, Clock: clock.Real(1)})
	if err != nil {
		t.Fatal(err)
	}
	return s, st
}

func TestRecoverNamespace(t *testing.T) {
	s, dev, mkAGs := journaledStore(t)
	dir := mustCreate(t, s, RootID, "docs", TypeDir)
	mustCreate(t, s, dir.ID, "a.txt", TypeFile)
	mustCreate(t, s, RootID, "b.txt", TypeFile)
	if err := s.Remove(RootID, "b.txt"); err != nil {
		t.Fatal(err)
	}

	s2, st := recoverStore(t, dev, mkAGs)
	if st.Records != 4 {
		t.Fatalf("records = %d", st.Records)
	}
	if _, err := s2.Lookup(RootID, "docs"); err != nil {
		t.Fatal(err)
	}
	d, _ := s2.Lookup(RootID, "docs")
	if _, err := s2.Lookup(d.ID, "a.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Lookup(RootID, "b.txt"); !errors.Is(err, ErrNotFound) {
		t.Fatal("removed file resurrected")
	}
	// New creates must not collide with replayed IDs.
	n := mustCreate(t, s2, RootID, "new", TypeFile)
	if n.ID <= d.ID {
		t.Fatalf("id sequence regressed: %d <= %d", n.ID, d.ID)
	}
}

func TestRecoverCommittedExtentsSurvive(t *testing.T) {
	s, dev, mkAGs := journaledStore(t)
	a := mustCreate(t, s, RootID, "f", TypeFile)
	lay, err := s.AllocLayout("c1", a.ID, 0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit("c1", a.ID, lay.Extents, 8192, time.Unix(500, 0).UTC()); err != nil {
		t.Fatal(err)
	}

	s2, _ := recoverStore(t, dev, mkAGs)
	attr, err := s2.Lookup(RootID, "f")
	if err != nil {
		t.Fatal(err)
	}
	if attr.Size != 8192 {
		t.Fatalf("size = %d", attr.Size)
	}
	lay2, err := s2.GetLayout(attr.ID, 0, 8192, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(lay2.Extents) != len(lay.Extents) {
		t.Fatalf("extents lost: %+v", lay2.Extents)
	}
	// The recovered AG set must account the committed space as in-use:
	// allocating must never hand it out again.
	if s2.cfg.AGs.FreeBytes() >= 64<<20 {
		t.Fatal("committed space not reserved after recovery")
	}
}

func TestRecoverGCsOrphans(t *testing.T) {
	s, dev, mkAGs := journaledStore(t)
	a := mustCreate(t, s, RootID, "f", TypeFile)
	// Allocation without commit: orphan space after crash.
	if _, err := s.AllocLayout("c1", a.ID, 0, 8192); err != nil {
		t.Fatal(err)
	}
	// Delegation never committed into: fully orphan.
	if _, err := s.Delegate("c2", 1<<20); err != nil {
		t.Fatal(err)
	}

	s2, st := recoverStore(t, dev, mkAGs)
	if st.OrphanBytes != 8192+1<<20 {
		t.Fatalf("orphan bytes = %d", st.OrphanBytes)
	}
	if st.Delegations != 1 {
		t.Fatalf("delegations GC'd = %d", st.Delegations)
	}
	if got := s2.cfg.AGs.FreeBytes(); got != 64<<20 {
		t.Fatalf("free after GC = %d, want all", got)
	}
	// File exists but has no extents: the orphan data is unreachable.
	lay, _ := s2.GetLayout(a.ID, 0, 1<<20, LayoutWantUncommitted)
	if len(lay.Extents) != 0 {
		t.Fatalf("orphan extents visible: %+v", lay.Extents)
	}
}

func TestRecoverDelegationUsedSpansSurvive(t *testing.T) {
	s, dev, mkAGs := journaledStore(t)
	a := mustCreate(t, s, RootID, "f", TypeFile)
	sp, err := s.Delegate("c1", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ext := Extent{FileOff: 0, Len: 4096, Dev: uint32(sp.Dev), VolOff: sp.Off + 4096}
	if err := s.Commit("c1", a.ID, []Extent{ext}, 4096, time.Now().UTC()); err != nil {
		t.Fatal(err)
	}

	s2, st := recoverStore(t, dev, mkAGs)
	// Orphan = the chunk minus the committed 4 KiB.
	if st.OrphanBytes != 1<<20-4096 {
		t.Fatalf("orphan bytes = %d", st.OrphanBytes)
	}
	lay, _ := s2.GetLayout(2, 0, 1<<20, 0)
	if len(lay.Extents) != 1 || lay.Extents[0].VolOff != sp.Off+4096 {
		t.Fatalf("committed delegation extent lost: %+v", lay.Extents)
	}
}

func TestRecoverRequiresJournal(t *testing.T) {
	if _, _, err := Recover(Config{AGs: alloc.NewUniformAGSet(alloc.RoundRobin, 0, 1<<20, 1)}); err == nil {
		t.Fatal("Recover without journal succeeded")
	}
}

func TestCheckConsistent(t *testing.T) {
	s := newStore(t)
	a := mustCreate(t, s, RootID, "f", TypeFile)
	lay, _ := s.AllocLayout("c1", a.ID, 0, 4096)
	if err := s.Commit("c1", a.ID, lay.Extents, 4096, time.Now()); err != nil {
		t.Fatal(err)
	}
	// Oracle says nothing is durable: the committed extent is a violation.
	bad := s.CheckConsistent(func(dev int, off, n int64) bool { return false })
	if len(bad) != 1 {
		t.Fatalf("violations = %+v", bad)
	}
	// Oracle says everything is durable: clean.
	if bad := s.CheckConsistent(func(dev int, off, n int64) bool { return true }); len(bad) != 0 {
		t.Fatalf("false violations = %+v", bad)
	}
}

func TestRemoveIval(t *testing.T) {
	base := []ival{{10, 20}, {30, 40}}
	cases := []struct {
		off, end int64
		want     []ival
	}{
		{0, 5, []ival{{10, 20}, {30, 40}}},             // outside
		{10, 20, []ival{{30, 40}}},                     // exact first
		{12, 18, []ival{{10, 12}, {18, 20}, {30, 40}}}, // split
		{15, 35, []ival{{10, 15}, {35, 40}}},           // spans gap
		{0, 50, nil},                                   // everything
		{20, 30, []ival{{10, 20}, {30, 40}}},           // exactly the gap
	}
	for _, c := range cases {
		in := append([]ival(nil), base...)
		got := removeIval(in, c.off, c.end)
		if len(got) != len(c.want) {
			t.Fatalf("remove [%d,%d): got %v want %v", c.off, c.end, got, c.want)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("remove [%d,%d): got %v want %v", c.off, c.end, got, c.want)
			}
		}
	}
	if got := removeIval(base, 5, 5); len(got) != 2 {
		t.Fatalf("empty remove changed list: %v", got)
	}
}

// TestRemoveInsideDelegationReclaimsOnReturn is the regression test for the
// space leak Fsck caught: a removed file's delegation-carved extents must be
// reclaimable when the delegation is returned.
func TestRemoveInsideDelegationReclaimsOnReturn(t *testing.T) {
	s := newStore(t)
	free0 := s.cfg.AGs.FreeBytes()
	sp, err := s.Delegate("c1", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	a := mustCreate(t, s, RootID, "f", TypeFile)
	ext := Extent{FileOff: 0, Len: 4096, Dev: uint32(sp.Dev), VolOff: sp.Off}
	if err := s.Commit("c1", a.ID, []Extent{ext}, 4096, time.Now().UTC()); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(RootID, "f"); err != nil {
		t.Fatal(err)
	}
	if err := s.ReturnDelegation("c1", sp); err != nil {
		t.Fatal(err)
	}
	if got := s.cfg.AGs.FreeBytes(); got != free0 {
		t.Fatalf("space leaked: free %d, want %d", got, free0)
	}
}

func TestStoreRename(t *testing.T) {
	s := newStore(t)
	dir := mustCreate(t, s, RootID, "d", TypeDir)
	a := mustCreate(t, s, dir.ID, "f", TypeFile)
	if err := s.Rename(dir.ID, "f", RootID, "g"); err != nil {
		t.Fatal(err)
	}
	got, err := s.Lookup(RootID, "g")
	if err != nil || got.ID != a.ID {
		t.Fatalf("lookup after rename = %+v, %v", got, err)
	}
	if _, err := s.Lookup(dir.ID, "f"); !errors.Is(err, ErrNotFound) {
		t.Fatal("old entry survived")
	}
	// Errors.
	if err := s.Rename(RootID, "ghost", RootID, "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing src: %v", err)
	}
	mustCreate(t, s, RootID, "taken", TypeFile)
	if err := s.Rename(RootID, "g", RootID, "taken"); !errors.Is(err, ErrExists) {
		t.Fatalf("existing dst: %v", err)
	}
	if err := s.Rename(RootID, "g", 999, "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing dst parent: %v", err)
	}
	if err := s.Rename(RootID, "g", RootID, ".."); err == nil {
		t.Fatal("bad name accepted")
	}
	// Directory cycle rejection.
	sub := mustCreate(t, s, dir.ID, "sub", TypeDir)
	if err := s.Rename(RootID, "d", sub.ID, "inner"); err == nil {
		t.Fatal("directory moved into own subtree")
	}
}

func TestRenameSurvivesRecovery(t *testing.T) {
	s, dev, mkAGs := journaledStore(t)
	a := mustCreate(t, s, RootID, "before", TypeFile)
	lay, _ := s.AllocLayout("c1", a.ID, 0, 4096)
	if err := s.Commit("c1", a.ID, lay.Extents, 4096, time.Now().UTC()); err != nil {
		t.Fatal(err)
	}
	if err := s.Rename(RootID, "before", RootID, "after"); err != nil {
		t.Fatal(err)
	}
	s2, _ := recoverStore(t, dev, mkAGs)
	if _, err := s2.Lookup(RootID, "before"); !errors.Is(err, ErrNotFound) {
		t.Fatal("old name resurrected by recovery")
	}
	got, err := s2.Lookup(RootID, "after")
	if err != nil || got.Size != 4096 {
		t.Fatalf("renamed file lost: %+v, %v", got, err)
	}
}
