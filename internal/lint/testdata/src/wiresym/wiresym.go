// Package wiresym exercises the Marshal/Unmarshal symmetry analyzer.
package wiresym

import "wire"

// Good round-trips: field order, widths, loop and optional structure all
// line up, including a nested message and a helper pair.
type Good struct {
	A uint64
	B string
	C []uint32
	E Elem
	P []Pair
	V uint32 // v2 trailing optional
}

type Elem struct{ X int64 }

func (m *Elem) MarshalWire(b *wire.Buffer)         { b.PutI64(m.X) }
func (m *Elem) UnmarshalWire(r *wire.Reader) error { m.X = r.I64(); return r.Err() }

type Pair struct{ K, V uint32 }

// PutPairs/GetPairs is a helper pair, like meta.PutExtents/GetExtents.
func PutPairs(b *wire.Buffer, ps []Pair) {
	b.PutU32(uint32(len(ps)))
	for _, p := range ps {
		b.PutU32(p.K)
		b.PutU32(p.V)
	}
}

func GetPairs(r *wire.Reader) []Pair {
	n := int(r.U32())
	if r.Err() != nil || n > 1<<20 {
		return nil
	}
	out := make([]Pair, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Pair{K: r.U32(), V: r.U32()})
	}
	return out
}

func (m *Good) MarshalWire(b *wire.Buffer) {
	b.PutU64(m.A)
	b.PutString(m.B)
	b.PutU32(uint32(len(m.C)))
	for _, v := range m.C {
		b.PutU32(v)
	}
	m.E.MarshalWire(b)
	PutPairs(b, m.P)
	if m.V != 0 {
		b.PutU32(m.V)
	}
}

func (m *Good) UnmarshalWire(r *wire.Reader) error {
	m.A = r.U64()
	m.B = r.String()
	n := int(r.U32())
	for i := 0; i < n; i++ {
		m.C = append(m.C, r.U32())
	}
	if err := m.E.UnmarshalWire(r); err != nil {
		return err
	}
	m.P = GetPairs(r)
	if r.Err() == nil && r.Remaining() > 0 {
		m.V = r.U32()
	}
	return r.Err()
}

// Swapped decodes its two fields in the wrong order.
type Swapped struct {
	A uint64
	B string
}

func (m *Swapped) MarshalWire(b *wire.Buffer) {
	b.PutU64(m.A)
	b.PutString(m.B)
}

func (m *Swapped) UnmarshalWire(r *wire.Reader) error {
	m.B = r.String() // want `field 0: encoder writes u64, decoder reads str`
	m.A = r.U64()
	return r.Err()
}

// Narrow writes 4 bytes and reads back 8.
type Narrow struct{ N uint32 }

func (m *Narrow) MarshalWire(b *wire.Buffer) { b.PutU32(m.N) }

func (m *Narrow) UnmarshalWire(r *wire.Reader) error {
	m.N = uint32(r.U64()) // want `width mismatch: encoder writes u32 \(4 bytes\), decoder reads u64 \(8 bytes\)`
	return r.Err()
}

// Short reads fewer fields than the encoder writes.
type Short struct{ A, B uint64 }

func (m *Short) MarshalWire(b *wire.Buffer) {
	b.PutU64(m.A)
	b.PutU64(m.B)
}

func (m *Short) UnmarshalWire(r *wire.Reader) error { // want `encoder writes 2 fields, decoder reads 1`
	m.A = r.U64()
	return r.Err()
}

// Flat encodes a repeated group but decodes it as flat fields.
type Flat struct{ C []uint32 }

func (m *Flat) MarshalWire(b *wire.Buffer) {
	b.PutU32(uint32(len(m.C)))
	for _, v := range m.C {
		b.PutU32(v)
	}
}

func (m *Flat) UnmarshalWire(r *wire.Reader) error {
	n := r.U32()
	_ = n
	m.C = append(m.C, r.U32()) // want `field 1: encoder writes loop\[u32\], decoder reads u32`
	return r.Err()
}

// LoopBody has matching loop structure but mismatched element layout.
type LoopBody struct{ P []Pair }

func (m *LoopBody) MarshalWire(b *wire.Buffer) {
	b.PutU32(uint32(len(m.P)))
	for _, p := range m.P {
		b.PutU32(p.K)
		b.PutU32(p.V)
	}
}

func (m *LoopBody) UnmarshalWire(r *wire.Reader) error {
	n := int(r.U32())
	for i := 0; i < n; i++ {
		k := r.U32()
		v := r.U64() // want `inside repeated group at field 1: field 1: width mismatch`
		m.P = append(m.P, Pair{K: k, V: uint32(v)})
	}
	return r.Err()
}

// Orphan has an encoder and no decoder.
type Orphan struct{ A uint64 }

func (m *Orphan) MarshalWire(b *wire.Buffer) { b.PutU64(m.A) } // want `has an encoder but no matching decoder`
