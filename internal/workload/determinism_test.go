package workload

import (
	"fmt"
	"testing"

	"redbud/internal/clock"
	"redbud/internal/fsapi"
)

// TestEngineDeterminism runs the op-mix engine twice with the same seed on a
// virtual clock and requires the two op streams to be identical, per thread.
// This is the property the simclock analyzer protects: any wall-clock read
// or global-rand draw on the op path would make the traces diverge.
func TestEngineDeterminism(t *testing.T) {
	run := func() ([][]string, Result) {
		traces := make([][]string, 3)
		spec := Spec{
			Name:             "det",
			Threads:          3,
			OpsPerThread:     200,
			PrefillPerThread: 10,
			FileSize:         SizeDist{Mean: 32 << 10},
			Dirs:             4,
			Seed:             42,
			Mix: []OpWeight{
				{OpCreateWrite, 30},
				{OpRead, 30},
				{OpAppend, 20},
				{OpDelete, 10},
				{OpStat, 10},
			},
			// Each trace slice is appended to by exactly one worker
			// goroutine, so no locking is needed.
			OnOp: func(tid int, kind OpKind, path string, n int64) {
				traces[tid] = append(traces[tid], fmt.Sprintf("%s %s %d", kind, path, n))
			},
		}
		fs := fsapi.NewMemFSWithClock(clock.NewManual())
		res, err := Run(fs, clock.NewManual(), spec)
		if err != nil {
			t.Fatal(err)
		}
		return traces, res
	}

	traces1, res1 := run()
	traces2, res2 := run()

	for tid := range traces1 {
		if len(traces1[tid]) != len(traces2[tid]) {
			t.Fatalf("thread %d: %d ops vs %d ops", tid, len(traces1[tid]), len(traces2[tid]))
		}
		for i := range traces1[tid] {
			if traces1[tid][i] != traces2[tid][i] {
				t.Fatalf("thread %d op %d diverged:\n  run1: %s\n  run2: %s",
					tid, i, traces1[tid][i], traces2[tid][i])
			}
		}
		if len(traces1[tid]) != 200 {
			t.Errorf("thread %d: got %d measured ops, want 200", tid, len(traces1[tid]))
		}
	}
	if res1 != res2 {
		t.Errorf("results diverged:\n  run1: %+v\n  run2: %+v", res1, res2)
	}
	if res1.Errors != 0 {
		t.Errorf("run reported %d op errors", res1.Errors)
	}
}
