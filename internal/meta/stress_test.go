package meta

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"redbud/internal/alloc"
	"redbud/internal/blockdev"
	"redbud/internal/clock"
)

// TestStoreConcurrentStress hammers the striped-lock store from many
// goroutines under -race: per-file create/alloc/write/commit/remove cycles,
// delegation carve-and-commit workers, and readers sweeping the namespace.
// Afterwards it asserts the ordered-write invariant (CheckConsistent against
// the data device's durability oracle), a clean fsck, and that replaying the
// group-committed journal reproduces a store that also fscks clean.
func TestStoreConcurrentStress(t *testing.T) {
	const (
		workers    = 8
		delegators = 2
		readers    = 2
		rounds     = 40
		fileSize   = int64(4096)
		totalSpace = int64(64 << 20)
	)

	metaDev := blockdev.New(blockdev.Config{Size: 64 << 20, Model: blockdev.ZeroLatency(), Clock: clock.Real(1)})
	defer metaDev.Close()
	dataDev := blockdev.New(blockdev.Config{Size: totalSpace, Model: blockdev.ZeroLatency(), Clock: clock.Real(1)})
	defer dataDev.Close()

	j := NewJournal(metaDev, 0, 32<<20)
	ags := alloc.NewUniformAGSet(alloc.RoundRobin, 0, totalSpace, 8)
	s := NewStore(Config{AGs: ags, Journal: j, Clock: clock.Real(1)})

	var wg, rwg sync.WaitGroup
	fail := make(chan error, workers+delegators+readers)
	stop := make(chan struct{})

	// File workers: each owns a distinct name per round, exercising the
	// full lifecycle so every lock path (ns exclusive, ns shared + stripe)
	// interleaves with the others.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			owner := fmt.Sprintf("client-%d", w)
			for i := 0; i < rounds; i++ {
				name := fmt.Sprintf("w%d-f%d", w, i)
				a, err := s.Create(RootID, name, TypeFile)
				if err != nil {
					fail <- fmt.Errorf("%s create: %w", owner, err)
					return
				}
				lay, err := s.AllocLayout(owner, a.ID, 0, fileSize)
				if err != nil {
					fail <- fmt.Errorf("%s alloc: %w", owner, err)
					return
				}
				// Ordered write: data reaches the disk before the
				// commit RPC would be sent.
				for _, e := range lay.Extents {
					if err := dataDev.Write(e.VolOff, make([]byte, e.Len)); err != nil {
						fail <- fmt.Errorf("%s data write: %w", owner, err)
						return
					}
				}
				if err := s.Commit(owner, a.ID, lay.Extents, fileSize, s.clk.Now()); err != nil {
					fail <- fmt.Errorf("%s commit: %w", owner, err)
					return
				}
				if got, err := s.Lookup(RootID, name); err != nil || got.Size != fileSize {
					fail <- fmt.Errorf("%s lookup after commit: %+v, %v", owner, got, err)
					return
				}
				// Remove every other file so the namespace stays busy
				// in both directions.
				if i%2 == 1 {
					if err := s.Remove(RootID, name); err != nil {
						fail <- fmt.Errorf("%s remove: %w", owner, err)
						return
					}
				}
			}
		}(w)
	}

	// Delegation workers: grant a chunk, carve small files out of it
	// client-side, commit them, return the delegation.
	for d := 0; d < delegators; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			owner := fmt.Sprintf("deleg-%d", d)
			for i := 0; i < rounds/4; i++ {
				sp, err := s.Delegate(owner, 1<<16)
				if err != nil {
					fail <- fmt.Errorf("%s delegate: %w", owner, err)
					return
				}
				carve := sp.Off
				for k := 0; k < 4; k++ {
					name := fmt.Sprintf("d%d-f%d-%d", d, i, k)
					a, err := s.Create(RootID, name, TypeFile)
					if err != nil {
						fail <- fmt.Errorf("%s create: %w", owner, err)
						return
					}
					ext := Extent{FileOff: 0, Len: fileSize, Dev: uint32(sp.Dev), VolOff: carve, State: StateCommitted}
					carve += fileSize
					if err := dataDev.Write(ext.VolOff, make([]byte, ext.Len)); err != nil {
						fail <- fmt.Errorf("%s data write: %w", owner, err)
						return
					}
					if err := s.Commit(owner, a.ID, []Extent{ext}, fileSize, s.clk.Now()); err != nil {
						fail <- fmt.Errorf("%s deleg commit: %w", owner, err)
						return
					}
				}
				if err := s.ReturnDelegation(owner, sp); err != nil {
					fail <- fmt.Errorf("%s return: %w", owner, err)
					return
				}
			}
		}(d)
	}

	// Readers: sweep the namespace while it churns. ErrNotFound is the
	// expected race with removals, anything else is a bug.
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ents, err := s.ReadDir(RootID)
				if err != nil {
					fail <- fmt.Errorf("reader readdir: %w", err)
					return
				}
				for _, e := range ents {
					if _, err := s.GetAttr(e.ID); err != nil && !errors.Is(err, ErrNotFound) {
						fail <- fmt.Errorf("reader getattr: %w", err)
						return
					}
					if _, err := s.GetLayout(e.ID, 0, fileSize, 0); err != nil && !errors.Is(err, ErrNotFound) {
						fail <- fmt.Errorf("reader getlayout: %w", err)
						return
					}
				}
				_ = s.FileCount()
			}
		}()
	}

	wg.Wait()
	close(stop)
	rwg.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}

	if bad := s.CheckConsistent(func(dev int, off, n int64) bool { return dataDev.IsDurable(off, n) }); len(bad) != 0 {
		t.Fatalf("ordered-write violation: %d committed extents not durable: %+v", len(bad), bad[0])
	}
	if rep := s.Fsck(totalSpace); !rep.OK() {
		t.Fatalf("fsck after stress: %v", rep)
	}
	appends, batches := j.GroupCommitStats()
	if appends == 0 {
		t.Fatal("no journal appends recorded")
	}
	t.Logf("journal: %d appends in %d batches (%.1fx amortization)", appends, batches, float64(appends)/float64(batches))

	// The journal the concurrent run produced must replay into an
	// equivalent store. Orphan GC during recovery only reclaims space
	// (there are no live clients after replay), so the recovered image
	// must fsck clean and keep every committed file.
	ags2 := alloc.NewUniformAGSet(alloc.RoundRobin, 0, totalSpace, 8)
	j2 := NewJournal(metaDev, 0, 32<<20)
	s2, st, err := Recover(Config{AGs: ags2, Journal: j2, Clock: clock.Real(1)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Torn {
		t.Fatal("clean shutdown replayed as torn")
	}
	if rep := s2.Fsck(totalSpace); !rep.OK() {
		t.Fatalf("fsck after recovery: %v", rep)
	}
	if got, want := s2.FileCount(), s.FileCount(); got != want {
		t.Fatalf("recovered %d files, want %d", got, want)
	}
	if bad := s2.CheckConsistent(func(dev int, off, n int64) bool { return dataDev.IsDurable(off, n) }); len(bad) != 0 {
		t.Fatalf("recovered store breaks ordered-write invariant: %d extents", len(bad))
	}
}
