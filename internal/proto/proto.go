// Package proto defines the metadata RPC protocol spoken between Redbud
// clients and the MDS: operation codes and the wire encoding of every
// request and reply. Both sides marshal with internal/wire; the RPC layer
// (internal/rpc) carries the frames and, for delayed commit, batches several
// OpCommit bodies into one compound frame.
package proto

import (
	"time"

	"redbud/internal/meta"
	"redbud/internal/wire"
)

// Operation codes.
const (
	OpPing uint16 = iota + 1
	OpLookup
	OpCreate
	OpGetAttr
	OpReadDir
	OpRemove
	OpLayoutGet
	OpCommit
	OpDelegate
	OpDelegReturn
	OpStat
	OpRename
	OpHello
	// v3 (sharded namespace) operations. The first four drive the two-phase
	// cross-shard protocols against an inode's home shard; the last two
	// manipulate the remote-edge dirent on the parent's shard.
	OpCreateDetached
	OpNSPrepare
	OpNSCommit
	OpNSAbort
	OpLinkRemote
	OpUnlinkRemote
)

// Protocol versions, negotiated via OpHello. A session that never says
// hello — or says a v1 hello, which simply omits the version field — is v1
// and transparently gets committed-only layout behaviour.
const (
	// ProtoV1 is the original protocol: a bare `Write bool` on layout
	// gets, committed-only reads, version-less hello.
	ProtoV1 uint32 = 1
	// ProtoV2 adds layout flags (early visibility of uncommitted extents)
	// and hello version negotiation.
	ProtoV2 uint32 = 2
	// ProtoV3 adds namespace sharding: the hello reply reports the server's
	// shard coordinates, and the cross-shard ops (OpCreateDetached through
	// OpUnlinkRemote) become available.
	ProtoV3 uint32 = 3
	// ProtoV4 adds distributed trace propagation: commit and namespace-op
	// requests may carry a trailing-optional TraceCtx linking the server-side
	// spans to their client parent. Sessions below v4 never see the field.
	ProtoV4 uint32 = 4
	// ProtoLatest is the highest version this build speaks.
	ProtoLatest = ProtoV4
)

// TraceCtx is the propagated trace context: the trace identity plus the
// SpanID of the client span the server-side handler span should hang under.
// It rides as a trailing-optional group on request frames — the encoders
// only append it when TraceID is non-zero (tracing on and the session
// negotiated v4), and the decoders treat absence as "untraced" — so v3 and
// older peers exchange byte-identical frames.
type TraceCtx struct {
	TraceID uint64
	SpanID  uint64
}

func (m *TraceCtx) MarshalWire(b *wire.Buffer) {
	b.PutU64(m.TraceID)
	b.PutU64(m.SpanID)
}

func (m *TraceCtx) UnmarshalWire(r *wire.Reader) error {
	m.TraceID = r.U64()
	m.SpanID = r.U64()
	return r.Err()
}

// PingReq is an empty liveness probe.
type PingReq struct{}

// MarshalWire implements wire.Marshaler.
func (*PingReq) MarshalWire(*wire.Buffer) {}

// UnmarshalWire implements wire.Unmarshaler.
func (*PingReq) UnmarshalWire(*wire.Reader) error { return nil }

// LookupReq resolves Name under Parent.
type LookupReq struct {
	Parent meta.FileID
	Name   string
}

func (m *LookupReq) MarshalWire(b *wire.Buffer) {
	b.PutU64(uint64(m.Parent))
	b.PutString(m.Name)
}

func (m *LookupReq) UnmarshalWire(r *wire.Reader) error {
	m.Parent = meta.FileID(r.U64())
	m.Name = r.String()
	return r.Err()
}

// AttrResp carries inode attributes.
type AttrResp struct {
	ID    meta.FileID
	Type  meta.FileType
	Size  int64
	MTime time.Time
}

func (m *AttrResp) MarshalWire(b *wire.Buffer) {
	b.PutU64(uint64(m.ID))
	b.PutU8(uint8(m.Type))
	b.PutI64(m.Size)
	b.PutTime(m.MTime)
}

func (m *AttrResp) UnmarshalWire(r *wire.Reader) error {
	m.ID = meta.FileID(r.U64())
	m.Type = meta.FileType(r.U8())
	m.Size = r.I64()
	m.MTime = r.Time()
	return r.Err()
}

// FromAttr converts a meta.Attr.
func FromAttr(a meta.Attr) AttrResp {
	return AttrResp{ID: a.ID, Type: a.Type, Size: a.Size, MTime: a.MTime}
}

// Attr converts back to a meta.Attr.
func (m *AttrResp) Attr() meta.Attr {
	return meta.Attr{ID: m.ID, Type: m.Type, Size: m.Size, MTime: m.MTime}
}

// CreateReq creates a file or directory.
type CreateReq struct {
	Parent meta.FileID
	Name   string
	Type   meta.FileType
}

func (m *CreateReq) MarshalWire(b *wire.Buffer) {
	b.PutU64(uint64(m.Parent))
	b.PutString(m.Name)
	b.PutU8(uint8(m.Type))
}

func (m *CreateReq) UnmarshalWire(r *wire.Reader) error {
	m.Parent = meta.FileID(r.U64())
	m.Name = r.String()
	m.Type = meta.FileType(r.U8())
	return r.Err()
}

// GetAttrReq fetches attributes by inode.
type GetAttrReq struct{ ID meta.FileID }

func (m *GetAttrReq) MarshalWire(b *wire.Buffer) { b.PutU64(uint64(m.ID)) }

func (m *GetAttrReq) UnmarshalWire(r *wire.Reader) error {
	m.ID = meta.FileID(r.U64())
	return r.Err()
}

// ReadDirReq lists a directory.
type ReadDirReq struct{ ID meta.FileID }

func (m *ReadDirReq) MarshalWire(b *wire.Buffer) { b.PutU64(uint64(m.ID)) }

func (m *ReadDirReq) UnmarshalWire(r *wire.Reader) error {
	m.ID = meta.FileID(r.U64())
	return r.Err()
}

// ReadDirResp carries directory entries.
type ReadDirResp struct{ Entries []meta.DirEnt }

func (m *ReadDirResp) MarshalWire(b *wire.Buffer) {
	b.PutU32(uint32(len(m.Entries)))
	for _, e := range m.Entries {
		b.PutString(e.Name)
		b.PutU64(uint64(e.ID))
		b.PutU8(uint8(e.Type))
		b.PutI64(e.Size)
	}
}

func (m *ReadDirResp) UnmarshalWire(r *wire.Reader) error {
	n := int(r.U32())
	if r.Err() != nil || n > 1<<24 {
		return r.Err()
	}
	m.Entries = make([]meta.DirEnt, 0, n)
	for i := 0; i < n; i++ {
		m.Entries = append(m.Entries, meta.DirEnt{
			Name: r.String(),
			ID:   meta.FileID(r.U64()),
			Type: meta.FileType(r.U8()),
			Size: r.I64(),
		})
	}
	return r.Err()
}

// RemoveReq unlinks Name under Parent.
type RemoveReq struct {
	Parent meta.FileID
	Name   string
}

func (m *RemoveReq) MarshalWire(b *wire.Buffer) {
	b.PutU64(uint64(m.Parent))
	b.PutString(m.Name)
}

func (m *RemoveReq) UnmarshalWire(r *wire.Reader) error {
	m.Parent = meta.FileID(r.U64())
	m.Name = r.String()
	return r.Err()
}

// RenameReq moves a directory entry.
type RenameReq struct {
	SrcParent meta.FileID
	SrcName   string
	DstParent meta.FileID
	DstName   string
}

func (m *RenameReq) MarshalWire(b *wire.Buffer) {
	b.PutU64(uint64(m.SrcParent))
	b.PutString(m.SrcName)
	b.PutU64(uint64(m.DstParent))
	b.PutString(m.DstName)
}

func (m *RenameReq) UnmarshalWire(r *wire.Reader) error {
	m.SrcParent = meta.FileID(r.U64())
	m.SrcName = r.String()
	m.DstParent = meta.FileID(r.U64())
	m.DstName = r.String()
	return r.Err()
}

// LayoutGetReq fetches (and for writes, allocates) the extent layout of a
// file range.
type LayoutGetReq struct {
	Owner string
	File  meta.FileID
	Off   int64
	Len   int64
	// Flags replaces the v1 `Write bool`. meta.LayoutWrite (bit 0)
	// occupies the byte the bool used, so v1 frames decode unchanged; the
	// remaining bits (meta.LayoutWantUncommitted) are only honoured for
	// sessions that negotiated ProtoV2 via OpHello.
	Flags meta.LayoutFlags
}

func (m *LayoutGetReq) MarshalWire(b *wire.Buffer) {
	b.PutString(m.Owner)
	b.PutU64(uint64(m.File))
	b.PutI64(m.Off)
	b.PutI64(m.Len)
	b.PutU8(uint8(m.Flags))
}

func (m *LayoutGetReq) UnmarshalWire(r *wire.Reader) error {
	m.Owner = r.String()
	m.File = meta.FileID(r.U64())
	m.Off = r.I64()
	m.Len = r.I64()
	m.Flags = meta.LayoutFlags(r.U8())
	return r.Err()
}

// LayoutResp carries the extents covering the requested range.
type LayoutResp struct {
	File    meta.FileID
	Size    int64
	Extents []meta.Extent
}

func (m *LayoutResp) MarshalWire(b *wire.Buffer) {
	b.PutU64(uint64(m.File))
	b.PutI64(m.Size)
	meta.PutExtents(b, m.Extents)
}

func (m *LayoutResp) UnmarshalWire(r *wire.Reader) error {
	m.File = meta.FileID(r.U64())
	m.Size = r.I64()
	m.Extents = meta.GetExtents(r)
	return r.Err()
}

// CommitReq commits extents of one file: the metadata half of an ordered
// write. Several CommitReqs are what delayed commit packs into one compound
// RPC.
type CommitReq struct {
	Owner string
	File  meta.FileID
	Size  int64
	MTime time.Time
	// CommitID, when non-zero, identifies this commit uniquely within the
	// owner's session. The MDS remembers recently applied IDs and answers a
	// retransmission from that memory instead of re-applying, making commit
	// retry after a lost reply idempotent.
	CommitID uint64
	Extents  []meta.Extent
	// Trace (v4) links the MDS-side commit spans to the client span that
	// issued this request; the zero value means untraced.
	Trace TraceCtx
}

func (m *CommitReq) MarshalWire(b *wire.Buffer) {
	b.PutString(m.Owner)
	b.PutU64(uint64(m.File))
	b.PutI64(m.Size)
	b.PutTime(m.MTime)
	b.PutU64(m.CommitID)
	meta.PutExtents(b, m.Extents)
	if m.Trace.TraceID != 0 {
		m.Trace.MarshalWire(b)
	}
}

func (m *CommitReq) UnmarshalWire(r *wire.Reader) error {
	m.Owner = r.String()
	m.File = meta.FileID(r.U64())
	m.Size = r.I64()
	m.MTime = r.Time()
	m.CommitID = r.U64()
	m.Extents = meta.GetExtents(r)
	m.Trace = TraceCtx{}
	if r.Err() == nil && r.Remaining() > 0 {
		m.Trace.UnmarshalWire(r)
	}
	return r.Err()
}

// CommitResp acknowledges a commit.
type CommitResp struct{ Size int64 }

func (m *CommitResp) MarshalWire(b *wire.Buffer) { b.PutI64(m.Size) }

func (m *CommitResp) UnmarshalWire(r *wire.Reader) error {
	m.Size = r.I64()
	return r.Err()
}

// DelegateReq asks for a contiguous chunk of physical space.
type DelegateReq struct {
	Owner string
	Size  int64
}

func (m *DelegateReq) MarshalWire(b *wire.Buffer) {
	b.PutString(m.Owner)
	b.PutI64(m.Size)
}

func (m *DelegateReq) UnmarshalWire(r *wire.Reader) error {
	m.Owner = r.String()
	m.Size = r.I64()
	return r.Err()
}

// SpanMsg is a physical span on the wire.
type SpanMsg struct {
	Dev uint32
	Off int64
	Len int64
}

func (m *SpanMsg) MarshalWire(b *wire.Buffer) {
	b.PutU32(m.Dev)
	b.PutI64(m.Off)
	b.PutI64(m.Len)
}

func (m *SpanMsg) UnmarshalWire(r *wire.Reader) error {
	m.Dev = r.U32()
	m.Off = r.I64()
	m.Len = r.I64()
	return r.Err()
}

// DelegReturnReq gives a delegation back.
type DelegReturnReq struct {
	Owner string
	Span  SpanMsg
}

func (m *DelegReturnReq) MarshalWire(b *wire.Buffer) {
	b.PutString(m.Owner)
	m.Span.MarshalWire(b)
}

func (m *DelegReturnReq) UnmarshalWire(r *wire.Reader) error {
	m.Owner = r.String()
	return m.Span.UnmarshalWire(r)
}

// HelloReq (re)introduces a client session to the MDS. Clients send it on
// connect and after every reconnect; comparing the returned incarnation with
// the last one seen tells the client whether the MDS restarted (and thus
// recovered, revoking its delegations and uncommitted allocations).
//
// ProtoVersion is the highest protocol version the client speaks, carried as
// a trailing-optional field: a v1 client simply does not send it, and the
// decoder treats its absence as ProtoV1. The marshaller mirrors that — it
// only appends the field for v2 and later — so a v2 client that downgrades
// produces frames a v1 server decodes cleanly (the wire layer rejects
// trailing bytes it does not expect).
type HelloReq struct {
	Owner        string
	ProtoVersion uint32
}

func (m *HelloReq) MarshalWire(b *wire.Buffer) {
	b.PutString(m.Owner)
	if m.ProtoVersion >= ProtoV2 {
		b.PutU32(m.ProtoVersion)
	}
}

func (m *HelloReq) UnmarshalWire(r *wire.Reader) error {
	m.Owner = r.String()
	if r.Err() == nil && r.Remaining() > 0 {
		m.ProtoVersion = r.U32()
	} else {
		m.ProtoVersion = ProtoV1
	}
	return r.Err()
}

// HelloResp carries the MDS incarnation number, bumped on every restart, and
// the negotiated protocol version: min(client's offer, ProtoLatest). The
// version is trailing-optional with the same rule as HelloReq, so a v1
// client — which never offered a version and expects the v1 frame — gets
// exactly the v1 frame back.
//
// ShardIndex/ShardCount (v3) report which shard of a sharded namespace this
// server carries; a client dials every shard and routes each inode by
// meta.ShardOf. They extend the *same* trailing-optional group as
// ProtoVersion — nested, not a second group, so the frame stays a strict
// prefix chain — and a v2 peer that omits them decodes as the single-shard
// topology {0, 1}.
type HelloResp struct {
	Incarnation  uint64
	ProtoVersion uint32
	ShardIndex   uint32
	ShardCount   uint32
}

func (m *HelloResp) MarshalWire(b *wire.Buffer) {
	b.PutU64(m.Incarnation)
	if m.ProtoVersion >= ProtoV2 {
		b.PutU32(m.ProtoVersion)
		if m.ProtoVersion >= ProtoV3 {
			b.PutU32(m.ShardIndex)
			b.PutU32(m.ShardCount)
		}
	}
}

func (m *HelloResp) UnmarshalWire(r *wire.Reader) error {
	m.Incarnation = r.U64()
	m.ProtoVersion = ProtoV1
	m.ShardIndex = 0
	m.ShardCount = 1
	if r.Err() == nil && r.Remaining() > 0 {
		m.ProtoVersion = r.U32()
		if m.ProtoVersion >= ProtoV3 && r.Err() == nil && r.Remaining() > 0 {
			m.ShardIndex = r.U32()
			m.ShardCount = r.U32()
		}
	}
	return r.Err()
}

// StatResp reports MDS status for the adaptive compound controller.
type StatResp struct {
	QueueLen  int64
	Load      uint8
	Processed int64
	SubOps    int64
	Files     int64
}

func (m *StatResp) MarshalWire(b *wire.Buffer) {
	b.PutI64(m.QueueLen)
	b.PutU8(m.Load)
	b.PutI64(m.Processed)
	b.PutI64(m.SubOps)
	b.PutI64(m.Files)
}

func (m *StatResp) UnmarshalWire(r *wire.Reader) error {
	m.QueueLen = r.I64()
	m.Load = r.U8()
	m.Processed = r.I64()
	m.SubOps = r.I64()
	m.Files = r.I64()
	return r.Err()
}

// CreateDetachedReq (v3) mints an inode on its home shard without a local
// dirent — step one of a cross-shard create. The home shard publishes an
// NSCreate intent; the inode graduates when the client links it on the
// parent's shard and sends OpNSCommit here. Replies with AttrResp.
type CreateDetachedReq struct {
	Parent meta.FileID
	Name   string
	Type   meta.FileType
	Trace  TraceCtx // v4 trailing-optional trace context
}

func (m *CreateDetachedReq) MarshalWire(b *wire.Buffer) {
	b.PutU64(uint64(m.Parent))
	b.PutString(m.Name)
	b.PutU8(uint8(m.Type))
	if m.Trace.TraceID != 0 {
		m.Trace.MarshalWire(b)
	}
}

func (m *CreateDetachedReq) UnmarshalWire(r *wire.Reader) error {
	m.Parent = meta.FileID(r.U64())
	m.Name = r.String()
	m.Type = meta.FileType(r.U8())
	m.Trace = TraceCtx{}
	if r.Err() == nil && r.Remaining() > 0 {
		m.Trace.UnmarshalWire(r)
	}
	return r.Err()
}

// NSPrepareReq (v3) publishes a namespace intent on an inode's home shard:
// the prepare phase of cross-shard remove and rename. Kind selects the
// protocol; DstParent/DstName only carry meaning for rename-dst intents.
// Re-sending an identical prepare is idempotent.
type NSPrepareReq struct {
	File      meta.FileID
	Kind      meta.NSIntentKind
	Type      meta.FileType
	Parent    meta.FileID
	Name      string
	DstParent meta.FileID
	DstName   string
	Trace     TraceCtx // v4 trailing-optional trace context
}

func (m *NSPrepareReq) MarshalWire(b *wire.Buffer) {
	b.PutU64(uint64(m.File))
	b.PutU8(uint8(m.Kind))
	b.PutU8(uint8(m.Type))
	b.PutU64(uint64(m.Parent))
	b.PutString(m.Name)
	b.PutU64(uint64(m.DstParent))
	b.PutString(m.DstName)
	if m.Trace.TraceID != 0 {
		m.Trace.MarshalWire(b)
	}
}

func (m *NSPrepareReq) UnmarshalWire(r *wire.Reader) error {
	m.File = meta.FileID(r.U64())
	m.Kind = meta.NSIntentKind(r.U8())
	m.Type = meta.FileType(r.U8())
	m.Parent = meta.FileID(r.U64())
	m.Name = r.String()
	m.DstParent = meta.FileID(r.U64())
	m.DstName = r.String()
	m.Trace = TraceCtx{}
	if r.Err() == nil && r.Remaining() > 0 {
		m.Trace.UnmarshalWire(r)
	}
	return r.Err()
}

// NSCommitReq (v3) graduates the live intent of the given kind on File's
// home shard. A commit for an intent that no longer exists is a no-op, so
// the client may retry freely after a lost reply.
type NSCommitReq struct {
	File  meta.FileID
	Kind  meta.NSIntentKind
	Trace TraceCtx // v4 trailing-optional trace context
}

func (m *NSCommitReq) MarshalWire(b *wire.Buffer) {
	b.PutU64(uint64(m.File))
	b.PutU8(uint8(m.Kind))
	if m.Trace.TraceID != 0 {
		m.Trace.MarshalWire(b)
	}
}

func (m *NSCommitReq) UnmarshalWire(r *wire.Reader) error {
	m.File = meta.FileID(r.U64())
	m.Kind = meta.NSIntentKind(r.U8())
	m.Trace = TraceCtx{}
	if r.Err() == nil && r.Remaining() > 0 {
		m.Trace.UnmarshalWire(r)
	}
	return r.Err()
}

// NSAbortReq (v3) rolls back the live intent of the given kind on File's
// home shard. Like NSCommitReq, absent intents make it a no-op.
type NSAbortReq struct {
	File  meta.FileID
	Kind  meta.NSIntentKind
	Trace TraceCtx // v4 trailing-optional trace context
}

func (m *NSAbortReq) MarshalWire(b *wire.Buffer) {
	b.PutU64(uint64(m.File))
	b.PutU8(uint8(m.Kind))
	if m.Trace.TraceID != 0 {
		m.Trace.MarshalWire(b)
	}
}

func (m *NSAbortReq) UnmarshalWire(r *wire.Reader) error {
	m.File = meta.FileID(r.U64())
	m.Kind = meta.NSIntentKind(r.U8())
	m.Trace = TraceCtx{}
	if r.Err() == nil && r.Remaining() > 0 {
		m.Trace.UnmarshalWire(r)
	}
	return r.Err()
}

// LinkRemoteReq (v3) inserts the dirent for a remote-homed child on the
// parent's shard — the commit point of a cross-shard create or rename.
// Linking the same (name, child) again is idempotent.
type LinkRemoteReq struct {
	Parent meta.FileID
	Name   string
	Child  meta.FileID
	Type   meta.FileType
	Trace  TraceCtx // v4 trailing-optional trace context
}

func (m *LinkRemoteReq) MarshalWire(b *wire.Buffer) {
	b.PutU64(uint64(m.Parent))
	b.PutString(m.Name)
	b.PutU64(uint64(m.Child))
	b.PutU8(uint8(m.Type))
	if m.Trace.TraceID != 0 {
		m.Trace.MarshalWire(b)
	}
}

func (m *LinkRemoteReq) UnmarshalWire(r *wire.Reader) error {
	m.Parent = meta.FileID(r.U64())
	m.Name = r.String()
	m.Child = meta.FileID(r.U64())
	m.Type = meta.FileType(r.U8())
	m.Trace = TraceCtx{}
	if r.Err() == nil && r.Remaining() > 0 {
		m.Trace.UnmarshalWire(r)
	}
	return r.Err()
}

// UnlinkRemoteReq (v3) deletes the dirent for a remote-homed child on the
// parent's shard — the commit point of a cross-shard remove. Unlinking an
// entry that is already gone (or re-pointed at a different inode) is
// idempotent.
type UnlinkRemoteReq struct {
	Parent meta.FileID
	Name   string
	Child  meta.FileID
	Trace  TraceCtx // v4 trailing-optional trace context
}

func (m *UnlinkRemoteReq) MarshalWire(b *wire.Buffer) {
	b.PutU64(uint64(m.Parent))
	b.PutString(m.Name)
	b.PutU64(uint64(m.Child))
	if m.Trace.TraceID != 0 {
		m.Trace.MarshalWire(b)
	}
}

func (m *UnlinkRemoteReq) UnmarshalWire(r *wire.Reader) error {
	m.Parent = meta.FileID(r.U64())
	m.Name = r.String()
	m.Child = meta.FileID(r.U64())
	m.Trace = TraceCtx{}
	if r.Err() == nil && r.Remaining() > 0 {
		m.Trace.UnmarshalWire(r)
	}
	return r.Err()
}
