// Package wire mirrors the codec surface of redbud's internal/wire for
// analyzer fixtures: the Buffer/Reader method sets the wire-schema extractor
// keys on, with no-op bodies. Only names and signatures matter.
package wire

// Buffer is the fixture stand-in for the append-only encode buffer.
type Buffer struct{ buf []byte }

func (b *Buffer) PutU8(v uint8)      {}
func (b *Buffer) PutBool(v bool)     {}
func (b *Buffer) PutU16(v uint16)    {}
func (b *Buffer) PutU32(v uint32)    {}
func (b *Buffer) PutU64(v uint64)    {}
func (b *Buffer) PutI64(v int64)     {}
func (b *Buffer) PutF64(v float64)   {}
func (b *Buffer) PutBytes(p []byte)  {}
func (b *Buffer) PutString(s string) {}

// Reader is the fixture stand-in for the bounds-checked decode cursor.
type Reader struct{ off int }

func (r *Reader) U8() uint8        { return 0 }
func (r *Reader) Bool() bool       { return false }
func (r *Reader) U16() uint16      { return 0 }
func (r *Reader) U32() uint32      { return 0 }
func (r *Reader) U64() uint64      { return 0 }
func (r *Reader) I64() int64       { return 0 }
func (r *Reader) F64() float64     { return 0 }
func (r *Reader) Bytes() []byte    { return nil }
func (r *Reader) BytesRef() []byte { return nil }
func (r *Reader) String() string   { return "" }
func (r *Reader) Remaining() int   { return 0 }
func (r *Reader) Err() error       { return nil }
