package agg

import (
	"sort"
	"sync"
	"time"

	"redbud/internal/obs"
	"redbud/internal/stats"
)

// Field selects which reading of a metric a rule evaluates.
type Field int

// Rule fields.
const (
	// FieldValue reads a counter or gauge directly (summed across every
	// series carrying the metric name).
	FieldValue Field = iota
	// FieldRate is a burn rate: the counter's increase per second over the
	// rule's Window, summed across series. Zero until the window holds two
	// samples — a cold engine never fires on its first evaluation.
	FieldRate
	// FieldP99 reads a histogram's 99th percentile (the worst across series).
	FieldP99
	// FieldMean reads a histogram's mean (the worst across series).
	FieldMean
)

func (f Field) String() string {
	switch f {
	case FieldRate:
		return "rate"
	case FieldP99:
		return "p99"
	case FieldMean:
		return "mean"
	}
	return "value"
}

// Op compares a reading against a rule threshold.
type Op int

// Comparison operators.
const (
	GT Op = iota // reading > threshold breaches
	LT           // reading < threshold breaches
)

func (o Op) String() string {
	if o == LT {
		return "<"
	}
	return ">"
}

// Rule is one declarative SLO: a metric in the merged cluster snapshot, the
// reading to take, and the breach condition.
type Rule struct {
	// Name identifies the alert ("commit-p99-high").
	Name string
	// Metric is the metric name in the merged snapshot.
	Metric string
	// Field selects the reading (value, rate over Window, p99, mean).
	Field Field
	// Op and Threshold define the breach: reading Op Threshold.
	Op        Op
	Threshold float64
	// Window is the burn-rate horizon for FieldRate (sim-clock time).
	Window time.Duration
	// For requires the breach to persist this long before the alert fires;
	// zero fires on the first breaching evaluation.
	For time.Duration
}

// AlertState is one alert's position in the Inactive → Pending → Firing
// machine.
type AlertState int

// Alert states. The numeric values are exported as the
// redbud_slo_alert_state gauge.
const (
	StateInactive AlertState = iota
	StatePending
	StateFiring
)

func (s AlertState) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateFiring:
		return "firing"
	}
	return "inactive"
}

// Alert is one rule's live evaluation state.
type Alert struct {
	Rule  Rule       `json:"rule"`
	State AlertState `json:"state"`
	// Since is when the current breach began (zero while inactive).
	Since time.Time `json:"since,omitempty"`
	// Value is the reading of the last evaluation.
	Value float64 `json:"value"`
}

// Event records one alert state transition.
type Event struct {
	At    time.Time `json:"at"`
	Rule  string    `json:"rule"`
	From  string    `json:"from"`
	To    string    `json:"to"`
	Value float64   `json:"value"`
}

// maxEvents bounds the engine's transition log (oldest dropped first).
const maxEvents = 256

// rateSample is one (time, cumulative value) point of a burn-rate window.
type rateSample struct {
	t time.Time
	v float64
}

// Engine evaluates SLO rules against merged cluster snapshots. It is
// clock-free: every Evaluate call carries its own timestamp, so the engine
// runs identically under the simulator's virtual clock and a daemon's wall
// clock.
type Engine struct {
	mu      sync.Mutex
	rules   []Rule
	alerts  []Alert
	windows [][]rateSample // per-rule burn-rate history
	events  []Event

	transitions stats.Counter
}

// NewEngine builds an engine over the given rules.
func NewEngine(rules []Rule) *Engine {
	e := &Engine{
		rules:   append([]Rule(nil), rules...),
		windows: make([][]rateSample, len(rules)),
	}
	e.alerts = make([]Alert, len(e.rules))
	for i, r := range e.rules {
		e.alerts[i] = Alert{Rule: r}
	}
	return e
}

// Evaluate runs every rule against the merged snapshot at the given
// (sim-clock) instant and returns the resulting alert states.
func (e *Engine) Evaluate(now time.Time, merged obs.Snapshot) []Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.rules {
		rule := e.rules[i]
		value := e.ruleValue(i, rule, now, merged)
		breach := false
		if rule.Op == LT {
			breach = value < rule.Threshold
		} else {
			breach = value > rule.Threshold
		}
		a := &e.alerts[i]
		a.Value = value
		next := a.State
		switch {
		case !breach:
			next = StateInactive
		case a.State == StateInactive:
			next = StatePending
			a.Since = now
			if rule.For <= 0 {
				next = StateFiring
			}
		case a.State == StatePending && now.Sub(a.Since) >= rule.For:
			next = StateFiring
		}
		if next != a.State {
			e.transitions.Inc()
			e.events = append(e.events, Event{At: now, Rule: rule.Name, From: a.State.String(), To: next.String(), Value: value})
			if len(e.events) > maxEvents {
				e.events = e.events[len(e.events)-maxEvents:]
			}
			a.State = next
			if next == StateInactive {
				a.Since = time.Time{}
			}
		}
	}
	return e.alertsLocked()
}

// ruleValue computes one rule's reading. Counters and gauges sum across
// every series carrying the metric name; histogram readings take the worst
// series — a cluster meets a latency SLO only if every series does.
func (e *Engine) ruleValue(idx int, rule Rule, now time.Time, merged obs.Snapshot) float64 {
	var sum, worst float64
	found := false
	for _, m := range merged.Metrics {
		if m.Name != rule.Metric {
			continue
		}
		found = true
		switch rule.Field {
		case FieldP99:
			if m.Hist != nil && m.Hist.P99 > worst {
				worst = m.Hist.P99
			}
		case FieldMean:
			if m.Hist != nil && m.Hist.Mean > worst {
				worst = m.Hist.Mean
			}
		default:
			sum += float64(m.Value)
		}
	}
	switch rule.Field {
	case FieldP99, FieldMean:
		return worst
	case FieldRate:
		if !found {
			return 0
		}
		return e.burnRate(idx, rule, now, sum)
	}
	return sum
}

// burnRate folds one cumulative sample into the rule's window and returns
// the increase per second across it. The window keeps one sample older than
// Window so the rate always straddles the full horizon once history exists.
func (e *Engine) burnRate(idx int, rule Rule, now time.Time, v float64) float64 {
	w := append(e.windows[idx], rateSample{now, v})
	cutoff := now.Add(-rule.Window)
	keep := 0
	for keep < len(w)-1 && !w[keep+1].t.After(cutoff) {
		keep++
	}
	w = w[keep:]
	e.windows[idx] = w
	if len(w) < 2 {
		return 0
	}
	dt := w[len(w)-1].t.Sub(w[0].t).Seconds()
	if dt <= 0 {
		return 0
	}
	return (w[len(w)-1].v - w[0].v) / dt
}

// Alerts returns the current state of every rule.
func (e *Engine) Alerts() []Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.alertsLocked()
}

func (e *Engine) alertsLocked() []Alert {
	return append([]Alert(nil), e.alerts...)
}

// Firing returns the subset of alerts currently firing, sorted by rule name.
func (e *Engine) Firing() []Alert {
	var out []Alert
	for _, a := range e.Alerts() {
		if a.State == StateFiring {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rule.Name < out[j].Rule.Name })
	return out
}

// Events returns the transition log, oldest first.
func (e *Engine) Events() []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Event(nil), e.events...)
}

// RegisterMetrics exports the alert states (0 inactive, 1 pending, 2 firing)
// and the transition counter, so the alert plane is itself observable.
func (e *Engine) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	for i := range e.rules {
		idx := i
		r.GaugeFunc("redbud_slo_alert_state", "alert state (0 inactive, 1 pending, 2 firing)",
			obs.Labels{"rule": e.rules[i].Name}, func() int64 {
				e.mu.Lock()
				defer e.mu.Unlock()
				return int64(e.alerts[idx].State)
			})
	}
	r.CounterFunc("redbud_slo_transitions_total", "alert state transitions", nil, e.transitions.Load)
}

// DefaultRules is the stock cluster SLO set: thresholds sit far above
// anything a fault-free run produces, so a healthy cluster is silent and a
// regression (injected latency, saga churn, retry storms) trips exactly the
// rule naming its cause.
func DefaultRules() []Rule {
	return []Rule{
		// Server-side commit p99: fault-free sims sit in the microseconds;
		// tens of milliseconds means the commit path regressed.
		{Name: "commit-p99-high", Metric: "redbud_mds_commit_latency_seconds",
			Field: FieldP99, Op: GT, Threshold: 0.050},
		// Saga aborts burn: cross-shard rollbacks are rare one-offs under
		// contention; a sustained abort rate means the namespace is thrashing.
		{Name: "saga-abort-burn", Metric: "redbud_meta_ns_aborts_total",
			Field: FieldRate, Op: GT, Threshold: 1, Window: time.Second},
		// Intent backlog: live cross-shard intents should resolve promptly;
		// a standing backlog means sagas are stalling mid-flight.
		{Name: "ns-intent-backlog", Metric: "redbud_meta_ns_intents",
			Field: FieldValue, Op: GT, Threshold: 64},
		// Dedup hits burn: every hit is a retransmitted commit, so a
		// sustained rate reveals reply loss or timeout pressure.
		{Name: "dedup-storm", Metric: "redbud_mds_dedup_hits_total",
			Field: FieldRate, Op: GT, Threshold: 10, Window: time.Second},
		// Client retry burn: the transport is dropping frames or timing out.
		{Name: "retry-storm", Metric: "redbud_client_retries_total",
			Field: FieldRate, Op: GT, Threshold: 10, Window: time.Second},
	}
}
