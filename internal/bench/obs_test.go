package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"redbud/internal/obs"
	"redbud/internal/workload"
)

// TestClusterSpanTrace runs a small traced cluster end to end and checks the
// tentpole acceptance criteria: the trace exports as loadable Chrome-trace
// JSON, and the per-stage critical path sums to the end-to-end latency.
func TestClusterSpanTrace(t *testing.T) {
	opt := TestOptions()
	opt.SpanTrace = true
	c := Build(SysRedbudDC, opt)
	defer c.Close()

	spec := workload.Varmail(opt.Seed).Scale(opt.SizeFactor)
	if _, err := RunDistributed(c, spec); err != nil {
		t.Fatal(err)
	}

	spans := c.Tracer.Spans()
	if len(spans) == 0 {
		t.Fatal("traced run recorded no spans")
	}
	seen := map[string]bool{}
	for _, s := range spans {
		seen[s.Name] = true
	}
	for _, want := range []string{
		obs.SpanCommitRPC, obs.SpanMDSCommit, obs.SpanMDSJournal,
		obs.SpanDevQueue, obs.SpanRPCProcess, obs.SpanNetXmit, obs.SpanAppWrite,
	} {
		if !seen[want] {
			t.Errorf("no %q span recorded (have %v)", want, keys(seen))
		}
	}

	b := obs.Analyze(spans)
	if b.Commits == 0 {
		t.Fatal("no commit critical paths reconstructed")
	}
	for _, p := range b.PerCommit {
		if sum := p.Queue + p.DataWait + p.Batch + p.RPC; sum != p.E2E {
			t.Fatalf("commit %d: stage sum %v != e2e %v", p.ID, sum, p.E2E)
		}
		if p.Wire < 0 {
			t.Fatalf("commit %d: negative wire time %v", p.ID, p.Wire)
		}
	}

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(spans) {
		t.Fatalf("export has %d events for %d spans", len(doc.TraceEvents), len(spans))
	}
}

// TestClusterRegistry checks the unified registry: every layer's counters
// appear in one Prometheus export, including the adopted legacy counters.
func TestClusterRegistry(t *testing.T) {
	opt := TestOptions()
	c := Build(SysRedbudDC, opt)
	defer c.Close()
	spec := workload.Varmail(opt.Seed).Scale(opt.SizeFactor)
	if _, err := RunDistributed(c, spec); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := c.Registry.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"redbud_client_writes_total",                  // client layer
		"redbud_client_commit_latency_seconds_bucket", // histogram export
		"redbud_mds_dedup_hits_total",                 // adopted mds counter
		"redbud_rpc_processed_total",                  // rpc server layer
		"redbud_client_bad_frames_total",              // adopted rpc counter
		"redbud_net_messages_total",                   // netsim layer
		"redbud_net_fault_dropped_total",              // adopted fault counters
		"redbud_dev_written_bytes_total",              // blockdev layer
		"redbud_dev_injected_faults_total",
		"redbud_meta_journal_appends_total", // meta store layer
	} {
		if !strings.Contains(out, want) {
			t.Errorf("registry export missing %s", want)
		}
	}
	// Sanity: the workload actually moved the counters.
	snap := c.Registry.Snapshot()
	var writes int64
	for _, m := range snap.Metrics {
		if m.Name == "redbud_client_writes_total" {
			writes += m.Value
		}
	}
	if writes == 0 {
		t.Fatal("redbud_client_writes_total stayed zero across a write workload")
	}
}

// TestWriteObsJSON exercises the CI artifact writer on a real (tiny) report.
func TestWriteObsJSON(t *testing.T) {
	opt := TestOptions()
	opt.Clients = 2
	opt.SizeFactor = 0.05
	rep, spans, err := RunObsBench(opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Breakdown.Commits == 0 || len(spans) == 0 {
		t.Fatalf("obs bench produced no commits/spans: %+v", rep)
	}
	path := filepath.Join(t.TempDir(), "BENCH_obs.json")
	if err := WriteObsJSON(path, opt, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var j ObsJSONReport
	if err := json.Unmarshal(data, &j); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if j.Figure != "obs" || j.Commits != rep.Breakdown.Commits || len(j.Stages) != 4 {
		t.Fatalf("artifact content: %+v", j)
	}
	var pct float64
	for _, s := range j.Stages {
		pct += s.PctE2E
	}
	if pct < 99.9 || pct > 100.1 {
		t.Fatalf("stage percentages sum to %v, want 100", pct)
	}
	var out strings.Builder
	PrintObs(&out, rep)
	if !strings.Contains(out.String(), "commit critical path") {
		t.Fatalf("PrintObs output:\n%s", out.String())
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
