package meta

import (
	"fmt"
	"sort"

	"redbud/internal/alloc"
)

// FsckReport is the result of a full metadata/allocator cross-check.
type FsckReport struct {
	Files      int
	Extents    int
	LiveBytes  int64 // bytes referenced by file extents
	DelegBytes int64 // bytes inside live delegations not covered by extents
	FreeBytes  int64 // allocator free space
	Problems   []string
}

// OK reports whether the check found no inconsistencies.
func (r FsckReport) OK() bool { return len(r.Problems) == 0 }

func (r FsckReport) String() string {
	status := "clean"
	if !r.OK() {
		status = fmt.Sprintf("%d problems", len(r.Problems))
	}
	return fmt.Sprintf("fsck: %s (%d files, %d extents, live=%d deleg=%d free=%d)",
		status, r.Files, r.Extents, r.LiveBytes, r.DelegBytes, r.FreeBytes)
}

// Fsck cross-checks the namespace, the extent maps, the delegations and the
// allocator:
//
//  1. every directory entry points at a live inode, and every inode except
//     the root is reachable from exactly one entry;
//  2. no two extents overlap physically (across all files);
//  3. extents within one file do not overlap logically;
//  4. accounting identity: free + live + unused-delegation = total space;
//  5. delegation `used` bookkeeping only covers committed extents.
//
// totalSpace is the capacity the AG set was built over.
func (s *Store) Fsck(totalSpace int64) FsckReport {
	s.ns.Lock()
	defer s.ns.Unlock()
	var r FsckReport

	// 1. Namespace reachability. On a sharded store, a dirent may point at
	// a remote-homed child (legal iff the edge record agrees), and a local
	// inode may be referenced from another shard instead of locally —
	// linkedRemote inodes and detached inodes under a live NSCreate intent
	// carry one external reference each.
	external := map[FileID]bool{}
	for id := range s.linkedRemote {
		external[id] = true
	}
	for _, in := range s.nsIntents.snapshot() {
		if in.Kind == NSCreate {
			external[in.File] = true
		}
	}
	reach := map[FileID]int{}
	for dirID, ents := range s.dirents {
		if _, ok := s.inodes[dirID]; !ok {
			r.Problems = append(r.Problems, fmt.Sprintf("dirent table for missing inode %d", dirID))
			continue
		}
		for name, cid := range ents {
			if _, ok := s.inodes[cid]; !ok {
				if _, rem := s.remote[cid]; !rem {
					r.Problems = append(r.Problems, fmt.Sprintf("entry %q points at missing inode %d", name, cid))
				}
				continue
			}
			reach[cid]++
		}
	}
	for id := range s.remote {
		found := false
		for _, ents := range s.dirents {
			for _, cid := range ents {
				if cid == id {
					found = true
				}
			}
		}
		if !found {
			r.Problems = append(r.Problems, fmt.Sprintf("remote-edge record for %d has no dirent", id))
		}
	}
	for id, ino := range s.inodes {
		if id == RootID {
			continue
		}
		refs := reach[id]
		if external[id] {
			refs++
		}
		if refs != ino.nlink {
			r.Problems = append(r.Problems, fmt.Sprintf("inode %d has %d references but nlink %d", id, refs, ino.nlink))
		}
		if refs == 0 {
			r.Problems = append(r.Problems, fmt.Sprintf("inode %d unreachable", id))
		}
	}
	r.Files = len(s.inodes)
	if _, ok := s.inodes[RootID]; ok {
		r.Files--
	}

	// 2 + 3. Extent overlap checks; collect physical spans.
	type pspan struct {
		dev      uint32
		off, end int64
		file     FileID
	}
	var phys []pspan
	for id, ino := range s.inodes {
		sorted := append([]Extent(nil), ino.extents...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].FileOff < sorted[j].FileOff })
		for i, e := range sorted {
			r.Extents++
			r.LiveBytes += e.Len
			phys = append(phys, pspan{dev: e.Dev, off: e.VolOff, end: e.VolOff + e.Len, file: id})
			if i > 0 && sorted[i-1].End() > e.FileOff {
				r.Problems = append(r.Problems, fmt.Sprintf("file %d: logical overlap at %d", id, e.FileOff))
			}
		}
	}
	sort.Slice(phys, func(i, j int) bool {
		if phys[i].dev != phys[j].dev {
			return phys[i].dev < phys[j].dev
		}
		return phys[i].off < phys[j].off
	})
	for i := 1; i < len(phys); i++ {
		a, b := phys[i-1], phys[i]
		if a.dev == b.dev && a.end > b.off {
			r.Problems = append(r.Problems, fmt.Sprintf("physical overlap dev%d [%d) files %d/%d", a.dev, b.off, a.file, b.file))
		}
	}

	// 4 + 5. Delegation bookkeeping and the accounting identity. Extents
	// inside a delegation are double-counted in LiveBytes and the chunk,
	// so subtract the covered portion from the delegation contribution.
	for owner, ds := range s.delegations {
		for _, d := range ds {
			var used int64
			for _, u := range d.used {
				used += u.end - u.off
				if u.off < d.span.Off || u.end > d.span.End() {
					r.Problems = append(r.Problems, fmt.Sprintf("delegation %s/%v used range outside span", owner, d.span))
				}
			}
			r.DelegBytes += d.span.Len - used
		}
	}
	r.FreeBytes = s.cfg.AGs.FreeBytes()
	if got := r.FreeBytes + r.LiveBytes + r.DelegBytes; got != totalSpace {
		r.Problems = append(r.Problems, fmt.Sprintf(
			"accounting: free %d + live %d + deleg %d = %d, want %d",
			r.FreeBytes, r.LiveBytes, r.DelegBytes, got, totalSpace))
	}
	return r
}

// TotalSpace sums the capacity of an AG set's groups — the totalSpace
// argument Fsck expects when the set covers whole devices.
func TotalSpace(ags *alloc.AGSet) int64 {
	var total int64
	for _, g := range ags.Groups() {
		start, end := g.Bounds()
		total += end - start
	}
	return total
}

// FsckCluster cross-checks the shard-spanning edges of a sharded namespace
// (stores indexed by shard): every remote-pointing dirent must have a
// matching edge record, a live home inode marked linkedRemote, and an
// agreeing type; every linkedRemote inode must be referenced by exactly one
// dirent cluster-wide; no inode may be referenced from more than one entry.
// Run it after ResolveNSIntents on a quiesced cluster — live intents are
// in-flight edges and are reported as problems here.
func FsckCluster(stores []*Store) []string {
	var problems []string
	n := len(stores)
	refs := map[FileID]int{}
	for si, s := range stores {
		s.ns.RLock()
		for _, in := range s.nsIntents.snapshot() {
			problems = append(problems, fmt.Sprintf("shard %d: unresolved %s intent on inode %d", si, in.Kind, in.File))
		}
		for dirID, ents := range s.dirents {
			if ShardOf(dirID, n) != si {
				problems = append(problems, fmt.Sprintf("shard %d: dirent table for foreign directory %d", si, dirID))
			}
			for name, cid := range ents {
				refs[cid]++
				if ShardOf(cid, n) == si {
					continue
				}
				typ, ok := s.remote[cid]
				if !ok {
					problems = append(problems, fmt.Sprintf("shard %d: entry %q → %d has no remote-edge record", si, name, cid))
					continue
				}
				home := stores[ShardOf(cid, n)]
				home.ns.RLock()
				ino, live := home.inodes[cid]
				_, linked := home.linkedRemote[cid]
				homeTyp := FileType(0)
				if live {
					homeTyp = ino.typ
				}
				home.ns.RUnlock()
				switch {
				case !live:
					problems = append(problems, fmt.Sprintf("shard %d: entry %q → %d dangles (no home inode)", si, name, cid))
				case !linked:
					problems = append(problems, fmt.Sprintf("shard %d: entry %q → %d not marked linkedRemote at home", si, name, cid))
				case homeTyp != typ:
					problems = append(problems, fmt.Sprintf("shard %d: entry %q → %d type mismatch (edge %d, home %d)", si, name, cid, typ, homeTyp))
				}
			}
		}
		s.ns.RUnlock()
	}
	for si, s := range stores {
		s.ns.RLock()
		for id := range s.linkedRemote {
			if refs[id] != 1 {
				problems = append(problems, fmt.Sprintf("shard %d: linkedRemote inode %d has %d dirents cluster-wide, want 1", si, id, refs[id]))
			}
		}
		for id, ino := range s.inodes {
			if id == RootID {
				continue
			}
			if _, linked := s.linkedRemote[id]; linked {
				continue
			}
			if refs[id] > ino.nlink {
				problems = append(problems, fmt.Sprintf("shard %d: inode %d referenced by %d dirents, nlink %d", si, id, refs[id], ino.nlink))
			}
		}
		s.ns.RUnlock()
	}
	return problems
}
