package obs

import (
	"strings"
	"testing"
	"time"
)

func TestAnalyzeStageSumExact(t *testing.T) {
	spans := []Span{
		// Commit 1, delayed mode: queue → data wait → (batch gap) → RPC.
		{Track: "c0/commit", Name: SpanCommitQueue, CommitID: 1, Start: at(0), End: at(100)},
		{Track: "c0/commit", Name: SpanCommitDataWait, CommitID: 1, Start: at(100), End: at(180)},
		{Track: "c0/commit", Name: SpanCommitRPC, CommitID: 1, Start: at(200), End: at(300)},
		{Track: "mds", Name: SpanMDSCommit, CommitID: 1, Start: at(220), End: at(280)},
		{Track: "mds/store", Name: SpanMDSLockWait, CommitID: 1, Start: at(222), End: at(232)},
		{Track: "mds/store", Name: SpanMDSApply, CommitID: 1, Start: at(232), End: at(252)},
		{Track: "mds/store", Name: SpanMDSJournal, CommitID: 1, Start: at(252), End: at(277)},
		// Commit 2, sync mode with an RPC retry: the envelope is
		// [400,500] across both attempts.
		{Track: "c1/commit", Name: SpanCommitRPC, CommitID: 2, Start: at(400), End: at(450)},
		{Track: "c1/commit", Name: SpanCommitRPC, CommitID: 2, Start: at(430), End: at(500)},
		// Commit 3 has no RPC span (still in flight): skipped.
		{Track: "c2/commit", Name: SpanCommitQueue, CommitID: 3, Start: at(600), End: at(700)},
		// CommitID-0 infrastructure spans are ignored by the analyzer.
		{Track: "dev0", Name: SpanDevTransfer, Start: at(0), End: at(50)},
	}
	b := Analyze(spans)

	if b.Commits != 2 {
		t.Fatalf("Commits = %d, want 2", b.Commits)
	}
	us := func(n int64) time.Duration { return time.Duration(n) * time.Microsecond }

	p1 := b.PerCommit[0]
	if p1.ID != 1 {
		t.Fatalf("PerCommit not sorted by ID: %+v", b.PerCommit)
	}
	if p1.E2E != us(300) || p1.Queue != us(100) || p1.DataWait != us(80) || p1.Batch != us(20) || p1.RPC != us(100) {
		t.Fatalf("commit 1 stages = %+v", p1)
	}
	if p1.Server != us(60) || p1.Wire != us(40) || p1.LockWait != us(10) || p1.Apply != us(20) || p1.Journal != us(25) {
		t.Fatalf("commit 1 rpc decomposition = %+v", p1)
	}

	p2 := b.PerCommit[1]
	if p2.E2E != us(100) || p2.RPC != us(100) || p2.Queue != 0 || p2.DataWait != 0 || p2.Batch != 0 {
		t.Fatalf("commit 2 (retry envelope) = %+v", p2)
	}

	// The acceptance criterion: per-commit top-level stages sum to E2E
	// exactly, and so do the aggregated stage totals.
	for _, p := range b.PerCommit {
		if sum := p.Queue + p.DataWait + p.Batch + p.RPC; sum != p.E2E {
			t.Fatalf("commit %d: stage sum %v != e2e %v", p.ID, sum, p.E2E)
		}
	}
	var total time.Duration
	for _, s := range b.Stages {
		total += s.Total
	}
	if total != b.E2E {
		t.Fatalf("aggregated stage sum %v != total e2e %v", total, b.E2E)
	}

	tbl := b.Table()
	for _, want := range []string{"queue", "datawait", "batch", "rpc", "e2e", "rpc.wire", "server.journal", "2 commits"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

// TestAnalyzeServerClamp: a dedup replay can make summed mds.commit time
// exceed the client-observed RPC; Server must clamp so Wire stays ≥ 0.
func TestAnalyzeServerClamp(t *testing.T) {
	spans := []Span{
		{Track: "c0/commit", Name: SpanCommitRPC, CommitID: 7, Start: at(0), End: at(100)},
		{Track: "mds", Name: SpanMDSCommit, CommitID: 7, Start: at(0), End: at(90)},
		{Track: "mds", Name: SpanMDSCommit, CommitID: 7, Start: at(10), End: at(95)}, // replay
	}
	b := Analyze(spans)
	p := b.PerCommit[0]
	if p.Server != p.RPC || p.Wire != 0 {
		t.Fatalf("server not clamped: %+v", p)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	b := Analyze(nil)
	if b.Commits != 0 || b.E2E != 0 || len(b.PerCommit) != 0 {
		t.Fatalf("empty analysis = %+v", b)
	}
	if !strings.Contains(b.Table(), "0 commits") {
		t.Fatal("empty table should render")
	}
}
