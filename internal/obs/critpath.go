package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Canonical span names recorded by the instrumented layers. The critical-path
// analyzer keys on them, so instrumentation and analysis agree by construction.
const (
	// Client commit lifecycle (CommitID-correlated).
	SpanCommitQueue    = "commit.queue"    // enqueue → commit daemon dequeues the file
	SpanCommitDataWait = "commit.datawait" // ordered-write wait for outstanding device writes
	SpanCommitRPC      = "commit.rpc"      // commit RPC send → reply (client-observed)
	// MDS commit handling (CommitID-correlated).
	SpanMDSCommit   = "mds.commit"   // dispatch → response encoded
	SpanMDSLockWait = "mds.lockwait" // namespace + stripe lock wait
	SpanMDSApply    = "mds.apply"    // extent/attr application under the stripe lock
	SpanMDSJournal  = "mds.journal"  // journal group-commit durability wait
	// Shared-array device lifecycle (pre-commit data path, CommitID 0).
	SpanDevQueue    = "dev.queue" // submit → elevator dispatch
	SpanDevSeek     = "dev.seek"  // head movement + rotation
	SpanDevTransfer = "dev.xfer"  // media transfer
	// Metadata network and RPC server (CommitID 0).
	SpanNetWait    = "net.wait"    // ingress-link queueing
	SpanNetXmit    = "net.xmit"    // serialization + propagation
	SpanRPCQueue   = "rpc.queue"   // request queue wait at the server
	SpanRPCProcess = "rpc.process" // daemon-thread occupancy per frame
	// Application thread (CommitID 0).
	SpanAppWrite = "write.app" // WriteAt entry → return

	// Cross-shard namespace sagas (TraceID-correlated). The root span covers
	// the whole saga on the client's ns track; the phase children cover each
	// client-observed RPC leg, and the server-side handler spans below link
	// under the phase that issued them.
	SpanNSCreate = "ns.create"
	SpanNSRemove = "ns.remove"
	SpanNSRename = "ns.rename"

	SpanNSMint       = "ns.mint"        // create: mint the detached inode on the target shard
	SpanNSLink       = "ns.link"        // create: dirent insert on the parent shard (commit point)
	SpanNSStat       = "ns.stat"        // remove: getattr on the home shard
	SpanNSPrepare    = "ns.prepare"     // remove: intent publish on the home shard
	SpanNSUnlink     = "ns.unlink"      // remove: dirent delete on the parent shard (commit point)
	SpanNSLookup     = "ns.lookup"      // rename: source entry lookup
	SpanNSPrepareSrc = "ns.prepare.src" // rename: source intent publish
	SpanNSPrepareDst = "ns.prepare.dst" // rename: destination name reservation
	SpanNSCommitSrc  = "ns.commit.src"  // rename: source dirent delete (commit point)
	SpanNSCommitDst  = "ns.commit.dst"  // rename: destination dirent insert
	SpanNSGraduate   = "ns.graduate"    // create/remove: intent graduation on the home shard
	SpanNSAbort      = "ns.abort"       // any saga: rollback after a definitive refusal

	// MDS namespace-op handling (TraceID-correlated when the request carried
	// a trace context).
	SpanMDSCreateDetached = "mds.createdetached"
	SpanMDSNSPrepare      = "mds.nsprepare"
	SpanMDSNSCommit       = "mds.nscommit"
	SpanMDSNSAbort        = "mds.nsabort"
	SpanMDSLinkRemote     = "mds.linkremote"
	SpanMDSUnlinkRemote   = "mds.unlinkremote"
)

// CommitPath is the reconstructed lifecycle of one commit. The four
// top-level stages are disjoint and contiguous, so
// Queue + DataWait + Batch + RPC == E2E exactly: Batch is defined as the
// residual between the data-wait end and the RPC send (compound assembly,
// daemon scheduling), absorbing any rounding.
type CommitPath struct {
	ID    uint64
	Start time.Time
	E2E   time.Duration

	Queue    time.Duration // commit-queue wait (0 in sync mode)
	DataWait time.Duration // ordered-write wait for data durability
	Batch    time.Duration // residual: batching/assembly between build and send
	RPC      time.Duration // commit RPC round trip

	// Informational decomposition of RPC (server-side, matched by CommitID).
	Server   time.Duration // MDS handler occupancy (mds.commit)
	Wire     time.Duration // RPC - Server: network + server queueing
	LockWait time.Duration // stripe/namespace lock wait inside the store
	Apply    time.Duration // metadata application
	Journal  time.Duration // journal group-commit wait
}

// Stage is one aggregated bucket of the breakdown table.
type Stage struct {
	Name  string
	Total time.Duration
	Count int64 // commits contributing a nonzero value
}

// Breakdown aggregates per-commit critical paths, plus the cross-shard
// namespace sagas the trace carried (empty when nothing cross-shard ran).
type Breakdown struct {
	Commits   int
	E2E       time.Duration // summed end-to-end latency
	Stages    []Stage       // top level; totals sum to E2E exactly
	Sub       []Stage       // nested decomposition of the rpc stage
	PerCommit []CommitPath  // sorted by CommitID
	Sagas     []SagaPath    // sorted by TraceID
}

// SagaPath is the reconstructed lifecycle of one cross-shard namespace saga
// (create/remove/rename), decomposed into its client-observed RPC legs.
type SagaPath struct {
	TraceID uint64
	Kind    string // root span name: ns.create, ns.remove, or ns.rename
	Start   time.Time
	E2E     time.Duration
	Phases  []SagaPhase // legs in time order
}

// SagaPhase is one leg of a saga: the client-observed duration plus the
// server-side handler occupancy that linked under it (0 when the server span
// was not captured — e.g. it ran on a shard whose ring wrapped).
type SagaPhase struct {
	Name     string
	Duration time.Duration
	Server   time.Duration
}

// Analyze reconstructs per-commit critical paths from a span stream.
// Commits without a commit.rpc span (still in flight when the trace was
// taken) are skipped.
func Analyze(spans []Span) *Breakdown {
	type acc struct {
		queue, datawait, rpc        *Span
		server, lock, apply, journl time.Duration
	}
	commits := make(map[uint64]*acc)
	get := func(id uint64) *acc {
		a := commits[id]
		if a == nil {
			a = &acc{}
			commits[id] = a
		}
		return a
	}
	for i := range spans {
		s := spans[i]
		if s.CommitID == 0 {
			continue
		}
		a := get(s.CommitID)
		switch s.Name {
		case SpanCommitQueue:
			a.queue = widen(a.queue, s)
		case SpanCommitDataWait:
			a.datawait = widen(a.datawait, s)
		case SpanCommitRPC:
			a.rpc = widen(a.rpc, s) // retries widen to first send → last reply
		case SpanMDSCommit:
			a.server += s.Duration()
		case SpanMDSLockWait:
			a.lock += s.Duration()
		case SpanMDSApply:
			a.apply += s.Duration()
		case SpanMDSJournal:
			a.journl += s.Duration()
		}
	}

	b := &Breakdown{}
	for id, a := range commits {
		if a.rpc == nil {
			continue
		}
		p := CommitPath{ID: id}
		start := a.rpc.Start
		if a.datawait != nil {
			start = a.datawait.Start
			p.DataWait = a.datawait.Duration()
		}
		if a.queue != nil {
			start = a.queue.Start
			p.Queue = a.queue.Duration()
		}
		p.Start = start
		p.E2E = a.rpc.End.Sub(start)
		p.RPC = a.rpc.Duration()
		// Residual: everything between the end of the data wait and the RPC
		// send — compound assembly and daemon scheduling. Defined as the
		// remainder so the top-level stages sum to E2E exactly.
		p.Batch = p.E2E - p.Queue - p.DataWait - p.RPC
		p.Server = a.server
		if p.Server > p.RPC {
			p.Server = p.RPC // dedup replays can over-count; clamp
		}
		p.Wire = p.RPC - p.Server
		p.LockWait, p.Apply, p.Journal = a.lock, a.apply, a.journl
		b.PerCommit = append(b.PerCommit, p)
	}
	sort.Slice(b.PerCommit, func(i, j int) bool { return b.PerCommit[i].ID < b.PerCommit[j].ID })

	b.Commits = len(b.PerCommit)
	stages := make([]Stage, 4)
	stages[0].Name, stages[1].Name, stages[2].Name, stages[3].Name = "queue", "datawait", "batch", "rpc"
	sub := make([]Stage, 5)
	sub[0].Name, sub[1].Name, sub[2].Name, sub[3].Name, sub[4].Name =
		"rpc.wire", "rpc.server", "server.lockwait", "server.apply", "server.journal"
	for _, p := range b.PerCommit {
		b.E2E += p.E2E
		addStage(&stages[0], p.Queue)
		addStage(&stages[1], p.DataWait)
		addStage(&stages[2], p.Batch)
		addStage(&stages[3], p.RPC)
		addStage(&sub[0], p.Wire)
		addStage(&sub[1], p.Server)
		addStage(&sub[2], p.LockWait)
		addStage(&sub[3], p.Apply)
		addStage(&sub[4], p.Journal)
	}
	b.Stages = stages
	b.Sub = sub
	b.Sagas = analyzeSagas(spans)
	return b
}

// analyzeSagas reconstructs cross-shard namespace sagas from their linked
// spans: the ns.* root (SpanID == TraceID), its client phase legs (Parent ==
// TraceID), and the server handler spans that link under each leg.
func analyzeSagas(spans []Span) []SagaPath {
	type acc struct {
		root   *Span
		phases []Span
	}
	sagas := make(map[uint64]*acc)
	serverByParent := make(map[uint64]time.Duration)
	for i := range spans {
		s := spans[i]
		if s.TraceID == 0 {
			continue
		}
		switch {
		case s.Name == SpanNSCreate || s.Name == SpanNSRemove || s.Name == SpanNSRename:
			a := sagas[s.TraceID]
			if a == nil {
				a = &acc{}
				sagas[s.TraceID] = a
			}
			a.root = widen(a.root, s)
		case strings.HasPrefix(s.Name, "ns."):
			a := sagas[s.TraceID]
			if a == nil {
				a = &acc{}
				sagas[s.TraceID] = a
			}
			a.phases = append(a.phases, s)
		case s.Parent != 0:
			// Server-side handler occupancy keyed by the phase it links
			// under. Commit-trace server spans land here too and are simply
			// never looked up.
			serverByParent[s.Parent] += s.Duration()
		}
	}

	var out []SagaPath
	for id, a := range sagas {
		if a.root == nil {
			continue // root evicted from the ring: the saga cannot be framed
		}
		p := SagaPath{TraceID: id, Kind: a.root.Name, Start: a.root.Start, E2E: a.root.Duration()}
		sort.Slice(a.phases, func(i, j int) bool {
			if !a.phases[i].Start.Equal(a.phases[j].Start) {
				return a.phases[i].Start.Before(a.phases[j].Start)
			}
			return a.phases[i].Name < a.phases[j].Name
		})
		for _, ph := range a.phases {
			p.Phases = append(p.Phases, SagaPhase{
				Name:     ph.Name,
				Duration: ph.Duration(),
				Server:   serverByParent[ph.SpanID],
			})
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TraceID < out[j].TraceID })
	return out
}

func addStage(s *Stage, d time.Duration) {
	s.Total += d
	if d != 0 {
		s.Count++
	}
}

// widen keeps the envelope [min start, max end] across repeated spans of the
// same kind (RPC retries, re-enqueues).
func widen(have *Span, s Span) *Span {
	if have == nil {
		c := s
		return &c
	}
	if s.Start.Before(have.Start) {
		have.Start = s.Start
	}
	if s.End.After(have.End) {
		have.End = s.End
	}
	return have
}

// Table renders the Figure-6-style per-stage breakdown. The top-level stage
// totals sum to the end-to-end total exactly; the indented rows decompose
// the rpc stage and do not add to the sum.
func (b *Breakdown) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "commit critical path: %d commits, total e2e %v", b.Commits, b.E2E)
	if b.Commits > 0 {
		fmt.Fprintf(&sb, ", mean %v", (b.E2E / time.Duration(b.Commits)).Round(time.Nanosecond))
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "  %-16s %14s %14s %8s\n", "stage", "total", "mean", "% e2e")
	writeRow := func(indent, name string, s Stage) {
		var m time.Duration
		if b.Commits > 0 {
			m = s.Total / time.Duration(b.Commits)
		}
		pct := 0.0
		if b.E2E > 0 {
			pct = 100 * float64(s.Total) / float64(b.E2E)
		}
		fmt.Fprintf(&sb, "  %-16s %14v %14v %7.1f%%\n", indent+name, s.Total, m, pct)
	}
	for _, s := range b.Stages {
		writeRow("", s.Name, s)
	}
	writeRow("", "e2e", Stage{Name: "e2e", Total: b.E2E})
	for _, s := range b.Sub {
		writeRow("  ", s.Name, s)
	}
	if len(b.Sagas) > 0 {
		sb.WriteString(b.sagaTable())
	}
	return sb.String()
}

// sagaTable renders the per-phase leg breakdown of cross-shard namespace
// sagas, aggregated per saga kind. The server column is the portion of each
// leg spent inside the remote MDS handler; the rest is wire + queueing.
func (b *Breakdown) sagaTable() string {
	type agg struct {
		count  int
		e2e    time.Duration
		order  []string
		legs   map[string]*Stage
		server map[string]time.Duration
	}
	kinds := make(map[string]*agg)
	var kindOrder []string
	for _, s := range b.Sagas {
		a := kinds[s.Kind]
		if a == nil {
			a = &agg{legs: make(map[string]*Stage), server: make(map[string]time.Duration)}
			kinds[s.Kind] = a
			kindOrder = append(kindOrder, s.Kind)
		}
		a.count++
		a.e2e += s.E2E
		for _, ph := range s.Phases {
			st := a.legs[ph.Name]
			if st == nil {
				st = &Stage{Name: ph.Name}
				a.legs[ph.Name] = st
				a.order = append(a.order, ph.Name)
			}
			addStage(st, ph.Duration)
			a.server[ph.Name] += ph.Server
		}
	}
	sort.Strings(kindOrder)

	var sb strings.Builder
	for _, kind := range kindOrder {
		a := kinds[kind]
		mean := time.Duration(0)
		if a.count > 0 {
			mean = (a.e2e / time.Duration(a.count)).Round(time.Nanosecond)
		}
		fmt.Fprintf(&sb, "saga %s: %d sagas, total e2e %v, mean %v\n", kind, a.count, a.e2e, mean)
		fmt.Fprintf(&sb, "  %-16s %14s %14s %14s %8s\n", "leg", "total", "mean", "server", "% e2e")
		for _, name := range a.order {
			st := a.legs[name]
			var m time.Duration
			if a.count > 0 {
				m = st.Total / time.Duration(a.count)
			}
			pct := 0.0
			if a.e2e > 0 {
				pct = 100 * float64(st.Total) / float64(a.e2e)
			}
			fmt.Fprintf(&sb, "  %-16s %14v %14v %14v %7.1f%%\n", name, st.Total, m, a.server[name], pct)
		}
	}
	return sb.String()
}
