package obs

import (
	"testing"
	"time"
)

var t0 = time.Unix(1000, 0).UTC()

func at(us int64) time.Time { return t0.Add(time.Duration(us) * time.Microsecond) }

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	if got := tr.Cap(); got != 4 {
		t.Fatalf("Cap = %d, want 4", got)
	}
	for i := 0; i < 6; i++ {
		tr.Record("trk", "s", uint64(i+1), at(int64(i)), at(int64(i)+1))
	}
	if tr.Len() != 4 || tr.Total() != 6 || tr.Dropped() != 2 {
		t.Fatalf("Len/Total/Dropped = %d/%d/%d, want 4/6/2", tr.Len(), tr.Total(), tr.Dropped())
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("Spans len = %d, want 4", len(spans))
	}
	// Oldest first: commits 3,4,5,6 survive.
	for i, s := range spans {
		if want := uint64(i + 3); s.CommitID != want {
			t.Errorf("span %d commit = %d, want %d", i, s.CommitID, want)
		}
	}
}

func TestTracerDefaultCap(t *testing.T) {
	if got := NewTracer(0).Cap(); got != DefaultTraceCap {
		t.Fatalf("Cap = %d, want DefaultTraceCap %d", got, DefaultTraceCap)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
	tr.Record("trk", "s", 1, at(0), at(1)) // must not panic
	tr.Reset()
	if tr.Spans() != nil || tr.Len() != 0 || tr.Cap() != 0 || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer accessors not zero")
	}
}

func TestRecordClampsReversedSpan(t *testing.T) {
	tr := NewTracer(4)
	tr.Record("trk", "s", 1, at(10), at(5))
	s := tr.Spans()[0]
	if s.Duration() != 0 || !s.End.Equal(s.Start) {
		t.Fatalf("reversed span not clamped: %+v", s)
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Record("trk", "s", 1, at(0), at(1))
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 || len(tr.Spans()) != 0 {
		t.Fatal("Reset left state behind")
	}
	tr.Record("trk", "s", 1, at(0), at(1))
	if tr.Len() != 1 || tr.Total() != 1 || tr.Dropped() != 0 {
		t.Fatal("tracer unusable after Reset")
	}
}

// TestTraceDisabledZeroAllocs pins the acceptance criterion: the disabled
// (nil-tracer) path must not allocate.
func TestTraceDisabledZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Record("client-0/commit", SpanCommitRPC, 42, t0, t0)
	})
	if allocs != 0 {
		t.Fatalf("disabled Record allocates %v per op, want 0", allocs)
	}
}

// BenchmarkTraceDisabled measures the cost instrumented code pays with
// tracing off: one nil check. Must report 0 allocs/op.
func BenchmarkTraceDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record("client-0/commit", SpanCommitRPC, uint64(i), t0, t0)
	}
}

// BenchmarkTraceEnabled measures the bounded-ring recording cost.
func BenchmarkTraceEnabled(b *testing.B) {
	tr := NewTracer(1 << 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record("client-0/commit", SpanCommitRPC, uint64(i), t0, t0)
	}
}
