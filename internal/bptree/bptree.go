// Package bptree implements the B+ tree the Redbud MDS uses inside each
// allocation group to track free physical space ("Each AG has its own B+
// tree to allocate and deallocate physical space", §V-A). Keys and values
// are int64 — the allocator stores extent start offsets mapped to lengths.
//
// The tree is a textbook B+ tree: all values live in leaves, leaves are
// chained for in-order scans, and internal nodes hold separator keys equal
// to the minimum key of their right subtree. It is not safe for concurrent
// use; callers (one per allocation group) hold their own lock.
package bptree

// maxKeys is the fan-out; nodes split when they exceed it and borrow/merge
// when they fall below maxKeys/2.
const maxKeys = 64
const minKeys = maxKeys / 2

type node struct {
	leaf     bool
	keys     []int64
	vals     []int64 // leaf only, parallel to keys
	children []*node // internal only, len(keys)+1
	next     *node   // leaf chain
}

// Tree is a B+ tree mapping int64 keys to int64 values.
type Tree struct {
	root *node
	size int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// Len returns the number of stored keys.
func (t *Tree) Len() int { return t.size }

// search returns the index of the first key >= k in keys.
func search(keys []int64, k int64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns which child of an internal node covers key k.
// Separator keys[i] is the minimum key of children[i+1].
func childIndex(keys []int64, k int64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// findLeaf descends to the leaf that would hold k.
func (t *Tree) findLeaf(k int64) *node {
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, k)]
	}
	return n
}

// Get returns the value stored at k.
func (t *Tree) Get(k int64) (int64, bool) {
	n := t.findLeaf(k)
	i := search(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		return n.vals[i], true
	}
	return 0, false
}

// Put inserts or replaces the value at k.
func (t *Tree) Put(k, v int64) {
	n := t.root
	// Pre-emptive split on the way down keeps the insert single-pass.
	if len(n.keys) > maxKeys {
		panic("bptree: root overfull")
	}
	newChild, sepKey := t.insert(n, k, v)
	if newChild != nil {
		t.root = &node{
			keys:     []int64{sepKey},
			children: []*node{n, newChild},
		}
	}
}

// insert adds k/v under n. If n splits, it returns the new right sibling and
// the separator key to push up; otherwise (nil, 0).
func (t *Tree) insert(n *node, k, v int64) (*node, int64) {
	if n.leaf {
		i := search(n.keys, k)
		if i < len(n.keys) && n.keys[i] == k {
			n.vals[i] = v
			return nil, 0
		}
		n.keys = insertAt(n.keys, i, k)
		n.vals = insertAt(n.vals, i, v)
		t.size++
		if len(n.keys) <= maxKeys {
			return nil, 0
		}
		return n.splitLeaf()
	}
	ci := childIndex(n.keys, k)
	newChild, sepKey := t.insert(n.children[ci], k, v)
	if newChild == nil {
		return nil, 0
	}
	n.keys = insertAt(n.keys, ci, sepKey)
	n.children = insertAt(n.children, ci+1, newChild)
	if len(n.keys) <= maxKeys {
		return nil, 0
	}
	return n.splitInternal()
}

// splitLeaf halves an overfull leaf, returning the right half and its first
// key (copied up as separator).
func (n *node) splitLeaf() (*node, int64) {
	mid := len(n.keys) / 2
	right := &node{
		leaf: true,
		keys: append([]int64(nil), n.keys[mid:]...),
		vals: append([]int64(nil), n.vals[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	n.next = right
	return right, right.keys[0]
}

// splitInternal halves an overfull internal node; the middle key moves up.
func (n *node) splitInternal() (*node, int64) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &node{
		keys:     append([]int64(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return right, sep
}

func insertAt[T any](s []T, i int, v T) []T {
	s = append(s, v)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeAt[T any](s []T, i int) []T {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

// Delete removes k, reporting whether it was present.
func (t *Tree) Delete(k int64) bool {
	deleted := t.remove(t.root, k)
	if !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if deleted {
		t.size--
	}
	return deleted
}

// remove deletes k from the subtree under n, rebalancing children that
// underflow. Returns whether a key was removed.
func (t *Tree) remove(n *node, k int64) bool {
	if n.leaf {
		i := search(n.keys, k)
		if i >= len(n.keys) || n.keys[i] != k {
			return false
		}
		n.keys = removeAt(n.keys, i)
		n.vals = removeAt(n.vals, i)
		return true
	}
	ci := childIndex(n.keys, k)
	child := n.children[ci]
	deleted := t.remove(child, k)
	if len(child.keys) < minKeys {
		n.rebalance(ci)
	}
	return deleted
}

// rebalance fixes an underflowing child at index ci by borrowing from a
// sibling or merging with one.
func (n *node) rebalance(ci int) {
	child := n.children[ci]
	// Borrow from left sibling.
	if ci > 0 {
		left := n.children[ci-1]
		if len(left.keys) > minKeys {
			if child.leaf {
				last := len(left.keys) - 1
				child.keys = insertAt(child.keys, 0, left.keys[last])
				child.vals = insertAt(child.vals, 0, left.vals[last])
				left.keys = left.keys[:last]
				left.vals = left.vals[:last]
				n.keys[ci-1] = child.keys[0]
			} else {
				lastK := len(left.keys) - 1
				child.keys = insertAt(child.keys, 0, n.keys[ci-1])
				child.children = insertAt(child.children, 0, left.children[lastK+1])
				n.keys[ci-1] = left.keys[lastK]
				left.keys = left.keys[:lastK]
				left.children = left.children[:lastK+1]
			}
			return
		}
	}
	// Borrow from right sibling.
	if ci < len(n.children)-1 {
		right := n.children[ci+1]
		if len(right.keys) > minKeys {
			if child.leaf {
				child.keys = append(child.keys, right.keys[0])
				child.vals = append(child.vals, right.vals[0])
				right.keys = removeAt(right.keys, 0)
				right.vals = removeAt(right.vals, 0)
				n.keys[ci] = right.keys[0]
			} else {
				child.keys = append(child.keys, n.keys[ci])
				child.children = append(child.children, right.children[0])
				n.keys[ci] = right.keys[0]
				right.keys = removeAt(right.keys, 0)
				right.children = removeAt(right.children, 0)
			}
			return
		}
	}
	// Merge with a sibling.
	if ci > 0 {
		ci-- // merge child into its left sibling
	}
	left, right := n.children[ci], n.children[ci+1]
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, n.keys[ci])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	n.keys = removeAt(n.keys, ci)
	n.children = removeAt(n.children, ci+1)
}

// Ceil returns the smallest key >= k and its value.
func (t *Tree) Ceil(k int64) (key, val int64, ok bool) {
	n := t.findLeaf(k)
	i := search(n.keys, k)
	if i == len(n.keys) {
		n = n.next
		i = 0
	}
	if n == nil || i >= len(n.keys) {
		return 0, 0, false
	}
	return n.keys[i], n.vals[i], true
}

// Floor returns the largest key <= k and its value.
func (t *Tree) Floor(k int64) (key, val int64, ok bool) {
	// Descend remembering the closest smaller-or-equal candidate.
	var cand *node
	candIdx := -1
	n := t.root
	for {
		i := search(n.keys, k)
		if n.leaf {
			if i < len(n.keys) && n.keys[i] == k {
				return n.keys[i], n.vals[i], true
			}
			if i > 0 {
				return n.keys[i-1], n.vals[i-1], true
			}
			if cand != nil {
				return cand.keys[candIdx], cand.vals[candIdx], true
			}
			return 0, 0, false
		}
		ci := childIndex(n.keys, k)
		if ci > 0 {
			// The rightmost leaf of children[ci-1] holds keys < k;
			// remember nothing — the descent through children[ci]
			// will find in-leaf predecessors. We only need a
			// fallback when the target leaf has no smaller key,
			// which we resolve by walking the left subtree's max.
			cand, candIdx = maxLeaf(n.children[ci-1])
		}
		n = n.children[ci]
	}
}

// maxLeaf returns the rightmost leaf under n and its last index.
func maxLeaf(n *node) (*node, int) {
	for !n.leaf {
		n = n.children[len(n.children)-1]
	}
	if len(n.keys) == 0 {
		return nil, -1
	}
	return n, len(n.keys) - 1
}

// Min returns the smallest key and its value.
func (t *Tree) Min() (key, val int64, ok bool) {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	if len(n.keys) == 0 {
		return 0, 0, false
	}
	return n.keys[0], n.vals[0], true
}

// AscendFrom calls fn for each key >= start in ascending order until fn
// returns false.
func (t *Tree) AscendFrom(start int64, fn func(k, v int64) bool) {
	n := t.findLeaf(start)
	i := search(n.keys, start)
	for n != nil {
		for ; i < len(n.keys); i++ {
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// Ascend calls fn for every key in ascending order until fn returns false.
func (t *Tree) Ascend(fn func(k, v int64) bool) {
	var n *node
	for n = t.root; !n.leaf; n = n.children[0] {
	}
	for n != nil {
		for i := 0; i < len(n.keys); i++ {
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
	}
}

// check validates structural invariants (test helper): key ordering, leaf
// chain coverage, separator correctness and minimum fill. It returns the
// tree depth. Panics on violation.
func (t *Tree) check() int {
	depth := -1
	var walk func(n *node, min, max int64, level int, isRoot bool)
	walk = func(n *node, min, max int64, level int, isRoot bool) {
		if n.leaf {
			if depth == -1 {
				depth = level
			} else if depth != level {
				panic("bptree: leaves at different depths")
			}
			if !isRoot && len(n.keys) < minKeys {
				panic("bptree: leaf underfull")
			}
			if len(n.keys) != len(n.vals) {
				panic("bptree: leaf keys/vals mismatch")
			}
			for i, k := range n.keys {
				if k < min || k >= max {
					panic("bptree: leaf key out of range")
				}
				if i > 0 && n.keys[i-1] >= k {
					panic("bptree: leaf keys not sorted")
				}
			}
			return
		}
		if !isRoot && len(n.keys) < minKeys {
			panic("bptree: internal underfull")
		}
		if len(n.children) != len(n.keys)+1 {
			panic("bptree: internal children/keys mismatch")
		}
		lo := min
		for i, k := range n.keys {
			if k < min || k >= max {
				panic("bptree: separator out of range")
			}
			walk(n.children[i], lo, k, level+1, false)
			lo = k
		}
		walk(n.children[len(n.keys)], lo, max, level+1, false)
	}
	const inf = int64(1) << 62
	walk(t.root, -inf, inf, 0, true)
	return depth
}
