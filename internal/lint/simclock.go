package lint

import (
	"go/ast"
	"strings"
)

// SimClock enforces virtual-time determinism: production code under
// internal/ must route time through internal/clock and randomness through an
// injected *rand.Rand. Direct wall-clock reads and the global math/rand
// source make simulator runs irreproducible, so they are banned outside
// package main, test files, and sites annotated `//lint:allow wallclock`.
var SimClock = &Analyzer{
	Name:       "simclock",
	Doc:        "ban wall-clock time and the global math/rand source in simulated code",
	AllowToken: "wallclock",
	Run:        runSimClock,
}

// bannedTimeFuncs are the time package functions that read or wait on the
// wall clock. Pure constructors/parsers (Date, Parse, Unix, Duration
// arithmetic) are fine.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// allowedRandFuncs are math/rand functions that do NOT touch the global
// source — constructors for injected generators.
var allowedRandFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // rand/v2
	"NewChaCha8": true, // rand/v2
}

func runSimClock(pass *Pass) error {
	// cmd/ binaries (package main) bridge to the real world; the ban applies
	// to library code only.
	if pass.Pkg.Name() == "main" {
		return nil
	}
	if wallclockAllowedPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, name, ok := pkgFuncCall(pass.Info, call)
			if !ok {
				return true
			}
			switch {
			case pkgPath == "time" && bannedTimeFuncs[name]:
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock: use internal/clock so simulated runs stay deterministic", name)
			case isMathRand(pkgPath) && !allowedRandFuncs[name]:
				pass.Reportf(call.Pos(),
					"%s.%s uses the global math/rand source: inject a seeded *rand.Rand instead", pkgPath, name)
			}
			return true
		})
	}
	return nil
}

func isMathRand(path string) bool {
	return path == "math/rand" || path == "math/rand/v2" ||
		strings.HasSuffix(path, "/math/rand") // fixture mirrors
}

// wallclockAllowedPkg exempts whole packages that legitimately live on the
// wall clock: the debug HTTP server only exists in real-TCP deployments
// (never inside a simulated run), so its uptime reads cannot perturb
// determinism.
func wallclockAllowedPkg(path string) bool {
	return path == "redbud/internal/obs/debughttp" ||
		strings.HasSuffix(path, "/debughttp") || path == "debughttp" // fixture mirrors
}
