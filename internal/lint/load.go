package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages without golang.org/x/tools: module
// packages are checked from source, standard-library imports are satisfied
// by compiled export data obtained from `go list -export` (offline; std
// needs no module downloads). A FixtureDir turns the loader into an
// analysistest-style GOPATH loader rooted at testdata/src.
type Loader struct {
	Fset *token.FileSet

	// ModuleDir/ModulePath describe the module whose packages are loaded.
	ModuleDir  string
	ModulePath string

	// FixtureDir, when set, resolves non-stdlib imports as
	// FixtureDir/<importpath> instead of module-relative directories.
	FixtureDir string

	pkgs  map[string]*Package
	cache map[string]*types.Package
	std   *stdImporter
}

// NewLoader returns a loader for the module rooted at dir (containing
// go.mod).
func NewLoader(dir string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := newLoader()
	l.ModuleDir = dir
	l.ModulePath = modPath
	return l, nil
}

// NewFixtureLoader returns a loader resolving imports under srcDir
// (testdata/src), for analyzer tests.
func NewFixtureLoader(srcDir string) *Loader {
	l := newLoader()
	l.FixtureDir = srcDir
	return l
}

func newLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:  fset,
		pkgs:  make(map[string]*Package),
		cache: make(map[string]*types.Package),
		std:   newStdImporter(fset),
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// ModulePackages lists the import paths of every package in the module, in
// lexical order. Directories named testdata and hidden/underscore
// directories are skipped, matching the go tool.
func (l *Loader) ModulePackages() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.ModuleDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleDir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, err := filepath.Rel(l.ModuleDir, path)
				if err != nil {
					return err
				}
				if rel == "." {
					out = append(out, l.ModulePath)
				} else {
					out = append(out, l.ModulePath+"/"+filepath.ToSlash(rel))
				}
				break
			}
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}

// Load type-checks the package with the given import path (module-relative
// or fixture-relative, depending on the loader mode).
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("lint: cannot resolve %q to a source directory", path)
	}
	pkg, err := l.loadDir(dir, path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

func (l *Loader) dirFor(path string) (string, bool) {
	if l.FixtureDir != "" {
		dir := filepath.Join(l.FixtureDir, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	}
	if path == l.ModulePath {
		return l.ModuleDir, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), true
	}
	return "", false
}

// loadDir parses the non-test files of dir and type-checks them.
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg, err := TypeCheck(l.Fset, path, files, l)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	return pkg, nil
}

// TypeCheck type-checks pre-parsed files into a Package, resolving imports
// through imp. Used by the go vet -vettool driver, where the go command
// supplies the file list and an export-data import map.
func TypeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Import implements types.Importer: local (module or fixture) packages are
// loaded from source; everything else is assumed to be standard library and
// resolved through export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if tp, ok := l.cache[path]; ok {
		return tp, nil
	}
	if dir, ok := l.dirFor(path); ok {
		pkg, err := l.loadDir(dir, path)
		if err != nil {
			return nil, err
		}
		l.pkgs[path] = pkg
		l.cache[path] = pkg.Types
		return pkg.Types, nil
	}
	tp, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.cache[path] = tp
	return tp, nil
}

// ---------------------------------------------------------------------------
// Standard-library importer

// stdImporter satisfies stdlib imports from compiled export data located via
// `go list -export`. This stays fully offline: the std packages are in
// GOROOT and their export data comes from the local build cache.
type stdImporter struct {
	exports map[string]string // import path -> export data file
	gc      types.Importer
}

func newStdImporter(fset *token.FileSet) *stdImporter {
	s := &stdImporter{exports: make(map[string]string)}
	s.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := s.exports[path]
		if !ok {
			if err := s.ensure(path); err != nil {
				return nil, err
			}
			file, ok = s.exports[path]
			if !ok {
				return nil, fmt.Errorf("lint: no export data for %q", path)
			}
		}
		return os.Open(file)
	})
	return s
}

func (s *stdImporter) Import(path string) (*types.Package, error) {
	if err := s.ensure(path); err != nil {
		return nil, err
	}
	return s.gc.Import(path)
}

// ensure populates export-data locations for path and its dependency
// closure.
func (s *stdImporter) ensure(path string) error {
	if _, ok := s.exports[path]; ok {
		return nil
	}
	cmd := exec.Command("go", "list", "-export", "-deps", "-f", "{{.ImportPath}}\t{{.Export}}", path)
	// Run outside any module so the path is resolved against the standard
	// library alone, not the enclosing module's dependencies.
	cmd.Dir = os.TempDir()
	cmd.Env = append(os.Environ(), "GOFLAGS=")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("lint: go list -export %s: %v\n%s", path, err, stderr.String())
	}
	for _, line := range strings.Split(stdout.String(), "\n") {
		p, file, ok := strings.Cut(strings.TrimSpace(line), "\t")
		if !ok || file == "" {
			continue
		}
		s.exports[p] = file
	}
	return nil
}
