package netsim

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"redbud/internal/clock"
)

// recvN collects n frames from a conn, failing the test on error.
func recvN(t *testing.T, c Conn, n int) [][]byte {
	t.Helper()
	var out [][]byte
	for i := 0; i < n; i++ {
		f, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		out = append(out, f)
	}
	return out
}

func TestFaultDropAll(t *testing.T) {
	n := newFabric(t, Instant(), "a", "b")
	n.InstallFaults(FaultPlan{Default: LinkFaults{DropProb: 1}})
	c, s := dialPair(t, n, "a", "b")
	defer c.Close()
	for i := 0; i < 5; i++ {
		if err := c.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing must arrive; prove it by clearing faults and sending a marker.
	st := n.FaultStats()
	n.ClearFaults()
	if err := c.Send([]byte("marker")); err != nil {
		t.Fatal(err)
	}
	f, err := s.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f, []byte("marker")) {
		t.Fatalf("got %q, want the marker: dropped frames leaked through", f)
	}
	if st.Dropped != 5 {
		t.Fatalf("Dropped = %d, want 5", st.Dropped)
	}
}

func TestFaultDuplicate(t *testing.T) {
	n := newFabric(t, Instant(), "a", "b")
	n.InstallFaults(FaultPlan{Default: LinkFaults{DupProb: 1}})
	c, s := dialPair(t, n, "a", "b")
	defer c.Close()
	if err := c.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	got := recvN(t, s, 2)
	if !bytes.Equal(got[0], []byte("x")) || !bytes.Equal(got[1], []byte("x")) {
		t.Fatalf("got %q, want two copies of x", got)
	}
	if st := n.FaultStats(); st.Duplicated != 1 {
		t.Fatalf("Duplicated = %d, want 1", st.Duplicated)
	}
}

func TestFaultReorderSwapsPair(t *testing.T) {
	n := newFabric(t, Instant(), "a", "b")
	// Script: hold exactly the first frame, deliver the rest untouched.
	var first atomic.Bool
	first.Store(true)
	n.InstallFaults(FaultPlan{Script: func(from, to string, size int) *Decision {
		if first.CompareAndSwap(true, false) {
			return &Decision{Hold: true, HoldFor: time.Second}
		}
		return nil
	}})
	c, s := dialPair(t, n, "a", "b")
	defer c.Close()
	if err := c.Send([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte("two")); err != nil {
		t.Fatal(err)
	}
	got := recvN(t, s, 2)
	if string(got[0]) != "two" || string(got[1]) != "one" {
		t.Fatalf("got %q,%q; want two,one (swapped)", got[0], got[1])
	}
	if st := n.FaultStats(); st.Reordered != 1 {
		t.Fatalf("Reordered = %d, want 1", st.Reordered)
	}
}

func TestFaultReorderHeldFrameFlushesOnQuietLink(t *testing.T) {
	n := newFabric(t, Instant(), "a", "b")
	var first atomic.Bool
	first.Store(true)
	n.InstallFaults(FaultPlan{Script: func(from, to string, size int) *Decision {
		if first.CompareAndSwap(true, false) {
			return &Decision{Hold: true, HoldFor: time.Millisecond}
		}
		return nil
	}})
	c, s := dialPair(t, n, "a", "b")
	defer c.Close()
	if err := c.Send([]byte("lonely")); err != nil {
		t.Fatal(err)
	}
	// No successor frame is ever sent; the hold timer must flush it.
	f, err := s.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(f) != "lonely" {
		t.Fatalf("got %q, want the held frame", f)
	}
}

func TestFaultDelaySpike(t *testing.T) {
	clk := clock.Real(1)
	n := NewNetwork(clk)
	n.AddHost("a", Instant())
	n.AddHost("b", Instant())
	n.InstallFaults(FaultPlan{Default: LinkFaults{DelayProb: 1, DelaySpike: 20 * time.Millisecond}})
	c, s := dialPair(t, n, "a", "b")
	defer c.Close()
	start := clk.Now()
	if err := c.Send([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recv(); err != nil {
		t.Fatal(err)
	}
	if el := clk.Since(start); el < 20*time.Millisecond {
		t.Fatalf("frame arrived after %v, want >= 20ms delay spike", el)
	}
}

func TestFaultPartitionWindow(t *testing.T) {
	clk := clock.NewManual()
	n := NewNetwork(clk)
	n.AddHost("a", Instant())
	n.AddHost("b", Instant())
	n.InstallFaults(FaultPlan{Partitions: []Partition{
		{From: "*", To: "b", Start: 10 * time.Millisecond, End: 20 * time.Millisecond},
	}})
	c, s := dialPair(t, n, "a", "b")
	defer c.Close()

	send := func(tag string) {
		t.Helper()
		if err := c.Send([]byte(tag)); err != nil {
			t.Fatal(err)
		}
	}
	send("before")
	clk.Advance(15 * time.Millisecond)
	send("cut") // inside the window: dropped
	clk.Advance(10 * time.Millisecond)
	send("after")

	got := recvN(t, s, 2)
	if string(got[0]) != "before" || string(got[1]) != "after" {
		t.Fatalf("got %q,%q; want before,after with the cut frame dropped", got[0], got[1])
	}
	if st := n.FaultStats(); st.Partitioned != 1 {
		t.Fatalf("Partitioned = %d, want 1", st.Partitioned)
	}
}

func TestFaultSeedDeterminism(t *testing.T) {
	// The same seed must yield the same fate sequence on a link; a
	// different seed must (for this trial count) yield a different one.
	fates := func(seed int64) string {
		n := newFabric(t, Instant(), "a", "b")
		n.InstallFaults(FaultPlan{Seed: seed, Default: LinkFaults{DropProb: 0.3, DupProb: 0.2}})
		c, s := dialPair(t, n, "a", "b")
		defer c.Close()
		var buf bytes.Buffer
		for i := 0; i < 64; i++ {
			if err := c.Send([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		st := n.FaultStats()
		delivered := 64 - int(st.Dropped) + int(st.Duplicated)
		seen := recvN(t, s, delivered)
		for _, f := range seen {
			fmt.Fprintf(&buf, "%d,", f[0])
		}
		return buf.String()
	}
	a1, a2, b := fates(7), fates(7), fates(8)
	if a1 != a2 {
		t.Fatalf("same seed diverged:\n%s\n%s", a1, a2)
	}
	if a1 == b {
		t.Fatalf("different seeds produced identical fault schedules")
	}
}

func TestFaultPerLinkOverride(t *testing.T) {
	n := newFabric(t, Instant(), "a", "b", "c")
	n.InstallFaults(FaultPlan{
		Default: LinkFaults{},
		Links:   map[string]LinkFaults{"c": {DropProb: 1}},
	})
	cb, sb := dialPair(t, n, "a", "b")
	defer cb.Close()
	cc, sc := dialPair(t, n, "a", "c")
	defer cc.Close()
	if err := cb.Send([]byte("to-b")); err != nil {
		t.Fatal(err)
	}
	if err := cc.Send([]byte("to-c")); err != nil {
		t.Fatal(err)
	}
	if f, err := sb.Recv(); err != nil || string(f) != "to-b" {
		t.Fatalf("b recv = %q, %v; want to-b", f, err)
	}
	// c's frame must have been dropped; verify via the counter rather than
	// waiting on a receive that would never return.
	if st := n.FaultStats(); st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1 (only the a->c frame)", st.Dropped)
	}
	_ = sc
}
