package meta

import (
	"errors"
	"fmt"
	"testing"

	"redbud/internal/alloc"
	"redbud/internal/blockdev"
	"redbud/internal/clock"
)

// TestShardOfPartition checks the partition function: every inode resolves
// to exactly one shard in range, shard counts dividing the stripe count get
// an equal split, and resolution is a pure function of the id.
func TestShardOfPartition(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		counts := make([]int, n)
		for id := FileID(1); id <= 10_000; id++ {
			s := ShardOf(id, n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", id, n, s)
			}
			if again := ShardOf(id, n); again != s {
				t.Fatalf("ShardOf(%d, %d) unstable: %d then %d", id, n, s, again)
			}
			counts[s]++
		}
		for s, c := range counts {
			if c == 0 {
				t.Fatalf("shards=%d: shard %d owns no inodes", n, s)
			}
		}
	}
}

// TestPlaceShardDeterministic pins placement to (parent, name) alone.
func TestPlaceShardDeterministic(t *testing.T) {
	seen := make([]int, 4)
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("f%d", i)
		p := PlaceShard(RootID, name, 4)
		if p < 0 || p >= 4 {
			t.Fatalf("PlaceShard out of range: %d", p)
		}
		if again := PlaceShard(RootID, name, 4); again != p {
			t.Fatalf("PlaceShard unstable for %q: %d then %d", name, p, again)
		}
		seen[p]++
	}
	for s, c := range seen {
		if c == 0 {
			t.Fatalf("PlaceShard never targets shard %d", s)
		}
	}
	if PlaceShard(RootID, "x", 1) != 0 {
		t.Fatal("single-shard placement must be 0")
	}
}

// shardCluster is n journaled stores forming one sharded namespace, each
// owning a disjoint slice of the data space.
type shardCluster struct {
	stores []*Store
	devs   []*blockdev.Device
	clk    clock.Clock
}

const shardSpan = int64(16 << 20)

// shardAGs gives shard i its own device index, so the shards' data spaces
// are disjoint by construction.
func shardAGs(i int) *alloc.AGSet {
	return alloc.NewUniformAGSet(alloc.RoundRobin, i, shardSpan, 4)
}

func newShardCluster(t *testing.T, n int) *shardCluster {
	t.Helper()
	clk := clock.Real(1)
	c := &shardCluster{clk: clk}
	for i := 0; i < n; i++ {
		dev := blockdev.New(blockdev.Config{Size: 8 << 20, Model: blockdev.ZeroLatency(), Clock: clk})
		t.Cleanup(func() { dev.Close() })
		st := NewStore(Config{
			AGs: shardAGs(i), Journal: NewJournal(dev, 0, 8<<20), Clock: clk,
			Shard: i, ShardCount: n,
		})
		c.devs = append(c.devs, dev)
		c.stores = append(c.stores, st)
	}
	return c
}

// recoverAll rebuilds every shard from its journal — the all-shards-crashed
// scenario.
func (c *shardCluster) recoverAll(t *testing.T) []*Store {
	t.Helper()
	n := len(c.stores)
	out := make([]*Store, n)
	for i := 0; i < n; i++ {
		rec, _, err := Recover(Config{
			AGs: shardAGs(i), Journal: NewJournal(c.devs[i], 0, 8<<20), Clock: c.clk,
			Shard: i, ShardCount: n,
		})
		if err != nil {
			t.Fatalf("shard %d recovery: %v", i, err)
		}
		out[i] = rec
	}
	return out
}

func fsckAll(t *testing.T, stores []*Store, label string) {
	t.Helper()
	for i, s := range stores {
		if rep := s.Fsck(TotalSpace(s.cfg.AGs)); !rep.OK() {
			t.Fatalf("%s: shard %d %s", label, i, rep)
		}
	}
	if probs := FsckCluster(stores); len(probs) != 0 {
		t.Fatalf("%s: cluster fsck: %v", label, probs)
	}
}

// rootShard returns the shard homing RootID.
func rootShard(stores []*Store) *Store {
	return stores[ShardOf(RootID, len(stores))]
}

// pickForeignShard returns a shard index other than home.
func pickForeignShard(n, home int) int {
	return (home + 1) % n
}

// TestCrossShardCreateRemove drives the full two-phase create then remove of
// a file homed away from its parent, checking visibility at every step.
func TestCrossShardCreateRemove(t *testing.T) {
	c := newShardCluster(t, 2)
	ps := rootShard(c.stores)
	pi, _ := ps.Shard()
	ti := pickForeignShard(2, pi)
	ts := c.stores[ti]

	attr, err := ts.CreateDetached(RootID, "f", TypeFile)
	if err != nil {
		t.Fatal(err)
	}
	if ShardOf(attr.ID, 2) != ti {
		t.Fatalf("detached inode %d not owned by shard %d", attr.ID, ti)
	}
	if _, err := ps.Lookup(RootID, "f"); err == nil {
		t.Fatal("file visible before LinkRemote")
	}
	if err := ps.LinkRemote(RootID, "f", attr.ID, TypeFile); err != nil {
		t.Fatal(err)
	}
	if err := ps.LinkRemote(RootID, "f", attr.ID, TypeFile); err != nil {
		t.Fatalf("LinkRemote retry not idempotent: %v", err)
	}
	got, err := ps.Lookup(RootID, "f")
	if err != nil || got.ID != attr.ID {
		t.Fatalf("lookup after link: %+v, %v", got, err)
	}
	if err := ts.NSCommit(attr.ID, NSCreate); err != nil {
		t.Fatal(err)
	}
	if err := ts.NSCommit(attr.ID, NSCreate); err != nil {
		t.Fatalf("NSCommit retry not idempotent: %v", err)
	}
	// Data lives on the home shard.
	lay, err := ts.AllocLayout("c1", attr.ID, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Commit("c1", attr.ID, lay.Extents, 4096, c.clk.Now()); err != nil {
		t.Fatal(err)
	}
	fsckAll(t, c.stores, "after create")

	// Classic remove on the parent shard must refuse the remote child.
	if err := ps.Remove(RootID, "f"); !errors.Is(err, ErrWrongShard) {
		t.Fatalf("classic remove of remote child: %v, want ErrWrongShard", err)
	}
	// Cross-shard remove: prepare on home, unlink on parent, commit on home.
	if err := ts.NSPrepare(attr.ID, NSRemove, TypeFile, RootID, "f", 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := ps.UnlinkRemote(RootID, "f", attr.ID); err != nil {
		t.Fatal(err)
	}
	if err := ps.UnlinkRemote(RootID, "f", attr.ID); err != nil {
		t.Fatalf("UnlinkRemote retry not idempotent: %v", err)
	}
	if err := ts.NSCommit(attr.ID, NSRemove); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Lookup(RootID, "f"); err == nil {
		t.Fatal("file visible after remove")
	}
	if _, err := ts.GetAttr(attr.ID); err == nil {
		t.Fatal("inode survives remove commit")
	}
	fsckAll(t, c.stores, "after remove")
	// All space freed.
	if free := ts.cfg.AGs.FreeBytes(); free != shardSpan {
		t.Fatalf("home shard leaked space: free %d, want %d", free, shardSpan)
	}
}

// TestCrossShardRename drives the two-phase rename of a file between
// directories on different shards, including the home shard's edge flips.
func TestCrossShardRename(t *testing.T) {
	c := newShardCluster(t, 4)
	n := 4
	ps := rootShard(c.stores)
	pi, _ := ps.Shard()

	// A destination directory homed on another shard.
	di := pickForeignShard(n, pi)
	ds := c.stores[di]
	dirAttr, err := ds.CreateDetached(RootID, "d", TypeDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.LinkRemote(RootID, "d", dirAttr.ID, TypeDir); err != nil {
		t.Fatal(err)
	}
	if err := ds.NSCommit(dirAttr.ID, NSCreate); err != nil {
		t.Fatal(err)
	}

	// A file under root, homed on a third shard.
	hi := pickForeignShard(n, di)
	if hi == pi {
		hi = pickForeignShard(n, hi)
	}
	hs := c.stores[hi]
	f, err := hs.CreateDetached(RootID, "f", TypeFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.LinkRemote(RootID, "f", f.ID, TypeFile); err != nil {
		t.Fatal(err)
	}
	if err := hs.NSCommit(f.ID, NSCreate); err != nil {
		t.Fatal(err)
	}
	fsckAll(t, c.stores, "setup")

	// Rename /f → /d/g: src parent shard ps, dst parent shard = ShardOf(d).
	dps := c.stores[ShardOf(dirAttr.ID, n)]
	if err := ps.NSPrepare(f.ID, NSRenameSrc, TypeFile, RootID, "f", 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := dps.NSPrepare(f.ID, NSRenameDst, TypeFile, RootID, "f", dirAttr.ID, "g"); err != nil {
		t.Fatal(err)
	}
	// The reservation blocks a competing create of the same name.
	if _, err := dps.Create(dirAttr.ID, "g", TypeFile); !errors.Is(err, ErrNSConflict) {
		t.Fatalf("create into reserved name: %v, want ErrNSConflict", err)
	}
	if err := ps.NSCommit(f.ID, NSRenameSrc); err != nil {
		t.Fatal(err)
	}
	if err := dps.NSCommit(f.ID, NSRenameDst); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Lookup(RootID, "f"); err == nil {
		t.Fatal("source name survives rename")
	}
	got, err := dps.Lookup(dirAttr.ID, "g")
	if err != nil || got.ID != f.ID {
		t.Fatalf("destination lookup: %+v, %v", got, err)
	}
	fsckAll(t, c.stores, "after rename")
}

// TestNSIntentBlocksConflicts pins the serialization rules: one live intent
// per inode, remove intents block inserts into the dying directory, and
// live intents block classic remove/rename and UnlinkRemote.
func TestNSIntentBlocksConflicts(t *testing.T) {
	c := newShardCluster(t, 2)
	ps := rootShard(c.stores)
	pi, _ := ps.Shard()
	ts := c.stores[pickForeignShard(2, pi)]

	// A remote-homed empty dir under root.
	d, err := ts.CreateDetached(RootID, "d", TypeDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.LinkRemote(RootID, "d", d.ID, TypeDir); err != nil {
		t.Fatal(err)
	}
	if err := ts.NSCommit(d.ID, NSCreate); err != nil {
		t.Fatal(err)
	}

	// Remove intent on the dir blocks creates into it (dir's dirents are on
	// its own home shard).
	if err := ts.NSPrepare(d.ID, NSRemove, TypeDir, RootID, "d", 0, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.Create(d.ID, "child", TypeFile); !errors.Is(err, ErrNSConflict) {
		t.Fatalf("create into removing dir: %v, want ErrNSConflict", err)
	}
	if _, err := ts.CreateDetached(d.ID, "x", TypeFile); err != nil {
		// CreateDetached lands on the child's shard and cannot see the
		// remove intent — only LinkRemote on the dir's shard can.
		t.Fatal(err)
	}
	// A second intent on the same inode conflicts; an identical retry is
	// idempotent.
	if err := ts.NSPrepare(d.ID, NSRemove, TypeDir, RootID, "d", 0, ""); err != nil {
		t.Fatalf("identical NSPrepare retry: %v", err)
	}
	if err := ts.NSPrepare(d.ID, NSRemove, TypeDir, RootID, "other", 0, ""); !errors.Is(err, ErrNSConflict) {
		t.Fatalf("conflicting NSPrepare: %v, want ErrNSConflict", err)
	}
	// UnlinkRemote of an inode under an intent on this shard is blocked.
	if err := ps.NSPrepare(d.ID, NSRenameSrc, TypeDir, RootID, "d", 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := ps.UnlinkRemote(RootID, "d", d.ID); !errors.Is(err, ErrNSConflict) {
		t.Fatalf("unlink under rename intent: %v, want ErrNSConflict", err)
	}
	if err := ps.NSAbort(d.ID, NSRenameSrc); err != nil {
		t.Fatal(err)
	}
	// Now the remove can commit.
	if err := ps.UnlinkRemote(RootID, "d", d.ID); err != nil {
		t.Fatal(err)
	}
	if err := ts.NSCommit(d.ID, NSRemove); err != nil {
		t.Fatal(err)
	}
	// The leaked detached create under the dead dir resolves to an abort.
	if err := ResolveNSIntents(c.stores); err != nil {
		t.Fatal(err)
	}
	fsckAll(t, c.stores, "after resolve")
}

// crossRenameTo runs the rename protocol up to a crash point:
//
//	0: src intent published only
//	1: both intents published
//	2: src committed (dirent deleted), dst intent live
//	3: fully committed
func crossRenameTo(t *testing.T, stores []*Store, file FileID, sp, dp *Store, dstDir FileID, stage int) {
	t.Helper()
	if err := sp.NSPrepare(file, NSRenameSrc, TypeFile, RootID, "f", 0, ""); err != nil {
		t.Fatal(err)
	}
	if stage < 1 {
		return
	}
	if err := dp.NSPrepare(file, NSRenameDst, TypeFile, RootID, "f", dstDir, "g"); err != nil {
		t.Fatal(err)
	}
	if stage < 2 {
		return
	}
	if err := sp.NSCommit(file, NSRenameSrc); err != nil {
		t.Fatal(err)
	}
	if stage < 3 {
		return
	}
	if err := dp.NSCommit(file, NSRenameDst); err != nil {
		t.Fatal(err)
	}
}

// TestCrossShardRenameCrashMatrix enumerates every crash point of the
// two-phase rename — intents on src only, on both, and the window between
// the two commits — crashes *all* shards there, recovers them from their
// journals, resolves, and proves the namespace converged to exactly one of
// the two names: the old one for crashes before the source-dirent delete
// (the commit point), the new one after. Never both, never neither.
func TestCrossShardRenameCrashMatrix(t *testing.T) {
	for stage := 0; stage <= 3; stage++ {
		wantNew := stage >= 2
		t.Run(fmt.Sprintf("stage=%d", stage), func(t *testing.T) {
			c := newShardCluster(t, 4)
			n := 4
			ps := rootShard(c.stores)
			pi, _ := ps.Shard()

			// Dst dir homed off the root shard; file homed off both.
			di := pickForeignShard(n, pi)
			ds := c.stores[di]
			dir, err := ds.CreateDetached(RootID, "d", TypeDir)
			if err != nil {
				t.Fatal(err)
			}
			if err := ps.LinkRemote(RootID, "d", dir.ID, TypeDir); err != nil {
				t.Fatal(err)
			}
			if err := ds.NSCommit(dir.ID, NSCreate); err != nil {
				t.Fatal(err)
			}
			hi := pickForeignShard(n, di)
			if hi == pi {
				hi = pickForeignShard(n, hi)
			}
			hs := c.stores[hi]
			f, err := hs.CreateDetached(RootID, "f", TypeFile)
			if err != nil {
				t.Fatal(err)
			}
			if err := ps.LinkRemote(RootID, "f", f.ID, TypeFile); err != nil {
				t.Fatal(err)
			}
			if err := hs.NSCommit(f.ID, NSCreate); err != nil {
				t.Fatal(err)
			}
			lay, err := hs.AllocLayout("c1", f.ID, 0, 4096)
			if err != nil {
				t.Fatal(err)
			}
			if err := hs.Commit("c1", f.ID, lay.Extents, 4096, c.clk.Now()); err != nil {
				t.Fatal(err)
			}

			dps := c.stores[ShardOf(dir.ID, n)]
			crossRenameTo(t, c.stores, f.ID, ps, dps, dir.ID, stage)

			// Crash every shard, recover from the journals, resolve.
			rec := c.recoverAll(t)
			if err := ResolveNSIntents(rec); err != nil {
				t.Fatal(err)
			}

			rps := rootShard(rec)
			rdps := rec[ShardOf(dir.ID, n)]
			_, errOld := rps.Lookup(RootID, "f")
			gotNew, errNew := rdps.Lookup(dir.ID, "g")
			switch {
			case wantNew && (errNew != nil || gotNew.ID != f.ID):
				t.Fatalf("stage %d: new name missing after recovery: %v", stage, errNew)
			case wantNew && errOld == nil:
				t.Fatal("both names visible after recovery")
			case !wantNew && errOld != nil:
				t.Fatalf("stage %d: old name missing after recovery: %v", stage, errOld)
			case !wantNew && errNew == nil:
				t.Fatal("rename rolled forward before its commit point")
			}
			// The file survived with its data either way.
			rhs := rec[hi]
			if attr, err := rhs.GetAttr(f.ID); err != nil || attr.Size != 4096 {
				t.Fatalf("stage %d: file lost: %+v, %v", stage, attr, err)
			}
			fsckAll(t, rec, fmt.Sprintf("stage %d", stage))
		})
	}
}

// TestCrossShardCreateRemoveCrashPoints does the same for create and remove:
// a crash before the commit point (the dirent insert/delete) rolls back, one
// after rolls forward — and an aborted create releases every byte it held.
func TestCrossShardCreateRemoveCrashPoints(t *testing.T) {
	run := func(t *testing.T, linked bool) {
		c := newShardCluster(t, 2)
		ps := rootShard(c.stores)
		pi, _ := ps.Shard()
		ts := c.stores[pickForeignShard(2, pi)]
		attr, err := ts.CreateDetached(RootID, "f", TypeFile)
		if err != nil {
			t.Fatal(err)
		}
		lay, err := ts.AllocLayout("c1", attr.ID, 0, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if err := ts.Commit("c1", attr.ID, lay.Extents, 4096, c.clk.Now()); err != nil {
			t.Fatal(err)
		}
		if linked {
			if err := ps.LinkRemote(RootID, "f", attr.ID, TypeFile); err != nil {
				t.Fatal(err)
			}
		}
		rec := c.recoverAll(t)
		if err := ResolveNSIntents(rec); err != nil {
			t.Fatal(err)
		}
		rts := rec[pickForeignShard(2, pi)]
		if _, err := rootShard(rec).Lookup(RootID, "f"); (err == nil) != linked {
			t.Fatalf("linked=%v but lookup err=%v", linked, err)
		}
		if _, err := rts.GetAttr(attr.ID); (err == nil) != linked {
			t.Fatalf("linked=%v but inode err=%v", linked, err)
		}
		if !linked {
			if free := rts.cfg.AGs.FreeBytes(); free != shardSpan {
				t.Fatalf("aborted create leaked space: free %d, want %d", free, shardSpan)
			}
		}
		fsckAll(t, rec, "create")
	}
	t.Run("create-before-link", func(t *testing.T) { run(t, false) })
	t.Run("create-after-link", func(t *testing.T) { run(t, true) })

	runRemove := func(t *testing.T, unlinked bool) {
		c := newShardCluster(t, 2)
		ps := rootShard(c.stores)
		pi, _ := ps.Shard()
		ts := c.stores[pickForeignShard(2, pi)]
		attr, err := ts.CreateDetached(RootID, "f", TypeFile)
		if err != nil {
			t.Fatal(err)
		}
		if err := ps.LinkRemote(RootID, "f", attr.ID, TypeFile); err != nil {
			t.Fatal(err)
		}
		if err := ts.NSCommit(attr.ID, NSCreate); err != nil {
			t.Fatal(err)
		}
		if err := ts.NSPrepare(attr.ID, NSRemove, TypeFile, RootID, "f", 0, ""); err != nil {
			t.Fatal(err)
		}
		if unlinked {
			if err := ps.UnlinkRemote(RootID, "f", attr.ID); err != nil {
				t.Fatal(err)
			}
		}
		rec := c.recoverAll(t)
		if err := ResolveNSIntents(rec); err != nil {
			t.Fatal(err)
		}
		rts := rec[pickForeignShard(2, pi)]
		if _, err := rootShard(rec).Lookup(RootID, "f"); (err == nil) == unlinked {
			t.Fatalf("unlinked=%v but lookup err=%v", unlinked, err)
		}
		if _, err := rts.GetAttr(attr.ID); (err == nil) == unlinked {
			t.Fatalf("unlinked=%v but inode err=%v", unlinked, err)
		}
		fsckAll(t, rec, "remove")
	}
	t.Run("remove-before-unlink", func(t *testing.T) { runRemove(t, false) })
	t.Run("remove-after-unlink", func(t *testing.T) { runRemove(t, true) })
}

// TestShardedSnapshotRoundTrip replays a sharded store's snapshot stream
// into a fresh store and checks the cross-shard edges survive, including a
// live intent.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	c := newShardCluster(t, 2)
	ps := rootShard(c.stores)
	pi, _ := ps.Shard()
	ti := pickForeignShard(2, pi)
	ts := c.stores[ti]

	// Graduated cross-shard file with data, plus a still-detached one.
	f, err := ts.CreateDetached(RootID, "f", TypeFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.LinkRemote(RootID, "f", f.ID, TypeFile); err != nil {
		t.Fatal(err)
	}
	if err := ts.NSCommit(f.ID, NSCreate); err != nil {
		t.Fatal(err)
	}
	lay, err := ts.AllocLayout("c1", f.ID, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Commit("c1", f.ID, lay.Extents, 4096, c.clk.Now()); err != nil {
		t.Fatal(err)
	}
	g, err := ts.CreateDetached(RootID, "g", TypeFile)
	if err != nil {
		t.Fatal(err)
	}

	for i, src := range []*Store{ps, ts} {
		idx := []int{pi, ti}[i]
		fresh := NewStore(Config{AGs: shardAGs(idx), Clock: c.clk, Shard: idx, ShardCount: 2})
		for _, rec := range src.Snapshot() {
			if rec.Type == RecAlloc || rec.Type == RecDelegate {
				for _, e := range rec.Extents {
					if err := fresh.cfg.AGs.ReserveSpan(alloc.Span{Dev: int(e.Dev), Off: e.VolOff, Len: e.Len}); err == nil {
						_ = fresh.cfg.AGs.FreeSpan(alloc.Span{Dev: int(e.Dev), Off: e.VolOff, Len: e.Len})
					}
				}
			}
			if err := fresh.applyRecord(rec); err != nil {
				t.Fatalf("shard %d: replay %v: %v", idx, rec.Type, err)
			}
		}
		if i == 1 {
			if attr, err := fresh.GetAttr(f.ID); err != nil || attr.Size != 4096 {
				t.Fatalf("linked inode lost in snapshot: %+v, %v", attr, err)
			}
			if _, err := fresh.GetAttr(g.ID); err != nil {
				t.Fatalf("detached inode lost in snapshot: %v", err)
			}
			if got := len(fresh.NSIntents()); got != 1 {
				t.Fatalf("snapshot carried %d intents, want 1", got)
			}
		} else {
			if got, err := fresh.Lookup(RootID, "f"); err != nil || got.ID != f.ID {
				t.Fatalf("remote dirent lost in snapshot: %+v, %v", got, err)
			}
		}
	}
}

// TestCrossShardRemoveVsRenameRace pins the fix for the remove/rename race:
// the NSRemove intent lives on the child's *home* shard, so a classic rename
// on the parent's shard — which checks only its own intent table — can move
// the dirent between NSPrepare and UnlinkRemote. The commit point must then
// refuse (it never unlinked that entry) so the client aborts; treating the
// absence as "my unlink already committed" would let NSCommit free an inode
// whose relocated dirent is still live.
func TestCrossShardRemoveVsRenameRace(t *testing.T) {
	c := newShardCluster(t, 2)
	ps := rootShard(c.stores)
	pi, _ := ps.Shard()
	ts := c.stores[pickForeignShard(2, pi)]

	f, err := ts.CreateDetached(RootID, "f", TypeFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.LinkRemote(RootID, "f", f.ID, TypeFile); err != nil {
		t.Fatal(err)
	}
	if err := ts.NSCommit(f.ID, NSCreate); err != nil {
		t.Fatal(err)
	}
	lay, err := ts.AllocLayout("c1", f.ID, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Commit("c1", f.ID, lay.Extents, 4096, c.clk.Now()); err != nil {
		t.Fatal(err)
	}

	// Remove prepared on the home shard; the parent shard cannot see it.
	if err := ts.NSPrepare(f.ID, NSRemove, TypeFile, RootID, "f", 0, ""); err != nil {
		t.Fatal(err)
	}
	// The concurrent rename slips in on the parent shard.
	if err := ps.Rename(RootID, "f", RootID, "g"); err != nil {
		t.Fatal(err)
	}
	// The remove's commit point finds the entry gone — but it never
	// executed here, so it must refuse rather than claim success.
	if err := ps.UnlinkRemote(RootID, "f", f.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("UnlinkRemote after rename: %v, want ErrNotFound", err)
	}
	// The client aborts; the file survives under its new name with data.
	if err := ts.NSAbort(f.ID, NSRemove); err != nil {
		t.Fatal(err)
	}
	got, err := ps.Lookup(RootID, "g")
	if err != nil || got.ID != f.ID {
		t.Fatalf("renamed entry lost: %+v, %v", got, err)
	}
	if attr, err := ts.GetAttr(f.ID); err != nil || attr.Size != 4096 {
		t.Fatalf("inode freed under a live dirent: %+v, %v", attr, err)
	}
	fsckAll(t, c.stores, "after aborted remove")
}

// TestUnlinkRemoteExactlyOnce pins the commit-point proof: an entry this
// shard never held is refused with ErrNotFound, an executed unlink stays
// acknowledged across retries — including retries landing after a crash and
// journal recovery of every shard.
func TestUnlinkRemoteExactlyOnce(t *testing.T) {
	c := newShardCluster(t, 2)
	ps := rootShard(c.stores)
	pi, _ := ps.Shard()
	ti := pickForeignShard(2, pi)
	ts := c.stores[ti]

	f, err := ts.CreateDetached(RootID, "f", TypeFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.LinkRemote(RootID, "f", f.ID, TypeFile); err != nil {
		t.Fatal(err)
	}
	if err := ts.NSCommit(f.ID, NSCreate); err != nil {
		t.Fatal(err)
	}
	// A remove of an entry that was never present here must refuse.
	if err := ps.UnlinkRemote(RootID, "ghost", f.ID+64); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unlink of foreign entry: %v, want ErrNotFound", err)
	}
	if err := ts.NSPrepare(f.ID, NSRemove, TypeFile, RootID, "f", 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := ps.UnlinkRemote(RootID, "f", f.ID); err != nil {
		t.Fatal(err)
	}
	// Crash every shard before the client's retry and commit land: the
	// journal must rebuild the executed-commit-point marker.
	rec := c.recoverAll(t)
	rps, rts := rootShard(rec), rec[ti]
	if err := rps.UnlinkRemote(RootID, "f", f.ID); err != nil {
		t.Fatalf("retry after recovery: %v", err)
	}
	if err := rts.NSCommit(f.ID, NSRemove); err != nil {
		t.Fatal(err)
	}
	if _, err := rts.GetAttr(f.ID); err == nil {
		t.Fatal("inode survives committed remove")
	}
	fsckAll(t, rec, "after recovered remove")
}

// TestLinkRemoteRetryDoesNotForkEntry pins the create-side mirror of the
// race: once LinkRemote executed, a delayed retry must not re-insert the
// dirent after a rename moved it — that would leave two entries referencing
// one inode.
func TestLinkRemoteRetryDoesNotForkEntry(t *testing.T) {
	c := newShardCluster(t, 2)
	ps := rootShard(c.stores)
	pi, _ := ps.Shard()
	ts := c.stores[pickForeignShard(2, pi)]

	f, err := ts.CreateDetached(RootID, "f", TypeFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.LinkRemote(RootID, "f", f.ID, TypeFile); err != nil {
		t.Fatal(err)
	}
	if err := ts.NSCommit(f.ID, NSCreate); err != nil {
		t.Fatal(err)
	}
	if err := ps.Rename(RootID, "f", RootID, "g"); err != nil {
		t.Fatal(err)
	}
	if err := ps.LinkRemote(RootID, "f", f.ID, TypeFile); err != nil {
		t.Fatalf("link retry after rename: %v", err)
	}
	if _, err := ps.Lookup(RootID, "f"); err == nil {
		t.Fatal("link retry re-inserted a moved dirent")
	}
	fsckAll(t, c.stores, "after link retry")

	// The marker survives recovery too.
	rec := c.recoverAll(t)
	rps := rootShard(rec)
	if err := rps.LinkRemote(RootID, "f", f.ID, TypeFile); err != nil {
		t.Fatalf("link retry after recovery: %v", err)
	}
	if _, err := rps.Lookup(RootID, "f"); err == nil {
		t.Fatal("recovered link retry re-inserted a moved dirent")
	}
	fsckAll(t, rec, "after recovered link retry")
}

// TestCommitPointMarkersSurviveSnapshot replays a shard's snapshot stream
// into a fresh store and checks the executed-commit-point markers come along:
// a checkpoint between a commit point and its retry must not reopen the
// rename race.
func TestCommitPointMarkersSurviveSnapshot(t *testing.T) {
	c := newShardCluster(t, 2)
	ps := rootShard(c.stores)
	pi, _ := ps.Shard()
	ts := c.stores[pickForeignShard(2, pi)]

	// f: linked, then unlinked by a cross-shard remove (intent still live
	// on the home shard). g: linked, then moved by a rename.
	f, err := ts.CreateDetached(RootID, "f", TypeFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.LinkRemote(RootID, "f", f.ID, TypeFile); err != nil {
		t.Fatal(err)
	}
	if err := ts.NSCommit(f.ID, NSCreate); err != nil {
		t.Fatal(err)
	}
	if err := ts.NSPrepare(f.ID, NSRemove, TypeFile, RootID, "f", 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := ps.UnlinkRemote(RootID, "f", f.ID); err != nil {
		t.Fatal(err)
	}
	g, err := ts.CreateDetached(RootID, "g", TypeFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.LinkRemote(RootID, "g", g.ID, TypeFile); err != nil {
		t.Fatal(err)
	}
	if err := ts.NSCommit(g.ID, NSCreate); err != nil {
		t.Fatal(err)
	}
	if err := ps.Rename(RootID, "g", RootID, "h"); err != nil {
		t.Fatal(err)
	}

	fresh := NewStore(Config{AGs: shardAGs(pi), Clock: c.clk, Shard: pi, ShardCount: 2})
	for _, rec := range ps.Snapshot() {
		if err := fresh.applyRecord(rec); err != nil {
			t.Fatalf("replay %v: %v", rec.Type, err)
		}
	}
	// The executed unlink still reads as executed...
	if err := fresh.UnlinkRemote(RootID, "f", f.ID); err != nil {
		t.Fatalf("unlink marker lost in snapshot: %v", err)
	}
	// ...and the executed link does not re-insert behind the rename.
	if err := fresh.LinkRemote(RootID, "g", g.ID, TypeFile); err != nil {
		t.Fatalf("link marker lost in snapshot: %v", err)
	}
	if _, err := fresh.Lookup(RootID, "g"); err == nil {
		t.Fatal("snapshot-restored link retry re-inserted a moved dirent")
	}
	if got, err := fresh.Lookup(RootID, "h"); err != nil || got.ID != g.ID {
		t.Fatalf("renamed entry lost in snapshot: %+v, %v", got, err)
	}
}
