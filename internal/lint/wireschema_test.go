package lint

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadModuleSchemas extracts the wire schema of every package in the
// enclosing module, returning the schemas, the loaded proto package (for the
// mutation subtest) and the rendered lockfile text.
func loadModuleSchemas(t *testing.T) ([]*MessageSchema, *Package, string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	var schemas []*MessageSchema
	var protoPkg *Package
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		schemas = append(schemas, ExtractWireSchemas(pkg.Fset, pkg.Files, pkg.Info, pkg.Types)...)
		if pkg.Types.Name() == "proto" {
			protoPkg = pkg
		}
	}
	return schemas, protoPkg, RenderWireSchemas(schemas, "v2")
}

// TestWireSchemaGolden is the in-process version of the `redbud-lint
// -wireschema` CI gate plus the mutation check the gate's value rests on.
func TestWireSchemaGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	schemas, protoPkg, rendered := loadModuleSchemas(t)
	if len(schemas) == 0 {
		t.Fatal("no wire schemas extracted from the module")
	}
	if protoPkg == nil {
		t.Fatal("internal/proto not found in module packages")
	}
	goldenBytes, err := os.ReadFile(filepath.Join("testdata", "wire_schema.golden"))
	if err != nil {
		t.Fatalf("reading lockfile: %v (generate with `redbud-lint -wireschema -update`)", err)
	}
	golden := string(goldenBytes)

	// The committed lockfile must match the tree exactly (modulo the header
	// comment block and protocol-version line, which the CLI derives from
	// proto.ProtoLatest — compare the schema lines only so this test does
	// not hard-code the version rendering twice).
	if got, want := schemaLines(rendered), schemaLines(golden); got != want {
		t.Errorf("wire schema drifted from testdata/wire_schema.golden:\n--- lockfile ---\n%s\n--- tree ---\n%s\nRegenerate with `redbud-lint -wireschema -update` (bump proto.ProtoVersion first for wire-visible changes)", want, got)
	}

	// Mutation check: reordering two real fields of proto.CommitReq's
	// encoder must change the rendered schema and no longer match the
	// lockfile — i.e. the gate actually catches layout drift. The AST is
	// mutated in place (types.Info survives statement reordering) and
	// restored afterwards.
	t.Run("mutation-detected", func(t *testing.T) {
		body := marshalBody(t, protoPkg, "CommitReq")
		if len(body.List) < 2 {
			t.Fatalf("CommitReq.MarshalWire has %d statements, need >= 2", len(body.List))
		}
		body.List[0], body.List[1] = body.List[1], body.List[0]
		defer func() { body.List[0], body.List[1] = body.List[1], body.List[0] }()

		mutated := ExtractWireSchemas(protoPkg.Fset, protoPkg.Files, protoPkg.Info, protoPkg.Types)
		line := schemaLineFor(RenderWireSchemas(mutated, "v2"), "redbud/internal/proto.CommitReq")
		if line == "" {
			t.Fatal("CommitReq missing from mutated schema render")
		}
		if goldenLine := schemaLineFor(golden, "redbud/internal/proto.CommitReq"); line == goldenLine {
			t.Errorf("reordered CommitReq fields still render as the committed schema %q — the lockfile gate would miss real drift", goldenLine)
		}
		if !strings.Contains(golden, schemaLineFor(rendered, "redbud/internal/proto.CommitReq")) {
			t.Error("pre-mutation CommitReq line missing from lockfile; golden comparison is vacuous")
		}
	})
}

// schemaLines strips the header (comments, protocol-version, blanks) down to
// the sorted schema lines.
func schemaLines(doc string) string {
	var out []string
	for _, l := range strings.Split(doc, "\n") {
		if l == "" || strings.HasPrefix(l, "#") || strings.HasPrefix(l, "protocol-version") {
			continue
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}

// schemaLineFor returns the lockfile line for the qualified message name.
func schemaLineFor(doc, name string) string {
	for _, l := range strings.Split(doc, "\n") {
		if strings.HasPrefix(l, name+" ") {
			return l
		}
	}
	return ""
}

// marshalBody finds typeName's MarshalWire body in the loaded package.
func marshalBody(t *testing.T, pkg *Package, typeName string) *ast.BlockStmt {
	t.Helper()
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "MarshalWire" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			name, _, _, ok := classifyCodecDecl(pkg.Info, fd)
			if ok && name == typeName {
				return fd.Body
			}
		}
	}
	t.Fatalf("%s.MarshalWire not found", typeName)
	return nil
}
