// Package nfs3 is the NFS-v3-like comparator of Figure 3: a single server
// through which ALL data and metadata flow. Clients keep no cache and issue
// one RPC per operation; WRITEs are unstable (buffered in server memory and
// acknowledged immediately — NFSv3 server-side write-back) and a COMMIT on
// close or fsync flushes them to the server's local disk.
//
// The model preserves the two properties the paper observes: with no
// distributed updates there is no ordering RPC on the client, so scattered
// small-file writes are fast (xcdn-32K, where NFS3 beats original Redbud);
// but every byte crosses the single server's NIC and disk, so large files
// and many clients bottleneck (where Redbud's direct FC data path wins).
package nfs3

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"redbud/internal/alloc"
	"redbud/internal/blockdev"
	"redbud/internal/clock"
	"redbud/internal/fsapi"
	"redbud/internal/netsim"
	"redbud/internal/rpc"
	"redbud/internal/wire"
)

// Operation codes (NFSv3 procedure equivalents).
const (
	opLookup uint16 = iota + 1
	opCreate
	opMkdir
	opRemove
	opGetAttr
	opReadDir
	opWrite // unstable write: server buffers and acks
	opRead
	opCommit // flush buffered writes to stable storage
	opRename
)

// Server errors.
var errStale = errors.New("nfs3: stale file handle")

// sfile is a server-side file: buffered pages plus flushed extents.
type sfile struct {
	id    uint64
	dir   bool
	size  int64
	mtime time.Time
	// data is the server's buffer cache for this file (page-indexed).
	data map[int64][]byte
	// dirty tracks pages not yet on the server disk.
	dirty map[int64]bool
	// disk placement: one span per flush batch.
	spans []alloc.Span
}

const pageSize = 4096

// Server is the NFS server: namespace, buffer cache, local disk.
type Server struct {
	clk  clock.Clock
	disk *blockdev.Device
	ag   *alloc.Group
	rpc  *rpc.Server

	mu      sync.Mutex
	files   map[uint64]*sfile
	dirents map[uint64]map[string]uint64
	nextID  uint64
}

// ServerConfig configures the NFS server.
type ServerConfig struct {
	Disk    *blockdev.Device
	Clock   clock.Clock
	Daemons int
	// OpCost is the per-RPC server CPU cost.
	OpCost time.Duration
}

// NewServer builds the server.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Disk == nil {
		panic("nfs3: nil disk")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real(1)
	}
	if cfg.Daemons <= 0 {
		cfg.Daemons = 8
	}
	s := &Server{
		clk:     cfg.Clock,
		disk:    cfg.Disk,
		ag:      alloc.NewGroup(cfg.Disk.ID(), 0, cfg.Disk.Size()),
		files:   map[uint64]*sfile{1: {id: 1, dir: true, mtime: cfg.Clock.Now()}},
		dirents: map[uint64]map[string]uint64{1: {}},
		nextID:  2,
	}
	s.rpc = rpc.NewServer(rpc.ServerConfig{Handler: s.handle, Daemons: cfg.Daemons, OpCost: cfg.OpCost, Clock: cfg.Clock})
	return s
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l *netsim.Listener) { s.rpc.Serve(l) }

// Close stops the RPC pool.
func (s *Server) Close() { s.rpc.Close() }

type handleReq struct{ ID uint64 }

func (m *handleReq) MarshalWire(b *wire.Buffer)         { b.PutU64(m.ID) }
func (m *handleReq) UnmarshalWire(r *wire.Reader) error { m.ID = r.U64(); return r.Err() }

type nameReq struct {
	Parent uint64
	Name   string
}

func (m *nameReq) MarshalWire(b *wire.Buffer) { b.PutU64(m.Parent); b.PutString(m.Name) }
func (m *nameReq) UnmarshalWire(r *wire.Reader) error {
	m.Parent = r.U64()
	m.Name = r.String()
	return r.Err()
}

type attrResp struct {
	ID   uint64
	Dir  bool
	Size int64
	MT   time.Time
}

func (m *attrResp) MarshalWire(b *wire.Buffer) {
	b.PutU64(m.ID)
	b.PutBool(m.Dir)
	b.PutI64(m.Size)
	b.PutTime(m.MT)
}

func (m *attrResp) UnmarshalWire(r *wire.Reader) error {
	m.ID = r.U64()
	m.Dir = r.Bool()
	m.Size = r.I64()
	m.MT = r.Time()
	return r.Err()
}

type renameReq struct {
	SrcParent uint64
	SrcName   string
	DstParent uint64
	DstName   string
}

func (m *renameReq) MarshalWire(b *wire.Buffer) {
	b.PutU64(m.SrcParent)
	b.PutString(m.SrcName)
	b.PutU64(m.DstParent)
	b.PutString(m.DstName)
}

func (m *renameReq) UnmarshalWire(r *wire.Reader) error {
	m.SrcParent = r.U64()
	m.SrcName = r.String()
	m.DstParent = r.U64()
	m.DstName = r.String()
	return r.Err()
}

type writeReq struct {
	ID   uint64
	Off  int64
	Data []byte
}

func (m *writeReq) MarshalWire(b *wire.Buffer) {
	b.PutU64(m.ID)
	b.PutI64(m.Off)
	b.PutBytes(m.Data)
}

func (m *writeReq) UnmarshalWire(r *wire.Reader) error {
	m.ID = r.U64()
	m.Off = r.I64()
	// Zero-copy: decoded server-side only; writePages copies Data into the
	// file's page cache before the handler returns the pooled frame.
	m.Data = r.BytesRef() //lint:allow wirealias — writePages copies before the handler returns
	return r.Err()
}

type readReq struct {
	ID  uint64
	Off int64
	N   int64
}

func (m *readReq) MarshalWire(b *wire.Buffer) {
	b.PutU64(m.ID)
	b.PutI64(m.Off)
	b.PutI64(m.N)
}

func (m *readReq) UnmarshalWire(r *wire.Reader) error {
	m.ID = r.U64()
	m.Off = r.I64()
	m.N = r.I64()
	return r.Err()
}

type dataResp struct{ Data []byte }

func (m *dataResp) MarshalWire(b *wire.Buffer) { b.PutBytes(m.Data) }

// UnmarshalWire must copy: decoded client-side, Data escapes to the reader
// while rpc.Client recycles the response frame right after wire.Decode.
func (m *dataResp) UnmarshalWire(r *wire.Reader) error { m.Data = r.Bytes(); return r.Err() }

type readDirResp struct {
	Names []string
	Dirs  []bool
}

func (m *readDirResp) MarshalWire(b *wire.Buffer) {
	b.PutU32(uint32(len(m.Names)))
	for i := range m.Names {
		b.PutString(m.Names[i])
		b.PutBool(m.Dirs[i])
	}
}

func (m *readDirResp) UnmarshalWire(r *wire.Reader) error {
	n := int(r.U32())
	for i := 0; i < n && r.Err() == nil; i++ {
		m.Names = append(m.Names, r.String())
		m.Dirs = append(m.Dirs, r.Bool())
	}
	return r.Err()
}

// handle dispatches one RPC.
func (s *Server) handle(op uint16, body []byte) ([]byte, error) {
	switch op {
	case opLookup:
		var req nameReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		id, ok := s.dirents[req.Parent][req.Name]
		if !ok {
			return nil, fmt.Errorf("nfs3: %q not found", req.Name)
		}
		f := s.files[id]
		return wire.Encode(&attrResp{ID: id, Dir: f.dir, Size: f.size, MT: f.mtime}), nil

	case opCreate, opMkdir:
		var req nameReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		dir, ok := s.dirents[req.Parent]
		if !ok {
			return nil, errStale
		}
		if _, dup := dir[req.Name]; dup {
			return nil, fmt.Errorf("nfs3: %q already exists", req.Name)
		}
		id := s.nextID
		s.nextID++
		f := &sfile{id: id, dir: op == opMkdir, mtime: s.clk.Now(), data: map[int64][]byte{}, dirty: map[int64]bool{}}
		s.files[id] = f
		dir[req.Name] = id
		if f.dir {
			s.dirents[id] = map[string]uint64{}
		}
		return wire.Encode(&attrResp{ID: id, Dir: f.dir, MT: f.mtime}), nil

	case opRemove:
		var req nameReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		dir, ok := s.dirents[req.Parent]
		if !ok {
			return nil, errStale
		}
		id, ok := dir[req.Name]
		if !ok {
			return nil, fmt.Errorf("nfs3: %q not found", req.Name)
		}
		f := s.files[id]
		if f.dir && len(s.dirents[id]) > 0 {
			return nil, fmt.Errorf("nfs3: %q not empty", req.Name)
		}
		delete(dir, req.Name)
		for _, sp := range f.spans {
			_ = s.ag.FreeSpan(sp.Off, sp.Len)
		}
		delete(s.files, id)
		delete(s.dirents, id)
		return nil, nil

	case opGetAttr:
		var req handleReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		f, ok := s.files[req.ID]
		if !ok {
			return nil, errStale
		}
		return wire.Encode(&attrResp{ID: f.id, Dir: f.dir, Size: f.size, MT: f.mtime}), nil

	case opReadDir:
		var req handleReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		dir, ok := s.dirents[req.ID]
		if !ok {
			return nil, errStale
		}
		var resp readDirResp
		for name, id := range dir {
			resp.Names = append(resp.Names, name)
			resp.Dirs = append(resp.Dirs, s.files[id].dir)
		}
		return wire.Encode(&resp), nil

	case opWrite:
		var req writeReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		f, ok := s.files[req.ID]
		if !ok || f.dir {
			return nil, errStale
		}
		// Unstable write: buffer in server memory, ack immediately.
		writePages(f, req.Data, req.Off)
		if end := req.Off + int64(len(req.Data)); end > f.size {
			f.size = end
		}
		f.mtime = s.clk.Now()
		return nil, nil

	case opRead:
		var req readReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		s.mu.Lock()
		f, ok := s.files[req.ID]
		if !ok || f.dir {
			s.mu.Unlock()
			return nil, errStale
		}
		if req.Off >= f.size {
			s.mu.Unlock()
			return wire.Encode(&dataResp{}), nil
		}
		n := req.N
		if req.Off+n > f.size {
			n = f.size - req.Off
		}
		out := make([]byte, n)
		readPages(f, out, req.Off)
		s.mu.Unlock()
		return wire.Encode(&dataResp{Data: out}), nil

	case opCommit:
		var req handleReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		return nil, s.commit(req.ID)

	case opRename:
		var req renameReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		src, ok := s.dirents[req.SrcParent]
		if !ok {
			return nil, errStale
		}
		id, ok := src[req.SrcName]
		if !ok {
			return nil, fmt.Errorf("nfs3: %q not found", req.SrcName)
		}
		dst, ok := s.dirents[req.DstParent]
		if !ok {
			return nil, errStale
		}
		if _, dup := dst[req.DstName]; dup {
			return nil, fmt.Errorf("nfs3: %q already exists", req.DstName)
		}
		delete(src, req.SrcName)
		dst[req.DstName] = id
		return nil, nil
	}
	return nil, fmt.Errorf("nfs3: unknown op %d", op)
}

// commit flushes a file's dirty pages to the server disk as one contiguous
// span per batch.
func (s *Server) commit(id uint64) error {
	s.mu.Lock()
	f, ok := s.files[id]
	if !ok {
		s.mu.Unlock()
		return errStale
	}
	var pages []int64
	for pg := range f.dirty {
		pages = append(pages, pg)
	}
	if len(pages) == 0 {
		s.mu.Unlock()
		return nil
	}
	buf := make([]byte, 0, len(pages)*pageSize)
	for _, pg := range pages {
		buf = append(buf, f.data[pg]...)
		delete(f.dirty, pg)
	}
	sp, err := s.ag.Alloc(int64(len(buf)), -1)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	f.spans = append(f.spans, alloc.Span{Dev: s.disk.ID(), Off: sp.Off, Len: sp.Len})
	s.mu.Unlock()
	return s.disk.Write(sp.Off, buf)
}

func writePages(f *sfile, p []byte, off int64) {
	for len(p) > 0 {
		pg := off / pageSize
		in := off - pg*pageSize
		n := pageSize - in
		if int64(len(p)) < n {
			n = int64(len(p))
		}
		page := f.data[pg]
		if page == nil {
			page = make([]byte, pageSize)
			f.data[pg] = page
		}
		copy(page[in:in+n], p[:n])
		f.dirty[pg] = true
		p = p[n:]
		off += n
	}
}

func readPages(f *sfile, p []byte, off int64) {
	for len(p) > 0 {
		pg := off / pageSize
		in := off - pg*pageSize
		n := pageSize - in
		if int64(len(p)) < n {
			n = int64(len(p))
		}
		if page := f.data[pg]; page != nil {
			copy(p[:n], page[in:in+n])
		} else {
			for i := int64(0); i < n; i++ {
				p[i] = 0
			}
		}
		p = p[n:]
		off += n
	}
}

// ---------------------------------------------------------------------------
// Client

// Client is an NFS3 mount implementing fsapi.FileSystem.
type Client struct {
	rpcc *rpc.Client
	clk  clock.Clock

	mu     sync.Mutex
	closed bool
}

var _ fsapi.FileSystem = (*Client)(nil)

// NewClient mounts via an established connection. The client owns the RPC
// connection.
func NewClient(conn netsim.Conn, clk clock.Clock) *Client {
	if clk == nil {
		clk = clock.Real(1)
	}
	return &Client{rpcc: rpc.NewClient(conn, clk), clk: clk}
}

// resolve walks a path server-side component by component (NFS has no
// server-side path walk; each component is a LOOKUP).
func (c *Client) resolve(path string) (attrResp, error) {
	cur := attrResp{ID: 1, Dir: true}
	for _, name := range fsapi.SplitPath(path) {
		var next attrResp
		if err := c.rpcc.Call(opLookup, &nameReq{Parent: cur.ID, Name: name}, &next); err != nil {
			return attrResp{}, mapErr(err)
		}
		cur = next
	}
	return cur, nil
}

func (c *Client) resolveParent(path string) (uint64, string, error) {
	parts := fsapi.SplitPath(path)
	if len(parts) == 0 {
		return 0, "", fmt.Errorf("nfs3: invalid path %q", path)
	}
	parent := uint64(1)
	if len(parts) > 1 {
		dirPath := "/"
		for _, p := range parts[:len(parts)-1] {
			dirPath += p + "/"
		}
		a, err := c.resolve(dirPath)
		if err != nil {
			return 0, "", err
		}
		parent = a.ID
	}
	return parent, parts[len(parts)-1], nil
}

func mapErr(err error) error {
	var re *rpc.RemoteError
	if errors.As(err, &re) {
		switch {
		case contains(re.Message, "not found"):
			return fmt.Errorf("%w: %s", fsapi.ErrNotExist, re.Message)
		case contains(re.Message, "already exists"):
			return fmt.Errorf("%w: %s", fsapi.ErrExist, re.Message)
		}
	}
	return err
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Create makes and opens a file.
func (c *Client) Create(path string) (fsapi.File, error) {
	parent, leaf, err := c.resolveParent(path)
	if err != nil {
		return nil, err
	}
	var a attrResp
	if err := c.rpcc.Call(opCreate, &nameReq{Parent: parent, Name: leaf}, &a); err != nil {
		return nil, mapErr(err)
	}
	return &file{c: c, id: a.ID, size: 0}, nil
}

// Open opens an existing file.
func (c *Client) Open(path string) (fsapi.File, error) {
	a, err := c.resolve(path)
	if err != nil {
		return nil, err
	}
	if a.Dir {
		return nil, fmt.Errorf("%w: %s", fsapi.ErrIsDir, path)
	}
	return &file{c: c, id: a.ID, size: a.Size}, nil
}

// Mkdir creates a directory.
func (c *Client) Mkdir(path string) error {
	parent, leaf, err := c.resolveParent(path)
	if err != nil {
		return err
	}
	var a attrResp
	return mapErr(c.rpcc.Call(opMkdir, &nameReq{Parent: parent, Name: leaf}, &a))
}

// Remove unlinks a path.
func (c *Client) Remove(path string) error {
	parent, leaf, err := c.resolveParent(path)
	if err != nil {
		return err
	}
	return mapErr(c.rpcc.Call(opRemove, &nameReq{Parent: parent, Name: leaf}, nil))
}

// Rename moves a directory entry.
func (c *Client) Rename(oldPath, newPath string) error {
	srcParent, srcLeaf, err := c.resolveParent(oldPath)
	if err != nil {
		return err
	}
	dstParent, dstLeaf, err := c.resolveParent(newPath)
	if err != nil {
		return err
	}
	return mapErr(c.rpcc.Call(opRename, &renameReq{
		SrcParent: srcParent, SrcName: srcLeaf,
		DstParent: dstParent, DstName: dstLeaf,
	}, nil))
}

// Stat describes a path.
func (c *Client) Stat(path string) (fsapi.Info, error) {
	a, err := c.resolve(path)
	if err != nil {
		return fsapi.Info{}, err
	}
	parts := fsapi.SplitPath(path)
	name := "/"
	if len(parts) > 0 {
		name = parts[len(parts)-1]
	}
	return fsapi.Info{Name: name, Size: a.Size, Dir: a.Dir, MTime: a.MT}, nil
}

// ReadDir lists a directory.
func (c *Client) ReadDir(path string) ([]fsapi.Info, error) {
	a, err := c.resolve(path)
	if err != nil {
		return nil, err
	}
	var resp readDirResp
	if err := c.rpcc.Call(opReadDir, &handleReq{ID: a.ID}, &resp); err != nil {
		return nil, mapErr(err)
	}
	out := make([]fsapi.Info, 0, len(resp.Names))
	for i := range resp.Names {
		out = append(out, fsapi.Info{Name: resp.Names[i], Dir: resp.Dirs[i]})
	}
	return out, nil
}

// Close unmounts.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fsapi.ErrClosed
	}
	c.closed = true
	return c.rpcc.Close()
}

// RPCs returns the number of RPCs issued (harness metric).
func (c *Client) RPCs() int64 { return c.rpcc.Calls() }

// file is an open NFS file.
type file struct {
	c    *Client
	id   uint64
	mu   sync.Mutex
	size int64
}

func (f *file) WriteAt(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if err := f.c.rpcc.Call(opWrite, &writeReq{ID: f.id, Off: off, Data: p}, nil); err != nil {
		return 0, mapErr(err)
	}
	f.mu.Lock()
	if end := off + int64(len(p)); end > f.size {
		f.size = end
	}
	f.mu.Unlock()
	return len(p), nil
}

func (f *file) ReadAt(p []byte, off int64) (int, error) {
	var resp dataResp
	if err := f.c.rpcc.Call(opRead, &readReq{ID: f.id, Off: off, N: int64(len(p))}, &resp); err != nil {
		return 0, mapErr(err)
	}
	copy(p, resp.Data)
	return len(resp.Data), nil
}

func (f *file) Append(p []byte) (int64, error) {
	f.mu.Lock()
	off := f.size
	f.size = off + int64(len(p))
	f.mu.Unlock()
	if _, err := f.WriteAt(p, off); err != nil {
		return 0, err
	}
	return off, nil
}

func (f *file) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

func (f *file) Sync() error {
	return mapErr(f.c.rpcc.Call(opCommit, &handleReq{ID: f.id}, nil))
}

// Close sends COMMIT: NFSv3 close-to-open consistency flushes on close.
func (f *file) Close() error { return f.Sync() }
