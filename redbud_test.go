package redbud

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func fastCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	cfg.FastDevices = true
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 1
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestPublicQuickstartFlow(t *testing.T) {
	c := fastCluster(t, Config{Clients: 2, Mode: DelayedCommit, SpaceDelegation: 16 << 20})
	fs := c.Mount(0)
	f, err := fs.Create("/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello, redbud")
	if _, err := f.WriteAt(msg, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	c.Drain()
	// The second client sees the committed file.
	g, err := c.Mount(1).Open("/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if n, err := g.ReadAt(got, 0); err != nil || n != len(msg) {
		t.Fatalf("read = %d, %v", n, err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("cross-mount mismatch")
	}
	st := c.Stats()
	if st.BytesWritten == 0 || st.RPCs == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSyncCommitMode(t *testing.T) {
	c := fastCluster(t, Config{Mode: SyncCommit})
	fs := c.Mount(0)
	f, err := fs.Create("/sync.dat")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("durable"), 0); err != nil {
		t.Fatal(err)
	}
	// Sync mode: committed without any drain.
	info, err := fs.Stat("/sync.dat")
	if err != nil || info.Size != 7 {
		t.Fatalf("stat = %+v, %v", info, err)
	}
}

func TestErrorsExported(t *testing.T) {
	c := fastCluster(t, Config{})
	if _, err := c.Mount(0).Open("/none"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadTimeScaleRejected(t *testing.T) {
	if _, err := New(Config{TimeScale: 2}); err == nil {
		t.Fatal("TimeScale 2 accepted")
	}
}

// TestShardedClusterFlow drives a 4-shard cluster through the public API:
// directories and files land on different shards (32 names make that a
// statistical certainty), cross-shard creates run the two-phase intent
// protocol under the hood, and a second mount reads every byte back through
// its own shard routing. FileLayout must route the final lookup to the
// file's home shard.
func TestShardedClusterFlow(t *testing.T) {
	c := fastCluster(t, Config{Clients: 2, Mode: DelayedCommit, Shards: 4})
	fs := c.Mount(0)
	msg := []byte("sharded payload")
	for i := 0; i < 8; i++ {
		dir := fmt.Sprintf("/d%d", i)
		if err := fs.Mkdir(dir); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 4; j++ {
			f, err := fs.Create(fmt.Sprintf("%s/f%d", dir, j))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt(msg, 0); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.Drain()
	got := make([]byte, len(msg))
	for i := 0; i < 8; i++ {
		for j := 0; j < 4; j++ {
			path := fmt.Sprintf("/d%d/f%d", i, j)
			g, err := c.Mount(1).Open(path)
			if err != nil {
				t.Fatal(err)
			}
			if n, err := g.ReadAt(got, 0); err != nil || n != len(msg) {
				t.Fatalf("%s: read = %d, %v", path, n, err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatalf("%s: cross-mount mismatch", path)
			}
			if err := g.Close(); err != nil {
				t.Fatal(err)
			}
			lay, err := c.FileLayout(path, 0, int64(len(msg)), 0)
			if err != nil {
				t.Fatalf("%s: layout: %v", path, err)
			}
			if len(lay.Extents) == 0 {
				t.Fatalf("%s: committed file has no extents", path)
			}
		}
	}
}

func TestShardsRejectDelegation(t *testing.T) {
	if _, err := New(Config{Shards: 2, SpaceDelegation: 16 << 20}); err == nil {
		t.Fatal("Shards with SpaceDelegation accepted")
	}
}

func TestClientStatsAccessible(t *testing.T) {
	c := fastCluster(t, Config{Mode: DelayedCommit, SpaceDelegation: 1 << 20})
	fs := c.Mount(0)
	for i := 0; i < 5; i++ {
		f, err := fs.Create(fmt.Sprintf("/f%d", i))
		if err != nil {
			t.Fatal(err)
		}
		f.WriteAt([]byte("x"), 0)
		f.Close()
	}
	c.Drain()
	st := c.Client(0).Stats()
	if st.Creates != 5 || st.CommitsSent == 0 || st.LocalAllocs != 5 {
		t.Fatalf("client stats = %+v", st)
	}
}
