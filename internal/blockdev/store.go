package blockdev

import (
	"sort"
	"sync"
)

// pageSize is the granularity of the in-memory backing store. It is an
// implementation detail of the simulator, unrelated to the file-system page
// size.
const pageSize = 4096

// pageStore is the byte-addressable backing store of a simulated device.
// Unwritten bytes read as zero.
type pageStore struct {
	mu    sync.RWMutex
	pages map[int64][]byte // page index -> pageSize bytes
}

func newPageStore() *pageStore { return &pageStore{pages: make(map[int64][]byte)} }

func (s *pageStore) writeAt(p []byte, off int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(p) > 0 {
		idx := off / pageSize
		in := off - idx*pageSize
		n := pageSize - in
		if int64(len(p)) < n {
			n = int64(len(p))
		}
		pg := s.pages[idx]
		if pg == nil {
			pg = make([]byte, pageSize)
			s.pages[idx] = pg
		}
		copy(pg[in:in+n], p[:n])
		p = p[n:]
		off += n
	}
}

func (s *pageStore) readAt(p []byte, off int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for len(p) > 0 {
		idx := off / pageSize
		in := off - idx*pageSize
		n := pageSize - in
		if int64(len(p)) < n {
			n = int64(len(p))
		}
		if pg := s.pages[idx]; pg != nil {
			copy(p[:n], pg[in:in+n])
		} else {
			for i := int64(0); i < n; i++ {
				p[i] = 0
			}
		}
		p = p[n:]
		off += n
	}
}

// interval is a half-open byte range [start, end).
type interval struct{ start, end int64 }

// intervalSet is a sorted, coalesced set of non-overlapping intervals. It
// tracks which byte ranges of a device are durable, so tests and the MDS can
// assert the ordered-write invariant ("no committed extent without durable
// data").
type intervalSet struct {
	mu sync.RWMutex
	iv []interval // sorted by start, non-overlapping, non-adjacent
}

// add inserts [start, end) into the set, coalescing neighbours.
func (s *intervalSet) add(start, end int64) {
	if end <= start {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Find the first interval whose end >= start (candidate for merge).
	i := sort.Search(len(s.iv), func(i int) bool { return s.iv[i].end >= start })
	j := i
	for j < len(s.iv) && s.iv[j].start <= end {
		if s.iv[j].start < start {
			start = s.iv[j].start
		}
		if s.iv[j].end > end {
			end = s.iv[j].end
		}
		j++
	}
	out := make([]interval, 0, len(s.iv)-(j-i)+1)
	out = append(out, s.iv[:i]...)
	out = append(out, interval{start, end})
	out = append(out, s.iv[j:]...)
	s.iv = out
}

// contains reports whether [start, end) is fully covered.
func (s *intervalSet) contains(start, end int64) bool {
	if end <= start {
		return true
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	i := sort.Search(len(s.iv), func(i int) bool { return s.iv[i].end > start })
	return i < len(s.iv) && s.iv[i].start <= start && s.iv[i].end >= end
}

// count returns the number of disjoint intervals (for tests).
func (s *intervalSet) count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.iv)
}

// clear drops all intervals.
func (s *intervalSet) clear() {
	s.mu.Lock()
	s.iv = nil
	s.mu.Unlock()
}
