package debughttp

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"redbud/internal/bench"
	"redbud/internal/obs"
	"redbud/internal/obs/agg"
)

func startTestServer(t *testing.T) (*Server, *obs.Registry, *obs.Tracer) {
	t.Helper()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(16)
	s, err := Start(Config{Addr: "127.0.0.1:0", Registry: reg, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, reg, tr
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoints(t *testing.T) {
	s, reg, _ := startTestServer(t)
	reg.NewCounter("redbud_test_ops_total", "ops", obs.Labels{"who": "me"}).Add(9)

	code, body := get(t, "http://"+s.Addr()+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE redbud_test_ops_total counter",
		`redbud_test_ops_total{who="me"} 9`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, "http://"+s.Addr()+"/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json status %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json does not parse: %v", err)
	}
	if m, ok := snap.Get("redbud_test_ops_total"); !ok || m.Value != 9 {
		t.Fatalf("/metrics.json content: %+v", snap)
	}
}

func TestTraceEndpoints(t *testing.T) {
	s, _, tr := startTestServer(t)
	base := time.Unix(5, 0).UTC()
	for i := 0; i < 5; i++ {
		tr.Record("trk", obs.SpanCommitRPC, uint64(i+1), base, base.Add(time.Millisecond))
	}

	code, body := get(t, "http://"+s.Addr()+"/debug/trace?n=2")
	if code != 200 {
		t.Fatalf("/debug/trace status %d", code)
	}
	var dump struct {
		Total   int64      `json:"total"`
		Dropped int64      `json:"dropped"`
		Spans   []obs.Span `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/debug/trace does not parse: %v", err)
	}
	if dump.Total != 5 || len(dump.Spans) != 2 {
		t.Fatalf("trace dump = total %d, %d spans; want 5, 2", dump.Total, len(dump.Spans))
	}
	// ?n= keeps the newest spans.
	if dump.Spans[1].CommitID != 5 {
		t.Fatalf("newest span commit = %d, want 5", dump.Spans[1].CommitID)
	}

	code, body = get(t, "http://"+s.Addr()+"/debug/trace/perfetto")
	if code != 200 {
		t.Fatalf("/debug/trace/perfetto status %d", code)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("perfetto export does not parse: %v", err)
	}
	if len(doc.TraceEvents) != 6 { // 5 spans + 1 thread_name
		t.Fatalf("perfetto events = %d, want 6", len(doc.TraceEvents))
	}
}

func TestIndexHealthzAndPprof(t *testing.T) {
	s, _, _ := startTestServer(t)
	if code, body := get(t, "http://"+s.Addr()+"/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d %q", code, body)
	}
	if code, body := get(t, "http://"+s.Addr()+"/healthz"); code != 200 || !strings.Contains(body, "ok uptime=") {
		t.Fatalf("healthz: %d %q", code, body)
	}
	if code, _ := get(t, "http://"+s.Addr()+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof cmdline status %d", code)
	}
	if code, _ := get(t, "http://"+s.Addr()+"/nope"); code != 404 {
		t.Fatalf("unknown path status %d, want 404", code)
	}
}

func TestNilBackendsServeEmpty(t *testing.T) {
	s, err := Start(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if code, _ := get(t, "http://"+s.Addr()+"/metrics"); code != 200 {
		t.Fatalf("/metrics with nil registry: %d", code)
	}
	code, body := get(t, "http://"+s.Addr()+"/debug/trace")
	if code != 200 {
		t.Fatalf("/debug/trace with nil tracer: %d", code)
	}
	if !strings.Contains(body, `"total": 0`) {
		t.Fatalf("nil tracer dump: %s", body)
	}
}

// clusterJSON mirrors the /cluster/metrics.json payload shape for decoding.
type clusterJSON struct {
	Shards []struct {
		Shard   string       `json:"shard"`
		Err     string       `json:"err"`
		Metrics obs.Snapshot `json:"metrics"`
	} `json:"shards"`
	Merged obs.Snapshot `json:"merged"`
	Alerts []agg.Alert  `json:"alerts"`
	Events []agg.Event  `json:"events"`
}

func TestClusterEndpoints(t *testing.T) {
	mk := func(v int64) *obs.Registry {
		r := obs.NewRegistry()
		r.NewCounter("redbud_ops_total", "ops", nil).Add(v)
		return r
	}
	coll := agg.New(agg.RegistrySource("mds0", mk(3)), agg.RegistrySource("mds1", mk(4)))
	slo := agg.NewEngine([]agg.Rule{{Name: "ops-high", Metric: "redbud_ops_total", Field: agg.FieldValue, Op: agg.GT, Threshold: 5}})
	s, err := Start(Config{Addr: "127.0.0.1:0", Collector: coll, SLO: slo})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	code, body := get(t, "http://"+s.Addr()+"/cluster/metrics")
	if code != 200 {
		t.Fatalf("/cluster/metrics status %d", code)
	}
	// The aggregate and its per-shard breakdown sit side by side.
	for _, want := range []string{
		"redbud_ops_total 7",
		`redbud_ops_total{shard="mds0"} 3`,
		`redbud_ops_total{shard="mds1"} 4`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/cluster/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, "http://"+s.Addr()+"/cluster/metrics.json")
	if code != 200 {
		t.Fatalf("/cluster/metrics.json status %d", code)
	}
	var d clusterJSON
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatalf("/cluster/metrics.json does not parse: %v", err)
	}
	if len(d.Shards) != 2 || d.Shards[0].Shard != "mds0" || d.Shards[1].Shard != "mds1" {
		t.Fatalf("shards: %+v", d.Shards)
	}
	if m, ok := d.Merged.Get("redbud_ops_total"); !ok || m.Value != 7 {
		t.Fatalf("merged counter: %+v", d.Merged)
	}
	// 7 > 5: the rule fired on this very collection, and the transition that
	// got it there is in the log.
	if len(d.Alerts) != 1 || d.Alerts[0].State != agg.StateFiring {
		t.Fatalf("alerts: %+v", d.Alerts)
	}
	if len(d.Events) != 1 || d.Events[0].To != "firing" {
		t.Fatalf("events: %+v", d.Events)
	}
}

func TestClusterEndpointsWithoutCollector(t *testing.T) {
	s, _, _ := startTestServer(t)
	if code, _ := get(t, "http://"+s.Addr()+"/cluster/metrics"); code != 404 {
		t.Fatalf("/cluster/metrics without a collector: %d, want 404", code)
	}
	if code, _ := get(t, "http://"+s.Addr()+"/cluster/metrics.json"); code != 404 {
		t.Fatalf("/cluster/metrics.json without a collector: %d, want 404", code)
	}
}

// TestFourShardBenchCluster is the end-to-end observability check: a 4-shard
// bench cluster under real workload serves its whole debug surface — local
// metrics, the shard-tagged cluster aggregate with silent SLOs, and the
// stitched span ring — through one debughttp server.
func TestFourShardBenchCluster(t *testing.T) {
	opt := bench.TestOptions()
	opt.Shards = 4
	opt.SpanTrace = true
	c := bench.Build(bench.SysRedbudDC, opt)
	defer c.Close()

	fs := c.Mounts[0]
	data := make([]byte, 4<<10)
	for i := 0; i < 4; i++ {
		dir := "/d" + string(rune('0'+i))
		if err := fs.Mkdir(dir); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 2; j++ {
			f, err := fs.Create(dir + "/f" + string(rune('0'+j)))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt(data, 0); err != nil {
				t.Fatal(err)
			}
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Renames between directories on different shards run the cross-shard
	// saga, so the span ring carries multi-process trees.
	if err := fs.Rename("/d0/f0", "/d1/r0"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/d2/f1", "/d3/r1"); err != nil {
		t.Fatal(err)
	}
	c.Drain()

	slo := agg.NewEngine(agg.DefaultRules())
	s, err := Start(Config{
		Addr: "127.0.0.1:0", Registry: c.Registry, Tracer: c.Tracer,
		Collector: c.Collector, SLO: slo,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if code, body := get(t, "http://"+s.Addr()+"/metrics"); code != 200 || !strings.Contains(body, "redbud_") {
		t.Fatalf("/metrics: %d", code)
	}

	code, body := get(t, "http://"+s.Addr()+"/cluster/metrics")
	if code != 200 {
		t.Fatalf("/cluster/metrics status %d", code)
	}
	for i := 0; i < 4; i++ {
		if want := `shard="mds` + string(rune('0'+i)) + `"`; !strings.Contains(body, want) {
			t.Errorf("/cluster/metrics missing %s series", want)
		}
	}
	if !strings.Contains(body, `shard="clients"`) {
		t.Error("/cluster/metrics missing the client-side series")
	}

	code, body = get(t, "http://"+s.Addr()+"/cluster/metrics.json")
	if code != 200 {
		t.Fatalf("/cluster/metrics.json status %d", code)
	}
	var d clusterJSON
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatalf("/cluster/metrics.json does not parse: %v", err)
	}
	if len(d.Shards) != 5 { // 4 MDS shards + the clients source
		t.Fatalf("cluster sources = %d, want 5", len(d.Shards))
	}
	for _, sh := range d.Shards {
		if sh.Err != "" {
			t.Errorf("shard %s scrape failed: %s", sh.Shard, sh.Err)
		}
		if len(sh.Metrics.Metrics) == 0 {
			t.Errorf("shard %s snapshot is empty", sh.Shard)
		}
	}
	if m, ok := d.Merged.Get("redbud_mds_commit_latency_seconds"); !ok || m.Hist == nil || m.Hist.Count == 0 {
		t.Fatalf("merged commit-latency histogram carries no observations: %+v", m)
	}
	// A fault-free run keeps every stock SLO silent.
	for _, a := range d.Alerts {
		if a.State != agg.StateInactive {
			t.Errorf("alert %s is %v on a fault-free run (value %g)", a.Rule.Name, a.State, a.Value)
		}
	}

	code, body = get(t, "http://"+s.Addr()+"/debug/trace/perfetto")
	if code != 200 {
		t.Fatalf("/debug/trace/perfetto status %d", code)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("perfetto export does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("perfetto export is empty despite SpanTrace")
	}
	for _, want := range []string{obs.SpanMDSCommit, obs.SpanNSRename} {
		if !strings.Contains(body, want) {
			t.Errorf("trace ring missing %q spans", want)
		}
	}
}
