package bench

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"redbud/internal/clock"
	"redbud/internal/fsapi"
	"redbud/internal/iotrace"
	"redbud/internal/stats"
	"redbud/internal/workload"
)

// ---------------------------------------------------------------------------
// Figure 3: throughput of the four systems on the five workloads,
// normalized to original Redbud.

// Fig3Row is one workload's results across systems.
type Fig3Row struct {
	Workload string
	Ops      map[System]float64 // ops per virtual second
	Norm     map[System]float64 // normalized to SysRedbud
}

// fig3Systems are the four configurations of Figure 3. The delayed-commit
// entry is deployed as the paper deploys it: with space delegation.
var fig3Systems = []System{SysPVFS2, SysNFS3, SysRedbud, SysRedbudDCSD}

// fig3Specs returns the workloads of Figure 3.
func fig3Specs(opt Options) []workload.Spec {
	return []workload.Spec{
		workload.Fileserver(opt.Seed).Scale(opt.SizeFactor),
		workload.Varmail(opt.Seed).Scale(opt.SizeFactor),
		workload.Webproxy(opt.Seed).Scale(opt.SizeFactor),
		workload.Xcdn(32<<10, opt.Seed).Scale(opt.SizeFactor),
		workload.Xcdn(1<<20, opt.Seed).Scale(opt.SizeFactor),
	}
}

// Fig3 regenerates the performance-comparison figure.
func Fig3(opt Options) ([]Fig3Row, error) {
	specs := fig3Specs(opt)
	rows := make([]Fig3Row, 0, len(specs)+1)
	for _, spec := range specs {
		row := Fig3Row{Workload: spec.Name, Ops: map[System]float64{}, Norm: map[System]float64{}}
		for _, sys := range fig3Systems {
			c := Build(sys, opt)
			res, err := RunDistributed(c, spec)
			c.Close()
			if err != nil {
				return nil, fmt.Errorf("fig3 %s on %s: %w", spec.Name, sys, err)
			}
			if res.Errors > 0 {
				return nil, fmt.Errorf("fig3 %s on %s: %d op errors", spec.Name, sys, res.Errors)
			}
			row.Ops[sys] = res.Throughput()
		}
		normalize(&row)
		rows = append(rows, row)
	}

	// NPB BT-IO row (throughput in MB/s of written+verified data).
	btSpec := scaleBT(workload.DefaultBT(opt.Seed), opt.SizeFactor)
	row := Fig3Row{Workload: "npb-bt", Ops: map[System]float64{}, Norm: map[System]float64{}}
	for _, sys := range fig3Systems {
		c := Build(sys, opt)
		res, err := RunBTDistributed(c, btSpec)
		c.Close()
		if err != nil {
			return nil, fmt.Errorf("fig3 npb-bt on %s: %w", sys, err)
		}
		row.Ops[sys] = res.MBps()
	}
	normalize(&row)
	return append(rows, row), nil
}

func scaleBT(s workload.BTSpec, factor float64) workload.BTSpec {
	if factor <= 0 || factor > 1 {
		return s
	}
	steps := int(float64(s.Steps) * factor)
	if steps < 2 {
		steps = 2
	}
	s.Steps = steps
	return s
}

func normalize(row *Fig3Row) {
	base := row.Ops[SysRedbud]
	for sys, v := range row.Ops {
		if base > 0 {
			row.Norm[sys] = v / base
		}
	}
}

// PrintFig3 renders the rows as the paper's normalized bar groups.
func PrintFig3(w io.Writer, rows []Fig3Row) {
	fmt.Fprintln(w, "Figure 3: performance normalized to original Redbud")
	fmt.Fprintf(w, "%-12s %10s %10s %10s %14s\n", "workload", "pvfs2", "nfs3", "redbud", "redbud+dc")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %10.2f %10.2f %10.2f %14.2f\n",
			r.Workload, r.Norm[SysPVFS2], r.Norm[SysNFS3], r.Norm[SysRedbud], r.Norm[SysRedbudDCSD])
	}
}

// ---------------------------------------------------------------------------
// Figure 4: I/O merge ratio under the three Redbud configurations.

// Fig4Row is one file size's merge ratios.
type Fig4Row struct {
	FileSize int64
	Ratio    map[System]float64 // merged / submitted
}

// fig4Systems are the three configurations of Figures 4 and 5.
var fig4Systems = []System{SysRedbud, SysRedbudDC, SysRedbudDCSD}

// Fig4 regenerates the I/O merge-ratio figure (xcdn at 32K/64K/1M).
func Fig4(opt Options) ([]Fig4Row, error) {
	sizes := []int64{32 << 10, 64 << 10, 1 << 20}
	rows := make([]Fig4Row, 0, len(sizes))
	for _, size := range sizes {
		row := Fig4Row{FileSize: size, Ratio: map[System]float64{}}
		for _, sys := range fig4Systems {
			c := Build(sys, opt)
			spec := workload.Xcdn(size, opt.Seed).Scale(opt.SizeFactor)
			res, err := RunDistributed(c, spec)
			st := c.DeviceStats()
			c.Close()
			if err != nil {
				return nil, fmt.Errorf("fig4 %d on %s: %w", size, sys, err)
			}
			if res.Errors > 0 {
				return nil, fmt.Errorf("fig4 %d on %s: %d op errors", size, sys, res.Errors)
			}
			row.Ratio[sys] = st.MergeRatio()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig4 renders the merge ratios.
func PrintFig4(w io.Writer, rows []Fig4Row) {
	fmt.Fprintln(w, "Figure 4: I/O merge ratio (merged requests / submitted requests)")
	fmt.Fprintf(w, "%-10s %16s %16s %18s\n", "file size", "original", "delayed-commit", "space-delegation")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %16.3f %16.3f %18.3f\n",
			sizeLabel(r.FileSize), r.Ratio[SysRedbud], r.Ratio[SysRedbudDC], r.Ratio[SysRedbudDCSD])
	}
}

func sizeLabel(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	default:
		return fmt.Sprintf("%dKB", n>>10)
	}
}

// ---------------------------------------------------------------------------
// Figure 5: disk-seek traces.

// Fig5Panel is one (config, file size) panel: the blktrace-derived series
// plus summary statistics.
type Fig5Panel struct {
	System   System
	FileSize int64
	Series   []iotrace.SeekPoint
	Summary  iotrace.Summary
}

// Fig5 regenerates the disk-seek panels for 32 KiB and 1 MiB xcdn runs under
// the three Redbud configurations.
func Fig5(opt Options) ([]Fig5Panel, error) {
	opt.Trace = true
	var panels []Fig5Panel
	for _, size := range []int64{32 << 10, 1 << 20} {
		for _, sys := range fig4Systems {
			c := Build(sys, opt)
			spec := workload.Xcdn(size, opt.Seed).Scale(opt.SizeFactor)
			_, err := RunDistributed(c, spec)
			var panel Fig5Panel
			if c.Rec != nil {
				panel = Fig5Panel{System: sys, FileSize: size, Series: c.Rec.SeekSeries(), Summary: c.Rec.Summarize()}
			}
			c.Close()
			if err != nil {
				return nil, fmt.Errorf("fig5 %d on %s: %w", size, sys, err)
			}
			panels = append(panels, panel)
		}
	}
	return panels, nil
}

// PrintFig5 renders the per-panel seek summaries (the CSV series are
// available via cmd/redbud-trace).
func PrintFig5(w io.Writer, panels []Fig5Panel) {
	fmt.Fprintln(w, "Figure 5: disk seeks (xcdn write dispatches; lower seeks/dispatch = flatter panel)")
	fmt.Fprintf(w, "%-14s %-10s %10s %10s %12s %14s\n", "config", "file size", "dispatches", "seeks", "seeks/disp", "mean seek (MB)")
	for _, p := range panels {
		perDisp := 0.0
		if p.Summary.Dispatches > 0 {
			perDisp = float64(p.Summary.Seeks) / float64(p.Summary.Dispatches)
		}
		fmt.Fprintf(w, "%-14s %-10s %10d %10d %12.3f %14.2f\n",
			p.System, sizeLabel(p.FileSize), p.Summary.Dispatches, p.Summary.Seeks,
			perDisp, p.Summary.MeanSeekLen/1e6)
	}
}

// ---------------------------------------------------------------------------
// Figure 6: commit threads vs commit queue length over time.

// Fig6Trace is one workload's trace on the first Redbud client.
type Fig6Trace struct {
	Workload string
	Threads  *stats.Series
	QueueLen *stats.Series
	MaxQueue float64
	MaxThr   float64
	MeanThr  float64
}

// Fig6 runs the four workloads on Redbud+DC+SD and records the adaptive
// pool's behaviour (client 0). The paper runs Filebench at its default
// thread counts (dozens of application threads per client); to reproduce
// the commit-queue pressure at simulation scale, each client runs the
// workloads with extra threads here.
func Fig6(opt Options) ([]Fig6Trace, error) {
	heavier := func(s workload.Spec) workload.Spec {
		s = s.Scale(opt.SizeFactor)
		s.Threads *= 4
		s.Think = 0
		return s
	}
	specs := []workload.Spec{
		heavier(workload.Varmail(opt.Seed)),
		heavier(workload.Fileserver(opt.Seed)),
		heavier(workload.Webproxy(opt.Seed)),
		heavier(workload.Xcdn(32<<10, opt.Seed)),
	}
	var traces []Fig6Trace
	for _, spec := range specs {
		thr := stats.NewSeries(spec.Name + "/threads")
		qln := stats.NewSeries(spec.Name + "/queue")
		c := buildFig6(opt, thr, qln)
		_, err := RunDistributed(c, spec)
		c.Close()
		if err != nil {
			return nil, fmt.Errorf("fig6 %s: %w", spec.Name, err)
		}
		traces = append(traces, Fig6Trace{
			Workload: spec.Name,
			Threads:  thr,
			QueueLen: qln,
			MaxQueue: qln.Max(),
			MaxThr:   thr.Max(),
			MeanThr:  thr.Mean(),
		})
	}
	return traces, nil
}

// buildFig6 builds a Redbud DC+SD cluster whose first client reports pool
// resizes into the series.
func buildFig6(opt Options, thr, qln *stats.Series) *Cluster {
	c := Build(SysRedbudDCSD, opt)
	// Sampler goroutine against client 0 (OnPoolResize can't be set after
	// construction, so sample instead — same data, fixed cadence).
	stop := make(chan struct{})
	done := make(chan struct{})
	cl := c.Redbud[0]
	clk := c.Clock
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			case <-clk.After(2 * time.Millisecond):
				now := clk.Now()
				thr.Record(now, float64(cl.CommitThreads()))
				qln.Record(now, float64(cl.QueueLen()))
			}
		}
	}()
	c.closers = append(c.closers, func() { close(stop); <-done })
	return c
}

// PrintFig6 renders the trace summaries and a coarse ASCII sparkline of the
// thread count.
func PrintFig6(w io.Writer, traces []Fig6Trace) {
	fmt.Fprintln(w, "Figure 6: commit threads track commit queue length (client 0)")
	fmt.Fprintf(w, "%-12s %12s %12s %12s  %s\n", "workload", "max queue", "max threads", "mean threads", "thread sparkline")
	for _, tr := range traces {
		fmt.Fprintf(w, "%-12s %12.0f %12.0f %12.1f  %s\n",
			tr.Workload, tr.MaxQueue, tr.MaxThr, tr.MeanThr, sparkline(tr.Threads, 40))
	}
}

// sparkline draws a series as a tiny character plot.
func sparkline(s *stats.Series, width int) string {
	pts := s.Downsample(width)
	if len(pts) == 0 {
		return ""
	}
	max := s.Max()
	if max <= 0 {
		max = 1
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	out := make([]rune, 0, len(pts))
	for _, p := range pts {
		i := int(p.V / max * float64(len(levels)-1))
		if i < 0 {
			i = 0
		}
		if i >= len(levels) {
			i = len(levels) - 1
		}
		out = append(out, levels[i])
	}
	return string(out)
}

// ---------------------------------------------------------------------------
// Autoscale figure: static commit-thread formula vs autoscaler v2.

// AutoscaleRow is one (workload, controller) run: the commit-thread trace on
// client 0, the controller's decision counters summed over all clients, and
// the workload throughput.
type AutoscaleRow struct {
	Workload  string
	Autoscale bool
	Threads   *stats.Series
	QueueLen  *stats.Series
	MaxThr    float64
	MeanThr   float64
	Ups       int64
	Downs     int64
	Holds     int64
	OpsPerSec float64
}

// FigAutoscale runs Fig6's pressure workloads twice — once under the paper's
// static ρ = MaxCommitThreads/QueueLenMax table, once under the autoscaler v2
// control loop — and reports thread budget and decision behaviour side by
// side. The interesting comparison is mean threads at equal throughput: the
// controller should ride queue pressure up and decay idle threads away
// instead of holding the static table's operating point.
func FigAutoscale(opt Options) ([]AutoscaleRow, error) {
	heavier := func(s workload.Spec) workload.Spec {
		s = s.Scale(opt.SizeFactor)
		s.Threads *= 4
		s.Think = 0
		return s
	}
	specs := []workload.Spec{
		heavier(workload.Varmail(opt.Seed)),
		heavier(workload.Xcdn(32<<10, opt.Seed)),
	}
	var rows []AutoscaleRow
	for _, spec := range specs {
		for _, auto := range []bool{false, true} {
			o := opt
			o.Autoscale = auto
			thr := stats.NewSeries(spec.Name + "/threads")
			qln := stats.NewSeries(spec.Name + "/queue")
			c := buildFig6(o, thr, qln)
			res, err := RunDistributed(c, spec)
			row := AutoscaleRow{
				Workload:  spec.Name,
				Autoscale: auto,
				Threads:   thr,
				QueueLen:  qln,
				MaxThr:    thr.Max(),
				MeanThr:   thr.Mean(),
			}
			for _, cl := range c.Redbud {
				st := cl.AutoscaleStats()
				row.Ups += st.Ups
				row.Downs += st.Downs
				row.Holds += st.Holds
			}
			c.Close()
			if err != nil {
				return nil, fmt.Errorf("autoscale %s auto=%v: %w", spec.Name, auto, err)
			}
			if res.Errors > 0 {
				return nil, fmt.Errorf("autoscale %s auto=%v: %d op errors", spec.Name, auto, res.Errors)
			}
			row.OpsPerSec = res.Throughput()
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// PrintFigAutoscale renders the static-vs-controller comparison.
func PrintFigAutoscale(w io.Writer, rows []AutoscaleRow) {
	fmt.Fprintln(w, "Autoscale: static commit-thread formula vs autoscaler v2 (client 0 trace)")
	fmt.Fprintf(w, "%-12s %-8s %10s %11s %11s %6s %6s %6s  %s\n",
		"workload", "mode", "ops/sec", "max threads", "mean threads", "ups", "downs", "holds", "thread sparkline")
	for _, r := range rows {
		mode := "static"
		if r.Autoscale {
			mode = "auto-v2"
		}
		fmt.Fprintf(w, "%-12s %-8s %10.0f %11.0f %11.1f %6d %6d %6d  %s\n",
			r.Workload, mode, r.OpsPerSec, r.MaxThr, r.MeanThr, r.Ups, r.Downs, r.Holds, sparkline(r.Threads, 40))
	}
}

// ---------------------------------------------------------------------------
// Figure 7: compound degree vs MDS daemon threads.

// Fig7Cell is one (daemons, degree) measurement.
type Fig7Cell struct {
	Daemons   int     `json:"daemons"`
	Degree    int     `json:"degree"`
	PerClient float64 `json:"per_client_mbps"` // MB/s of data moved per client
	OpsPerSec float64 `json:"ops_per_sec"`     // workload operations per virtual second, all clients
}

// Fig7 sweeps server daemon threads {1, 8, 16} against compound degree
// {1, 3, 6} on the small-file xcdn workload.
func Fig7(opt Options) ([]Fig7Cell, error) {
	var cells []Fig7Cell
	for _, daemons := range []int{1, 8, 16} {
		for _, degree := range []int{1, 3, 6} {
			o := opt
			o.MDSDaemons = daemons
			o.CompoundDegree = degree
			c := Build(SysRedbudDCSD, o)
			spec := workload.Xcdn(32<<10, opt.Seed).Scale(opt.SizeFactor)
			res, err := RunDistributed(c, spec)
			c.Close()
			if err != nil {
				return nil, fmt.Errorf("fig7 d=%d k=%d: %w", daemons, degree, err)
			}
			if res.Errors > 0 {
				return nil, fmt.Errorf("fig7 d=%d k=%d: %d op errors", daemons, degree, res.Errors)
			}
			cells = append(cells, Fig7Cell{
				Daemons:   daemons,
				Degree:    degree,
				PerClient: res.MBps() / float64(opt.Clients),
				OpsPerSec: res.Throughput(),
			})
		}
	}
	return cells, nil
}

// PrintFig7 renders the sweep as the paper's grouped bars.
func PrintFig7(w io.Writer, cells []Fig7Cell) {
	fmt.Fprintln(w, "Figure 7: per-client throughput (MB/s) vs MDS daemons x compound degree")
	byDaemons := map[int]map[int]float64{}
	var daemonsSet []int
	for _, c := range cells {
		if byDaemons[c.Daemons] == nil {
			byDaemons[c.Daemons] = map[int]float64{}
			daemonsSet = append(daemonsSet, c.Daemons)
		}
		byDaemons[c.Daemons][c.Degree] = c.PerClient
	}
	sort.Ints(daemonsSet)
	fmt.Fprintf(w, "%-16s %10s %10s %10s\n", "server daemons", "degree 1", "degree 3", "degree 6")
	for _, d := range daemonsSet {
		fmt.Fprintf(w, "%-16d %10.2f %10.2f %10.2f\n", d, byDaemons[d][1], byDaemons[d][3], byDaemons[d][6])
	}
}

// ---------------------------------------------------------------------------
// Visibility figure: early visibility for uncommitted writes, on vs off.

// VisibilityRow is one knob setting's measurements: the BT conflict-read
// latency (time from a writer's WriteAt returning to a second mount first
// observing the block) and varmail throughput under the same setting.
type VisibilityRow struct {
	Visibility       bool    `json:"visibility"`
	Blocks           int     `json:"blocks"`
	ConflictMeanUS   float64 `json:"conflict_read_mean_us"`
	ConflictMaxUS    float64 `json:"conflict_read_max_us"`
	VarmailOpsPerSec float64 `json:"varmail_ops_per_sec"`
}

// backlogFiles is how many dirty files the conflict leg keeps ahead of the
// conflict file in the writer's commit queue.
const backlogFiles = 24

// startCommitBacklog keeps the writer's commit queue ~k files deep: k small
// files are created up front and then perpetually re-dirtied, so each of
// them re-enters the FIFO commit queue as soon as its previous commit
// drains. Any commit the conflict workload enqueues therefore waits behind
// up to k journal flushes — the steady-state backlog a delayed-commit
// client accumulates under sustained load, which is exactly when the
// paper's conflict-read stall hurts. The returned stop function halts the
// load and closes the files.
func startCommitBacklog(fsys fsapi.FileSystem, clk clock.Clock, k int) (func(), error) {
	if err := fsys.Mkdir("/bg"); err != nil {
		return nil, err
	}
	buf := make([]byte, 4<<10)
	files := make([]fsapi.File, 0, k)
	for i := 0; i < k; i++ {
		f, err := fsys.Create(fmt.Sprintf("/bg/load-%d", i))
		if err != nil {
			for _, g := range files {
				g.Close()
			}
			return nil, err
		}
		files = append(files, f)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			// Errors end the load silently: the cluster is being torn down.
			if _, err := files[i%len(files)].WriteAt(buf, 0); err != nil {
				return
			}
			clk.Sleep(200 * time.Microsecond)
		}
	}()
	stop := func() {
		close(done)
		wg.Wait()
		for _, f := range files {
			f.Close()
		}
	}
	return stop, nil
}

// FigVisibility measures what the layout-v2 early-visibility path buys: with
// the knob off a conflict reader waits for the writer's delayed commit to
// land; with it on the reader sees the block as soon as the data is durable,
// through the published intent. Varmail rides along as the regression guard —
// the knob must not tax the commit pipeline.
//
// The figure runs the delayed-commit system WITHOUT space delegation:
// intents are published when the MDS allocates, and a delegated writer
// allocates locally, disclosing extents only at commit — under delegation
// both knob settings collapse to committed-only behavior by design.
//
// The conflict leg pins the writer to one commit thread and runs a
// steady background re-dirty load (startCommitBacklog) beside the measured
// writes. An idle writer commits within milliseconds of durability, leaving
// no window for early visibility to matter; the backlog reproduces the
// loaded client where the commit queue — not the device — is what a
// conflict reader is stuck behind. Both knob settings run the identical
// load, so the comparison isolates the visibility path.
func FigVisibility(opt Options) ([]VisibilityRow, error) {
	us := func(d time.Duration) float64 { return float64(d) / 1e3 }
	var rows []VisibilityRow
	for _, vis := range []bool{false, true} {
		o := opt
		o.EarlyVisibility = vis
		oc := o
		oc.FixedCommitThreads = 1
		c := Build(SysRedbudDC, oc)
		if len(c.Mounts) < 2 {
			c.Close()
			return nil, fmt.Errorf("visibility: need >= 2 clients, have %d", len(c.Mounts))
		}
		spec := scaleBT(workload.DefaultBT(o.Seed), o.SizeFactor)
		stop, err := startCommitBacklog(c.Mounts[0], c.Clock, backlogFiles)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("visibility backlog (vis=%v): %w", vis, err)
		}
		cres, err := workload.RunBTConflict(c.Mounts[0], c.Mounts[1], c.Clock, spec)
		stop()
		c.Drain()
		c.Close()
		if err != nil {
			return nil, fmt.Errorf("visibility conflict (vis=%v): %w", vis, err)
		}
		cv := Build(SysRedbudDC, o)
		vres, err := RunDistributed(cv, workload.Varmail(o.Seed).Scale(o.SizeFactor))
		cv.Close()
		if err != nil {
			return nil, fmt.Errorf("visibility varmail (vis=%v): %w", vis, err)
		}
		if vres.Errors > 0 {
			return nil, fmt.Errorf("visibility varmail (vis=%v): %d op errors", vis, vres.Errors)
		}
		rows = append(rows, VisibilityRow{
			Visibility:       vis,
			Blocks:           cres.Blocks,
			ConflictMeanUS:   us(cres.MeanLatency()),
			ConflictMaxUS:    us(cres.MaxLatency()),
			VarmailOpsPerSec: vres.Throughput(),
		})
	}
	return rows, nil
}

// PrintFigVisibility renders the on/off comparison.
func PrintFigVisibility(w io.Writer, rows []VisibilityRow) {
	fmt.Fprintln(w, "Visibility: conflict-read latency and varmail throughput, early visibility off vs on")
	fmt.Fprintf(w, "%-12s %8s %16s %16s %14s\n",
		"visibility", "blocks", "conflict mean", "conflict max", "varmail ops/s")
	for _, r := range rows {
		mode := "off"
		if r.Visibility {
			mode = "on"
		}
		fmt.Fprintf(w, "%-12s %8d %13.0fus %13.0fus %14.0f\n",
			mode, r.Blocks, r.ConflictMeanUS, r.ConflictMaxUS, r.VarmailOpsPerSec)
	}
}
