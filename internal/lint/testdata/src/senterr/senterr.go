// Package meta exercises the senterr analyzer's sentinel-wrapping rule.
package meta

import (
	"errors"
	"fmt"
)

// ErrNotFound is the sanctioned pattern: a package-level sentinel.
var ErrNotFound = errors.New("meta: not found")

// goodWrap wraps the sentinel so callers can branch with errors.Is.
func goodWrap(name string) error {
	return fmt.Errorf("lookup %q: %w", name, ErrNotFound)
}

// badBare is a bare string error nobody can match.
func badBare(name string) error {
	return fmt.Errorf("lookup %q failed", name) // want `without %w is not errors.Is-able`
}

// badLeaf mints an anonymous leaf error inside a function body.
func badLeaf() error {
	return errors.New("meta: transient") // want `unmatchable leaf error`
}

// The intent-table shapes: error paths added to the write-intent table must
// wrap a sentinel exactly like every other meta error.

// ErrIntentConflict mirrors the real table's corruption sentinel.
var ErrIntentConflict = errors.New("meta: conflicting write intent")

type intentTable struct {
	owners map[uint64]string
}

// publishGood rejects a cross-owner collision with the wrapped sentinel.
func (t *intentTable) publishGood(id uint64, owner string) error {
	if prev, ok := t.owners[id]; ok && prev != owner {
		return fmt.Errorf("%w: file %d held by %q, republished by %q", ErrIntentConflict, id, prev, owner)
	}
	t.owners[id] = owner
	return nil
}

// publishBareWrap formats the collision without %w: errors.Is can't see it.
func (t *intentTable) publishBareWrap(id uint64, owner string) error {
	if prev, ok := t.owners[id]; ok && prev != owner {
		return fmt.Errorf("intent conflict on file %d: %s vs %s", id, prev, owner) // want `without %w is not errors.Is-able`
	}
	t.owners[id] = owner
	return nil
}

// publishLeaf mints a fresh unmatchable error per call site.
func (t *intentTable) publishLeaf(id uint64, owner string) error {
	if prev, ok := t.owners[id]; ok && prev != owner {
		return errors.New("meta: intent conflict") // want `unmatchable leaf error`
	}
	t.owners[id] = owner
	return nil
}
