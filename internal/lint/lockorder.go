package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Lock classes of the MDS metadata hierarchy, in acquisition order. The
// levels mirror DESIGN.md "Concurrency model": namespace → inode stripe →
// intent table → ns-intent table → delegation → journal slot reservation.
const (
	lockNS         = 1 // meta.Store.ns (RWMutex)
	lockStripe     = 2 // meta.Store.stripes[i] (RWMutex), usually via Store.stripe(id)
	lockIntent     = 3 // meta.intentTable.mu (Mutex), taken under a stripe lock
	lockNSIntent   = 4 // meta.nsIntentTable.mu (Mutex), the cross-shard intent table
	lockDelegation = 5 // meta.delegation.mu (Mutex)
	lockJournal    = 6 // meta.Journal.Append / Store.journalAppend (slot reservation)
)

var lockClassName = map[int]string{
	lockNS:         "namespace (Store.ns)",
	lockStripe:     "inode stripe (Store.stripes)",
	lockIntent:     "intent table (intentTable.mu)",
	lockNSIntent:   "ns-intent table (nsIntentTable.mu)",
	lockDelegation: "delegation (delegation.mu)",
	lockJournal:    "journal reservation (Journal.Append)",
}

// LockOrder verifies the documented lock hierarchy of the metadata hot path.
// It walks every function, tracking acquisitions and releases of the five
// tracked lock classes through straight-line control flow (branches are
// analyzed sequentially; a branch ending in return/panic does not leak its
// lock state into the fallthrough path), and reports:
//
//   - an acquisition of a class lower in the hierarchy than one already
//     held (inversion → potential deadlock);
//   - a blocking operation — channel send/receive, select without default,
//     or an RPC Call/CallRaw/Compound — while any tracked lock is held.
//
// Journal.Append is the hierarchy's bottom: it must be called with the
// ordering lock held (that is what makes replay order equal apply order) but
// is instantaneous — the durability wait it returns must run after unlock,
// which the closure-based journalAppend pattern guarantees.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "check the namespace → stripe → intent → delegation → journal lock hierarchy and forbid blocking ops under tracked locks",
	Run:  runLockOrder,
}

// lockEvent is one acquisition/release/blocking event in source order.
type lockEvent struct {
	kind  int // eventAcquire, eventRelease, eventBlock, eventTouch
	class int
	pos   token.Pos
	desc  string
}

const (
	eventAcquire = iota
	eventRelease
	eventBlock   // blocking op: channel op, select, RPC call
	eventTouch   // instantaneous ordered acquire+release (Journal.Append)
	eventDiscard // control leaves the function (return/goto): state resets
)

func runLockOrder(pass *Pass) error {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			lo := &lockOrderWalker{pass: pass, stripeVars: map[types.Object]bool{}}
			lo.block(nil, fn.Body.List)
		}
	}
	return nil
}

// lockOrderWalker carries per-function analysis state.
type lockOrderWalker struct {
	pass *Pass
	// stripeVars are local variables bound to a stripe lock, e.g.
	// `st := s.stripe(id)`.
	stripeVars map[types.Object]bool
}

// heldLock is one live acquisition.
type heldLock struct {
	class int
	pos   token.Pos
}

// block runs the statements through the lock-state machine and returns the
// fallthrough state. Nested function literals are analyzed with fresh state:
// a goroutine or deferred closure runs after (or concurrently with) the
// enclosing frame, so locks held at spawn time are not "held" inside it.
func (lo *lockOrderWalker) block(held []heldLock, stmts []ast.Stmt) []heldLock {
	for _, stmt := range stmts {
		held = lo.stmt(held, stmt)
	}
	return held
}

func (lo *lockOrderWalker) stmt(held []heldLock, stmt ast.Stmt) []heldLock {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		held = lo.exprEvents(held, s)
		return nil // control leaves; deferred unlocks fire
	case *ast.BranchStmt:
		return nil // break/continue/goto: treat conservatively as a reset
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the rest of the
		// function (fine for ordering — later acquisitions must still
		// respect the hierarchy). A deferred arbitrary closure runs after
		// the frame: analyze it with fresh state.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			lo.block(nil, lit.Body.List)
		}
		return held
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			lo.block(nil, lit.Body.List)
		}
		return held
	case *ast.BlockStmt:
		return lo.block(held, s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			held = lo.stmt(held, s.Init)
		}
		held = lo.exprEvents(held, s.Cond)
		bodyOut := lo.block(cloneHeld(held), s.Body.List)
		var elseOut []heldLock
		hasElse := s.Else != nil
		if hasElse {
			elseOut = lo.stmt(cloneHeld(held), s.Else)
		}
		// Fallthrough state: prefer a branch that did not terminate.
		switch {
		case !terminates(s.Body) && bodyOut != nil:
			return bodyOut
		case hasElse && !terminatesStmt(s.Else):
			return elseOut
		case terminates(s.Body) && hasElse && terminatesStmt(s.Else):
			return nil // both sides leave
		default:
			return held // taken branch left the function; fall through unchanged
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = lo.stmt(held, s.Init)
		}
		if s.Cond != nil {
			held = lo.exprEvents(held, s.Cond)
		}
		out := lo.block(cloneHeld(held), s.Body.List)
		if terminates(s.Body) {
			return held
		}
		return out
	case *ast.RangeStmt:
		out := lo.block(cloneHeld(held), s.Body.List)
		if terminates(s.Body) {
			return held
		}
		return out
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var body *ast.BlockStmt
		if sw, ok := s.(*ast.SwitchStmt); ok {
			if sw.Tag != nil {
				held = lo.exprEvents(held, sw.Tag)
			}
			body = sw.Body
		} else {
			body = s.(*ast.TypeSwitchStmt).Body
		}
		for _, clause := range body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				lo.block(cloneHeld(held), cc.Body)
			}
		}
		return held
	case *ast.SelectStmt:
		// A select with no default blocks.
		hasDefault := false
		for _, clause := range body(s.Body) {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			lo.reportBlocked(held, s.Pos(), "select without default")
		}
		for _, clause := range body(s.Body) {
			if cc, ok := clause.(*ast.CommClause); ok {
				lo.block(cloneHeld(held), cc.Body)
			}
		}
		return held
	case *ast.LabeledStmt:
		return lo.stmt(held, s.Stmt)
	default:
		return lo.exprEvents(held, stmt)
	}
}

func body(b *ast.BlockStmt) []ast.Stmt {
	if b == nil {
		return nil
	}
	return b.List
}

func cloneHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

// terminates reports whether a block's last statement leaves the function or
// loop (return, panic, break, continue, goto).
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	return terminatesStmt(b.List[len(b.List)-1])
}

func terminatesStmt(s ast.Stmt) bool {
	switch t := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := t.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(t)
	case *ast.IfStmt:
		return terminates(t.Body) && t.Else != nil && terminatesStmt(t.Else)
	}
	return false
}

// exprEvents scans a statement or expression for lock events in source order
// and applies them to the state.
func (lo *lockOrderWalker) exprEvents(held []heldLock, n ast.Node) []heldLock {
	if n == nil {
		return held
	}
	var events []lockEvent
	ast.Inspect(n, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.FuncLit:
			lo.block(nil, e.Body.List) // fresh state inside closures
			return false
		case *ast.AssignStmt:
			lo.recordStripeVars(e)
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				events = append(events, lockEvent{kind: eventBlock, pos: e.Pos(), desc: "channel receive"})
			}
		case *ast.SendStmt:
			events = append(events, lockEvent{kind: eventBlock, pos: e.Pos(), desc: "channel send"})
		case *ast.CallExpr:
			if ev, ok := lo.classify(e); ok {
				events = append(events, ev)
			}
		}
		return true
	})
	for _, ev := range events {
		held = lo.apply(held, ev)
	}
	return held
}

// recordStripeVars tracks `st := s.stripe(id)` style bindings.
func (lo *lockOrderWalker) recordStripeVars(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !lo.isStripeSource(call) {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok {
			if obj := lo.pass.Info.Defs[id]; obj != nil {
				lo.stripeVars[obj] = true
			} else if obj := lo.pass.Info.Uses[id]; obj != nil {
				lo.stripeVars[obj] = true
			}
		}
	}
}

// isStripeSource reports whether call yields a stripe lock: a call to
// meta.Store.stripe.
func (lo *lockOrderWalker) isStripeSource(call *ast.CallExpr) bool {
	obj := calleeOf(lo.pass.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != "stripe" {
		return false
	}
	return isNamedType(recvTypeOf(lo.pass.Info, call), "meta", "Store")
}

// classify maps a call expression to a lock event, if it is one.
func (lo *lockOrderWalker) classify(call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	name := sel.Sel.Name
	info := lo.pass.Info

	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		class, ok := lo.lockClass(sel.X)
		if !ok {
			return lockEvent{}, false
		}
		kind := eventAcquire
		if name == "Unlock" || name == "RUnlock" {
			kind = eventRelease
		}
		return lockEvent{kind: kind, class: class, pos: call.Pos(), desc: name}, true

	case "Append":
		// meta.Journal.Append: the journal-reservation level.
		if isNamedType(recvTypeOf(info, call), "meta", "Journal") {
			return lockEvent{kind: eventTouch, class: lockJournal, pos: call.Pos(), desc: "Journal.Append"}, true
		}
	case "journalAppend":
		if isNamedType(recvTypeOf(info, call), "meta", "Store") {
			return lockEvent{kind: eventTouch, class: lockJournal, pos: call.Pos(), desc: "journalAppend"}, true
		}
	case "Call", "CallRaw", "Compound":
		// rpc.Client methods block on the network round-trip.
		if isNamedType(recvTypeOf(info, call), "rpc", "Client") {
			return lockEvent{kind: eventBlock, pos: call.Pos(), desc: "RPC " + name}, true
		}
	}
	return lockEvent{}, false
}

// lockClass resolves the receiver expression of a Lock/Unlock call to a
// tracked class.
func (lo *lockOrderWalker) lockClass(x ast.Expr) (int, bool) {
	x = ast.Unparen(x)
	info := lo.pass.Info
	switch e := x.(type) {
	case *ast.Ident:
		// Local variable bound from Store.stripe(id).
		if obj := info.Uses[e]; obj != nil && lo.stripeVars[obj] {
			return lockStripe, true
		}
	case *ast.SelectorExpr:
		recv, ok := info.Selections[e]
		if !ok {
			break
		}
		switch {
		case e.Sel.Name == "ns" && isNamedType(recv.Recv(), "meta", "Store"):
			return lockNS, true
		case e.Sel.Name == "mu" && isNamedType(recv.Recv(), "meta", "intentTable"):
			return lockIntent, true
		case e.Sel.Name == "mu" && isNamedType(recv.Recv(), "meta", "nsIntentTable"):
			return lockNSIntent, true
		case e.Sel.Name == "mu" && isNamedType(recv.Recv(), "meta", "delegation"):
			return lockDelegation, true
		}
	case *ast.IndexExpr:
		// s.stripes[i].Lock()
		if sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok {
			if recv, ok := info.Selections[sel]; ok &&
				sel.Sel.Name == "stripes" && isNamedType(recv.Recv(), "meta", "Store") {
				return lockStripe, true
			}
		}
	case *ast.CallExpr:
		// s.stripe(id).Lock() without the intermediate variable.
		if lo.isStripeSource(e) {
			return lockStripe, true
		}
	}
	return 0, false
}

// apply advances the lock state by one event, reporting violations.
func (lo *lockOrderWalker) apply(held []heldLock, ev lockEvent) []heldLock {
	switch ev.kind {
	case eventAcquire, eventTouch:
		for _, h := range held {
			if h.class > ev.class {
				lo.pass.Reportf(ev.pos,
					"acquiring %s while holding %s inverts the lock hierarchy (namespace → stripe → intent → ns-intent → delegation → journal)",
					lockClassName[ev.class], lockClassName[h.class])
				break
			}
		}
		if ev.kind == eventAcquire {
			return append(held, heldLock{class: ev.class, pos: ev.pos})
		}
		return held
	case eventRelease:
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].class == ev.class {
				return append(held[:i:i], held[i+1:]...)
			}
		}
		return held
	case eventBlock:
		lo.reportBlocked(held, ev.pos, ev.desc)
		return held
	}
	return held
}

func (lo *lockOrderWalker) reportBlocked(held []heldLock, pos token.Pos, what string) {
	if len(held) == 0 {
		return
	}
	top := held[len(held)-1]
	lo.pass.Reportf(pos, "%s while holding %s: tracked locks must not be held across blocking operations",
		what, lockClassName[top.class])
}
