// Package hotpath exercises the hotpath analyzer: functions annotated
// //redbud:hotpath must avoid heap-allocating constructs; unannotated
// functions may do as they please.
package hotpath

import "fmt"

// badSprintf formats an error on the hot path.
//
//redbud:hotpath
func badSprintf(op uint16) string {
	return fmt.Sprintf("op %d", op) // want `fmt.Sprintf allocates`
}

// badErrorf builds an error string per call.
//
//redbud:hotpath
func badErrorf(op uint16) error {
	return fmt.Errorf("bad op %d", op) // want `fmt.Errorf allocates`
}

// badAppendVar grows a nil slice record by record.
//
//redbud:hotpath
func badAppendVar(frames [][]byte) []byte {
	var out []byte
	for _, f := range frames {
		out = append(out, f...) // want `append grows out, declared without capacity`
	}
	return out
}

// badAppendMake grows a 2-argument make (capacity == length, so every append
// reallocates).
//
//redbud:hotpath
func badAppendMake(n int) []int {
	s := make([]int, 0)
	for i := 0; i < n; i++ {
		s = append(s, i) // want `append grows s, declared without capacity`
	}
	return s
}

// badClosure captures a local and ships it to the heap.
//
//redbud:hotpath
func badClosure(n int) func() int {
	total := n * 2
	return func() int { // want `closure captures total`
		return total
	}
}

// goodPresized appends within a 3-argument make.
//
//redbud:hotpath
func goodPresized(frames [][]byte) []byte {
	total := 0
	for _, f := range frames {
		total += len(f)
	}
	out := make([]byte, 0, total)
	for _, f := range frames {
		out = append(out, f...)
	}
	return out
}

// goodParamAppend appends into a caller-owned buffer; the callee cannot see
// its capacity and does not get blamed for it.
//
//redbud:hotpath
func goodParamAppend(dst []byte, b byte) []byte {
	return append(dst, b)
}

// goodNoCapture is a closure over nothing: no captured state escapes.
//
//redbud:hotpath
func goodNoCapture() func() int {
	return func() int { return 42 }
}

// goodAllowed documents a deliberate cold-path allocation inside a hot
// function via the standard escape hatch.
//
//redbud:hotpath
func goodAllowed(op uint16) error {
	//lint:allow hotpath — error path, never taken at steady state
	return fmt.Errorf("bad op %d", op)
}

// unannotated is free to allocate: the discipline is opt-in.
func unannotated(op uint16) string {
	var parts []string
	parts = append(parts, fmt.Sprintf("op %d", op))
	f := func() string { return parts[0] }
	return f()
}
