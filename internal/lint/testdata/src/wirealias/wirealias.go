// Package wirealias exercises the pooled-frame aliasing analyzer: slices
// from r.BytesRef() must not be retained past the decode/handler return.
package wirealias

import "wire"

// Retained stores the alias through the receiver — the classic leak: the
// message outlives the pooled frame the slice points into.
type Retained struct {
	Off  int64
	Data []byte
}

func (m *Retained) UnmarshalWire(r *wire.Reader) error {
	m.Off = r.I64()
	m.Data = r.BytesRef() // want `stores a frame-aliasing BytesRef slice through non-local m`
	return r.Err()
}

// Copied uses the copying accessor — fine.
type Copied struct{ Data []byte }

func (m *Copied) UnmarshalWire(r *wire.Reader) error {
	m.Data = r.Bytes()
	return r.Err()
}

// AppendCopy materialises a private copy before the store — fine: append
// onto a nil destination allocates fresh backing.
type AppendCopy struct{ Data []byte }

func (m *AppendCopy) UnmarshalWire(r *wire.Reader) error {
	m.Data = append([]byte(nil), r.BytesRef()...)
	return r.Err()
}

// Allowed is a deliberate zero-copy handoff, certified by annotation.
type Allowed struct{ Data []byte }

func (m *Allowed) UnmarshalWire(r *wire.Reader) error {
	m.Data = r.BytesRef() //lint:allow wirealias — consumer copies before the frame is recycled
	return r.Err()
}

// sink demonstrates the package-level escape.
var sink []byte

func stash(r *wire.Reader) {
	sink = r.BytesRef() // want `package-level sink`
}

// transient keeps the alias purely local — fine.
func transient(r *wire.Reader) int {
	p := r.BytesRef()
	return len(p)
}

// response mirrors the rpc readLoop shape: the alias is laundered through a
// local struct, a slice-of, and then escapes on a channel.
type response struct {
	payload []byte
}

func relay(r *wire.Reader, ch chan response) {
	var resp response
	resp.payload = r.BytesRef()
	head := resp.payload[:4]
	_ = head
	ch <- resp // want `sends a frame-aliasing BytesRef slice on a channel`
}

// relayCopy breaks the alias before the send — fine.
func relayCopy(r *wire.Reader, ch chan response) {
	var resp response
	resp.payload = append([]byte(nil), r.BytesRef()...)
	ch <- resp
}
