package meta

import "fmt"

// Rename moves the entry srcName under srcParent to dstName under dstParent.
// The destination must not exist (no implicit overwrite: a caller that wants
// POSIX semantics removes the destination first, making the data-freeing
// explicit). Renaming a directory into its own subtree is rejected.
func (s *Store) Rename(srcParent FileID, srcName string, dstParent FileID, dstName string) error {
	if dstName == "" || dstName == "." || dstName == ".." {
		return fmt.Errorf("%w: %q", ErrInvalidName, dstName)
	}
	s.ns.Lock()
	src, ok := s.dirents[srcParent]
	if !ok {
		s.ns.Unlock()
		return fmt.Errorf("%w: parent %d", ErrNotFound, srcParent)
	}
	id, ok := src[srcName]
	if !ok {
		s.ns.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, srcName)
	}
	dst, ok := s.dirents[dstParent]
	if !ok {
		s.ns.Unlock()
		return fmt.Errorf("%w: parent %d", ErrNotFound, dstParent)
	}
	if _, dup := dst[dstName]; dup {
		s.ns.Unlock()
		return fmt.Errorf("%w: %q", ErrExists, dstName)
	}
	if s.nsIntents.has(id) {
		s.ns.Unlock()
		return fmt.Errorf("%w: inode %d is under a namespace intent", ErrNSConflict, id)
	}
	if s.nsIntents.removePending(dstParent) {
		s.ns.Unlock()
		return fmt.Errorf("%w: directory %d has a pending remove", ErrNSConflict, dstParent)
	}
	if s.nsIntents.reservedName(dstParent, dstName) {
		s.ns.Unlock()
		return fmt.Errorf("%w: %q reserved by a pending rename", ErrNSConflict, dstName)
	}
	ino, local := s.inodes[id]
	if !local {
		// A remote-homed child's dirent may move between two local
		// directories, but only for files: a directory's subtree lives on
		// its home shard, where this store cannot run the loop check.
		if s.remote[id] == TypeDir {
			s.ns.Unlock()
			return fmt.Errorf("%w: directory %d", ErrWrongShard, id)
		}
	}
	// A directory must not become its own ancestor.
	if local && ino.typ == TypeDir {
		for cur := dstParent; cur != RootID; {
			if cur == id {
				s.ns.Unlock()
				return fmt.Errorf("%w: cannot move %q into its own subtree", ErrLoop, srcName)
			}
			parent, ok := s.parentOf(cur)
			if !ok {
				break
			}
			cur = parent
		}
	}
	s.applyRename(srcParent, srcName, dstParent, dstName, id)
	wait := s.journalAppend(&Record{
		Type: RecRename, File: id,
		Parent: srcParent, Name: srcName,
		DstParent: dstParent, DstName: dstName,
	})
	s.ns.Unlock()
	return wait()
}

// applyRename mutates the namespace. Caller holds ns exclusively.
func (s *Store) applyRename(srcParent FileID, srcName string, dstParent FileID, dstName string, id FileID) {
	delete(s.dirents[srcParent], srcName)
	s.dirents[dstParent][dstName] = id
}

// parentOf finds the directory containing inode id (linear scan; renames are
// rare). Caller holds ns exclusively.
func (s *Store) parentOf(id FileID) (FileID, bool) {
	for dir, ents := range s.dirents {
		for _, cid := range ents {
			if cid == id {
				return dir, true
			}
		}
	}
	return 0, false
}
