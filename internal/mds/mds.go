// Package mds implements the Redbud metadata server: the RPC face over the
// meta.Store. Clients apply for or commit metadata through network RPCs
// while reading and writing file data directly on the shared disk array
// (§V-A). The server's daemon-thread pool (internal/rpc) is the resource
// Figure 7 sweeps; every reply piggybacks a load byte that clients feed to
// the adaptive compound controller.
package mds

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"redbud/internal/alloc"
	"redbud/internal/clock"
	"redbud/internal/meta"
	"redbud/internal/netsim"
	"redbud/internal/obs"
	"redbud/internal/proto"
	"redbud/internal/rpc"
	"redbud/internal/stats"
	"redbud/internal/wire"
)

// Config assembles an MDS.
type Config struct {
	Store *meta.Store
	Clock clock.Clock
	// Daemons is the RPC worker pool size (Figure 7: 1, 8, 16).
	Daemons int
	// OpCost is the simulated CPU cost per metadata operation.
	OpCost time.Duration
	// FrameCost is the per-RPC-frame overhead, paid once per frame no
	// matter how many compounded operations it carries.
	FrameCost time.Duration
	// ContentionPerDaemon models multi-thread contention (Figure 7's
	// 16-daemon degradation).
	ContentionPerDaemon float64
	// CommitCheck, if set, is invoked with every extent list a commit
	// carries before it is applied. The test harness installs a
	// durability oracle here to assert the ordered-write invariant on
	// every single commit the MDS processes.
	CommitCheck func([]meta.Extent) error
	// LeaseTimeout revokes a client's delegations and orphan allocations
	// after this much inactivity (0 disables lease expiry).
	LeaseTimeout time.Duration
	// Incarnation identifies this MDS process lifetime; a harness bumps it
	// on every restart. Clients compare the value returned by OpHello
	// across reconnects to detect that a recovery happened (defaults to 1).
	Incarnation uint64
	// ShardIndex/ShardCount place this server in a sharded namespace
	// (advertised to v3 clients via OpHello). Zero ShardCount means the
	// single-shard topology {0, 1}. They must match the store's Config.
	ShardIndex uint32
	ShardCount uint32
	// Tracer, if non-nil, records mds.commit and namespace-op spans on track
	// "mds" ("mds<i>" when sharded, so every shard exports as its own trace
	// process), plus the rpc.queue / rpc.process spans of the daemon pool.
	// Requests carrying a v4 trace context get their handler spans linked
	// under the client span that issued them.
	Tracer *obs.Tracer
}

// commitWindow bounds how many recently applied commit IDs the MDS
// remembers per owner for duplicate suppression.
const commitWindow = 1024

// dedupTable remembers recently applied commit IDs per owner, with the
// encoded response each produced, so a retransmitted commit is answered
// from memory instead of re-applied.
//
// The window is keyed (owner, commit ID) and lives on the server, NOT on the
// connection: a client that loses its link and is re-routed back to the same
// shard re-handshakes on a fresh connection, and its retransmission must
// still hit the window. Each shard keeps its own table — a commit always
// routes to its inode's home shard, so dedup state is never expected to
// survive cross-shard re-routing; a retransmission mis-routed to a different
// shard is refused by that shard's store (which does not own the inode)
// rather than silently absorbed by a window it was never recorded in.
type dedupTable struct {
	mu     sync.Mutex
	owners map[string]*ownerDedup
}

type ownerDedup struct {
	resp map[uint64][]byte
	fifo []uint64 // insertion order, for window eviction
}

func (t *dedupTable) lookup(owner string, id uint64) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	od := t.owners[owner]
	if od == nil {
		return nil, false
	}
	r, ok := od.resp[id]
	return r, ok
}

func (t *dedupTable) record(owner string, id uint64, resp []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	od := t.owners[owner]
	if od == nil {
		od = &ownerDedup{resp: make(map[uint64][]byte)}
		t.owners[owner] = od
	}
	if _, dup := od.resp[id]; dup {
		return
	}
	od.resp[id] = resp
	od.fifo = append(od.fifo, id)
	if len(od.fifo) > commitWindow {
		delete(od.resp, od.fifo[0])
		od.fifo = od.fifo[1:]
	}
}

func (t *dedupTable) drop(owner string) {
	t.mu.Lock()
	delete(t.owners, owner)
	t.mu.Unlock()
}

// Server is the metadata server.
type Server struct {
	store *meta.Store
	rpc   *rpc.Server
	clk   clock.Clock
	cfg   Config

	// lastSeen maps owner -> *atomic.Int64 (UnixNano of last activity).
	// touch runs on every RPC across all daemon threads; after the first
	// request from an owner it is a lock-free load + atomic store, rather
	// than every daemon serializing on one mutex.
	lastSeen sync.Map

	// sessions maps owner -> uint32, the protocol version negotiated by the
	// owner's last OpHello. Owners that never said hello are ProtoV1 and
	// transparently get committed-only layout behaviour; lease expiry ends
	// the session and drops the entry.
	sessions sync.Map

	// track is the trace track prefix for handler spans: "mds" single-shard,
	// "mds<i>" when sharded, so each shard exports as its own trace process.
	track string

	dedup     dedupTable
	dedupHits atomic.Int64

	// commitLat is the server-side commit handling latency (dispatch →
	// response encoded), always collected: one histogram per server is
	// cheap, and redbud-top reads it live.
	commitLat *stats.Histogram
}

// New builds the MDS and its RPC daemon pool.
func New(cfg Config) *Server {
	if cfg.Store == nil {
		panic("mds: nil store")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real(1)
	}
	if cfg.Incarnation == 0 {
		cfg.Incarnation = 1
	}
	if cfg.ShardCount == 0 {
		cfg.ShardCount = 1
	}
	track := "mds"
	if cfg.ShardCount > 1 {
		track = fmt.Sprintf("mds%d", cfg.ShardIndex)
	}
	s := &Server{store: cfg.Store, clk: cfg.Clock, cfg: cfg, track: track, commitLat: stats.NewLatencyHistogram()}
	s.dedup.owners = make(map[string]*ownerDedup)
	s.rpc = rpc.NewServer(rpc.ServerConfig{
		Handler:             s.handle,
		Daemons:             cfg.Daemons,
		OpCost:              cfg.OpCost,
		FrameCost:           cfg.FrameCost,
		ContentionPerDaemon: cfg.ContentionPerDaemon,
		Clock:               cfg.Clock,
		Tracer:              cfg.Tracer,
		TraceTrack:          track,
	})
	return s
}

// Store exposes the underlying metadata store (harness and tests).
func (s *Server) Store() *meta.Store { return s.store }

// RPC exposes the rpc server (stats).
func (s *Server) RPC() *rpc.Server { return s.rpc }

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l *netsim.Listener) { s.rpc.Serve(l) }

// ServeConn serves a single connection (TCP deployment).
func (s *Server) ServeConn(c netsim.Conn) { s.rpc.ServeConn(c) }

// Close stops the daemon pool.
func (s *Server) Close() { s.rpc.Close() }

// touch records client activity for lease tracking.
func (s *Server) touch(owner string) {
	if owner == "" || s.cfg.LeaseTimeout <= 0 {
		return
	}
	now := s.clk.Now().UnixNano()
	if v, ok := s.lastSeen.Load(owner); ok {
		v.(*atomic.Int64).Store(now)
		return
	}
	v, _ := s.lastSeen.LoadOrStore(owner, new(atomic.Int64))
	v.(*atomic.Int64).Store(now)
}

// ExpireLeases revokes clients idle longer than the lease timeout, returning
// the orphan bytes reclaimed. The harness calls this periodically; recovery
// calls the meta layer directly.
func (s *Server) ExpireLeases() int64 {
	if s.cfg.LeaseTimeout <= 0 {
		return 0
	}
	now := s.clk.Now()
	var expired []string
	s.lastSeen.Range(func(key, value any) bool {
		seen := time.Unix(0, value.(*atomic.Int64).Load())
		if now.Sub(seen) > s.cfg.LeaseTimeout {
			expired = append(expired, key.(string))
		}
		return true
	})
	var reclaimed int64
	for _, owner := range expired {
		s.lastSeen.Delete(owner)
		// An expired client's session is over; its commit IDs can never be
		// legitimately retransmitted, and its negotiated protocol version
		// no longer applies (a reconnecting client re-hellos).
		s.dedup.drop(owner)
		s.sessions.Delete(owner)
		reclaimed += s.store.ClientGone(owner)
	}
	return reclaimed
}

// sessionVersion returns the protocol version owner negotiated via OpHello;
// unknown (or empty) owners are v1.
func (s *Server) sessionVersion(owner string) uint32 {
	if v, ok := s.sessions.Load(owner); ok {
		return v.(uint32)
	}
	return proto.ProtoV1
}

// DedupHits reports how many retransmitted commits were answered from the
// dedup table instead of being re-applied.
func (s *Server) DedupHits() int64 { return s.dedupHits.Load() }

// CommitLatency exposes the server-side commit handling latency histogram
// (seconds).
func (s *Server) CommitLatency() *stats.Histogram { return s.commitLat }

// RegisterMetrics exposes the MDS counters — including those of its RPC
// daemon pool and metadata store — in a metrics registry.
func (s *Server) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	r.CounterFunc("redbud_mds_dedup_hits_total", "retransmitted commits answered from the dedup table", nil,
		s.dedupHits.Load)
	r.RegisterHistogram("redbud_mds_commit_latency_seconds", "server-side commit handling latency", nil, s.commitLat)
	s.rpc.RegisterMetrics(r, obs.Labels{"server": "mds"})
	s.store.RegisterMetrics(r)
}

// nsStart samples the handler start time for a namespace-op span, or zero
// when the request carries no trace context (or tracing is off) so nsSpan
// becomes a no-op and the untraced path stays allocation-free.
func (s *Server) nsStart(tc proto.TraceCtx) time.Time {
	if tc.TraceID != 0 && s.cfg.Tracer.Enabled() {
		return s.clk.Now()
	}
	return time.Time{}
}

// nsSpan records one namespace-op handler span linked under the client phase
// span that issued the request. Spans are recorded on success and failure
// alike: an aborted saga leg is exactly the kind of latency a stitched trace
// should show.
func (s *Server) nsSpan(name string, tc proto.TraceCtx, start time.Time) {
	if start.IsZero() {
		return
	}
	s.cfg.Tracer.RecordSpan(obs.Span{
		Track: s.track, Name: name,
		TraceID: tc.TraceID, SpanID: obs.NewSpanID(tc.SpanID, name), Parent: tc.SpanID,
		Start: start, End: s.clk.Now(),
	})
}

// handle dispatches one decoded RPC operation.
func (s *Server) handle(op uint16, body []byte) ([]byte, error) {
	switch op {
	case proto.OpPing:
		return nil, nil

	case proto.OpLookup:
		var req proto.LookupReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		a, err := s.store.Lookup(req.Parent, req.Name)
		if err != nil {
			return nil, err
		}
		resp := proto.FromAttr(a)
		return wire.Encode(&resp), nil

	case proto.OpCreate:
		var req proto.CreateReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		a, err := s.store.Create(req.Parent, req.Name, req.Type)
		if err != nil {
			return nil, err
		}
		resp := proto.FromAttr(a)
		return wire.Encode(&resp), nil

	case proto.OpGetAttr:
		var req proto.GetAttrReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		a, err := s.store.GetAttr(req.ID)
		if err != nil {
			return nil, err
		}
		resp := proto.FromAttr(a)
		return wire.Encode(&resp), nil

	case proto.OpReadDir:
		var req proto.ReadDirReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		ents, err := s.store.ReadDir(req.ID)
		if err != nil {
			return nil, err
		}
		resp := proto.ReadDirResp{Entries: ents}
		return wire.Encode(&resp), nil

	case proto.OpRemove:
		var req proto.RemoveReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		return nil, s.store.Remove(req.Parent, req.Name)

	case proto.OpLayoutGet:
		var req proto.LayoutGetReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		s.touch(req.Owner)
		flags := req.Flags
		// Downgrade rule: only a session that negotiated v2 may see
		// uncommitted extents. A genuine v1 client cannot even express the
		// bit (its bool encodes 0 or 1), but a pre-hello or misbehaving
		// sender must still get committed-only behaviour.
		if flags.Has(meta.LayoutWantUncommitted) && s.sessionVersion(req.Owner) < proto.ProtoV2 {
			flags &^= meta.LayoutWantUncommitted
		}
		var lay meta.Layout
		var err error
		if flags.Has(meta.LayoutWrite) {
			lay, err = s.store.AllocLayout(req.Owner, req.File, req.Off, req.Len)
		} else {
			// Without LayoutWantUncommitted readers only see committed
			// extents: the ordered-write guarantee means uncommitted data
			// may not exist yet.
			lay, err = s.store.GetLayout(req.File, req.Off, req.Len, flags)
		}
		if err != nil {
			return nil, err
		}
		attr, err := s.store.GetAttr(req.File)
		if err != nil {
			return nil, err
		}
		size := attr.Size
		if lay.VisibleEnd > size {
			// Early visibility: published intents extend the visible size
			// past the committed one for v2 readers that asked.
			size = lay.VisibleEnd
		}
		resp := proto.LayoutResp{File: lay.File, Size: size, Extents: lay.Extents}
		return wire.Encode(&resp), nil

	case proto.OpCommit:
		var req proto.CommitReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		s.touch(req.Owner)
		if req.CommitID != 0 {
			if cached, ok := s.dedup.lookup(req.Owner, req.CommitID); ok {
				s.dedupHits.Add(1)
				return cached, nil
			}
		}
		if s.cfg.CommitCheck != nil {
			if err := s.cfg.CommitCheck(req.Extents); err != nil {
				return nil, fmt.Errorf("mds: ordered-write violation: %w", err)
			}
		}
		start := s.clk.Now()
		// A v4 trace context links this handler's span (and the store's
		// lockwait/apply/journal children) under the client's commit span.
		var tc obs.SpanContext
		if req.Trace.TraceID != 0 {
			tc = obs.SpanContext{TraceID: req.Trace.TraceID, SpanID: obs.NewSpanID(req.Trace.SpanID, obs.SpanMDSCommit)}
		}
		if err := s.store.CommitTracedCtx(req.Owner, req.File, req.Extents, req.Size, req.MTime, req.CommitID, tc); err != nil {
			return nil, err
		}
		a, err := s.store.GetAttr(req.File)
		if err != nil {
			return nil, err
		}
		resp := proto.CommitResp{Size: a.Size}
		out := wire.Encode(&resp)
		end := s.clk.Now()
		s.commitLat.ObserveDuration(end.Sub(start))
		if s.cfg.Tracer.Enabled() && req.CommitID != 0 {
			s.cfg.Tracer.RecordSpan(obs.Span{
				Track: s.track, Name: obs.SpanMDSCommit, CommitID: req.CommitID,
				TraceID: req.Trace.TraceID, SpanID: tc.SpanID, Parent: req.Trace.SpanID,
				Start: start, End: end,
			})
		}
		if req.CommitID != 0 {
			// Only successful commits are remembered: a failed commit may
			// legitimately succeed on retry, so it must reach the store.
			s.dedup.record(req.Owner, req.CommitID, out)
		}
		return out, nil

	case proto.OpDelegate:
		var req proto.DelegateReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		s.touch(req.Owner)
		sp, err := s.store.Delegate(req.Owner, req.Size)
		if err != nil {
			return nil, err
		}
		resp := proto.SpanMsg{Dev: uint32(sp.Dev), Off: sp.Off, Len: sp.Len}
		return wire.Encode(&resp), nil

	case proto.OpDelegReturn:
		var req proto.DelegReturnReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		s.touch(req.Owner)
		sp := alloc.Span{Dev: int(req.Span.Dev), Off: req.Span.Off, Len: req.Span.Len}
		return nil, s.store.ReturnDelegation(req.Owner, sp)

	case proto.OpRename:
		var req proto.RenameReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		return nil, s.store.Rename(req.SrcParent, req.SrcName, req.DstParent, req.DstName)

	case proto.OpHello:
		var req proto.HelloReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		s.touch(req.Owner)
		ver := req.ProtoVersion
		if ver < proto.ProtoV1 {
			ver = proto.ProtoV1
		}
		if ver > proto.ProtoLatest {
			ver = proto.ProtoLatest
		}
		if req.Owner != "" {
			s.sessions.Store(req.Owner, ver)
		}
		resp := proto.HelloResp{
			Incarnation: s.cfg.Incarnation, ProtoVersion: ver,
			ShardIndex: s.cfg.ShardIndex, ShardCount: s.cfg.ShardCount,
		}
		return wire.Encode(&resp), nil

	case proto.OpCreateDetached:
		var req proto.CreateDetachedReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		start := s.nsStart(req.Trace)
		a, err := s.store.CreateDetached(req.Parent, req.Name, req.Type)
		s.nsSpan(obs.SpanMDSCreateDetached, req.Trace, start)
		if err != nil {
			return nil, err
		}
		resp := proto.FromAttr(a)
		return wire.Encode(&resp), nil

	case proto.OpNSPrepare:
		var req proto.NSPrepareReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		start := s.nsStart(req.Trace)
		err := s.store.NSPrepare(req.File, req.Kind, req.Type, req.Parent, req.Name, req.DstParent, req.DstName)
		s.nsSpan(obs.SpanMDSNSPrepare, req.Trace, start)
		return nil, err

	case proto.OpNSCommit:
		var req proto.NSCommitReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		start := s.nsStart(req.Trace)
		err := s.store.NSCommit(req.File, req.Kind)
		s.nsSpan(obs.SpanMDSNSCommit, req.Trace, start)
		return nil, err

	case proto.OpNSAbort:
		var req proto.NSAbortReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		start := s.nsStart(req.Trace)
		err := s.store.NSAbort(req.File, req.Kind)
		s.nsSpan(obs.SpanMDSNSAbort, req.Trace, start)
		return nil, err

	case proto.OpLinkRemote:
		var req proto.LinkRemoteReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		start := s.nsStart(req.Trace)
		err := s.store.LinkRemote(req.Parent, req.Name, req.Child, req.Type)
		s.nsSpan(obs.SpanMDSLinkRemote, req.Trace, start)
		return nil, err

	case proto.OpUnlinkRemote:
		var req proto.UnlinkRemoteReq
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		start := s.nsStart(req.Trace)
		err := s.store.UnlinkRemote(req.Parent, req.Name, req.Child)
		s.nsSpan(obs.SpanMDSUnlinkRemote, req.Trace, start)
		return nil, err

	case proto.OpStat:
		resp := proto.StatResp{
			QueueLen:  int64(s.rpc.QueueLen()),
			Load:      s.rpc.Load(),
			Processed: s.rpc.Processed(),
			SubOps:    s.rpc.SubOps(),
			Files:     int64(s.store.FileCount()),
		}
		return wire.Encode(&resp), nil
	}
	return nil, fmt.Errorf("mds: unknown op %d", op)
}
