package blockdev

import (
	"bytes"
	"errors"
	"testing"

	"redbud/internal/clock"
)

func newFaultyDev(t *testing.T, fn WriteFaultFunc) *Device {
	t.Helper()
	d := New(Config{ID: 1, Size: 1 << 30, Model: ZeroLatency(), Clock: clock.Real(1), WriteFault: fn})
	t.Cleanup(d.Close)
	return d
}

func TestInjectedWriteError(t *testing.T) {
	d := newFaultyDev(t, func(off, n int64) (WriteFault, int64) { return WriteError, 0 })
	err := d.Write(0, make([]byte, 8192))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if d.IsDurable(0, 8192) {
		t.Fatal("failed write reported durable")
	}
	if d.InjectedFaults() != 1 {
		t.Fatalf("InjectedFaults = %d, want 1", d.InjectedFaults())
	}
}

func TestTornWriteKeepsOnlyPrefix(t *testing.T) {
	d := newFaultyDev(t, func(off, n int64) (WriteFault, int64) { return WriteTorn, n / 2 })
	p := bytes.Repeat([]byte{0xAB}, 8192)
	err := d.Write(0, p)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if d.IsDurable(0, 8192) {
		t.Fatal("torn write reported fully durable")
	}
	if !d.IsDurable(0, 4096) {
		t.Fatal("torn write's persisted prefix not durable")
	}
	got, rerr := d.Read(0, 8192)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if !bytes.Equal(got[:4096], p[:4096]) {
		t.Fatal("prefix bytes not persisted")
	}
	if !bytes.Equal(got[4096:], make([]byte, 4096)) {
		t.Fatal("bytes beyond the tear were persisted")
	}
}

func TestTornWriteNeverCompletesFully(t *testing.T) {
	// Even if the hook asks to keep everything, a torn write must persist a
	// strict prefix — otherwise it would not be torn.
	d := newFaultyDev(t, func(off, n int64) (WriteFault, int64) { return WriteTorn, n * 2 })
	if err := d.Write(0, make([]byte, 4096)); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if d.IsDurable(0, 4096) {
		t.Fatal("torn write reported fully durable")
	}
}

func TestSetWriteFaultArmsMidRun(t *testing.T) {
	d := newFaultyDev(t, nil)
	if err := d.Write(0, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	armed := false
	d.SetWriteFault(func(off, n int64) (WriteFault, int64) {
		armed = true
		return WriteError, 0
	})
	if err := d.Write(4096, make([]byte, 4096)); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected after arming", err)
	}
	if !armed {
		t.Fatal("hook never called")
	}
	d.SetWriteFault(nil)
	if err := d.Write(8192, make([]byte, 4096)); err != nil {
		t.Fatalf("err = %v after disarming, want nil", err)
	}
}

func TestProbFaultsDeterministic(t *testing.T) {
	fates := func(seed int64) []WriteFault {
		fn := ProbFaults(seed, 0.3, 0.3)
		out := make([]WriteFault, 64)
		for i := range out {
			out[i], _ = fn(int64(i)*4096, 4096)
		}
		return out
	}
	a, b, c := fates(3), fates(3), fates(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault streams")
	}
}

func TestFaultedMergePreservesNeighbors(t *testing.T) {
	// Two requests that merge into one dispatch: one faulted, one not.
	// Only the faulted request's range may lose durability.
	var calls int
	d := newFaultyDev(t, func(off, n int64) (WriteFault, int64) {
		calls++
		if off == 0 {
			return WriteError, 0
		}
		return WriteOK, 0
	})
	c1 := d.WriteAsync(0, make([]byte, 4096))
	c2 := d.WriteAsync(4096, make([]byte, 4096))
	err1, err2 := <-c1, <-c2
	if !errors.Is(err1, ErrInjected) {
		t.Fatalf("first write err = %v, want ErrInjected", err1)
	}
	if err2 != nil {
		t.Fatalf("second write err = %v, want nil", err2)
	}
	if d.IsDurable(0, 4096) {
		t.Fatal("faulted range durable")
	}
	if !d.IsDurable(4096, 4096) {
		t.Fatal("healthy neighbor lost durability")
	}
	if calls != 2 {
		t.Fatalf("fault hook called %d times, want once per request", calls)
	}
}
