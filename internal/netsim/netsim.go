// Package netsim models the cluster's metadata Ethernet. Each host owns an
// ingress link with finite bandwidth, a fixed per-message overhead and a
// propagation delay; senders queue on the destination's ingress link, which
// is what makes a flood of small RPCs congest the MDS — the effect the
// paper's adaptive RPC compound technique attacks (k requests in one RPC pay
// the per-message overhead once).
//
// The same frame-oriented Conn interface is implemented over real TCP by
// FrameConn, so the RPC layer and everything above it run unchanged in the
// real cmd/redbud-mds deployment.
package netsim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"redbud/internal/clock"
	"redbud/internal/obs"
	"redbud/internal/stats"
	"redbud/internal/wire"
)

// Errors returned by connections and the fabric.
var (
	ErrClosed      = errors.New("netsim: connection closed")
	ErrUnknownHost = errors.New("netsim: unknown host")
	ErrFrameSize   = errors.New("netsim: frame exceeds limit")
)

// maxFrame caps a single frame (64 MiB), shared by simulated and TCP conns.
const maxFrame = 64 << 20

// Conn is a frame-oriented, bidirectional, message-preserving connection.
// Send and Recv are each safe for concurrent use.
//
// Frames returned by Recv are backed by wire.GetFrame buffers: the final
// consumer may hand them back with wire.PutFrame once decoded, closing the
// messaging path's allocation loop. Consumers that keep a frame simply must
// not return it.
type Conn interface {
	// Send transmits one frame, blocking for its simulated transmission
	// time (plus any queueing on the destination's ingress link).
	Send(frame []byte) error
	// Recv blocks for the next frame. Returns io.EOF after Close.
	Recv() ([]byte, error)
	// Close tears down both directions.
	Close() error
}

// VectorConn is implemented by connections that can gather a frame header
// and payload into one frame without an intermediate concatenation — the
// zero-copy seam the RPC framing hot path uses.
type VectorConn interface {
	// SendVec transmits hdr followed by payload as a single frame.
	// Either segment may be empty.
	SendVec(hdr, payload []byte) error
}

// SendVec transmits hdr+payload as one frame, gathering the segments
// directly when c supports it and falling back to a pooled concatenation
// otherwise.
//
//redbud:hotpath
func SendVec(c Conn, hdr, payload []byte) error {
	if vc, ok := c.(VectorConn); ok {
		return vc.SendVec(hdr, payload)
	}
	f := wire.GetFrame(len(hdr) + len(payload))
	copy(f, hdr)
	copy(f[len(hdr):], payload)
	err := c.Send(f)
	wire.PutFrame(f)
	return err
}

// LinkConfig describes one host's ingress link.
type LinkConfig struct {
	// BandwidthMbps is the link rate in megabits per second.
	BandwidthMbps float64
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// PerMessage is the fixed protocol/interrupt overhead per frame —
	// the term that RPC compounding amortizes.
	PerMessage time.Duration
}

// GigabitEthernet matches the paper's 1000 Mbps metadata network.
func GigabitEthernet() LinkConfig {
	return LinkConfig{BandwidthMbps: 1000, Latency: 50 * time.Microsecond, PerMessage: 30 * time.Microsecond}
}

// Instant is a free network for functional tests.
func Instant() LinkConfig { return LinkConfig{} }

// transmitTime returns the serialization time of n bytes on the link.
func (c LinkConfig) transmitTime(n int) time.Duration {
	if c.BandwidthMbps <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) * 8 / (c.BandwidthMbps * 1e6) * float64(time.Second))
}

// link is one host's ingress queue, with virtual-time accounting.
type link struct {
	cfg   clock.Clock
	lc    LinkConfig
	track string // span track, "net/<host>"
	tr    *atomic.Pointer[obs.Tracer]

	mu       sync.Mutex
	nextFree time.Time
	waitEWMA time.Duration // recent queueing delay, the congestion signal

	bytes stats.Counter
	msgs  stats.Counter
}

// transmit blocks the caller for the queueing + serialization + propagation
// time of an n-byte frame and returns the queueing delay experienced.
func (l *link) transmit(n int) time.Duration {
	if l.lc == (LinkConfig{}) {
		// Instant link: no clock reads, no spans — keeps functional tests free.
		l.msgs.Inc()
		l.bytes.Add(int64(n))
		return 0
	}
	now := l.cfg.Now()
	dur := l.lc.PerMessage + l.lc.transmitTime(n)

	l.mu.Lock()
	start := now
	if l.nextFree.After(start) {
		start = l.nextFree
	}
	wait := start.Sub(now)
	l.nextFree = start.Add(dur)
	end := l.nextFree
	// EWMA with alpha = 1/8.
	l.waitEWMA += (wait - l.waitEWMA) / 8
	l.mu.Unlock()

	l.msgs.Inc()
	l.bytes.Add(int64(n))
	if t := l.tr.Load(); t.Enabled() {
		if wait > 0 {
			t.Record(l.track, obs.SpanNetWait, 0, now, start)
		}
		t.Record(l.track, obs.SpanNetXmit, 0, start, end)
	}
	l.cfg.Sleep(end.Sub(now) + l.lc.Latency)
	return wait
}

// meanWait returns the smoothed recent queueing delay.
func (l *link) meanWait() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.waitEWMA
}

// LinkStats is a snapshot of one host's ingress counters.
type LinkStats struct {
	Messages int64
	Bytes    int64
	MeanWait time.Duration
}

// Network is the simulated fabric connecting named hosts.
type Network struct {
	clk clock.Clock

	// inj holds the active fault plan, if any (see faults.go). It applies
	// to every established connection, so a plan installed mid-run takes
	// effect immediately.
	inj atomic.Pointer[injector]

	// tr is the active span tracer; links read it on every transmit, so
	// SetTracer takes effect immediately on existing links.
	tr atomic.Pointer[obs.Tracer]

	mu        sync.Mutex
	links     map[string]*link
	listeners map[string]*Listener
}

// SetTracer installs (or removes, with nil) the span tracer observing every
// link transmission: net.wait for ingress queueing, net.xmit for
// serialization, on track "net/<host>".
func (n *Network) SetTracer(t *obs.Tracer) { n.tr.Store(t) }

// NewNetwork returns an empty fabric using clk.
func NewNetwork(clk clock.Clock) *Network {
	if clk == nil {
		clk = clock.Real(1)
	}
	return &Network{clk: clk, links: make(map[string]*link), listeners: make(map[string]*Listener)}
}

// AddHost registers a host with the given ingress link.
func (n *Network) AddHost(name string, lc LinkConfig) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[name] = &link{cfg: n.clk, lc: lc, track: "net/" + name, tr: &n.tr}
}

// RegisterMetrics exposes per-host link counters and the network fault
// counters in a metrics registry. Hosts added after the call are not
// covered; register after topology setup.
func (n *Network) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	n.mu.Lock()
	names := make([]string, 0, len(n.links))
	for name := range n.links {
		names = append(names, name)
	}
	links := make(map[string]*link, len(names))
	for _, name := range names {
		links[name] = n.links[name]
	}
	n.mu.Unlock()
	for _, name := range names {
		l := links[name]
		lb := obs.Labels{"host": name}
		r.CounterFunc("redbud_net_messages_total", "frames transmitted to the host's ingress link", lb, l.msgs.Load)
		r.CounterFunc("redbud_net_bytes_total", "bytes transmitted to the host's ingress link", lb, l.bytes.Load)
		r.GaugeFunc("redbud_net_wait_ns", "smoothed ingress queueing delay in nanoseconds", lb,
			func() int64 { return int64(l.meanWait()) })
	}
	r.CounterFunc("redbud_net_fault_dropped_total", "frames dropped by the fault injector", nil,
		func() int64 { return n.FaultStats().Dropped })
	r.CounterFunc("redbud_net_fault_duplicated_total", "frames duplicated by the fault injector", nil,
		func() int64 { return n.FaultStats().Duplicated })
	r.CounterFunc("redbud_net_fault_delayed_total", "frames delayed by the fault injector", nil,
		func() int64 { return n.FaultStats().Delayed })
	r.CounterFunc("redbud_net_fault_reordered_total", "frames reordered by the fault injector", nil,
		func() int64 { return n.FaultStats().Reordered })
	r.CounterFunc("redbud_net_fault_partitioned_total", "frames blocked by a partition", nil,
		func() int64 { return n.FaultStats().Partitioned })
}

// HostStats returns the ingress counters for a host.
func (n *Network) HostStats(name string) (LinkStats, error) {
	n.mu.Lock()
	l := n.links[name]
	n.mu.Unlock()
	if l == nil {
		return LinkStats{}, fmt.Errorf("%w: %q", ErrUnknownHost, name)
	}
	return LinkStats{Messages: l.msgs.Load(), Bytes: l.bytes.Load(), MeanWait: l.meanWait()}, nil
}

// CongestionWait returns the smoothed ingress queueing delay at a host — the
// signal the adaptive compound controller reads.
func (n *Network) CongestionWait(name string) time.Duration {
	n.mu.Lock()
	l := n.links[name]
	n.mu.Unlock()
	if l == nil {
		return 0
	}
	return l.meanWait()
}

// Listener accepts inbound connections for one host.
type Listener struct {
	host   string
	accept chan Conn
	done   chan struct{}
	once   sync.Once
}

// Listen registers (or replaces) the listener for host name. The host must
// have been added first.
func (n *Network) Listen(name string) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.links[name] == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, name)
	}
	l := &Listener{host: name, accept: make(chan Conn, 64), done: make(chan struct{})}
	n.listeners[name] = l
	return l, nil
}

// Accept blocks for the next inbound connection, or returns io.EOF after
// Close.
func (l *Listener) Accept() (Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, io.EOF
	}
}

// Close stops the listener. Established connections are unaffected.
func (l *Listener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

// Dial connects from one host to another's listener, returning the
// client-side connection half.
func (n *Network) Dial(from, to string) (Conn, error) {
	n.mu.Lock()
	src, dst := n.links[from], n.links[to]
	lis := n.listeners[to]
	n.mu.Unlock()
	if src == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, from)
	}
	if dst == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, to)
	}
	if lis == nil {
		return nil, fmt.Errorf("netsim: host %q is not listening", to)
	}
	client, server := newPair(n, from, to, src, dst)
	// Check done first: the accept channel is buffered, so a plain select
	// could enqueue into a closed listener.
	select {
	case <-lis.done:
		return nil, io.EOF
	default:
	}
	select {
	case lis.accept <- server:
		return client, nil
	case <-lis.done:
		return nil, io.EOF
	}
}

// simConn is one half of a simulated connection.
type simConn struct {
	net      *Network
	from, to string // host names, for fault-plan lookup
	ingress  *link  // destination's ingress link; Send pays its cost
	in       chan []byte
	peer     *simConn
	done     chan struct{}
	once     *sync.Once

	holdMu sync.Mutex
	held   []byte // frame parked by a reorder fault
}

// newPair builds the two halves of a connection between hosts with ingress
// links src (client host) and dst (server host).
func newPair(n *Network, fromHost, toHost string, src, dst *link) (client, server *simConn) {
	done := make(chan struct{})
	once := &sync.Once{}
	client = &simConn{net: n, from: fromHost, to: toHost, ingress: dst, in: make(chan []byte, 1024), done: done, once: once}
	server = &simConn{net: n, from: toHost, to: fromHost, ingress: src, in: make(chan []byte, 1024), done: done, once: once}
	client.peer = server
	server.peer = client
	return client, server
}

//redbud:hotpath
func (c *simConn) Send(frame []byte) error {
	if len(frame) > maxFrame {
		//lint:allow hotpath — oversize-frame error path, never taken at steady state
		return fmt.Errorf("%w: %d bytes", ErrFrameSize, len(frame))
	}
	// Copy: the caller may reuse the buffer after Send returns. The copy
	// comes from the frame pool; the receiving RPC loop returns it.
	f := wire.GetFrame(len(frame))
	copy(f, frame)
	return c.sendOwned(f)
}

// SendVec gathers hdr+payload into one pooled frame — a single copy with no
// intermediate concatenation buffer.
//
//redbud:hotpath
func (c *simConn) SendVec(hdr, payload []byte) error {
	n := len(hdr) + len(payload)
	if n > maxFrame {
		//lint:allow hotpath — oversize-frame error path, never taken at steady state
		return fmt.Errorf("%w: %d bytes", ErrFrameSize, n)
	}
	f := wire.GetFrame(n)
	copy(f, hdr)
	copy(f[len(hdr):], payload)
	return c.sendOwned(f)
}

// sendOwned transmits f, taking ownership: f must be a pooled frame the
// caller will not touch again. It is either delivered to the peer (whose
// consumer recycles it) or returned to the pool here.
//
//redbud:hotpath
func (c *simConn) sendOwned(f []byte) error {
	select {
	case <-c.done:
		wire.PutFrame(f)
		return ErrClosed
	default:
	}
	var d Decision
	if c.net != nil {
		if inj := c.net.inj.Load(); inj != nil {
			d = inj.decide(c.from, c.to, len(f))
		}
	}
	// The sender always pays transmission: a dropped frame was serialized
	// onto the wire and lost, not never sent.
	c.ingress.transmit(len(f))
	if d.Delay > 0 {
		c.net.clk.Sleep(d.Delay)
	}
	if d.Drop {
		wire.PutFrame(f)
		return nil
	}
	if d.Hold {
		c.holdMu.Lock()
		if c.held == nil {
			c.held = f
			c.holdMu.Unlock()
			go c.flushHeldAfter(d.HoldFor)
			return nil
		}
		// Already holding one frame; deliver this one normally so at most
		// one frame per connection is ever parked.
		c.holdMu.Unlock()
	}
	// Take the duplicate's copy before handing f to the peer: once
	// delivered, the peer may decode and recycle f at any moment.
	var g []byte
	if d.Dup {
		g = wire.GetFrame(len(f))
		copy(g, f)
	}
	if err := c.deliver(f); err != nil {
		wire.PutFrame(f)
		if g != nil {
			wire.PutFrame(g)
		}
		return err
	}
	if g != nil {
		if err := c.deliver(g); err != nil {
			wire.PutFrame(g)
			return err
		}
	}
	c.flushHeld()
	return nil
}

func (c *simConn) deliver(f []byte) error {
	select {
	case c.peer.in <- f:
		return nil
	case <-c.done:
		return ErrClosed
	}
}

// flushHeld delivers the parked reorder frame, if any.
func (c *simConn) flushHeld() {
	c.holdMu.Lock()
	h := c.held
	c.held = nil
	c.holdMu.Unlock()
	if h != nil {
		c.deliver(h)
	}
}

// flushHeldAfter bounds how long a reordered frame can wait for a successor
// frame on a quiet link.
func (c *simConn) flushHeldAfter(d time.Duration) {
	if d <= 0 {
		d = time.Millisecond
	}
	select {
	case <-c.net.clk.After(d):
		c.flushHeld()
	case <-c.done:
	}
}

func (c *simConn) Recv() ([]byte, error) {
	select {
	case f := <-c.in:
		return f, nil
	case <-c.done:
		// Drain anything already delivered before reporting EOF.
		select {
		case f := <-c.in:
			return f, nil
		default:
			return nil, io.EOF
		}
	}
}

func (c *simConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}

// tcpConn adapts a net.Conn (or net.Pipe end) to the frame interface with a
// u32 length prefix.
type tcpConn struct {
	c   net.Conn
	rmu sync.Mutex
	wmu sync.Mutex
	// SendVec scratch, guarded by wmu: the length-prefix bytes and the
	// gather-list backing array, kept on the conn so neither escapes per
	// call. WriteTo advances the slice header it is given, never the array.
	pfx  [4]byte
	vecs [3][]byte
}

// FrameConn wraps a stream connection in the frame-oriented Conn interface.
func FrameConn(c net.Conn) Conn { return &tcpConn{c: c} }

func (t *tcpConn) Send(frame []byte) error {
	if len(frame) > maxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameSize, len(frame))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(frame)))
	t.wmu.Lock()
	defer t.wmu.Unlock()
	if _, err := t.c.Write(hdr[:]); err != nil {
		return err
	}
	_, err := t.c.Write(frame)
	return err
}

// SendVec writes the length prefix, header and payload as one gathered
// writev-style burst (net.Buffers uses writev on platforms that have it),
// avoiding both a concatenation buffer and extra syscalls.
func (t *tcpConn) SendVec(hdr, payload []byte) error {
	n := len(hdr) + len(payload)
	if n > maxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameSize, n)
	}
	t.wmu.Lock()
	defer t.wmu.Unlock()
	binary.LittleEndian.PutUint32(t.pfx[:], uint32(n))
	bufs := net.Buffers(append(t.vecs[:0], t.pfx[:]))
	if len(hdr) > 0 {
		bufs = append(bufs, hdr)
	}
	if len(payload) > 0 {
		bufs = append(bufs, payload)
	}
	_, err := bufs.WriteTo(t.c)
	t.vecs = [3][]byte{} // drop the references; the array itself is reused
	return err
}

func (t *tcpConn) Recv() ([]byte, error) {
	t.rmu.Lock()
	defer t.rmu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(t.c, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameSize, n)
	}
	f := wire.GetFrame(int(n))
	if _, err := io.ReadFull(t.c, f); err != nil {
		wire.PutFrame(f)
		return nil, err
	}
	return f, nil
}

func (t *tcpConn) Close() error { return t.c.Close() }
