package iotrace

import (
	"strings"
	"sync"
	"testing"
	"time"

	"redbud/internal/blockdev"
	"redbud/internal/clock"
)

func ev(t time.Duration, op blockdev.Op, off, n, seek int64, merged int) blockdev.Event {
	return blockdev.Event{T: clock.Epoch.Add(t), Op: op, Offset: off, Length: n, SeekLen: seek, Merged: merged}
}

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	if r.Len() != 0 {
		t.Fatal("new recorder not empty")
	}
	r.Record(ev(0, blockdev.OpWrite, 0, 4096, 0, 0))
	r.Record(ev(time.Millisecond, blockdev.OpWrite, 1<<20, 4096, 1<<20-4096, 2))
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	evs := r.Events()
	evs[0].Offset = 999
	if r.Events()[0].Offset == 999 {
		t.Fatal("Events returned a view, not a copy")
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Record(ev(0, blockdev.OpWrite, 0, 1, 0, 0))
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestSeekSeriesFiltersReads(t *testing.T) {
	r := NewRecorder()
	r.Record(ev(0, blockdev.OpWrite, 100, 10, 100, 0))
	r.Record(ev(time.Millisecond, blockdev.OpRead, 500, 10, 390, 0))
	r.Record(ev(2*time.Millisecond, blockdev.OpWrite, 110, 10, 400, 0))
	s := r.SeekSeries()
	if len(s) != 2 {
		t.Fatalf("series len = %d, want 2 (reads filtered)", len(s))
	}
	if s[0].T != 0 || s[1].T != 2*time.Millisecond {
		t.Fatalf("timestamps not relative to first event: %+v", s)
	}
	if s[1].Offset != 110 || s[1].Seek != 400 {
		t.Fatalf("series point = %+v", s[1])
	}
}

func TestSeekSeriesEmpty(t *testing.T) {
	if s := NewRecorder().SeekSeries(); s != nil {
		t.Fatalf("empty series = %v", s)
	}
}

func TestSummarize(t *testing.T) {
	r := NewRecorder()
	r.Record(ev(0, blockdev.OpWrite, 0, 4096, 0, 0))         // sequential
	r.Record(ev(0, blockdev.OpWrite, 1<<20, 8192, 1<<20, 3)) // short seek, 3 merged
	r.Record(ev(0, blockdev.OpWrite, 1<<30, 4096, 1<<30, 0)) // long seek (spike)
	s := r.Summarize()
	if s.Dispatches != 3 || s.Merged != 3 || s.Seeks != 2 || s.LongSeeks != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Bytes != 4096+8192+4096 {
		t.Fatalf("bytes = %d", s.Bytes)
	}
	if s.SeekBytes != 1<<20+1<<30 {
		t.Fatalf("seek bytes = %d", s.SeekBytes)
	}
	if s.MeanSeekLen <= 0 {
		t.Fatalf("mean seek = %v", s.MeanSeekLen)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := NewRecorder().Summarize()
	if s.Dispatches != 0 || s.MeanSeekLen != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	r.Record(ev(0, blockdev.OpWrite, 4096, 100, 4096, 0))
	r.Record(ev(1500*time.Microsecond, blockdev.OpWrite, 8192, 100, 0, 1))
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d: %q", len(lines), sb.String())
	}
	if lines[0] != "t_us,offset,seek" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[2] != "1500,8192,0" {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	fn := Multi(a.Record, b.Record)
	fn(ev(0, blockdev.OpWrite, 0, 1, 0, 0))
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out failed: %d %d", a.Len(), b.Len())
	}
}

// TestAgainstLiveDevice wires a recorder to a real simulated device and
// checks the recorded trace matches device stats.
func TestAgainstLiveDevice(t *testing.T) {
	r := NewRecorder()
	d := blockdev.New(blockdev.Config{Size: 1 << 24, Model: blockdev.ZeroLatency(), Clock: clock.Real(1), Trace: r.Record})
	defer d.Close()
	for i := 0; i < 10; i++ {
		if err := d.Write(int64(i)*1<<20, make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	sum := r.Summarize()
	if int64(sum.Dispatches) != s.Dispatched {
		t.Fatalf("trace dispatches %d != device %d", sum.Dispatches, s.Dispatched)
	}
	if int64(sum.Seeks) != s.Seeks {
		t.Fatalf("trace seeks %d != device %d", sum.Seeks, s.Seeks)
	}
}

func TestRecorderCapRing(t *testing.T) {
	r := NewRecorderCap(4)
	for i := 0; i < 7; i++ {
		r.Record(ev(time.Duration(i)*time.Millisecond, blockdev.OpWrite, int64(i)*512, 512, 0, 1))
	}
	if r.Len() != 4 || r.Dropped() != 3 {
		t.Fatalf("Len/Dropped = %d/%d, want 4/3", r.Len(), r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d, want 4", len(evs))
	}
	// Oldest first: events 3..6 survive, in dispatch order.
	for i, e := range evs {
		if want := int64(i+3) * 512; e.Offset != want {
			t.Errorf("event %d offset = %d, want %d", i, e.Offset, want)
		}
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 || len(r.Events()) != 0 {
		t.Fatal("Reset left state behind")
	}
	// The ring stays capped after Reset.
	for i := 0; i < 5; i++ {
		r.Record(ev(time.Duration(i)*time.Millisecond, blockdev.OpWrite, int64(i), 512, 0, 1))
	}
	if r.Len() != 4 || r.Dropped() != 1 {
		t.Fatalf("after Reset: Len/Dropped = %d/%d, want 4/1", r.Len(), r.Dropped())
	}
}

func TestRecorderCapZeroUnbounded(t *testing.T) {
	r := NewRecorderCap(0)
	for i := 0; i < 100; i++ {
		r.Record(ev(0, blockdev.OpWrite, int64(i), 512, 0, 1))
	}
	if r.Len() != 100 || r.Dropped() != 0 {
		t.Fatalf("unbounded recorder Len/Dropped = %d/%d", r.Len(), r.Dropped())
	}
}
