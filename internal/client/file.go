package client

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"redbud/internal/core"
	"redbud/internal/fsapi"
	"redbud/internal/meta"
	"redbud/internal/obs"
	"redbud/internal/proto"
)

// maxCachedPages bounds each file's page cache; once the file quiesces
// (no in-flight writes) an oversized cache is dropped. The data is already
// durable on the shared array at that point and reads re-fetch it, so this
// is purely a memory bound ("drop-behind").
const maxCachedPages = 1024

// fileState is the client-side inode: shared by every open handle of a file.
type fileState struct {
	id   meta.FileID
	mu   sync.Mutex
	cond *sync.Cond

	size          int64 // local view, includes uncommitted writes
	committedSize int64 // as last acknowledged by the MDS
	mtime         time.Time

	// extents is the locally known layout, sorted by FileOff: MDS-granted
	// extents plus delegation-carved ones.
	extents []meta.Extent
	// pages caches file data at PageSize granularity.
	pages map[int64][]byte

	pendingWrites int    // in-flight device writes
	writeGen      uint64 // bumped by every write (read-ahead race guard)
	raNext        int64  // expected offset of the next sequential read
	raInflight    bool   // a prefetch is running
	writeErr      error
	commitErr     error
	dirtyMeta     bool   // something to commit
	commitGen     uint64 // bumped by every finished commit
	refs          int
	enqAt         time.Time // first enqueue of the current queue residency (tracing)
}

func newFileState(id meta.FileID, size int64) *fileState {
	fs := &fileState{id: id, size: size, committedSize: size, pages: make(map[int64][]byte)}
	fs.cond = sync.NewCond(&fs.mu)
	return fs
}

// waitWritesLocked blocks until in-flight device writes finish. Caller holds
// fs.mu.
func (fs *fileState) waitWritesLocked() {
	for fs.pendingWrites > 0 {
		fs.cond.Wait()
	}
}

// gapsLocked returns sub-ranges of [off, end) not covered by extents.
func (fs *fileState) gapsLocked(off, end int64) [][2]int64 {
	var out [][2]int64
	cur := off
	for _, e := range fs.extents {
		if e.End() <= cur {
			continue
		}
		if e.FileOff >= end {
			break
		}
		if e.FileOff > cur {
			out = append(out, [2]int64{cur, e.FileOff})
		}
		if e.End() > cur {
			cur = e.End()
		}
	}
	if cur < end {
		out = append(out, [2]int64{cur, end})
	}
	return out
}

// overlapsKnownLocked reports whether e overlaps any locally known extent.
func (fs *fileState) overlapsKnownLocked(e meta.Extent) bool {
	for _, have := range fs.extents {
		if e.FileOff < have.End() && have.FileOff < e.End() {
			return true
		}
	}
	return false
}

// insertExtentLocked merges a new extent, skipping overlaps with known ones.
func (fs *fileState) insertExtentLocked(e meta.Extent) {
	if fs.overlapsKnownLocked(e) {
		return // already covered (MDS reuses extents on overwrite)
	}
	i := 0
	for i < len(fs.extents) && fs.extents[i].FileOff < e.FileOff {
		i++
	}
	fs.extents = append(fs.extents, meta.Extent{})
	copy(fs.extents[i+1:], fs.extents[i:])
	fs.extents[i] = e
}

// cachePagesLocked stores the covered pages of [off, off+len(p)) and patches
// partially covered pages that are already cached. An uncached partially
// covered page is cached only when the uncovered remainder lies beyond the
// current end of file — those bytes are genuinely zero, so no data is
// fabricated. Other uncached partial pages are written through: caching them
// would invent zeros over real on-disk data.
func (fs *fileState) cachePagesLocked(p []byte, off int64) {
	end := off + int64(len(p))
	for pg := off / PageSize; pg*PageSize < end; pg++ {
		pstart, pend := pg*PageSize, (pg+1)*PageSize
		cstart, cend := max64(pstart, off), min64(pend, end)
		page := fs.pages[pg]
		if page == nil {
			full := cstart == pstart && cend == pend
			tail := cstart == pstart && cend >= fs.size // rest is past EOF
			if !full && !tail {
				continue // partial mid-file, uncached: write through
			}
			page = make([]byte, PageSize)
			fs.pages[pg] = page
		}
		copy(page[cstart-pstart:cend-pstart], p[cstart-off:cend-off])
	}
}

// dropCacheIfOversizedLocked implements drop-behind.
func (fs *fileState) dropCacheIfOversizedLocked() {
	if fs.pendingWrites == 0 && len(fs.pages) > maxCachedPages {
		fs.pages = make(map[int64][]byte)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// File is an open handle implementing fsapi.File.
type File struct {
	c      *Client
	fs     *fileState
	closed bool
	mu     sync.Mutex
}

var _ fsapi.File = (*File)(nil)

// devWrite is one planned device I/O.
type devWrite struct {
	dev    uint32
	volOff int64
	data   []byte
}

// WriteAt implements the update operation: data into the cache and out to
// the shared array asynchronously; metadata committed per the client's mode.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if off < 0 {
		return 0, fmt.Errorf("client: negative offset %d", off)
	}
	c, fs := f.c, f.fs
	start := c.clk.Now()
	end := off + int64(len(p))

	fs.mu.Lock()
	if err := fs.writeErr; err != nil {
		fs.mu.Unlock()
		return 0, err
	}
	// 1. Ensure extents cover the range, preferring delegated space.
	if err := c.ensureExtents(fs, off, end); err != nil {
		fs.mu.Unlock()
		return 0, err
	}
	// 2. Page cache.
	fs.cachePagesLocked(p, off)
	if end > fs.size {
		fs.size = end
	}
	fs.mtime = c.clk.Now()
	fs.dirtyMeta = true
	fs.writeGen++
	// 3. Plan the writepage calls.
	writes, err := c.planIO(fs, p, off)
	if err != nil {
		fs.mu.Unlock()
		return 0, err
	}
	fs.pendingWrites += len(writes)
	fs.mu.Unlock()

	// 4. Issue writepage to the storage devices (asynchronously).
	for _, w := range writes {
		dev, err := c.dev(w.dev)
		if err != nil {
			fs.mu.Lock()
			fs.pendingWrites--
			fs.writeErr = err
			fs.cond.Broadcast()
			fs.mu.Unlock()
			continue
		}
		ch := dev.WriteAsync(w.volOff, w.data)
		go func() {
			werr := <-ch
			fs.mu.Lock()
			fs.pendingWrites--
			if werr != nil && fs.writeErr == nil {
				fs.writeErr = werr
			}
			fs.dropCacheIfOversizedLocked()
			fs.cond.Broadcast()
			fs.mu.Unlock()
		}()
	}

	// 5. Hand the ordering obligation over (delayed) or carry it here
	//    (sync).
	c.st.writes.Inc()
	c.st.bytesWritten.Add(int64(len(p)))
	var werr error
	if c.cfg.Mode == SyncCommit {
		fs.mu.Lock()
		fs.waitWritesLocked() // the spin-until-durable barrier of §III-A
		werr = fs.writeErr
		fs.mu.Unlock()
		if werr == nil {
			werr = c.commitFile(fs)
		}
	} else {
		werr = c.enqueueCommit(fs)
	}
	if c.tracer.Enabled() {
		c.tracer.Record(c.trackApp, obs.SpanAppWrite, 0, start, c.clk.Now())
	}
	c.st.writeLat.Observe(c.clk.Since(start))
	if werr != nil {
		return 0, werr
	}
	return len(p), nil
}

// ensureExtents covers [off, end) with extents, allocating from the
// delegation pool when possible, otherwise via a layout-get RPC. Caller
// holds fs.mu; the MDS path drops and reacquires it.
func (c *Client) ensureExtents(fs *fileState, off, end int64) error {
	holes := fs.gapsLocked(off, end)
	if len(holes) == 0 {
		return nil
	}
	if pool := c.spacePool(); pool != nil {
		remaining := holes[:0]
		for _, h := range holes {
			sp, err := pool.Alloc(h[1] - h[0])
			if err != nil {
				if errors.Is(err, core.ErrTooLarge) {
					remaining = append(remaining, h)
					continue
				}
				return err
			}
			fs.insertExtentLocked(meta.Extent{
				FileOff: h[0], Len: sp.Len, Dev: uint32(sp.Dev), VolOff: sp.Off,
				State: meta.StateUncommitted,
			})
		}
		holes = remaining
	}
	if len(holes) == 0 {
		return nil
	}
	// Large (or undelegated) ranges apply to the MDS directly.
	fs.mu.Unlock()
	var lay proto.LayoutResp
	// Idempotent retry is safe: re-allocating the same range returns the
	// extents the first attempt created.
	err := c.callIdem(c.shardFor(fs.id), proto.OpLayoutGet, &proto.LayoutGetReq{
		Owner: c.cfg.Name, File: fs.id, Off: off, Len: end - off, Flags: meta.LayoutWrite,
	}, &lay)
	fs.mu.Lock()
	if err != nil {
		return mapRemote(err)
	}
	for _, e := range lay.Extents {
		fs.insertExtentLocked(e)
	}
	if rest := fs.gapsLocked(off, end); len(rest) > 0 {
		return fmt.Errorf("client: layout for file %d leaves %d holes", fs.id, len(rest))
	}
	return nil
}

// planIO maps [off, off+len(p)) onto device writes via the extent list.
// Caller holds fs.mu.
func (c *Client) planIO(fs *fileState, p []byte, off int64) ([]devWrite, error) {
	end := off + int64(len(p))
	var out []devWrite
	for _, e := range fs.extents {
		if e.End() <= off {
			continue
		}
		if e.FileOff >= end {
			break
		}
		s, t := max64(e.FileOff, off), min64(e.End(), end)
		out = append(out, devWrite{
			dev:    e.Dev,
			volOff: e.VolOff + (s - e.FileOff),
			data:   p[s-off : t-off],
		})
	}
	var covered int64
	for _, w := range out {
		covered += int64(len(w.data))
	}
	if covered != int64(len(p)) {
		return nil, fmt.Errorf("client: write plan covers %d of %d bytes", covered, len(p))
	}
	return out, nil
}

// Append writes at the end of file, returning the offset written.
func (f *File) Append(p []byte) (int64, error) {
	fs := f.fs
	fs.mu.Lock()
	off := fs.size
	fs.size = off + int64(len(p)) // reserve to serialize concurrent appends
	fs.mu.Unlock()
	if _, err := f.WriteAt(p, off); err != nil {
		return 0, err
	}
	return off, nil
}

// ReadAt serves reads from the page cache, falling back to the shared array
// through the extent map; holes read as zeros. Reads of this client's own
// uncommitted writes are satisfied locally (conflict reads, §V-C NPB).
//
// With EarlyVisibility on (and protocol v2 negotiated), a conflict read
// that finds layout holes — or reaches past the locally known size — asks
// the MDS for uncommitted extents too: other clients' published write
// intents, served directly from the devices instead of stalling until the
// writer's commit lands.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	c, fs := f.c, f.fs
	if off < 0 {
		return 0, fmt.Errorf("client: negative offset %d", off)
	}
	wantVis := c.earlyVisible()
	fs.mu.Lock()
	limit := fs.size
	reqEnd := off + int64(len(p))

	// vis holds other writers' uncommitted extents, for this call only.
	// They must never enter fs.extents: the commit builder sweeps every
	// uncommitted extent it finds there, and a reader must neither commit
	// a foreign writer's intent nor cache it past its possible rollback.
	var vis []meta.Extent

	// Decide whether to consult the MDS before serving locally: part of
	// the in-bounds range is neither cached nor covered by known extents.
	probe := false
	if len(fs.uncachedRanges(off, min64(reqEnd, limit))) > 0 {
		if holes := fs.gapsLocked(off, min64(reqEnd, limit)); len(holes) > 0 && (fs.committedSizeMayCover(holes) || wantVis) {
			probe = true
		}
	}
	if wantVis && reqEnd > limit {
		probe = true // the file may have grown via a visible intent
	}
	if off >= limit && !probe {
		fs.mu.Unlock()
		return 0, nil
	}
	if probe {
		flags := meta.LayoutFlags(0)
		if wantVis {
			flags |= meta.LayoutWantUncommitted
		}
		fs.mu.Unlock()
		var lay proto.LayoutResp
		err := c.callIdem(c.shardFor(fs.id), proto.OpLayoutGet, &proto.LayoutGetReq{
			Owner: c.cfg.Name, File: fs.id, Off: off, Len: reqEnd - off, Flags: flags,
		}, &lay)
		fs.mu.Lock()
		if err != nil {
			fs.mu.Unlock()
			return 0, mapRemote(err)
		}
		for _, e := range lay.Extents {
			if e.State == meta.StateCommitted {
				fs.insertExtentLocked(e)
			} else if !fs.overlapsKnownLocked(e) {
				vis = append(vis, e)
			}
		}
		if wantVis {
			// lay.Size is the visible size (committed size plus published
			// intents): it bounds this read but is not a committed size.
			if lay.Size > limit {
				limit = lay.Size
			}
		} else if lay.Size > fs.committedSize {
			fs.committedSize = lay.Size
		}
	}
	if off >= limit {
		fs.mu.Unlock()
		return 0, nil
	}
	n := min64(int64(len(p)), limit-off)
	end := off + n

	missing := fs.uncachedRanges(off, end)
	if len(missing) > 0 {
		// Device reads must observe completed writes: quiesce first.
		fs.waitWritesLocked()
		missing = fs.uncachedRanges(off, end)
	}
	// Snapshot what each missing range maps to: the known layout plus this
	// call's transient uncommitted extents.
	type fetch struct {
		dev         uint32
		volOff      int64
		fileOff, ln int64
	}
	var fetches []fetch
	for _, m := range missing {
		for _, exts := range [][]meta.Extent{fs.extents, vis} {
			for _, e := range exts {
				if e.End() <= m[0] || e.FileOff >= m[1] {
					continue
				}
				s, t := max64(e.FileOff, m[0]), min64(e.End(), m[1])
				fetches = append(fetches, fetch{dev: e.Dev, volOff: e.VolOff + (s - e.FileOff), fileOff: s, ln: t - s})
			}
		}
	}
	// Copy the cached portion while still locked.
	for i := int64(0); i < n; {
		pg := (off + i) / PageSize
		pstart := pg * PageSize
		cstart := off + i
		cend := min64(pstart+PageSize, end)
		if page := fs.pages[pg]; page != nil {
			copy(p[cstart-off:cend-off], page[cstart-pstart:cend-pstart])
		} else {
			for j := cstart; j < cend; j++ {
				p[j-off] = 0 // holes and to-be-fetched: zero first
			}
		}
		i = cend - off
	}
	fs.mu.Unlock()

	// Issue device reads outside the lock.
	for _, ft := range fetches {
		dev, err := c.dev(ft.dev)
		if err != nil {
			return 0, err
		}
		data, err := dev.Read(ft.volOff, ft.ln)
		if err != nil {
			return 0, err
		}
		copy(p[ft.fileOff-off:ft.fileOff-off+ft.ln], data)
	}
	c.st.reads.Inc()
	c.st.bytesRead.Add(n)
	c.maybeReadAhead(fs, off, n)
	return int(n), nil
}

// uncachedRanges returns the sub-ranges of [off, end) not fully served by
// cached pages. Caller holds fs.mu.
func (fs *fileState) uncachedRanges(off, end int64) [][2]int64 {
	var out [][2]int64
	cur := int64(-1)
	for pg := off / PageSize; pg*PageSize < end; pg++ {
		pstart := max64(pg*PageSize, off)
		if fs.pages[pg] == nil {
			if cur < 0 {
				cur = pstart
			}
		} else if cur >= 0 {
			out = append(out, [2]int64{cur, pstart})
			cur = -1
		}
	}
	if cur >= 0 {
		out = append(out, [2]int64{cur, end})
	}
	return out
}

// committedSizeMayCover reports whether any hole could be backed by
// committed data at the MDS (otherwise the layout RPC is pointless).
func (fs *fileState) committedSizeMayCover(holes [][2]int64) bool {
	for _, h := range holes {
		if h[0] < fs.committedSize {
			return true
		}
	}
	return false
}

// Size returns the handle's view of the file size.
func (f *File) Size() int64 {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return f.fs.size
}

// Sync flushes data and forces an immediate synchronous commit — the escape
// hatch the paper prescribes for applications that cannot afford the delayed
// window ("applications that cannot afford data loss should explicitly call
// fsync", §III-A).
func (f *File) Sync() error {
	f.c.st.fsyncs.Inc()
	if err := f.c.commitFile(f.fs); err != nil {
		return err
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return f.fs.commitErr
}

// Close releases the handle. Under delayed commit it returns immediately —
// pending commits continue in the background (the close-latency win of
// §V-C); under sync commit everything is already durable.
func (f *File) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return fsapi.ErrClosed
	}
	f.closed = true
	f.mu.Unlock()
	start := f.c.clk.Now()
	f.fs.mu.Lock()
	f.fs.refs--
	err := f.fs.writeErr
	f.fs.mu.Unlock()
	f.c.st.closes.Inc()
	f.c.st.closeLat.Observe(f.c.clk.Since(start))
	return err
}
