package proto

import (
	"testing"
	"testing/quick"
	"time"

	"redbud/internal/meta"
	"redbud/internal/wire"
)

func roundTrip(t *testing.T, in wire.Marshaler, out wire.Unmarshaler) {
	t.Helper()
	if err := wire.Decode(wire.Encode(in), out); err != nil {
		t.Fatalf("%T round trip: %v", in, err)
	}
}

func TestPingRoundTrip(t *testing.T) {
	roundTrip(t, &PingReq{}, &PingReq{})
}

func TestLookupRoundTrip(t *testing.T) {
	in := &LookupReq{Parent: 7, Name: "dir entry"}
	var out LookupReq
	roundTrip(t, in, &out)
	if out != *in {
		t.Fatalf("got %+v", out)
	}
}

func TestAttrRoundTripAndConversion(t *testing.T) {
	a := meta.Attr{ID: 9, Type: meta.TypeDir, Size: 123, MTime: time.Unix(5, 6).UTC()}
	msg := FromAttr(a)
	var out AttrResp
	roundTrip(t, &msg, &out)
	back := out.Attr()
	if back.ID != a.ID || back.Type != a.Type || back.Size != a.Size || !back.MTime.Equal(a.MTime) {
		t.Fatalf("got %+v, want %+v", back, a)
	}
}

func TestCreateRoundTrip(t *testing.T) {
	in := &CreateReq{Parent: 1, Name: "f", Type: meta.TypeFile}
	var out CreateReq
	roundTrip(t, in, &out)
	if out != *in {
		t.Fatalf("got %+v", out)
	}
}

func TestReadDirRoundTrip(t *testing.T) {
	in := &ReadDirResp{Entries: []meta.DirEnt{
		{Name: "a", ID: 2, Type: meta.TypeFile, Size: 42},
		{Name: "b", ID: 3, Type: meta.TypeDir},
	}}
	var out ReadDirResp
	roundTrip(t, in, &out)
	if len(out.Entries) != 2 || out.Entries[0] != in.Entries[0] || out.Entries[1] != in.Entries[1] {
		t.Fatalf("got %+v", out.Entries)
	}
	// Empty list.
	var empty ReadDirResp
	roundTrip(t, &ReadDirResp{}, &empty)
	if len(empty.Entries) != 0 {
		t.Fatalf("empty round trip: %+v", empty.Entries)
	}
}

func TestLayoutRoundTrip(t *testing.T) {
	in := &LayoutResp{File: 4, Size: 9999, Extents: []meta.Extent{
		{FileOff: 0, Len: 4096, Dev: 1, VolOff: 1 << 20, State: meta.StateCommitted},
		{FileOff: 4096, Len: 512, Dev: 2, VolOff: 7, State: meta.StateUncommitted},
	}}
	var out LayoutResp
	roundTrip(t, in, &out)
	if out.File != 4 || out.Size != 9999 || len(out.Extents) != 2 || out.Extents[1] != in.Extents[1] {
		t.Fatalf("got %+v", out)
	}
}

func TestLayoutGetReqRoundTrip(t *testing.T) {
	for _, flags := range []meta.LayoutFlags{0, meta.LayoutWrite, meta.LayoutWantUncommitted, meta.LayoutWrite | meta.LayoutWantUncommitted} {
		in := &LayoutGetReq{Owner: "c9", File: 11, Off: 100, Len: 200, Flags: flags}
		var out LayoutGetReq
		roundTrip(t, in, &out)
		if out != *in {
			t.Fatalf("got %+v", out)
		}
	}
}

// TestLayoutGetReqV1WireCompat proves the Flags byte occupies exactly the
// position the v1 `Write bool` used: a frame hand-encoded the v1 way decodes
// into the v2 struct with only the write bit set, and a v2 frame using only
// the write bit is byte-identical to the v1 encoding.
func TestLayoutGetReqV1WireCompat(t *testing.T) {
	var b wire.Buffer
	b.PutString("c9")
	b.PutU64(11)
	b.PutI64(100)
	b.PutI64(200)
	b.PutBool(true) // v1 Write field
	v1 := append([]byte(nil), b.Bytes()...)

	var out LayoutGetReq
	if err := wire.Decode(v1, &out); err != nil {
		t.Fatalf("decode v1 frame: %v", err)
	}
	if out.Flags != meta.LayoutWrite {
		t.Fatalf("v1 Write bool decoded as flags %v, want %v", out.Flags, meta.LayoutWrite)
	}
	v2 := wire.Encode(&LayoutGetReq{Owner: "c9", File: 11, Off: 100, Len: 200, Flags: meta.LayoutWrite})
	if string(v2) != string(v1) {
		t.Fatalf("v2 write-only frame differs from v1 encoding:\n v1 % x\n v2 % x", v1, v2)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	in := &HelloReq{Owner: "c3", ProtoVersion: ProtoV2}
	var out HelloReq
	roundTrip(t, in, &out)
	if out != *in {
		t.Fatalf("got %+v", out)
	}
	// A v2 reply carries no shard fields; decoding fills in the
	// single-shard default {0, 1}.
	rin := &HelloResp{Incarnation: 7, ProtoVersion: ProtoV2, ShardCount: 1}
	var rout HelloResp
	roundTrip(t, rin, &rout)
	if rout != *rin {
		t.Fatalf("got %+v", rout)
	}
	// A v3 reply round-trips its shard coordinates.
	sin := &HelloResp{Incarnation: 9, ProtoVersion: ProtoV3, ShardIndex: 2, ShardCount: 4}
	var sout HelloResp
	roundTrip(t, sin, &sout)
	if sout != *sin {
		t.Fatalf("got %+v", sout)
	}
}

// TestHelloVersionDowngrade pins the trailing-optional encoding both ways:
// a v1 frame (no version field) decodes as ProtoV1, and a struct whose
// version is v1 (or unset) marshals to exactly the v1 frame — so a v1 peer
// on either side of the handshake never sees bytes it cannot decode.
func TestHelloVersionDowngrade(t *testing.T) {
	var b wire.Buffer
	b.PutString("old")
	var req HelloReq
	if err := wire.Decode(b.Bytes(), &req); err != nil {
		t.Fatalf("decode v1 hello: %v", err)
	}
	if req.ProtoVersion != ProtoV1 {
		t.Fatalf("version-less hello decoded as v%d, want v%d", req.ProtoVersion, ProtoV1)
	}
	for _, ver := range []uint32{0, ProtoV1} {
		if got := wire.Encode(&HelloReq{Owner: "old", ProtoVersion: ver}); string(got) != string(b.Bytes()) {
			t.Fatalf("v%d hello not encoded as the v1 frame: % x", ver, got)
		}
	}
	var rb wire.Buffer
	rb.PutU64(9)
	var resp HelloResp
	if err := wire.Decode(rb.Bytes(), &resp); err != nil {
		t.Fatalf("decode v1 hello resp: %v", err)
	}
	if resp.Incarnation != 9 || resp.ProtoVersion != ProtoV1 {
		t.Fatalf("got %+v", resp)
	}
	if got := wire.Encode(&HelloResp{Incarnation: 9, ProtoVersion: ProtoV1}); string(got) != string(rb.Bytes()) {
		t.Fatalf("v1 hello resp encoding: % x", got)
	}
}

func TestCommitRoundTrip(t *testing.T) {
	in := &CommitReq{Owner: "c1", File: 5, Size: 777, MTime: time.Unix(9, 0).UTC(),
		Extents: []meta.Extent{{FileOff: 0, Len: 777, Dev: 0, VolOff: 4096}}}
	var out CommitReq
	roundTrip(t, in, &out)
	if out.Owner != in.Owner || out.File != in.File || out.Size != in.Size ||
		!out.MTime.Equal(in.MTime) || len(out.Extents) != 1 || out.Extents[0] != in.Extents[0] {
		t.Fatalf("got %+v", out)
	}
	var cr CommitResp
	roundTrip(t, &CommitResp{Size: 31}, &cr)
	if cr.Size != 31 {
		t.Fatalf("resp = %+v", cr)
	}
}

func TestDelegationRoundTrips(t *testing.T) {
	var dr DelegateReq
	roundTrip(t, &DelegateReq{Owner: "x", Size: 16 << 20}, &dr)
	if dr.Owner != "x" || dr.Size != 16<<20 {
		t.Fatalf("got %+v", dr)
	}
	var sp SpanMsg
	roundTrip(t, &SpanMsg{Dev: 3, Off: 9, Len: 10}, &sp)
	if sp != (SpanMsg{Dev: 3, Off: 9, Len: 10}) {
		t.Fatalf("got %+v", sp)
	}
	var ret DelegReturnReq
	roundTrip(t, &DelegReturnReq{Owner: "y", Span: SpanMsg{Dev: 1, Off: 2, Len: 3}}, &ret)
	if ret.Owner != "y" || ret.Span != (SpanMsg{Dev: 1, Off: 2, Len: 3}) {
		t.Fatalf("got %+v", ret)
	}
}

func TestStatRoundTrip(t *testing.T) {
	in := &StatResp{QueueLen: 5, Load: 200, Processed: 6, SubOps: 7, Files: 8}
	var out StatResp
	roundTrip(t, in, &out)
	if out != *in {
		t.Fatalf("got %+v", out)
	}
}

// Property tests: random messages survive the codec, and random bytes never
// panic the decoders.
func TestQuickCommitReq(t *testing.T) {
	f := func(owner string, file uint64, size int64, fo, l, vo int64, dev uint32, committed bool) bool {
		st := meta.StateUncommitted
		if committed {
			st = meta.StateCommitted
		}
		in := &CommitReq{Owner: owner, File: meta.FileID(file), Size: size, MTime: time.Unix(0, 0).UTC(),
			Extents: []meta.Extent{{FileOff: fo, Len: l, Dev: dev, VolOff: vo, State: st}}}
		var out CommitReq
		if err := wire.Decode(wire.Encode(in), &out); err != nil {
			return false
		}
		return out.Owner == owner && out.File == meta.FileID(file) && out.Size == size &&
			len(out.Extents) == 1 && out.Extents[0] == in.Extents[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecodersNeverPanic(t *testing.T) {
	targets := []func() wire.Unmarshaler{
		func() wire.Unmarshaler { return &LookupReq{} },
		func() wire.Unmarshaler { return &AttrResp{} },
		func() wire.Unmarshaler { return &CreateReq{} },
		func() wire.Unmarshaler { return &ReadDirResp{} },
		func() wire.Unmarshaler { return &LayoutGetReq{} },
		func() wire.Unmarshaler { return &LayoutResp{} },
		func() wire.Unmarshaler { return &CommitReq{} },
		func() wire.Unmarshaler { return &DelegateReq{} },
		func() wire.Unmarshaler { return &DelegReturnReq{} },
		func() wire.Unmarshaler { return &StatResp{} },
		func() wire.Unmarshaler { return &HelloReq{} },
		func() wire.Unmarshaler { return &HelloResp{} },
	}
	f := func(raw []byte, pick uint8) bool {
		_ = wire.Decode(raw, targets[int(pick)%len(targets)]())
		return true // no panic is the property
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestTraceCtxTrailingOptional pins the v4 trace-context contract on every
// traced request: a zero Trace encodes byte-identically to the pre-v4 frame
// (old peers never see the field), a non-zero Trace appends exactly the
// 16-byte (trace ID, span ID) pair after the v3 fields, and both shapes
// decode back losslessly.
func TestTraceCtxTrailingOptional(t *testing.T) {
	tc := TraceCtx{TraceID: 0xdeadbeef, SpanID: 0xcafe}
	check := func(name string, traced, untraced wire.Marshaler, decode func([]byte) (TraceCtx, error)) {
		t.Helper()
		tb, ub := wire.Encode(traced), wire.Encode(untraced)
		if len(tb) != len(ub)+16 {
			t.Fatalf("%s: traced frame is %d bytes, untraced %d; want exactly +16", name, len(tb), len(ub))
		}
		if string(tb[:len(ub)]) != string(ub) {
			t.Fatalf("%s: trace context not trailing — the v3 prefix changed", name)
		}
		if got, err := decode(tb); err != nil || got != tc {
			t.Fatalf("%s: traced decode = %+v, %v", name, got, err)
		}
		if got, err := decode(ub); err != nil || got != (TraceCtx{}) {
			t.Fatalf("%s: v3-shaped decode = %+v, %v; want untraced", name, got, err)
		}
	}

	check("commit",
		&CommitReq{Owner: "c", File: 5, Size: 9, MTime: time.Unix(1, 0).UTC(), CommitID: 3,
			Extents: []meta.Extent{{Len: 9, VolOff: 4096}}, Trace: tc},
		&CommitReq{Owner: "c", File: 5, Size: 9, MTime: time.Unix(1, 0).UTC(), CommitID: 3,
			Extents: []meta.Extent{{Len: 9, VolOff: 4096}}},
		func(p []byte) (TraceCtx, error) { var m CommitReq; err := wire.Decode(p, &m); return m.Trace, err })
	check("create-detached",
		&CreateDetachedReq{Parent: 1, Name: "f", Trace: tc},
		&CreateDetachedReq{Parent: 1, Name: "f"},
		func(p []byte) (TraceCtx, error) {
			var m CreateDetachedReq
			err := wire.Decode(p, &m)
			return m.Trace, err
		})
	check("ns-prepare",
		&NSPrepareReq{File: 2, Kind: meta.NSRenameSrc, Parent: 1, Name: "a", DstParent: 3, DstName: "b", Trace: tc},
		&NSPrepareReq{File: 2, Kind: meta.NSRenameSrc, Parent: 1, Name: "a", DstParent: 3, DstName: "b"},
		func(p []byte) (TraceCtx, error) { var m NSPrepareReq; err := wire.Decode(p, &m); return m.Trace, err })
	check("ns-commit",
		&NSCommitReq{File: 2, Kind: meta.NSRemove, Trace: tc},
		&NSCommitReq{File: 2, Kind: meta.NSRemove},
		func(p []byte) (TraceCtx, error) { var m NSCommitReq; err := wire.Decode(p, &m); return m.Trace, err })
	check("ns-abort",
		&NSAbortReq{File: 2, Kind: meta.NSCreate, Trace: tc},
		&NSAbortReq{File: 2, Kind: meta.NSCreate},
		func(p []byte) (TraceCtx, error) { var m NSAbortReq; err := wire.Decode(p, &m); return m.Trace, err })
	check("link-remote",
		&LinkRemoteReq{Parent: 1, Name: "f", Child: 7, Trace: tc},
		&LinkRemoteReq{Parent: 1, Name: "f", Child: 7},
		func(p []byte) (TraceCtx, error) { var m LinkRemoteReq; err := wire.Decode(p, &m); return m.Trace, err })
	check("unlink-remote",
		&UnlinkRemoteReq{Parent: 1, Name: "f", Child: 7, Trace: tc},
		&UnlinkRemoteReq{Parent: 1, Name: "f", Child: 7},
		func(p []byte) (TraceCtx, error) {
			var m UnlinkRemoteReq
			err := wire.Decode(p, &m)
			return m.Trace, err
		})
}
