// Package workload re-implements the paper's five benchmarks against the
// fsapi.FileSystem interface: the three Filebench personalities
// (fileserver, varmail, webproxy), the xcdn CDN-server benchmark with its
// 32 KB / 64 KB / 1 MB file-size sweep, and an NPB BT-IO-style collective
// writer with read-back verification (the "conflict reads" of §V-C).
//
// Each generator partitions the namespace per thread, so measured
// differences come from the file system under test, not from accidental
// application-level contention.
package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"redbud/internal/clock"
	"redbud/internal/fsapi"
	"redbud/internal/stats"
)

// OpKind enumerates generator operations.
type OpKind int

// Operation kinds.
const (
	OpCreateWrite OpKind = iota // create a new file and write it whole
	OpRead                      // open an existing file, read it whole, close
	OpAppend                    // open an existing file, append, close
	OpDelete                    // remove an existing file
	OpStat                      // stat an existing file
	nOpKinds
)

func (k OpKind) String() string {
	switch k {
	case OpCreateWrite:
		return "create"
	case OpRead:
		return "read"
	case OpAppend:
		return "append"
	case OpDelete:
		return "delete"
	case OpStat:
		return "stat"
	}
	return "?"
}

// OpWeight is one entry of an operation mix.
type OpWeight struct {
	Kind   OpKind
	Weight int
}

// SizeDist describes file sizes.
type SizeDist struct {
	Mean  int64
	Fixed bool // all files exactly Mean bytes
}

// sample draws a size: fixed, or a clamped exponential around the mean
// (approximating Filebench's gamma-distributed sizes).
func (d SizeDist) sample(rng *rand.Rand) int64 {
	if d.Fixed || d.Mean <= 4096 {
		return d.Mean
	}
	v := int64(rng.ExpFloat64() * float64(d.Mean))
	if v < 4096 {
		v = 4096
	}
	if v > 4*d.Mean {
		v = 4 * d.Mean
	}
	return v
}

// Spec parameterizes the generic op-mix engine.
type Spec struct {
	Name string
	// Threads is the number of application threads.
	Threads int
	// OpsPerThread is the measured operation count per thread.
	OpsPerThread int
	// PrefillPerThread files are created per thread before measuring.
	PrefillPerThread int
	// FileSize distributes sizes of created/appended files.
	FileSize SizeDist
	// AppendSize is the size of one append (defaults to 16 KiB).
	AppendSize int64
	// Mix weights the operations.
	Mix []OpWeight
	// FsyncWrites forces fsync after every create/append (varmail).
	FsyncWrites bool
	// Think is per-op application compute time, simulated on the clock.
	Think time.Duration
	// Dirs spreads each thread's files over this many directories
	// (xcdn's "scattered over the whole namespace").
	Dirs int
	// Seed makes runs reproducible.
	Seed int64
	// OnOp, when non-nil, observes every measured operation in issue order
	// (per thread). The determinism regression test diffs two runs' op
	// streams through this hook.
	OnOp func(tid int, kind OpKind, path string, n int64)
}

// Result summarizes one run.
type Result struct {
	Name                    string
	Duration                time.Duration // virtual time of the measured phase
	Ops                     int64
	Errors                  int64
	BytesWritten, BytesRead int64
	// Latency aggregates per op kind.
	Latency [nOpKinds]struct {
		Count int64
		Total time.Duration
	}
}

// Throughput returns operations per virtual second.
func (r Result) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Duration.Seconds()
}

// MBps returns total data rate in MB/s (1 MB = 1e6 bytes) of virtual time.
func (r Result) MBps() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.BytesWritten+r.BytesRead) / 1e6 / r.Duration.Seconds()
}

// MeanLatency returns the average latency of one op kind.
func (r Result) MeanLatency(k OpKind) time.Duration {
	l := r.Latency[k]
	if l.Count == 0 {
		return 0
	}
	return l.Total / time.Duration(l.Count)
}

// threadState tracks one thread's private file population.
type threadState struct {
	rng   *rand.Rand
	files []string // live files
	next  int      // name counter
}

// Run executes the op-mix engine against fs and reports the measured phase.
func Run(fs fsapi.FileSystem, clk clock.Clock, spec Spec) (Result, error) {
	if clk == nil {
		clk = clock.Real(1)
	}
	if spec.Threads <= 0 {
		spec.Threads = 1
	}
	if spec.Dirs <= 0 {
		spec.Dirs = 1
	}
	if spec.AppendSize <= 0 {
		spec.AppendSize = 16 << 10
	}
	totalWeight := 0
	for _, w := range spec.Mix {
		totalWeight += w.Weight
	}
	if totalWeight == 0 {
		return Result{}, fmt.Errorf("workload %s: empty op mix", spec.Name)
	}

	root := "/" + spec.Name
	if err := fs.Mkdir(root); err != nil {
		return Result{}, err
	}
	for d := 0; d < spec.Dirs; d++ {
		if err := fs.Mkdir(fmt.Sprintf("%s/d%d", root, d)); err != nil {
			return Result{}, err
		}
	}

	var (
		ops, errs      stats.Counter
		bytesW, bytesR stats.Counter
		latCount       [nOpKinds]stats.Counter
		latTotal       [nOpKinds]stats.Counter
	)

	worker := func(tid int, measured bool, count int) {
		ts := &threadState{rng: threadRNG(spec.Seed, tid, measured)}
		// Rebuild the thread's view of its prefilled files.
		for i := 0; i < spec.PrefillPerThread; i++ {
			ts.files = append(ts.files, pathFor(root, spec, tid, i))
		}
		ts.next = spec.PrefillPerThread
		buf := make([]byte, 0)
		for i := 0; i < count; i++ {
			kind := pickOp(ts.rng, spec.Mix, totalWeight, ts)
			start := clk.Now()
			path, n, err := execOp(fs, clk, spec, root, tid, ts, kind, &buf)
			el := clk.Since(start)
			if measured {
				if spec.OnOp != nil {
					spec.OnOp(tid, kind, path, n)
				}
				ops.Inc()
				if err != nil {
					errs.Inc()
				}
				latCount[kind].Inc()
				latTotal[kind].Add(int64(el))
				if kind == OpRead {
					bytesR.Add(n)
				} else {
					bytesW.Add(n)
				}
			}
			if spec.Think > 0 {
				clk.Sleep(spec.Think)
			}
		}
	}

	// Prefill phase (unmeasured): create the initial population.
	var wg sync.WaitGroup
	for t := 0; t < spec.Threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ts := &threadState{rng: threadRNG(spec.Seed, t, false)}
			for i := 0; i < spec.PrefillPerThread; i++ {
				path := pathFor(root, spec, t, i)
				writeWholeFile(fs, path, spec.FileSize.sample(ts.rng), false)
			}
		}()
	}
	wg.Wait()

	// Measured phase.
	start := clk.Now()
	for t := 0; t < spec.Threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker(t, true, spec.OpsPerThread)
		}()
	}
	wg.Wait()
	dur := clk.Since(start)

	res := Result{
		Name:         spec.Name,
		Duration:     dur,
		Ops:          ops.Load(),
		Errors:       errs.Load(),
		BytesWritten: bytesW.Load(),
		BytesRead:    bytesR.Load(),
	}
	for k := 0; k < int(nOpKinds); k++ {
		res.Latency[k].Count = latCount[k].Load()
		res.Latency[k].Total = time.Duration(latTotal[k].Load())
	}
	return res, nil
}

// threadRNG derives a thread's deterministic generator from the spec seed.
// The prefill and measured phases get distinct streams (offset by a prime)
// so the measured-phase draws do not depend on how prefill consumed the
// sequence; two runs with the same seed therefore produce identical op
// streams regardless of goroutine scheduling.
func threadRNG(seed int64, tid int, measured bool) *rand.Rand {
	s := seed + int64(tid)*7919
	if measured {
		s += 104729
	}
	return rand.New(rand.NewSource(s))
}

func pathFor(root string, spec Spec, tid, i int) string {
	return fmt.Sprintf("%s/d%d/t%d-f%d", root, i%spec.Dirs, tid, i)
}

// pickOp draws an op kind, falling back to create when the thread has no
// files for file-consuming ops.
func pickOp(rng *rand.Rand, mix []OpWeight, total int, ts *threadState) OpKind {
	x := rng.Intn(total)
	for _, w := range mix {
		if x < w.Weight {
			if w.Kind != OpCreateWrite && len(ts.files) == 0 {
				return OpCreateWrite
			}
			return w.Kind
		}
		x -= w.Weight
	}
	return OpCreateWrite
}

// execOp performs one operation, returning the path it touched and the
// bytes moved.
func execOp(fs fsapi.FileSystem, clk clock.Clock, spec Spec, root string, tid int, ts *threadState, kind OpKind, buf *[]byte) (string, int64, error) {
	switch kind {
	case OpCreateWrite:
		path := pathFor(root, spec, tid, ts.next)
		ts.next++
		size := spec.FileSize.sample(ts.rng)
		if err := writeWholeFile(fs, path, size, spec.FsyncWrites); err != nil {
			return path, 0, err
		}
		ts.files = append(ts.files, path)
		return path, size, nil

	case OpRead:
		path := ts.files[ts.rng.Intn(len(ts.files))]
		f, err := fs.Open(path)
		if err != nil {
			return path, 0, err
		}
		defer f.Close()
		size := f.Size()
		if int64(cap(*buf)) < size {
			*buf = make([]byte, size)
		}
		n, err := f.ReadAt((*buf)[:size], 0)
		return path, int64(n), err

	case OpAppend:
		path := ts.files[ts.rng.Intn(len(ts.files))]
		f, err := fs.Open(path)
		if err != nil {
			return path, 0, err
		}
		defer f.Close()
		data := fill(spec.AppendSize, byte(tid))
		if _, err := f.Append(data); err != nil {
			return path, 0, err
		}
		if spec.FsyncWrites {
			if err := f.Sync(); err != nil {
				return path, 0, err
			}
		}
		return path, spec.AppendSize, nil

	case OpDelete:
		i := ts.rng.Intn(len(ts.files))
		path := ts.files[i]
		ts.files = append(ts.files[:i], ts.files[i+1:]...)
		return path, 0, fs.Remove(path)

	case OpStat:
		path := ts.files[ts.rng.Intn(len(ts.files))]
		_, err := fs.Stat(path)
		return path, 0, err
	}
	return "", 0, fmt.Errorf("workload: bad op %d", kind)
}

// writeWholeFile creates a file and writes size bytes the way applications
// emit data: page-sized updates for small files, 64 KiB buffers for large
// ones. Optionally fsyncs before close.
func writeWholeFile(fs fsapi.FileSystem, path string, size int64, fsync bool) error {
	f, err := fs.Create(path)
	if err != nil {
		return err
	}
	chunk := int64(4096)
	if size > 64<<10 {
		chunk = 64 << 10
	}
	data := fill(chunk, byte(size))
	var off int64
	for off < size {
		n := chunk
		if off+n > size {
			n = size - off
		}
		if _, err := f.WriteAt(data[:n], off); err != nil {
			f.Close()
			return err
		}
		off += n
	}
	if fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func fill(n int64, seed byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i)*13 + seed
	}
	return p
}
