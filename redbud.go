// Package redbud is the public face of the Redbud delayed-commit
// reproduction: a block-based parallel file system (clients obtain extent
// layouts from a metadata server and write file data directly on a shared
// disk array) implementing the Delayed Commit Protocol of Lu et al.,
// "Accelerating Distributed Updates with Asynchronous Ordered Writes in a
// Parallel File System" (IEEE CLUSTER 2012).
//
// The package assembles an in-process simulated cluster — MDS, disk array,
// metadata Ethernet — and hands out mounted client file systems:
//
//	cluster, err := redbud.New(redbud.Config{Clients: 2, Mode: redbud.DelayedCommit})
//	defer cluster.Close()
//	fs := cluster.Mount(0)
//	f, _ := fs.Create("/hello.txt")
//	f.WriteAt([]byte("hi"), 0)
//	f.Close() // returns immediately; commit daemons keep the write order
//
// For the paper's experiments (Figures 3-7) see cmd/redbud-bench and the
// benchmarks in bench_test.go; for a real multi-process deployment over TCP
// see cmd/redbud-mds, cmd/redbud-disk and cmd/redbud-client.
package redbud

import (
	"fmt"
	"strings"
	"time"

	"redbud/internal/bench"
	"redbud/internal/blockdev"
	"redbud/internal/client"
	"redbud/internal/fsapi"
	"redbud/internal/meta"
)

// Re-exported file-system types: the API every mount speaks.
type (
	// FileSystem is a mounted client view (Create/Open/Mkdir/...).
	FileSystem = fsapi.FileSystem
	// File is an open file handle (WriteAt/ReadAt/Append/Sync/Close).
	File = fsapi.File
	// Info describes a file or directory.
	Info = fsapi.Info
)

// Errors re-exported from the file-system API.
var (
	ErrNotExist = fsapi.ErrNotExist
	ErrExist    = fsapi.ErrExist
	ErrIsDir    = fsapi.ErrIsDir
	ErrClosed   = fsapi.ErrClosed
)

// Layout protocol (v2) types, re-exported so tooling outside the module's
// internal packages has one public entry point to the extent map.
type (
	// LayoutFlags selects what a layout lookup returns (and whether it
	// allocates).
	LayoutFlags = meta.LayoutFlags
	// ExtentState is an extent's commit status.
	ExtentState = meta.ExtentState
	// Extent is one <file offset, length, device, volume offset, state>
	// mapping.
	Extent = meta.Extent
	// Layout is the extent collection covering a file range, plus the
	// visible end published by write intents.
	Layout = meta.Layout
)

// Layout lookup flags and extent states of the v2 protocol.
const (
	// LayoutWrite allocates backing space for the range (a write layout).
	LayoutWrite = meta.LayoutWrite
	// LayoutWantUncommitted additionally returns other clients'
	// published-but-uncommitted write intents — the early-visibility view.
	LayoutWantUncommitted = meta.LayoutWantUncommitted

	// StateUncommitted marks an extent whose commit has not landed yet.
	StateUncommitted = meta.StateUncommitted
	// StateCommitted marks a durably committed extent.
	StateCommitted = meta.StateCommitted
)

// Mode selects the update protocol.
type Mode = client.Mode

// Update modes: the original synchronous ordered writes, or the paper's
// delayed commit.
const (
	SyncCommit    = client.SyncCommit
	DelayedCommit = client.DelayedCommit
)

// Config describes the simulated cluster.
type Config struct {
	// Clients is the number of mounted clients (default 1; the paper's
	// testbed uses 7).
	Clients int
	// Mode selects synchronous or delayed commit (default DelayedCommit).
	Mode Mode
	// SpaceDelegation enables the per-client double-space-pool with the
	// given chunk size; 0 disables delegation. The paper uses 16 MiB.
	SpaceDelegation int64
	// TimeScale compresses simulated time: 0.02 runs the cluster's virtual
	// clocks 50x faster than wall time. Default 1 (real time) — all
	// simulated latencies are then real waits.
	TimeScale float64
	// DataDevices is the number of disks in the shared array (default 4).
	DataDevices int
	// MDSDaemons is the metadata server's worker pool size (default 8).
	MDSDaemons int
	// CompoundDegree pins the commit compound degree; 0 = adaptive.
	CompoundDegree int
	// FastDevices swaps the realistic 2012-era HDD model for a light one,
	// for functional use where latency realism is not wanted.
	FastDevices bool
	// EarlyVisibility lets clients read other writers' durable-but-
	// uncommitted extents through the layout-v2 intent path instead of
	// stalling conflict reads until the writer's delayed commit lands.
	// Intents are published when the MDS allocates, so the knob shows its
	// effect with SpaceDelegation off (a delegated writer allocates
	// locally and discloses extents only at commit).
	EarlyVisibility bool
	// Shards partitions the metadata namespace across this many MDS
	// instances (default 1). Each shard is a complete metadata authority
	// with its own journal; clients route per inode by the hash partition
	// and drive cross-shard creates, removes and renames with the
	// two-phase intent protocol. Incompatible with SpaceDelegation: a
	// delegated writer's private space pool has no shard affinity.
	Shards int
}

// Cluster is a running simulated deployment.
type Cluster struct {
	inner *bench.Cluster
}

// New assembles and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	opt := bench.DefaultOptions()
	if cfg.Clients > 0 {
		opt.Clients = cfg.Clients
	} else {
		opt.Clients = 1
	}
	if cfg.TimeScale > 0 {
		if cfg.TimeScale > 1 {
			return nil, fmt.Errorf("redbud: TimeScale %v out of (0, 1]", cfg.TimeScale)
		}
		opt.Scale = cfg.TimeScale
	} else {
		opt.Scale = 1
	}
	if cfg.DataDevices > 0 {
		opt.DataDevices = cfg.DataDevices
	}
	if cfg.MDSDaemons > 0 {
		opt.MDSDaemons = cfg.MDSDaemons
	}
	opt.CompoundDegree = cfg.CompoundDegree
	opt.DelegationChunk = cfg.SpaceDelegation
	opt.EarlyVisibility = cfg.EarlyVisibility
	if cfg.Shards > 1 {
		if cfg.SpaceDelegation > 0 {
			return nil, fmt.Errorf("redbud: Shards %d is incompatible with SpaceDelegation", cfg.Shards)
		}
		opt.Shards = cfg.Shards
	}
	if cfg.FastDevices {
		opt.Disk = blockdev.FastHDD()
		opt.MDSOpCost = 0
	}

	sys := bench.SysRedbudDC
	if cfg.Mode == SyncCommit {
		sys = bench.SysRedbud
	} else if cfg.SpaceDelegation > 0 {
		sys = bench.SysRedbudDCSD
	}
	return &Cluster{inner: bench.Build(sys, opt)}, nil
}

// Mount returns client i's file system.
func (c *Cluster) Mount(i int) FileSystem { return c.inner.Mounts[i] }

// Mounts returns every client file system.
func (c *Cluster) Mounts() []FileSystem { return c.inner.Mounts }

// Client returns the underlying Redbud client i, exposing its statistics
// (commit queue length, RPC counts, delegation usage).
func (c *Cluster) Client(i int) *client.Client { return c.inner.Redbud[i] }

// Drain blocks until every pending delayed commit has been applied.
func (c *Cluster) Drain() { c.inner.Drain() }

// FileLayout resolves path on the metadata server and returns the extent
// layout of [off, off+n). Flags follow the v2 layout protocol: 0 is the
// committed-only view; LayoutWantUncommitted additionally returns published
// write intents with State == StateUncommitted and sets the layout's
// VisibleEnd. It never allocates — LayoutWrite is rejected.
func (c *Cluster) FileLayout(path string, off, n int64, flags LayoutFlags) (Layout, error) {
	if flags&LayoutWrite != 0 {
		return Layout{}, fmt.Errorf("redbud: FileLayout is read-only; LayoutWrite not allowed")
	}
	// Dirents live on the parent's home shard and layouts on the file's, so
	// every step routes by the hash partition (with one shard both stores
	// collapse to the single authority).
	stores := c.inner.Stores
	id := meta.RootID
	for _, part := range strings.Split(path, "/") {
		if part == "" {
			continue
		}
		attr, err := stores[meta.ShardOf(id, len(stores))].Lookup(id, part)
		if err != nil {
			return Layout{}, err
		}
		id = attr.ID
	}
	return stores[meta.ShardOf(id, len(stores))].GetLayout(id, off, n, flags)
}

// Stats summarizes cluster-wide activity.
type Stats struct {
	// Disk array counters.
	DiskSubmitted, DiskDispatched, DiskMerged int64
	DiskSeeks                                 int64
	BytesRead, BytesWritten                   int64
	DiskBusy                                  time.Duration
	// Total metadata RPC frames sent by clients.
	RPCs int64
}

// Stats snapshots the cluster counters.
func (c *Cluster) Stats() Stats {
	d := c.inner.DeviceStats()
	return Stats{
		DiskSubmitted:  d.Submitted,
		DiskDispatched: d.Dispatched,
		DiskMerged:     d.Merged,
		DiskSeeks:      d.Seeks,
		BytesRead:      d.BytesRead,
		BytesWritten:   d.BytesWrite,
		DiskBusy:       d.BusyTime,
		RPCs:           c.inner.RPCs(),
	}
}

// Close unmounts every client and tears the cluster down. Pending delayed
// commits are flushed first (unmount semantics).
func (c *Cluster) Close() { c.inner.Close() }
