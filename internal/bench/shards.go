package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"redbud/internal/alloc"
	"redbud/internal/blockdev"
	"redbud/internal/clock"
	"redbud/internal/mds"
	"redbud/internal/meta"
	"redbud/internal/netsim"
	"redbud/internal/proto"
	"redbud/internal/rpc"
	"redbud/internal/wire"
)

// ShardsRow is one shard count of the namespace-sharding sweep.
type ShardsRow struct {
	Shards        int     `json:"shards"`
	Commits       int     `json:"commits"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	MeanUS        float64 `json:"mean_commit_us"`
	Speedup       float64 `json:"speedup_vs_1"`
}

// shardDaemons is the per-shard MDS daemon pool width. It is kept narrow —
// half the paper's default pool — so a single shard is clearly pool-bound
// under the committer population and adding shards adds the only resource
// that matters. Sweeping daemons is Figure 7's job, not this figure's.
const shardDaemons = 4

// shardOpCost / shardFrameCost are the per-op and per-frame CPU costs used
// by this figure instead of Options' defaults. They are deliberately far
// above the real testbed's microsecond costs: clock.Real is a scaled wall
// clock, so at small -scale values each goroutine wakeup (hundreds of wall
// microseconds) reads back as tens of virtual milliseconds, and a figure
// whose modeled costs sit below that noise floor measures the Go scheduler,
// not the cluster. With ~26ms of modeled service per commit, the daemon
// pools dominate the noise floor at every supported -scale and the row
// RATIOS — the figure's one claim — are stable; the absolute commits/s
// column is in units of this inflated cost and is only comparable within
// the sweep.
const (
	shardOpCost    = 10 * time.Millisecond
	shardFrameCost = 16 * time.Millisecond
)

// shardMinScale floors the clock scale for this figure. Together with the
// inflated op costs it keeps every modeled sleep at >= ~5ms of wall time,
// an order of magnitude above Go timer slack, so the sweep's ratios hold on
// any runner. Below the floor, -scale would compress the modeled sleeps
// into the slack and hand the figure back to the scheduler.
const shardMinScale = 0.2

// committersPerClient fans each client node out into this many committer
// goroutines — enough demand that even on a slow runner, where wall-clock
// scheduling overhead inflates each committer's serial latency, four
// shards' daemon pools stay saturated. The population is fixed across the
// sweep, so the figure shows what sharding the servers buys a constant
// client load (which is also why the 8-shard row flattens: by then the
// committers, not the pools, are the limit).
const committersPerClient = 64

// shardCommitsBase is the total commit count at SizeFactor 1.
const shardCommitsBase = 12000

// FigShards measures multi-MDS namespace sharding: end-to-end commit
// throughput through the full RPC + daemon-pool + store + journal stack
// (BenchmarkMDSParallelCommit's path) while the namespace is hash-partitioned
// across 1, 2, 4 and 8 shards. Each shard is a complete metadata authority —
// its own daemon pool, store and journal device — so shard count is the
// scaling axis the multi-MDS design promises: per-shard journals and inode
// stripes let commits to different shards proceed with no shared lock or
// shared journal at all. The committer population and per-op costs are held
// fixed across the sweep; only the shard count varies.
//
// Files are spread round-robin over shards with the cross-shard create
// protocol (CreateDetached on the home shard, LinkRemote on the root's
// shard, NSCommit), so the steady-state traffic is pure single-shard commit
// RPCs — the common case sharding must make fast.
//
// The figure runs at max(-scale, shardMinScale) with its own inflated op
// costs (see shardOpCost): unlike the workload figures, its claim is a
// throughput RATIO between runs, which only holds when modeled sleeps stay
// above the wall-clock bridge's timer-slack noise floor.
func FigShards(opt Options) ([]ShardsRow, error) {
	total := int(float64(shardCommitsBase) * opt.SizeFactor)
	committers := committersPerClient * opt.Clients
	if committers < 1 || total < committers {
		return nil, fmt.Errorf("shards: %d commits across %d committers is not a measurement", total, committers)
	}
	var rows []ShardsRow
	for _, n := range []int{1, 2, 4, 8} {
		row, err := runShardSweep(opt, n, committers, total)
		if err != nil {
			return nil, fmt.Errorf("shards=%d: %w", n, err)
		}
		if len(rows) > 0 && rows[0].CommitsPerSec > 0 {
			row.Speedup = row.CommitsPerSec / rows[0].CommitsPerSec
		} else {
			row.Speedup = 1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runShardSweep builds an n-shard cluster and hammers it with commit traffic.
func runShardSweep(opt Options, n, committers, total int) (ShardsRow, error) {
	scale := opt.Scale
	if scale < shardMinScale {
		scale = shardMinScale
	}
	clk := clock.Real(scale)
	net := netsim.NewNetwork(clk)

	// The journal device charges a fixed per-write overhead with elevator
	// merging off (the BenchmarkMDSParallelCommit model): group commit
	// amortizes it, so the daemon pool — the per-shard resource — is the
	// constraint under test, not journal bandwidth.
	journalModel := blockdev.DiskModel{
		PerRequest:    30 * time.Microsecond,
		BandwidthMBps: 4000,
	}

	stores := make([]*meta.Store, n)
	var closers []func()
	defer func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}()
	for i := 0; i < n; i++ {
		metaDev := blockdev.New(blockdev.Config{
			ID:           1000 + i,
			Size:         1 << 30,
			Model:        journalModel,
			DisableMerge: true,
			Clock:        clk,
		})
		closers = append(closers, metaDev.Close)
		journal := meta.NewJournal(metaDev, 0, 1<<29)
		// Device index = shard index: each shard allocates from its own
		// disk, so extent spaces are disjoint by construction.
		ags := alloc.NewUniformAGSet(alloc.RoundRobin, i, 1<<30, 4)
		stores[i] = meta.NewStore(meta.Config{
			AGs: ags, Journal: journal, Clock: clk,
			Shard: i, ShardCount: n,
		})
		srv := mds.New(mds.Config{
			Store:               stores[i],
			Clock:               clk,
			Daemons:             shardDaemons,
			OpCost:              shardOpCost,
			FrameCost:           shardFrameCost,
			ContentionPerDaemon: 0.05,
			ShardIndex:          uint32(i),
			ShardCount:          uint32(n),
		})
		closers = append(closers, srv.Close)
		host := fmt.Sprintf("mds%d", i)
		net.AddHost(host, opt.Net)
		lis, err := net.Listen(host)
		if err != nil {
			return ShardsRow{}, err
		}
		go srv.Serve(lis)
		closers = append(closers, func() { lis.Close() })
	}

	// One file per committer, homed round-robin across shards via the
	// cross-shard create protocol, its extent pre-allocated. The measured
	// loop is pure commit traffic (journal append + inode update) with
	// CommitID 0: retransmission dedup is off, every request does the work.
	rootShard := meta.ShardOf(meta.RootID, n)
	bodies := make([][]byte, committers)
	clis := make([]*rpc.Client, committers)
	for w := 0; w < committers; w++ {
		s := w % n
		name := fmt.Sprintf("f%d", w)
		var attr meta.Attr
		var err error
		if n == 1 {
			attr, err = stores[0].Create(meta.RootID, name, meta.TypeFile)
		} else {
			attr, err = stores[s].CreateDetached(meta.RootID, name, meta.TypeFile)
			if err == nil {
				err = stores[rootShard].LinkRemote(meta.RootID, name, attr.ID, meta.TypeFile)
			}
			if err == nil {
				err = stores[s].NSCommit(attr.ID, meta.NSCreate)
			}
		}
		if err != nil {
			return ShardsRow{}, fmt.Errorf("create %s: %w", name, err)
		}
		owner := fmt.Sprintf("committer-%d", w)
		lay, err := stores[s].AllocLayout(owner, attr.ID, 0, 4096)
		if err != nil {
			return ShardsRow{}, fmt.Errorf("alloc %s: %w", name, err)
		}
		req := proto.CommitReq{
			Owner: owner, File: attr.ID, Size: 4096,
			MTime: time.Unix(1, 0).UTC(), Extents: lay.Extents,
		}
		bodies[w] = wire.Encode(&req)

		host := fmt.Sprintf("client-%d", w)
		net.AddHost(host, opt.Net)
		conn, err := net.Dial(host, fmt.Sprintf("mds%d", s))
		if err != nil {
			return ShardsRow{}, err
		}
		clis[w] = rpc.NewClient(conn, clk)
		cli := clis[w]
		closers = append(closers, func() { cli.Close() })
	}

	var latNS atomic.Int64
	var firstErr atomic.Value
	start := clk.Now()
	var wg sync.WaitGroup
	for w := 0; w < committers; w++ {
		iters := total / committers
		if w < total%committers {
			iters++
		}
		wg.Add(1)
		go func(w, iters int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				t0 := clk.Now()
				if _, err := clis[w].CallRaw(proto.OpCommit, bodies[w]); err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("committer %d: %w", w, err))
					return
				}
				latNS.Add(int64(clk.Since(t0)))
			}
		}(w, iters)
	}
	wg.Wait()
	dur := clk.Since(start)
	if err, ok := firstErr.Load().(error); ok {
		return ShardsRow{}, err
	}
	if dur <= 0 {
		return ShardsRow{}, fmt.Errorf("zero-duration run")
	}
	return ShardsRow{
		Shards:        n,
		Commits:       total,
		CommitsPerSec: float64(total) / dur.Seconds(),
		MeanUS:        float64(latNS.Load()) / float64(total) / 1e3,
	}, nil
}

// PrintFigShards renders the sharding sweep.
func PrintFigShards(w io.Writer, rows []ShardsRow) {
	fmt.Fprintln(w, "Shards: commit throughput under namespace sharding, fixed committer population")
	fmt.Fprintf(w, "%-8s %10s %12s %14s %9s\n",
		"shards", "commits", "commits/s", "mean commit", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %10d %12.0f %11.0fus %8.2fx\n",
			r.Shards, r.Commits, r.CommitsPerSec, r.MeanUS, r.Speedup)
	}
}
