// Package wireevolve exercises the protocol-evolution analyzer's sequence
// rules: optionals must be trailing and decoder-side Remaining()-guarded.
package wireevolve

import "wire"

// Evolvable is the sanctioned v2 idiom: the optional field is last, the
// encoder gates on the negotiated version, the decoder on r.Remaining().
type Evolvable struct {
	Owner   string
	Version uint32
}

func (m *Evolvable) MarshalWire(b *wire.Buffer) {
	b.PutString(m.Owner)
	if m.Version >= 2 {
		b.PutU32(m.Version)
	}
}

func (m *Evolvable) UnmarshalWire(r *wire.Reader) error {
	m.Owner = r.String()
	if r.Err() == nil && r.Remaining() > 0 {
		m.Version = r.U32()
	} else {
		m.Version = 1
	}
	return r.Err()
}

// MidOptional inserts the optional before a required field: a peer that
// omits it shifts everything after.
type MidOptional struct {
	Owner   string
	Version uint32
	File    uint64
}

func (m *MidOptional) MarshalWire(b *wire.Buffer) {
	b.PutString(m.Owner)
	if m.Version >= 2 { // want `optional field group is not trailing`
		b.PutU32(m.Version)
	}
	b.PutU64(m.File)
}

func (m *MidOptional) UnmarshalWire(r *wire.Reader) error {
	m.Owner = r.String()
	if r.Err() == nil && r.Remaining() > 12 { // want `optional field group is not trailing`
		m.Version = r.U32()
	}
	m.File = r.U64()
	return r.Err()
}

// Unguarded gates the decoder-side optional on decoded data instead of
// r.Remaining(): a short v1 frame becomes a decode error instead of
// "field absent".
type Unguarded struct {
	Kind    uint8
	Version uint32
}

func (m *Unguarded) MarshalWire(b *wire.Buffer) {
	b.PutU8(m.Kind)
	if m.Version >= 2 {
		b.PutU32(m.Version)
	}
}

func (m *Unguarded) UnmarshalWire(r *wire.Reader) error {
	m.Kind = r.U8()
	if m.Kind >= 2 { // want `not guarded by r.Remaining\(\)`
		m.Version = r.U32()
	}
	return r.Err()
}

// LoopOptional buries an optional inside a repeated element, where
// concatenation leaves no boundary to detect absence from.
type LoopOptional struct {
	Tags []Tag
}

type Tag struct {
	Key  string
	Note string
}

func (m *LoopOptional) MarshalWire(b *wire.Buffer) {
	b.PutU32(uint32(len(m.Tags)))
	for _, t := range m.Tags {
		b.PutString(t.Key)
		if t.Note != "" { // want `inside a repeated element is not evolvable`
			b.PutString(t.Note)
		}
	}
}
