package stats

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if got := c.Load(); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 16000 {
		t.Fatalf("counter = %d, want 16000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(5)
	if n := g.Add(-2); n != 3 {
		t.Fatalf("Add returned %d, want 3", n)
	}
	if g.Load() != 3 {
		t.Fatalf("gauge = %d, want 3", g.Load())
	}
}

func TestDurationSum(t *testing.T) {
	var d DurationSum
	if d.Mean() != 0 {
		t.Fatal("empty mean not zero")
	}
	d.Observe(2 * time.Millisecond)
	d.Observe(4 * time.Millisecond)
	if d.Count() != 2 {
		t.Fatalf("count = %d", d.Count())
	}
	if d.Total() != 6*time.Millisecond {
		t.Fatalf("total = %v", d.Total())
	}
	if d.Mean() != 3*time.Millisecond {
		t.Fatalf("mean = %v", d.Mean())
	}
}

func TestHistogramInvalidArgs(t *testing.T) {
	cases := []struct {
		lo, hi float64
		n      int
	}{
		{0, 1, 4}, {1, 1, 4}, {1, 10, 0}, {-1, 10, 4},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v,%v,%d) did not panic", c.lo, c.hi, c.n)
				}
			}()
			NewHistogram(c.lo, c.hi, c.n)
		}()
	}
}

func TestHistogramMoments(t *testing.T) {
	h := NewLatencyHistogram()
	for _, v := range []float64{0.001, 0.002, 0.003} {
		h.Observe(v)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); math.Abs(got-0.002) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	if h.Min() != 0.001 || h.Max() != 0.003 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile not zero")
	}
	for i := 0; i < 1000; i++ {
		h.Observe(0.001) // 1ms
	}
	for i := 0; i < 10; i++ {
		h.Observe(1.0) // rare 1s outliers
	}
	p50 := h.Quantile(0.5)
	p999 := h.Quantile(0.9999)
	if p50 > 0.01 {
		t.Fatalf("p50 = %v, want ~1ms", p50)
	}
	if p999 < 0.5 {
		t.Fatalf("p99.99 = %v, want ~1s", p999)
	}
	// Quantile clamps out-of-range q.
	if h.Quantile(-1) <= 0 || h.Quantile(2) <= 0 {
		t.Fatal("clamped quantiles invalid")
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewLatencyHistogram()
	f := func(vs []float64) bool {
		for _, v := range vs {
			h.Observe(math.Abs(v) + 1e-6)
		}
		last := 0.0
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
			cur := h.Quantile(q)
			if cur < last {
				return false
			}
			last = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewLatencyHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.ObserveDuration(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d, want 4000", h.Count())
	}
}

func TestHistogramString(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(0.5)
	if s := h.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("queue")
	if s.Name() != "queue" {
		t.Fatalf("name = %q", s.Name())
	}
	base := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		s.Record(base.Add(time.Duration(i)*time.Second), float64(i))
	}
	if s.Len() != 10 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Max() != 9 {
		t.Fatalf("max = %v", s.Max())
	}
	if s.Mean() != 4.5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	got := s.Samples()
	if len(got) != 10 || got[3].V != 3 {
		t.Fatalf("samples = %v", got)
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries("x")
	if s.Max() != 0 || s.Mean() != 0 || s.Len() != 0 {
		t.Fatal("empty series stats nonzero")
	}
	if ds := s.Downsample(5); len(ds) != 0 {
		t.Fatalf("downsample of empty = %v", ds)
	}
}

func TestSeriesDownsample(t *testing.T) {
	s := NewSeries("x")
	base := time.Unix(0, 0)
	for i := 0; i < 100; i++ {
		s.Record(base.Add(time.Duration(i)*time.Second), float64(i))
	}
	ds := s.Downsample(11)
	if len(ds) != 11 {
		t.Fatalf("downsample len = %d, want 11", len(ds))
	}
	if ds[0].V != 0 || ds[10].V != 99 {
		t.Fatalf("endpoints = %v, %v; want 0, 99", ds[0].V, ds[10].V)
	}
	// Shorter-than-n series returned as-is.
	if got := s.Downsample(1000); len(got) != 100 {
		t.Fatalf("oversized downsample len = %d", len(got))
	}
}

func TestSeriesSamplesIsCopy(t *testing.T) {
	s := NewSeries("x")
	s.Record(time.Unix(0, 0), 1)
	got := s.Samples()
	got[0].V = 42
	if s.Samples()[0].V != 1 {
		t.Fatal("Samples returned a view, not a copy")
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %g, want 0", q, got)
		}
	}
	if h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram moments not zero")
	}
	bounds, counts := h.Buckets()
	if len(counts) != len(bounds)+1 {
		t.Fatalf("counts len = %d, want bounds+1 = %d", len(counts), len(bounds)+1)
	}
}

func TestHistogramQuantileSingleSample(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(0.003)
	p0, p50, p99 := h.Quantile(0), h.Quantile(0.5), h.Quantile(0.99)
	if p0 != p50 || p50 != p99 {
		t.Fatalf("single-sample quantiles differ: %g %g %g", p0, p50, p99)
	}
	if p50 < 0.003 {
		t.Fatalf("quantile %g below the observation's bucket", p50)
	}
}

func TestHistogramQuantileP99TwoBuckets(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 0; i < 99; i++ {
		h.Observe(1e-6) // first bucket
	}
	h.Observe(10) // much higher bucket
	// target = ceil(0.99*100) = 99 lands exactly on the low bucket's
	// cumulative count: p99 must stay low, p100 must jump.
	if p99 := h.Quantile(0.99); p99 > 1e-5 {
		t.Fatalf("p99 = %g, want low bucket bound", p99)
	}
	if p100 := h.Quantile(1); p100 < 10 {
		t.Fatalf("p100 = %g, want >= 10", p100)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewLatencyHistogram(), NewLatencyHistogram()
	a.Observe(0.001)
	a.Observe(0.002)
	b.Observe(0.5)
	b.Observe(200) // overflow bucket: above the 100s range

	a.Merge(b)
	if a.Count() != 4 {
		t.Fatalf("merged count = %d, want 4", a.Count())
	}
	if got, want := a.Sum(), 0.001+0.002+0.5+200; got != want {
		t.Fatalf("merged sum = %g, want %g", got, want)
	}
	if a.Min() != 0.001 || a.Max() != 200 {
		t.Fatalf("merged min/max = %g/%g", a.Min(), a.Max())
	}
	// b is read-only during Merge.
	if b.Count() != 2 {
		t.Fatalf("source histogram mutated: count %d", b.Count())
	}
	// The overflow observation survives the merge: p100 resolves to max.
	if p100 := a.Quantile(1); p100 != 200 {
		t.Fatalf("merged p100 = %g, want 200", p100)
	}
}

func TestHistogramMergeEmptySource(t *testing.T) {
	a, b := NewLatencyHistogram(), NewLatencyHistogram()
	a.Observe(0.01)
	a.Merge(b)
	if a.Count() != 1 || a.Min() != 0.01 || a.Max() != 0.01 {
		t.Fatal("merging an empty histogram changed the target")
	}
}

func TestHistogramMergeMismatchPanics(t *testing.T) {
	check := func(name string, other *Histogram) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("mismatched Merge did not panic")
				}
			}()
			NewLatencyHistogram().Merge(other)
		})
	}
	check("different-bucket-count", NewHistogram(1e-6, 100, 32))
	check("same-count-different-bounds", NewHistogram(1e-3, 1000, 64))
}
