// Early visibility for uncommitted writes: one client writes through
// delayed commit while its commit queue is busy, and a second mount polls
// until it observes the data. With early visibility off the reader waits
// for the writer's commit to drain through the queue; with it on the
// reader is served through the layout-v2 intent path as soon as the data
// is durable on the array. The example runs both settings and prints the
// time-to-visibility each achieved, using only the public redbud facade.
//
// Space delegation stays off: intents are published when the MDS
// allocates, and a delegated writer allocates locally, disclosing extents
// only at commit.
package main

import (
	"fmt"
	"log"
	"time"

	"redbud"
)

const (
	path      = "/shared.dat"
	size      = 64 << 10
	bgFiles   = 24
	timeScale = 0.05
)

// timeToVisibility measures how long after a write returns a second mount
// first observes the written bytes, with the writer's commit queue kept
// busy by a background re-dirty load.
func timeToVisibility(early bool) time.Duration {
	cluster, err := redbud.New(redbud.Config{
		Clients:         2,
		Mode:            redbud.DelayedCommit,
		EarlyVisibility: early,
		TimeScale:       timeScale,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	writer := cluster.Mount(0)

	// A loaded delayed-commit client drains its FIFO commit queue behind
	// these perpetually re-dirtied files — the window in which only the
	// early-visibility path can serve the reader.
	bg := make([]redbud.File, bgFiles)
	for i := range bg {
		f, err := writer.Create(fmt.Sprintf("/bg-%d", i))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := f.WriteAt(make([]byte, 16<<10), 0); err != nil {
			log.Fatal(err)
		}
		bg[i] = f
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 4<<10)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := bg[i%len(bg)].WriteAt(buf, 0); err != nil {
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	wf, err := writer.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i % 251)
	}
	if _, err := wf.WriteAt(data, 0); err != nil {
		log.Fatal(err)
	}
	start := time.Now()

	if early {
		// The write has returned but its commit is queued. The v2 layout
		// view shows the published intent.
		lay, err := cluster.FileLayout(path, 0, size, redbud.LayoutWantUncommitted)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("layout right after WriteAt (visible end %d):\n", lay.VisibleEnd)
		for _, e := range lay.Extents {
			state := "committed"
			if e.State == redbud.StateUncommitted {
				state = "uncommitted"
			}
			fmt.Printf("  [%7d,%7d) dev %d vol %7d  %s\n", e.FileOff, e.End(), e.Dev, e.VolOff, state)
		}
	}

	// Poll with a fresh open each probe — the attr fetch plus layout probe
	// a cold conflict reader performs.
	reader := cluster.Mount(1)
	buf := make([]byte, size)
	for {
		rf, err := reader.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		n, err := rf.ReadAt(buf, 0)
		rf.Close()
		if err != nil {
			log.Fatal(err)
		}
		if n == size && buf[0] == data[0] && buf[size-1] == data[size-1] {
			break
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)

	close(stop)
	<-done
	wf.Close()
	for _, f := range bg {
		f.Close()
	}
	cluster.Drain()

	if early {
		// After the drain the intents have graduated: the committed-only
		// view now covers the file.
		lay, err := cluster.FileLayout(path, 0, size, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("committed layout after drain: %d extent(s)\n\n", len(lay.Extents))
	}
	return elapsed
}

func main() {
	off := timeToVisibility(false)
	on := timeToVisibility(true)
	fmt.Printf("time to visibility on a second mount (wall, TimeScale %g):\n", timeScale)
	fmt.Printf("  committed-only (early visibility off): %v\n", off.Round(time.Millisecond))
	fmt.Printf("  early visibility on:                   %v\n", on.Round(time.Millisecond))
}
