package obs_test

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"redbud/internal/alloc"
	"redbud/internal/blockdev"
	"redbud/internal/client"
	"redbud/internal/clock"
	"redbud/internal/mds"
	"redbud/internal/meta"
	"redbud/internal/netsim"
	"redbud/internal/obs"
	"redbud/internal/rpc"
)

// tracedRun assembles a minimal single-client Redbud cluster on a manual
// clock — zero-latency devices, instant links, one MDS daemon with a fixed
// per-op cost, synchronous commit — runs a fixed write workload, and returns
// the Chrome-trace export bytes. The shape is chosen so at most one
// goroutine sleeps on the clock at a time (every other actor is blocked on a
// channel handoff), which makes the span timeline, not just the span
// multiset, reproducible.
func tracedRun(t *testing.T) []byte {
	t.Helper()
	clk := clock.NewManual()

	// Clock driver: advance to the next deadline whenever anything sleeps.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if !clk.AdvanceToNext() {
				runtime.Gosched()
			}
		}
	}()

	tracer := obs.NewTracer(0)
	data := blockdev.New(blockdev.Config{Size: 1 << 30, Model: blockdev.ZeroLatency(), Clock: clk, Tracer: tracer})
	metaDev := blockdev.New(blockdev.Config{ID: 1000, Size: 64 << 20, Model: blockdev.ZeroLatency(), Clock: clk})
	store := meta.NewStore(meta.Config{
		AGs:     alloc.NewUniformAGSet(alloc.RoundRobin, 0, 1<<30, 4),
		Journal: meta.NewJournal(metaDev, 0, 32<<20),
		Clock:   clk,
		Tracer:  tracer,
	})
	srv := mds.New(mds.Config{Store: store, Clock: clk, Daemons: 1, OpCost: 40 * time.Microsecond, Tracer: tracer})

	net := netsim.NewNetwork(clk)
	net.SetTracer(tracer)
	net.AddHost("mds", netsim.Instant())
	lis, err := net.Listen("mds")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)

	net.AddHost("c0", netsim.Instant())
	conn, err := net.Dial("c0", "mds")
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(client.Config{
		Name:    "c0",
		MDS:     rpc.NewClient(conn, clk),
		Devices: map[uint32]client.BlockDevice{0: data},
		Clock:   clk,
		Mode:    client.SyncCommit,
		Tracer:  tracer,
	})

	payload := make([]byte, 4<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < 8; i++ {
		f, err := cl.Create(fmt.Sprintf("/f%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(payload, 0); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	lis.Close()
	srv.Close()
	data.Close()
	metaDev.Close()
	close(stop)
	wg.Wait()

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, tracer.Spans()); err != nil {
		t.Fatal(err)
	}
	if tracer.Dropped() != 0 {
		t.Fatalf("ring overflowed (%d dropped): grow the cap so runs compare fully", tracer.Dropped())
	}
	return buf.Bytes()
}

// stitchedRun assembles a two-shard cluster on a manual clock — the same
// single-sleeper shape as tracedRun, with one MDS daemon per shard — and
// drives the three cross-shard namespace sagas (create, rename, remove)
// through names the placement hash provably routes across shards. It returns
// the stitched multi-process Chrome-trace export.
func stitchedRun(t *testing.T) []byte {
	t.Helper()
	const shards = 2
	clk := clock.NewManual()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if !clk.AdvanceToNext() {
				runtime.Gosched()
			}
		}
	}()

	tracer := obs.NewTracer(1 << 14)
	net := netsim.NewNetwork(clk)
	net.SetTracer(tracer)
	var (
		devices []*blockdev.Device
		stores  []*meta.Store
		srvs    []*mds.Server
		liss    []*netsim.Listener
	)
	devMap := map[uint32]client.BlockDevice{}
	for i := 0; i < shards; i++ {
		data := blockdev.New(blockdev.Config{ID: i, Size: 1 << 30, Model: blockdev.ZeroLatency(), Clock: clk, Tracer: tracer})
		metaDev := blockdev.New(blockdev.Config{ID: 1000 + i, Size: 64 << 20, Model: blockdev.ZeroLatency(), Clock: clk})
		devices = append(devices, data, metaDev)
		devMap[uint32(i)] = data
		store := meta.NewStore(meta.Config{
			AGs:     alloc.NewUniformAGSet(alloc.RoundRobin, i, 1<<30, 4),
			Journal: meta.NewJournal(metaDev, 0, 32<<20),
			Clock:   clk,
			Tracer:  tracer,
			Shard:   i, ShardCount: shards,
		})
		stores = append(stores, store)
		srv := mds.New(mds.Config{
			Store: store, Clock: clk, Daemons: 1, OpCost: 40 * time.Microsecond,
			ShardIndex: uint32(i), ShardCount: shards, Tracer: tracer,
		})
		srvs = append(srvs, srv)
		host := fmt.Sprintf("mds%d", i)
		net.AddHost(host, netsim.Instant())
		lis, err := net.Listen(host)
		if err != nil {
			t.Fatal(err)
		}
		liss = append(liss, lis)
		go srv.Serve(lis)
	}

	net.AddHost("c0", netsim.Instant())
	conns := make([]*rpc.Client, shards)
	for i := range conns {
		conn, err := net.Dial("c0", fmt.Sprintf("mds%d", i))
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = rpc.NewClient(conn, clk)
	}
	cl := client.New(client.Config{
		Name:    "c0",
		Shards:  conns,
		Devices: devMap,
		Clock:   clk,
		Mode:    client.SyncCommit,
		Tracer:  tracer,
	})

	// Two directories provably homed on different shards, found by the same
	// placement hash the client routes by — deterministic across runs.
	rootStore := stores[meta.ShardOf(meta.RootID, shards)]
	var srcID, dstID meta.FileID
	var srcName, dstName string
	for i := 0; i < 32 && (srcID == 0 || dstID == 0); i++ {
		name := fmt.Sprintf("d%d", i)
		if err := cl.Mkdir("/" + name); err != nil {
			t.Fatal(err)
		}
		attr, err := rootStore.Lookup(meta.RootID, name)
		if err != nil {
			t.Fatal(err)
		}
		switch meta.ShardOf(attr.ID, shards) {
		case 0:
			if srcID == 0 {
				srcID, srcName = attr.ID, name
			}
		default:
			if dstID == 0 {
				dstID, dstName = attr.ID, name
			}
		}
	}
	if srcID == 0 || dstID == 0 {
		t.Fatal("placement hash never separated two directories; fixture broken")
	}
	// A file name the hash places away from its parent's shard: its create
	// is the two-phase mint/link saga, not a local insert.
	var fname string
	for i := 0; i < 64; i++ {
		n := fmt.Sprintf("f%d", i)
		if meta.PlaceShard(srcID, n, shards) != meta.ShardOf(srcID, shards) {
			fname = n
			break
		}
	}
	if fname == "" {
		t.Fatal("placement hash never crossed shards for a child name")
	}

	payload := make([]byte, 4<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	f, err := cl.Create("/" + srcName + "/" + fname)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Cross-shard rename: different parent shards drive the four-phase
	// prepare/commit protocol.
	if err := cl.Rename("/"+srcName+"/"+fname, "/"+dstName+"/g"); err != nil {
		t.Fatal(err)
	}
	// A second cross-placed file, then its removal: a file homed away from
	// its parent runs the prepare/unlink/graduate saga on delete.
	var rname string
	for i := 64; i < 128; i++ {
		n := fmt.Sprintf("f%d", i)
		if meta.PlaceShard(srcID, n, shards) != meta.ShardOf(srcID, shards) {
			rname = n
			break
		}
	}
	if rname == "" {
		t.Fatal("placement hash never crossed shards for the remove fixture")
	}
	rf, err := cl.Create("/" + srcName + "/" + rname)
	if err != nil {
		t.Fatal(err)
	}
	if err := rf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Remove("/" + srcName + "/" + rname); err != nil {
		t.Fatal(err)
	}

	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < shards; i++ {
		liss[i].Close()
		srvs[i].Close()
	}
	for _, d := range devices {
		d.Close()
	}
	close(stop)
	wg.Wait()

	var buf bytes.Buffer
	if err := obs.WriteChromeTraceMulti(&buf, obs.SplitProcesses(tracer.Spans())); err != nil {
		t.Fatal(err)
	}
	if tracer.Dropped() != 0 {
		t.Fatalf("ring overflowed (%d dropped): grow the cap so runs compare fully", tracer.Dropped())
	}
	return buf.Bytes()
}

// TestStitchedTraceRunTwiceByteIdentical is the cross-shard determinism
// acceptance test: two runs of the two-shard saga fixture export
// byte-identical stitched multi-process traces, and the export carries every
// layer of each saga — the client-side roots and phases and the per-shard
// server handler spans they link to.
func TestStitchedTraceRunTwiceByteIdentical(t *testing.T) {
	a := stitchedRun(t)
	b := stitchedRun(t)
	for _, want := range []string{
		obs.SpanNSCreate, obs.SpanNSMint, obs.SpanNSLink, // create saga
		obs.SpanNSRename, obs.SpanNSPrepareSrc, obs.SpanNSCommitDst, // rename saga
		obs.SpanNSRemove, obs.SpanNSUnlink, obs.SpanNSGraduate, // remove saga
		obs.SpanMDSCreateDetached, obs.SpanMDSNSPrepare, obs.SpanMDSNSCommit, // server handlers
		`"mds0"`, `"mds1"`, `"c0"`, // one trace process per node
	} {
		if !bytes.Contains(a, []byte(want)) {
			t.Errorf("stitched trace missing %q", want)
		}
	}
	if !bytes.Equal(a, b) {
		la, lb := bytes.Split(a, []byte(",")), bytes.Split(b, []byte(","))
		n := min(len(la), len(lb))
		for i := 0; i < n; i++ {
			if !bytes.Equal(la[i], lb[i]) {
				t.Fatalf("stitched exports differ (first divergence at field %d):\n  run1: %s\n  run2: %s", i, la[i], lb[i])
			}
		}
		t.Fatalf("stitched exports differ in length: %d vs %d fields", len(la), len(lb))
	}
}

// TestTraceRunTwiceByteIdentical is the determinism acceptance test: two
// runs of the same seeded cluster export byte-identical trace JSON.
func TestTraceRunTwiceByteIdentical(t *testing.T) {
	a := tracedRun(t)
	b := tracedRun(t)
	if len(a) == 0 || !bytes.Contains(a, []byte(obs.SpanCommitRPC)) {
		t.Fatalf("trace missing commit spans:\n%.400s", a)
	}
	if !bytes.Equal(a, b) {
		la, lb := bytes.Split(a, []byte(",")), bytes.Split(b, []byte(","))
		n := min(len(la), len(lb))
		for i := 0; i < n; i++ {
			if !bytes.Equal(la[i], lb[i]) {
				t.Fatalf("trace exports differ (first divergence at field %d):\n  run1: %s\n  run2: %s", i, la[i], lb[i])
			}
		}
		t.Fatalf("trace exports differ in length: %d vs %d fields", len(la), len(lb))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
