// Package obs is the observability substrate of the simulator: a causal
// span tracer that follows every metadata update through its full lifecycle
// (client write → device elevator → durability → commit-queue wait →
// compound batching → wire → MDS dispatch → reply), a named metrics
// Registry adopting the internal/stats primitives, a per-commit
// critical-path analyzer, and Chrome-trace/Perfetto + Prometheus/JSON
// exporters.
//
// Spans are correlated across layers by the CommitID every commit request
// carries, and timestamped exclusively on the injected simulated clock
// (internal/clock), so a trace of a seeded run is deterministic: the same
// seed produces a byte-identical export. The simclock lint enforces the
// rule; this package never reads the wall clock itself — callers pass
// times in.
package obs

import (
	"sync"
	"time"
)

// Span is one traced interval on a named track. Track identifies the
// executor (a client's commit daemon, a device head, an MDS worker);
// CommitID correlates spans of the same logical update across tracks, with
// 0 meaning "not attributable to a single commit" (e.g. raw device I/O
// dispatched before the commit exists).
type Span struct {
	Track    string
	Name     string
	CommitID uint64
	Start    time.Time
	End      time.Time

	// TraceID links the spans of one distributed operation across process
	// boundaries (0 = unlinked). Data commits reuse the CommitID as the
	// TraceID; namespace sagas mint one from the same per-client sequence,
	// so trace IDs are globally unique and fully deterministic.
	TraceID uint64
	// SpanID identifies this span within its trace; Parent is the SpanID
	// this span hangs under (0 = root or unlinked). Both sides of an RPC
	// derive child IDs with NewSpanID, so client and server compute
	// consistent linkage from the 16 bytes of context on the wire.
	SpanID uint64
	Parent uint64
}

// SpanContext is the propagated slice of a trace: the trace identity plus
// the SpanID of the enclosing parent. The zero value means "untraced".
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// NewSpanID derives a child span ID from its parent ID and a role string
// (typically the span name), FNV-1a style. The derivation is deterministic
// — no clock, no randomness — so any process holding the parent ID computes
// the same child ID, and never returns 0 (the "unlinked" sentinel).
func NewSpanID(parent uint64, role string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= (parent >> (8 * i)) & 0xff
		h *= prime64
	}
	for i := 0; i < len(role); i++ {
		h ^= uint64(role[i])
		h *= prime64
	}
	if h == 0 {
		h = offset64
	}
	return h
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// DefaultTraceCap is the ring size NewTracer uses for cap <= 0.
const DefaultTraceCap = 1 << 16

// Tracer collects spans into a bounded ring buffer. A nil *Tracer is valid
// and records nothing: every exported method nil-checks the receiver, so
// instrumented hot paths pay a single predictable branch when tracing is
// off and zero allocations either way (Record copies values into a
// pre-allocated slot).
type Tracer struct {
	mu      sync.Mutex
	buf     []Span
	next    int   // ring write cursor
	filled  bool  // ring has wrapped at least once
	total   int64 // spans ever recorded
	dropped int64 // spans evicted by the ring
}

// NewTracer returns a tracer retaining at most cap spans (DefaultTraceCap
// when cap <= 0).
func NewTracer(cap int) *Tracer {
	if cap <= 0 {
		cap = DefaultTraceCap
	}
	return &Tracer{buf: make([]Span, 0, cap)}
}

// Enabled reports whether the tracer records anything. Callers building
// span inputs that are themselves costly should guard on it (or on t !=
// nil) before reading clocks.
func (t *Tracer) Enabled() bool { return t != nil }

// Record appends one span. Safe on a nil receiver (no-op) and for
// concurrent use. A span whose End precedes its Start (a rare read-order
// race between two clock samples) is clamped to zero length rather than
// exported with negative duration.
func (t *Tracer) Record(track, name string, commitID uint64, start, end time.Time) {
	t.RecordSpan(Span{Track: track, Name: name, CommitID: commitID, Start: start, End: end})
}

// RecordSpan appends one fully-populated span — the linked-trace variant of
// Record, carrying TraceID/SpanID/Parent. Safe on a nil receiver (no-op, no
// allocation) and for concurrent use; negative durations are clamped.
func (t *Tracer) RecordSpan(s Span) {
	if t == nil {
		return
	}
	if s.End.Before(s.Start) {
		s.End = s.Start
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, s)
	} else {
		t.buf[t.next] = s
		t.next++
		if t.next == cap(t.buf) {
			t.next = 0
			t.filled = true
		}
		t.dropped++
	}
	t.total++
	t.mu.Unlock()
}

// Spans returns a copy of the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.buf) < cap(t.buf) && !t.filled {
		out := make([]Span, len(t.buf))
		copy(out, t.buf)
		return out
	}
	// Wrapped: oldest span sits at the write cursor.
	out := make([]Span, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Len returns the number of retained spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Cap returns the ring capacity (0 for a nil tracer).
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return cap(t.buf)
}

// Total returns the number of spans ever recorded, including evicted ones.
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many spans the ring has evicted.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all retained spans and zeroes the counters.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.buf = t.buf[:0]
	t.next = 0
	t.filled = false
	t.total = 0
	t.dropped = 0
	t.mu.Unlock()
}
