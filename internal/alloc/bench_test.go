package alloc

import (
	"testing"
)

func BenchmarkGroupAllocFree(b *testing.B) {
	g := NewGroup(0, 0, 1<<40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp, err := g.Alloc(4096, -1)
		if err != nil {
			b.Fatal(err)
		}
		if i%2 == 0 { // leave half allocated: realistic fragmentation
			if err := g.FreeSpan(sp.Off, sp.Len); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAGSetRoundRobin(b *testing.B) {
	s := NewUniformAGSet(RoundRobin, 0, 1<<40, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Alloc("bench", 4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelAGs shows why multiple AGs exist: concurrent allocation
// across groups scales, where a single group serializes on its lock.
func BenchmarkParallelAGs(b *testing.B) {
	for _, ags := range []int{1, 8} {
		b.Run(map[int]string{1: "1-group", 8: "8-groups"}[ags], func(b *testing.B) {
			s := NewUniformAGSet(RoundRobin, 0, 1<<40, ags)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := s.Alloc("w", 4096); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
