package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"redbud/internal/alloc"
	"redbud/internal/clock"
)

// ---------------------------------------------------------------------------
// Queue

func TestQueueEnqueueDedup(t *testing.T) {
	q := NewQueue[int]()
	if !q.Enqueue(1) {
		t.Fatal("first enqueue rejected")
	}
	if q.Enqueue(1) {
		t.Fatal("duplicate enqueue accepted")
	}
	if q.Len() != 1 {
		t.Fatalf("len = %d", q.Len())
	}
	enq, dup := q.Stats()
	if enq != 1 || dup != 1 {
		t.Fatalf("stats = %d,%d", enq, dup)
	}
}

func TestQueueDequeueBatch(t *testing.T) {
	q := NewQueue[int]()
	for i := 0; i < 5; i++ {
		q.Enqueue(i)
	}
	stop := make(chan struct{})
	batch := q.Dequeue(3, stop)
	if len(batch) != 3 || batch[0] != 0 || batch[2] != 2 {
		t.Fatalf("batch = %v", batch)
	}
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
	// Dequeued keys can be re-enqueued.
	if !q.Enqueue(0) {
		t.Fatal("re-enqueue after dequeue rejected")
	}
}

func TestQueueDequeueBlocksUntilEnqueue(t *testing.T) {
	q := NewQueue[int]()
	stop := make(chan struct{})
	got := make(chan []int, 1)
	go func() { got <- q.Dequeue(1, stop) }()
	select {
	case b := <-got:
		t.Fatalf("dequeue returned %v on empty queue", b)
	case <-time.After(10 * time.Millisecond):
	}
	q.Enqueue(42)
	select {
	case b := <-got:
		if len(b) != 1 || b[0] != 42 {
			t.Fatalf("batch = %v", b)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("dequeue did not wake")
	}
}

func TestQueueStopUnblocks(t *testing.T) {
	q := NewQueue[int]()
	stop := make(chan struct{})
	got := make(chan []int, 1)
	go func() { got <- q.Dequeue(1, stop) }()
	close(stop)
	select {
	case b := <-got:
		if b != nil {
			t.Fatalf("batch = %v", b)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stop did not unblock dequeue")
	}
}

func TestQueueCloseUnblocksAndDrops(t *testing.T) {
	q := NewQueue[int]()
	stop := make(chan struct{})
	got := make(chan []int, 1)
	go func() { got <- q.Dequeue(1, stop) }()
	time.Sleep(5 * time.Millisecond)
	q.Close()
	select {
	case b := <-got:
		if b != nil {
			t.Fatalf("batch = %v", b)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not unblock dequeue")
	}
	if q.Enqueue(1) {
		t.Fatal("enqueue accepted after close")
	}
	q.Close() // idempotent
}

func TestQueueDrainAfterClose(t *testing.T) {
	q := NewQueue[int]()
	q.Enqueue(7)
	q.Close()
	if b := q.Dequeue(4, nil); len(b) != 1 || b[0] != 7 {
		t.Fatalf("drain after close = %v", b)
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	q := NewQueue[int]()
	const n = 1000
	var consumed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := q.Dequeue(8, stop)
				if b == nil {
					return
				}
				consumed.Add(int64(len(b)))
			}
		}()
	}
	for i := 0; i < n; i++ {
		q.Enqueue(i) // unique keys: all accepted
	}
	for consumed.Load() < n {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if consumed.Load() != n {
		t.Fatalf("consumed %d, want %d", consumed.Load(), n)
	}
}

// ---------------------------------------------------------------------------
// Pool

func TestPoolTargetFormula(t *testing.T) {
	p := NewPool(PoolConfig{
		Max: 9, QueueLenMax: 90,
		QueueLen: func() int { return 0 },
		Worker:   func(stop <-chan struct{}) { <-stop },
	})
	cases := map[int]int{0: 1, 5: 1, 10: 1, 20: 2, 45: 4, 90: 9, 500: 9}
	for qlen, want := range cases {
		if got := p.Target(qlen); got != want {
			t.Errorf("Target(%d) = %d, want %d", qlen, got, want)
		}
	}
}

func TestPoolGrowsAndShrinksWithQueue(t *testing.T) {
	var qlen atomic.Int64
	var resizes []int
	var mu sync.Mutex
	p := NewPool(PoolConfig{
		Max: 9, QueueLenMax: 90,
		QueueLen: func() int { return int(qlen.Load()) },
		Worker:   func(stop <-chan struct{}) { <-stop },
		Interval: time.Millisecond,
		OnResize: func(n, q int) {
			mu.Lock()
			resizes = append(resizes, n)
			mu.Unlock()
		},
	})
	p.Start()
	defer p.Stop()
	if p.Size() != 1 {
		t.Fatalf("initial size = %d", p.Size())
	}
	qlen.Store(90)
	waitFor(t, func() bool { return p.Size() == 9 })
	qlen.Store(10)
	waitFor(t, func() bool { return p.Size() == 1 })
	mu.Lock()
	defer mu.Unlock()
	if len(resizes) == 0 {
		t.Fatal("OnResize never called")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached")
}

func TestPoolStopTerminatesWorkers(t *testing.T) {
	var live atomic.Int64
	p := NewPool(PoolConfig{
		Max: 4, QueueLenMax: 4,
		QueueLen: func() int { return 4 },
		Worker: func(stop <-chan struct{}) {
			live.Add(1)
			defer live.Add(-1)
			<-stop
		},
		Interval: time.Millisecond,
	})
	p.Start()
	waitFor(t, func() bool { return live.Load() == 4 })
	p.Stop()
	if live.Load() != 0 {
		t.Fatalf("%d workers alive after stop", live.Load())
	}
	p.Stop() // idempotent
}

func TestPoolConfigValidation(t *testing.T) {
	for name, cfg := range map[string]PoolConfig{
		"no worker": {QueueLen: func() int { return 0 }},
		"no qlen":   {Worker: func(<-chan struct{}) {}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			NewPool(cfg)
		}()
	}
}

// ---------------------------------------------------------------------------
// Compound

func TestCompoundFixed(t *testing.T) {
	c := NewCompound(CompoundConfig{Fixed: 3})
	if c.Degree() != 3 {
		t.Fatalf("degree = %d", c.Degree())
	}
	c.Tick()
	if c.Degree() != 3 {
		t.Fatal("fixed degree changed")
	}
}

func TestCompoundRisesUnderCongestion(t *testing.T) {
	congestion := int64(0)
	c := NewCompound(CompoundConfig{
		Max:                 6,
		NetCongestion:       func() time.Duration { return time.Duration(atomic.LoadInt64(&congestion)) },
		CongestionThreshold: time.Millisecond,
	})
	if c.Degree() != 1 {
		t.Fatalf("initial degree = %d", c.Degree())
	}
	atomic.StoreInt64(&congestion, int64(10*time.Millisecond))
	for i := 0; i < 10; i++ {
		c.Tick()
	}
	if c.Degree() != 6 {
		t.Fatalf("congested degree = %d, want max 6", c.Degree())
	}
	atomic.StoreInt64(&congestion, 0)
	for i := 0; i < 10; i++ {
		c.Tick()
	}
	if c.Degree() != 1 {
		t.Fatalf("idle degree = %d, want 1", c.Degree())
	}
}

func TestCompoundRisesUnderServerLoad(t *testing.T) {
	load := uint32(0)
	c := NewCompound(CompoundConfig{
		Max:           4,
		ServerLoad:    func() uint8 { return uint8(atomic.LoadUint32(&load)) },
		LoadThreshold: 100,
	})
	atomic.StoreUint32(&load, 200)
	c.Tick()
	c.Tick()
	if c.Degree() != 3 {
		t.Fatalf("degree after 2 busy ticks = %d", c.Degree())
	}
}

func TestCompoundMinClamp(t *testing.T) {
	c := NewCompound(CompoundConfig{Min: 10, Max: 4})
	if c.Degree() != 4 {
		t.Fatalf("degree = %d, want clamped to max", c.Degree())
	}
}

// ---------------------------------------------------------------------------
// SpacePool

// fakeMDS hands out sequential chunks.
type fakeMDS struct {
	mu    sync.Mutex
	next  int64
	calls int
	fail  error
	delay time.Duration
}

func (m *fakeMDS) delegate(size int64) (alloc.Span, error) {
	if m.delay > 0 {
		time.Sleep(m.delay)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls++
	if m.fail != nil {
		return alloc.Span{}, m.fail
	}
	sp := alloc.Span{Dev: 0, Off: m.next, Len: size}
	m.next += size
	return sp, nil
}

func TestSpacePoolLocalAllocation(t *testing.T) {
	m := &fakeMDS{}
	p := NewSpacePool(SpacePoolConfig{ChunkSize: 1 << 20, Delegate: m.delegate})
	sp1, err := p.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	sp2, err := p.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive small allocations are physically contiguous — the whole
	// point of delegation.
	if sp2.Off != sp1.End() {
		t.Fatalf("allocations not contiguous: %v then %v", sp1, sp2)
	}
	local, _, _ := p.Stats()
	if local != 2 {
		t.Fatalf("local allocs = %d", local)
	}
}

func TestSpacePoolTooLarge(t *testing.T) {
	p := NewSpacePool(SpacePoolConfig{ChunkSize: 1024, Delegate: (&fakeMDS{}).delegate})
	if _, err := p.Alloc(2048); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
	if _, err := p.Alloc(0); err == nil {
		t.Fatal("zero alloc succeeded")
	}
}

func TestSpacePoolSwapsToStandby(t *testing.T) {
	m := &fakeMDS{}
	p := NewSpacePool(SpacePoolConfig{ChunkSize: 10000, Delegate: m.delegate})
	// Drain most of the first chunk.
	if _, err := p.Alloc(9000); err != nil {
		t.Fatal(err)
	}
	// Wait for the background refill of the standby.
	waitFor(t, func() bool { _, refills, _ := p.Stats(); return refills >= 2 })
	// This doesn't fit the active chunk's remainder; the standby takes over
	// without ErrTooLarge and without blocking on a cold MDS call.
	sp, err := p.Alloc(5000)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Off != 10000 {
		t.Fatalf("allocation not from standby chunk: %v", sp)
	}
	_, _, wasted := p.Stats()
	if wasted != 1000 {
		t.Fatalf("wasted = %d, want 1000", wasted)
	}
}

func TestSpacePoolColdStartBlocks(t *testing.T) {
	m := &fakeMDS{delay: 5 * time.Millisecond}
	p := NewSpacePool(SpacePoolConfig{ChunkSize: 1 << 20, Delegate: m.delegate})
	sp, err := p.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Len != 100 {
		t.Fatalf("span = %v", sp)
	}
}

func TestSpacePoolDelegateError(t *testing.T) {
	boom := errors.New("mds down")
	m := &fakeMDS{fail: boom}
	p := NewSpacePool(SpacePoolConfig{ChunkSize: 1024, Delegate: m.delegate})
	if _, err := p.Alloc(100); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The pool recovers when the MDS does.
	m.mu.Lock()
	m.fail = nil
	m.mu.Unlock()
	if _, err := p.Alloc(100); err != nil {
		t.Fatalf("pool did not recover: %v", err)
	}
}

func TestSpacePoolCloseReturnsHeld(t *testing.T) {
	m := &fakeMDS{}
	p := NewSpacePool(SpacePoolConfig{ChunkSize: 4096, Delegate: m.delegate})
	if _, err := p.Alloc(100); err != nil {
		t.Fatal(err)
	}
	held := p.Close()
	if len(held) < 1 {
		t.Fatalf("held = %v", held)
	}
	if _, err := p.Alloc(100); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("alloc after close err = %v", err)
	}
}

func TestSpacePoolConcurrent(t *testing.T) {
	m := &fakeMDS{}
	p := NewSpacePool(SpacePoolConfig{ChunkSize: 1 << 20, Delegate: m.delegate})
	var mu sync.Mutex
	type iv struct{ off, end int64 }
	var all []iv
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp, err := p.Alloc(1024)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				all = append(all, iv{sp.Off, sp.End()})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	// No two allocations overlap.
	mu.Lock()
	defer mu.Unlock()
	seen := map[int64]bool{}
	for _, s := range all {
		if seen[s.off] {
			t.Fatalf("duplicate offset %d", s.off)
		}
		seen[s.off] = true
	}
	if len(all) != 1600 {
		t.Fatalf("allocations = %d", len(all))
	}
}

func TestSpacePoolValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"no chunk":    func() { NewSpacePool(SpacePoolConfig{Delegate: (&fakeMDS{}).delegate}) },
		"no delegate": func() { NewSpacePool(SpacePoolConfig{ChunkSize: 4096}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// Pool workers integrate with the queue: a smoke test of the pair.
func TestPoolDrainsQueue(t *testing.T) {
	q := NewQueue[int]()
	var processed atomic.Int64
	p := NewPool(PoolConfig{
		Max: 4, QueueLenMax: 16,
		QueueLen: q.Len,
		Interval: time.Millisecond,
		Worker: func(stop <-chan struct{}) {
			for {
				b := q.Dequeue(3, stop)
				if b == nil {
					return
				}
				processed.Add(int64(len(b)))
			}
		},
		Clock: clock.Real(1),
	})
	p.Start()
	defer p.Stop()
	for i := 0; i < 500; i++ {
		q.Enqueue(i)
	}
	waitFor(t, func() bool { return processed.Load() == 500 })
}
