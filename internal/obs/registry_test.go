package obs

import (
	"strings"
	"testing"
)

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("zzz_total", "", nil).Add(3)
	r.NewGauge("aaa", "", Labels{"b": "2"}).Set(7)
	r.NewGauge("aaa", "", Labels{"b": "1"}).Set(5)
	s := r.Snapshot()
	var got []string
	for _, m := range s.Metrics {
		got = append(got, m.Name+"{"+m.Labels+"}")
	}
	want := []string{`aaa{b="1"}`, `aaa{b="2"}`, `zzz_total{}`}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("snapshot order = %v, want %v", got, want)
	}
	if m, ok := s.Get("zzz_total"); !ok || m.Value != 3 {
		t.Fatalf("Get(zzz_total) = %+v, %v", m, ok)
	}
}

func TestRegistryAdoptsExternalSource(t *testing.T) {
	r := NewRegistry()
	backing := int64(0)
	r.CounterFunc("ext_total", "adopted", nil, func() int64 { return backing })
	backing = 41
	if m, _ := r.Snapshot().Get("ext_total"); m.Value != 41 {
		t.Fatalf("lazy source read %d, want 41", m.Value)
	}
	backing++
	if m, _ := r.Snapshot().Get("ext_total"); m.Value != 42 {
		t.Fatal("snapshot does not re-read the source")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "", Labels{"a": "1"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewCounter("dup_total", "", Labels{"a": "1"})
}

func TestRegistrySameNameDifferentLabelsOK(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("c_total", "", Labels{"a": "1"})
	r.NewCounter("c_total", "", Labels{"a": "2"}) // must not panic
	if n := len(r.Snapshot().Metrics); n != 2 {
		t.Fatalf("got %d metrics, want 2", n)
	}
}

func TestNilRegistryNoops(t *testing.T) {
	var r *Registry
	r.CounterFunc("x", "", nil, func() int64 { return 0 })
	r.GaugeFunc("x", "", nil, func() int64 { return 0 })
	c := r.NewCounter("x", "", nil)
	c.Inc() // returned primitive must work unregistered
	g := r.NewGauge("x", "", nil)
	g.Set(1)
	h := r.NewHistogram("x", "", nil)
	h.Observe(1)
	if len(r.Snapshot().Metrics) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "", nil)
	for i := 0; i < 100; i++ {
		h.Observe(0.001)
	}
	m, ok := r.Snapshot().Get("lat_seconds")
	if !ok || m.Hist == nil {
		t.Fatalf("histogram missing: %+v", m)
	}
	if m.Hist.Count != 100 {
		t.Fatalf("count = %d, want 100", m.Hist.Count)
	}
	if m.Hist.P50 <= 0 || m.Hist.P50 > 0.01 {
		t.Fatalf("p50 = %g, want ~1ms bucket bound", m.Hist.P50)
	}
	if len(m.Hist.Buckets) == 0 {
		t.Fatal("no buckets exported")
	}
	// Cumulative: last bucket should hold every in-range observation.
	if last := m.Hist.Buckets[len(m.Hist.Buckets)-1]; last.Count != 100 {
		t.Fatalf("cumulative tail = %d, want 100", last.Count)
	}
}

func TestDiff(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("ops_total", "", nil)
	g := r.NewGauge("depth", "", nil)
	h := r.NewHistogram("lat_seconds", "", nil)
	c.Add(10)
	g.Set(5)
	h.Observe(0.001)
	before := r.Snapshot()
	c.Add(7)
	g.Set(9)
	h.Observe(0.004)
	h.Observe(0.004)
	d := Diff(before, r.Snapshot())

	if m, _ := d.Get("ops_total"); m.Value != 7 {
		t.Fatalf("counter delta = %d, want 7", m.Value)
	}
	if m, _ := d.Get("depth"); m.Value != 9 {
		t.Fatalf("gauge after-value = %d, want 9", m.Value)
	}
	m, _ := d.Get("lat_seconds")
	if m.Hist == nil || m.Hist.Count != 2 {
		t.Fatalf("hist delta count = %+v, want 2", m.Hist)
	}
	// Both interval observations are 4ms; the delta p50 must land in that
	// bucket, not the 1ms one observed before the interval.
	if m.Hist.P50 < 0.004 || m.Hist.P50 > 0.01 {
		t.Fatalf("delta p50 = %g, want ≈4ms bucket bound", m.Hist.P50)
	}
}
