// Command redbud-bench regenerates the paper's evaluation figures against
// the simulated cluster and prints them as tables:
//
//	redbud-bench -fig 3          # Figure 3: system comparison
//	redbud-bench -fig all        # every figure
//	redbud-bench -fig 4 -clients 7 -size 1 -scale 0.02
//
// All reported numbers are in virtual time (see internal/clock); -scale only
// changes how long the run takes on the wall.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"redbud/internal/bench"
	"redbud/internal/obs"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 3, 4, 5, 6, 7, autoscale, obs, visibility, shards or all (autoscale, obs, visibility and shards run only when named)")
		clients = flag.Int("clients", 7, "number of client nodes")
		scale   = flag.Float64("scale", 0.02, "virtual-time compression in (0, 1]")
		size    = flag.Float64("size", 0.5, "workload size factor in (0, 1]")
		seed    = flag.Int64("seed", 1, "workload seed")
		mdsJSON = flag.String("json", "BENCH_mds.json", "path for the machine-readable Figure 7 report (empty disables)")
		obsJSON = flag.String("obs-json", "BENCH_obs.json", "path for the observability report when -fig obs (empty disables)")
		obsOut  = flag.String("obs-trace", "", "path for the Chrome/Perfetto trace JSON when -fig obs (empty disables)")
		visJSON = flag.String("visibility-json", "BENCH_visibility.json", "path for the visibility report when -fig visibility (empty disables)")
		shJSON  = flag.String("shards-json", "BENCH_shards.json", "path for the namespace-sharding report when -fig shards (empty disables)")
	)
	flag.Parse()

	opt := bench.DefaultOptions()
	opt.Clients = *clients
	opt.Scale = *scale
	opt.SizeFactor = *size
	opt.Seed = *seed

	run := func(name string, fn func() error) {
		start := time.Now()
		fmt.Printf("== %s (clients=%d scale=%g size=%g)\n", name, opt.Clients, opt.Scale, opt.SizeFactor)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("   [%s wall]\n\n", time.Since(start).Round(time.Millisecond))
	}

	want := func(f string) bool { return *fig == "all" || *fig == f }

	if want("3") {
		run("Figure 3", func() error {
			rows, err := bench.Fig3(opt)
			if err != nil {
				return err
			}
			bench.PrintFig3(os.Stdout, rows)
			return nil
		})
	}
	if want("4") {
		run("Figure 4", func() error {
			rows, err := bench.Fig4(opt)
			if err != nil {
				return err
			}
			bench.PrintFig4(os.Stdout, rows)
			return nil
		})
	}
	if want("5") {
		run("Figure 5", func() error {
			panels, err := bench.Fig5(opt)
			if err != nil {
				return err
			}
			bench.PrintFig5(os.Stdout, panels)
			fmt.Println("   (per-panel CSV series: cmd/redbud-trace)")
			return nil
		})
	}
	if want("6") {
		run("Figure 6", func() error {
			traces, err := bench.Fig6(opt)
			if err != nil {
				return err
			}
			bench.PrintFig6(os.Stdout, traces)
			return nil
		})
	}
	// The autoscale comparison is opt-in ("-fig autoscale"), not part of
	// "all": it runs each pressure workload twice (static vs controller).
	if *fig == "autoscale" {
		run("Autoscale", func() error {
			rows, err := bench.FigAutoscale(opt)
			if err != nil {
				return err
			}
			bench.PrintFigAutoscale(os.Stdout, rows)
			return nil
		})
	}
	// The obs benchmark is opt-in ("-fig obs"), not part of "all": it runs
	// the same workload twice to price the tracing overhead.
	if *fig == "obs" {
		run("Observability", func() error {
			rep, spans, err := bench.RunObsBench(opt)
			if err != nil {
				return err
			}
			bench.PrintObs(os.Stdout, rep)
			if *obsJSON != "" {
				if err := bench.WriteObsJSON(*obsJSON, opt, rep); err != nil {
					return err
				}
				fmt.Printf("   wrote %s\n", *obsJSON)
			}
			if *obsOut != "" {
				f, err := os.Create(*obsOut)
				if err != nil {
					return err
				}
				if err := obs.WriteChromeTrace(f, spans); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Printf("   wrote %s (load in ui.perfetto.dev)\n", *obsOut)
			}
			return nil
		})
	}

	// The visibility figure is opt-in ("-fig visibility"), not part of
	// "all": it runs the conflict-read and varmail workloads twice (early
	// visibility off vs on).
	if *fig == "visibility" {
		run("Visibility", func() error {
			rows, err := bench.FigVisibility(opt)
			if err != nil {
				return err
			}
			bench.PrintFigVisibility(os.Stdout, rows)
			if *visJSON != "" {
				if err := bench.WriteVisibilityJSON(*visJSON, opt, rows); err != nil {
					return err
				}
				fmt.Printf("   wrote %s\n", *visJSON)
			}
			return nil
		})
	}

	// The sharding figure is opt-in ("-fig shards"), not part of "all": it
	// builds and tears down four whole clusters (1, 2, 4, 8 shards).
	if *fig == "shards" {
		run("Shards", func() error {
			rows, err := bench.FigShards(opt)
			if err != nil {
				return err
			}
			bench.PrintFigShards(os.Stdout, rows)
			if *shJSON != "" {
				if err := bench.WriteShardsJSON(*shJSON, opt, rows); err != nil {
					return err
				}
				fmt.Printf("   wrote %s\n", *shJSON)
			}
			return nil
		})
	}

	if want("7") {
		run("Figure 7", func() error {
			cells, err := bench.Fig7(opt)
			if err != nil {
				return err
			}
			bench.PrintFig7(os.Stdout, cells)
			if *mdsJSON != "" {
				if err := bench.WriteMDSJSON(*mdsJSON, opt, cells); err != nil {
					return err
				}
				fmt.Printf("   wrote %s\n", *mdsJSON)
			}
			return nil
		})
	}
}
