// Mail-server scenario (the varmail personality, §V-B): deliveries append a
// message and must be durable before acknowledging — the fsync escape hatch
// the paper prescribes for applications that cannot afford the delayed
// window — while maildir housekeeping (scans, deletes, folder listing) rides
// the fast delayed path.
//
//	go run ./examples/mailserver
package main

import (
	"fmt"
	"log"
	"time"

	"redbud"
)

func main() {
	cluster, err := redbud.New(redbud.Config{
		Clients:         1,
		Mode:            redbud.DelayedCommit,
		SpaceDelegation: 16 << 20,
		TimeScale:       0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fs := cluster.Mount(0)

	for _, dir := range []string{"/mail", "/mail/inbox", "/mail/archive"} {
		if err := fs.Mkdir(dir); err != nil {
			log.Fatal(err)
		}
	}

	// Phase 1: deliveries. Each message is created, appended and fsynced —
	// durable at the MDS before the "SMTP 250 OK".
	const messages = 40
	body := make([]byte, 16<<10)
	start := time.Now()
	for i := 0; i < messages; i++ {
		f, err := fs.Create(fmt.Sprintf("/mail/inbox/msg-%04d.eml", i))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := f.Append(body); err != nil {
			log.Fatal(err)
		}
		if err := f.Sync(); err != nil { // durability point
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	deliver := time.Since(start)

	// Phase 2: housekeeping — re-file half the messages to the archive.
	// Pure namespace + data churn: no fsync, so everything rides the
	// commit queue and the RPC compound.
	start = time.Now()
	moved := 0
	ents, err := fs.ReadDir("/mail/inbox")
	if err != nil {
		log.Fatal(err)
	}
	for i, e := range ents {
		if i%2 != 0 {
			continue
		}
		src, err := fs.Open("/mail/inbox/" + e.Name)
		if err != nil {
			log.Fatal(err)
		}
		buf := make([]byte, src.Size())
		if _, err := src.ReadAt(buf, 0); err != nil {
			log.Fatal(err)
		}
		src.Close()
		dst, err := fs.Create("/mail/archive/" + e.Name)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := dst.WriteAt(buf, 0); err != nil {
			log.Fatal(err)
		}
		dst.Close() // no fsync: delayed commit keeps the order
		if err := fs.Remove("/mail/inbox/" + e.Name); err != nil {
			log.Fatal(err)
		}
		moved++
	}
	cluster.Drain()
	housekeeping := time.Since(start)

	inbox, _ := fs.ReadDir("/mail/inbox")
	archive, _ := fs.ReadDir("/mail/archive")
	st := cluster.Client(0).Stats()
	fmt.Printf("delivered %d messages (fsync each) in %v\n", messages, deliver.Round(time.Millisecond))
	fmt.Printf("archived  %d messages (delayed)    in %v\n", moved, housekeeping.Round(time.Millisecond))
	fmt.Printf("inbox: %d messages, archive: %d messages\n", len(inbox), len(archive))
	fmt.Printf("client stats: %d fsyncs, %d commits in %d RPC frames, mean close latency %v\n",
		st.Fsyncs, st.CommitsSent, st.CommitRPCs, st.MeanCloseLatency)
}
