package blockdev

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPageStoreReadUnwrittenIsZero(t *testing.T) {
	s := newPageStore()
	buf := make([]byte, 100)
	for i := range buf {
		buf[i] = 0xff
	}
	s.readAt(buf, 12345)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
}

func TestPageStoreRoundTrip(t *testing.T) {
	s := newPageStore()
	data := []byte("hello block world")
	s.writeAt(data, 4090) // crosses a page boundary
	got := make([]byte, len(data))
	s.readAt(got, 4090)
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q, want %q", got, data)
	}
}

func TestPageStoreOverwrite(t *testing.T) {
	s := newPageStore()
	s.writeAt(bytes.Repeat([]byte{1}, 8192), 0)
	s.writeAt(bytes.Repeat([]byte{2}, 100), 4000)
	got := make([]byte, 8192)
	s.readAt(got, 0)
	if got[3999] != 1 || got[4000] != 2 || got[4099] != 2 || got[4100] != 1 {
		t.Fatalf("overwrite boundary wrong: %v %v %v %v", got[3999], got[4000], got[4099], got[4100])
	}
}

func TestPageStoreQuickRoundTrip(t *testing.T) {
	s := newPageStore()
	// Reference model: one flat slice.
	const size = 1 << 16
	ref := make([]byte, size)
	f := func(off uint16, raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		o := int64(off) % (size / 2)
		n := len(raw)
		if int(o)+n > size {
			n = size - int(o)
		}
		s.writeAt(raw[:n], o)
		copy(ref[o:], raw[:n])
		got := make([]byte, size)
		s.readAt(got, 0)
		return bytes.Equal(got, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalSetBasics(t *testing.T) {
	var s intervalSet
	if !s.contains(5, 5) {
		t.Fatal("empty range must be contained")
	}
	s.add(10, 20)
	if !s.contains(10, 20) || !s.contains(12, 18) {
		t.Fatal("added range not contained")
	}
	if s.contains(9, 11) || s.contains(19, 21) || s.contains(0, 5) {
		t.Fatal("uncovered range reported contained")
	}
}

func TestIntervalSetCoalesce(t *testing.T) {
	var s intervalSet
	s.add(0, 10)
	s.add(10, 20) // adjacent: coalesce
	if s.count() != 1 {
		t.Fatalf("adjacent add left %d intervals, want 1", s.count())
	}
	if !s.contains(0, 20) {
		t.Fatal("coalesced range not contained")
	}
	s.add(30, 40)
	s.add(15, 35) // bridges the two
	if s.count() != 1 || !s.contains(0, 40) {
		t.Fatalf("bridging add: count=%d contains=%v", s.count(), s.contains(0, 40))
	}
}

func TestIntervalSetSubsumed(t *testing.T) {
	var s intervalSet
	s.add(0, 100)
	s.add(10, 20)
	if s.count() != 1 {
		t.Fatalf("subsumed add split interval: count=%d", s.count())
	}
}

func TestIntervalSetEmptyAdd(t *testing.T) {
	var s intervalSet
	s.add(10, 10)
	s.add(10, 5)
	if s.count() != 0 {
		t.Fatal("empty/inverted add created intervals")
	}
}

func TestIntervalSetClear(t *testing.T) {
	var s intervalSet
	s.add(0, 10)
	s.clear()
	if s.contains(0, 1) || s.count() != 0 {
		t.Fatal("clear did not empty the set")
	}
}

// TestIntervalSetQuickVsBitmap checks the interval set against a bitmap
// reference model under random insertions.
func TestIntervalSetQuickVsBitmap(t *testing.T) {
	const size = 4096
	var s intervalSet
	ref := make([]bool, size)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		a := int64(rng.Intn(size))
		b := a + int64(rng.Intn(64))
		if b > size {
			b = size
		}
		s.add(a, b)
		for j := a; j < b; j++ {
			ref[j] = true
		}
		// Probe random ranges.
		for k := 0; k < 10; k++ {
			x := int64(rng.Intn(size))
			y := x + int64(rng.Intn(64))
			if y > size {
				y = size
			}
			want := true
			for j := x; j < y; j++ {
				if !ref[j] {
					want = false
					break
				}
			}
			if got := s.contains(x, y); got != want {
				t.Fatalf("iteration %d: contains(%d,%d) = %v, want %v", i, x, y, got, want)
			}
		}
	}
}
