package client

import (
	"bytes"
	"net"
	"testing"

	"redbud/internal/alloc"
	"redbud/internal/blockdev"
	"redbud/internal/clock"
	"redbud/internal/mds"
	"redbud/internal/meta"
	"redbud/internal/netsim"
	"redbud/internal/rpc"
	"redbud/internal/san"
)

// TestFullStackOverTCP runs the complete deployment path inside the suite:
// MDS and SAN disk server on real TCP loopback sockets, a client mounted
// against both, delayed commit end to end. This is exactly what
// cmd/redbud-mds + cmd/redbud-disk + cmd/redbud-client assemble.
func TestFullStackOverTCP(t *testing.T) {
	clk := clock.Real(1)

	// Disk server.
	disk := blockdev.New(blockdev.Config{ID: 0, Size: 1 << 30, Model: blockdev.FastHDD(), Clock: clk})
	t.Cleanup(disk.Close)
	sanSrv := san.NewServer(disk, clk, 8)
	t.Cleanup(sanSrv.Close)
	diskL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { diskL.Close() })
	go func() {
		for {
			conn, err := diskL.Accept()
			if err != nil {
				return
			}
			go sanSrv.ServeConn(netsim.FrameConn(conn))
		}
	}()

	// MDS with a journaled store.
	metaDev := blockdev.New(blockdev.Config{ID: 1000, Size: 256 << 20, Model: blockdev.FastHDD(), Clock: clk})
	t.Cleanup(metaDev.Close)
	ags := alloc.NewUniformAGSet(alloc.RoundRobin, 0, 1<<30, 4)
	journal := meta.NewJournal(metaDev, 0, 128<<20)
	store := meta.NewStore(meta.Config{AGs: ags, Journal: journal, Clock: clk})
	mdsSrv := mds.New(mds.Config{Store: store, Clock: clk, Daemons: 4})
	t.Cleanup(mdsSrv.Close)
	mdsL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mdsL.Close() })
	go func() {
		for {
			conn, err := mdsL.Accept()
			if err != nil {
				return
			}
			go mdsSrv.ServeConn(netsim.FrameConn(conn))
		}
	}()

	// Client over both sockets.
	mconn, err := net.Dial("tcp", mdsL.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	dconn, err := net.Dial("tcp", diskL.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	remote := san.NewRemoteDevice(netsim.FrameConn(dconn), clk)
	c := New(Config{
		Name:            "tcp-client",
		MDS:             rpc.NewClient(netsim.FrameConn(mconn), clk),
		Devices:         map[uint32]BlockDevice{0: remote},
		Clock:           clk,
		Mode:            DelayedCommit,
		DelegationChunk: 4 << 20,
	})

	// Exercise the namespace and data paths.
	if err := c.Mkdir("/docs"); err != nil {
		t.Fatal(err)
	}
	data := pattern(48<<10, 5)
	f, err := c.Create("/docs/report.bin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := c.Rename("/docs/report.bin", "/docs/final.bin"); err != nil {
		t.Fatal(err)
	}
	g, err := c.Open("/docs/final.bin")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	n, err := g.ReadAt(got, 0)
	g.Close()
	if err != nil || n != len(data) || !bytes.Equal(got, data) {
		t.Fatalf("TCP round trip: n=%d err=%v", n, err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// The write went through the SAN to the real device, and the commit
	// referenced durable bytes only.
	if disk.Stats().BytesWrite < int64(len(data)) {
		t.Fatalf("disk saw %d bytes", disk.Stats().BytesWrite)
	}
	bad := store.CheckConsistent(func(dev int, off, sz int64) bool { return disk.IsDurable(off, sz) })
	if len(bad) != 0 {
		t.Fatalf("%d inconsistent extents over TCP", len(bad))
	}
	if r := store.Fsck(meta.TotalSpace(ags)); !r.OK() {
		t.Fatalf("fsck: %v", r.Problems)
	}
}
