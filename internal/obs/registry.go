package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"redbud/internal/stats"
)

// Labels attaches dimensions to a metric ({"client": "client-0"}). Labels
// are rendered to a canonical sorted form at registration time, so two
// registrations with the same name and label set collide deterministically.
type Labels map[string]string

// render produces the canonical `k1="v1",k2="v2"` form, keys sorted.
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	return b.String()
}

// metric kinds.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// metric is one registered source.
type metric struct {
	name   string
	labels string // canonical rendered labels, "" if none
	help   string
	kind   string
	intFn  func() int64 // counter / gauge value source
	hist   *stats.Histogram
}

// Registry is a named collection of metric sources. Sources are read lazily
// at snapshot time, so adopting an existing atomic counter costs one
// closure; nothing is double-counted. All methods are safe for concurrent
// use, and every registration method is a no-op on a nil receiver (the
// value-returning ones hand back a working but unregistered primitive), so
// call sites can register unconditionally.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	seen    map[string]bool // name + "{" + labels + "}" dedup
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{seen: make(map[string]bool)} }

// add registers one source, panicking on an exact (name, labels) duplicate —
// a registration bug, caught deterministically at wiring time.
func (r *Registry) add(m *metric) {
	key := m.name + "{" + m.labels + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen[key] {
		panic("obs: duplicate metric registration: " + key)
	}
	r.seen[key] = true
	r.metrics = append(r.metrics, m)
}

// CounterFunc registers a monotonic counter read from fn.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() int64) {
	if r == nil {
		return
	}
	r.add(&metric{name: name, labels: labels.render(), help: help, kind: KindCounter, intFn: fn})
}

// GaugeFunc registers an instantaneous value read from fn.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() int64) {
	if r == nil {
		return
	}
	r.add(&metric{name: name, labels: labels.render(), help: help, kind: KindGauge, intFn: fn})
}

// NewCounter creates, registers, and returns an owned counter.
func (r *Registry) NewCounter(name, help string, labels Labels) *stats.Counter {
	c := &stats.Counter{}
	if r != nil {
		r.CounterFunc(name, help, labels, c.Load)
	}
	return c
}

// NewGauge creates, registers, and returns an owned gauge.
func (r *Registry) NewGauge(name, help string, labels Labels) *stats.Gauge {
	g := &stats.Gauge{}
	if r != nil {
		r.GaugeFunc(name, help, labels, g.Load)
	}
	return g
}

// NewHistogram creates, registers, and returns an owned latency histogram
// (1 µs .. 100 s, observations in seconds).
func (r *Registry) NewHistogram(name, help string, labels Labels) *stats.Histogram {
	h := stats.NewLatencyHistogram()
	r.RegisterHistogram(name, help, labels, h)
	return h
}

// RegisterHistogram adopts an existing histogram.
func (r *Registry) RegisterHistogram(name, help string, labels Labels, h *stats.Histogram) {
	if r == nil {
		return
	}
	r.add(&metric{name: name, labels: labels.render(), help: help, kind: KindHistogram, hist: h})
}

// ---------------------------------------------------------------------------
// Snapshots

// BucketValue is one cumulative histogram bucket.
type BucketValue struct {
	LE    float64 `json:"le"` // upper bound; +Inf encoded as the JSON string handled by exporters
	Count int64   `json:"count"`
}

// HistValue is a point-in-time histogram reading.
type HistValue struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Min     float64       `json:"min"`
	Max     float64       `json:"max"`
	Mean    float64       `json:"mean"`
	P50     float64       `json:"p50"`
	P90     float64       `json:"p90"`
	P99     float64       `json:"p99"`
	Buckets []BucketValue `json:"buckets,omitempty"` // cumulative, excludes overflow
}

// MetricValue is one metric in a snapshot.
type MetricValue struct {
	Name   string     `json:"name"`
	Labels string     `json:"labels,omitempty"`
	Help   string     `json:"help,omitempty"`
	Kind   string     `json:"kind"`
	Value  int64      `json:"value"` // counter / gauge reading
	Hist   *HistValue `json:"histogram,omitempty"`
}

// Snapshot is a point-in-time reading of every registered metric, sorted by
// (name, labels) so exports are deterministic.
type Snapshot struct {
	Metrics []MetricValue `json:"metrics"`
}

// Get returns the first metric with the given name (any label set).
func (s Snapshot) Get(name string) (MetricValue, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return MetricValue{}, false
}

// Snapshot reads every source. Safe on a nil registry (empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	ms := make([]*metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()

	out := Snapshot{Metrics: make([]MetricValue, 0, len(ms))}
	for _, m := range ms {
		mv := MetricValue{Name: m.name, Labels: m.labels, Help: m.help, Kind: m.kind}
		if m.hist != nil {
			mv.Hist = histValue(m.hist)
		} else if m.intFn != nil {
			mv.Value = m.intFn()
		}
		out.Metrics = append(out.Metrics, mv)
	}
	sort.Slice(out.Metrics, func(i, j int) bool {
		a, b := out.Metrics[i], out.Metrics[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Labels < b.Labels
	})
	return out
}

// histValue snapshots one histogram, converting per-bucket counts to the
// cumulative form Prometheus expects.
func histValue(h *stats.Histogram) *HistValue {
	bounds, counts := h.Buckets()
	hv := &HistValue{
		Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(), Mean: h.Mean(),
		P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
	}
	var cum int64
	hv.Buckets = make([]BucketValue, 0, len(bounds))
	for i, b := range bounds {
		cum += counts[i]
		hv.Buckets = append(hv.Buckets, BucketValue{LE: b, Count: cum})
	}
	return hv
}

// Diff subtracts before from after: counters and histogram counts become
// deltas, gauges keep their after value (a gauge delta is meaningless), and
// histogram quantiles are recomputed from the diffed buckets. Min/Max carry
// the after reading — extremes cannot be un-observed. Metrics present only
// in after pass through unchanged.
func Diff(before, after Snapshot) Snapshot {
	prev := make(map[string]MetricValue, len(before.Metrics))
	for _, m := range before.Metrics {
		prev[m.Name+"{"+m.Labels+"}"] = m
	}
	out := Snapshot{Metrics: make([]MetricValue, 0, len(after.Metrics))}
	for _, m := range after.Metrics {
		p, ok := prev[m.Name+"{"+m.Labels+"}"]
		if ok {
			switch m.Kind {
			case KindCounter:
				m.Value -= p.Value
			case KindHistogram:
				if m.Hist != nil && p.Hist != nil {
					m.Hist = diffHist(p.Hist, m.Hist)
				}
			}
		}
		out.Metrics = append(out.Metrics, m)
	}
	return out
}

// diffHist subtracts two cumulative-bucket readings of the same histogram.
func diffHist(before, after *HistValue) *HistValue {
	d := &HistValue{
		Count: after.Count - before.Count,
		Sum:   after.Sum - before.Sum,
		Min:   after.Min,
		Max:   after.Max,
	}
	if d.Count > 0 {
		d.Mean = d.Sum / float64(d.Count)
	}
	if len(before.Buckets) == len(after.Buckets) {
		d.Buckets = make([]BucketValue, len(after.Buckets))
		for i := range after.Buckets {
			d.Buckets[i] = BucketValue{LE: after.Buckets[i].LE, Count: after.Buckets[i].Count - before.Buckets[i].Count}
		}
		d.P50 = quantileFromBuckets(d.Buckets, d.Count, 0.50)
		d.P90 = quantileFromBuckets(d.Buckets, d.Count, 0.90)
		d.P99 = quantileFromBuckets(d.Buckets, d.Count, 0.99)
	}
	return d
}

// quantileFromBuckets estimates a quantile from cumulative bucket counts,
// mirroring stats.Histogram.Quantile (bucket upper bound, max for overflow).
func quantileFromBuckets(buckets []BucketValue, n int64, q float64) float64 {
	if n <= 0 || len(buckets) == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	for _, b := range buckets {
		if b.Count >= target {
			return b.LE
		}
	}
	return buckets[len(buckets)-1].LE
}
