// Package bench is the experiment harness: it assembles in-process clusters
// of the four systems under test (PVFS2-like, NFS3-like, original Redbud,
// Redbud with delayed commit ± space delegation), runs the paper's
// workloads on them, and regenerates every table and figure of the
// evaluation section (Figures 3-7) plus the ablation studies DESIGN.md
// calls out.
package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"redbud/internal/alloc"
	"redbud/internal/blockdev"
	"redbud/internal/client"
	"redbud/internal/clock"
	"redbud/internal/fsapi"
	"redbud/internal/iotrace"
	"redbud/internal/mds"
	"redbud/internal/meta"
	"redbud/internal/netsim"
	"redbud/internal/nfs3"
	"redbud/internal/obs"
	"redbud/internal/obs/agg"
	"redbud/internal/pvfs2"
	"redbud/internal/rpc"
	"redbud/internal/workload"
)

// System identifies one configuration under test.
type System int

// Systems of Figure 3 (and the Redbud configurations of Figures 4-7).
const (
	SysPVFS2 System = iota
	SysNFS3
	SysRedbud     // original Redbud: synchronous commit
	SysRedbudDC   // + delayed commit
	SysRedbudDCSD // + delayed commit + space delegation
)

func (s System) String() string {
	switch s {
	case SysPVFS2:
		return "pvfs2"
	case SysNFS3:
		return "nfs3"
	case SysRedbud:
		return "redbud"
	case SysRedbudDC:
		return "redbud+dc"
	case SysRedbudDCSD:
		return "redbud+dc+sd"
	}
	return "?"
}

// Options sets the cluster scale and fidelity knobs shared by all figures.
type Options struct {
	// Clients is the number of client nodes (the paper uses 7).
	Clients int
	// Scale compresses virtual time for wall-clock speed: 0.02 runs the
	// cluster 50x faster than real time while keeping every relative
	// latency intact. Reported numbers are always virtual-time.
	Scale float64
	// SizeFactor scales workload op counts in (0, 1]; bench targets use
	// small factors, `redbud-bench` uses 1.
	SizeFactor float64
	// DataDevices is the number of disks in the shared FC array.
	DataDevices int
	// DeviceSize is the capacity of each disk.
	DeviceSize int64
	// Disk is the service-time model of each disk.
	Disk blockdev.DiskModel
	// Net is the metadata-Ethernet link model.
	Net netsim.LinkConfig
	// MDSDaemons is the metadata server daemon-thread count.
	MDSDaemons int
	// MDSOpCost is the CPU cost of one metadata op at the server.
	MDSOpCost time.Duration
	// MDSFrameCost is the per-RPC-frame overhead at the server; the
	// saving compound RPCs buy (Figure 7).
	MDSFrameCost time.Duration
	// CompoundDegree pins the Redbud compound degree (0 = adaptive).
	CompoundDegree int
	// DelegationChunk is the space-delegation unit (paper: 16 MiB).
	DelegationChunk int64
	// Seed drives all randomness.
	Seed int64
	// Trace attaches a blktrace recorder to the data devices.
	Trace bool
	// SpanTrace attaches a commit-lifecycle span tracer to every layer of a
	// Redbud cluster (devices, network, MDS, store, clients).
	SpanTrace bool
	// SpanTraceCap bounds the span ring (0 = obs.DefaultTraceCap).
	SpanTraceCap int

	// ReadAhead enables client sequential prefetch with this window.
	ReadAhead int64

	// Ablation knobs, applied to Redbud delayed-commit clients.
	FixedCommitThreads int
	SpaceNoPrefetch    bool
	CommitEvenIfClean  bool
	DisableMerge       bool

	// Autoscale switches Redbud clients from the paper's static
	// commit-thread formula to the autoscaler v2 control loop.
	Autoscale bool
	// EarlyVisibility lets Redbud clients read peers' durable-but-
	// uncommitted extents through the layout-v2 intent path instead of
	// stalling conflict reads until the commit lands.
	EarlyVisibility bool
	// JournalMaxDelay enables journal group-commit v2 with this adaptive
	// deadline bound (0 keeps v1 flush-as-soon-as-the-leader-runs).
	JournalMaxDelay time.Duration

	// Shards partitions the metadata namespace across this many MDS
	// instances (<= 1 keeps the classic single MDS). Each shard runs its
	// own daemon pool, store and journal device, and splits the shared
	// array's allocation groups with the others; clients route per inode
	// via the hash partition. Incompatible with space delegation (the
	// client refuses the combination).
	Shards int
}

// DefaultOptions mirrors the paper's testbed at simulation scale.
func DefaultOptions() Options {
	return Options{
		Clients:         7,
		Scale:           0.02,
		SizeFactor:      1,
		DataDevices:     4,
		DeviceSize:      16 << 30,
		Disk:            blockdev.DefaultHDD(),
		Net:             netsim.GigabitEthernet(),
		MDSDaemons:      8,
		MDSOpCost:       15 * time.Microsecond,
		MDSFrameCost:    35 * time.Microsecond,
		DelegationChunk: 16 << 20,
		Seed:            1,
	}
}

// TestOptions shrinks everything for fast test/bench runs.
func TestOptions() Options {
	o := DefaultOptions()
	o.Clients = 3
	o.Scale = 0.002
	o.SizeFactor = 0.1
	return o
}

// Cluster is one assembled system: mounts, devices, metadata authorities.
type Cluster struct {
	System  System
	Clock   clock.Clock
	Mounts  []fsapi.FileSystem
	Devices []*blockdev.Device
	Rec     *iotrace.Recorder

	// Redbud-only handles (nil otherwise). MDS / Store / MetaDev / AGTotal
	// are shard 0's (the whole cluster when Options.Shards <= 1); the
	// slices hold every shard of a sharded namespace in shard order.
	Redbud   []*client.Client
	MDS      *mds.Server
	Store    *meta.Store
	Net      *netsim.Network
	MetaDev  *blockdev.Device
	AGTotal  int64 // capacity shard 0's AG set spans (fsck identity)
	MDSs     []*mds.Server
	Stores   []*meta.Store
	MetaDevs []*blockdev.Device
	AGTotals []int64

	// Tracer is the commit-lifecycle span ring (nil unless Options.SpanTrace;
	// Redbud systems only). Registry names every counter of a Redbud cluster
	// and is always built.
	Tracer   *obs.Tracer
	Registry *obs.Registry

	// ShardRegs holds one registry per MDS shard, carrying that shard's
	// server + store + rpc metrics. Registry exports only shard 0's MDS (the
	// fixed metric names would collide); the per-shard registries cover the
	// rest, and Collector aggregates them — plus every client — into the
	// shard-tagged cluster view (Redbud systems only).
	ShardRegs []*obs.Registry
	Collector *agg.Collector

	closers []func()
}

// Close tears the cluster down in reverse construction order.
func (c *Cluster) Close() {
	for _, m := range c.Mounts {
		_ = m.Close()
	}
	for i := len(c.closers) - 1; i >= 0; i-- {
		c.closers[i]()
	}
}

// Drain flushes pending delayed commits on every Redbud mount.
func (c *Cluster) Drain() {
	for _, r := range c.Redbud {
		_ = r.Drain()
	}
}

// DeviceStats aggregates the data-device counters.
func (c *Cluster) DeviceStats() blockdev.Stats {
	var total blockdev.Stats
	for _, d := range c.Devices {
		s := d.Stats()
		total.Submitted += s.Submitted
		total.Dispatched += s.Dispatched
		total.Merged += s.Merged
		total.Seeks += s.Seeks
		total.SeekBytes += s.SeekBytes
		total.BytesRead += s.BytesRead
		total.BytesWrite += s.BytesWrite
		total.BusyTime += s.BusyTime
	}
	return total
}

// ResetDeviceStats zeroes the data-device counters (after prefill).
func (c *Cluster) ResetDeviceStats() {
	for _, d := range c.Devices {
		d.ResetStats()
	}
}

// RPCs sums client-side RPC counts (network-traffic metric).
func (c *Cluster) RPCs() int64 {
	var total int64
	for _, m := range c.Mounts {
		switch fs := m.(type) {
		case *client.Client:
			total += fs.Stats().RPCs
		case *nfs3.Client:
			total += fs.RPCs()
		case *pvfs2.Client:
			total += fs.RPCs()
		}
	}
	return total
}

// Build assembles a cluster of the given system.
func Build(sys System, opt Options) *Cluster {
	switch sys {
	case SysPVFS2:
		return buildPVFS2(opt)
	case SysNFS3:
		return buildNFS3(opt)
	default:
		return buildRedbud(sys, opt)
	}
}

// newDevices builds the shared disk array, optionally traced.
func newDevices(opt Options, clk clock.Clock, rec *iotrace.Recorder, tr *obs.Tracer) []*blockdev.Device {
	devs := make([]*blockdev.Device, 0, opt.DataDevices)
	for i := 0; i < opt.DataDevices; i++ {
		cfg := blockdev.Config{
			ID:           i,
			Size:         opt.DeviceSize,
			Model:        opt.Disk,
			Clock:        clk,
			DisableMerge: opt.DisableMerge,
			Tracer:       tr,
		}
		if rec != nil {
			cfg.Trace = rec.Record
		}
		devs = append(devs, blockdev.New(cfg))
	}
	return devs
}

// buildRedbud assembles MDS + shared array + Redbud clients in the given
// commit mode.
func buildRedbud(sys System, opt Options) *Cluster {
	shards := opt.Shards
	if shards <= 0 {
		shards = 1
	}
	if shards > 1 && sys == SysRedbudDCSD {
		// A delegated writer allocates from a private space pool with no
		// shard affinity; the client refuses the combination, so fail the
		// build loudly instead of handing out a cluster that panics later.
		panic("bench: space delegation is incompatible with a sharded namespace")
	}
	clk := clock.Real(opt.Scale)
	c := &Cluster{System: sys, Clock: clk}
	if opt.Trace {
		c.Rec = iotrace.NewRecorder()
	}
	if opt.SpanTrace {
		c.Tracer = obs.NewTracer(opt.SpanTraceCap)
	}
	c.Registry = obs.NewRegistry()
	c.Devices = newDevices(opt, clk, c.Rec, c.Tracer)
	for _, d := range c.Devices {
		dev := d
		c.closers = append(c.closers, dev.Close)
	}

	// Each shard gets its own AG set over the shared array: with one shard
	// the AGs partition each device in halves (the classic layout); with
	// more, the shards split every device into disjoint slices, so extent
	// spaces never overlap across metadata authorities.
	mkAGs := func(shard int) *alloc.AGSet {
		var groups []*alloc.Group
		for _, d := range c.Devices {
			if shards == 1 {
				half := d.Size() / 2
				groups = append(groups,
					alloc.NewGroup(d.ID(), 0, half),
					alloc.NewGroup(d.ID(), half, d.Size()))
				continue
			}
			per := d.Size() / int64(shards)
			start := int64(shard) * per
			end := start + per
			if shard == shards-1 {
				end = d.Size()
			}
			groups = append(groups, alloc.NewGroup(d.ID(), start, end))
		}
		return alloc.NewAGSet(alloc.RoundRobin, groups...)
	}

	hostOf := func(shard int) string {
		if shards == 1 {
			return "mds"
		}
		return fmt.Sprintf("mds%d", shard)
	}

	c.Net = netsim.NewNetwork(clk)
	c.Net.SetTracer(c.Tracer)

	for i := 0; i < shards; i++ {
		// Metadata device (journal) on its own disk per shard.
		metaDev := blockdev.New(blockdev.Config{ID: 1000 + i, Size: 4 << 30, Model: opt.Disk, Clock: clk})
		c.closers = append(c.closers, metaDev.Close)
		c.MetaDevs = append(c.MetaDevs, metaDev)
		ags := mkAGs(i)
		c.AGTotals = append(c.AGTotals, meta.TotalSpace(ags))
		journal := meta.NewJournal(metaDev, 0, 2<<30)
		if opt.JournalMaxDelay > 0 {
			journal.SetBatchPolicy(meta.BatchPolicy{MaxDelay: opt.JournalMaxDelay, Clock: clk})
		}
		store := meta.NewStore(meta.Config{
			AGs: ags, Journal: journal, Clock: clk, Tracer: c.Tracer,
			Shard: i, ShardCount: shards,
		})
		c.Stores = append(c.Stores, store)

		srv := mds.New(mds.Config{
			Store:               store,
			Clock:               clk,
			Daemons:             opt.MDSDaemons,
			OpCost:              opt.MDSOpCost,
			FrameCost:           opt.MDSFrameCost,
			ContentionPerDaemon: 0.05,
			ShardIndex:          uint32(i),
			ShardCount:          uint32(shards),
			Tracer:              c.Tracer,
		})
		c.MDSs = append(c.MDSs, srv)
		c.closers = append(c.closers, srv.Close)

		c.Net.AddHost(hostOf(i), opt.Net)
		lis, err := c.Net.Listen(hostOf(i))
		if err != nil {
			panic(err)
		}
		go srv.Serve(lis)
		c.closers = append(c.closers, func() { lis.Close() })
	}
	c.MDS = c.MDSs[0]
	c.Store = c.Stores[0]
	c.MetaDev = c.MetaDevs[0]
	c.AGTotal = c.AGTotals[0]

	devMap := make(map[uint32]client.BlockDevice, len(c.Devices))
	for _, d := range c.Devices {
		devMap[uint32(d.ID())] = d
	}

	mode := client.SyncCommit
	if sys != SysRedbud {
		mode = client.DelayedCommit
	}
	deleg := int64(0)
	if sys == SysRedbudDCSD {
		deleg = opt.DelegationChunk
	}
	for i := 0; i < opt.Clients; i++ {
		host := fmt.Sprintf("client-%d", i)
		c.Net.AddHost(host, opt.Net)
		net := c.Net
		ccfg := client.Config{
			Name:               host,
			Devices:            devMap,
			Clock:              clk,
			Mode:               mode,
			CompoundDegree:     opt.CompoundDegree,
			DelegationChunk:    deleg,
			NetCongestion:      func() time.Duration { return net.CongestionWait(hostOf(0)) },
			PoolInterval:       2 * time.Millisecond,
			ReadAhead:          opt.ReadAhead,
			FixedCommitThreads: opt.FixedCommitThreads,
			SpaceNoPrefetch:    opt.SpaceNoPrefetch,
			CommitEvenIfClean:  opt.CommitEvenIfClean,
			Autoscale:          opt.Autoscale,
			EarlyVisibility:    opt.EarlyVisibility,
			Tracer:             c.Tracer,
		}
		if shards == 1 {
			conn, err := c.Net.Dial(host, "mds")
			if err != nil {
				panic(err)
			}
			ccfg.MDS = rpc.NewClient(conn, clk)
		} else {
			conns := make([]*rpc.Client, shards)
			for s := 0; s < shards; s++ {
				conn, err := c.Net.Dial(host, hostOf(s))
				if err != nil {
					panic(err)
				}
				conns[s] = rpc.NewClient(conn, clk)
			}
			ccfg.Shards = conns
		}
		cl := client.New(ccfg)
		c.Redbud = append(c.Redbud, cl)
		c.Mounts = append(c.Mounts, cl)
	}

	// Name every counter in the cluster-wide registry. Only shard 0's MDS
	// is exported: the server metrics carry fixed names, and a second
	// registration would collide.
	for _, d := range c.Devices {
		d.RegisterMetrics(c.Registry)
	}
	c.MetaDev.RegisterMetrics(c.Registry)
	c.Net.RegisterMetrics(c.Registry)
	c.MDS.RegisterMetrics(c.Registry)
	for _, cl := range c.Redbud {
		cl.RegisterMetrics(c.Registry)
	}

	// Per-shard registries feed the cluster collector: each MDS registers
	// into its own, so the fixed server metric names never collide, and the
	// aggregation layer tags each source with its shard name. Clients share
	// one source — their metrics are already labeled per client.
	var sources []agg.Source
	for i, srv := range c.MDSs {
		reg := obs.NewRegistry()
		srv.RegisterMetrics(reg)
		c.ShardRegs = append(c.ShardRegs, reg)
		sources = append(sources, agg.RegistrySource(hostOf(i), reg))
	}
	clientsReg := obs.NewRegistry()
	for _, cl := range c.Redbud {
		cl.RegisterMetrics(clientsReg)
	}
	sources = append(sources, agg.RegistrySource("clients", clientsReg))
	c.Collector = agg.New(sources...)
	return c
}

// StitchedTrace writes the cluster's span ring as one multi-process Chrome
// trace: one trace process per track prefix (each MDS shard, each client
// role), with the client and server spans of a commit or cross-shard saga
// linked by flow arrows. Byte-deterministic for a fixed span set.
func (c *Cluster) StitchedTrace(w io.Writer) error {
	if c.Tracer == nil {
		return fmt.Errorf("bench: cluster built without SpanTrace")
	}
	return obs.WriteChromeTraceMulti(w, obs.SplitProcesses(c.Tracer.Spans()))
}

// buildNFS3 assembles the single-server baseline.
func buildNFS3(opt Options) *Cluster {
	clk := clock.Real(opt.Scale)
	c := &Cluster{System: SysNFS3, Clock: clk}
	if opt.Trace {
		c.Rec = iotrace.NewRecorder()
	}
	// One server disk: NFS owns its storage.
	cfg := blockdev.Config{ID: 0, Size: opt.DeviceSize, Model: opt.Disk, Clock: clk, DisableMerge: opt.DisableMerge}
	if c.Rec != nil {
		cfg.Trace = c.Rec.Record
	}
	disk := blockdev.New(cfg)
	c.Devices = []*blockdev.Device{disk}
	c.closers = append(c.closers, disk.Close)

	srv := nfs3.NewServer(nfs3.ServerConfig{Disk: disk, Clock: clk, Daemons: opt.MDSDaemons, OpCost: opt.MDSOpCost})
	c.closers = append(c.closers, srv.Close)

	n := netsim.NewNetwork(clk)
	n.AddHost("nfs", opt.Net)
	lis, err := n.Listen("nfs")
	if err != nil {
		panic(err)
	}
	go srv.Serve(lis)
	c.closers = append(c.closers, func() { lis.Close() })

	for i := 0; i < opt.Clients; i++ {
		host := fmt.Sprintf("client-%d", i)
		n.AddHost(host, opt.Net)
		conn, err := n.Dial(host, "nfs")
		if err != nil {
			panic(err)
		}
		c.Mounts = append(c.Mounts, nfs3.NewClient(conn, clk))
	}
	return c
}

// buildPVFS2 assembles the striped user-level baseline.
func buildPVFS2(opt Options) *Cluster {
	clk := clock.Real(opt.Scale)
	c := &Cluster{System: SysPVFS2, Clock: clk}
	if opt.Trace {
		c.Rec = iotrace.NewRecorder()
	}
	n := netsim.NewNetwork(clk)

	n.AddHost("meta", opt.Net)
	ml, err := n.Listen("meta")
	if err != nil {
		panic(err)
	}
	ms := pvfs2.NewMetaServer(clk, opt.MDSDaemons, opt.MDSOpCost)
	go ms.Serve(ml)
	c.closers = append(c.closers, func() { ml.Close() }, ms.Close)

	for i := 0; i < opt.DataDevices; i++ {
		host := fmt.Sprintf("data-%d", i)
		n.AddHost(host, opt.Net)
		cfg := blockdev.Config{ID: i, Size: opt.DeviceSize, Model: opt.Disk, Clock: clk, DisableMerge: opt.DisableMerge}
		if c.Rec != nil {
			cfg.Trace = c.Rec.Record
		}
		disk := blockdev.New(cfg)
		c.Devices = append(c.Devices, disk)
		c.closers = append(c.closers, disk.Close)
		ds := pvfs2.NewDataServer(disk, clk, opt.MDSDaemons)
		dl, err := n.Listen(host)
		if err != nil {
			panic(err)
		}
		go ds.Serve(dl)
		c.closers = append(c.closers, func() { dl.Close() }, ds.Close)
	}

	for i := 0; i < opt.Clients; i++ {
		host := fmt.Sprintf("client-%d", i)
		n.AddHost(host, opt.Net)
		mconn, err := n.Dial(host, "meta")
		if err != nil {
			panic(err)
		}
		var dconns []netsim.Conn
		for d := 0; d < opt.DataDevices; d++ {
			dc, err := n.Dial(host, fmt.Sprintf("data-%d", d))
			if err != nil {
				panic(err)
			}
			dconns = append(dconns, dc)
		}
		c.Mounts = append(c.Mounts, pvfs2.NewClient(mconn, dconns, clk))
	}
	return c
}

// RunDistributed runs the spec on every mount concurrently (each client gets
// a private namespace and seed) and aggregates: ops and bytes summed,
// duration = the longest client run (the cluster-level completion time).
func RunDistributed(c *Cluster, spec workload.Spec) (workload.Result, error) {
	results := make([]workload.Result, len(c.Mounts))
	errs := make([]error, len(c.Mounts))
	var wg sync.WaitGroup
	for i, m := range c.Mounts {
		wg.Add(1)
		s := spec
		s.Name = fmt.Sprintf("%s-c%d", spec.Name, i)
		s.Seed = spec.Seed + int64(i)*1000003
		go func() {
			defer wg.Done()
			results[i], errs[i] = workload.Run(m, c.Clock, s)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return workload.Result{}, err
		}
	}
	// Include the drain in the measured window: delayed commit must not
	// get credit for work it simply deferred past the finish line.
	start := c.Clock.Now()
	c.Drain()
	drain := c.Clock.Since(start)

	agg := workload.Result{Name: spec.Name}
	for _, r := range results {
		agg.Ops += r.Ops
		agg.Errors += r.Errors
		agg.BytesWritten += r.BytesWritten
		agg.BytesRead += r.BytesRead
		if r.Duration > agg.Duration {
			agg.Duration = r.Duration
		}
		for k := range agg.Latency {
			agg.Latency[k].Count += r.Latency[k].Count
			agg.Latency[k].Total += r.Latency[k].Total
		}
	}
	agg.Duration += drain
	return agg, nil
}

// RunBTDistributed runs NPB BT-IO across the cluster's mounts.
func RunBTDistributed(c *Cluster, spec workload.BTSpec) (workload.Result, error) {
	return workload.RunBT(c.Mounts, c.Clock, spec)
}
